type pos = { line : int; col : int; offset : int }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col
let start_pos = { line = 1; col = 1; offset = 0 }

exception Error of string * pos

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (msg, pos))) fmt

module Cursor = struct
  type t = { src : string; mutable pos : pos }

  let make src = { src; pos = start_pos }
  let pos t = t.pos
  let eof t = t.pos.offset >= String.length t.src

  let peek t =
    if eof t then None else Some t.src.[t.pos.offset]

  let peek2 t =
    if t.pos.offset + 1 >= String.length t.src then None
    else Some t.src.[t.pos.offset + 1]

  let advance t =
    match peek t with
    | None -> ()
    | Some '\n' ->
        t.pos <- { line = t.pos.line + 1; col = 1; offset = t.pos.offset + 1 }
    | Some _ ->
        t.pos <- { t.pos with col = t.pos.col + 1; offset = t.pos.offset + 1 }

  let next t =
    match peek t with
    | None -> error t.pos "unexpected end of input"
    | Some c ->
        advance t;
        c

  let eat t c =
    match peek t with
    | Some c' when c' = c ->
        advance t;
        true
    | _ -> false

  let take_while t p =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek t with
      | Some c when p c ->
          Buffer.add_char buf c;
          advance t;
          go ()
      | _ -> ()
    in
    go ();
    Buffer.contents buf

  let skip_while t p =
    let rec go () =
      match peek t with
      | Some c when p c ->
          advance t;
          go ()
      | _ -> ()
    in
    go ()
end

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || is_digit c

let lex_string_literal cur ~quote =
  let buf = Buffer.create 16 in
  let rec go () =
    match Cursor.peek cur with
    | None -> error (Cursor.pos cur) "unterminated string literal"
    | Some c when c = quote -> Cursor.advance cur
    | Some '\\' ->
        Cursor.advance cur;
        let c = Cursor.next cur in
        Buffer.add_char buf
          (match c with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '0' -> '\000'
          | c -> c);
        go ()
    | Some c ->
        Buffer.add_char buf c;
        Cursor.advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_number cur =
  let int_part = Cursor.take_while cur is_digit in
  match (Cursor.peek cur, Cursor.peek2 cur) with
  | Some '.', Some d when is_digit d ->
      Cursor.advance cur;
      let frac = Cursor.take_while cur is_digit in
      int_part ^ "." ^ frac
  | _ -> int_part
