(** Shared lexing utilities for the hand-written language front-ends. *)

type pos = { line : int; col : int; offset : int }

val pp_pos : Format.formatter -> pos -> unit
val start_pos : pos

exception Error of string * pos
(** Raised by front-end lexers and parsers on malformed input. *)

val error : pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error pos fmt ...] raises {!Error} with a formatted message. *)

(** A character cursor over an in-memory source string, tracking line
    and column. *)
module Cursor : sig
  type t

  val make : string -> t
  val pos : t -> pos
  val eof : t -> bool

  val peek : t -> char option
  val peek2 : t -> char option
  (** Character after the next one, if any. *)

  val advance : t -> unit
  val next : t -> char
  (** Consume and return; raises {!Error} at end of input. *)

  val eat : t -> char -> bool
  (** Consume the next char iff it equals the argument. *)

  val take_while : t -> (char -> bool) -> string
  val skip_while : t -> (char -> bool) -> unit
end

val is_digit : char -> bool
val is_ident_start : char -> bool
(** Letters, underscore and [$]. *)

val is_ident_char : char -> bool

val lex_string_literal : Cursor.t -> quote:char -> string
(** Consumes a string literal whose opening [quote] has already been
    consumed; handles the usual backslash escapes. Returns the decoded
    contents. *)

val lex_number : Cursor.t -> string
(** Consumes an integer or decimal literal (first char not yet
    consumed must be a digit); returns its lexeme. *)
