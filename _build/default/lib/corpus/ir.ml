type var = { v_name : string; v_role : Role.t; v_ty : Role.ty }

type expr =
  | V of var
  | Int of int
  | Str of string
  | Bool of bool
  | Bin of string * expr * expr
  | Not of expr
  | CallFree of string * expr list
  | Method of expr * string * expr list
  | Len of expr
  | Idx of expr * expr
  | StrCat of expr * expr
  | NewList of Role.ty
  | NewObj of string * expr list

and stmt =
  | Let of var * expr
  | SetV of var * expr
  | AugAdd of var * expr
  | Incr of var
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | ForEach of var * expr * stmt list
  | ForRange of var * expr * stmt list
  | CallStmt of expr
  | Append of var * expr
  | Ret of expr
  | RetNone
  | TryCatch of stmt list * var * stmt list
  | ThrowNew of string * expr list
  | Log of expr

type func = {
  f_name : string;
  f_params : var list;
  f_ret : Role.ty option;
  f_body : stmt list;
}

type file = { file_name : string; funcs : func list }

let free_vars_of_func f =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let record v =
    if not (Hashtbl.mem seen v.v_name) then begin
      Hashtbl.add seen v.v_name ();
      acc := v :: !acc
    end
  in
  let rec expr = function
    | V v -> record v
    | Int _ | Str _ | Bool _ -> ()
    | Bin (_, a, b) | StrCat (a, b) | Idx (a, b) ->
        expr a;
        expr b
    | Not a | Len a -> expr a
    | CallFree (_, args) | NewObj (_, args) -> List.iter expr args
    | Method (r, _, args) ->
        expr r;
        List.iter expr args
    | NewList _ -> ()
  and stmt = function
    | Let (v, e) | SetV (v, e) | AugAdd (v, e) | Append (v, e) ->
        record v;
        expr e
    | Incr v -> record v
    | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | While (c, b) ->
        expr c;
        List.iter stmt b
    | ForEach (v, e, b) | ForRange (v, e, b) ->
        record v;
        expr e;
        List.iter stmt b
    | CallStmt e | Ret e | Log e -> expr e
    | RetNone -> ()
    | TryCatch (b, v, h) ->
        List.iter stmt b;
        record v;
        List.iter stmt h
    | ThrowNew (_, args) -> List.iter expr args
  in
  List.iter record f.f_params;
  List.iter stmt f.f_body;
  List.rev !acc
