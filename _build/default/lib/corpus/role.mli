(** Semantic roles for synthetic program elements.

    A role is *what a variable is for*; each role carries a
    distribution of synonymous names (the source of the paper's
    semantic-similarity clusters: [done ∼ finished ∼ stop],
    [res ∼ result], [i ∼ j ∼ index], Table 4) and a declared type for
    the typed languages. Name distributions deliberately overlap a
    little across roles (e.g. [res] is both a result and a response),
    so the learners face realistic ambiguity. *)

type t =
  | Flag
  | Counter
  | Index
  | Collection
  | Element
  | Result
  | Error
  | Request
  | Response
  | Client
  | Url
  | Callback
  | Message
  | Name
  | Size
  | Temp
  | Limit
  | Acc
  | Target
  | Key
  | Value
  | Found  (** Search flag, set inside a for-each. *)
  | Valid  (** Validity toggle, cleared inside a plain conditional. *)

type ty = TInt | TBool | TStr | TDouble | TListInt | TListStr | TMapStrInt | TObj of string

val names : t -> (string * int) list
(** Weighted name distribution, e.g. [Flag → (done, 4); (finished, 2);
    (stop, 1); ...]. *)

val all_names : t -> string list
val ty : t -> ty
val pick_name : Random.State.t -> t -> string
val to_string : t -> string
val all : t list

val compound : Random.State.t -> t -> string -> string
(** Java-style compound variant of a sampled name ([count] →
    [itemCount], [resultCount]...), used to reproduce the paper's
    observation that Java names are amalgamations. The second argument
    is a noun hint. *)
