open Ir

type lang = Js | Java | Python | Csharp

let all_langs = [ Js; Java; Python; Csharp ]

let lang_name = function
  | Js -> "JavaScript"
  | Java -> "Java"
  | Python -> "Python"
  | Csharp -> "C#"

let file_extension = function
  | Js -> ".js"
  | Java -> ".java"
  | Python -> ".py"
  | Csharp -> ".cs"

let subtokens name = String.split_on_char '_' name

let method_name lang name =
  let parts = subtokens name in
  match lang with
  | Python -> name
  | Js | Java -> (
      match parts with
      | [] -> name
      | hd :: tl -> hd ^ String.concat "" (List.map String.capitalize_ascii tl))
  | Csharp -> String.concat "" (List.map String.capitalize_ascii parts)

let ty_java = function
  | Role.TInt -> "int"
  | Role.TBool -> "boolean"
  | Role.TStr -> "String"
  | Role.TDouble -> "double"
  | Role.TListInt -> "List<Integer>"
  | Role.TListStr -> "List<String>"
  | Role.TMapStrInt -> "Map<String, Integer>"
  | Role.TObj c -> c

let ty_cs = function
  | Role.TInt -> "int"
  | Role.TBool -> "bool"
  | Role.TStr -> "string"
  | Role.TDouble -> "double"
  | Role.TListInt -> "List<int>"
  | Role.TListStr -> "List<string>"
  | Role.TMapStrInt -> "Dictionary<string, int>"
  | Role.TObj c -> c

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr lang e =
  let go = expr lang in
  match e with
  | V v -> v.v_name
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> (
      match lang with
      | Python -> if b then "True" else "False"
      | _ -> if b then "true" else "false")
  | Bin (op, a, b) ->
      let op =
        match (lang, op) with
        | Python, "&&" -> "and"
        | Python, "||" -> "or"
        | _ -> op
      in
      Printf.sprintf "%s %s %s" (atom lang a) op (atom lang b)
  | Not a -> (
      match lang with
      | Python -> "not " ^ atom lang a
      | _ -> "!" ^ atom lang a)
  | CallFree (f, args) ->
      Printf.sprintf "%s(%s)" (method_name lang f)
        (String.concat ", " (List.map go args))
  | Method (r, m, args) ->
      Printf.sprintf "%s.%s(%s)" (atom lang r) m
        (String.concat ", " (List.map go args))
  | Len c -> (
      match lang with
      | Js -> atom lang c ^ ".length"
      | Python -> Printf.sprintf "len(%s)" (go c)
      | Java -> atom lang c ^ ".size()"
      | Csharp -> atom lang c ^ ".Count")
  | Idx (c, i) -> Printf.sprintf "%s[%s]" (atom lang c) (go i)
  | StrCat (a, b) -> Printf.sprintf "%s + %s" (atom lang a) (atom lang b)
  | NewList ty -> (
      match lang with
      | Js | Python -> "[]"
      | Java -> (
          match ty with
          | Role.TListStr -> "new ArrayList<String>()"
          | _ -> "new ArrayList<Integer>()")
      | Csharp -> (
          match ty with
          | Role.TListStr -> "new List<string>()"
          | _ -> "new List<int>()"))
  | NewObj (c, args) -> (
      match lang with
      | Python -> Printf.sprintf "%s(%s)" c (String.concat ", " (List.map go args))
      | _ ->
          Printf.sprintf "new %s(%s)" c (String.concat ", " (List.map go args)))

and atom lang e =
  match e with
  | Bin _ | StrCat _ | Not _ -> "(" ^ expr lang e ^ ")"
  | _ -> expr lang e

let decl_kw lang v =
  match lang with
  | Js -> "var "
  | Python -> ""
  | Java -> ty_java v.v_ty ^ " "
  | Csharp -> ty_cs v.v_ty ^ " "

let rec stmt lang buf ~indent s =
  let pad = String.make indent ' ' in
  let step = if lang = Python then 4 else 2 in
  let line txt = Buffer.add_string buf (pad ^ txt ^ "\n") in
  let block stmts =
    if stmts = [] && lang = Python then
      Buffer.add_string buf (String.make (indent + step) ' ' ^ "pass\n")
    else List.iter (stmt lang buf ~indent:(indent + step)) stmts
  in
  let braces header stmts footer =
    match lang with
    | Python ->
        line (header ^ ":");
        block stmts
    | _ ->
        line (header ^ " {");
        block stmts;
        line ("}" ^ footer)
  in
  match s with
  | Let (v, e) -> (
      match lang with
      | Python -> line (Printf.sprintf "%s = %s" v.v_name (expr lang e))
      | _ -> line (Printf.sprintf "%s%s = %s;" (decl_kw lang v) v.v_name (expr lang e)))
  | SetV (v, e) -> (
      match lang with
      | Python -> line (Printf.sprintf "%s = %s" v.v_name (expr lang e))
      | _ -> line (Printf.sprintf "%s = %s;" v.v_name (expr lang e)))
  | AugAdd (v, e) -> (
      match lang with
      | Python -> line (Printf.sprintf "%s += %s" v.v_name (expr lang e))
      | _ -> line (Printf.sprintf "%s += %s;" v.v_name (expr lang e)))
  | Incr v -> (
      match lang with
      | Python -> line (Printf.sprintf "%s += 1" v.v_name)
      | _ -> line (Printf.sprintf "%s++;" v.v_name))
  | If (c, t, e) -> (
      match lang with
      | Python ->
          line (Printf.sprintf "if %s:" (expr lang c));
          block t;
          if e <> [] then begin
            line "else:";
            block e
          end
      | _ ->
          line (Printf.sprintf "if (%s) {" (expr lang c));
          block t;
          if e <> [] then begin
            line "} else {";
            block e
          end;
          line "}")
  | While (c, b) -> (
      match lang with
      | Python -> braces (Printf.sprintf "while %s" (expr lang c)) b ""
      | _ -> braces (Printf.sprintf "while (%s)" (expr lang c)) b "")
  | ForEach (v, coll, b) -> (
      match lang with
      | Js -> braces (Printf.sprintf "for (var %s in %s)" v.v_name (expr lang coll)) b ""
      | Python -> braces (Printf.sprintf "for %s in %s" v.v_name (expr lang coll)) b ""
      | Java ->
          braces
            (Printf.sprintf "for (%s %s : %s)"
               (match v.v_ty with Role.TStr -> "String" | _ -> "int")
               v.v_name (expr lang coll))
            b ""
      | Csharp ->
          braces
            (Printf.sprintf "foreach (%s %s in %s)"
               (match v.v_ty with Role.TStr -> "string" | _ -> "int")
               v.v_name (expr lang coll))
            b "")
  | ForRange (v, bound, b) -> (
      match lang with
      | Js ->
          braces
            (Printf.sprintf "for (var %s = 0; %s < %s; %s++)" v.v_name v.v_name
               (expr lang bound) v.v_name)
            b ""
      | Python ->
          braces (Printf.sprintf "for %s in range(%s)" v.v_name (expr lang bound)) b ""
      | Java | Csharp ->
          braces
            (Printf.sprintf "for (int %s = 0; %s < %s; %s++)" v.v_name v.v_name
               (expr lang bound) v.v_name)
            b "")
  | CallStmt e -> (
      match lang with
      | Python -> line (expr lang e)
      | _ -> line (expr lang e ^ ";"))
  | Append (v, e) -> (
      match lang with
      | Js -> line (Printf.sprintf "%s.push(%s);" v.v_name (expr lang e))
      | Python -> line (Printf.sprintf "%s.append(%s)" v.v_name (expr lang e))
      | Java -> line (Printf.sprintf "%s.add(%s);" v.v_name (expr lang e))
      | Csharp -> line (Printf.sprintf "%s.Add(%s);" v.v_name (expr lang e)))
  | Ret e -> (
      match lang with
      | Python -> line ("return " ^ expr lang e)
      | _ -> line ("return " ^ expr lang e ^ ";"))
  | RetNone -> (
      match lang with Python -> line "return" | _ -> line "return;")
  | TryCatch (body, err, handler) -> (
      match lang with
      | Js ->
          line "try {";
          block body;
          line (Printf.sprintf "} catch (%s) {" err.v_name);
          block handler;
          line "}"
      | Python ->
          line "try:";
          block body;
          line (Printf.sprintf "except Exception as %s:" err.v_name);
          block handler
      | Java | Csharp ->
          line "try {";
          block body;
          line (Printf.sprintf "} catch (Exception %s) {" err.v_name);
          block handler;
          line "}")
  | ThrowNew (cls, args) -> (
      let args_s = String.concat ", " (List.map (expr lang) args) in
      match lang with
      | Js -> line (Printf.sprintf "throw new %s(%s);" cls args_s)
      | Python -> line (Printf.sprintf "raise %s(%s)" cls args_s)
      | Java | Csharp -> line (Printf.sprintf "throw new %s(%s);" cls args_s))
  | Log e -> (
      match lang with
      | Js -> line (Printf.sprintf "console.log(%s);" (expr lang e))
      | Python -> line (Printf.sprintf "print(%s)" (expr lang e))
      | Java -> line (Printf.sprintf "System.out.println(%s);" (expr lang e))
      | Csharp -> line (Printf.sprintf "Console.WriteLine(%s);" (expr lang e)))

let func lang buf ~indent f =
  let pad = String.make indent ' ' in
  let name = method_name lang f.f_name in
  let params lang =
    String.concat ", "
      (List.map
         (fun p ->
           match lang with
           | Js | Python -> p.v_name
           | Java -> ty_java p.v_ty ^ " " ^ p.v_name
           | Csharp -> ty_cs p.v_ty ^ " " ^ p.v_name)
         f.f_params)
  in
  match lang with
  | Js ->
      Buffer.add_string buf
        (Printf.sprintf "%sfunction %s(%s) {\n" pad name (params lang));
      List.iter (stmt lang buf ~indent:(indent + 2)) f.f_body;
      Buffer.add_string buf (pad ^ "}\n")
  | Python ->
      Buffer.add_string buf (Printf.sprintf "%sdef %s(%s):\n" pad name (params lang));
      if f.f_body = [] then Buffer.add_string buf (pad ^ "    pass\n")
      else List.iter (stmt lang buf ~indent:(indent + 4)) f.f_body;
      Buffer.add_string buf "\n"
  | Java ->
      let ret = match f.f_ret with Some t -> ty_java t | None -> "void" in
      Buffer.add_string buf
        (Printf.sprintf "%spublic %s %s(%s) {\n" pad ret name (params lang));
      List.iter (stmt lang buf ~indent:(indent + 2)) f.f_body;
      Buffer.add_string buf (pad ^ "}\n")
  | Csharp ->
      let ret = match f.f_ret with Some t -> ty_cs t | None -> "void" in
      Buffer.add_string buf
        (Printf.sprintf "%spublic %s %s(%s) {\n" pad ret name (params lang));
      List.iter (stmt lang buf ~indent:(indent + 2)) f.f_body;
      Buffer.add_string buf (pad ^ "}\n")

let class_name_of file_name =
  String.split_on_char '_' file_name
  |> List.map String.capitalize_ascii
  |> String.concat ""

let render lang (file : Ir.file) =
  let buf = Buffer.create 1024 in
  (match lang with
  | Js -> List.iter (func lang buf ~indent:0) file.funcs
  | Python ->
      List.iter (func lang buf ~indent:0) file.funcs
  | Java ->
      Buffer.add_string buf "import java.util.List;\n";
      Buffer.add_string buf "import java.util.ArrayList;\n";
      Buffer.add_string buf
        (Printf.sprintf "class %s {\n" (class_name_of file.file_name));
      List.iter (func lang buf ~indent:2) file.funcs;
      Buffer.add_string buf "}\n"
  | Csharp ->
      Buffer.add_string buf "using System;\n";
      Buffer.add_string buf "using System.Collections.Generic;\n";
      Buffer.add_string buf
        (Printf.sprintf "class %s {\n" (class_name_of file.file_name));
      List.iter (func lang buf ~indent:2) file.funcs;
      Buffer.add_string buf "}\n");
  Buffer.contents buf
