open Ir

type alloc = Role.t -> Ir.var

type instantiated = {
  stmts : Ir.stmt list;
  params : Ir.var list;
  ret : (Role.ty * Ir.stmt) option;
  verb : string;
  noun : string;
}

type t = { template_name : string; instantiate : alloc -> Random.State.t -> instantiated }

let pick_of rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* Weighted choice: naming conventions are peaked, like real corpora. *)
let pick_w rng xs =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 xs in
  let x = Random.State.int rng total in
  let rec go acc = function
    | [] -> fst (List.hd xs)
    | (v, w) :: rest -> if x < acc + w then v else go (acc + w) rest
  in
  go 0 xs

(* The Fig. 1 pattern: a boolean flag guards a polling loop and is set
   inside a conditional. Long-range: only paths of length >= 5 connect
   the loop guard to the assignment. *)
let flag_loop =
  {
    template_name = "flag-loop";
    instantiate =
      (fun alloc rng ->
        let flag = alloc Role.Flag in
        let step = pick_of rng [ "doSomething"; "step"; "poll"; "tick" ] in
        let cond = pick_of rng [ "someCondition"; "check"; "isReady"; "shouldStop" ] in
        {
          stmts =
            [
              Let (flag, Bool false);
              While
                ( Not (V flag),
                  [
                    CallStmt (CallFree (step, []));
                    If (CallFree (cond, []), [ SetV (flag, Bool true) ], []);
                  ] );
            ];
          params = [];
          ret = None;
          verb = pick_w rng [ ("wait", 8); ("run", 1); ("loop", 1) ];
          noun = pick_w rng [ ("until_done", 8); ("steps", 1); ("tasks", 1) ];
        });
  }

(* Search flag: locally identical to the flag loop ([x = false] ...
   [x = true] inside an [If]) — only the enclosing loop kind (ForEach
   vs While) on the path distinguishes [found] from [done]. Statement-
   local representations cannot tell them apart (the paper's Fig. 3
   argument). *)
let found_search =
  {
    template_name = "found-search";
    instantiate =
      (fun alloc rng ->
        let found = alloc Role.Found in
        let coll = alloc Role.Collection in
        let elem = alloc Role.Element in
        let target = alloc Role.Target in
        {
          stmts =
            [
              Let (found, Bool false);
              ForEach
                ( elem,
                  V coll,
                  [
                    If (Bin ("==", V elem, V target), [ SetV (found, Bool true) ], []);
                  ] );
            ];
          params = [ coll; target ];
          ret = Some (Role.TBool, Ret (V found));
          verb = pick_w rng [ ("contains", 8); ("has", 1); ("find", 1) ];
          noun = pick_w rng [ ("target", 8); ("item", 1); ("match", 1) ];
        });
  }

(* Validity toggle: bool initialized and flipped inside a bare [If] —
   a third locally-identical bool pattern, with no loop at all. *)
let valid_toggle =
  {
    template_name = "valid-toggle";
    instantiate =
      (fun alloc rng ->
        let valid = alloc Role.Valid in
        let value = alloc Role.Value in
        let limit = alloc Role.Limit in
        {
          stmts =
            [
              Let (valid, Bool true);
              If (Bin (">", V value, V limit), [ SetV (valid, Bool false) ], []);
            ];
          params = [ value; limit ];
          ret = Some (Role.TBool, Ret (V valid));
          verb = pick_w rng [ ("is", 8); ("check", 1) ];
          noun = pick_w rng [ ("valid", 8); ("allowed", 1); ("legal", 1) ];
        });
  }

(* The Fig. 9 pattern: count elements equal to a target. *)
let count_matches =
  {
    template_name = "count-matches";
    instantiate =
      (fun alloc rng ->
        let count = alloc Role.Counter in
        let coll = alloc Role.Collection in
        let elem = alloc Role.Element in
        let target = alloc Role.Target in
        (* The increment idiom varies ([count++] / [count += 1]), so the
           local token window does not identify the role by itself. *)
        let bump =
          if Random.State.bool rng then Incr count else AugAdd (count, Int 1)
        in
        {
          stmts =
            [
              Let (count, Int 0);
              ForEach
                ( elem,
                  V coll,
                  [ If (Bin ("==", V elem, V target), [ bump ], []) ] );
            ];
          params = [ coll; target ];
          ret = Some (Role.TInt, Ret (V count));
          verb = pick_w rng [ ("count", 8); ("get", 1); ("num", 1) ];
          noun = pick_w rng [ ("matches", 8); ("items", 1); ("values", 1) ];
        });
  }

let accumulate =
  {
    template_name = "accumulate";
    instantiate =
      (fun alloc rng ->
        let acc = alloc Role.Acc in
        let coll = alloc Role.Collection in
        let elem = alloc Role.Element in
        let add =
          if Random.State.bool rng then AugAdd (acc, V elem)
          else SetV (acc, Bin ("+", V acc, V elem))
        in
        {
          stmts = [ Let (acc, Int 0); ForEach (elem, V coll, [ add ]) ];
          params = [ coll ];
          ret = Some (Role.TInt, Ret (V acc));
          verb = pick_w rng [ ("sum", 8); ("compute", 1); ("add", 1) ];
          noun = pick_w rng [ ("values", 8); ("total", 1); ("items", 1) ];
        });
  }

let index_scan =
  {
    template_name = "index-scan";
    instantiate =
      (fun alloc rng ->
        let i = alloc Role.Index in
        let coll = alloc Role.Collection in
        let elem = alloc Role.Element in
        let action = pick_of rng [ "process"; "handle"; "use"; "emit" ] in
        {
          stmts =
            [
              ForRange
                ( i,
                  Len (V coll),
                  [
                    Let (elem, Idx (V coll, V i));
                    CallStmt (CallFree (action, [ V elem ]));
                  ] );
            ];
          params = [ coll ];
          ret = None;
          verb = pick_w rng [ ("process", 8); ("handle", 1); ("scan", 1) ];
          noun = pick_w rng [ ("items", 8); ("entries", 1); ("elements", 1) ];
        });
  }

let find_max =
  {
    template_name = "find-max";
    instantiate =
      (fun alloc rng ->
        let best = alloc Role.Result in
        let coll = alloc Role.Collection in
        let elem = alloc Role.Element in
        {
          stmts =
            [
              Let (best, Idx (V coll, Int 0));
              ForEach
                ( elem,
                  V coll,
                  [ If (Bin (">", V elem, V best), [ SetV (best, V elem) ], []) ]
                );
            ];
          params = [ coll ];
          ret = Some (Role.TInt, Ret (V best));
          verb = pick_w rng [ ("find", 8); ("get", 1); ("compute", 1) ];
          noun = pick_w rng [ ("max", 8); ("largest", 1); ("best", 1) ];
        });
  }

let filter_items =
  {
    template_name = "filter-items";
    instantiate =
      (fun alloc rng ->
        let out = alloc Role.Result in
        let out = { out with v_ty = Role.TListInt } in
        let coll = alloc Role.Collection in
        let elem = alloc Role.Element in
        let limit = alloc Role.Limit in
        {
          stmts =
            [
              Let (out, NewList Role.TListInt);
              ForEach
                ( elem,
                  V coll,
                  [ If (Bin (">", V elem, V limit), [ Append (out, V elem) ], []) ]
                );
            ];
          params = [ coll; limit ];
          ret = Some (Role.TListInt, Ret (V out));
          verb = pick_w rng [ ("filter", 8); ("select", 1); ("keep", 1) ];
          noun = pick_w rng [ ("items", 8); ("values", 1); ("matches", 1) ];
        });
  }

let build_message =
  {
    template_name = "build-message";
    instantiate =
      (fun alloc rng ->
        let msg = alloc Role.Message in
        let name = alloc Role.Name in
        let greeting = pick_of rng [ "hello, "; "processing "; "saving "; "loading " ] in
        {
          stmts = [ Let (msg, StrCat (Str greeting, V name)); Log (V msg) ];
          params = [ name ];
          ret = Some (Role.TStr, Ret (V msg));
          verb = pick_w rng [ ("build", 8); ("format", 1); ("make", 1) ];
          noun = pick_w rng [ ("message", 8); ("text", 1); ("label", 1) ];
        });
  }

(* String-heavy template: joins a list of names into one string. Keeps
   the full-type task's java.lang.String share realistic (the paper's
   naive String baseline scores 24.1%). *)
let join_names =
  {
    template_name = "join-names";
    instantiate =
      (fun alloc rng ->
        let out = alloc Role.Message in
        let coll = { (alloc Role.Collection) with v_ty = Role.TListStr } in
        let name = { (alloc Role.Name) with v_ty = Role.TStr } in
        let sep = pick_of rng [ ", "; " "; ";" ] in
        {
          stmts =
            [
              Let (out, Str "");
              ForEach
                ( name,
                  V coll,
                  [ SetV (out, StrCat (StrCat (V out, Str sep), V name)) ] );
              Log (V out);
            ];
          params = [ coll ];
          ret = Some (Role.TStr, Ret (V out));
          verb = pick_w rng [ ("join", 8); ("concat", 1); ("merge", 1) ];
          noun = pick_w rng [ ("names", 8); ("parts", 1); ("words", 1) ];
        });
  }

let swap_values =
  {
    template_name = "swap";
    instantiate =
      (fun alloc rng ->
        let tmp = alloc Role.Temp in
        let a = alloc Role.Value in
        let b = alloc Role.Value in
        {
          stmts = [ Let (tmp, V a); SetV (a, V b); SetV (b, V tmp) ];
          params = [ a; b ];
          ret = None;
          verb = pick_w rng [ ("swap", 8); ("exchange", 1) ];
          noun = pick_w rng [ ("values", 8); ("pair", 1) ];
        });
  }

let send_request =
  {
    template_name = "send-request";
    instantiate =
      (fun alloc rng ->
        let client = alloc Role.Client in
        let request = alloc Role.Request in
        let response = alloc Role.Response in
        let url = alloc Role.Url in
        {
          stmts =
            [
              Let (client, NewObj ("HttpClient", []));
              Let (request, NewObj ("HttpRequest", [ V url ]));
              Let (response, Method (V client, "execute", [ V request ]));
              If
                ( Method (V response, "failed", []),
                  [ ThrowNew ("Exception", [ V url ]) ],
                  [] );
            ];
          params = [ url ];
          ret = None;
          verb = pick_w rng [ ("send", 8); ("fetch", 1); ("post", 1) ];
          noun = pick_w rng [ ("request", 8); ("data", 1); ("payload", 1) ];
        });
  }

(* The Fig. 8 pattern: open/send on a request object with a callback. *)
let open_send =
  {
    template_name = "open-send";
    instantiate =
      (fun alloc rng ->
        let request = alloc Role.Request in
        let url = alloc Role.Url in
        let callback = alloc Role.Callback in
        {
          stmts =
            [
              CallStmt (Method (V request, "open", [ Str "GET"; V url; Bool false ]));
              CallStmt (Method (V request, "send", [ V callback ]));
            ];
          params = [ url; request; callback ];
          ret = None;
          verb = pick_w rng [ ("load", 8); ("get", 1) ];
          noun = pick_w rng [ ("resource", 8); ("page", 1) ];
        });
  }

let try_log =
  {
    template_name = "try-log";
    instantiate =
      (fun alloc rng ->
        let err = alloc Role.Error in
        let risky = pick_of rng [ "risky"; "connect"; "save"; "load" ] in
        {
          stmts =
            [
              TryCatch
                ( [ CallStmt (CallFree (risky, [])) ],
                  err,
                  [ Log (V err) ] );
            ];
          params = [];
          ret = None;
          verb = pick_w rng [ ("try", 8); ("safe", 1); ("guard", 1) ];
          noun = pick_w rng [ ("call", 8); ("action", 1); ("task", 1) ];
        });
  }

let size_check =
  {
    template_name = "size-check";
    instantiate =
      (fun alloc rng ->
        let size = alloc Role.Size in
        let coll = alloc Role.Collection in
        let limit = alloc Role.Limit in
        (* Two idioms: direct length, or a counting loop. The counting
           loop is token-identical to count-matches' inner increment —
           they differ only in whether an [If] lies on the path
           (the paper's Fig. 3 separability argument). *)
        let compute =
          if Random.State.bool rng then [ Let (size, Len (V coll)) ]
          else
            let elem = alloc Role.Element in
            [
              Let (size, Int 0);
              ForEach
                ( elem,
                  V coll,
                  [ (if Random.State.bool rng then Incr size
                     else AugAdd (size, Int 1)) ] );
            ]
        in
        {
          stmts =
            compute
            @ [
                If
                  ( Bin (">", V size, V limit),
                    [ ThrowNew ("IllegalArgumentException", [ V size ]) ],
                    [] );
              ];
          params = [ coll; limit ];
          ret = Some (Role.TInt, Ret (V size));
          verb = pick_w rng [ ("check", 8); ("validate", 1); ("ensure", 1) ];
          noun = pick_w rng [ ("size", 8); ("bounds", 1); ("capacity", 1) ];
        });
  }

let early_return =
  {
    template_name = "early-return";
    instantiate =
      (fun alloc rng ->
        let value = alloc Role.Value in
        let limit = alloc Role.Limit in
        {
          stmts = [ If (Bin (">", V value, V limit), [ Ret (V limit) ], []) ];
          params = [ value; limit ];
          ret = Some (Role.TInt, Ret (V value));
          verb = pick_w rng [ ("clamp", 8); ("cap", 1); ("limit", 1) ];
          noun = pick_w rng [ ("value", 8); ("amount", 1); ("input", 1) ];
        });
  }

let all =
  [
    flag_loop; found_search; valid_toggle; count_matches; accumulate;
    index_scan; find_max; filter_items; build_message; join_names; swap_values;
    send_request; open_send; try_log; size_check; early_return;
  ]

(* Template mix. String-producing templates are weighted up so the
   Java type distribution has a realistic java.lang.String share; the
   control-flow-discriminated patterns (the bool trio and the counting
   loops, whose statement-level views coincide) are weighted up because
   such long-range patterns are exactly what real corpora are full of —
   and what Fig. 3 shows statement-local representations cannot
   separate. *)
let weighted =
  List.map
    (fun t ->
      match t.template_name with
      | "build-message" | "join-names" -> (t, 3)
      | "flag-loop" | "found-search" | "count-matches" | "size-check" -> (t, 3)
      | "valid-toggle" | "accumulate" -> (t, 2)
      | _ -> (t, 1))
    all

let by_name n = List.find_opt (fun t -> String.equal t.template_name n) all
let pick rng = pick_w rng weighted
