type t =
  | Flag
  | Counter
  | Index
  | Collection
  | Element
  | Result
  | Error
  | Request
  | Response
  | Client
  | Url
  | Callback
  | Message
  | Name
  | Size
  | Temp
  | Limit
  | Acc
  | Target
  | Key
  | Value
  | Found
  | Valid

type ty = TInt | TBool | TStr | TDouble | TListInt | TListStr | TMapStrInt | TObj of string

(* Distributions are peaked the way real corpora are — one dominant
   convention plus a tail of synonyms (the tail is what produces the
   paper's near-miss predictions: message vs msg, complete vs done). *)
let names = function
  | Flag -> [ ("done", 12); ("finished", 2); ("stop", 1); ("complete", 1) ]
  | Found -> [ ("found", 12); ("seen", 2); ("exists", 1); ("present", 1) ]
  | Valid -> [ ("valid", 12); ("ok", 2); ("enabled", 1); ("active", 1) ]
  | Counter -> [ ("count", 12); ("counter", 2); ("total", 1); ("num", 1) ]
  | Index -> [ ("i", 12); ("j", 2); ("index", 2); ("idx", 1) ]
  | Collection ->
      [ ("items", 10); ("values", 3); ("list", 1); ("array", 1); ("arr", 1) ]
  | Element -> [ ("item", 10); ("value", 3); ("elem", 1); ("el", 1) ]
  | Result -> [ ("result", 12); ("res", 2); ("ret", 1); ("out", 1) ]
  | Error -> [ ("err", 10); ("e", 3); ("error", 2); ("ex", 1) ]
  | Request -> [ ("request", 10); ("req", 3) ]
  | Response -> [ ("response", 10); ("res", 2); ("resp", 1) ]
  | Client -> [ ("client", 12); ("conn", 1); ("http", 1) ]
  | Url -> [ ("url", 12); ("uri", 1); ("endpoint", 1); ("link", 1) ]
  | Callback -> [ ("callback", 10); ("cb", 2); ("handler", 1); ("fn", 1) ]
  | Message -> [ ("msg", 10); ("message", 3); ("text", 1) ]
  | Name -> [ ("name", 12); ("id", 2); ("label", 1); ("title", 1) ]
  | Size -> [ ("size", 10); ("len", 2); ("length", 2) ]
  | Temp -> [ ("tmp", 10); ("temp", 2); ("t", 1) ]
  | Limit -> [ ("limit", 10); ("max", 3); ("threshold", 1) ]
  | Acc -> [ ("sum", 10); ("total", 3); ("acc", 1) ]
  | Target -> [ ("target", 10); ("value", 2); ("expected", 1) ]
  | Key -> [ ("key", 12); ("k", 1); ("field", 1) ]
  | Value -> [ ("value", 10); ("val", 2); ("v", 2); ("x", 1) ]

let all_names r = List.map fst (names r)

let ty = function
  | Flag | Found | Valid -> TBool
  | Counter | Index | Size | Limit | Acc | Target -> TInt
  | Collection -> TListInt
  | Element | Value -> TInt
  | Result -> TInt
  | Error -> TObj "Exception"
  | Request -> TObj "HttpRequest"
  | Response -> TObj "HttpResponse"
  | Client -> TObj "HttpClient"
  | Url | Message | Name | Key -> TStr
  | Callback -> TObj "Callback"
  | Temp -> TInt

let pick_name rng r =
  let dist = names r in
  let total = List.fold_left (fun a (_, w) -> a + w) 0 dist in
  let x = Random.State.int rng total in
  let rec go acc = function
    | [] -> fst (List.hd dist)
    | (n, w) :: rest -> if x < acc + w then n else go (acc + w) rest
  in
  go 0 dist

let to_string = function
  | Flag -> "flag"
  | Counter -> "counter"
  | Index -> "index"
  | Collection -> "collection"
  | Element -> "element"
  | Result -> "result"
  | Error -> "error"
  | Request -> "request"
  | Response -> "response"
  | Client -> "client"
  | Url -> "url"
  | Callback -> "callback"
  | Message -> "message"
  | Name -> "name"
  | Size -> "size"
  | Temp -> "temp"
  | Limit -> "limit"
  | Acc -> "acc"
  | Target -> "target"
  | Key -> "key"
  | Value -> "value"
  | Found -> "found"
  | Valid -> "valid"

let all =
  [
    Flag; Counter; Index; Collection; Element; Result; Error; Request;
    Response; Client; Url; Callback; Message; Name; Size; Temp; Limit; Acc;
    Target; Key; Value; Found; Valid;
  ]

let compound rng r base =
  let nouns = [ "item"; "value"; "element"; "record"; "entry"; "node" ] in
  ignore r;
  let noun = List.nth nouns (Random.State.int rng (List.length nouns)) in
  noun ^ String.capitalize_ascii base
