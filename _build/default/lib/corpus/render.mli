(** Rendering IR files to idiomatic source per language.

    The generator emits each IR file in all four languages; each
    language's front-end then parses its rendering back, so the whole
    parse → lower → extract pipeline is exercised exactly as it would
    be on real corpora. Function names are stored in the IR as
    lower-case sub-tokens ([count_items]) and cased per language:
    camelCase for JavaScript/Java, snake_case for Python, PascalCase
    for C#. *)

type lang = Js | Java | Python | Csharp

val all_langs : lang list
val lang_name : lang -> string
val file_extension : lang -> string
val method_name : lang -> string -> string
val render : lang -> Ir.file -> string
