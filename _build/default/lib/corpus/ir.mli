(** Language-neutral template IR.

    The corpus generator composes functions in this IR; per-language
    renderers ({!Render}) turn one IR file into idiomatic JavaScript,
    Java, Python or C# source, which the corresponding front-end then
    parses back — exercising the full pipeline the way the paper's
    GitHub corpora did. *)

type var = { v_name : string; v_role : Role.t; v_ty : Role.ty }

type expr =
  | V of var
  | Int of int
  | Str of string
  | Bool of bool
  | Bin of string * expr * expr  (** [+ - * / % == != < > <= >= && ||] *)
  | Not of expr
  | CallFree of string * expr list  (** Free/builtin function. *)
  | Method of expr * string * expr list
  | Len of expr  (** Collection length: idiom differs per language. *)
  | Idx of expr * expr
  | StrCat of expr * expr
  | NewList of Role.ty  (** Fresh empty list. *)
  | NewObj of string * expr list  (** [new Classname(args)]. *)

and stmt =
  | Let of var * expr
  | SetV of var * expr
  | AugAdd of var * expr
  | Incr of var
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | ForEach of var * expr * stmt list
  | ForRange of var * expr * stmt list  (** index from 0 below bound *)
  | CallStmt of expr
  | Append of var * expr  (** [xs.push/add/append/Add]. *)
  | Ret of expr
  | RetNone
  | TryCatch of stmt list * var * stmt list
  | ThrowNew of string * expr list
  | Log of expr  (** [console.log/System.out.println/print/Console.WriteLine]. *)

type func = {
  f_name : string;
  f_params : var list;
  f_ret : Role.ty option;  (** [None] = void/no return. *)
  f_body : stmt list;
}

type file = { file_name : string; funcs : func list }

val free_vars_of_func : func -> var list
(** Locals and parameters appearing in a function (each once, by
    name). *)
