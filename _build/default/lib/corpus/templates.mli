(** Statement templates: the syntactic usage patterns that give roles
    their learnable signal.

    Each template instantiates to a statement list over freshly
    allocated role-variables, a set of variables that should become
    function parameters, an optional return, and a (verb, noun) pair
    used to derive the function's name — so method names correlate
    with body structure, as they do in real code. The catalogue covers
    the paper's running examples: the Fig. 1 flag loop, the Fig. 9
    count loop, the Fig. 8 request/send pattern, accumulation,
    index scans, find-max, filtering, try/catch logging, message
    building, swaps, size checks and early returns. *)

type alloc = Role.t -> Ir.var
(** Fresh-variable allocator; names are unique within one function. *)

type instantiated = {
  stmts : Ir.stmt list;
  params : Ir.var list;
  ret : (Role.ty * Ir.stmt) option;
      (** Trailing return statement and its type, when the template
          produces a value. *)
  verb : string;
  noun : string;
}

type t = { template_name : string; instantiate : alloc -> Random.State.t -> instantiated }

val all : t list
val by_name : string -> t option
val pick : Random.State.t -> t
