lib/corpus/role.mli: Random
