lib/corpus/render.mli: Ir
