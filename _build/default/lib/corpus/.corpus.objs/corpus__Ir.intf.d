lib/corpus/ir.mli: Role
