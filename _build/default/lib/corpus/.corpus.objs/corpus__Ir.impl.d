lib/corpus/ir.ml: Hashtbl List Role
