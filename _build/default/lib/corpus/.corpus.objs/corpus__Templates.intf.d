lib/corpus/templates.mli: Ir Random Role
