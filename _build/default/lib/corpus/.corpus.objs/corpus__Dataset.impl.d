lib/corpus/dataset.ml: Array Digest Fmt Hashtbl List Random String
