lib/corpus/gen.ml: Array Hashtbl Ir List Option Printf Random Render Role String Templates
