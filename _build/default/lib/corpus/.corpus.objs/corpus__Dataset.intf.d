lib/corpus/dataset.mli: Format
