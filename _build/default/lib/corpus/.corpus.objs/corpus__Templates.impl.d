lib/corpus/templates.ml: Ir List Random Role String
