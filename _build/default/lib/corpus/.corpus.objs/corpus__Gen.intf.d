lib/corpus/gen.mli: Ir Render
