lib/corpus/role.ml: List Random String
