lib/corpus/render.ml: Buffer Ir List Printf Role String
