lib/ast/tree.ml: Fmt List Stdlib String
