lib/ast/dot.mli: Index Tree
