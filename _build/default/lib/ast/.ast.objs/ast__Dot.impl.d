lib/ast/dot.ml: Buffer Index List Printf String
