lib/ast/index.mli: Tree
