lib/ast/tree.mli: Format
