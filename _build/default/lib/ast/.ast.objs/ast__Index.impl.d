lib/ast/index.ml: Array Fun Hashtbl List Option Tree
