lib/ast/index.ml: Array List String Tree
