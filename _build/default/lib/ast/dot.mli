(** Graphviz export of generic ASTs, for documentation and debugging
    (the paper's Fig. 1b / Fig. 4b style drawings). *)

val to_dot : ?highlight:(int * int) list -> Index.t -> string
(** [to_dot idx] renders the indexed tree as a [digraph]. [highlight]
    marks tree edges (parent, child) to draw emphasized, e.g. the edges
    of one extracted AST path. *)

val tree_to_dot : Tree.t -> string
