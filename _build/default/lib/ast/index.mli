(** Array-indexed view of a {!Tree.t}.

    Path extraction needs parents, depths, lowest common ancestors, leaf
    order and sibling ranks for many node pairs; this module computes
    them once per tree. Node ids are preorder positions in [0, size). *)

type t

val build : Tree.t -> t
val size : t -> int
val root : t -> int

val label : t -> int -> string
val value : t -> int -> string option
val sort : t -> int -> Tree.sort option

val tag : t -> int -> string option
(** Ground-truth tag of a nonterminal (see {!Tree.nt_tag}). *)

val is_leaf : t -> int -> bool

val parent : t -> int -> int
(** [-1] for the root. *)

val children : t -> int -> int array

val child_rank : t -> int -> int
(** Position of a node in its parent's child list; [0] for the root. *)

val depth : t -> int -> int
(** Root has depth [0]. *)

val leaves : t -> int array
(** Ids of terminals in left-to-right source order. *)

val leaf_rank : t -> int -> int
(** Inverse of {!leaves}; [-1] for nonterminals. *)

val lca : t -> int -> int -> int
(** Lowest common ancestor (by walking parent chains; trees are small). *)

val path_up : t -> int -> stop:int -> int list
(** [path_up t n ~stop] is the chain [n; parent n; ...; stop], inclusive.
    Raises [Invalid_argument] if [stop] is not an ancestor of [n]. *)

val ancestors : t -> int -> int list
(** Strict ancestors, nearest first, ending with the root. *)

val width_between : t -> lca:int -> int -> int -> int
(** Paper Fig. 5 width: the absolute difference of the child ranks, at
    the LCA, of the two children through which a path between the given
    nodes passes. [0] when either node equals the LCA. *)

val nodes_with_label : t -> string -> int list
(** All node ids carrying the given label, in preorder. *)

val terminals_with_value : t -> string -> int list
