type sort = Var of int | Name | Lit | Kw

type t =
  | Nonterminal of { label : string; tag : string option; children : t list }
  | Terminal of { label : string; value : string; sort : sort }

let nt label children = Nonterminal { label; tag = None; children }
let nt_tag ~tag label children = Nonterminal { label; tag = Some tag; children }

let tag = function
  | Nonterminal { tag; _ } -> tag
  | Terminal _ -> None
let term ?(sort = Kw) label value = Terminal { label; value; sort }
let var binder label value = Terminal { label; value; sort = Var binder }

let label = function
  | Nonterminal { label; _ } -> label
  | Terminal { label; _ } -> label

let children = function
  | Nonterminal { children; _ } -> children
  | Terminal _ -> []

let value = function
  | Nonterminal _ -> None
  | Terminal { value; _ } -> Some value

let sort = function
  | Nonterminal _ -> None
  | Terminal { sort; _ } -> Some sort

let is_terminal = function Terminal _ -> true | Nonterminal _ -> false

let rec fold f acc t =
  let acc = f acc t in
  List.fold_left (fold f) acc (children t)

let iter f t = fold (fun () n -> f n) () t
let size t = fold (fun n _ -> n + 1) 0 t

let num_leaves t =
  fold (fun n node -> if is_terminal node then n + 1 else n) 0 t

let leaves t =
  List.rev
    (fold (fun acc node -> if is_terminal node then node :: acc else acc) [] t)

let rec map_terminals f = function
  | Terminal { label; value; sort } -> f ~label ~value ~sort
  | Nonterminal { label; tag; children } ->
      Nonterminal { label; tag; children = List.map (map_terminals f) children }

let sort_equal a b =
  match (a, b) with
  | Var i, Var j -> i = j
  | Name, Name | Lit, Lit | Kw, Kw -> true
  | _ -> false

let rec compare a b =
  match (a, b) with
  | Terminal ta, Terminal tb ->
      let c = String.compare ta.label tb.label in
      if c <> 0 then c
      else
        let c = String.compare ta.value tb.value in
        if c <> 0 then c else Stdlib.compare ta.sort tb.sort
  | Terminal _, Nonterminal _ -> -1
  | Nonterminal _, Terminal _ -> 1
  | Nonterminal na, Nonterminal nb ->
      let c = String.compare na.label nb.label in
      if c <> 0 then c else List.compare compare na.children nb.children

let equal a b = compare a b = 0

let pp_sort ppf = function
  | Var i -> Fmt.pf ppf "var#%d" i
  | Name -> Fmt.string ppf "name"
  | Lit -> Fmt.string ppf "lit"
  | Kw -> Fmt.string ppf "kw"

let rec pp_indent ppf ~indent t =
  let pad = String.make indent ' ' in
  match t with
  | Terminal { label; value; sort } ->
      Fmt.pf ppf "%s%s %S [%a]" pad label value pp_sort sort
  | Nonterminal { label; children; _ } ->
      Fmt.pf ppf "%s%s" pad label;
      List.iter
        (fun c ->
          Fmt.pf ppf "@\n";
          pp_indent ppf ~indent:(indent + 2) c)
        children

let pp ppf t = pp_indent ppf ~indent:0 t

let rec pp_compact ppf = function
  | Terminal { label; value; _ } -> Fmt.pf ppf "(%s %s)" label value
  | Nonterminal { label; children; _ } ->
      Fmt.pf ppf "(%s%a)" label
        (fun ppf cs -> List.iter (fun c -> Fmt.pf ppf " %a" pp_compact c) cs)
        children

let to_string t = Fmt.str "%a" pp_compact t
