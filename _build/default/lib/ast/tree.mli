(** Generic, language-agnostic abstract syntax trees.

    This is the paper's Definition 4.1: an AST is a tuple [⟨N, T, X, s, δ,
    val⟩] of nonterminals, terminals, terminal values, a root, a
    children function and a value function. Every language front-end
    ({!module:Minijs}, {!module:Minijava}, {!module:Minipython},
    {!module:Minicsharp}) lowers its native AST to this representation;
    all path extraction works on it. *)

(** Classification of a terminal node, used by the prediction tasks to
    decide which leaves are unknown elements and how occurrences of the
    same element are merged into one CRF node. *)
type sort =
  | Var of int
      (** Reference to a local variable or parameter. The integer is a
          binder id, unique within one program: all occurrences of the
          same local share the id (front-ends perform scope resolution
          when lowering). *)
  | Name  (** Any other identifier: functions, methods, fields, classes. *)
  | Lit  (** A literal constant (number, string, boolean, null...). *)
  | Kw  (** A keyword or operator rendered as a terminal. *)

type t =
  | Nonterminal of { label : string; tag : string option; children : t list }
  | Terminal of { label : string; value : string; sort : sort }

val nt : string -> t list -> t
(** [nt label children] builds a nonterminal node (no tag). *)

val nt_tag : tag:string -> string -> t list -> t
(** Like {!nt} with a ground-truth tag attached. Tags never influence
    paths or labels; prediction tasks read them back (e.g. the
    full-type task stores each expression's inferred type as
    ["type:java.lang.String"]). *)

val tag : t -> string option

val term : ?sort:sort -> string -> string -> t
(** [term label value] builds a terminal node. [sort] defaults to {!Kw}. *)

val var : int -> string -> string -> t
(** [var binder label value] builds a variable-reference terminal. *)

val label : t -> string
val children : t -> t list
(** [children t] is [δ t] for nonterminals and [[]] for terminals. *)

val value : t -> string option
(** [value t] is [Some (val t)] for terminals, [None] otherwise. *)

val sort : t -> sort option
val is_terminal : t -> bool

val size : t -> int
(** Total number of nodes. *)

val num_leaves : t -> int

val leaves : t -> t list
(** Terminals in left-to-right order. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold over all nodes. *)

val iter : (t -> unit) -> t -> unit
(** Preorder iteration. *)

val map_terminals : (label:string -> value:string -> sort:sort -> t) -> t -> t
(** Rebuild the tree, replacing each terminal via the callback. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Multi-line indented rendering, one node per line. *)

val pp_compact : Format.formatter -> t -> unit
(** Single-line s-expression-like rendering. *)

val to_string : t -> string
val sort_equal : sort -> sort -> bool
val pp_sort : Format.formatter -> sort -> unit
