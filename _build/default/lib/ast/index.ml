type t = {
  n : int;
  labels : string array;
  values : string option array;
  sorts : Tree.sort option array;
  tags : string option array;
  parent : int array;
  children : int array array;
  child_rank : int array;
  depth : int array;
  leaves : int array;
  leaf_rank : int array;
}

let build tree =
  let n = Tree.size tree in
  let labels = Array.make n "" in
  let values = Array.make n None in
  let sorts = Array.make n None in
  let tags = Array.make n None in
  let parent = Array.make n (-1) in
  let children = Array.make n [||] in
  let child_rank = Array.make n 0 in
  let depth = Array.make n 0 in
  let leaves_rev = ref [] in
  let next = ref 0 in
  let rec go node ~parent_id ~rank ~d =
    let id = !next in
    incr next;
    labels.(id) <- Tree.label node;
    values.(id) <- Tree.value node;
    sorts.(id) <- Tree.sort node;
    tags.(id) <- Tree.tag node;
    parent.(id) <- parent_id;
    child_rank.(id) <- rank;
    depth.(id) <- d;
    (match node with
    | Tree.Terminal _ -> leaves_rev := id :: !leaves_rev
    | Tree.Nonterminal { children = cs; _ } ->
        let ids =
          List.mapi (fun i c -> go c ~parent_id:id ~rank:i ~d:(d + 1)) cs
        in
        children.(id) <- Array.of_list ids);
    id
  in
  let (_ : int) = go tree ~parent_id:(-1) ~rank:0 ~d:0 in
  let leaves = Array.of_list (List.rev !leaves_rev) in
  let leaf_rank = Array.make n (-1) in
  Array.iteri (fun r id -> leaf_rank.(id) <- r) leaves;
  {
    n;
    labels;
    values;
    sorts;
    tags;
    parent;
    children;
    child_rank;
    depth;
    leaves;
    leaf_rank;
  }

let size t = t.n
let root _ = 0
let label t i = t.labels.(i)
let value t i = t.values.(i)
let sort t i = t.sorts.(i)
let tag t i = t.tags.(i)
let is_leaf t i = t.values.(i) <> None
let parent t i = t.parent.(i)
let children t i = t.children.(i)
let child_rank t i = t.child_rank.(i)
let depth t i = t.depth.(i)
let leaves t = t.leaves
let leaf_rank t i = t.leaf_rank.(i)

let lca t a b =
  let a = ref a and b = ref b in
  while t.depth.(!a) > t.depth.(!b) do
    a := t.parent.(!a)
  done;
  while t.depth.(!b) > t.depth.(!a) do
    b := t.parent.(!b)
  done;
  while !a <> !b do
    a := t.parent.(!a);
    b := t.parent.(!b)
  done;
  !a

let path_up t n ~stop =
  let rec go acc n =
    if n = stop then List.rev (n :: acc)
    else if n = -1 then invalid_arg "Index.path_up: stop is not an ancestor"
    else go (n :: acc) t.parent.(n)
  in
  go [] n

let ancestors t n =
  let rec go acc n =
    let p = t.parent.(n) in
    if p = -1 then List.rev acc else go (p :: acc) p
  in
  go [] n

(* Child of [lca] on the parent chain from [n], assuming [n] is a strict
   descendant of [lca]. *)
let child_toward t ~lca n =
  let rec go n = if t.parent.(n) = lca then n else go t.parent.(n) in
  go n

let width_between t ~lca a b =
  if a = lca || b = lca then 0
  else
    let ca = child_toward t ~lca a and cb = child_toward t ~lca b in
    abs (t.child_rank.(ca) - t.child_rank.(cb))

let nodes_with_label t lbl =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if String.equal t.labels.(i) lbl then acc := i :: !acc
  done;
  !acc

let terminals_with_value t v =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    match t.values.(i) with
    | Some x when String.equal x v -> acc := i :: !acc
    | _ -> ()
  done;
  !acc
