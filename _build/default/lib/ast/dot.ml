let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(highlight = []) idx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph ast {\n  node [fontname=\"monospace\"];\n";
  for i = 0 to Index.size idx - 1 do
    let lbl =
      match Index.value idx i with
      | Some v -> Printf.sprintf "%s\\n%s" (escape (Index.label idx i)) (escape v)
      | None -> escape (Index.label idx i)
    in
    let shape = if Index.is_leaf idx i then "box" else "ellipse" in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" i lbl shape)
  done;
  for i = 1 to Index.size idx - 1 do
    let p = Index.parent idx i in
    let hl =
      List.exists (fun (a, b) -> (a = p && b = i) || (a = i && b = p)) highlight
    in
    let attrs = if hl then " [color=red, penwidth=2]" else "" in
    Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" p i attrs)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let tree_to_dot tree = to_dot (Index.build tree)
