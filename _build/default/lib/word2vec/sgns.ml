type config = {
  dim : int;
  epochs : int;
  negatives : int;
  learning_rate : float;
  min_count : int;
  seed : int;
}

let default_config =
  {
    dim = 64;
    epochs = 8;
    negatives = 5;
    learning_rate = 0.05;
    min_count = 1;
    seed = 9;
  }

type t = {
  config : config;
  words : Vocab.t;
  contexts : Vocab.t;
  word_vecs : float array array;
  context_vecs : float array array;
}

let sigmoid x =
  if x > 30. then 1. else if x < -30. then 0. else 1. /. (1. +. exp (-.x))

let dot a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(* Negative-sampling table over contexts, unigram^0.75. *)
let build_neg_table contexts size =
  let n = Vocab.size contexts in
  if n = 0 then [||]
  else begin
    let pow = Array.init n (fun i -> Float.pow (float_of_int (Vocab.count contexts i)) 0.75) in
    let total = Array.fold_left ( +. ) 0. pow in
    let table = Array.make size 0 in
    let i = ref 0 in
    let cum = ref (pow.(0) /. total) in
    for k = 0 to size - 1 do
      table.(k) <- !i;
      if float_of_int k /. float_of_int size > !cum && !i < n - 1 then begin
        incr i;
        cum := !cum +. (pow.(!i) /. total)
      end
    done;
    table
  end

let train ?(config = default_config) pairs =
  let words = Vocab.build ~min_count:config.min_count (List.map fst pairs) in
  let contexts = Vocab.build ~min_count:config.min_count (List.map snd pairs) in
  let rng = Random.State.make [| config.seed |] in
  let init_vec () =
    Array.init config.dim (fun _ ->
        (Random.State.float rng 1.0 -. 0.5) /. float_of_int config.dim)
  in
  let word_vecs = Array.init (Vocab.size words) (fun _ -> init_vec ()) in
  let context_vecs = Array.init (Vocab.size contexts) (fun _ -> init_vec ()) in
  let neg_table = build_neg_table contexts 100_000 in
  let pairs =
    List.filter_map
      (fun (w, c) ->
        match (Vocab.id words w, Vocab.id contexts c) with
        | Some wi, Some ci -> Some (wi, ci)
        | _ -> None)
      pairs
    |> Array.of_list
  in
  let n_pairs = Array.length pairs in
  if n_pairs > 0 && Array.length neg_table > 0 then begin
    let total_steps = config.epochs * n_pairs in
    let step = ref 0 in
    let grad_w = Array.make config.dim 0. in
    for _epoch = 0 to config.epochs - 1 do
      (* Shuffle pair order each epoch. *)
      for i = n_pairs - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = pairs.(i) in
        pairs.(i) <- pairs.(j);
        pairs.(j) <- tmp
      done;
      Array.iter
        (fun (wi, ci) ->
          incr step;
          let progress = float_of_int !step /. float_of_int total_steps in
          let lr =
            Float.max (config.learning_rate *. (1. -. progress))
              (config.learning_rate *. 1e-4)
          in
          let wv = word_vecs.(wi) in
          Array.fill grad_w 0 config.dim 0.;
          let update_pair cv label =
            let g = (sigmoid (dot wv cv) -. label) *. lr in
            for d = 0 to config.dim - 1 do
              grad_w.(d) <- grad_w.(d) +. (g *. cv.(d));
              cv.(d) <- cv.(d) -. (g *. wv.(d))
            done
          in
          update_pair context_vecs.(ci) 1.;
          for _k = 1 to config.negatives do
            let neg = neg_table.(Random.State.int rng (Array.length neg_table)) in
            if neg <> ci then update_pair context_vecs.(neg) 0.
          done;
          for d = 0 to config.dim - 1 do
            wv.(d) <- wv.(d) -. grad_w.(d)
          done)
        pairs
    done
  end;
  { config; words; contexts; word_vecs; context_vecs }

let word_vec t w = Option.map (fun i -> t.word_vecs.(i)) (Vocab.id t.words w)

let context_vec t c =
  Option.map (fun i -> t.context_vecs.(i)) (Vocab.id t.contexts c)

let predict t context_strings =
  let cvs = List.filter_map (context_vec t) context_strings in
  let scores =
    Array.mapi
      (fun wi wv ->
        let s = List.fold_left (fun acc cv -> acc +. dot wv cv) 0. cvs in
        (Vocab.word t.words wi, s))
      t.word_vecs
  in
  Array.to_list scores
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let norm v = sqrt (dot v v)

let most_similar t w ~k =
  match Vocab.id t.words w with
  | None -> []
  | Some wi ->
      let wv = t.word_vecs.(wi) in
      let nw = norm wv in
      Array.to_list
        (Array.mapi
           (fun i v ->
             let d = norm v *. nw in
             ( Vocab.word t.words i,
               if d = 0. then 0. else dot wv v /. d ))
           t.word_vecs)
      |> List.filter (fun (x, _) -> not (String.equal x w))
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
      |> List.filteri (fun i _ -> i < k)
