(** Skip-gram with negative sampling (Mikolov et al.), generalized to
    arbitrary contexts (Levy & Goldberg) — paper Section 3.2.

    Training pairs are (word, context) where a context is any string —
    here a path-context [(abstracted path, other-end value)], a
    neighboring token for the linear baseline, or a bare neighbor value
    for the path-neighbors baseline. Negatives are drawn from the
    context unigram distribution raised to the 3/4 power. *)

type config = {
  dim : int;
  epochs : int;
  negatives : int;
  learning_rate : float;  (** Initial; decays linearly to 1e-4 of it. *)
  min_count : int;
  seed : int;
}

val default_config : config

type t = {
  config : config;
  words : Vocab.t;
  contexts : Vocab.t;
  word_vecs : float array array;
  context_vecs : float array array;
}

val train : ?config:config -> (string * string) list -> t

val word_vec : t -> string -> float array option
val context_vec : t -> string -> float array option

val predict : t -> string list -> (string * float) list
(** Paper equation (4): rank every vocabulary word [w] by
    [Σ_{c ∈ contexts} w·c], best first. Unknown contexts are ignored. *)

val most_similar : t -> string -> k:int -> (string * float) list
(** Cosine-nearest words to the given word (for the Table 4b
    semantic-similarity probe). *)

val sigmoid : float -> float
val dot : float array -> float array -> float
