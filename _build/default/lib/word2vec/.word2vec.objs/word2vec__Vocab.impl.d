lib/word2vec/vocab.ml: Array Hashtbl Int List Option String
