lib/word2vec/vocab.mli:
