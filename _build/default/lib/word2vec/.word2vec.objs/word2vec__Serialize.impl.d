lib/word2vec/serialize.ml: Array Buffer Char Fun List Printf Sgns String Vocab
