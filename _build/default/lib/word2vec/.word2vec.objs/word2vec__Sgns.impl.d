lib/word2vec/sgns.ml: Array Float List Option Random String Vocab
