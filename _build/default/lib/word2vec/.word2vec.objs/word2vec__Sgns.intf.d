lib/word2vec/sgns.mli: Vocab
