lib/word2vec/serialize.mli: Sgns
