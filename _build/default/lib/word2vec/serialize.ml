(* Format:
     pigeon-w2v-model 1
     config <dim> <epochs> <negatives> <lr> <min_count> <seed>
     words <n>
     w <escaped-token> <count> <v0> ... <v_dim-1>
     contexts <n>
     c <escaped-token> <count> <v0> ...
   Tokens are percent-escaped (space, tab, newline, CR, '%'). *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      Buffer.add_char buf
        (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let write_matrix oc tag vocab vecs =
  Array.iteri
    (fun i v ->
      Printf.fprintf oc "%s %s %d" tag
        (escape (Vocab.word vocab i))
        (Vocab.count vocab i);
      Array.iter (fun x -> Printf.fprintf oc " %.9g" x) v;
      output_char oc '\n')
    vecs

let to_channel (m : Sgns.t) oc =
  Printf.fprintf oc "pigeon-w2v-model 1\n";
  let c = m.Sgns.config in
  Printf.fprintf oc "config %d %d %d %.17g %d %d\n" c.Sgns.dim c.Sgns.epochs
    c.Sgns.negatives c.Sgns.learning_rate c.Sgns.min_count c.Sgns.seed;
  Printf.fprintf oc "words %d\n" (Vocab.size m.Sgns.words);
  write_matrix oc "w" m.Sgns.words m.Sgns.word_vecs;
  Printf.fprintf oc "contexts %d\n" (Vocab.size m.Sgns.contexts);
  write_matrix oc "c" m.Sgns.contexts m.Sgns.context_vecs

let from_channel ic =
  let line_no = ref 0 in
  let fail msg = failwith (Printf.sprintf "line %d: %s" !line_no msg) in
  let read () =
    incr line_no;
    try input_line ic with End_of_file -> fail "unexpected end of file"
  in
  (match read () with
  | "pigeon-w2v-model 1" -> ()
  | _ -> fail "bad magic");
  let config =
    match String.split_on_char ' ' (read ()) with
    | [ "config"; dim; ep; neg; lr; mc; seed ] ->
        {
          Sgns.dim = int_of_string dim;
          epochs = int_of_string ep;
          negatives = int_of_string neg;
          learning_rate = float_of_string lr;
          min_count = int_of_string mc;
          seed = int_of_string seed;
        }
    | _ -> fail "bad config"
  in
  let read_matrix tag header =
    let n =
      match String.split_on_char ' ' (read ()) with
      | [ h; n ] when String.equal h header -> int_of_string n
      | _ -> fail ("expected " ^ header)
    in
    let entries =
      List.init n (fun _ ->
          match String.split_on_char ' ' (read ()) with
          | t :: tok :: count :: rest when String.equal t tag ->
              let vec = Array.of_list (List.map float_of_string rest) in
              if Array.length vec <> config.Sgns.dim then fail "bad vector size";
              (unescape tok, int_of_string count, vec)
          | _ -> fail ("bad " ^ tag ^ " record"))
    in
    (* rebuild a vocab with identical ordering and counts *)
    let tokens =
      List.concat_map (fun (tok, count, _) -> List.init count (fun _ -> tok)) entries
    in
    let vocab = Vocab.build tokens in
    (* Vocab.build sorts by count desc then token, which must match the
       saved id order; verify and fail loudly otherwise. *)
    List.iteri
      (fun i (tok, _, _) ->
        if not (String.equal (Vocab.word vocab i) tok) then
          fail "vocabulary order mismatch")
      entries;
    (vocab, Array.of_list (List.map (fun (_, _, v) -> v) entries))
  in
  let words, word_vecs = read_matrix "w" "words" in
  let contexts, context_vecs = read_matrix "c" "contexts" in
  { Sgns.config; words; contexts; word_vecs; context_vecs }

let save m path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel m oc)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> from_channel ic)
