(** Saving and loading trained SGNS models, in the word2vec text
    conventions: a header with dimensions, then one vector per line.
    Both word and context matrices are stored (prediction by the
    paper's equation (4) needs the context vectors too). Round-trips to
    identical predictions (tested). *)

val save : Sgns.t -> string -> unit
val load : string -> Sgns.t

val to_channel : Sgns.t -> out_channel -> unit
val from_channel : in_channel -> Sgns.t
(** Raises [Failure] with a line number on malformed input. *)
