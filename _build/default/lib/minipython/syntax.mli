(** Abstract syntax of MiniPython — enough for the paper's Fig. 7
    (keyword arguments, tuple targets, tuple returns) and the synthetic
    corpus. *)

type expr =
  | Ident of string
  | Num of string
  | Str of string
  | Bool of bool
  | NoneLit
  | BoolOp of string * expr * expr  (** [and] / [or] *)
  | Not of expr
  | Compare of string * expr * expr
      (** [==], [!=], [<], [>], [<=], [>=], [in], [not in], [is]. *)
  | BinOp of string * expr * expr  (** [+ - * / % // **] *)
  | Neg of expr
  | Call of expr * expr list * (string * expr) list
      (** Positional and keyword arguments. *)
  | Attribute of expr * string
  | Subscript of expr * expr
  | ListLit of expr list
  | TupleLit of expr list
  | DictLit of (expr * expr) list

and stmt =
  | ExprStmt of expr
  | Assign of expr * expr  (** Target may be a {!TupleLit}. *)
  | AugAssign of string * expr * expr
  | If of (expr * stmt list) list * stmt list option
      (** [if]/[elif] chain with optional [else]. *)
  | While of expr * stmt list
  | For of expr * expr * stmt list
  | Return of expr option
  | Pass
  | Break
  | Continue
  | Raise of expr option
  | Try of stmt list * handler list * stmt list option
  | FuncDef of string * string list * stmt list
  | Import of string list  (** [import a.b] / [from a import b] flattened. *)

and handler = {
  h_type : expr option;
  h_name : string option;  (** [except E as e]. *)
  h_body : stmt list;
}

type program = stmt list

val equal_program : program -> program -> bool
val equal_expr : expr -> expr -> bool
