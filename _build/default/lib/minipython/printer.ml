open Syntax

let prec = function
  | TupleLit _ -> 0
  | BoolOp ("or", _, _) -> 1
  | BoolOp ("and", _, _) -> 2
  | BoolOp _ -> 2
  | Not _ -> 3
  | Compare _ -> 4
  | BinOp (("+" | "-"), _, _) -> 5
  | BinOp _ -> 6
  | Neg _ -> 7
  | Call _ | Attribute _ | Subscript _ -> 8
  | _ -> 9

let escape_str s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr buf e =
  let atom ?(p = prec e) sub =
    if prec sub < p then begin
      Buffer.add_char buf '(';
      expr buf sub;
      Buffer.add_char buf ')'
    end
    else expr buf sub
  in
  match e with
  | Ident id -> Buffer.add_string buf id
  | Num n -> Buffer.add_string buf n
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_str s);
      Buffer.add_char buf '"'
  | Bool b -> Buffer.add_string buf (if b then "True" else "False")
  | NoneLit -> Buffer.add_string buf "None"
  | BoolOp (op, a, b) ->
      let p = prec e in
      atom ~p a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf op;
      Buffer.add_char buf ' ';
      if prec b <= p then begin
        Buffer.add_char buf '(';
        expr buf b;
        Buffer.add_char buf ')'
      end
      else expr buf b
  | Not a ->
      Buffer.add_string buf "not ";
      atom a
  | Compare (op, a, b) ->
      atom ~p:5 a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf op;
      Buffer.add_char buf ' ';
      atom ~p:5 b
  | BinOp (op, a, b) ->
      let p = prec e in
      atom ~p a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf op;
      Buffer.add_char buf ' ';
      if prec b <= p then begin
        Buffer.add_char buf '(';
        expr buf b;
        Buffer.add_char buf ')'
      end
      else expr buf b
  | Neg a ->
      Buffer.add_char buf '-';
      atom a
  | Call (f, args, kwargs) ->
      atom ~p:8 f;
      Buffer.add_char buf '(';
      let first = ref true in
      let sep () =
        if !first then first := false else Buffer.add_string buf ", "
      in
      List.iter
        (fun a ->
          sep ();
          expr buf a)
        args;
      List.iter
        (fun (k, v) ->
          sep ();
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          expr buf v)
        kwargs;
      Buffer.add_char buf ')'
  | Attribute (o, a) ->
      atom ~p:8 o;
      Buffer.add_char buf '.';
      Buffer.add_string buf a
  | Subscript (o, i) ->
      atom ~p:8 o;
      Buffer.add_char buf '[';
      expr buf i;
      Buffer.add_char buf ']'
  | ListLit es ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf e)
        es;
      Buffer.add_char buf ']'
  | TupleLit es ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf e)
        es;
      if List.length es = 1 then Buffer.add_char buf ',';
      Buffer.add_char buf ')'
  | DictLit kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf k;
          Buffer.add_string buf ": ";
          expr buf v)
        kvs;
      Buffer.add_char buf '}'

let rec stmt buf ~indent s =
  let pad = String.make indent ' ' in
  let line txt = Buffer.add_string buf (pad ^ txt ^ "\n") in
  let suite body = List.iter (stmt buf ~indent:(indent + 4)) body in
  match s with
  | ExprStmt e ->
      Buffer.add_string buf pad;
      expr buf e;
      Buffer.add_char buf '\n'
  | Assign (t, v) ->
      Buffer.add_string buf pad;
      (* bare tuple targets print without parens *)
      (match t with
      | TupleLit es when es <> [] ->
          List.iteri
            (fun i e ->
              if i > 0 then Buffer.add_string buf ", ";
              expr buf e)
            es
      | t -> expr buf t);
      Buffer.add_string buf " = ";
      (match v with
      | TupleLit es when List.length es > 1 ->
          List.iteri
            (fun i e ->
              if i > 0 then Buffer.add_string buf ", ";
              expr buf e)
            es
      | v -> expr buf v);
      Buffer.add_char buf '\n'
  | AugAssign (op, t, v) ->
      Buffer.add_string buf pad;
      expr buf t;
      Buffer.add_char buf ' ';
      Buffer.add_string buf op;
      Buffer.add_char buf ' ';
      expr buf v;
      Buffer.add_char buf '\n'
  | If (chain, orelse) ->
      List.iteri
        (fun i (c, body) ->
          Buffer.add_string buf pad;
          Buffer.add_string buf (if i = 0 then "if " else "elif ");
          expr buf c;
          Buffer.add_string buf ":\n";
          suite body)
        chain;
      (match orelse with
      | Some body ->
          line "else:";
          suite body
      | None -> ())
  | While (c, body) ->
      Buffer.add_string buf pad;
      Buffer.add_string buf "while ";
      expr buf c;
      Buffer.add_string buf ":\n";
      suite body
  | For (t, it, body) ->
      Buffer.add_string buf pad;
      Buffer.add_string buf "for ";
      (match t with
      | TupleLit es when es <> [] ->
          List.iteri
            (fun i e ->
              if i > 0 then Buffer.add_string buf ", ";
              expr buf e)
            es
      | t -> expr buf t);
      Buffer.add_string buf " in ";
      expr buf it;
      Buffer.add_string buf ":\n";
      suite body
  | Return None -> line "return"
  | Return (Some e) ->
      Buffer.add_string buf pad;
      Buffer.add_string buf "return ";
      (match e with
      | TupleLit es when List.length es > 1 ->
          List.iteri
            (fun i e ->
              if i > 0 then Buffer.add_string buf ", ";
              expr buf e)
            es
      | e -> expr buf e);
      Buffer.add_char buf '\n'
  | Pass -> line "pass"
  | Break -> line "break"
  | Continue -> line "continue"
  | Raise None -> line "raise"
  | Raise (Some e) ->
      Buffer.add_string buf pad;
      Buffer.add_string buf "raise ";
      expr buf e;
      Buffer.add_char buf '\n'
  | Try (body, handlers, fin) ->
      line "try:";
      suite body;
      List.iter
        (fun h ->
          Buffer.add_string buf pad;
          Buffer.add_string buf "except";
          (match h.h_type with
          | Some t ->
              Buffer.add_char buf ' ';
              expr buf t
          | None -> ());
          (match h.h_name with
          | Some n ->
              Buffer.add_string buf " as ";
              Buffer.add_string buf n
          | None -> ());
          Buffer.add_string buf ":\n";
          suite h.h_body)
        handlers;
      (match fin with
      | Some body ->
          line "finally:";
          suite body
      | None -> ())
  | FuncDef (name, params, body) ->
      Buffer.add_string buf pad;
      Buffer.add_string buf "def ";
      Buffer.add_string buf name;
      Buffer.add_char buf '(';
      Buffer.add_string buf (String.concat ", " params);
      Buffer.add_string buf "):\n";
      suite body
  | Import path -> line ("import " ^ String.concat "." path)

let program_to_string p =
  let buf = Buffer.create 256 in
  List.iter (stmt buf ~indent:0) p;
  Buffer.contents buf

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr buf e;
  Buffer.contents buf

let pp_program ppf p = Format.pp_print_string ppf (program_to_string p)
