(** Indentation-sensitive MiniPython lexer.

    Implements CPython's layout algorithm: an indentation stack turns
    leading whitespace into {!Token.Indent}/{!Token.Dedent} tokens;
    {!Token.Newline} ends each logical line. Blank and comment-only
    lines produce no layout tokens, and newlines inside brackets are
    suppressed (implicit line joining). At end of input, pending
    dedents are emitted before {!Token.Eof}. *)

val tokenize : string -> Token.spanned list
(** Raises {!Lexkit.Error} on inconsistent dedents or malformed
    input. *)

val token_values : string -> string list
(** Lexemes of non-layout tokens; for the token-stream baselines. *)
