type t =
  | Ident of string
  | Num of string
  | Str of string
  | Punct of string
  | Kw of string
  | Newline
  | Indent
  | Dedent
  | Eof

type spanned = { tok : t; pos : Lexkit.pos }

let keywords =
  [
    "def"; "return"; "if"; "elif"; "else"; "while"; "for"; "in"; "not";
    "and"; "or"; "pass"; "break"; "continue"; "True"; "False"; "None";
    "raise"; "try"; "except"; "finally"; "as"; "is"; "import"; "from";
    "del"; "global"; "with"; "lambda";
  ]

let is_keyword s = List.mem s keywords

let equal a b =
  match (a, b) with
  | Ident x, Ident y | Num x, Num y | Str x, Str y | Punct x, Punct y
  | Kw x, Kw y ->
      String.equal x y
  | Newline, Newline | Indent, Indent | Dedent, Dedent | Eof, Eof -> true
  | _ -> false

let to_string = function
  | Ident s | Num s | Punct s | Kw s -> s
  | Str s -> Printf.sprintf "%S" s
  | Newline -> "<newline>"
  | Indent -> "<indent>"
  | Dedent -> "<dedent>"
  | Eof -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
