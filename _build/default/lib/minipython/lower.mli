(** Lowering MiniPython to the generic AST with CPython-style labels
    ([Module], [FunctionDef], [Name], [Attribute], [Compare==], ...).

    Scope resolution follows Python's rule: a name is local to the
    function (or module) in which it is assigned — assignment targets,
    augmented-assignment targets, [for] targets, parameters, [def]
    names and [except ... as] names all bind. Names that are only read
    resolve to the enclosing scopes, else they are free
    ({!Ast.Tree.Name}: builtins like [len], imported names). *)

val program : Syntax.program -> Ast.Tree.t

val function_name_label : string
(** ["FunctionName"] — label of [def] name terminals. *)
