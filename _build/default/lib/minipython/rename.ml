open Syntax
module Sset = Set.Make (String)

(* Reuse the same local-ness rule as Lower.assigned_in. *)
let rec assigned_in stmts = List.fold_left assigned_stmt Sset.empty stmts

and target_names acc = function
  | Ident n -> Sset.add n acc
  | TupleLit es | ListLit es -> List.fold_left target_names acc es
  | _ -> acc

and assigned_stmt acc = function
  | Assign (t, _) -> target_names acc t
  | AugAssign (_, t, _) -> target_names acc t
  | For (t, _, body) -> Sset.union (target_names acc t) (assigned_in body)
  (* Function names are *not* renamed: the variable-name task treats
     them as given (only variables and parameters are stripped). *)
  | FuncDef (_, _, _) -> acc
  | If (chain, orelse) ->
      let acc =
        List.fold_left
          (fun acc (_, body) -> Sset.union acc (assigned_in body))
          acc chain
      in
      Option.fold ~none:acc ~some:(fun b -> Sset.union acc (assigned_in b)) orelse
  | While (_, body) -> Sset.union acc (assigned_in body)
  | Try (body, handlers, fin) ->
      let acc = Sset.union acc (assigned_in body) in
      let acc =
        List.fold_left
          (fun acc h ->
            let acc = Sset.union acc (assigned_in h.h_body) in
            match h.h_name with Some n -> Sset.add n acc | None -> acc)
          acc handlers
      in
      Option.fold ~none:acc ~some:(fun b -> Sset.union acc (assigned_in b)) fin
  | Import _ | ExprStmt _ | Return _ | Pass | Break | Continue | Raise _ -> acc

let rename_if env f n =
  if Sset.mem n env then Option.value (f n) ~default:n else n

let rec rn_expr env f e =
  let go = rn_expr env f in
  match e with
  | Ident n -> Ident (rename_if env f n)
  | Num _ | Str _ | Bool _ | NoneLit -> e
  | BoolOp (op, a, b) -> BoolOp (op, go a, go b)
  | Not a -> Not (go a)
  | Compare (op, a, b) -> Compare (op, go a, go b)
  | BinOp (op, a, b) -> BinOp (op, go a, go b)
  | Neg a -> Neg (go a)
  | Call (fn, args, kwargs) ->
      Call (go fn, List.map go args, List.map (fun (k, v) -> (k, go v)) kwargs)
  | Attribute (o, a) -> Attribute (go o, a)
  | Subscript (o, i) -> Subscript (go o, go i)
  | ListLit es -> ListLit (List.map go es)
  | TupleLit es -> TupleLit (List.map go es)
  | DictLit kvs -> DictLit (List.map (fun (k, v) -> (go k, go v)) kvs)

and rn_stmts env f stmts = List.map (rn_stmt env f) stmts

and rn_stmt env f s =
  let ge = rn_expr env f in
  match s with
  | ExprStmt e -> ExprStmt (ge e)
  | Assign (t, v) -> Assign (ge t, ge v)
  | AugAssign (op, t, v) -> AugAssign (op, ge t, ge v)
  | If (chain, orelse) ->
      If
        ( List.map (fun (c, b) -> (ge c, rn_stmts env f b)) chain,
          Option.map (rn_stmts env f) orelse )
  | While (c, b) -> While (ge c, rn_stmts env f b)
  | For (t, it, b) -> For (ge t, ge it, rn_stmts env f b)
  | Return e -> Return (Option.map ge e)
  | Pass -> Pass
  | Break -> Break
  | Continue -> Continue
  | Raise e -> Raise (Option.map ge e)
  | Try (b, hs, fin) ->
      Try
        ( rn_stmts env f b,
          List.map
            (fun h ->
              {
                h_type = Option.map ge h.h_type;
                h_name = Option.map (rename_if env f) h.h_name;
                h_body = rn_stmts env f h.h_body;
              })
            hs,
          Option.map (rn_stmts env f) fin )
  | FuncDef (name, params, body) ->
      let inner =
        Sset.union env
          (Sset.union (Sset.of_list params) (assigned_in body))
      in
      FuncDef
        ( rename_if env f name,
          List.map (rename_if inner f) params,
          rn_stmts inner f body )
  | Import path -> Import path

let apply f p =
  let env = assigned_in p in
  rn_stmts env f p

let short_name i =
  let rec go i acc =
    let acc = String.make 1 (Char.chr (Char.code 'a' + (i mod 26))) ^ acc in
    if i < 26 then acc else go ((i / 26) - 1) acc
  in
  go i ""

let local_names p =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let record n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      order := n :: !order
    end
  in
  let (_ : program) =
    apply
      (fun n ->
        record n;
        None)
      p
  in
  List.rev !order

let strip p =
  let names = local_names p in
  let mapping = List.mapi (fun i n -> (n, short_name i)) names in
  (apply (fun n -> List.assoc_opt n mapping) p, mapping)
