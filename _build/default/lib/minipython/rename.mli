(** Binding-aware renaming for MiniPython (strip locals / re-apply
    predictions, as in the paper's Fig. 7). *)

val apply : (string -> string option) -> Syntax.program -> Syntax.program
val strip : Syntax.program -> Syntax.program * (string * string) list
val local_names : Syntax.program -> string list
