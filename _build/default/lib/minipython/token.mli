(** Tokens of the MiniPython front-end, including the layout tokens
    produced by the indentation-sensitive lexer. *)

type t =
  | Ident of string
  | Num of string
  | Str of string
  | Punct of string
  | Kw of string
  | Newline
  | Indent
  | Dedent
  | Eof

type spanned = { tok : t; pos : Lexkit.pos }

val keywords : string list
val is_keyword : string -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
