(** Source rendering of MiniPython ASTs (4-space indentation); output
    re-parses to an equal program. *)

val expr_to_string : Syntax.expr -> string
val program_to_string : Syntax.program -> string
val pp_program : Format.formatter -> Syntax.program -> unit
