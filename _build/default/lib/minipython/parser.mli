(** Recursive-descent parser for MiniPython over the layout-token
    stream of {!Lexer}: suites are [NEWLINE INDENT stmt+ DEDENT].

    Tuple displays without parentheses are handled at statement level
    ([o, e = p.communicate()], [return a, b]); keyword arguments are
    recognized by [ident =] lookahead inside call argument lists. *)

val parse : string -> Syntax.program
(** Raises {!Lexkit.Error} on syntax errors. *)

val parse_expr : string -> Syntax.expr
