lib/minipython/rename.ml: Char Hashtbl List Option Set String Syntax
