lib/minipython/printer.mli: Format Syntax
