lib/minipython/syntax.ml: Stdlib
