lib/minipython/syntax.mli:
