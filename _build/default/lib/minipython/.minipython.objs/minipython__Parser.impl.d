lib/minipython/parser.ml: Lexer Lexkit List Syntax Token
