lib/minipython/lower.mli: Ast Syntax
