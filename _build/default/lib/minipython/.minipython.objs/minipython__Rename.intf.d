lib/minipython/rename.mli: Syntax
