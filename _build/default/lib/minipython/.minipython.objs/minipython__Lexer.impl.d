lib/minipython/lexer.ml: Cursor Lexkit List String Token
