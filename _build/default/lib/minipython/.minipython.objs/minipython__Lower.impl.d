lib/minipython/lower.ml: Ast List Option Set String Syntax
