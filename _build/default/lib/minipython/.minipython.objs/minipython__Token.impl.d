lib/minipython/token.ml: Format Lexkit List Printf String
