lib/minipython/parser.mli: Syntax
