lib/minipython/token.mli: Format Lexkit
