lib/minipython/lexer.mli: Token
