lib/minipython/printer.ml: Buffer Format List String Syntax
