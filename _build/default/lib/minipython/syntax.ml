type expr =
  | Ident of string
  | Num of string
  | Str of string
  | Bool of bool
  | NoneLit
  | BoolOp of string * expr * expr
  | Not of expr
  | Compare of string * expr * expr
  | BinOp of string * expr * expr
  | Neg of expr
  | Call of expr * expr list * (string * expr) list
  | Attribute of expr * string
  | Subscript of expr * expr
  | ListLit of expr list
  | TupleLit of expr list
  | DictLit of (expr * expr) list

and stmt =
  | ExprStmt of expr
  | Assign of expr * expr
  | AugAssign of string * expr * expr
  | If of (expr * stmt list) list * stmt list option
  | While of expr * stmt list
  | For of expr * expr * stmt list
  | Return of expr option
  | Pass
  | Break
  | Continue
  | Raise of expr option
  | Try of stmt list * handler list * stmt list option
  | FuncDef of string * string list * stmt list
  | Import of string list

and handler = {
  h_type : expr option;
  h_name : string option;
  h_body : stmt list;
}

type program = stmt list

let equal_program a b = Stdlib.compare a b = 0
let equal_expr a b = Stdlib.compare a b = 0
