open Syntax
module T = Ast.Tree
module Sset = Set.Make (String)

let function_name_label = "FunctionName"

type ctx = { mutable next_binder : int }

type scope = {
  mutable bindings : (string * int) list;
  parent : scope option;
}

let fresh ctx =
  let id = ctx.next_binder in
  ctx.next_binder <- id + 1;
  id

let rec lookup scope name =
  match List.assoc_opt name scope.bindings with
  | Some id -> Some id
  | None -> (
      match scope.parent with Some p -> lookup p name | None -> None)

let bind ctx scope name =
  match List.assoc_opt name scope.bindings with
  | Some id -> id
  | None ->
      let id = fresh ctx in
      scope.bindings <- (name, id) :: scope.bindings;
      id

(* Names assigned in a statement list (not descending into nested
   functions): Python's locals-of-a-scope rule. *)
let rec assigned_in stmts = List.fold_left assigned_stmt Sset.empty stmts

and target_names acc = function
  | Ident n -> Sset.add n acc
  | TupleLit es | ListLit es -> List.fold_left target_names acc es
  | _ -> acc

and assigned_stmt acc = function
  | Assign (t, _) -> target_names acc t
  | AugAssign (_, t, _) -> target_names acc t
  | For (t, _, body) -> Sset.union (target_names acc t) (assigned_in body)
  | FuncDef (n, _, _) -> Sset.add n acc
  | If (chain, orelse) ->
      let acc =
        List.fold_left
          (fun acc (_, body) -> Sset.union acc (assigned_in body))
          acc chain
      in
      Option.fold ~none:acc ~some:(fun b -> Sset.union acc (assigned_in b)) orelse
  | While (_, body) -> Sset.union acc (assigned_in body)
  | Try (body, handlers, fin) ->
      let acc = Sset.union acc (assigned_in body) in
      let acc =
        List.fold_left
          (fun acc h ->
            let acc = Sset.union acc (assigned_in h.h_body) in
            match h.h_name with Some n -> Sset.add n acc | None -> acc)
          acc handlers
      in
      Option.fold ~none:acc ~some:(fun b -> Sset.union acc (assigned_in b)) fin
  | Import path -> (
      match path with [] -> acc | p -> Sset.add (List.hd p) acc)
  | ExprStmt _ | Return _ | Pass | Break | Continue | Raise _ -> acc

let rec lower_expr ctx scope e =
  let go = lower_expr ctx scope in
  match e with
  | Ident n -> (
      match lookup scope n with
      | Some id -> T.var id "Name" n
      | None -> T.term ~sort:T.Name "Name" n)
  | Num n -> T.term ~sort:T.Lit "Num" n
  | Str s -> T.term ~sort:T.Lit "Str" s
  | Bool b -> T.term ~sort:T.Lit "NameConstant" (if b then "True" else "False")
  | NoneLit -> T.term ~sort:T.Lit "NameConstant" "None"
  | BoolOp (op, a, b) ->
      T.nt ("BoolOp" ^ String.capitalize_ascii op) [ go a; go b ]
  | Not a -> T.nt "UnaryOpNot" [ go a ]
  | Compare (op, a, b) -> T.nt ("Compare" ^ op) [ go a; go b ]
  | BinOp (op, a, b) -> T.nt ("BinOp" ^ op) [ go a; go b ]
  | Neg a -> T.nt "UnaryOpUSub" [ go a ]
  | Call (f, args, kwargs) ->
      T.nt "Call"
        ((go f :: List.map go args)
        @ List.map
            (fun (k, v) ->
              T.nt "keyword" [ T.term ~sort:T.Name "KeywordArg" k; go v ])
            kwargs)
  | Attribute (o, a) ->
      T.nt "Attribute" [ go o; T.term ~sort:T.Name "AttrName" a ]
  | Subscript (o, i) -> T.nt "Subscript" [ go o; go i ]
  | ListLit es -> T.nt "List" (List.map go es)
  | TupleLit es -> T.nt "Tuple" (List.map go es)
  | DictLit kvs ->
      T.nt "Dict" (List.concat_map (fun (k, v) -> [ go k; go v ]) kvs)

(* Lower an assignment target, creating bindings. *)
let rec lower_target ctx scope e =
  match e with
  | Ident n ->
      let id = bind ctx scope n in
      T.var id "Name" n
  | TupleLit es -> T.nt "Tuple" (List.map (lower_target ctx scope) es)
  | ListLit es -> T.nt "List" (List.map (lower_target ctx scope) es)
  | other -> lower_expr ctx scope other

let rec lower_stmts ctx scope stmts = List.concat_map (lower_stmt ctx scope) stmts

and lower_stmt ctx scope s =
  let ge = lower_expr ctx scope in
  match s with
  | ExprStmt e -> [ ge e ]
  | Assign (t, v) ->
      (* Value first: Python evaluates the RHS before binding. *)
      let v_node = ge v in
      [ T.nt "Assign" [ lower_target ctx scope t; v_node ] ]
  | AugAssign (op, t, v) ->
      let v_node = ge v in
      [ T.nt ("AugAssign" ^ op) [ lower_target ctx scope t; v_node ] ]
  | If (chain, orelse) ->
      (* An if/elif chain lowers to nested If nodes in orelse position,
         matching CPython's AST. *)
      let rec build = function
        | [] -> (
            match orelse with
            | Some body -> lower_stmts ctx scope body
            | None -> [])
        | (c, body) :: rest ->
            let rest_nodes = build rest in
            [
              T.nt "If"
                ((ge c :: lower_stmts ctx scope body)
                @
                if rest_nodes = [] then []
                else [ T.nt "orelse" rest_nodes ]);
            ]
      in
      build chain
  | While (c, body) -> [ T.nt "While" (ge c :: lower_stmts ctx scope body) ]
  | For (t, it, body) ->
      let it_node = ge it in
      [
        T.nt "For"
          (lower_target ctx scope t :: it_node :: lower_stmts ctx scope body);
      ]
  | Return None -> [ T.nt "Return" [] ]
  | Return (Some e) -> [ T.nt "Return" [ ge e ] ]
  | Pass -> [ T.term ~sort:T.Kw "Pass" "pass" ]
  | Break -> [ T.term ~sort:T.Kw "Break" "break" ]
  | Continue -> [ T.term ~sort:T.Kw "Continue" "continue" ]
  | Raise None -> [ T.nt "Raise" [] ]
  | Raise (Some e) -> [ T.nt "Raise" [ ge e ] ]
  | Try (body, handlers, fin) ->
      [
        T.nt "Try"
          (lower_stmts ctx scope body
          @ List.map
              (fun h ->
                let h_nodes =
                  (match h.h_type with Some t -> [ ge t ] | None -> [])
                  @ (match h.h_name with
                    | Some n -> [ T.var (bind ctx scope n) "ExceptName" n ]
                    | None -> [])
                  @ lower_stmts ctx scope h.h_body
                in
                T.nt "ExceptHandler" h_nodes)
              handlers
          @
          match fin with
          | Some body -> [ T.nt "finalbody" (lower_stmts ctx scope body) ]
          | None -> []);
      ]
  | FuncDef (name, params, body) ->
      let fid = bind ctx scope name in
      let inner = { bindings = []; parent = Some scope } in
      let param_nodes =
        List.map (fun p -> T.var (bind ctx inner p) "arg" p) params
      in
      (* Pre-bind all names assigned in the body: Python decides
         local-ness per scope, not per first assignment. *)
      Sset.iter
        (fun n -> ignore (bind ctx inner n))
        (assigned_in body);
      [
        T.nt "FunctionDef"
          (T.var fid function_name_label name
          :: T.nt "arguments" param_nodes
          :: lower_stmts ctx inner body);
      ]
  | Import path ->
      [ T.nt "Import" [ T.term ~sort:T.Name "Name" (String.concat "." path) ] ]

let program p =
  let ctx = { next_binder = 0 } in
  let top = { bindings = []; parent = None } in
  Sset.iter (fun n -> ignore (bind ctx top n)) (assigned_in p);
  T.nt "Module" (lower_stmts ctx top p)
