open Minijava.Syntax
module Types = Minijava.Types

let prec = function
  | Assign _ -> 1
  | Cond _ -> 2
  | Binary ("||", _, _) -> 3
  | Binary ("&&", _, _) -> 4
  | Binary ("|", _, _) -> 5
  | Binary ("^", _, _) -> 6
  | Binary ("&", _, _) -> 7
  | Binary (("==" | "!="), _, _) -> 8
  | Binary (("<" | ">" | "<=" | ">="), _, _) | InstanceOf _ -> 9
  | Binary (("+" | "-"), _, _) -> 10
  | Binary _ -> 11
  | Unary _ | Update (_, true, _) | Cast _ -> 12
  | Update (_, false, _) -> 13
  | Call _ | New _ | NewArray _ | FieldAccess _ | Index _ -> 14
  | _ -> 15

let escape_str s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr buf e =
  let atom ?(p = prec e) sub =
    if prec sub < p then begin
      Buffer.add_char buf '(';
      expr buf sub;
      Buffer.add_char buf ')'
    end
    else expr buf sub
  in
  match e with
  | Ident id -> Buffer.add_string buf id
  | IntLit n | DoubleLit n -> Buffer.add_string buf n
  | StrLit s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_str s);
      Buffer.add_char buf '"'
  | CharLit c ->
      Buffer.add_char buf '\'';
      Buffer.add_string buf (escape_str c);
      Buffer.add_char buf '\''
  | BoolLit b -> Buffer.add_string buf (if b then "true" else "false")
  | NullLit -> Buffer.add_string buf "null"
  | This -> Buffer.add_string buf "this"
  | Unary (op, e1) ->
      Buffer.add_string buf op;
      atom e1
  | Update (op, true, e1) ->
      Buffer.add_string buf op;
      atom e1
  | Update (op, false, e1) ->
      atom e1;
      Buffer.add_string buf op
  | Binary (op, a, b) ->
      let p = prec e in
      atom ~p a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf op;
      Buffer.add_char buf ' ';
      if prec b <= p then begin
        Buffer.add_char buf '(';
        expr buf b;
        Buffer.add_char buf ')'
      end
      else expr buf b
  | Assign (op, l, r) ->
      atom ~p:2 l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf op;
      Buffer.add_char buf ' ';
      expr buf r
  | Cond (c, t, f) ->
      atom ~p:3 c;
      Buffer.add_string buf " ? ";
      atom ~p:2 t;
      Buffer.add_string buf " : ";
      atom ~p:2 f
  | Call (recv, name, args) ->
      (match recv with
      | Some r ->
          atom ~p:14 r;
          Buffer.add_char buf '.'
      | None -> ());
      Buffer.add_string buf name;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf a)
        args;
      Buffer.add_char buf ')'
  | FieldAccess (e1, f) ->
      atom ~p:14 e1;
      Buffer.add_char buf '.';
      Buffer.add_string buf f
  | Index (e1, i) ->
      atom ~p:14 e1;
      Buffer.add_char buf '[';
      expr buf i;
      Buffer.add_char buf ']'
  | New (t, args) ->
      Buffer.add_string buf "new ";
      Buffer.add_string buf (Types.to_string t);
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf a)
        args;
      Buffer.add_char buf ')'
  | NewArray (t, n) ->
      Buffer.add_string buf "new ";
      Buffer.add_string buf (Types.to_string t);
      Buffer.add_char buf '[';
      expr buf n;
      Buffer.add_char buf ']'
  | Cast (t, e1) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (Types.to_string t);
      Buffer.add_string buf ") ";
      atom ~p:12 e1
  | InstanceOf (e1, t) ->
      atom ~p:9 e1;
      Buffer.add_string buf " is ";
      Buffer.add_string buf (Types.to_string t)

and block buf ~indent stmts =
  Buffer.add_string buf "{\n";
  List.iter (fun s -> stmt buf ~indent:(indent + 2) s) stmts;
  Buffer.add_string buf (String.make indent ' ');
  Buffer.add_char buf '}'

and stmt buf ~indent s =
  let pad = String.make indent ' ' in
  Buffer.add_string buf pad;
  (match s with
  | LocalDecl (ty, ds) ->
      Buffer.add_string buf (Types.to_string ty);
      Buffer.add_char buf ' ';
      List.iteri
        (fun i (n, init) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf n;
          match init with
          | Some e ->
              Buffer.add_string buf " = ";
              expr buf e
          | None -> ())
        ds;
      Buffer.add_char buf ';'
  | ExprStmt e ->
      expr buf e;
      Buffer.add_char buf ';'
  | If (c, t, e) -> (
      Buffer.add_string buf "if (";
      expr buf c;
      Buffer.add_string buf ") ";
      block buf ~indent t;
      match e with
      | Some e ->
          Buffer.add_string buf " else ";
          block buf ~indent e
      | None -> ())
  | While (c, body) ->
      Buffer.add_string buf "while (";
      expr buf c;
      Buffer.add_string buf ") ";
      block buf ~indent body
  | DoWhile (body, c) ->
      Buffer.add_string buf "do ";
      block buf ~indent body;
      Buffer.add_string buf " while (";
      expr buf c;
      Buffer.add_string buf ");"
  | For (init, cond, update, body) ->
      Buffer.add_string buf "for (";
      (match init with
      | Some (LocalDecl _ as d) ->
          let b2 = Buffer.create 32 in
          stmt b2 ~indent:0 d;
          Buffer.add_string buf (String.trim (Buffer.contents b2))
      | Some (ExprStmt e) ->
          expr buf e;
          Buffer.add_char buf ';'
      | Some _ | None -> Buffer.add_char buf ';');
      Buffer.add_char buf ' ';
      Option.iter (expr buf) cond;
      Buffer.add_string buf "; ";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf e)
        update;
      Buffer.add_string buf ") ";
      block buf ~indent body
  | ForEach (ty, name, it, body) ->
      Buffer.add_string buf "foreach (";
      Buffer.add_string buf (Types.to_string ty);
      Buffer.add_char buf ' ';
      Buffer.add_string buf name;
      Buffer.add_string buf " in ";
      expr buf it;
      Buffer.add_string buf ") ";
      block buf ~indent body
  | Return None -> Buffer.add_string buf "return;"
  | Return (Some e) ->
      Buffer.add_string buf "return ";
      expr buf e;
      Buffer.add_char buf ';'
  | Break -> Buffer.add_string buf "break;"
  | Continue -> Buffer.add_string buf "continue;"
  | Try (body, catch, finally) ->
      Buffer.add_string buf "try ";
      block buf ~indent body;
      (match catch with
      | Some (ty, v, cbody) ->
          Buffer.add_string buf " catch (";
          Buffer.add_string buf (Types.to_string ty);
          Buffer.add_char buf ' ';
          Buffer.add_string buf v;
          Buffer.add_string buf ") ";
          block buf ~indent cbody
      | None -> ());
      (match finally with
      | Some fbody ->
          Buffer.add_string buf " finally ";
          block buf ~indent fbody
      | None -> ())
  | Throw e ->
      Buffer.add_string buf "throw ";
      expr buf e;
      Buffer.add_char buf ';'
  | Block stmts -> block buf ~indent stmts);
  Buffer.add_char buf '\n'

let meth buf ~indent m =
  Buffer.add_string buf (String.make indent ' ');
  let mods = List.filter (fun x -> x <> "constructor") m.m_modifiers in
  List.iter
    (fun md ->
      Buffer.add_string buf md;
      Buffer.add_char buf ' ')
    mods;
  if not (List.mem "constructor" m.m_modifiers) then begin
    Buffer.add_string buf (Types.to_string m.m_ret);
    Buffer.add_char buf ' '
  end;
  Buffer.add_string buf m.m_name;
  Buffer.add_char buf '(';
  List.iteri
    (fun i (ty, n) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Types.to_string ty);
      Buffer.add_char buf ' ';
      Buffer.add_string buf n)
    m.m_params;
  Buffer.add_string buf ") ";
  block buf ~indent m.m_body;
  Buffer.add_char buf '\n'

let field buf ~indent f =
  Buffer.add_string buf (String.make indent ' ');
  List.iter
    (fun md ->
      Buffer.add_string buf md;
      Buffer.add_char buf ' ')
    f.f_modifiers;
  Buffer.add_string buf (Types.to_string f.f_ty);
  Buffer.add_char buf ' ';
  Buffer.add_string buf f.f_name;
  (match f.f_init with
  | Some e ->
      Buffer.add_string buf " = ";
      expr buf e
  | None -> ());
  Buffer.add_string buf ";\n"

let cls buf ~indent c =
  Buffer.add_string buf (String.make indent ' ');
  List.iter
    (fun md ->
      if md <> "interface" then begin
        Buffer.add_string buf md;
        Buffer.add_char buf ' '
      end)
    c.c_modifiers;
  Buffer.add_string buf
    (if List.mem "interface" c.c_modifiers then "interface " else "class ");
  Buffer.add_string buf c.c_name;
  let bases =
    (match c.c_extends with Some t -> [ t ] | None -> []) @ c.c_implements
  in
  if bases <> [] then begin
    Buffer.add_string buf " : ";
    Buffer.add_string buf (String.concat ", " (List.map Types.to_string bases))
  end;
  Buffer.add_string buf " {\n";
  List.iter (field buf ~indent:(indent + 2)) c.c_fields;
  List.iter (meth buf ~indent:(indent + 2)) c.c_methods;
  Buffer.add_string buf (String.make indent ' ');
  Buffer.add_string buf "}\n"

let program_to_string p =
  let buf = Buffer.create 512 in
  List.iter
    (fun i ->
      Buffer.add_string buf "using ";
      Buffer.add_string buf i;
      Buffer.add_string buf ";\n")
    p.imports;
  (match p.package with
  | Some ns ->
      Buffer.add_string buf "namespace ";
      Buffer.add_string buf ns;
      Buffer.add_string buf " {\n";
      List.iter (cls buf ~indent:2) p.classes;
      Buffer.add_string buf "}\n"
  | None -> List.iter (cls buf ~indent:0) p.classes);
  Buffer.contents buf

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr buf e;
  Buffer.contents buf

let pp_program ppf p = Format.pp_print_string ppf (program_to_string p)
