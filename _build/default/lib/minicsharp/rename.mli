(** Renaming for MiniC#: the syntax tree is shared with MiniJava, so
    this simply re-exports {!Minijava.Rename}. *)

val apply :
  (string -> string option) -> Minijava.Syntax.program -> Minijava.Syntax.program

val strip :
  Minijava.Syntax.program -> Minijava.Syntax.program * (string * string) list

val local_names : Minijava.Syntax.program -> string list
