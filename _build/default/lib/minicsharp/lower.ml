open Minijava.Syntax
module Types = Minijava.Types
module T = Ast.Tree

let method_name_label = "MethodName"

type ctx = { mutable next_binder : int }

type scope = {
  mutable bindings : (string * int) list;
  parent : scope option;
}

let fresh ctx =
  let id = ctx.next_binder in
  ctx.next_binder <- id + 1;
  id

let rec lookup scope name =
  match List.assoc_opt name scope.bindings with
  | Some id -> Some id
  | None -> (
      match scope.parent with Some p -> lookup p name | None -> None)

let bind ctx scope name =
  let id = fresh ctx in
  scope.bindings <- (name, id) :: scope.bindings;
  id

let child scope = { bindings = []; parent = Some scope }

let rec lower_ty ty =
  match ty with
  | Types.Prim p -> T.term ~sort:T.Kw "PredefinedType" p
  | Types.Named (q, []) ->
      T.nt "IdentifierType" [ T.term ~sort:T.Name "TypeName" (String.concat "." q) ]
  | Types.Named (q, args) ->
      T.nt "GenericName"
        (T.term ~sort:T.Name "TypeName" (String.concat "." q)
        :: [ T.nt "TypeArgumentList" (List.map lower_ty args) ])
  | Types.Arr e -> T.nt "ArrayType" [ lower_ty e ]

let rec lower_expr ctx scope e =
  let go = lower_expr ctx scope in
  let args_node args =
    T.nt "ArgumentList" (List.map (fun a -> T.nt "Argument" [ go a ]) args)
  in
  match e with
  | Ident n -> (
      match lookup scope n with
      | Some id -> T.var id "IdentifierName" n
      | None -> T.term ~sort:T.Name "IdentifierName" n)
  | IntLit n -> T.term ~sort:T.Lit "NumericLiteral" n
  | DoubleLit n -> T.term ~sort:T.Lit "NumericLiteral" n
  | StrLit s -> T.term ~sort:T.Lit "StringLiteral" s
  | CharLit c -> T.term ~sort:T.Lit "CharacterLiteral" c
  | BoolLit b ->
      T.term ~sort:T.Lit
        (if b then "TrueLiteralExpression" else "FalseLiteralExpression")
        (if b then "true" else "false")
  | NullLit -> T.term ~sort:T.Lit "NullLiteralExpression" "null"
  | This -> T.term ~sort:T.Kw "ThisExpression" "this"
  | Binary (op, a, b) -> T.nt ("BinaryExpression" ^ op) [ go a; go b ]
  | Unary (op, e1) -> T.nt ("PrefixUnaryExpression" ^ op) [ go e1 ]
  | Update (op, true, e1) -> T.nt ("PrefixUnaryExpression" ^ op) [ go e1 ]
  | Update (op, false, e1) -> T.nt ("PostfixUnaryExpression" ^ op) [ go e1 ]
  | Assign (op, l, r) -> T.nt ("AssignmentExpression" ^ op) [ go l; go r ]
  | Cond (c, t, f) -> T.nt "ConditionalExpression" [ go c; go t; go f ]
  | Call (recv, name, args) ->
      let callee =
        match recv with
        | Some r ->
            T.nt "SimpleMemberAccessExpression"
              [ go r; T.term ~sort:T.Name "IdentifierName" name ]
        | None -> T.term ~sort:T.Name "IdentifierName" name
      in
      T.nt "InvocationExpression" [ callee; args_node args ]
  | FieldAccess (recv, name) ->
      T.nt "SimpleMemberAccessExpression"
        [ go recv; T.term ~sort:T.Name "IdentifierName" name ]
  | Index (arr, i) ->
      T.nt "ElementAccessExpression"
        [ go arr; T.nt "BracketedArgumentList" [ T.nt "Argument" [ go i ] ] ]
  | New (t, args) ->
      T.nt "ObjectCreationExpression" [ lower_ty t; args_node args ]
  | NewArray (t, n) -> T.nt "ArrayCreationExpression" [ lower_ty t; go n ]
  | Cast (t, e1) -> T.nt "CastExpression" [ lower_ty t; go e1 ]
  | InstanceOf (e1, t) -> T.nt "IsExpression" [ go e1; lower_ty t ]

and lower_stmts ctx scope stmts = List.concat_map (lower_stmt ctx scope) stmts

and lower_stmt ctx scope s =
  let ge = lower_expr ctx scope in
  match s with
  | LocalDecl (ty, ds) ->
      [
        T.nt "LocalDeclarationStatement"
          [
            T.nt "VariableDeclaration"
              (lower_ty ty
              :: List.map
                   (fun (n, init) ->
                     let init_nodes =
                       match init with
                       | Some e -> [ T.nt "EqualsValueClause" [ ge e ] ]
                       | None -> []
                     in
                     let id = bind ctx scope n in
                     T.nt "VariableDeclarator"
                       (T.var id "VarName" n :: init_nodes))
                   ds);
          ];
      ]
  | ExprStmt e -> [ T.nt "ExpressionStatement" [ ge e ] ]
  | If (c, t, e) ->
      [
        T.nt "IfStatement"
          ((ge c :: lower_stmts ctx (child scope) t)
          @
          match e with
          | Some e -> [ T.nt "ElseClause" (lower_stmts ctx (child scope) e) ]
          | None -> []);
      ]
  | While (c, body) ->
      [ T.nt "WhileStatement" (ge c :: lower_stmts ctx (child scope) body) ]
  | DoWhile (body, c) ->
      [ T.nt "DoStatement" (lower_stmts ctx (child scope) body @ [ ge c ]) ]
  | For (init, cond, update, body) ->
      let for_scope = child scope in
      let ge' = lower_expr ctx for_scope in
      let init_nodes =
        match init with
        | Some s -> [ T.nt "ForInitializer" (lower_stmt ctx for_scope s) ]
        | None -> []
      in
      let cond_nodes =
        match cond with
        | Some c -> [ T.nt "ForCondition" [ ge' c ] ]
        | None -> []
      in
      let update_nodes =
        match update with
        | [] -> []
        | es -> [ T.nt "ForIncrementors" (List.map ge' es) ]
      in
      [
        T.nt "ForStatement"
          (init_nodes @ cond_nodes @ update_nodes
          @ lower_stmts ctx for_scope body);
      ]
  | ForEach (ty, name, it, body) ->
      let it_node = ge it in
      let each_scope = child scope in
      let id = bind ctx each_scope name in
      [
        T.nt "ForEachStatement"
          (lower_ty ty :: T.var id "VarName" name :: it_node
          :: lower_stmts ctx each_scope body);
      ]
  | Return None -> [ T.nt "ReturnStatement" [] ]
  | Return (Some e) -> [ T.nt "ReturnStatement" [ ge e ] ]
  | Break -> [ T.term ~sort:T.Kw "BreakStatement" "break" ]
  | Continue -> [ T.term ~sort:T.Kw "ContinueStatement" "continue" ]
  | Try (body, catch, finally) ->
      let catch_nodes =
        match catch with
        | Some (ty, v, cbody) ->
            let cscope = child scope in
            let id = bind ctx cscope v in
            [
              T.nt "CatchClause"
                (T.nt "CatchDeclaration" [ lower_ty ty; T.var id "CatchName" v ]
                :: lower_stmts ctx cscope cbody);
            ]
        | None -> []
      in
      let finally_nodes =
        match finally with
        | Some f -> [ T.nt "FinallyClause" (lower_stmts ctx (child scope) f) ]
        | None -> []
      in
      [
        T.nt "TryStatement"
          (lower_stmts ctx (child scope) body @ catch_nodes @ finally_nodes);
      ]
  | Throw e -> [ T.nt "ThrowStatement" [ ge e ] ]
  | Block stmts -> lower_stmts ctx (child scope) stmts

let lower_method ctx m =
  let scope = { bindings = []; parent = None } in
  let params =
    List.map
      (fun (ty, n) ->
        let id = bind ctx scope n in
        T.nt "Parameter" [ lower_ty ty; T.var id "ParamName" n ])
      m.m_params
  in
  T.nt "MethodDeclaration"
    (lower_ty m.m_ret
    :: T.term ~sort:T.Name method_name_label m.m_name
    :: T.nt "ParameterList" params
    :: lower_stmts ctx scope m.m_body)

let lower_field ctx f =
  let scope = { bindings = []; parent = None } in
  T.nt "FieldDeclaration"
    [
      T.nt "VariableDeclaration"
        (lower_ty f.f_ty
        :: [
             T.nt "VariableDeclarator"
               (T.term ~sort:T.Name "FieldName" f.f_name
               :: (match f.f_init with
                  | Some e ->
                      [ T.nt "EqualsValueClause" [ lower_expr ctx scope e ] ]
                  | None -> []));
           ]);
    ]

let lower_class ctx c =
  T.nt "ClassDeclaration"
    (T.term ~sort:T.Name "ClassName" c.c_name
    :: ((match c.c_extends with
        | Some t -> [ T.nt "BaseList" [ lower_ty t ] ]
        | None -> [])
       @ List.map (lower_field ctx) c.c_fields
       @ List.map (lower_method ctx) c.c_methods))

let program p =
  let ctx = { next_binder = 0 } in
  let usings =
    List.map
      (fun i -> T.nt "UsingDirective" [ T.term ~sort:T.Name "Name" i ])
      p.imports
  in
  let classes = List.map (lower_class ctx) p.classes in
  let body =
    match p.package with
    | Some ns ->
        [
          T.nt "NamespaceDeclaration"
            (T.term ~sort:T.Name "Name" ns :: classes);
        ]
    | None -> classes
  in
  T.nt "CompilationUnit" (usings @ body)
