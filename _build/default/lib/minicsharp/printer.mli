(** C# source rendering of the shared syntax tree ([using] directives,
    [namespace] block, [foreach (T x in e)], [e is T]); output
    re-parses to an equal program. *)

val expr_to_string : Minijava.Syntax.expr -> string
val program_to_string : Minijava.Syntax.program -> string
val pp_program : Format.formatter -> Minijava.Syntax.program -> unit
