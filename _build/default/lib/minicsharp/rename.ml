let apply = Minijava.Rename.apply
let strip = Minijava.Rename.strip
let local_names = Minijava.Rename.local_names
