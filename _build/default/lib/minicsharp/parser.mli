(** Recursive-descent parser for MiniC#.

    Produces {!Minijava.Syntax} values: at this subset the two
    languages' trees are isomorphic (as Roslyn's and JavaParser's are
    close cousins), so the C# front-end maps [using] directives to
    imports, the [namespace] block to the package, [foreach (T x in e)]
    to [ForEach], and [e is T] to [InstanceOf]. What makes C# *look*
    different to the learner is {!Lower}, which emits Roslyn-style
    labels and extra wrapper nodes. *)

val parse : string -> Minijava.Syntax.program
val parse_expr : string -> Minijava.Syntax.expr
val parse_stmts : string -> Minijava.Syntax.stmt list
val parse_type : string -> Minijava.Types.t
