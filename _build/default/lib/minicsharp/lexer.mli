(** MiniC# lexer; like the MiniJava lexer with the C# keyword set. *)

val tokenize : string -> Token.spanned list
val token_values : string -> string list
