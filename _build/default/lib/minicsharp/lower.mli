(** Lowering MiniC# to the generic AST with Roslyn-style labels.

    The C# AST is deliberately more elaborate than the Java one — as
    the paper observes of Roslyn ("the C# AST is slightly more
    elaborate than the one we used for Java"): invocation arguments are
    wrapped in [ArgumentList]/[Argument], initializers in
    [EqualsValueClause], expression statements in
    [ExpressionStatement], and parameters in a [ParameterList]. This is
    why the tuned [max_width] for C# (4) exceeds Java's (3). *)

val program : Minijava.Syntax.program -> Ast.Tree.t
val method_name_label : string
