lib/minicsharp/token.mli: Format Lexkit
