lib/minicsharp/lexer.ml: Cursor Lexkit List String Token
