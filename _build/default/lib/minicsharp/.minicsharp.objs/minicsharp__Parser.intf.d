lib/minicsharp/parser.mli: Minijava
