lib/minicsharp/lexer.mli: Token
