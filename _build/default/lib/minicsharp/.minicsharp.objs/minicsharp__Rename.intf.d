lib/minicsharp/rename.mli: Minijava
