lib/minicsharp/printer.ml: Buffer Format List Minijava Option String
