lib/minicsharp/parser.ml: Lexer Lexkit List Minijava String Token
