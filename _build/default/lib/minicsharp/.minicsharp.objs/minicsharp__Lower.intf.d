lib/minicsharp/lower.mli: Ast Minijava
