lib/minicsharp/lower.ml: Ast List Minijava String
