lib/minicsharp/rename.ml: Minijava
