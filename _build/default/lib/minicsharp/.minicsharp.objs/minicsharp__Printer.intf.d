lib/minicsharp/printer.mli: Format Minijava
