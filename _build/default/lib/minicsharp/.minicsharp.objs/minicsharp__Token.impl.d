lib/minicsharp/token.ml: Format Lexkit List Printf String
