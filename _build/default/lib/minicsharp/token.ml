type t =
  | Ident of string
  | IntLit of string
  | DoubleLit of string
  | StrLit of string
  | CharLit of string
  | Punct of string
  | Kw of string
  | Eof

type spanned = { tok : t; pos : Lexkit.pos }

let keywords =
  [
    "using"; "namespace"; "public"; "private"; "protected"; "internal";
    "static"; "readonly"; "const"; "class"; "interface"; "void"; "int";
    "bool"; "double"; "long"; "char"; "byte"; "short"; "float"; "string";
    "var"; "if"; "else"; "while"; "do"; "for"; "foreach"; "in"; "return";
    "break"; "continue"; "new"; "null"; "true"; "false"; "this"; "try";
    "catch"; "finally"; "throw"; "is"; "as"; "base";
  ]

let is_keyword s = List.mem s keywords

let equal a b =
  match (a, b) with
  | Ident x, Ident y
  | IntLit x, IntLit y
  | DoubleLit x, DoubleLit y
  | StrLit x, StrLit y
  | CharLit x, CharLit y
  | Punct x, Punct y
  | Kw x, Kw y ->
      String.equal x y
  | Eof, Eof -> true
  | _ -> false

let to_string = function
  | Ident s | IntLit s | DoubleLit s | Punct s | Kw s -> s
  | StrLit s -> Printf.sprintf "%S" s
  | CharLit s -> Printf.sprintf "'%s'" s
  | Eof -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
