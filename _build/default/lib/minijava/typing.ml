type env = {
  resolve : Types.t -> Types.t;
  local : string -> Types.t option;
  field : string -> Types.t option;
  own_method : string -> Types.t option;
  this_ty : Types.t option;
}

let well_known =
  [
    ("String", "java.lang.String");
    ("Object", "java.lang.Object");
    ("Integer", "java.lang.Integer");
    ("Boolean", "java.lang.Boolean");
    ("Double", "java.lang.Double");
    ("Long", "java.lang.Long");
    ("Character", "java.lang.Character");
    ("Exception", "java.lang.Exception");
    ("RuntimeException", "java.lang.RuntimeException");
    ("IllegalArgumentException", "java.lang.IllegalArgumentException");
    ("IOException", "java.io.IOException");
    ("StringBuilder", "java.lang.StringBuilder");
    ("System", "java.lang.System");
    ("Math", "java.lang.Math");
    ("List", "java.util.List");
    ("ArrayList", "java.util.ArrayList");
    ("Map", "java.util.Map");
    ("HashMap", "java.util.HashMap");
    ("Set", "java.util.Set");
    ("HashSet", "java.util.HashSet");
    ("Iterator", "java.util.Iterator");
    ("Collection", "java.util.Collection");
    ("Arrays", "java.util.Arrays");
    ("Collections", "java.util.Collections");
    ("Scanner", "java.util.Scanner");
    ("File", "java.io.File");
    ("BufferedReader", "java.io.BufferedReader");
    ("FileReader", "java.io.FileReader");
    ("PrintStream", "java.io.PrintStream");
    ("HttpClient", "org.apache.http.client.HttpClient");
    ("HttpRequest", "org.apache.http.HttpRequest");
    ("HttpResponse", "org.apache.http.HttpResponse");
    ("Connection", "java.sql.Connection");
    ("Logger", "java.util.logging.Logger");
    ("Pattern", "java.util.regex.Pattern");
    ("Matcher", "java.util.regex.Matcher");
  ]

let split_dots s = String.split_on_char '.' s

let resolver (p : Syntax.program) =
  (* import path -> maps last segment to full path *)
  let import_map =
    List.filter_map
      (fun imp ->
        match List.rev (split_dots imp) with
        | "*" :: _ -> None
        | last :: _ -> Some (last, imp)
        | [] -> None)
      p.Syntax.imports
  in
  let own_map =
    List.map
      (fun (c : Syntax.cls) ->
        let fq =
          match p.Syntax.package with
          | Some pkg -> pkg ^ "." ^ c.Syntax.c_name
          | None -> c.Syntax.c_name
        in
        (c.Syntax.c_name, fq))
      p.Syntax.classes
  in
  let rec resolve t =
    match t with
    | Types.Prim _ -> t
    | Types.Arr e -> Types.Arr (resolve e)
    | Types.Named ([ simple ], args) ->
        let args = List.map resolve args in
        let fq =
          match List.assoc_opt simple import_map with
          | Some fq -> fq
          | None -> (
              match List.assoc_opt simple own_map with
              | Some fq -> fq
              | None -> (
                  match List.assoc_opt simple well_known with
                  | Some fq -> fq
                  | None -> simple))
        in
        Types.Named (split_dots fq, args)
    | Types.Named (q, args) -> Types.Named (q, List.map resolve args)
  in
  resolve

(* ---------- method signature table ---------- *)

(* Return-type specifications relative to the (resolved) receiver type. *)
type ret_spec =
  | R of Types.t  (** concrete *)
  | Arg0  (** first generic argument of the receiver *)
  | Arg1
  | Self  (** the receiver type itself *)
  | ListOfArg0

let jstring = Types.Named ([ "java"; "lang"; "String" ], [])
let jobject = Types.Named ([ "java"; "lang"; "Object" ], [])
let jint = Types.Prim "int"
let jbool = Types.Prim "boolean"
let jdouble = Types.Prim "double"
let jchar = Types.Prim "char"
let jvoid = Types.Prim "void"

(* (class FQN, method name) -> return spec. Covers the library surface
   the corpus generator and the paper's examples use. *)
let signatures =
  [
    (("java.lang.String", "length"), R jint);
    (("java.lang.String", "charAt"), R jchar);
    (("java.lang.String", "substring"), R jstring);
    (("java.lang.String", "toUpperCase"), R jstring);
    (("java.lang.String", "toLowerCase"), R jstring);
    (("java.lang.String", "trim"), R jstring);
    (("java.lang.String", "concat"), R jstring);
    (("java.lang.String", "replace"), R jstring);
    (("java.lang.String", "indexOf"), R jint);
    (("java.lang.String", "equals"), R jbool);
    (("java.lang.String", "isEmpty"), R jbool);
    (("java.lang.String", "contains"), R jbool);
    (("java.lang.String", "startsWith"), R jbool);
    (("java.lang.String", "endsWith"), R jbool);
    (("java.lang.String", "split"), R (Types.Arr jstring));
    (("java.lang.String", "hashCode"), R jint);
    (("java.lang.StringBuilder", "append"), Self);
    (("java.lang.StringBuilder", "toString"), R jstring);
    (("java.lang.StringBuilder", "length"), R jint);
    (("java.lang.Object", "toString"), R jstring);
    (("java.lang.Object", "equals"), R jbool);
    (("java.lang.Object", "hashCode"), R jint);
    (("java.lang.Integer", "intValue"), R jint);
    (("java.lang.Integer", "parseInt"), R jint);
    (("java.lang.Double", "doubleValue"), R jdouble);
    (("java.lang.Double", "parseDouble"), R jdouble);
    (("java.lang.Boolean", "booleanValue"), R jbool);
    (("java.util.List", "get"), Arg0);
    (("java.util.List", "size"), R jint);
    (("java.util.List", "add"), R jbool);
    (("java.util.List", "remove"), Arg0);
    (("java.util.List", "contains"), R jbool);
    (("java.util.List", "isEmpty"), R jbool);
    (("java.util.List", "indexOf"), R jint);
    (("java.util.List", "iterator"), R jobject);
    (("java.util.ArrayList", "get"), Arg0);
    (("java.util.ArrayList", "size"), R jint);
    (("java.util.ArrayList", "add"), R jbool);
    (("java.util.ArrayList", "contains"), R jbool);
    (("java.util.ArrayList", "isEmpty"), R jbool);
    (("java.util.Map", "get"), Arg1);
    (("java.util.Map", "put"), Arg1);
    (("java.util.Map", "containsKey"), R jbool);
    (("java.util.Map", "size"), R jint);
    (("java.util.Map", "isEmpty"), R jbool);
    (("java.util.Map", "keySet"), ListOfArg0);
    (("java.util.HashMap", "get"), Arg1);
    (("java.util.HashMap", "put"), Arg1);
    (("java.util.HashMap", "containsKey"), R jbool);
    (("java.util.HashMap", "size"), R jint);
    (("java.util.Set", "add"), R jbool);
    (("java.util.Set", "contains"), R jbool);
    (("java.util.Set", "size"), R jint);
    (("java.util.HashSet", "add"), R jbool);
    (("java.util.HashSet", "contains"), R jbool);
    (("java.util.HashSet", "size"), R jint);
    (("java.util.Iterator", "hasNext"), R jbool);
    (("java.util.Iterator", "next"), Arg0);
    (("java.util.Scanner", "nextLine"), R jstring);
    (("java.util.Scanner", "nextInt"), R jint);
    (("java.util.Scanner", "hasNext"), R jbool);
    (("java.io.BufferedReader", "readLine"), R jstring);
    (("java.io.File", "getName"), R jstring);
    (("java.io.File", "exists"), R jbool);
    (("java.io.File", "length"), R (Types.Prim "long"));
    (("java.lang.Math", "abs"), R jint);
    (("java.lang.Math", "max"), R jint);
    (("java.lang.Math", "min"), R jint);
    (("java.lang.Math", "sqrt"), R jdouble);
    (("org.apache.http.client.HttpClient", "execute"),
     R (Types.Named ([ "org"; "apache"; "http"; "HttpResponse" ], [])));
    (("org.apache.http.HttpResponse", "getStatusLine"), R jobject);
    (("java.util.logging.Logger", "getLogger"),
     R (Types.Named ([ "java"; "util"; "logging"; "Logger" ], [])));
  ]

let fqn_of = function
  | Types.Named (q, _) -> Some (String.concat "." q)
  | _ -> None

let lookup_sig recv_ty name =
  match fqn_of recv_ty with
  | None -> None
  | Some fqn -> (
      match List.assoc_opt (fqn, name) signatures with
      | None -> None
      | Some spec -> (
          let args = match recv_ty with Types.Named (_, a) -> a | _ -> [] in
          match spec with
          | R t -> Some t
          | Self -> Some recv_ty
          | Arg0 -> ( match args with a :: _ -> Some a | [] -> Some jobject)
          | Arg1 -> (
              match args with _ :: b :: _ -> Some b | _ -> Some jobject)
          | ListOfArg0 ->
              let elem = match args with a :: _ -> a | [] -> jobject in
              Some (Types.Named ([ "java"; "util"; "Set" ], [ elem ]))))

let is_numeric = function
  | Types.Prim ("int" | "double" | "long" | "float" | "short" | "byte" | "char")
    ->
      true
  | _ -> false

let is_string t = Types.equal t jstring

let wider a b =
  match (a, b) with
  | Types.Prim "double", _ | _, Types.Prim "double" -> jdouble
  | Types.Prim "float", _ | _, Types.Prim "float" -> Types.Prim "float"
  | Types.Prim "long", _ | _, Types.Prim "long" -> Types.Prim "long"
  | _ -> jint

let class_env ~resolve (c : Syntax.cls) ~local =
  let fields =
    List.map (fun (f : Syntax.field) -> (f.Syntax.f_name, resolve f.Syntax.f_ty)) c.Syntax.c_fields
  in
  let methods =
    List.map
      (fun (m : Syntax.meth) -> (m.Syntax.m_name, resolve m.Syntax.m_ret))
      c.Syntax.c_methods
  in
  {
    resolve;
    local;
    field = (fun n -> List.assoc_opt n fields);
    own_method = (fun n -> List.assoc_opt n methods);
    this_ty = Some (resolve (Types.named c.Syntax.c_name));
  }

let rec type_expr env (e : Syntax.expr) : Types.t option =
  match e with
  | Syntax.IntLit _ -> Some jint
  | Syntax.DoubleLit _ -> Some jdouble
  | Syntax.StrLit _ -> Some jstring
  | Syntax.CharLit _ -> Some jchar
  | Syntax.BoolLit _ -> Some jbool
  | Syntax.NullLit -> None
  | Syntax.This -> env.this_ty
  | Syntax.Ident n -> (
      match env.local n with Some t -> Some t | None -> env.field n)
  | Syntax.Binary (op, a, b) -> (
      match op with
      | "&&" | "||" | "==" | "!=" | "<" | ">" | "<=" | ">=" -> Some jbool
      | "+" -> (
          match (type_expr env a, type_expr env b) with
          | Some ta, _ when is_string ta -> Some jstring
          | _, Some tb when is_string tb -> Some jstring
          | Some ta, Some tb when is_numeric ta && is_numeric tb ->
              Some (wider ta tb)
          | _ -> None)
      | "-" | "*" | "/" | "%" -> (
          match (type_expr env a, type_expr env b) with
          | Some ta, Some tb when is_numeric ta && is_numeric tb ->
              Some (wider ta tb)
          | _ -> None)
      | "&" | "|" | "^" -> Some jint
      | _ -> None)
  | Syntax.Unary ("!", _) -> Some jbool
  | Syntax.Unary ("-", e1) -> type_expr env e1
  | Syntax.Unary ("~", _) -> Some jint
  | Syntax.Unary (_, _) -> None
  | Syntax.Update (_, _, e1) -> type_expr env e1
  | Syntax.Assign (_, l, r) -> (
      match type_expr env l with Some t -> Some t | None -> type_expr env r)
  | Syntax.Cond (_, t, f) -> (
      match type_expr env t with Some ty -> Some ty | None -> type_expr env f)
  | Syntax.Call (None, name, _) -> (
      match env.own_method name with
      | Some (Types.Prim "void") -> Some jvoid
      | other -> other)
  | Syntax.Call (Some recv, name, _) -> (
      match type_expr env recv with
      | Some recv_ty -> (
          match lookup_sig recv_ty name with
          | Some t -> Some (env.resolve t)
          | None -> None)
      | None -> (
          (* Static call on a class name, e.g. Math.abs or Integer.parseInt. *)
          match recv with
          | Syntax.Ident cls_name -> (
              let recv_ty = env.resolve (Types.named cls_name) in
              match lookup_sig recv_ty name with
              | Some t -> Some (env.resolve t)
              | None -> None)
          | _ -> None))
  | Syntax.FieldAccess (recv, name) -> (
      match type_expr env recv with
      | Some (Types.Arr _) when String.equal name "length" -> Some jint
      | Some recv_ty
        when fqn_of recv_ty = Some "java.lang.System"
             && (String.equal name "out" || String.equal name "err") ->
          Some (Types.Named ([ "java"; "io"; "PrintStream" ], []))
      | _ -> (
          (* System.out without a typed receiver *)
          match recv with
          | Syntax.Ident "System" when name = "out" || name = "err" ->
              Some (Types.Named ([ "java"; "io"; "PrintStream" ], []))
          | Syntax.This -> env.field name
          | _ -> None))
  | Syntax.Index (arr, _) -> (
      match type_expr env arr with
      | Some (Types.Arr t) -> Some t
      | _ -> None)
  | Syntax.New (t, _) -> Some (env.resolve t)
  | Syntax.NewArray (t, _) -> Some (Types.Arr (env.resolve t))
  | Syntax.Cast (t, _) -> Some (env.resolve t)
  | Syntax.InstanceOf (_, _) -> Some jbool
