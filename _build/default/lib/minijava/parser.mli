(** Recursive-descent parser for MiniJava.

    Java's grammar is not LL(1) at the statement level — [Foo x = e;]
    (local declaration) and [foo.bar();] (expression statement) both
    begin with an identifier, and [(T) e] (cast) collides with a
    parenthesized expression. The parser resolves these with bounded
    backtracking over the token list (cheap: the list is immutable and
    a snapshot is a pointer copy). Nested generics pose no [>>]
    problem because the lexer never fuses [>] [>]. *)

val parse : string -> Syntax.program
(** Raises {!Lexkit.Error} on syntax errors. *)

val parse_expr : string -> Syntax.expr
val parse_type : string -> Types.t
val parse_stmts : string -> Syntax.stmt list
(** Parses a bare statement sequence (for tests and snippets). *)
