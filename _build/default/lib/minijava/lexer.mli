(** MiniJava lexer. Distinguishes integer from decimal literals (the
    type engine assigns [int] vs [double]); handles [//] and [/* */]
    comments, string and char literals. *)

val tokenize : string -> Token.spanned list
(** Ends with {!Token.Eof}; raises {!Lexkit.Error} on bad input. *)

val token_values : string -> string list
(** Lexemes only; used by the CRF+n-gram baseline. *)
