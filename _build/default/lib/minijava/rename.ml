open Syntax
module Sset = Set.Make (String)

let rename_if env f n =
  if Sset.mem n env then Option.value (f n) ~default:n else n

let rec rn_expr env f e =
  let go = rn_expr env f in
  match e with
  | Ident n -> Ident (rename_if env f n)
  | IntLit _ | DoubleLit _ | StrLit _ | CharLit _ | BoolLit _ | NullLit | This
    ->
      e
  | Binary (op, a, b) -> Binary (op, go a, go b)
  | Unary (op, e1) -> Unary (op, go e1)
  | Update (op, pre, e1) -> Update (op, pre, go e1)
  | Assign (op, l, r) -> Assign (op, go l, go r)
  | Cond (a, b, c) -> Cond (go a, go b, go c)
  | Call (recv, name, args) -> Call (Option.map go recv, name, List.map go args)
  | FieldAccess (e1, n) -> FieldAccess (go e1, n)
  | Index (a, i) -> Index (go a, go i)
  | New (t, args) -> New (t, List.map go args)
  | NewArray (t, n) -> NewArray (t, go n)
  | Cast (t, e1) -> Cast (t, go e1)
  | InstanceOf (e1, t) -> InstanceOf (go e1, t)

and rn_stmts env f stmts =
  (* Sequential scoping: a declaration renames itself and is visible to
     subsequent statements. *)
  let env = ref env in
  List.map
    (fun s ->
      let s', env' = rn_stmt !env f s in
      env := env';
      s')
    stmts

and rn_stmt env f s : stmt * Sset.t =
  let ge = rn_expr env f in
  match s with
  | LocalDecl (ty, ds) ->
      let env' =
        List.fold_left (fun acc (n, _) -> Sset.add n acc) env ds
      in
      ( LocalDecl
          ( ty,
            List.map
              (fun (n, init) ->
                (rename_if env' f n, Option.map (rn_expr env f) init))
              ds ),
        env' )
  | ExprStmt e -> (ExprStmt (ge e), env)
  | If (c, t, e) ->
      (If (ge c, rn_stmts env f t, Option.map (rn_stmts env f) e), env)
  | While (c, b) -> (While (ge c, rn_stmts env f b), env)
  | DoWhile (b, c) -> (DoWhile (rn_stmts env f b, ge c), env)
  | For (init, c, up, b) ->
      let init', env' =
        match init with
        | Some s ->
            let s', e' = rn_stmt env f s in
            (Some s', e')
        | None -> (None, env)
      in
      ( For
          ( init',
            Option.map (rn_expr env' f) c,
            List.map (rn_expr env' f) up,
            rn_stmts env' f b ),
        env )
  | ForEach (ty, n, it, b) ->
      let env' = Sset.add n env in
      (ForEach (ty, rename_if env' f n, ge it, rn_stmts env' f b), env)
  | Return e -> (Return (Option.map ge e), env)
  | Break -> (Break, env)
  | Continue -> (Continue, env)
  | Try (b, c, fin) ->
      ( Try
          ( rn_stmts env f b,
            Option.map
              (fun (ty, v, cb) ->
                let env' = Sset.add v env in
                (ty, rename_if env' f v, rn_stmts env' f cb))
              c,
            Option.map (rn_stmts env f) fin ),
        env )
  | Throw e -> (Throw (ge e), env)
  | Block b -> (Block (rn_stmts env f b), env)

let rn_method f m =
  let env = Sset.of_list (List.map snd m.m_params) in
  {
    m with
    m_params = List.map (fun (ty, n) -> (ty, rename_if env f n)) m.m_params;
    m_body = rn_stmts env f m.m_body;
  }

let apply f p =
  {
    p with
    classes =
      List.map
        (fun c -> { c with c_methods = List.map (rn_method f) c.c_methods })
        p.classes;
  }

let short_name i =
  let rec go i acc =
    let acc = String.make 1 (Char.chr (Char.code 'a' + (i mod 26))) ^ acc in
    if i < 26 then acc else go ((i / 26) - 1) acc
  in
  go i ""

let local_names p =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let record n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      order := n :: !order
    end
  in
  let (_ : program) =
    apply
      (fun n ->
        record n;
        None)
      p
  in
  List.rev !order

let strip p =
  let names = local_names p in
  let mapping = List.mapi (fun i n -> (n, short_name i)) names in
  (apply (fun n -> List.assoc_opt n mapping) p, mapping)
