(** Syntactic Java types, shared by the parser, printer, lowering and
    the {!Typeinf} engine. *)

type t =
  | Prim of string  (** [int], [boolean], [double], [void], ... *)
  | Named of string list * t list
      (** Possibly-qualified class name with type arguments, e.g.
          [Named (["java"; "util"; "List"], [Named (["String"], [])])]. *)
  | Arr of t

val prim : string -> t
val named : ?args:t list -> string -> t
(** [named "List"] — a simple (unqualified) class type. *)

val qualified : ?args:t list -> string list -> t

val to_string : t -> string
(** Java source syntax: ["java.util.List<String>"], ["int[]"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
