(** Lowering MiniJava to the generic AST, with JavaParser-style node
    labels ([MethodDeclaration], [NameExpr], [BinaryExpr+], ...).

    Scope resolution marks locals (parameters, local declarations,
    for-each binders, catch variables) as {!Ast.Tree.Var} terminals;
    fields, method names and class names are {!Ast.Tree.Name}.

    With [~typed:true], every expression nonterminal whose type the
    {!Typing} engine can solve gets a ground-truth tag
    ["type:<fully-qualified>"] — the labels of the full-type task. *)

val program : ?typed:bool -> Syntax.program -> Ast.Tree.t

val type_tag_prefix : string
(** ["type:"] — prefix of the tags attached by [~typed:true]. *)

val method_name_label : string
(** Label of method-definition name terminals (["MethodName"]). *)
