(** Source rendering of MiniJava ASTs; output re-parses to an equal
    program (round-trip tested). *)

val expr_to_string : Syntax.expr -> string
val stmt_to_string : ?indent:int -> Syntax.stmt -> string
val program_to_string : Syntax.program -> string
val pp_program : Format.formatter -> Syntax.program -> unit
