(** Local type inference for MiniJava.

    Produces the ground-truth labels of the paper's full-type task
    (Section 5.3.3): fully-qualified types for expressions, e.g.
    [java.lang.String] rather than [String]. Resolution uses the
    program's package, its imports, its own classes, and a table of
    well-known JDK and Apache-HTTP classes; method-call results come
    from a signature table with simple generics (so
    [List<Integer>.get(i)] is [java.lang.Integer]).

    The paper evaluates only expressions "that could be solved by a
    global type inference engine"; here, an expression is evaluated iff
    {!type_expr} returns [Some]. *)

type env = {
  resolve : Types.t -> Types.t;  (** Simple name → fully-qualified type. *)
  local : string -> Types.t option;  (** Locals and parameters in scope. *)
  field : string -> Types.t option;  (** Fields of the enclosing class. *)
  own_method : string -> Types.t option;
      (** Return types of the enclosing class's methods. *)
  this_ty : Types.t option;
}

val resolver : Syntax.program -> Types.t -> Types.t
(** Resolution function for a program: qualifies simple class names via
    imports, the program's own classes (package-qualified), then the
    well-known table; unknown names resolve to themselves. Recurses
    into generic arguments and array elements. *)

val class_env :
  resolve:(Types.t -> Types.t) -> Syntax.cls -> local:(string -> Types.t option) -> env
(** Environment for typing expressions inside a class, given a lookup
    for the current local scope. *)

val type_expr : env -> Syntax.expr -> Types.t option
(** [None] when the type cannot be solved locally. Returned types are
    fully resolved. *)

val well_known : (string * string) list
(** Simple name → fully-qualified name table (exposed for tests and for
    the corpus generator). *)
