open Syntax
module T = Ast.Tree

let type_tag_prefix = "type:"
let method_name_label = "MethodName"

type ctx = {
  mutable next_binder : int;
  typed : bool;
  resolve : Types.t -> Types.t;
}

(* Lexical scope: name -> (binder id, declared type). Java locals are
   block-scoped and never hoisted, so scopes grow as statements are
   lowered in order. *)
type scope = {
  mutable bindings : (string * (int * Types.t option)) list;
  parent : scope option;
}

let fresh ctx =
  let id = ctx.next_binder in
  ctx.next_binder <- id + 1;
  id

let rec lookup scope name =
  match List.assoc_opt name scope.bindings with
  | Some v -> Some v
  | None -> (
      match scope.parent with Some p -> lookup p name | None -> None)

let bind ctx scope name ty =
  let id = fresh ctx in
  scope.bindings <- (name, (id, ty)) :: scope.bindings;
  id

let child scope = { bindings = []; parent = Some scope }

(* ---------- types ---------- *)

let rec lower_ty ty =
  match ty with
  | Types.Prim p -> T.term ~sort:T.Kw "PrimitiveType" p
  | Types.Named (q, []) ->
      T.nt "ClassOrInterfaceType"
        [ T.term ~sort:T.Name "TypeName" (String.concat "." q) ]
  | Types.Named (q, args) ->
      T.nt "ClassOrInterfaceType"
        (T.term ~sort:T.Name "TypeName" (String.concat "." q)
        :: List.map lower_ty args)
  | Types.Arr e -> T.nt "ArrayType" [ lower_ty e ]

(* ---------- expressions ---------- *)

let rec lower_expr ctx scope env e =
  let go = lower_expr ctx scope env in
  let tagged label children =
    if ctx.typed then
      match Typing.type_expr env e with
      | Some t ->
          T.nt_tag ~tag:(type_tag_prefix ^ Types.to_string (ctx.resolve t))
            label children
      | None -> T.nt label children
    else T.nt label children
  in
  match e with
  | Ident n -> (
      match lookup scope n with
      | Some (id, _) -> T.var id "NameExpr" n
      | None -> T.term ~sort:T.Name "NameExpr" n)
  | IntLit n -> T.term ~sort:T.Lit "IntegerLiteral" n
  | DoubleLit n -> T.term ~sort:T.Lit "DoubleLiteral" n
  | StrLit s -> T.term ~sort:T.Lit "StringLiteral" s
  | CharLit c -> T.term ~sort:T.Lit "CharLiteral" c
  | BoolLit b -> T.term ~sort:T.Lit "BooleanLiteral" (if b then "true" else "false")
  | NullLit -> T.term ~sort:T.Lit "NullLiteral" "null"
  | This -> T.term ~sort:T.Kw "ThisExpr" "this"
  | Binary (op, a, b) -> tagged ("BinaryExpr" ^ op) [ go a; go b ]
  | Unary (op, e1) -> tagged ("UnaryExpr" ^ op) [ go e1 ]
  | Update (op, true, e1) -> tagged ("UnaryExpr" ^ op) [ go e1 ]
  | Update (op, false, e1) -> tagged ("PostfixExpr" ^ op) [ go e1 ]
  | Assign (op, l, r) -> T.nt ("AssignExpr" ^ op) [ go l; go r ]
  | Cond (c, t, f) -> tagged "ConditionalExpr" [ go c; go t; go f ]
  | Call (recv, name, args) ->
      tagged "MethodCallExpr"
        ((match recv with Some r -> [ go r ] | None -> [])
        @ (T.term ~sort:T.Name "SimpleName" name :: List.map go args))
  | FieldAccess (recv, name) ->
      tagged "FieldAccessExpr"
        [ go recv; T.term ~sort:T.Name "SimpleName" name ]
  | Index (arr, i) -> tagged "ArrayAccessExpr" [ go arr; go i ]
  | New (t, args) ->
      tagged "ObjectCreationExpr" (lower_ty t :: List.map go args)
  | NewArray (t, n) -> tagged "ArrayCreationExpr" [ lower_ty t; go n ]
  | Cast (t, e1) -> tagged "CastExpr" [ lower_ty t; go e1 ]
  | InstanceOf (e1, t) -> tagged "InstanceOfExpr" [ go e1; lower_ty t ]

(* ---------- statements ---------- *)

and lower_stmts ctx scope env stmts =
  List.concat_map (lower_stmt ctx scope env) stmts

and lower_stmt ctx scope env s =
  let ge = lower_expr ctx scope env in
  match s with
  | LocalDecl (ty, ds) ->
      let rty = ctx.resolve ty in
      [
        T.nt "VariableDeclarationExpr"
          (lower_ty ty
          :: List.map
               (fun (n, init) ->
                 (* Initializer is lowered before the binder is added,
                    matching Java (no self-reference in initializers of
                    a fresh name). *)
                 let init_nodes =
                   match init with Some e -> [ ge e ] | None -> []
                 in
                 let id = bind ctx scope n (Some rty) in
                 T.nt "VariableDeclarator" (T.var id "VarName" n :: init_nodes))
               ds);
      ]
  | ExprStmt e -> [ ge e ]
  | If (c, t, e) ->
      let then_scope = child scope and else_scope = child scope in
      [
        T.nt "IfStmt"
          ((ge c :: lower_stmts ctx then_scope env t)
          @
          match e with
          | Some e -> [ T.nt "ElseStmt" (lower_stmts ctx else_scope env e) ]
          | None -> []);
      ]
  | While (c, body) ->
      [ T.nt "WhileStmt" (ge c :: lower_stmts ctx (child scope) env body) ]
  | DoWhile (body, c) ->
      [ T.nt "DoStmt" (lower_stmts ctx (child scope) env body @ [ ge c ]) ]
  | For (init, cond, update, body) ->
      let for_scope = child scope in
      let ge' = lower_expr ctx for_scope env in
      let init_nodes =
        match init with
        | Some s -> [ T.nt "ForInit" (lower_stmt ctx for_scope env s) ]
        | None -> []
      in
      let cond_nodes =
        match cond with Some c -> [ T.nt "ForCompare" [ ge' c ] ] | None -> []
      in
      let update_nodes =
        match update with
        | [] -> []
        | es -> [ T.nt "ForUpdate" (List.map ge' es) ]
      in
      [
        T.nt "ForStmt"
          (init_nodes @ cond_nodes @ update_nodes
          @ lower_stmts ctx for_scope env body);
      ]
  | ForEach (ty, name, it, body) ->
      let rty = ctx.resolve ty in
      let it_node = ge it in
      let each_scope = child scope in
      let id = bind ctx each_scope name (Some rty) in
      [
        T.nt "ForEachStmt"
          (lower_ty ty :: T.var id "VarName" name :: it_node
          :: lower_stmts ctx each_scope env body);
      ]
  | Return None -> [ T.nt "ReturnStmt" [] ]
  | Return (Some e) -> [ T.nt "ReturnStmt" [ ge e ] ]
  | Break -> [ T.term ~sort:T.Kw "BreakStmt" "break" ]
  | Continue -> [ T.term ~sort:T.Kw "ContinueStmt" "continue" ]
  | Try (body, catch, finally) ->
      let catch_nodes =
        match catch with
        | Some (ty, v, cbody) ->
            let cscope = child scope in
            let id = bind ctx cscope v (Some (ctx.resolve ty)) in
            [
              T.nt "CatchClause"
                (lower_ty ty :: T.var id "CatchName" v
                :: lower_stmts ctx cscope env cbody);
            ]
        | None -> []
      in
      let finally_nodes =
        match finally with
        | Some f -> [ T.nt "FinallyBlock" (lower_stmts ctx (child scope) env f) ]
        | None -> []
      in
      [
        T.nt "TryStmt"
          (lower_stmts ctx (child scope) env body @ catch_nodes @ finally_nodes);
      ]
  | Throw e -> [ T.nt "ThrowStmt" [ ge e ] ]
  | Block stmts -> lower_stmts ctx (child scope) env stmts

(* ---------- declarations ---------- *)

let lower_method ctx ~cls m =
  let scope = { bindings = []; parent = None } in
  let param_nodes =
    List.map
      (fun (ty, n) ->
        let id = bind ctx scope n (Some (ctx.resolve ty)) in
        T.nt "Parameter" [ lower_ty ty; T.var id "ParamName" n ])
      m.m_params
  in
  let env =
    Typing.class_env ~resolve:ctx.resolve cls ~local:(fun n ->
        match lookup scope n with Some (_, ty) -> ty | None -> None)
  in
  (* [env.local] closes over [scope], which grows as declarations are
     lowered, so typing always sees the in-scope locals. *)
  T.nt "MethodDeclaration"
    (lower_ty m.m_ret
    :: T.term ~sort:T.Name method_name_label m.m_name
    :: (param_nodes @ lower_stmts ctx scope env m.m_body))

let lower_field ctx ~cls f =
  let scope = { bindings = []; parent = None } in
  let env =
    Typing.class_env ~resolve:ctx.resolve cls ~local:(fun _ -> None)
  in
  T.nt "FieldDeclaration"
    (lower_ty f.f_ty
    :: T.term ~sort:T.Name "FieldName" f.f_name
    :: (match f.f_init with
       | Some e -> [ lower_expr ctx scope env e ]
       | None -> []))

let lower_class ctx c =
  T.nt "ClassOrInterfaceDeclaration"
    (T.term ~sort:T.Name "ClassName" c.c_name
    :: ((match c.c_extends with
        | Some t -> [ T.nt "ExtendedType" [ lower_ty t ] ]
        | None -> [])
       @ List.map (fun t -> T.nt "ImplementedType" [ lower_ty t ]) c.c_implements
       @ List.map (lower_field ctx ~cls:c) c.c_fields
       @ List.map (lower_method ctx ~cls:c) c.c_methods))

let program ?(typed = false) p =
  let ctx = { next_binder = 0; typed; resolve = Typing.resolver p } in
  let package_nodes =
    match p.package with
    | Some pkg ->
        [ T.nt "PackageDeclaration" [ T.term ~sort:T.Name "Name" pkg ] ]
    | None -> []
  in
  let import_nodes =
    List.map
      (fun i -> T.nt "ImportDeclaration" [ T.term ~sort:T.Name "Name" i ])
      p.imports
  in
  T.nt "CompilationUnit"
    (package_nodes @ import_nodes @ List.map (lower_class ctx) p.classes)
