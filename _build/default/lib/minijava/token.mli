(** Tokens of the MiniJava front-end. *)

type t =
  | Ident of string
  | IntLit of string
  | DoubleLit of string
  | StrLit of string
  | CharLit of string
  | Punct of string
  | Kw of string
  | Eof

type spanned = { tok : t; pos : Lexkit.pos }

val keywords : string list
val is_keyword : string -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
