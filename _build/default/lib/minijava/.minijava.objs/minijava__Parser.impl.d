lib/minijava/parser.ml: Lexer Lexkit List String Syntax Token Types
