lib/minijava/rename.ml: Char Hashtbl List Option Set String Syntax
