lib/minijava/token.ml: Format Lexkit List Printf String
