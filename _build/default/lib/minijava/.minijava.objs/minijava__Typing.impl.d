lib/minijava/typing.ml: List String Syntax Types
