lib/minijava/syntax.mli: Types
