lib/minijava/rename.mli: Syntax
