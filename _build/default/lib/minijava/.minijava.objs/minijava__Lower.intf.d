lib/minijava/lower.mli: Ast Syntax
