lib/minijava/types.ml: Format List Printf Stdlib String
