lib/minijava/lexer.mli: Token
