lib/minijava/lower.ml: Ast List String Syntax Types Typing
