lib/minijava/printer.ml: Buffer Format List Option String Syntax Types
