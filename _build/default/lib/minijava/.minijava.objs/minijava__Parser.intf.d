lib/minijava/parser.mli: Syntax Types
