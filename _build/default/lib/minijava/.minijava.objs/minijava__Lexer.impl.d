lib/minijava/lexer.ml: Cursor Lexkit List String Token
