lib/minijava/printer.mli: Format Syntax
