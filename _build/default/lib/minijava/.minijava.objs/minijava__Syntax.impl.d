lib/minijava/syntax.ml: Stdlib Types
