lib/minijava/token.mli: Format Lexkit
