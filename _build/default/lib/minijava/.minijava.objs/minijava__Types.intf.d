lib/minijava/types.mli: Format
