lib/minijava/typing.mli: Syntax Types
