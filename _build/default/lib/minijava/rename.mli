(** Binding-aware renaming for MiniJava: strips local-variable and
    parameter names (the paper's "obfuscation in Java"), leaving
    fields, methods, classes and types untouched. *)

val apply : (string -> string option) -> Syntax.program -> Syntax.program

val strip : Syntax.program -> Syntax.program * (string * string) list
(** Locals become ["a"], ["b"], ...; returns the original→short map. *)

val local_names : Syntax.program -> string list
