type expr =
  | Ident of string
  | IntLit of string
  | DoubleLit of string
  | StrLit of string
  | CharLit of string
  | BoolLit of bool
  | NullLit
  | This
  | Binary of string * expr * expr
  | Unary of string * expr
  | Update of string * bool * expr
  | Assign of string * expr * expr
  | Cond of expr * expr * expr
  | Call of expr option * string * expr list
  | FieldAccess of expr * string
  | Index of expr * expr
  | New of Types.t * expr list
  | NewArray of Types.t * expr
  | Cast of Types.t * expr
  | InstanceOf of expr * Types.t

and stmt =
  | LocalDecl of Types.t * (string * expr option) list
  | ExprStmt of expr
  | If of expr * stmt list * stmt list option
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | For of stmt option * expr option * expr list * stmt list
  | ForEach of Types.t * string * expr * stmt list
  | Return of expr option
  | Break
  | Continue
  | Try of stmt list * (Types.t * string * stmt list) option * stmt list option
  | Throw of expr
  | Block of stmt list

type meth = {
  m_modifiers : string list;
  m_ret : Types.t;
  m_name : string;
  m_params : (Types.t * string) list;
  m_throws : Types.t list;
  m_body : stmt list;
}

type field = {
  f_modifiers : string list;
  f_ty : Types.t;
  f_name : string;
  f_init : expr option;
}

type cls = {
  c_modifiers : string list;
  c_name : string;
  c_extends : Types.t option;
  c_implements : Types.t list;
  c_fields : field list;
  c_methods : meth list;
}

type program = {
  package : string option;
  imports : string list;
  classes : cls list;
}

let equal_program a b = Stdlib.compare a b = 0
let equal_expr a b = Stdlib.compare a b = 0
