type t = Prim of string | Named of string list * t list | Arr of t

let prim p = Prim p
let named ?(args = []) n = Named ([ n ], args)
let qualified ?(args = []) q = Named (q, args)

let rec to_string = function
  | Prim p -> p
  | Named (q, []) -> String.concat "." q
  | Named (q, args) ->
      Printf.sprintf "%s<%s>" (String.concat "." q)
        (String.concat ", " (List.map to_string args))
  | Arr t -> to_string t ^ "[]"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let compare a b = Stdlib.compare a b
let equal a b = compare a b = 0
