(** The paper's rule-based (non-learning) Java baseline for variable
    names (Section 5.3.1):

    - [for (int i = ...)] loop variables → ["i"];
    - [this.<field> = <param>;] setter parameters → the field's name;
    - [catch (... e)] → ["e"];
    - [void set<Field>(... x)] parameters → the field name;
    - otherwise → the variable's type, lower-cased
      ([HttpClient client], [List list], [int value]). *)

val predict_program : Minijava.Syntax.program -> (string * string) list
(** [(gold name, predicted name)] for every local/parameter. *)

val evaluate : (string * string) list -> Pigeon.Metrics.summary
(** Run over (filename, source) pairs; unparseable files are skipped. *)
