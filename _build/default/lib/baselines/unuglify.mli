(** UnuglifyJS-style representation (Raychev et al. [40]): the same CRF
    machinery, but relations are restricted to what their explicit
    grammar derives — relationships that "span only a single statement,
    and do not include relationships that involve conditional
    statements or loops". Realized as a {!Pigeon.Graphs.repr} with the
    statement-local restriction and short paths; the paper's Fig. 3
    pair is indistinguishable under this representation and separable
    under full AST paths (tested). *)

val repr : Pigeon.Graphs.repr

val run :
  ?crf_config:Crf.Train.config ->
  lang:Pigeon.Lang.t ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  Pigeon.Metrics.summary
