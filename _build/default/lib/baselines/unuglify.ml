(* Raychev et al.'s features are derived from an explicit grammar:
   short relations inside a single expression/statement, named by the
   connecting construct — e.g. (i, "<", n) or (x, "field f", y). The
   closest member of the path family is: statement-local paths of
   length <= 3, abstracted to (first, top, last) — the top node is
   exactly their relation name. Using *full* statement-local paths
   would make this baseline strictly richer than their design. *)
let repr =
  {
    (Pigeon.Graphs.default_repr
       ~config:(Astpath.Config.make ~max_length:3 ~max_width:3 ())
       ())
    with
    Pigeon.Graphs.statement_local = true;
    Pigeon.Graphs.abstraction = Astpath.Abstraction.First_top_last;
  }

let run ?crf_config ~lang ~train ~test () =
  let result =
    Pigeon.Task.run_crf ~repr ?crf_config ~lang ~policy:Pigeon.Graphs.Locals
      ~train ~test ()
  in
  result.Pigeon.Task.summary
