(** CRF + token n-grams baseline (paper Section 5.3.1, Java):

    "this baseline uses the same CRF nodes as the path-based model,
    except that the relations between them are the sequential
    n-grams." Two element tokens within [n] tokens of each other are
    linked by a pairwise factor whose relation is the sequence of
    intervening lexemes. *)

val graphs_of_sources :
  n:int ->
  lang:Pigeon.Lang.t ->
  (string * string) list ->
  Crf.Graph.t list

val run :
  ?n:int ->
  ?crf_config:Crf.Train.config ->
  lang:Pigeon.Lang.t ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  Pigeon.Metrics.summary
(** Default [n = 4] (the paper's value). *)
