(** Token-based method-name comparator, standing in for Allamanis et
    al.'s convolutional attention network (paper Table 2, Java method
    names).

    The OCaml ecosystem here has no CNN stack, so we substitute a
    non-structural token model trained for the same objective the CNN
    optimizes — sub-token F1: a smoothed naive-Bayes scorer over body
    tokens, predicting the training method name whose token profile
    best matches the test method's body. Like the CNN and unlike AST
    paths, it sees the body as a bag of lexemes, no structure. Its role
    in the table — competitive sub-token F1, weaker exact match than
    AST-paths + CRFs — is the comparison the paper draws.
    (DESIGN.md §4 documents this substitution.) *)

type model

val train : lang:Pigeon.Lang.t -> (string * string) list -> model
(** Train over all methods of the given (filename, source) pairs. *)

val predict : model -> body_tokens:string list -> string option

val methods_of_source :
  lang:Pigeon.Lang.t -> string -> (string * string list) list
(** [(method name, body token bag)] per method — splits the file's
    token stream at method-definition names using the generic tree. *)

val run :
  lang:Pigeon.Lang.t ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  Pigeon.Metrics.summary
