lib/baselines/ngram.mli: Crf Pigeon
