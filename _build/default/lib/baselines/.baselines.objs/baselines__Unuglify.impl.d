lib/baselines/unuglify.ml: Astpath Pigeon
