lib/baselines/conv_attention.ml: Ast Hashtbl Lexkit List Option Pigeon String
