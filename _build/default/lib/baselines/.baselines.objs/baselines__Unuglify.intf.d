lib/baselines/unuglify.mli: Crf Pigeon
