lib/baselines/rule_based.ml: Lexkit List Minijava Option Pigeon String
