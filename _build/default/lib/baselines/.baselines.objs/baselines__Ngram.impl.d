lib/baselines/ngram.ml: Array Ast Crf Hashtbl Lexkit List Option Pigeon Printf String
