lib/baselines/rule_based.mli: Minijava Pigeon
