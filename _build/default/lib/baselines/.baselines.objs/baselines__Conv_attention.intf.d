lib/baselines/conv_attention.mli: Pigeon
