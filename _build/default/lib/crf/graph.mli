(** CRF factor graphs over program elements (paper Section 3.1,
    following Raychev et al.'s Nice2Predict formulation).

    Nodes are program elements: [`Unknown] nodes carry the property to
    predict (their [gold] label is used for training and evaluation,
    never for inference); [`Known] nodes are observed (their label is
    fixed to [gold]). Factors are relations between elements — here,
    abstracted AST paths:

    - a {!Pairwise} factor links two distinct elements with the path
      between their occurrences;
    - a {!Unary} factor records a path between two occurrences of the
      *same* element (the paper's Nice2Predict extension: "a path
      between these nodes in the AST becomes a unary-factor in the
      CRF"). *)

type node = { id : int; gold : string; kind : [ `Unknown | `Known ] }

type factor =
  | Pairwise of { a : int; b : int; rel : string; mult : int }
  | Unary of { n : int; rel : string; mult : int }

type t = { nodes : node array; factors : factor list }

val pairwise : a:int -> b:int -> rel:string -> factor
(** Multiplicity 1. *)

val unary : n:int -> rel:string -> factor

val make : nodes:node list -> factors:factor list -> t
(** Validates ids: nodes must be numbered [0..n-1] in order and factor
    endpoints in range; raises [Invalid_argument] otherwise.
    Structurally equal factors are merged, summing multiplicities —
    each path-context *occurrence* still counts once in every score,
    but is stored and scored once (a large inference speedup: repeated
    occurrences of the same (element, path, element) relation are
    common). *)

val num_unknown : t -> int
val unknown_ids : t -> int list

val gold_assignment : t -> string array
(** Labels of all nodes, including unknowns' gold labels. *)

val initial_assignment : t -> default:string -> string array
(** Known labels fixed; every unknown set to [default]. *)

val touching : t -> factor list array
(** [touching g.(n)] lists the factors that involve node [n]. *)

val pp : Format.formatter -> t -> unit
