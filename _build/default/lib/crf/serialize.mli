(** Saving and loading trained CRF models.

    A portable, line-oriented text format (one record per line,
    tab-separated, values percent-escaped), so models can be trained
    once and shipped — the way Nice2Predict serves a pre-trained
    model. Round-trips exactly: a loaded model produces byte-identical
    predictions (tested). *)

val save : Train.model -> string -> unit
(** [save model path] writes the model to [path]. Raises [Sys_error]
    on I/O failure. *)

val load : string -> Train.model
(** Raises [Failure] with a line number on malformed input. *)

val to_channel : Train.model -> out_channel -> unit
val from_channel : in_channel -> Train.model
