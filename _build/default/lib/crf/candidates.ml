type counts = (string, int) Hashtbl.t

type t = {
  unary : (string, counts) Hashtbl.t;  (** rel → label counts *)
  pairwise : (string, counts) Hashtbl.t;
      (** direction+rel+neighbor-label → label counts *)
  global : counts;
  mutable sorted_global : string list;  (** lazily computed, desc freq *)
}

let bump ?(by = 1) tbl key label =
  let inner =
    match Hashtbl.find_opt tbl key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add tbl key h;
        h
  in
  Hashtbl.replace inner label
    (by + Option.value (Hashtbl.find_opt inner label) ~default:0)

let pw_key ~dir ~rel ~other = String.concat "\x1f" [ dir; rel; other ]

let build graphs =
  let t =
    {
      unary = Hashtbl.create 1024;
      pairwise = Hashtbl.create 4096;
      global = Hashtbl.create 256;
      sorted_global = [];
    }
  in
  List.iter
    (fun (g : Graph.t) ->
      let gold = Graph.gold_assignment g in
      Array.iter
        (fun (n : Graph.node) ->
          if n.Graph.kind = `Unknown then
            Hashtbl.replace t.global n.Graph.gold
              (1 + Option.value (Hashtbl.find_opt t.global n.Graph.gold) ~default:0))
        g.Graph.nodes;
      List.iter
        (fun f ->
          match f with
          | Graph.Unary { n; rel; mult } ->
              if g.Graph.nodes.(n).Graph.kind = `Unknown then
                bump ~by:mult t.unary rel gold.(n)
          | Graph.Pairwise { a; b; rel; mult } ->
              if g.Graph.nodes.(a).Graph.kind = `Unknown then
                bump ~by:mult t.pairwise (pw_key ~dir:"L" ~rel ~other:gold.(b)) gold.(a);
              if g.Graph.nodes.(b).Graph.kind = `Unknown then
                bump ~by:mult t.pairwise (pw_key ~dir:"R" ~rel ~other:gold.(a)) gold.(b))
        g.Graph.factors)
    graphs;
  t

let num_labels t = Hashtbl.length t.global

let sorted_global t =
  if t.sorted_global = [] && Hashtbl.length t.global > 0 then begin
    let items = Hashtbl.fold (fun l c acc -> (l, c) :: acc) t.global [] in
    t.sorted_global <-
      List.map fst
        (List.sort (fun (_, a) (_, b) -> Int.compare b a) items)
  end;
  t.sorted_global

let global_top t k =
  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take k (sorted_global t)

let label_count t l = Option.value (Hashtbl.find_opt t.global l) ~default:0

let for_node t (g : Graph.t) factors n ~max =
  let scores : counts = Hashtbl.create 16 in
  let merge inner =
    Hashtbl.iter
      (fun l c ->
        Hashtbl.replace scores l
          (c + Option.value (Hashtbl.find_opt scores l) ~default:0))
      inner
  in
  List.iter
    (fun f ->
      match f with
      | Graph.Unary { n = m; rel; _ } when m = n -> (
          match Hashtbl.find_opt t.unary rel with
          | Some inner -> merge inner
          | None -> ())
      | Graph.Pairwise { a; b; rel; _ } when a = n ->
          if g.Graph.nodes.(b).Graph.kind = `Known then
            Option.iter merge
              (Hashtbl.find_opt t.pairwise
                 (pw_key ~dir:"L" ~rel ~other:g.Graph.nodes.(b).Graph.gold))
      | Graph.Pairwise { a; b; rel; _ } when b = n ->
          if g.Graph.nodes.(a).Graph.kind = `Known then
            Option.iter merge
              (Hashtbl.find_opt t.pairwise
                 (pw_key ~dir:"R" ~rel ~other:g.Graph.nodes.(a).Graph.gold))
      | _ -> ())
    factors;
  let ranked =
    Hashtbl.fold (fun l c acc -> (l, c) :: acc) scores []
    |> List.sort (fun (la, a) (lb, b) ->
           let c = Int.compare b a in
           if c <> 0 then c else String.compare la lb)
    |> List.map fst
  in
  (* Top up with global candidates to give inference room to move. *)
  let seen = Hashtbl.create 16 in
  let out = ref [] and count = ref 0 in
  let push l =
    if !count < max && not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      out := l :: !out;
      incr count
    end
  in
  List.iter push ranked;
  (* Top up with globally frequent labels until the budget is full. *)
  List.iter push (global_top t max);
  List.rev !out

type entry =
  | E_global of string * int
  | E_unary of string * string * int
  | E_pairwise of string * string * int

let entries t =
  let acc = ref [] in
  Hashtbl.iter (fun l c -> acc := E_global (l, c) :: !acc) t.global;
  Hashtbl.iter
    (fun rel inner ->
      Hashtbl.iter (fun l c -> acc := E_unary (rel, l, c) :: !acc) inner)
    t.unary;
  Hashtbl.iter
    (fun key inner ->
      Hashtbl.iter (fun l c -> acc := E_pairwise (key, l, c) :: !acc) inner)
    t.pairwise;
  !acc

let of_entries es =
  let t =
    {
      unary = Hashtbl.create 1024;
      pairwise = Hashtbl.create 4096;
      global = Hashtbl.create 256;
      sorted_global = [];
    }
  in
  List.iter
    (function
      | E_global (l, c) ->
          Hashtbl.replace t.global l
            (c + Option.value (Hashtbl.find_opt t.global l) ~default:0)
      | E_unary (rel, l, c) -> bump ~by:c t.unary rel l
      | E_pairwise (key, l, c) -> bump ~by:c t.pairwise key l)
    es;
  t
