type node = { id : int; gold : string; kind : [ `Unknown | `Known ] }

type factor =
  | Pairwise of { a : int; b : int; rel : string; mult : int }
  | Unary of { n : int; rel : string; mult : int }

type t = { nodes : node array; factors : factor list }

let pairwise ~a ~b ~rel = Pairwise { a; b; rel; mult = 1 }
let unary ~n ~rel = Unary { n; rel; mult = 1 }

let make ~nodes ~factors =
  let nodes = Array.of_list nodes in
  Array.iteri
    (fun i n ->
      if n.id <> i then invalid_arg "Graph.make: node ids must be 0..n-1 in order")
    nodes;
  let n = Array.length nodes in
  let check i =
    if i < 0 || i >= n then invalid_arg "Graph.make: factor endpoint out of range"
  in
  List.iter
    (function
      | Pairwise { a; b; _ } ->
          check a;
          check b;
          if a = b then
            invalid_arg "Graph.make: pairwise factor must link distinct nodes"
      | Unary { n = i; _ } -> check i)
    factors;
  (* Merge structurally-equal factors, summing multiplicities. *)
  let mults = Hashtbl.create (List.length factors) in
  let order = ref [] in
  List.iter
    (fun f ->
      let key, m =
        match f with
        | Pairwise { a; b; rel; mult } -> (`P (a, b, rel), mult)
        | Unary { n; rel; mult } -> (`U (n, rel), mult)
      in
      match Hashtbl.find_opt mults key with
      | Some count -> Hashtbl.replace mults key (count + m)
      | None ->
          Hashtbl.add mults key m;
          order := key :: !order)
    factors;
  let merged =
    List.rev_map
      (fun key ->
        let mult = Hashtbl.find mults key in
        match key with
        | `P (a, b, rel) -> Pairwise { a; b; rel; mult }
        | `U (n, rel) -> Unary { n; rel; mult })
      !order
  in
  { nodes; factors = merged }

let num_unknown t =
  Array.fold_left
    (fun acc n -> if n.kind = `Unknown then acc + 1 else acc)
    0 t.nodes

let unknown_ids t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if n.kind = `Unknown then Some n.id else None)

let gold_assignment t = Array.map (fun n -> n.gold) t.nodes

let initial_assignment t ~default =
  Array.map (fun n -> if n.kind = `Known then n.gold else default) t.nodes

let touching t =
  let arr = Array.make (Array.length t.nodes) [] in
  List.iter
    (fun f ->
      match f with
      | Pairwise { a; b; _ } ->
          arr.(a) <- f :: arr.(a);
          arr.(b) <- f :: arr.(b)
      | Unary { n; _ } -> arr.(n) <- f :: arr.(n))
    t.factors;
  arr

let pp ppf t =
  Fmt.pf ppf "graph: %d nodes (%d unknown), %d factors"
    (Array.length t.nodes) (num_unknown t) (List.length t.factors)
