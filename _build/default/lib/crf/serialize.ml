(* Line-oriented model format:
     pigeon-crf-model 1
     config <iterations> <max_candidates> <max_passes> <seed> <averaged> <trainer> <init> <init_scale> <init_min_count>
     label <escaped>          (in interner id order)
     rel <escaped>
     pw <int-key> <weight>
     un <int-key> <weight>
     bias <int-key> <weight>
     cand-global <label> <count>
     cand-unary <rel> <label> <count>
     cand-pw <key> <label> <count>
   Strings are percent-escaped (tab, newline, CR, space, '%'). *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' | '\n' | '\r' | ' ' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      Buffer.add_char buf
        (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let trainer_name = function
  | Fast.Structured -> "structured"
  | Fast.Pseudolikelihood -> "pl"
  | Fast.Pl_gradient -> "pl-gradient"
  | Fast.Mixed -> "mixed"

let trainer_of_name = function
  | "structured" -> Fast.Structured
  | "pl" -> Fast.Pseudolikelihood
  | "pl-gradient" -> Fast.Pl_gradient
  | "mixed" -> Fast.Mixed
  | s -> failwith ("unknown trainer " ^ s)

let init_name = function
  | Fast.No_init -> "none"
  | Fast.Log_counts -> "log-counts"
  | Fast.Naive_bayes -> "naive-bayes"

let init_of_name = function
  | "none" -> Fast.No_init
  | "log-counts" -> Fast.Log_counts
  | "naive-bayes" -> Fast.Naive_bayes
  | s -> failwith ("unknown init " ^ s)

let to_channel (model : Train.model) oc =
  let p fmt = Printf.fprintf oc fmt in
  p "pigeon-crf-model 1\n";
  let c = model.Train.config in
  let inf = c.Train.inference in
  (* the Fast engine carries the init knobs; Train.config mirrors them *)
  p "config %d %d %d %d %b %s %s\n" c.Train.iterations
    inf.Inference.max_candidates inf.Inference.max_passes c.Train.seed
    c.Train.averaged
    (trainer_name c.Train.trainer)
    (init_name c.Train.init);
  let d = Fast.dump model.Train.fast in
  List.iter (fun l -> p "label %s\n" (escape l)) d.Fast.d_labels;
  List.iter (fun r -> p "rel %s\n" (escape r)) d.Fast.d_rels;
  List.iter (fun (k, w) -> p "pw %d %.17g\n" k w) d.Fast.d_pw;
  List.iter (fun (k, w) -> p "un %d %.17g\n" k w) d.Fast.d_un;
  List.iter (fun (k, w) -> p "bias %d %.17g\n" k w) d.Fast.d_bias;
  List.iter
    (function
      | Candidates.E_global (l, n) -> p "cand-global %s %d\n" (escape l) n
      | Candidates.E_unary (r, l, n) ->
          p "cand-unary %s %s %d\n" (escape r) (escape l) n
      | Candidates.E_pairwise (k, l, n) ->
          p "cand-pw %s %s %d\n" (escape k) (escape l) n)
    (Candidates.entries model.Train.candidates)

let from_channel ic =
  let line_no = ref 0 in
  let fail msg = failwith (Printf.sprintf "line %d: %s" !line_no msg) in
  let read () =
    incr line_no;
    try Some (input_line ic) with End_of_file -> None
  in
  (match read () with
  | Some "pigeon-crf-model 1" -> ()
  | _ -> fail "bad magic");
  let config = ref Train.default_config in
  let labels = ref [] and rels = ref [] in
  let pw = ref [] and un = ref [] and bias = ref [] in
  let cand = ref [] in
  let rec go () =
    match read () with
    | None -> ()
    | Some line ->
        (match String.split_on_char ' ' line with
        | [ "config"; it; mc; mp; seed; avg; tr; init ] ->
            config :=
              {
                Train.iterations = int_of_string it;
                inference =
                  {
                    Inference.max_candidates = int_of_string mc;
                    max_passes = int_of_string mp;
                    seed = Inference.default_config.Inference.seed;
                  };
                seed = int_of_string seed;
                averaged = bool_of_string avg;
                trainer = trainer_of_name tr;
                init = init_of_name init;
              }
        | [ "label"; l ] -> labels := unescape l :: !labels
        | [ "rel"; r ] -> rels := unescape r :: !rels
        | [ "pw"; k; w ] -> pw := (int_of_string k, float_of_string w) :: !pw
        | [ "un"; k; w ] -> un := (int_of_string k, float_of_string w) :: !un
        | [ "bias"; k; w ] ->
            bias := (int_of_string k, float_of_string w) :: !bias
        | [ "cand-global"; l; n ] ->
            cand := Candidates.E_global (unescape l, int_of_string n) :: !cand
        | [ "cand-unary"; r; l; n ] ->
            cand :=
              Candidates.E_unary (unescape r, unescape l, int_of_string n)
              :: !cand
        | [ "cand-pw"; k; l; n ] ->
            cand :=
              Candidates.E_pairwise (unescape k, unescape l, int_of_string n)
              :: !cand
        | [] | [ "" ] -> ()
        | tok :: _ -> fail ("unknown record " ^ tok));
        go ()
  in
  go ();
  let fast =
    Fast.restore
      {
        Fast.d_labels = List.rev !labels;
        d_rels = List.rev !rels;
        d_pw = !pw;
        d_un = !un;
        d_bias = !bias;
      }
  in
  {
    Train.weights = Fast.export_weights fast;
    candidates = Candidates.of_entries !cand;
    config = !config;
    fast;
  }

let save model path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel model oc)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> from_channel ic)
