type config = { max_candidates : int; max_passes : int; seed : int }

let default_config = { max_candidates = 24; max_passes = 8; seed = 17 }

let shuffle rng arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let node_candidates ?(force = fun _ -> []) cfg cands g touching n =
  match force n with
  | [] -> Candidates.for_node cands g touching.(n) n ~max:cfg.max_candidates
  | forced ->
      (* Forced labels (the gold during training) are *appended*: they
         must be reachable, but must not win score ties — with fresh
         zero weights everything ties, and a prepended gold would make
         every training prediction trivially correct, so the perceptron
         would never update. *)
      let base =
        Candidates.for_node cands g touching.(n) n ~max:cfg.max_candidates
      in
      base @ List.filter (fun l -> not (List.mem l base)) forced

let map_assignment ?(config = default_config) ?force_candidates model cands
    (g : Graph.t) =
  let rng = Random.State.make [| config.seed |] in
  let touching = Graph.touching g in
  let unknowns = Array.of_list (Graph.unknown_ids g) in
  let default =
    match Candidates.global_top cands 1 with [ l ] -> l | _ -> "unknown"
  in
  let assignment = Graph.initial_assignment g ~default in
  let cand_cache =
    Array.map
      (fun n -> node_candidates ?force:force_candidates config cands g touching n)
      unknowns
  in
  let best_for i n =
    let cs = cand_cache.(i) in
    let best = ref assignment.(n) and best_score = ref neg_infinity in
    List.iter
      (fun l ->
        let s = Model.node_score model g touching.(n) n assignment ~label:l in
        if s > !best_score then begin
          best_score := s;
          best := l
        end)
      cs;
    !best
  in
  (* Initial greedy assignment, then sweeps to fixpoint. *)
  Array.iteri (fun i n -> assignment.(n) <- best_for i n) unknowns;
  let order = Array.init (Array.length unknowns) Fun.id in
  let changed = ref true and passes = ref 0 in
  while !changed && !passes < config.max_passes do
    changed := false;
    incr passes;
    shuffle rng order;
    Array.iter
      (fun i ->
        let n = unknowns.(i) in
        let l = best_for i n in
        if not (String.equal l assignment.(n)) then begin
          assignment.(n) <- l;
          changed := true
        end)
      order
  done;
  assignment

let top_k ?(config = default_config) model cands (g : Graph.t) assignment ~node
    ~k =
  let touching = Graph.touching g in
  let cs =
    Candidates.for_node cands g touching.(node) node ~max:(max k config.max_candidates)
  in
  List.map
    (fun l ->
      (l, Model.node_score model g touching.(node) node assignment ~label:l))
    cs
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < k)
