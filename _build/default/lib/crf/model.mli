(** Feature-weight table for the CRF.

    Features are structural keys — pairwise [⟨label_a, relation,
    label_b⟩] triples, unary [⟨label, relation⟩] pairs, and a per-label
    bias (a learned label prior). Keys are hashed structurally rather
    than as concatenated strings: factor scoring is the hot loop of
    both training and inference. *)

type feat =
  | P of string * string * string  (** label_a, relation, label_b *)
  | U of string * string  (** label, relation *)
  | B of string  (** label bias *)

type t

val create : unit -> t
val copy : t -> t
val size : t -> int
(** Number of features with recorded weight entries. *)

val get : t -> feat -> float
val add : t -> feat -> float -> unit

val pairwise_feat : la:string -> rel:string -> lb:string -> feat
val unary_feat : l:string -> rel:string -> feat
val bias_feat : l:string -> feat

val factor_score : t -> Graph.factor -> string array -> float
(** Weight of one factor under an assignment. *)

val score : t -> Graph.t -> string array -> float
(** Total score: all factor weights plus the bias of every unknown
    node's label. *)

val node_score :
  t -> Graph.t -> Graph.factor list -> int -> string array -> label:string -> float
(** Local score of assigning [label] to one node: its bias plus the
    weights of the supplied (touching) factors, evaluated with the
    node temporarily set to [label]. *)

val iter : t -> (feat -> float -> unit) -> unit
