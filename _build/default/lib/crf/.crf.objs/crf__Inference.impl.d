lib/crf/inference.ml: Array Candidates Float Fun Graph List Model Random String
