lib/crf/inference.mli: Candidates Graph Model
