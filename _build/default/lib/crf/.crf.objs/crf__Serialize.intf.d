lib/crf/serialize.mli: Train
