lib/crf/graph.mli: Format
