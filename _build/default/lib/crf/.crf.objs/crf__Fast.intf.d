lib/crf/fast.mli: Candidates Graph Model
