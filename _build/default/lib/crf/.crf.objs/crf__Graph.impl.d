lib/crf/graph.ml: Array Fmt Hashtbl List
