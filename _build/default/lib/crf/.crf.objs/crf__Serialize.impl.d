lib/crf/serialize.ml: Buffer Candidates Char Fast Fun Inference List Printf String Train
