lib/crf/candidates.mli: Graph
