lib/crf/model.mli: Graph
