lib/crf/train.mli: Candidates Fast Graph Inference Model
