lib/crf/train.ml: Array Candidates Fast Graph Inference List Model String
