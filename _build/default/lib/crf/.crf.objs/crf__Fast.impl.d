lib/crf/fast.ml: Array Candidates Float Fun Graph Hashtbl List Model Option Random
