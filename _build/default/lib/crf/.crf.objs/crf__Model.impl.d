lib/crf/model.ml: Array Graph Hashtbl List
