lib/crf/candidates.ml: Array Graph Hashtbl Int List Option String
