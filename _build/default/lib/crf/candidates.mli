(** Candidate generation for MAP inference.

    Nice2Predict-style pruning: instead of scoring the full label
    vocabulary at every node, inference considers labels that
    co-occurred in training with the node's unary relations, or with a
    (relation, known-neighbor-label) pair, topped up with the globally
    most frequent labels. *)

type t

val build : Graph.t list -> t
(** Count co-occurrences over gold-labelled training graphs. *)

val num_labels : t -> int

val global_top : t -> int -> string list
(** The [k] most frequent unknown-node labels in training. *)

val for_node :
  t -> Graph.t -> Graph.factor list -> int -> max:int -> string list
(** [for_node t g touching n ~max] — candidate labels for node [n],
    most promising first, deduplicated, at most [max]. Only [`Known]
    neighbors contribute pairwise evidence (gold labels of unknown
    neighbors are never consulted). Never empty if training data was
    nonempty. *)

val label_count : t -> string -> int

(** {2 Serialization support} *)

type entry =
  | E_global of string * int  (** label, count *)
  | E_unary of string * string * int  (** rel, label, count *)
  | E_pairwise of string * string * int  (** packed key, label, count *)

val entries : t -> entry list
val of_entries : entry list -> t
