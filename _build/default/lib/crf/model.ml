type feat =
  | P of string * string * string
  | U of string * string
  | B of string

type t = (feat, float) Hashtbl.t

let create () : t = Hashtbl.create 4096
let copy = Hashtbl.copy
let size = Hashtbl.length
let get t f = match Hashtbl.find_opt t f with Some w -> w | None -> 0.

let add t f d =
  if d <> 0. then
    match Hashtbl.find_opt t f with
    | Some w -> Hashtbl.replace t f (w +. d)
    | None -> Hashtbl.add t f d

let pairwise_feat ~la ~rel ~lb = P (la, rel, lb)
let unary_feat ~l ~rel = U (l, rel)
let bias_feat ~l = B l

let factor_score t f assignment =
  match f with
  | Graph.Pairwise { a; b; rel; mult } ->
      float_of_int mult *. get t (P (assignment.(a), rel, assignment.(b)))
  | Graph.Unary { n; rel; mult } ->
      float_of_int mult *. get t (U (assignment.(n), rel))

let score t g assignment =
  let acc = ref 0. in
  List.iter (fun f -> acc := !acc +. factor_score t f assignment) g.Graph.factors;
  Array.iter
    (fun (n : Graph.node) ->
      if n.Graph.kind = `Unknown then
        acc := !acc +. get t (B assignment.(n.Graph.id)))
    g.Graph.nodes;
  !acc

let node_score t _g factors node assignment ~label =
  let prev = assignment.(node) in
  assignment.(node) <- label;
  let acc = ref (get t (B label)) in
  List.iter (fun f -> acc := !acc +. factor_score t f assignment) factors;
  assignment.(node) <- prev;
  !acc

let iter t f = Hashtbl.iter f t
