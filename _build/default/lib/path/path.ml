type direction = Up | Down
type t = { nodes : string array; dirs : direction array }

let validate { nodes; dirs } =
  if Array.length nodes <> Array.length dirs + 1 then
    invalid_arg "Path.make: |nodes| must be |dirs| + 1";
  if Array.length nodes = 0 then invalid_arg "Path.make: empty path";
  let seen_down = ref false in
  Array.iter
    (function
      | Down -> seen_down := true
      | Up -> if !seen_down then invalid_arg "Path.make: Up after Down")
    dirs

let make ~nodes ~dirs =
  let p = { nodes; dirs } in
  validate p;
  p

let length t = Array.length t.dirs
let nodes t = t.nodes
let dirs t = t.dirs

let top_index t =
  (* Count of leading [Up] moves = index of the highest node. *)
  let rec go i =
    if i < Array.length t.dirs && t.dirs.(i) = Up then go (i + 1) else i
  in
  go 0

let top t = t.nodes.(top_index t)
let first t = t.nodes.(0)
let last t = t.nodes.(Array.length t.nodes - 1)

let flip = function Up -> Down | Down -> Up

let reverse t =
  let k = Array.length t.dirs in
  let nodes =
    Array.init (Array.length t.nodes) (fun i ->
        t.nodes.(Array.length t.nodes - 1 - i))
  in
  let dirs = Array.init k (fun i -> flip t.dirs.(k - 1 - i)) in
  { nodes; dirs }

let of_updown ~nodes ~n_up =
  let k = Array.length nodes - 1 in
  if k < 0 then invalid_arg "Path.of_updown: empty path";
  if n_up < 0 || n_up > k then invalid_arg "Path.of_updown: n_up out of range";
  let dirs = Array.make k Down in
  Array.fill dirs 0 n_up Up;
  (* Up^n_up Down^(k-n_up) is monotone by construction: no validate scan. *)
  { nodes; dirs }

let of_chain ~up ~top ~down =
  let nodes = Array.of_list (up @ (top :: down)) in
  let n_up = List.length up and n_down = List.length down in
  let dirs =
    Array.init (n_up + n_down) (fun i -> if i < n_up then Up else Down)
  in
  make ~nodes ~dirs

let dir_to_string = function Up -> "\xe2\x86\x91" | Down -> "\xe2\x86\x93"

let to_string t =
  let buf = Buffer.create 64 in
  Array.iteri
    (fun i n ->
      if i > 0 then Buffer.add_string buf (dir_to_string t.dirs.(i - 1));
      Buffer.add_string buf n)
    t.nodes;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let dir_code = function Up -> 0 | Down -> 1

let compare a b =
  let ka = Array.length a.dirs and kb = Array.length b.dirs in
  let c = Int.compare ka kb in
  if c <> 0 then c
  else
    let rec cmp_dirs i =
      if i = ka then 0
      else
        let c = Int.compare (dir_code a.dirs.(i)) (dir_code b.dirs.(i)) in
        if c <> 0 then c else cmp_dirs (i + 1)
    in
    let c = cmp_dirs 0 in
    if c <> 0 then c
    else
      let rec cmp_nodes i =
        if i = ka + 1 then 0
        else
          let c = String.compare a.nodes.(i) b.nodes.(i) in
          if c <> 0 then c else cmp_nodes (i + 1)
      in
      cmp_nodes 0

let equal a b = compare a b = 0

let hash t =
  let h = ref (Array.length t.dirs) in
  Array.iter (fun n -> h := (!h * 131) lxor Hashtbl.hash n) t.nodes;
  Array.iter (fun d -> h := (!h * 31) + dir_code d) t.dirs;
  !h land max_int
