lib/path/abstraction.ml: Array Format List Path String
