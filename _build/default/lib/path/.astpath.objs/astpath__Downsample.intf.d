lib/path/downsample.mli: Random
