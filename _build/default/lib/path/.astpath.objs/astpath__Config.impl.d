lib/path/config.ml: Format
