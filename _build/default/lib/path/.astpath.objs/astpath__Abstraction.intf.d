lib/path/abstraction.mli: Format Path
