lib/path/context.ml: Array Ast Format Path String
