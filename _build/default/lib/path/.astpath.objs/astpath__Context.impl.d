lib/path/context.ml: Ast Format List Path String
