lib/path/config.mli: Format
