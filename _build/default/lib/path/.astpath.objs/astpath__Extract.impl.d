lib/path/extract.ml: Array Ast Config Context Downsample List Seq
