lib/path/extract.ml: Array Ast Config Context List
