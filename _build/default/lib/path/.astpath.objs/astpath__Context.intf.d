lib/path/context.mli: Ast Format Path
