lib/path/path.ml: Array Buffer Format Hashtbl Int List String
