lib/path/downsample.ml: List Random
