lib/path/path.mli: Format
