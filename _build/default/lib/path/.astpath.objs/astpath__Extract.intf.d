lib/path/extract.mli: Ast Config Context Random
