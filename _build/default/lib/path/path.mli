(** AST paths (paper Definition 4.2).

    An AST path of length [k] is a sequence [n1 d1 n2 d2 ... nk dk n(k+1)]
    of node labels [ni] and movement directions [di ∈ {↑, ↓}]. A valid
    path first moves up toward an ancestor and then down — directions
    are monotone: no [Up] may follow a [Down]. *)

type direction = Up | Down

type t = private {
  nodes : string array;  (** [k+1] node labels, start to end. *)
  dirs : direction array;  (** [k] directions between consecutive nodes. *)
}

val make : nodes:string array -> dirs:direction array -> t
(** Raises [Invalid_argument] if lengths are inconsistent ([|nodes|] must
    be [|dirs| + 1] and [|nodes| >= 1]) or an [Up] follows a [Down]. *)

val length : t -> int
(** Number of edges [k]. A single-node path has length [0]. *)

val nodes : t -> string array
val dirs : t -> direction array

val top_index : t -> int
(** Index into {!nodes} of the hierarchically highest node: the node at
    which the direction changes from up to down (the first node not
    followed by [Up]). *)

val top : t -> string
val first : t -> string
val last : t -> string

val reverse : t -> t
(** The same path traversed end-to-start. *)

val of_chain : up:string list -> top:string -> down:string list -> t
(** [of_chain ~up ~top ~down] builds the path [up1 ↑ ... ↑ top ↓ ...
    ↓ downN]; [up] is ordered from the start leaf upward (excluding
    [top]), [down] from just below [top] to the end node. *)

val of_updown : nodes:string array -> n_up:int -> t
(** [of_updown ~nodes ~n_up] is the path over [nodes] whose first
    [n_up] moves are [Up] and the rest [Down] — every up-then-down
    shape. The direction array is built here, so (unlike {!make}) no
    monotonicity scan is needed; the extraction hot path uses this. *)

val to_string : t -> string
(** Paper notation, e.g.
    ["SymbolRef↑UnaryPrefix!↑While↓If↓Assign=↓SymbolRef"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: by length, then directions, then node labels.
    Allocation-free (no polymorphic compare, no rendering). *)

val hash : t -> int
(** Structural hash over nodes and directions, consistent with
    {!equal}; does not render the path to a string. *)
