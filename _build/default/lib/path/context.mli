(** Path-contexts (paper Definition 4.3): an AST path together with the
    values at its two ends, plus the node ids so prediction tasks can
    map ends back to program elements. *)

type t = {
  start_node : int;  (** Node id in the originating {!Ast.Index.t}. *)
  end_node : int;
  start_value : string;
  end_value : string;
  path : Path.t;
}

val make : idx:Ast.Index.t -> start_node:int -> end_node:int -> t
(** Builds the path-context between two nodes of [idx] by walking both
    parent chains to their LCA. The value of a nonterminal end is its
    label (used by the full-type task, where one end is an expression
    nonterminal). *)

val make_with_lca :
  idx:Ast.Index.t -> lca:int -> start_node:int -> end_node:int -> t
(** Like {!make} with the LCA already known (the extraction iterator
    computes it anyway to check limits). Fills the path's label arrays
    directly from the parent chains — no intermediate lists. *)

val reverse : t -> t
(** Swaps ends and reverses the path. *)

val pp : Format.formatter -> t -> unit
(** Paper notation: [⟨start, path, end⟩]. *)

val to_string : t -> string
val equal : t -> t -> bool
