type t = { max_length : int; max_width : int; include_semi_paths : bool }

let make ?(include_semi_paths = false) ~max_length ~max_width () =
  if max_length < 1 then invalid_arg "Config.make: max_length must be >= 1";
  if max_width < 0 then invalid_arg "Config.make: max_width must be >= 0";
  { max_length; max_width; include_semi_paths }

let default = { max_length = 7; max_width = 3; include_semi_paths = false }

let pp ppf t =
  Format.fprintf ppf "{length<=%d; width<=%d; semi=%b}" t.max_length
    t.max_width t.include_semi_paths
