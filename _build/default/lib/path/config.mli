(** Extraction hyper-parameters (paper Section 4.2). *)

type t = {
  max_length : int;
      (** Maximal number of edges [k] in an extracted path. *)
  max_width : int;
      (** Maximal difference between the child ranks, at the path's top
          node, of the two subtrees the path passes through (Fig. 5). *)
  include_semi_paths : bool;
      (** Also extract semi-paths (leaf → ancestor nonterminal), which
          trade expressiveness for generalization (Section 5). *)
}

val make : ?include_semi_paths:bool -> max_length:int -> max_width:int -> unit -> t
(** Raises [Invalid_argument] on non-positive limits. *)

val default : t
(** The paper's tuned setting for JavaScript variable names:
    [max_length = 7], [max_width = 3], no semi-paths. *)

val pp : Format.formatter -> t -> unit
