type t = {
  start_node : int;
  end_node : int;
  start_value : string;
  end_value : string;
  path : Path.t;
}

let node_value idx n =
  match Ast.Index.value idx n with
  | Some v -> v
  | None -> Ast.Index.label idx n

let make ~idx ~start_node ~end_node =
  let l = Ast.Index.lca idx start_node end_node in
  let up_chain = Ast.Index.path_up idx start_node ~stop:l in
  let down_chain = Ast.Index.path_up idx end_node ~stop:l in
  (* [up_chain] = start..l inclusive; [down_chain] = end..l inclusive. *)
  let up =
    List.filter (fun n -> n <> l) up_chain
    |> List.map (Ast.Index.label idx)
  in
  let down =
    List.filter (fun n -> n <> l) down_chain
    |> List.rev
    |> List.map (Ast.Index.label idx)
  in
  let path = Path.of_chain ~up ~top:(Ast.Index.label idx l) ~down in
  {
    start_node;
    end_node;
    start_value = node_value idx start_node;
    end_value = node_value idx end_node;
    path;
  }

let reverse t =
  {
    start_node = t.end_node;
    end_node = t.start_node;
    start_value = t.end_value;
    end_value = t.start_value;
    path = Path.reverse t.path;
  }

let pp ppf t =
  Format.fprintf ppf "\xe2\x9f\xa8%s, %a, %s\xe2\x9f\xa9" t.start_value
    Path.pp t.path t.end_value

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  a.start_node = b.start_node && a.end_node = b.end_node
  && String.equal a.start_value b.start_value
  && String.equal a.end_value b.end_value
  && Path.equal a.path b.path
