type t = {
  start_node : int;
  end_node : int;
  start_value : string;
  end_value : string;
  path : Path.t;
}

let node_value idx n =
  match Ast.Index.value idx n with
  | Some v -> v
  | None -> Ast.Index.label idx n

let make_with_lca ~idx ~lca ~start_node ~end_node =
  let depth = Ast.Index.depth_array idx
  and parent = Ast.Index.parent_array idx
  and labels = Ast.Index.label_array idx in
  let dl = Array.unsafe_get depth lca in
  let da = Array.unsafe_get depth start_node - dl
  and db = Array.unsafe_get depth end_node - dl in
  let k = da + db in
  let nodes = Array.make (k + 1) (Array.unsafe_get labels lca) in
  let n = ref start_node in
  for i = 0 to da - 1 do
    Array.unsafe_set nodes i (Array.unsafe_get labels !n);
    n := Array.unsafe_get parent !n
  done;
  let n = ref end_node in
  for i = 0 to db - 1 do
    Array.unsafe_set nodes (k - i) (Array.unsafe_get labels !n);
    n := Array.unsafe_get parent !n
  done;
  {
    start_node;
    end_node;
    start_value = node_value idx start_node;
    end_value = node_value idx end_node;
    path = Path.of_updown ~nodes ~n_up:da;
  }

let make ~idx ~start_node ~end_node =
  make_with_lca ~idx
    ~lca:(Ast.Index.lca idx start_node end_node)
    ~start_node ~end_node

let reverse t =
  {
    start_node = t.end_node;
    end_node = t.start_node;
    start_value = t.end_value;
    end_value = t.start_value;
    path = Path.reverse t.path;
  }

let pp ppf t =
  Format.fprintf ppf "\xe2\x9f\xa8%s, %a, %s\xe2\x9f\xa9" t.start_value
    Path.pp t.path t.end_value

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  a.start_node = b.start_node && a.end_node = b.end_node
  && String.equal a.start_value b.start_value
  && String.equal a.end_value b.end_value
  && Path.equal a.path b.path
