type t =
  | Full
  | No_arrows
  | Forget_order
  | First_top_last
  | First_last
  | Top
  | No_paths

let apply t path =
  match t with
  | Full -> Path.to_string path
  | No_arrows -> String.concat "," (Array.to_list (Path.nodes path))
  | Forget_order ->
      let ns = Array.to_list (Path.nodes path) in
      String.concat "," (List.sort String.compare ns)
  | First_top_last ->
      String.concat ","
        [ Path.first path; Path.top path; Path.last path ]
  | First_last -> String.concat "," [ Path.first path; Path.last path ]
  | Top -> Path.top path
  | No_paths -> "*"

let name = function
  | Full -> "full"
  | No_arrows -> "no-arrows"
  | Forget_order -> "forget-order"
  | First_top_last -> "first-top-last"
  | First_last -> "first-last"
  | Top -> "top"
  | No_paths -> "no-paths"

let all =
  [ Full; No_arrows; Forget_order; First_top_last; First_last; Top; No_paths ]

let of_name s = List.find_opt (fun t -> String.equal (name t) s) all
let pp ppf t = Format.pp_print_string ppf (name t)
