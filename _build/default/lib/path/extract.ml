let within_limits idx (cfg : Config.t) a b =
  let l = Ast.Index.lca idx a b in
  let len =
    Ast.Index.depth idx a + Ast.Index.depth idx b - (2 * Ast.Index.depth idx l)
  in
  len >= 1 && len <= cfg.max_length
  && Ast.Index.width_between idx ~lca:l a b <= cfg.max_width

let leaf_pairs idx (cfg : Config.t) =
  let leaves = Ast.Index.leaves idx in
  let n = Array.length leaves in
  let acc = ref [] in
  for j = n - 1 downto 1 do
    for i = j - 1 downto 0 do
      let a = leaves.(i) and b = leaves.(j) in
      if within_limits idx cfg a b then
        acc := Context.make ~idx ~start_node:a ~end_node:b :: !acc
    done
  done;
  !acc

let semi_paths idx (cfg : Config.t) =
  let leaves = Ast.Index.leaves idx in
  let acc = ref [] in
  Array.iter
    (fun leaf ->
      let rec go node steps =
        if steps <= cfg.max_length && node <> -1 then begin
          acc := Context.make ~idx ~start_node:leaf ~end_node:node :: !acc;
          go (Ast.Index.parent idx node) (steps + 1)
        end
      in
      go (Ast.Index.parent idx leaf) 1)
    leaves;
  List.rev !acc

let leaf_to_node idx (cfg : Config.t) ~target =
  let leaves = Ast.Index.leaves idx in
  let acc = ref [] in
  Array.iter
    (fun leaf ->
      if leaf <> target && within_limits idx cfg leaf target then
        acc := Context.make ~idx ~start_node:leaf ~end_node:target :: !acc)
    leaves;
  List.rev !acc

let all idx (cfg : Config.t) =
  let pairs = leaf_pairs idx cfg in
  if cfg.include_semi_paths then pairs @ semi_paths idx cfg else pairs

let star contexts ~anchor =
  List.filter_map
    (fun (c : Context.t) ->
      if c.Context.start_node = anchor then Some c
      else if c.Context.end_node = anchor then Some (Context.reverse c)
      else None)
    contexts

let count_within idx (cfg : Config.t) =
  let leaves = Ast.Index.leaves idx in
  let n = Array.length leaves in
  let count = ref 0 in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      if within_limits idx cfg leaves.(i) leaves.(j) then incr count
    done
  done;
  !count
