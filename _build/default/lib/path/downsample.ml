let decide rng ~p = p >= 1. || (p > 0. && Random.State.float rng 1.0 < p)

let keep rng ~p xs =
  if p >= 1. then xs
  else if p <= 0. then []
  else List.filter (fun _ -> Random.State.float rng 1.0 < p) xs
