(** Path extraction over an indexed AST (paper Sections 4.1–4.2).

    All extractors respect the {!Config.t} limits: a pairwise path is
    kept iff its length (edge count) is at most [max_length] and its
    width at the top node (Fig. 5) is at most [max_width]. *)

val leaf_pairs : Ast.Index.t -> Config.t -> Context.t list
(** All leafwise path-contexts, each pair reported once with the start
    leaf preceding the end leaf in source order. *)

val semi_paths : Ast.Index.t -> Config.t -> Context.t list
(** Semi-paths: from each terminal up to each of its strict ancestors,
    up to [max_length] edges. Semi-paths are less expressive than
    leafwise paths but generalize across programs (Section 5). *)

val leaf_to_node : Ast.Index.t -> Config.t -> target:int -> Context.t list
(** Paths from every terminal to the given node (used by the full-type
    task, where [target] is an expression nonterminal). The target is
    always the [end] of the context. Terminals inside the target's own
    subtree connect to it by pure-up semi-paths; others by regular
    up-then-down paths. *)

val all : Ast.Index.t -> Config.t -> Context.t list
(** {!leaf_pairs}, plus {!semi_paths} when the config enables them. *)

val star : Context.t list -> anchor:int -> Context.t list
(** The n-wise view of the family (Section 4.1): all extracted contexts
    one of whose ends is the node [anchor], re-oriented so [anchor] is
    the start. An n-wise path with anchor [a] and ends [b1..bn] is
    represented by its n pairwise projections. *)

val count_within : Ast.Index.t -> Config.t -> int
(** Number of leafwise contexts that would be extracted; cheaper than
    building them (used by tests and by corpus statistics). *)
