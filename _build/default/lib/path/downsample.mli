(** Occurrence downsampling (paper Section 5.5, Fig. 11).

    The paper downsamples the number of *occurrences* used for training;
    dropping occurrences before pair enumeration (see
    {!Extract.iter}'s [downsample] argument) also skips their extraction
    cost, instead of paying to build every context and discarding most
    of them afterwards. The list post-filter {!keep} remains as the
    fallback for semi-paths and for already-materialized context
    lists. *)

val decide : Random.State.t -> p:float -> bool
(** One keep/drop draw with probability [p] (clamped to [[0, 1]]).
    [p >= 1.] returns [true] and [p <= 0.] returns [false] without
    consuming randomness, so [p = 1.] runs are identical to
    undownsampled runs. *)

val keep : Random.State.t -> p:float -> 'a list -> 'a list
(** [keep rng ~p xs] keeps each element with probability [p] (clamped to
    [[0, 1]]), preserving order. [p >= 1.] returns [xs] unchanged. *)
