(** Occurrence downsampling (paper Section 5.5, Fig. 11).

    After extraction, each path-context occurrence is kept independently
    with probability [p]; training on the survivors trades a little
    accuracy for a large cut in training time. *)

val keep : Random.State.t -> p:float -> 'a list -> 'a list
(** [keep rng ~p xs] keeps each element with probability [p] (clamped to
    [[0, 1]]), preserving order. [p >= 1.] returns [xs] unchanged. *)
