(** Recursive-descent parser for MiniJS.

    Expression parsing is precedence climbing with the usual JavaScript
    levels (assignment right-associative, then [?:], [||], [&&],
    equality, relational, additive, multiplicative, unary, postfix,
    call/member/index/new, primary). *)

val parse : string -> Syntax.program
(** Raises {!Lexkit.Error} on syntax errors. *)

val parse_expr : string -> Syntax.expr
(** Parses a single expression (for tests and the REPL-ish examples). *)
