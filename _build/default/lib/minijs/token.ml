type t =
  | Ident of string
  | Num of string
  | Str of string
  | Punct of string
  | Kw of string
  | Eof

type spanned = { tok : t; pos : Lexkit.pos }

let keywords =
  [
    "var"; "let"; "const"; "function"; "if"; "else"; "while"; "do"; "for";
    "in"; "of"; "return"; "break"; "continue"; "new"; "typeof"; "null";
    "true"; "false"; "this"; "try"; "catch"; "finally"; "throw";
    "instanceof"; "delete";
  ]

let is_keyword s = List.mem s keywords

let equal a b =
  match (a, b) with
  | Ident x, Ident y | Num x, Num y | Str x, Str y | Punct x, Punct y
  | Kw x, Kw y ->
      String.equal x y
  | Eof, Eof -> true
  | _ -> false

let to_string = function
  | Ident s | Num s | Punct s | Kw s -> s
  | Str s -> Printf.sprintf "%S" s
  | Eof -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
