(** Binding-aware renaming of MiniJS programs.

    Used to *strip* names (minify, producing the paper's "programs with
    stripped names") and to apply predicted names back onto a stripped
    program for the qualitative experiments (Figs. 7–9). Only
    locally-bound occurrences are renamed; free names (globals such as
    [console], properties, call targets) are untouched. *)

val apply : (string -> string option) -> Syntax.program -> Syntax.program
(** [apply f p] renames every occurrence of a local binding [x] to
    [f x] (when [Some]), respecting scope: an occurrence is renamed iff
    the name is bound by an enclosing function's declarations,
    parameters, for-in binders, catch variables, or
    assigned-but-undeclared locals. *)

val strip : Syntax.program -> Syntax.program * (string * string) list
(** Renames all locals to ["a"], ["b"], ... in order of first binding;
    returns the renamed program and the original→short mapping. *)

val local_names : Syntax.program -> string list
(** All distinct local binding names, in order of first appearance. *)
