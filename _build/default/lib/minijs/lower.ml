open Syntax
module T = Ast.Tree

type scope = {
  mutable bindings : (string * int) list;  (** name -> binder id *)
  parent : scope option;
}

type ctx = { mutable next_binder : int }

let fresh ctx =
  let id = ctx.next_binder in
  ctx.next_binder <- id + 1;
  id

let rec lookup scope name =
  match List.assoc_opt name scope.bindings with
  | Some id -> Some id
  | None -> (
      match scope.parent with Some p -> lookup p name | None -> None)

let bind ctx scope name =
  match List.assoc_opt name scope.bindings with
  | Some id -> id
  | None ->
      let id = fresh ctx in
      scope.bindings <- (name, id) :: scope.bindings;
      id

(* Hoisting prescan: var declarations, function declarations, for-in
   binders and undeclared-but-assigned identifiers all become locals of
   the enclosing function scope. Does not descend into nested functions. *)
let rec hoist_stmts ctx scope stmts = List.iter (hoist_stmt ctx scope) stmts

and hoist_stmt ctx scope = function
  | VarDecl ds -> List.iter (fun (n, _) -> ignore (bind ctx scope n)) ds
  | FuncDecl (n, _, _) -> ignore (bind ctx scope n)
  | If (_, t, e) ->
      hoist_stmts ctx scope t;
      Option.iter (hoist_stmts ctx scope) e
  | While (_, b) | DoWhile (b, _) -> hoist_stmts ctx scope b
  | For (init, _, _, b) ->
      Option.iter (hoist_stmt ctx scope) init;
      hoist_stmts ctx scope b
  | ForIn (_, n, _, b) ->
      ignore (bind ctx scope n);
      hoist_stmts ctx scope b
  | Try (b, c, f) ->
      hoist_stmts ctx scope b;
      Option.iter (fun (_, cb) -> hoist_stmts ctx scope cb) c;
      Option.iter (hoist_stmts ctx scope) f
  | Block b -> hoist_stmts ctx scope b
  | Expr e | Throw e | Return (Some e) -> hoist_expr ctx scope e
  | Return None | Break | Continue -> ()

and hoist_expr ctx scope = function
  | Assign (_, Ident n, r) ->
      ignore (bind ctx scope n);
      hoist_expr ctx scope r
  | Assign (_, l, r) | Binary (_, l, r) | Index (l, r) ->
      hoist_expr ctx scope l;
      hoist_expr ctx scope r
  | Unary (_, e) | Update (_, _, e) | Member (e, _) -> hoist_expr ctx scope e
  | Cond (a, b, c) ->
      hoist_expr ctx scope a;
      hoist_expr ctx scope b;
      hoist_expr ctx scope c
  | Call (f, args) | New (f, args) ->
      hoist_expr ctx scope f;
      List.iter (hoist_expr ctx scope) args
  | Array es -> List.iter (hoist_expr ctx scope) es
  | Object kvs -> List.iter (fun (_, v) -> hoist_expr ctx scope v) kvs
  | Func _ (* separate scope *) | Ident _ | Num _ | Str _ | Bool _ | Null
  | This ->
      ()

let sym ctx scope ~label name =
  ignore ctx;
  match lookup scope name with
  | Some id -> T.var id label name
  | None -> T.term ~sort:T.Name label name

let rec lower_expr ctx scope e =
  let go = lower_expr ctx scope in
  match e with
  | Ident n -> sym ctx scope ~label:"SymbolRef" n
  | Num n -> T.term ~sort:T.Lit "Number" n
  | Str s -> T.term ~sort:T.Lit "String" s
  | Bool true -> T.term ~sort:T.Lit "True" "true"
  | Bool false -> T.term ~sort:T.Lit "False" "false"
  | Null -> T.term ~sort:T.Lit "Null" "null"
  | This -> T.term ~sort:T.Kw "This" "this"
  | Array es -> T.nt "Array" (List.map go es)
  | Object kvs ->
      T.nt "Object"
        (List.map
           (fun (k, v) ->
             T.nt "ObjectKeyVal" [ T.term ~sort:T.Name "Key" k; go v ])
           kvs)
  | Unary (op, e1) -> T.nt ("UnaryPrefix" ^ op) [ go e1 ]
  | Update (op, true, e1) -> T.nt ("UnaryPrefix" ^ op) [ go e1 ]
  | Update (op, false, e1) -> T.nt ("UnaryPostfix" ^ op) [ go e1 ]
  | Binary (op, a, b) -> T.nt ("Binary" ^ op) [ go a; go b ]
  | Assign (op, l, r) -> T.nt ("Assign" ^ op) [ go l; go r ]
  | Cond (c, t, f) -> T.nt "Conditional" [ go c; go t; go f ]
  | Call (f, args) -> T.nt "Call" (go f :: List.map go args)
  | New (f, args) -> T.nt "New" (go f :: List.map go args)
  | Member (e1, f) ->
      T.nt "Dot" [ go e1; T.term ~sort:T.Name "SymbolProperty" f ]
  | Index (e1, i) -> T.nt "Sub" [ go e1; go i ]
  | Func (name, params, body) ->
      let inner = { bindings = []; parent = Some scope } in
      let name_node =
        Option.map
          (fun n -> T.var (bind ctx inner n) "SymbolLambda" n)
          name
      in
      let param_nodes =
        List.map (fun p -> T.var (bind ctx inner p) "SymbolFunarg" p) params
      in
      hoist_stmts ctx inner body;
      T.nt "Function"
        ((match name_node with Some n -> [ n ] | None -> [])
        @ param_nodes
        @ lower_stmts ctx inner body)

and lower_stmts ctx scope stmts =
  List.concat_map (lower_stmt ctx scope) stmts

and lower_stmt ctx scope s =
  let ge = lower_expr ctx scope in
  match s with
  | Expr e -> [ ge e ]
  | VarDecl ds ->
      [
        T.nt "Var"
          (List.map
             (fun (n, init) ->
               let id = bind ctx scope n in
               let name_node = T.var id "SymbolVar" n in
               T.nt "VarDef"
                 (name_node :: (match init with Some e -> [ ge e ] | None -> [])))
             ds);
      ]
  | If (c, t, e) ->
      [
        T.nt "If"
          ((ge c :: lower_stmts ctx scope t)
          @
          match e with
          | Some e -> [ T.nt "Else" (lower_stmts ctx scope e) ]
          | None -> []);
      ]
  | While (c, body) -> [ T.nt "While" (ge c :: lower_stmts ctx scope body) ]
  | DoWhile (body, c) -> [ T.nt "Do" (lower_stmts ctx scope body @ [ ge c ]) ]
  | For (init, cond, step, body) ->
      let init_nodes =
        match init with
        | Some s -> [ T.nt "ForInit" (lower_stmt ctx scope s) ]
        | None -> []
      in
      let cond_nodes =
        match cond with Some c -> [ T.nt "ForCond" [ ge c ] ] | None -> []
      in
      let step_nodes =
        match step with Some s -> [ T.nt "ForStep" [ ge s ] ] | None -> []
      in
      [
        T.nt "For"
          (init_nodes @ cond_nodes @ step_nodes @ lower_stmts ctx scope body);
      ]
  | ForIn (_, name, obj, body) ->
      let id = bind ctx scope name in
      [
        T.nt "ForIn"
          (T.var id "SymbolVar" name :: ge obj :: lower_stmts ctx scope body);
      ]
  | Return None -> [ T.nt "Return" [] ]
  | Return (Some e) -> [ T.nt "Return" [ ge e ] ]
  | Break -> [ T.term ~sort:T.Kw "Break" "break" ]
  | Continue -> [ T.term ~sort:T.Kw "Continue" "continue" ]
  | FuncDecl (name, params, body) ->
      let id = bind ctx scope name in
      let inner = { bindings = []; parent = Some scope } in
      let param_nodes =
        List.map (fun p -> T.var (bind ctx inner p) "SymbolFunarg" p) params
      in
      hoist_stmts ctx inner body;
      [
        T.nt "Defun"
          (T.var id "SymbolDefun" name
          :: param_nodes
          @ lower_stmts ctx inner body);
      ]
  | Try (body, catch, finally) ->
      let catch_nodes =
        match catch with
        | Some (v, cbody) ->
            let inner = { bindings = []; parent = Some scope } in
            let vid = bind ctx inner v in
            [
              T.nt "Catch"
                (T.var vid "SymbolCatch" v :: lower_stmts ctx inner cbody);
            ]
        | None -> []
      in
      let finally_nodes =
        match finally with
        | Some f -> [ T.nt "Finally" (lower_stmts ctx scope f) ]
        | None -> []
      in
      [ T.nt "Try" (lower_stmts ctx scope body @ catch_nodes @ finally_nodes) ]
  | Throw e -> [ T.nt "Throw" [ ge e ] ]
  | Block stmts -> lower_stmts ctx scope stmts

let program p =
  let ctx = { next_binder = 0 } in
  let top = { bindings = []; parent = None } in
  hoist_stmts ctx top p;
  T.nt "Toplevel" (lower_stmts ctx top p)

let expr e =
  let ctx = { next_binder = 0 } in
  let scope = { bindings = []; parent = None } in
  lower_expr ctx scope e
