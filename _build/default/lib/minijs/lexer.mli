(** MiniJS lexer: whitespace- and comment-insensitive tokenization.

    Handles [//] line and [/* */] block comments, single- and
    double-quoted strings with escapes, integer and decimal numbers,
    identifiers/keywords, and multi-character punctuators with
    longest-match ([===] before [==] before [=]). *)

val tokenize : string -> Token.spanned list
(** The returned list always ends with an {!Token.Eof} token. Raises
    {!Lexkit.Error} on malformed input (unterminated string or block
    comment, unexpected character). *)

val token_values : string -> string list
(** Just the lexemes, no positions or [Eof]; used by the token-stream
    baselines. *)
