(** Abstract syntax of MiniJS, a JavaScript subset large enough for the
    paper's examples (Figs. 1, 3, 4, 6, 8) and the synthetic corpus. *)

type expr =
  | Ident of string
  | Num of string
  | Str of string
  | Bool of bool
  | Null
  | This
  | Array of expr list
  | Object of (string * expr) list
  | Unary of string * expr  (** Prefix: [!], [-], [+], [typeof], [delete]. *)
  | Update of string * bool * expr
      (** [++]/[--]; the bool is [true] for prefix position. *)
  | Binary of string * expr * expr
  | Assign of string * expr * expr  (** [=], [+=], [-=], [*=], [/=], [%=]. *)
  | Cond of expr * expr * expr
  | Call of expr * expr list
  | New of expr * expr list
  | Member of expr * string  (** [e.name] *)
  | Index of expr * expr  (** [e[i]] *)
  | Func of string option * string list * stmt list  (** Function expression. *)

and stmt =
  | Expr of expr
  | VarDecl of (string * expr option) list
  | If of expr * stmt list * stmt list option
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
      (** Classic [for]; the init is a var-decl or expression statement. *)
  | ForIn of bool * string * expr * stmt list
      (** [for (x in e)]; the bool marks a [var] binder; also covers
          [for ... of] (recorded in the lowering as the same shape). *)
  | Return of expr option
  | Break
  | Continue
  | FuncDecl of string * string list * stmt list
  | Try of stmt list * (string * stmt list) option * stmt list option
  | Throw of expr
  | Block of stmt list

type program = stmt list

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_program : program -> program -> bool
