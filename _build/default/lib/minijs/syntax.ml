type expr =
  | Ident of string
  | Num of string
  | Str of string
  | Bool of bool
  | Null
  | This
  | Array of expr list
  | Object of (string * expr) list
  | Unary of string * expr
  | Update of string * bool * expr
  | Binary of string * expr * expr
  | Assign of string * expr * expr
  | Cond of expr * expr * expr
  | Call of expr * expr list
  | New of expr * expr list
  | Member of expr * string
  | Index of expr * expr
  | Func of string option * string list * stmt list

and stmt =
  | Expr of expr
  | VarDecl of (string * expr option) list
  | If of expr * stmt list * stmt list option
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | ForIn of bool * string * expr * stmt list
  | Return of expr option
  | Break
  | Continue
  | FuncDecl of string * string list * stmt list
  | Try of stmt list * (string * stmt list) option * stmt list option
  | Throw of expr
  | Block of stmt list

type program = stmt list

let equal_expr a b = Stdlib.compare a b = 0
let equal_stmt a b = Stdlib.compare a b = 0
let equal_program a b = Stdlib.compare a b = 0
