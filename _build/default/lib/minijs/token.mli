(** Tokens of the MiniJS front-end. *)

type t =
  | Ident of string
  | Num of string
  | Str of string
  | Punct of string  (** Operator or delimiter, e.g. ["==="], ["{"]. *)
  | Kw of string  (** Reserved word, e.g. ["while"]. *)
  | Eof

type spanned = { tok : t; pos : Lexkit.pos }

val keywords : string list
val is_keyword : string -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Source-level lexeme (string literals re-quoted). *)
