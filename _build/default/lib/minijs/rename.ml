open Syntax

module Sset = Set.Make (String)

(* Names bound in a function body (same hoisting rules as Lower). *)
let rec bound_in_stmts stmts = List.fold_left bound_in_stmt Sset.empty stmts

and bound_in_stmt acc = function
  | VarDecl ds -> List.fold_left (fun a (n, _) -> Sset.add n a) acc ds
  (* Function names are not renamed: the variable-name task strips only
     variables and parameters (cf. the paper's Fig. 8, where [f] is kept). *)
  | FuncDecl (_, _, _) -> acc
  | If (_, t, e) ->
      let acc = Sset.union acc (bound_in_stmts t) in
      Option.fold ~none:acc ~some:(fun e -> Sset.union acc (bound_in_stmts e)) e
  | While (_, b) | DoWhile (b, _) -> Sset.union acc (bound_in_stmts b)
  | For (init, _, _, b) ->
      let acc =
        Option.fold ~none:acc ~some:(fun s -> bound_in_stmt acc s) init
      in
      Sset.union acc (bound_in_stmts b)
  | ForIn (_, n, _, b) -> Sset.add n (Sset.union acc (bound_in_stmts b))
  | Try (b, c, f) ->
      let acc = Sset.union acc (bound_in_stmts b) in
      let acc =
        Option.fold ~none:acc
          ~some:(fun (_, cb) -> Sset.union acc (bound_in_stmts cb))
          c
      in
      Option.fold ~none:acc ~some:(fun f -> Sset.union acc (bound_in_stmts f)) f
  | Block b -> Sset.union acc (bound_in_stmts b)
  | Expr e | Throw e | Return (Some e) -> bound_in_expr acc e
  | Return None | Break | Continue -> acc

and bound_in_expr acc = function
  | Assign (_, Ident n, r) -> bound_in_expr (Sset.add n acc) r
  | Assign (_, l, r) | Binary (_, l, r) | Index (l, r) ->
      bound_in_expr (bound_in_expr acc l) r
  | Unary (_, e) | Update (_, _, e) | Member (e, _) -> bound_in_expr acc e
  | Cond (a, b, c) -> bound_in_expr (bound_in_expr (bound_in_expr acc a) b) c
  | Call (f, args) | New (f, args) ->
      List.fold_left bound_in_expr (bound_in_expr acc f) args
  | Array es -> List.fold_left bound_in_expr acc es
  | Object kvs -> List.fold_left (fun a (_, v) -> bound_in_expr a v) acc kvs
  | Func _ | Ident _ | Num _ | Str _ | Bool _ | Null | This -> acc

let rename_if env f n = if Sset.mem n env then Option.value (f n) ~default:n else n

let rec rn_expr env f e =
  let go = rn_expr env f in
  match e with
  | Ident n -> Ident (rename_if env f n)
  | Num _ | Str _ | Bool _ | Null | This -> e
  | Array es -> Array (List.map go es)
  | Object kvs -> Object (List.map (fun (k, v) -> (k, go v)) kvs)
  | Unary (op, e1) -> Unary (op, go e1)
  | Update (op, pre, e1) -> Update (op, pre, go e1)
  | Binary (op, a, b) -> Binary (op, go a, go b)
  | Assign (op, l, r) -> Assign (op, go l, go r)
  | Cond (a, b, c) -> Cond (go a, go b, go c)
  | Call (fn, args) -> Call (go fn, List.map go args)
  | New (fn, args) -> New (go fn, List.map go args)
  | Member (e1, p) -> Member (go e1, p)  (* properties are never locals *)
  | Index (e1, i) -> Index (go e1, go i)
  | Func (name, params, body) ->
      let env' = Sset.union env (Sset.union (Sset.of_list params) (bound_in_stmts body)) in
      let env' = match name with Some n -> Sset.add n env' | None -> env' in
      Func
        ( Option.map (rename_if env' f) name,
          List.map (rename_if env' f) params,
          rn_stmts env' f body )

and rn_stmts env f stmts = List.map (rn_stmt env f) stmts

and rn_stmt env f s =
  let ge = rn_expr env f in
  match s with
  | Expr e -> Expr (ge e)
  | VarDecl ds ->
      VarDecl (List.map (fun (n, i) -> (rename_if env f n, Option.map ge i)) ds)
  | If (c, t, e) -> If (ge c, rn_stmts env f t, Option.map (rn_stmts env f) e)
  | While (c, b) -> While (ge c, rn_stmts env f b)
  | DoWhile (b, c) -> DoWhile (rn_stmts env f b, ge c)
  | For (init, c, st, b) ->
      For
        ( Option.map (rn_stmt env f) init,
          Option.map ge c,
          Option.map ge st,
          rn_stmts env f b )
  | ForIn (v, n, o, b) -> ForIn (v, rename_if env f n, ge o, rn_stmts env f b)
  | Return e -> Return (Option.map ge e)
  | Break -> Break
  | Continue -> Continue
  | FuncDecl (name, params, body) ->
      let env' =
        Sset.union env (Sset.union (Sset.of_list params) (bound_in_stmts body))
      in
      FuncDecl
        ( rename_if env f name,
          List.map (rename_if env' f) params,
          rn_stmts env' f body )
  | Try (b, c, fin) ->
      Try
        ( rn_stmts env f b,
          Option.map
            (fun (v, cb) ->
              let env' = Sset.add v env in
              (rename_if env' f v, rn_stmts env' f cb))
            c,
          Option.map (rn_stmts env f) fin )
  | Throw e -> Throw (ge e)
  | Block b -> Block (rn_stmts env f b)

let apply f p =
  let env = bound_in_stmts p in
  rn_stmts env f p

let short_name i =
  let rec go i acc =
    let acc = String.make 1 (Char.chr (Char.code 'a' + (i mod 26))) ^ acc in
    if i < 26 then acc else go ((i / 26) - 1) acc
  in
  go i ""

let local_names p =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let record n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      order := n :: !order
    end
  in
  (* Walk the program, recording local bindings in appearance order via
     a rename pass that records and leaves names unchanged. *)
  let (_ : program) =
    apply
      (fun n ->
        record n;
        None)
      p
  in
  List.rev !order

let strip p =
  let names = local_names p in
  let mapping = List.mapi (fun i n -> (n, short_name i)) names in
  (apply (fun n -> List.assoc_opt n mapping) p, mapping)
