(** Lowering MiniJS to the generic AST of {!Ast.Tree}.

    Node labels follow UglifyJS conventions so that the paper's example
    paths come out verbatim — e.g. Fig. 1's
    [SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef] and
    Example 4.5's [SymbolVar ↑ VarDef ↓ Sub ↓ SymbolRef].

    Scope resolution happens here: [var]/[let]/[const] declarations,
    function parameters, function names, for-in binders and catch
    variables bind locals; names assigned but never declared are
    treated as locals of the enclosing function too (the common shape
    of minified snippets such as Fig. 1a). Statement blocks are
    flattened into their parent node, matching the paper's Fig. 1b
    drawing where [If] is a direct child of [While]. *)

val program : Syntax.program -> Ast.Tree.t

val expr : Syntax.expr -> Ast.Tree.t
(** Lowers a single expression with an empty scope (every identifier is
    an external {!Ast.Tree.Name}); for tests. *)
