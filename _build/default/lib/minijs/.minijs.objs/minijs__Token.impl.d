lib/minijs/token.ml: Format Lexkit List Printf String
