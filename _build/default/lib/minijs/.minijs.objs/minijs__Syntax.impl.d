lib/minijs/syntax.ml: Stdlib
