lib/minijs/token.mli: Format Lexkit
