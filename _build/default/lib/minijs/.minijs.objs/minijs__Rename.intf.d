lib/minijs/rename.mli: Syntax
