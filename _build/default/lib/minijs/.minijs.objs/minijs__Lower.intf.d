lib/minijs/lower.mli: Ast Syntax
