lib/minijs/lexer.ml: Cursor Lexkit List String Token
