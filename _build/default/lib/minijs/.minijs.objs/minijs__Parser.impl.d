lib/minijs/parser.ml: Lexer Lexkit List String Syntax Token
