lib/minijs/lexer.mli: Token
