lib/minijs/printer.mli: Format Syntax
