lib/minijs/syntax.mli:
