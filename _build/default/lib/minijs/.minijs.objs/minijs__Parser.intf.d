lib/minijs/parser.mli: Syntax
