lib/minijs/lower.ml: Ast List Option Syntax
