lib/minijs/printer.ml: Buffer Format List Option String Syntax
