open Syntax

(* Precedence of an expression for parenthesization; higher binds tighter. *)
let prec = function
  | Assign _ -> 1
  | Cond _ -> 2
  | Binary ("||", _, _) -> 3
  | Binary ("&&", _, _) -> 4
  | Binary ("|", _, _) -> 5
  | Binary ("^", _, _) -> 6
  | Binary ("&", _, _) -> 7
  | Binary (("==" | "!=" | "===" | "!=="), _, _) -> 8
  | Binary (("<" | ">" | "<=" | ">=" | "instanceof" | "in"), _, _) -> 9
  | Binary (("+" | "-"), _, _) -> 10
  | Binary _ -> 11
  | Unary _ | Update (_, true, _) -> 12
  | Update (_, false, _) -> 13
  | Call _ | New _ | Member _ | Index _ -> 14
  | Func _ -> 2
  | _ -> 15

let escape_str s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr buf e =
  let atom ?(p = prec e) sub =
    if prec sub < p then begin
      Buffer.add_char buf '(';
      expr buf sub;
      Buffer.add_char buf ')'
    end
    else expr buf sub
  in
  match e with
  | Ident id -> Buffer.add_string buf id
  | Num n -> Buffer.add_string buf n
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_str s);
      Buffer.add_char buf '"'
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Null -> Buffer.add_string buf "null"
  | This -> Buffer.add_string buf "this"
  | Array es ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf e)
        es;
      Buffer.add_char buf ']'
  | Object kvs ->
      Buffer.add_string buf "{ ";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf k;
          Buffer.add_string buf ": ";
          expr buf v)
        kvs;
      Buffer.add_string buf " }"
  | Unary (op, e1) ->
      Buffer.add_string buf op;
      if String.length op > 1 then Buffer.add_char buf ' ';
      atom e1
  | Update (op, true, e1) ->
      Buffer.add_string buf op;
      atom e1
  | Update (op, false, e1) ->
      atom e1;
      Buffer.add_string buf op
  | Binary (op, a, b) ->
      let p = prec e in
      atom ~p a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf op;
      Buffer.add_char buf ' ';
      (* left-assoc: right operand needs strictly higher precedence *)
      if prec b <= p then begin
        Buffer.add_char buf '(';
        expr buf b;
        Buffer.add_char buf ')'
      end
      else expr buf b
  | Assign (op, l, r) ->
      atom ~p:2 l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf op;
      Buffer.add_char buf ' ';
      expr buf r
  | Cond (c, t, f) ->
      atom ~p:3 c;
      Buffer.add_string buf " ? ";
      atom ~p:2 t;
      Buffer.add_string buf " : ";
      atom ~p:2 f
  | Call (f, args) ->
      atom ~p:14 f;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf a)
        args;
      Buffer.add_char buf ')'
  | New (f, args) ->
      Buffer.add_string buf "new ";
      atom ~p:14 f;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf a)
        args;
      Buffer.add_char buf ')'
  | Member (e1, f) ->
      atom ~p:14 e1;
      Buffer.add_char buf '.';
      Buffer.add_string buf f
  | Index (e1, i) ->
      atom ~p:14 e1;
      Buffer.add_char buf '[';
      expr buf i;
      Buffer.add_char buf ']'
  | Func (name, params, body) ->
      Buffer.add_string buf "function";
      (match name with
      | Some n ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf n
      | None -> ());
      Buffer.add_char buf '(';
      Buffer.add_string buf (String.concat ", " params);
      Buffer.add_string buf ") ";
      block buf ~indent:0 body

and block buf ~indent stmts =
  Buffer.add_string buf "{\n";
  List.iter (fun s -> stmt buf ~indent:(indent + 2) s) stmts;
  Buffer.add_string buf (String.make indent ' ');
  Buffer.add_char buf '}'

and stmt buf ~indent s =
  let pad = String.make indent ' ' in
  Buffer.add_string buf pad;
  (match s with
  | Expr e ->
      expr buf e;
      Buffer.add_char buf ';'
  | VarDecl ds ->
      Buffer.add_string buf "var ";
      List.iteri
        (fun i (n, init) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf n;
          match init with
          | Some e ->
              Buffer.add_string buf " = ";
              expr buf e
          | None -> ())
        ds;
      Buffer.add_char buf ';'
  | If (c, t, e) -> (
      Buffer.add_string buf "if (";
      expr buf c;
      Buffer.add_string buf ") ";
      block buf ~indent t;
      match e with
      | Some e ->
          Buffer.add_string buf " else ";
          block buf ~indent e
      | None -> ())
  | While (c, body) ->
      Buffer.add_string buf "while (";
      expr buf c;
      Buffer.add_string buf ") ";
      block buf ~indent body
  | DoWhile (body, c) ->
      Buffer.add_string buf "do ";
      block buf ~indent body;
      Buffer.add_string buf " while (";
      expr buf c;
      Buffer.add_string buf ");"
  | For (init, cond, step, body) ->
      Buffer.add_string buf "for (";
      (match init with
      | Some (VarDecl _ as d) ->
          let b2 = Buffer.create 32 in
          stmt b2 ~indent:0 d;
          (* strip trailing ";" and newline added by stmt *)
          let s2 = Buffer.contents b2 in
          let s2 = String.trim s2 in
          Buffer.add_string buf (String.sub s2 0 (String.length s2 - 1))
      | Some (Expr e) -> expr buf e
      | Some _ | None -> ());
      Buffer.add_string buf "; ";
      Option.iter (expr buf) cond;
      Buffer.add_string buf "; ";
      Option.iter (expr buf) step;
      Buffer.add_string buf ") ";
      block buf ~indent body
  | ForIn (v, name, obj, body) ->
      Buffer.add_string buf "for (";
      if v then Buffer.add_string buf "var ";
      Buffer.add_string buf name;
      Buffer.add_string buf " in ";
      expr buf obj;
      Buffer.add_string buf ") ";
      block buf ~indent body
  | Return None -> Buffer.add_string buf "return;"
  | Return (Some e) ->
      Buffer.add_string buf "return ";
      expr buf e;
      Buffer.add_char buf ';'
  | Break -> Buffer.add_string buf "break;"
  | Continue -> Buffer.add_string buf "continue;"
  | FuncDecl (name, params, body) ->
      Buffer.add_string buf "function ";
      Buffer.add_string buf name;
      Buffer.add_char buf '(';
      Buffer.add_string buf (String.concat ", " params);
      Buffer.add_string buf ") ";
      block buf ~indent body
  | Try (body, catch, finally) ->
      Buffer.add_string buf "try ";
      block buf ~indent body;
      (match catch with
      | Some (v, cbody) ->
          Buffer.add_string buf " catch (";
          Buffer.add_string buf v;
          Buffer.add_string buf ") ";
          block buf ~indent cbody
      | None -> ());
      (match finally with
      | Some fbody ->
          Buffer.add_string buf " finally ";
          block buf ~indent fbody
      | None -> ())
  | Throw e ->
      Buffer.add_string buf "throw ";
      expr buf e;
      Buffer.add_char buf ';'
  | Block stmts -> block buf ~indent stmts);
  Buffer.add_char buf '\n'

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr buf e;
  Buffer.contents buf

let stmt_to_string ?(indent = 0) s =
  let buf = Buffer.create 128 in
  stmt buf ~indent s;
  Buffer.contents buf

let program_to_string p =
  let buf = Buffer.create 256 in
  List.iter (fun s -> stmt buf ~indent:0 s) p;
  Buffer.contents buf

let pp_program ppf p = Format.pp_print_string ppf (program_to_string p)
