(** Source rendering of MiniJS ASTs.

    The output re-parses to an equal AST (tested by round-trip property
    tests); operator printing is fully parenthesized below statement
    level only where needed, using the same precedence table as the
    parser. *)

val expr_to_string : Syntax.expr -> string
val stmt_to_string : ?indent:int -> Syntax.stmt -> string
val program_to_string : Syntax.program -> string
val pp_program : Format.formatter -> Syntax.program -> unit
