(** Language descriptors: the uniform interface PIGEON's tasks use over
    the four front-ends (paper Section 5.1: "separate modules that
    parse and traverse the AST of a program in each different language,
    but the main algorithm is the same across all languages"). *)

type t = {
  name : string;
  render_lang : Corpus.Render.lang;
  parse_tree : string -> Ast.Tree.t;
      (** Parse source and lower to the generic AST (scope-resolved). *)
  parse_typed_tree : (string -> Ast.Tree.t) option;
      (** Typed lowering with ground-truth type tags (Java only). *)
  tokens : string -> string list;
      (** Raw lexeme stream, for the token-based baselines. *)
  def_labels : string list;
      (** Labels of function/method-definition name terminals. *)
  strip : string -> string;
      (** Minify/obfuscate: rename local variables and parameters to
          short meaningless names. *)
  tuned : Astpath.Config.t;
      (** The paper's tuned (max_length, max_width) for variable-name
          prediction in this language (Table 2). *)
  tuned_method : Astpath.Config.t;
      (** Tuned parameters for method-name prediction. *)
}

val javascript : t
val java : t
val python : t
val csharp : t
val all : t list
val by_name : string -> t option
