(** Qualitative probes (paper Section 5.4 and Table 4): top-k CRF
    candidates for a program element, and word2vec semantic-similarity
    clusters among names. *)

val crf_top_k :
  model:Crf.Train.model ->
  repr:Graphs.repr ->
  lang:Lang.t ->
  source:string ->
  var:string ->
  k:int ->
  (string * float) list
(** Top-k candidate names for the local variable named [var] in
    [source] (e.g. the stripped name [d] of the paper's Fig. 1a).
    Returns [[]] if no such unknown element exists. *)

val w2v_neighbors :
  model:Word2vec.Sgns.t -> names:string list -> k:int -> (string * string list) list
(** For each query name, its [k] cosine-nearest names in the embedding
    space — the Table 4b probe ([req ∼ request], [array ∼ arr ∼ list],
    ...). Names absent from the vocabulary map to []. *)
