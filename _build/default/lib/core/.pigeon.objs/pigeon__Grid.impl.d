lib/core/grid.ml: Astpath List
