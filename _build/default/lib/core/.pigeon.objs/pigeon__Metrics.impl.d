lib/core/metrics.ml: Buffer Char Fmt Hashtbl List Option String
