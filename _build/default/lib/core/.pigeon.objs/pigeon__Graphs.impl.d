lib/core/graphs.ml: Array Ast Astpath Crf Hashtbl List Option Random String
