lib/core/lang.mli: Ast Astpath Corpus
