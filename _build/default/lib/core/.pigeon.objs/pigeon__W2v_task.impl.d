lib/core/w2v_task.ml: Array Ast Astpath Graphs Hashtbl Lang Lexkit List Metrics Option Printf Random String Word2vec
