lib/core/graphs.mli: Ast Astpath Crf
