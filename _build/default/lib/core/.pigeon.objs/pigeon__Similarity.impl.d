lib/core/similarity.ml: Array Crf Graphs Lang Lexkit List String Word2vec
