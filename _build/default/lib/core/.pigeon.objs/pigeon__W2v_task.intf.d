lib/core/w2v_task.mli: Astpath Graphs Lang Metrics Word2vec
