lib/core/grid.mli: Astpath
