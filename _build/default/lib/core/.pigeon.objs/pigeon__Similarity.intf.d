lib/core/similarity.mli: Crf Graphs Lang Word2vec
