lib/core/task.ml: Array Astpath Crf Graphs Lang Lexkit List Logs Metrics Option Unix
