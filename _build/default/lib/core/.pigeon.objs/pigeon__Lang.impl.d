lib/core/lang.ml: Ast Astpath Corpus List Minicsharp Minijava Minijs Minipython String
