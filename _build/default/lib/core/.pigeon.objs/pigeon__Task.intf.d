lib/core/task.mli: Crf Graphs Lang Metrics
