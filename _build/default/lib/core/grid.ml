type point = { length : int; width : int; accuracy : float }

let sweep ~lengths ~widths ~eval =
  List.concat_map
    (fun length ->
      List.map
        (fun width ->
          let config = Astpath.Config.make ~max_length:length ~max_width:width () in
          { length; width; accuracy = eval config })
        widths)
    lengths

let best = function
  | [] -> invalid_arg "Grid.best: empty sweep"
  | points ->
      List.fold_left
        (fun acc p ->
          if
            p.accuracy > acc.accuracy
            || (p.accuracy = acc.accuracy
               && p.length + p.width < acc.length + acc.width)
          then p
          else acc)
        (List.hd points) points
