type t = {
  name : string;
  render_lang : Corpus.Render.lang;
  parse_tree : string -> Ast.Tree.t;
  parse_typed_tree : (string -> Ast.Tree.t) option;
  tokens : string -> string list;
  def_labels : string list;
  strip : string -> string;
  tuned : Astpath.Config.t;
  tuned_method : Astpath.Config.t;
}

let cfg l w =
  Astpath.Config.make ~include_semi_paths:true ~max_length:l ~max_width:w ()

let javascript =
  {
    name = "JavaScript";
    render_lang = Corpus.Render.Js;
    parse_tree = (fun src -> Minijs.Lower.program (Minijs.Parser.parse src));
    parse_typed_tree = None;
    tokens = Minijs.Lexer.token_values;
    def_labels = [ "SymbolDefun"; "SymbolLambda" ];
    strip =
      (fun src ->
        let stripped, _ = Minijs.Rename.strip (Minijs.Parser.parse src) in
        Minijs.Printer.program_to_string stripped);
    tuned = cfg 7 3;
    tuned_method = cfg 14 6;
  }

let java =
  {
    name = "Java";
    render_lang = Corpus.Render.Java;
    parse_tree = (fun src -> Minijava.Lower.program (Minijava.Parser.parse src));
    parse_typed_tree =
      Some
        (fun src -> Minijava.Lower.program ~typed:true (Minijava.Parser.parse src));
    tokens = Minijava.Lexer.token_values;
    def_labels = [ Minijava.Lower.method_name_label ];
    strip =
      (fun src ->
        let stripped, _ = Minijava.Rename.strip (Minijava.Parser.parse src) in
        Minijava.Printer.program_to_string stripped);
    tuned = cfg 5 2;
    tuned_method = cfg 14 6;
  }

let python =
  {
    name = "Python";
    render_lang = Corpus.Render.Python;
    parse_tree =
      (fun src -> Minipython.Lower.program (Minipython.Parser.parse src));
    parse_typed_tree = None;
    tokens = Minipython.Lexer.token_values;
    def_labels = [ Minipython.Lower.function_name_label ];
    strip =
      (fun src ->
        let stripped, _ = Minipython.Rename.strip (Minipython.Parser.parse src) in
        Minipython.Printer.program_to_string stripped);
    tuned = cfg 7 4;
    tuned_method = cfg 14 6;
  }

let csharp =
  {
    name = "C#";
    render_lang = Corpus.Render.Csharp;
    parse_tree =
      (fun src -> Minicsharp.Lower.program (Minicsharp.Parser.parse src));
    parse_typed_tree = None;
    tokens = Minicsharp.Lexer.token_values;
    def_labels = [ Minicsharp.Lower.method_name_label ];
    strip =
      (fun src ->
        let stripped, _ = Minicsharp.Rename.strip (Minicsharp.Parser.parse src) in
        Minicsharp.Printer.program_to_string stripped);
    tuned = cfg 7 4;
    tuned_method = cfg 14 6;
  }

let all = [ javascript; java; python; csharp ]
let by_name n = List.find_opt (fun l -> String.equal l.name n) all
