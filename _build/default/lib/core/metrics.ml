let normalize s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then
        Buffer.add_char buf c
      else if c >= 'A' && c <= 'Z' then
        Buffer.add_char buf (Char.lowercase_ascii c))
    s;
  Buffer.contents buf

let exact_match ~gold ~pred = String.equal (normalize gold) (normalize pred)

let subtokens s =
  let out = ref [] in
  let cur = Buffer.create 8 in
  let flush () =
    if Buffer.length cur > 0 then begin
      out := String.lowercase_ascii (Buffer.contents cur) :: !out;
      Buffer.clear cur
    end
  in
  String.iter
    (fun c ->
      if c >= 'A' && c <= 'Z' then begin
        flush ();
        Buffer.add_char cur c
      end
      else if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then
        Buffer.add_char cur c
      else flush ())
    s;
  flush ();
  List.rev !out

type counts = { tp : int; n_pred : int; n_gold : int }

let f1_counts ~gold ~pred =
  let g = subtokens gold and p = subtokens pred in
  (* multiset intersection *)
  let remaining = Hashtbl.create 8 in
  List.iter
    (fun t ->
      Hashtbl.replace remaining t
        (1 + Option.value (Hashtbl.find_opt remaining t) ~default:0))
    g;
  let tp =
    List.fold_left
      (fun acc t ->
        match Hashtbl.find_opt remaining t with
        | Some c when c > 0 ->
            Hashtbl.replace remaining t (c - 1);
            acc + 1
        | _ -> acc)
      0 p
  in
  { tp; n_pred = List.length p; n_gold = List.length g }

let precision_of_counts c =
  if c.n_pred = 0 then 0. else float_of_int c.tp /. float_of_int c.n_pred

let recall_of_counts c =
  if c.n_gold = 0 then 0. else float_of_int c.tp /. float_of_int c.n_gold

let f1_of_counts c =
  let p = precision_of_counts c and r = recall_of_counts c in
  if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r)

type summary = { accuracy : float; f1 : float; n : int }

let summarize pairs =
  let n = List.length pairs in
  if n = 0 then { accuracy = 0.; f1 = 0.; n = 0 }
  else begin
    let correct = ref 0 in
    let agg = ref { tp = 0; n_pred = 0; n_gold = 0 } in
    List.iter
      (fun (gold, pred) ->
        if exact_match ~gold ~pred then incr correct;
        let c = f1_counts ~gold ~pred in
        agg :=
          {
            tp = !agg.tp + c.tp;
            n_pred = !agg.n_pred + c.n_pred;
            n_gold = !agg.n_gold + c.n_gold;
          })
      pairs;
    {
      accuracy = float_of_int !correct /. float_of_int n;
      f1 = f1_of_counts !agg;
      n;
    }
  end

let pp_summary ppf s =
  Fmt.pf ppf "acc %.1f%%, F1 %.1f (n=%d)" (100. *. s.accuracy) (100. *. s.f1) s.n
