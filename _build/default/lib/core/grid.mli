(** Hyper-parameter grid search over [max_length] × [max_width] (paper
    Sections 4.2 and 5.5, Fig. 10). *)

type point = { length : int; width : int; accuracy : float }

val sweep :
  lengths:int list ->
  widths:int list ->
  eval:(Astpath.Config.t -> float) ->
  point list
(** Evaluate every combination (typically on the validation set). *)

val best : point list -> point
(** Highest accuracy; ties broken toward shorter, narrower paths
    (cheaper to train). Raises [Invalid_argument] on []. *)
