type result = {
  summary : Metrics.summary;
  train_seconds : float;
  model : Crf.Train.model;
}

let log_src = Logs.Src.create "pigeon.task"

module Log = (val Logs.src_log log_src : Logs.LOG)

let graphs_of_sources ~repr ~lang ~policy sources =
  List.filter_map
    (fun (name, src) ->
      match lang.Lang.parse_tree src with
      | tree ->
          Some (Graphs.build repr ~def_labels:lang.Lang.def_labels ~policy tree)
      | exception Lexkit.Error (msg, pos) ->
          Log.warn (fun m ->
              m "skipping %s: parse error at %a: %s" name Lexkit.pp_pos pos msg);
          None)
    sources

let eval_pairs model graphs =
  List.concat_map
    (fun g ->
      let pred = Crf.Train.predict model g in
      let gold = Crf.Graph.gold_assignment g in
      List.map (fun n -> (gold.(n), pred.(n))) (Crf.Graph.unknown_ids g))
    graphs

let run_crf ?repr ?(crf_config = Crf.Train.default_config) ~lang ~policy ~train
    ~test () =
  let repr =
    match repr with
    | Some r -> r
    | None ->
        let config =
          match policy with
          | Graphs.Locals -> lang.Lang.tuned
          | Graphs.Methods _ -> lang.Lang.tuned_method
        in
        Graphs.default_repr ~config ()
  in
  (* Method names draw from a larger label vocabulary than variable
     names; give candidate pruning a bigger budget there. *)
  let crf_config =
    match policy with
    | Graphs.Methods _ ->
        {
          crf_config with
          Crf.Train.inference =
            {
              crf_config.Crf.Train.inference with
              Crf.Inference.max_candidates = 64;
            };
        }
    | Graphs.Locals -> crf_config
  in
  let train_graphs = graphs_of_sources ~repr ~lang ~policy train in
  let test_graphs = graphs_of_sources ~repr ~lang ~policy test in
  let t0 = Unix.gettimeofday () in
  let model = Crf.Train.train ~config:crf_config train_graphs in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let summary = Metrics.summarize (eval_pairs model test_graphs) in
  { summary; train_seconds; model }

let typed_graphs ~repr sources =
  List.filter_map
    (fun (name, src) ->
      let parse = Option.get Lang.java.Lang.parse_typed_tree in
      match parse src with
      | tree -> Some (Graphs.full_type_graph repr tree)
      | exception Lexkit.Error (msg, pos) ->
          Log.warn (fun m ->
              m "skipping %s: parse error at %a: %s" name Lexkit.pp_pos pos msg);
          None)
    sources

let run_full_types ?repr ?(crf_config = Crf.Train.default_config) ~train ~test
    () =
  let repr =
    match repr with
    | Some r -> r
    | None ->
        Graphs.default_repr
          ~config:(Astpath.Config.make ~max_length:4 ~max_width:1 ())
          ()
  in
  let train_graphs = typed_graphs ~repr train in
  let test_graphs = typed_graphs ~repr test in
  let t0 = Unix.gettimeofday () in
  let model = Crf.Train.train ~config:crf_config train_graphs in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let summary = Metrics.summarize (eval_pairs model test_graphs) in
  { summary; train_seconds; model }

let string_of_type_baseline test =
  let repr =
    Graphs.default_repr
      ~config:(Astpath.Config.make ~max_length:4 ~max_width:1 ())
      ()
  in
  let graphs = typed_graphs ~repr test in
  let pairs =
    List.concat_map
      (fun g ->
        let gold = Crf.Graph.gold_assignment g in
        List.map
          (fun n -> (gold.(n), "java.lang.String"))
          (Crf.Graph.unknown_ids g))
      graphs
  in
  Metrics.summarize pairs
