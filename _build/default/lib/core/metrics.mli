(** Evaluation metrics (paper Section 5.2).

    Exact match is "case-insensitive and ignoring differences in
    non-alphabetical characters": [totalCount] matches [total_count].
    Sub-token F1 is the Allamanis et al. metric used for Java method
    names: names split on camelCase and snake_case boundaries,
    precision/recall over the sub-token multisets. *)

val normalize : string -> string
(** Lower-case, alphanumeric characters only. *)

val exact_match : gold:string -> pred:string -> bool

val subtokens : string -> string list
(** [subtokens "totalHttpCount"] = [["total"; "http"; "count"]];
    [subtokens "total_count"] = [["total"; "count"]]. Lower-cased. *)

type counts = { tp : int; n_pred : int; n_gold : int }

val f1_counts : gold:string -> pred:string -> counts
val f1_of_counts : counts -> float
val precision_of_counts : counts -> float
val recall_of_counts : counts -> float

type summary = { accuracy : float; f1 : float; n : int }

val summarize : (string * string) list -> summary
(** From (gold, pred) pairs. *)

val pp_summary : Format.formatter -> summary -> unit
