(* Tests for the MiniC# front-end. *)

module Syntax = Minijava.Syntax
module Types = Minijava.Types
open Minicsharp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample =
  "using System;\n\
   using System.Collections.Generic;\n\
   namespace Example.App {\n\
  \  class Counter {\n\
  \    int total;\n\
  \    public int Count(List<int> values, int value) {\n\
  \      int count = 0;\n\
  \      foreach (int v in values) {\n\
  \        if (v == value) {\n\
  \          count++;\n\
  \        }\n\
  \      }\n\
  \      return count;\n\
  \    }\n\
  \  }\n\
   }\n"

let test_parse_sample () =
  let p = Parser.parse sample in
  Alcotest.(check (option string)) "namespace" (Some "Example.App") p.Syntax.package;
  check_int "two usings" 2 (List.length p.Syntax.imports);
  let c = List.hd p.Syntax.classes in
  let m = List.hd c.Syntax.c_methods in
  match m.Syntax.m_body with
  | [ Syntax.LocalDecl _; Syntax.ForEach (Types.Prim "int", "v", _, _); Syntax.Return _ ] ->
      ()
  | _ -> Alcotest.fail "body shape"

let test_parse_var_and_is () =
  (match Parser.parse_stmts "var x = MakeThing();" with
  | [ Syntax.LocalDecl (Types.Prim "var", [ ("x", Some _) ]) ] -> ()
  | _ -> Alcotest.fail "var decl");
  match Parser.parse_expr "o is string" with
  | Syntax.InstanceOf (_, Types.Prim "string") -> ()
  | _ -> Alcotest.fail "is expression"

let test_parse_base_list () =
  let p = Parser.parse "class A : Base, IRunnable { void Run() { } }" in
  let c = List.hd p.Syntax.classes in
  check_bool "extends" true (c.Syntax.c_extends <> None);
  check_int "one interface" 1 (List.length c.Syntax.c_implements)

let roundtrip src =
  let p = Parser.parse src in
  let printed = Printer.program_to_string p in
  match Parser.parse printed with
  | p2 -> check_bool ("round-trip: " ^ src) true (Syntax.equal_program p p2)
  | exception Lexkit.Error (m, pos) ->
      Alcotest.failf "re-parse failed at %a: %s\n%s" Lexkit.pp_pos pos m printed

let test_roundtrip () =
  List.iter roundtrip
    [
      sample;
      "class A { void M() { Console.WriteLine(\"hi\"); } }";
      "class B { string S(object o) { return (string) o; } }";
      "class C { void M() { foreach (string s in names) { Use(s); } } }";
      "class D { bool P(object o) { return o is string; } }";
      "namespace N { class E { int[] xs; void M() { xs[0] = 1; } } }";
      "class F { void M() { var d = new Dictionary<string, int>(); } }";
      "class G { void M() { for (int i = 0; i < n; i++) { Use(i); } } }";
      "class H { void M() { try { R(); } catch (Exception e) { L(e); } } }";
      "class I { private static readonly int Max = 10; }";
    ]

let test_lower_wrappers () =
  (* The C# lowering is more elaborate: ArgumentList, Argument,
     ExpressionStatement, EqualsValueClause wrappers all present. *)
  let tree = Lower.program (Parser.parse sample) in
  let idx = Ast.Index.build tree in
  List.iter
    (fun lbl ->
      check_bool (lbl ^ " present") true
        (Ast.Index.nodes_with_label idx lbl <> []))
    [
      "CompilationUnit"; "UsingDirective"; "NamespaceDeclaration";
      "ClassDeclaration"; "MethodDeclaration"; "ParameterList"; "Parameter";
      "LocalDeclarationStatement"; "VariableDeclaration"; "VariableDeclarator";
      "EqualsValueClause"; "ForEachStatement"; "IfStatement";
      "ExpressionStatement"; "ReturnStatement";
    ]

let test_lower_more_elaborate_than_java () =
  (* Same logical program, bigger C# tree (the paper's Roslyn remark). *)
  let cs = Lower.program (Parser.parse sample) in
  let java_src =
    "import java.util.List;\n\
     class Counter {\n\
    \  int total;\n\
    \  public int count(List<Integer> values, int value) {\n\
    \    int count = 0;\n\
    \    for (int v : values) { if (v == value) { count++; } }\n\
    \    return count;\n\
    \  }\n\
     }\n"
  in
  let java = Minijava.Lower.program (Minijava.Parser.parse java_src) in
  check_bool "C# tree larger" true (Ast.Tree.size cs > Ast.Tree.size java)

let test_lower_binders () =
  let tree = Lower.program (Parser.parse sample) in
  let idx = Ast.Index.build tree in
  let vs = Ast.Index.terminals_with_value idx "v" in
  let ids =
    List.filter_map
      (fun n ->
        match Ast.Index.sort idx n with
        | Some (Ast.Tree.Var i) -> Some i
        | _ -> None)
      vs
  in
  check_int "v occurrences" 2 (List.length ids);
  check_bool "same binder" true (List.for_all (fun i -> i = List.hd ids) ids);
  (* field total is Name, not Var *)
  let tot = List.hd (Ast.Index.terminals_with_value idx "total") in
  check_bool "field is Name" true (Ast.Index.sort idx tot = Some Ast.Tree.Name)

let test_strip () =
  let p = Parser.parse sample in
  let stripped, mapping = Rename.strip p in
  check_bool "values stripped" true (List.mem_assoc "values" mapping);
  let toks = Lexer.token_values (Printer.program_to_string stripped) in
  check_bool "method kept" true (List.mem "Count" toks);
  check_bool "param gone" false (List.mem "values" toks)

(* ---------- property tests ---------- *)

(* MiniC# shares the MiniJava syntax tree, so random programs over the
   shared subset must round-trip through the C# printer and parser. *)
let gen_program : Syntax.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  let ident = map (fun i -> Printf.sprintf "v%d" i) (int_range 0 6) in
  let ty =
    oneof
      [
        return (Types.Prim "int");
        return (Types.Prim "bool");
        return (Types.Prim "string");
        return (Types.named ~args:[ Types.Prim "int" ] "List");
      ]
  in
  let lit =
    oneof
      [
        map (fun n -> Syntax.IntLit (string_of_int n)) (int_range 0 99);
        map (fun b -> Syntax.BoolLit b) bool;
        map (fun s -> Syntax.StrLit s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
      ]
  in
  let expr =
    fix
      (fun self n ->
        if n <= 0 then oneof [ map (fun i -> Syntax.Ident i) ident; lit ]
        else
          oneof
            [
              map (fun i -> Syntax.Ident i) ident;
              lit;
              map2 (fun a b -> Syntax.Binary ("+", a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Syntax.Binary ("<", a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Syntax.Unary ("!", a)) (self (n - 1));
              map3
                (fun r f a -> Syntax.Call (Some (Syntax.Ident r), "M" ^ f, [ a ]))
                ident ident (self (n - 1));
              map2 (fun o i -> Syntax.Index (Syntax.Ident o, i)) ident (self (n - 1));
              map2 (fun t a -> Syntax.New (t, [ a ])) ty (self (n - 1));
            ])
      3
  in
  let stmt =
    fix
      (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun e -> Syntax.ExprStmt e) expr;
              map3
                (fun t v e -> Syntax.LocalDecl (t, [ (v, Some e) ]))
                ty ident expr;
              map (fun e -> Syntax.Return (Some e)) expr;
            ]
        else
          oneof
            [
              map2 (fun c b -> Syntax.If (c, [ b ], None)) expr (self (n - 1));
              map2 (fun c b -> Syntax.While (c, [ b ])) expr (self (n - 1));
              map3
                (fun v it b -> Syntax.ForEach (Types.Prim "int", v, it, [ b ]))
                ident expr (self (n - 1));
            ])
      2
  in
  let meth =
    map2
      (fun name body ->
        {
          Syntax.m_modifiers = [ "public" ];
          m_ret = Types.Prim "void";
          m_name = "Method" ^ name;
          m_params = [ (Types.Prim "int", "arg0") ];
          m_throws = [];
          m_body = body;
        })
      ident
      (list_size (int_range 1 4) stmt)
  in
  map
    (fun methods ->
      {
        Syntax.package = Some "Example.App";
        imports = [ "System" ];
        classes =
          [
            {
              Syntax.c_modifiers = [];
              c_name = "Gen";
              c_extends = None;
              c_implements = [];
              c_fields = [];
              c_methods = methods;
            };
          ];
      })
    (list_size (int_range 1 3) meth)

let prop_csharp_roundtrip =
  QCheck2.Test.make ~name:"printer/parser round-trip" ~count:300 gen_program
    (fun p ->
      let printed = Printer.program_to_string p in
      match Parser.parse printed with
      | p2 -> Syntax.equal_program p p2
      | exception Lexkit.Error _ -> false)

let prop_csharp_lower_total =
  QCheck2.Test.make ~name:"lowering total" ~count:300 gen_program (fun p ->
      Ast.Tree.size (Lower.program p) > 0)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ("properties", qcheck [ prop_csharp_roundtrip; prop_csharp_lower_total ]);
    ( "parser",
      [
        Alcotest.test_case "namespace/using/foreach" `Quick test_parse_sample;
        Alcotest.test_case "var and is" `Quick test_parse_var_and_is;
        Alcotest.test_case "base list" `Quick test_parse_base_list;
      ] );
    ("printer", [ Alcotest.test_case "round-trips" `Quick test_roundtrip ]);
    ( "lower",
      [
        Alcotest.test_case "Roslyn wrappers" `Quick test_lower_wrappers;
        Alcotest.test_case "more elaborate than Java" `Quick
          test_lower_more_elaborate_than_java;
        Alcotest.test_case "binders" `Quick test_lower_binders;
      ] );
    ("rename", [ Alcotest.test_case "strip" `Quick test_strip ]);
  ]

let () = Alcotest.run "minicsharp" suite
