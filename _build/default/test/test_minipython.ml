(* Tests for the MiniPython front-end: layout lexer, parser, printer
   round-trips, lowering and stripping. The paper's Fig. 7 program must
   parse verbatim. *)

open Minipython

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig7 =
  "def sh3(cmd):\n\
  \    process = Popen(cmd, stdout=PIPE, stderr=PIPE, shell=True)\n\
  \    out, err = process.communicate()\n\
  \    retcode = process.returncode\n\
  \    if retcode:\n\
  \        raise CalledProcessError(retcode, cmd)\n\
  \    else:\n\
  \        return out.rstrip(), err.rstrip()\n"

(* ---------- lexer ---------- *)

let toks src = List.map (fun { Token.tok; _ } -> tok) (Lexer.tokenize src)

let count t ts = List.length (List.filter (Token.equal t) ts)

let test_layout_basic () =
  let ts = toks "if x:\n    y = 1\nz = 2\n" in
  check_int "one indent" 1 (count Token.Indent ts);
  check_int "one dedent" 1 (count Token.Dedent ts);
  check_int "three newlines" 3 (count Token.Newline ts)

let test_layout_nested () =
  let ts = toks "def f():\n    if x:\n        y = 1\n" in
  check_int "two indents" 2 (count Token.Indent ts);
  check_int "two dedents at eof" 2 (count Token.Dedent ts)

let test_layout_blank_and_comments () =
  let ts = toks "x = 1\n\n# comment\n   \ny = 2\n" in
  check_int "no indents from blanks" 0 (count Token.Indent ts);
  check_int "two logical lines" 2 (count Token.Newline ts)

let test_layout_brackets () =
  (* newlines inside brackets are joined *)
  let ts = toks "x = f(1,\n      2)\n" in
  check_int "single logical line" 1 (count Token.Newline ts);
  check_int "no indent" 0 (count Token.Indent ts)

let test_layout_bad_dedent () =
  match Lexer.tokenize "if x:\n    y = 1\n  z = 2\n" with
  | _ -> Alcotest.fail "expected dedent error"
  | exception Lexkit.Error _ -> ()

(* ---------- parser ---------- *)

let test_parse_fig7 () =
  match Parser.parse fig7 with
  | [ Syntax.FuncDef ("sh3", [ "cmd" ], body) ] -> (
      match body with
      | [ Syntax.Assign (Syntax.Ident "process", Syntax.Call (_, [ Syntax.Ident "cmd" ], kwargs));
          Syntax.Assign (Syntax.TupleLit [ _; _ ], _);
          Syntax.Assign (Syntax.Ident "retcode", Syntax.Attribute (_, "returncode"));
          Syntax.If ([ (Syntax.Ident "retcode", [ Syntax.Raise (Some _) ]) ],
                     Some [ Syntax.Return (Some (Syntax.TupleLit [ _; _ ])) ]) ] ->
          check_int "three kwargs" 3 (List.length kwargs)
      | _ -> Alcotest.fail "fig7 body shape")
  | _ -> Alcotest.fail "fig7 top shape"

let test_parse_elif () =
  match Parser.parse "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n" with
  | [ Syntax.If ([ (_, _); (_, _) ], Some _) ] -> ()
  | _ -> Alcotest.fail "elif chain"

let test_parse_compare_chain () =
  (match Parser.parse_expr "x not in xs" with
  | Syntax.Compare ("not in", _, _) -> ()
  | _ -> Alcotest.fail "not in");
  (match Parser.parse_expr "x is not None" with
  | Syntax.Compare ("is not", _, Syntax.NoneLit) -> ()
  | _ -> Alcotest.fail "is not");
  match Parser.parse_expr "not a == b" with
  | Syntax.Not (Syntax.Compare ("==", _, _)) -> ()
  | _ -> Alcotest.fail "not binds looser than =="

let test_parse_precedence () =
  match Parser.parse_expr "a + b * c == d and e" with
  | Syntax.BoolOp ("and", Syntax.Compare ("==", Syntax.BinOp ("+", _, Syntax.BinOp ("*", _, _)), _), _) ->
      ()
  | _ -> Alcotest.fail "precedence"

let test_parse_for_tuple_target () =
  match Parser.parse "for k, v in items:\n    use(k, v)\n" with
  | [ Syntax.For (Syntax.TupleLit [ Syntax.Ident "k"; Syntax.Ident "v" ], Syntax.Ident "items", [ _ ]) ] ->
      ()
  | _ -> Alcotest.fail "tuple target"

let test_parse_try_except () =
  match
    Parser.parse
      "try:\n    risky()\nexcept IOError as e:\n    log(e)\nfinally:\n    close()\n"
  with
  | [ Syntax.Try ([ _ ], [ { Syntax.h_type = Some (Syntax.Ident "IOError"); h_name = Some "e"; _ } ], Some [ _ ]) ] ->
      ()
  | _ -> Alcotest.fail "try/except/finally"

let test_parse_error () =
  match Parser.parse "def f(:\n" with
  | _ -> Alcotest.fail "expected error"
  | exception Lexkit.Error _ -> ()

(* ---------- printer round-trips ---------- *)

let roundtrip src =
  let p = Parser.parse src in
  let printed = Printer.program_to_string p in
  match Parser.parse printed with
  | p2 -> check_bool ("round-trip: " ^ src) true (Syntax.equal_program p p2)
  | exception Lexkit.Error (m, pos) ->
      Alcotest.failf "re-parse failed at %a: %s\n%s" Lexkit.pp_pos pos m printed

let test_roundtrip () =
  List.iter roundtrip
    [
      fig7;
      "x = 1\n";
      "x, y = y, x\n";
      "total = 0\nfor v in values:\n    total += v\n";
      "if done:\n    pass\nelse:\n    run()\n";
      "xs = [1, 2, 3]\nd = {\"k\": 1}\nt = (1, 2)\n";
      "while not done:\n    step()\n    if check():\n        done = True\n";
      "def f(a, b):\n    return a % b\n";
      "raise ValueError(\"bad\")\n";
      "import os.path\n";
      "x = a.b.c[0](1, k=2)\n";
      "y = -x ** 2\n";
      "flag = a and not b or c\n";
    ]

(* ---------- lowering ---------- *)

let test_lower_scoping () =
  let tree = Lower.program (Parser.parse fig7) in
  let idx = Ast.Index.build tree in
  (* process: assigned + used twice -> one binder, 3 occurrences *)
  let ps = Ast.Index.terminals_with_value idx "process" in
  check_int "three occurrences" 3 (List.length ps);
  let ids =
    List.filter_map
      (fun n ->
        match Ast.Index.sort idx n with
        | Some (Ast.Tree.Var i) -> Some i
        | _ -> None)
      ps
  in
  check_bool "all same binder" true
    (List.length ids = 3 && List.for_all (fun i -> i = List.hd ids) ids);
  (* Popen / PIPE are free names *)
  let popen = List.hd (Ast.Index.terminals_with_value idx "Popen") in
  check_bool "Popen free" true (Ast.Index.sort idx popen = Some Ast.Tree.Name)

let test_lower_assign_before_use () =
  (* Python local-ness is per scope, not per first assignment:
     a name used before its assignment is still local. *)
  let tree = Lower.program (Parser.parse "def f():\n    use(x)\n    x = 1\n") in
  let idx = Ast.Index.build tree in
  let xs = Ast.Index.terminals_with_value idx "x" in
  let sorts = List.filter_map (Ast.Index.sort idx) xs in
  check_bool "both Var" true
    (List.for_all (function Ast.Tree.Var _ -> true | _ -> false) sorts)

let test_lower_function_label () =
  let tree = Lower.program (Parser.parse fig7) in
  let idx = Ast.Index.build tree in
  check_int "one FunctionName" 1
    (List.length (Ast.Index.nodes_with_label idx Lower.function_name_label))

let test_lower_elif_nesting () =
  let tree =
    Lower.program
      (Parser.parse "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n")
  in
  let idx = Ast.Index.build tree in
  check_int "two If nodes" 2 (List.length (Ast.Index.nodes_with_label idx "If"));
  check_int "two orelse nodes" 2
    (List.length (Ast.Index.nodes_with_label idx "orelse"))

(* ---------- strip ---------- *)

let test_strip_fig7 () =
  let p = Parser.parse fig7 in
  let stripped, mapping = Rename.strip p in
  List.iter
    (fun n -> check_bool (n ^ " stripped") true (List.mem_assoc n mapping))
    [ "cmd"; "process"; "out"; "err"; "retcode" ];
  check_bool "sh3 not stripped" false (List.mem_assoc "sh3" mapping);
  let printed = Printer.program_to_string stripped in
  let toks = Lexer.token_values printed in
  check_bool "Popen kept" true (List.mem "Popen" toks);
  check_bool "sh3 kept" true (List.mem "sh3" toks);
  check_bool "process gone" false (List.mem "process" toks)

let test_strip_roundtrip () =
  let p = Parser.parse fig7 in
  let stripped, mapping = Rename.strip p in
  let inverse = List.map (fun (a, b) -> (b, a)) mapping in
  let restored = Rename.apply (fun n -> List.assoc_opt n inverse) stripped in
  check_bool "restored" true (Syntax.equal_program p restored)

let test_strip_shape () =
  let p = Parser.parse fig7 in
  let stripped, _ = Rename.strip p in
  let rec skel t = Ast.Tree.label t :: List.concat_map skel (Ast.Tree.children t) in
  check_bool "same skeleton" true
    (skel (Lower.program p) = skel (Lower.program stripped))

(* ---------- property tests ---------- *)

let gen_program : Syntax.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  let ident = map (fun i -> Printf.sprintf "v%d" i) (int_range 0 6) in
  let lit =
    oneof
      [
        map (fun n -> Syntax.Num (string_of_int n)) (int_range 0 99);
        map (fun b -> Syntax.Bool b) bool;
        return Syntax.NoneLit;
        map (fun s -> Syntax.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
      ]
  in
  let expr =
    fix
      (fun self n ->
        if n <= 0 then oneof [ map (fun i -> Syntax.Ident i) ident; lit ]
        else
          oneof
            [
              map (fun i -> Syntax.Ident i) ident;
              lit;
              map2 (fun a b -> Syntax.BinOp ("+", a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Syntax.Compare ("==", a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Syntax.BoolOp ("and", a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Syntax.Not a) (self (n - 1));
              map2 (fun f a -> Syntax.Call (Syntax.Ident f, [ a ], [])) ident (self (n - 1));
              map3
                (fun f k v -> Syntax.Call (Syntax.Ident f, [], [ ("k" ^ k, v) ]))
                ident ident (self (n - 1));
              map2 (fun o a -> Syntax.Attribute (o, "a" ^ a)) (self (n - 1)) ident;
              map2 (fun o i -> Syntax.Subscript (Syntax.Ident o, i)) ident (self (n - 1));
              map (fun es -> Syntax.ListLit es) (list_size (int_range 0 3) (self 0));
            ])
      3
  in
  let stmt =
    fix
      (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun e -> Syntax.ExprStmt e) expr;
              map2 (fun v e -> Syntax.Assign (Syntax.Ident v, e)) ident expr;
              map2 (fun v e -> Syntax.AugAssign ("+=", Syntax.Ident v, e)) ident expr;
              map (fun e -> Syntax.Return (Some e)) expr;
              return Syntax.Pass;
            ]
        else
          oneof
            [
              map2 (fun v e -> Syntax.Assign (Syntax.Ident v, e)) ident expr;
              map2 (fun c b -> Syntax.If ([ (c, [ b ]) ], None)) expr (self (n - 1));
              map3
                (fun c b1 b2 -> Syntax.If ([ (c, [ b1 ]) ], Some [ b2 ]))
                expr (self (n - 1)) (self (n - 1));
              map2 (fun c b -> Syntax.While (c, [ b ])) expr (self (n - 1));
              map3
                (fun v it b -> Syntax.For (Syntax.Ident v, it, [ b ]))
                ident expr (self (n - 1));
            ])
      2
  in
  let func =
    map2
      (fun name body -> Syntax.FuncDef ("fn" ^ name, [ "arg0" ], body))
      ident
      (list_size (int_range 1 5) stmt)
  in
  list_size (int_range 1 3) func

let prop_python_roundtrip =
  QCheck2.Test.make ~name:"printer/parser round-trip" ~count:300 gen_program
    (fun p ->
      let printed = Printer.program_to_string p in
      match Parser.parse printed with
      | p2 -> Syntax.equal_program p p2
      | exception Lexkit.Error _ -> false)

let prop_python_lower_total =
  QCheck2.Test.make ~name:"lowering total, binders consistent" ~count:300
    gen_program (fun p ->
      let tree = Lower.program p in
      let idx = Ast.Index.build tree in
      let tbl = Hashtbl.create 16 in
      let ok = ref true in
      for i = 0 to Ast.Index.size idx - 1 do
        match (Ast.Index.sort idx i, Ast.Index.value idx i) with
        | Some (Ast.Tree.Var id), Some v -> (
            match Hashtbl.find_opt tbl id with
            | Some v2 -> if not (String.equal v v2) then ok := false
            | None -> Hashtbl.add tbl id v)
        | _ -> ()
      done;
      !ok)

let prop_python_strip_shape =
  QCheck2.Test.make ~name:"strip preserves skeleton" ~count:300 gen_program
    (fun p ->
      let stripped, _ = Rename.strip p in
      let rec skel t =
        Ast.Tree.label t :: List.concat_map skel (Ast.Tree.children t)
      in
      skel (Lower.program p) = skel (Lower.program stripped))

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "properties",
      qcheck
        [ prop_python_roundtrip; prop_python_lower_total; prop_python_strip_shape ]
    );
    ( "lexer",
      [
        Alcotest.test_case "indent/dedent" `Quick test_layout_basic;
        Alcotest.test_case "nested blocks" `Quick test_layout_nested;
        Alcotest.test_case "blank lines and comments" `Quick test_layout_blank_and_comments;
        Alcotest.test_case "implicit joining in brackets" `Quick test_layout_brackets;
        Alcotest.test_case "inconsistent dedent" `Quick test_layout_bad_dedent;
      ] );
    ( "parser",
      [
        Alcotest.test_case "paper fig 7 verbatim" `Quick test_parse_fig7;
        Alcotest.test_case "elif chain" `Quick test_parse_elif;
        Alcotest.test_case "comparison operators" `Quick test_parse_compare_chain;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "tuple for-target" `Quick test_parse_for_tuple_target;
        Alcotest.test_case "try/except/finally" `Quick test_parse_try_except;
        Alcotest.test_case "syntax error" `Quick test_parse_error;
      ] );
    ("printer", [ Alcotest.test_case "round-trips" `Quick test_roundtrip ]);
    ( "lower",
      [
        Alcotest.test_case "scope resolution" `Quick test_lower_scoping;
        Alcotest.test_case "use-before-assign is local" `Quick test_lower_assign_before_use;
        Alcotest.test_case "function name label" `Quick test_lower_function_label;
        Alcotest.test_case "elif nesting" `Quick test_lower_elif_nesting;
      ] );
    ( "strip",
      [
        Alcotest.test_case "fig 7 strip" `Quick test_strip_fig7;
        Alcotest.test_case "round-trip" `Quick test_strip_roundtrip;
        Alcotest.test_case "skeleton preserved" `Quick test_strip_shape;
      ] );
  ]

let () = Alcotest.run "minipython" suite
