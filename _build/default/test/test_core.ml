(* Integration tests for the core PIGEON library: metrics, graph
   construction, and small end-to-end runs of each task (the full
   pipeline: generate -> render -> parse -> lower -> extract -> train
   -> predict). Corpora are small so the suite stays fast; the bench
   harness runs the full-size experiments. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------- metrics ---------- *)

let test_normalize () =
  check_string "camel vs snake" (Pigeon.Metrics.normalize "totalCount")
    (Pigeon.Metrics.normalize "total_count");
  check_bool "exact match" true
    (Pigeon.Metrics.exact_match ~gold:"totalCount" ~pred:"total_count");
  check_bool "mismatch" false (Pigeon.Metrics.exact_match ~gold:"done" ~pred:"count")

let test_subtokens () =
  Alcotest.(check (list string)) "camel" [ "total"; "http"; "count" ]
    (Pigeon.Metrics.subtokens "totalHttpCount");
  Alcotest.(check (list string)) "snake" [ "get"; "value" ]
    (Pigeon.Metrics.subtokens "get_value");
  Alcotest.(check (list string)) "single" [ "done" ] (Pigeon.Metrics.subtokens "done")

let test_f1 () =
  let c = Pigeon.Metrics.f1_counts ~gold:"getTotalCount" ~pred:"getCount" in
  check_int "tp" 2 c.Pigeon.Metrics.tp;
  check_int "pred" 2 c.Pigeon.Metrics.n_pred;
  check_int "gold" 3 c.Pigeon.Metrics.n_gold;
  Alcotest.(check (float 1e-9)) "precision" 1.0 (Pigeon.Metrics.precision_of_counts c);
  Alcotest.(check (float 1e-6)) "f1" 0.8 (Pigeon.Metrics.f1_of_counts c)

let test_summary () =
  let s =
    Pigeon.Metrics.summarize
      [ ("done", "done"); ("count", "total_count"); ("msg", "msg") ]
  in
  check_int "n" 3 s.Pigeon.Metrics.n;
  Alcotest.(check (float 1e-6)) "accuracy" (2. /. 3.) s.Pigeon.Metrics.accuracy

(* metric properties *)

let gen_name =
  QCheck2.Gen.(
    string_size ~gen:(oneof [ char_range 'a' 'z'; char_range 'A' 'Z'; return '_' ])
      (int_range 0 12))

let prop_normalize_idempotent =
  QCheck2.Test.make ~name:"metrics: normalize idempotent" ~count:500 gen_name
    (fun s ->
      Pigeon.Metrics.normalize (Pigeon.Metrics.normalize s)
      = Pigeon.Metrics.normalize s)

let prop_exact_match_reflexive =
  QCheck2.Test.make ~name:"metrics: exact match reflexive and symmetric"
    ~count:500
    QCheck2.Gen.(pair gen_name gen_name)
    (fun (a, b) ->
      Pigeon.Metrics.exact_match ~gold:a ~pred:a
      && Pigeon.Metrics.exact_match ~gold:a ~pred:b
         = Pigeon.Metrics.exact_match ~gold:b ~pred:a)

let prop_f1_bounds =
  QCheck2.Test.make ~name:"metrics: f1 in [0,1], 1 iff same subtokens"
    ~count:500
    QCheck2.Gen.(pair gen_name gen_name)
    (fun (a, b) ->
      let c = Pigeon.Metrics.f1_counts ~gold:a ~pred:b in
      let f1 = Pigeon.Metrics.f1_of_counts c in
      f1 >= 0. && f1 <= 1.
      && ((not (f1 = 1.))
         || List.sort compare (Pigeon.Metrics.subtokens a)
            = List.sort compare (Pigeon.Metrics.subtokens b)))

let prop_subtokens_rejoin =
  QCheck2.Test.make ~name:"metrics: subtokens normalize-consistent" ~count:500
    gen_name (fun s ->
      String.concat "" (Pigeon.Metrics.subtokens s) = Pigeon.Metrics.normalize s)

(* ---------- graphs ---------- *)

let fig3a_js =
  "var d = false;\n\
   while (!d) {\n\
  \  doSomething();\n\
  \  if (someCondition()) {\n\
  \    d = true;\n\
  \  }\n\
   }\n"

let fig3b_js =
  "someCondition();\ndoSomething();\nvar d = false;\nd = true;\n"

let repr_full = Pigeon.Graphs.default_repr ()

let test_var_graph_structure () =
  let tree = Pigeon.Lang.javascript.Pigeon.Lang.parse_tree fig3a_js in
  let g =
    Pigeon.Graphs.build repr_full
      ~def_labels:Pigeon.Lang.javascript.Pigeon.Lang.def_labels
      ~policy:Pigeon.Graphs.Locals tree
  in
  check_int "one unknown (d)" 1 (Crf.Graph.num_unknown g);
  let gold = Crf.Graph.gold_assignment g in
  check_string "gold is d" "d" gold.(List.hd (Crf.Graph.unknown_ids g));
  check_bool "has unary factors" true
    (List.exists
       (function Crf.Graph.Unary _ -> true | _ -> false)
       g.Crf.Graph.factors);
  check_bool "has pairwise factors" true
    (List.exists
       (function Crf.Graph.Pairwise _ -> true | _ -> false)
       g.Crf.Graph.factors)

let rel_set repr src =
  let tree = Pigeon.Lang.javascript.Pigeon.Lang.parse_tree src in
  let g =
    Pigeon.Graphs.build repr
      ~def_labels:Pigeon.Lang.javascript.Pigeon.Lang.def_labels
      ~policy:Pigeon.Graphs.Locals tree
  in
  List.filter_map
    (function
      | Crf.Graph.Unary { rel; _ } -> Some ("U" ^ rel)
      | Crf.Graph.Pairwise { rel; _ } -> Some ("P" ^ rel))
    g.Crf.Graph.factors
  |> List.sort_uniq String.compare

let test_fig3_distinguishable () =
  (* The paper's Fig. 3: indistinguishable under statement-local
     relations, distinguishable under AST paths. *)
  let full_a = rel_set repr_full fig3a_js in
  let full_b = rel_set repr_full fig3b_js in
  check_bool "full paths distinguish" true (full_a <> full_b);
  let u = Baselines.Unuglify.repr in
  let loc_a = rel_set u fig3a_js and loc_b = rel_set u fig3b_js in
  (* Under the statement-local view the d-related relations coincide;
     the full-path view separates them strictly more. *)
  let diff l1 l2 = List.filter (fun x -> not (List.mem x l2)) l1 in
  check_bool "statement-local view is coarser" true
    (List.length (diff loc_a loc_b) < List.length (diff full_a full_b))

let test_no_unary_when_disabled () =
  let repr = { repr_full with Pigeon.Graphs.use_unary = false } in
  let rels = rel_set repr fig3a_js in
  check_bool "no unary rels" true
    (List.for_all (fun r -> r.[0] <> 'U') rels)

let test_downsample_reduces_factors () =
  let tree = Pigeon.Lang.javascript.Pigeon.Lang.parse_tree fig3a_js in
  let count p =
    let repr = { repr_full with Pigeon.Graphs.downsample_p = p } in
    let g =
      Pigeon.Graphs.build repr
        ~def_labels:Pigeon.Lang.javascript.Pigeon.Lang.def_labels
        ~policy:Pigeon.Graphs.Locals tree
    in
    List.length g.Crf.Graph.factors
  in
  check_bool "fewer at p=0.3" true (count 0.3 < count 1.0);
  check_int "none at p=0" 0 (count 0.)

let test_method_graph () =
  let src = "function countItems(xs) { var n = 0; return n; }\ncountItems([1]);\n" in
  let tree = Pigeon.Lang.javascript.Pigeon.Lang.parse_tree src in
  let g =
    Pigeon.Graphs.build repr_full
      ~def_labels:Pigeon.Lang.javascript.Pigeon.Lang.def_labels
      ~policy:(Pigeon.Graphs.Methods { internal_only = false })
      tree
  in
  check_int "one unknown method" 1 (Crf.Graph.num_unknown g);
  let gold = Crf.Graph.gold_assignment g in
  check_string "name" "countItems" gold.(List.hd (Crf.Graph.unknown_ids g))

let test_type_graph () =
  let src =
    "class T { int f(java.util.List<String> xs) { String s = xs.get(0); return s.length() + 1; } }"
  in
  let parse = Option.get Pigeon.Lang.java.Pigeon.Lang.parse_typed_tree in
  let g =
    Pigeon.Graphs.full_type_graph
      (Pigeon.Graphs.default_repr
         ~config:(Astpath.Config.make ~max_length:4 ~max_width:1 ())
         ())
      (parse src)
  in
  check_bool "several typed expressions" true (Crf.Graph.num_unknown g >= 2);
  let gold = Crf.Graph.gold_assignment g in
  check_bool "java.lang.String among golds" true
    (List.exists
       (fun n -> String.equal gold.(n) "java.lang.String")
       (Crf.Graph.unknown_ids g))

(* ---------- end-to-end tasks on a small corpus ---------- *)

let corpus lang ~n ~seed =
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed } in
  Corpus.Gen.generate_sources config lang

let split_of sources =
  let entries =
    List.map (fun (path, source) -> { Corpus.Dataset.path; source }) sources
  in
  let deduped = Corpus.Dataset.dedup entries in
  let s = Corpus.Dataset.split_corpus ~seed:11 deduped in
  let pairs xs =
    List.map (fun e -> (e.Corpus.Dataset.path, e.Corpus.Dataset.source)) xs
  in
  (pairs s.Corpus.Dataset.train, pairs s.Corpus.Dataset.test)

let quick_crf = { Crf.Train.default_config with Crf.Train.iterations = 4 }

let test_var_names_end_to_end () =
  let lang = Pigeon.Lang.javascript in
  let train, test = split_of (corpus Corpus.Render.Js ~n:80 ~seed:21) in
  let r =
    Pigeon.Task.run_crf ~crf_config:quick_crf ~lang ~policy:Pigeon.Graphs.Locals
      ~train ~test ()
  in
  let acc = r.Pigeon.Task.summary.Pigeon.Metrics.accuracy in
  check_bool (Printf.sprintf "JS var names acc %.2f > 0.35" acc) true (acc > 0.35);
  check_bool "evaluated something" true (r.Pigeon.Task.summary.Pigeon.Metrics.n > 50)

let test_var_names_beat_nopath () =
  let lang = Pigeon.Lang.javascript in
  let train, test = split_of (corpus Corpus.Render.Js ~n:80 ~seed:22) in
  let run repr =
    (Pigeon.Task.run_crf ~repr ~crf_config:quick_crf ~lang
       ~policy:Pigeon.Graphs.Locals ~train ~test ())
      .Pigeon.Task.summary.Pigeon.Metrics.accuracy
  in
  let full = run (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ()) in
  let nopath =
    run
      {
        (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ()) with
        Pigeon.Graphs.abstraction = Astpath.Abstraction.No_paths;
      }
  in
  check_bool
    (Printf.sprintf "full %.2f > no-path %.2f" full nopath)
    true (full > nopath)

let test_method_names_end_to_end () =
  let lang = Pigeon.Lang.python in
  let train, test = split_of (corpus Corpus.Render.Python ~n:80 ~seed:23) in
  let r =
    Pigeon.Task.run_crf ~crf_config:quick_crf ~lang
      ~policy:(Pigeon.Graphs.Methods { internal_only = false })
      ~train ~test ()
  in
  let acc = r.Pigeon.Task.summary.Pigeon.Metrics.accuracy in
  check_bool (Printf.sprintf "method names acc %.2f > 0.2" acc) true (acc > 0.2)

let test_full_types_end_to_end () =
  let train, test = split_of (corpus Corpus.Render.Java ~n:60 ~seed:24) in
  let r = Pigeon.Task.run_full_types ~crf_config:quick_crf ~train ~test () in
  let acc = r.Pigeon.Task.summary.Pigeon.Metrics.accuracy in
  let baseline = Pigeon.Task.string_of_type_baseline test in
  check_bool
    (Printf.sprintf "types acc %.2f > String baseline %.2f" acc
       baseline.Pigeon.Metrics.accuracy)
    true
    (acc > baseline.Pigeon.Metrics.accuracy);
  check_bool "baseline nontrivial" true (baseline.Pigeon.Metrics.accuracy > 0.02)

let test_w2v_task () =
  let lang = Pigeon.Lang.javascript in
  let train, test = split_of (corpus Corpus.Render.Js ~n:80 ~seed:25) in
  let sgns_config = { Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 20 } in
  let run mode =
    (Pigeon.W2v_task.run ~sgns_config ~lang ~mode ~train ~test ())
      .Pigeon.W2v_task.summary.Pigeon.Metrics.accuracy
  in
  let paths =
    run (Pigeon.W2v_task.Paths (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ()))
  in
  let tokens = run (Pigeon.W2v_task.Linear_tokens 2) in
  let neighbors = run (Pigeon.W2v_task.Path_neighbors lang.Pigeon.Lang.tuned) in
  check_bool (Printf.sprintf "paths %.2f > 0.3" paths) true (paths > 0.3);
  check_bool
    (Printf.sprintf "paths %.2f > linear tokens %.2f" paths tokens)
    true (paths > tokens);
  check_bool
    (Printf.sprintf "paths %.2f > path-neighbors %.2f" paths neighbors)
    true (paths > neighbors)

let test_similarity_top_k () =
  let lang = Pigeon.Lang.javascript in
  let train, _ = split_of (corpus Corpus.Render.Js ~n:80 ~seed:26) in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals train
  in
  let model = Crf.Train.train ~config:quick_crf graphs in
  (* Fig. 1a with the flag stripped to "d". *)
  let stripped = "var d = false;\nwhile (!d) { if (someCondition()) { d = true; } }\n" in
  let top =
    Pigeon.Similarity.crf_top_k ~model ~repr ~lang ~source:stripped ~var:"d" ~k:8
  in
  check_bool "suggestions returned" true (top <> []);
  let names = List.map fst top in
  check_bool
    ("a flag-like name among top-k: " ^ String.concat "," names)
    true
    (List.exists
       (fun n -> List.mem n (Corpus.Role.all_names Corpus.Role.Flag))
       names)

let test_grid () =
  let points =
    Pigeon.Grid.sweep ~lengths:[ 2; 4 ] ~widths:[ 1; 2 ]
      ~eval:(fun c -> float_of_int (c.Astpath.Config.max_length * c.Astpath.Config.max_width))
  in
  check_int "four points" 4 (List.length points);
  let b = Pigeon.Grid.best points in
  check_int "best length" 4 b.Pigeon.Grid.length;
  check_int "best width" 2 b.Pigeon.Grid.width

(* ---------- word2vec task unit level ---------- *)

let test_w2v_pairs_of_source () =
  let lang = Pigeon.Lang.javascript in
  let src = "var done = false;\nwhile (!done) { if (someCondition()) { done = true; } }\n" in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let pairs = Pigeon.W2v_task.pairs_of_source ~lang ~mode:(Pigeon.W2v_task.Paths repr) src in
  (* exactly one local element: done *)
  check_int "one element" 1 (List.length pairs);
  let name, ctxs = List.hd pairs in
  check_string "element name" "done" name;
  check_bool "has contexts" true (ctxs <> []);
  (* its own occurrences are masked, other values are visible *)
  check_bool "self masked" true
    (List.exists (fun c ->
         String.length c >= 6
         && String.sub c (String.length c - 6) 6 = "<SELF>") ctxs);
  check_bool "true visible" true
    (List.exists (fun c ->
         String.length c >= 4 && String.sub c (String.length c - 4) 4 = "true") ctxs)

let test_w2v_neighbor_mode_hides_path () =
  let lang = Pigeon.Lang.javascript in
  let src = "var count = 0; count++; use(count);" in
  let paths_mode =
    Pigeon.W2v_task.pairs_of_source ~lang
      ~mode:(Pigeon.W2v_task.Paths (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ()))
      src
  in
  let nbr_mode =
    Pigeon.W2v_task.pairs_of_source ~lang
      ~mode:(Pigeon.W2v_task.Path_neighbors lang.Pigeon.Lang.tuned) src
  in
  let ctxs mode = snd (List.hd mode) in
  (* neighbor contexts are strictly shorter: the path prefix is gone *)
  let avg xs =
    float_of_int (List.fold_left (fun a c -> a + String.length c) 0 xs)
    /. float_of_int (List.length xs)
  in
  check_bool "paths contexts are longer" true (avg (ctxs paths_mode) > avg (ctxs nbr_mode))

let test_w2v_token_mode () =
  let lang = Pigeon.Lang.javascript in
  let src = "var count = 0; use(count);" in
  let pairs =
    Pigeon.W2v_task.pairs_of_source ~lang ~mode:(Pigeon.W2v_task.Linear_tokens 2) src
  in
  let _, ctxs = List.find (fun (n, _) -> String.equal n "count") pairs in
  check_bool "sees '='" true (List.mem "=" ctxs);
  check_bool "sees 'var'" true (List.mem "var" ctxs);
  check_bool "does not see itself unmasked" true (not (List.mem "count" ctxs))

(* ---------- baselines ---------- *)

let test_rule_based () =
  let src =
    "class A {\n\
    \  int total;\n\
    \  void setTotal(int x) { this.total = x; }\n\
    \  void scan(List<Integer> values) {\n\
    \    for (int q = 0; q < 10; q++) { use(q); }\n\
    \    try { risky(); } catch (Exception ex) { log(ex); }\n\
    \    HttpClient h = make();\n\
    \  }\n\
     }"
  in
  let pairs = Baselines.Rule_based.predict_program (Minijava.Parser.parse src) in
  let pred_of name = List.assoc name pairs in
  check_string "setter param" "total" (pred_of "x");
  check_string "loop var" "i" (pred_of "q");
  check_string "catch var" "e" (pred_of "ex");
  check_string "type-based" "httpClient" (pred_of "h")

let test_ngram_baseline_runs () =
  let lang = Pigeon.Lang.java in
  let train, test = split_of (corpus Corpus.Render.Java ~n:40 ~seed:27) in
  let s = Baselines.Ngram.run ~crf_config:quick_crf ~lang ~train ~test () in
  check_bool "produces predictions" true (s.Pigeon.Metrics.n > 0)

let test_conv_attention () =
  let lang = Pigeon.Lang.java in
  let train, test = split_of (corpus Corpus.Render.Java ~n:60 ~seed:28) in
  let s = Baselines.Conv_attention.run ~lang ~train ~test () in
  check_bool "predicts methods" true (s.Pigeon.Metrics.n > 0);
  (* body tokens carry real signal: F1 should beat random *)
  check_bool
    (Printf.sprintf "F1 %.2f > 0.2" s.Pigeon.Metrics.f1)
    true
    (s.Pigeon.Metrics.f1 > 0.2)

let test_methods_of_source () =
  let lang = Pigeon.Lang.java in
  let src = "class A { int getCount() { return count; } void run() { step(); } }" in
  let ms = Baselines.Conv_attention.methods_of_source ~lang src in
  Alcotest.(check (list string)) "names" [ "getCount"; "run" ] (List.map fst ms)

let suite =
  [
    ( "metrics",
      [
        Alcotest.test_case "normalize / exact match" `Quick test_normalize;
        Alcotest.test_case "subtokens" `Quick test_subtokens;
        Alcotest.test_case "f1 counts" `Quick test_f1;
        Alcotest.test_case "summary" `Quick test_summary;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [
            prop_normalize_idempotent;
            prop_exact_match_reflexive;
            prop_f1_bounds;
            prop_subtokens_rejoin;
          ] );
    ( "graphs",
      [
        Alcotest.test_case "var graph structure" `Quick test_var_graph_structure;
        Alcotest.test_case "fig 3 separability" `Quick test_fig3_distinguishable;
        Alcotest.test_case "unary off" `Quick test_no_unary_when_disabled;
        Alcotest.test_case "downsampling" `Quick test_downsample_reduces_factors;
        Alcotest.test_case "method graph" `Quick test_method_graph;
        Alcotest.test_case "type graph" `Quick test_type_graph;
      ] );
    ( "tasks",
      [
        Alcotest.test_case "JS variable names" `Slow test_var_names_end_to_end;
        Alcotest.test_case "paths beat no-path" `Slow test_var_names_beat_nopath;
        Alcotest.test_case "Python method names" `Slow test_method_names_end_to_end;
        Alcotest.test_case "Java full types" `Slow test_full_types_end_to_end;
        Alcotest.test_case "word2vec variable names" `Slow test_w2v_task;
        Alcotest.test_case "top-k for fig 1a" `Slow test_similarity_top_k;
        Alcotest.test_case "grid search" `Quick test_grid;
        Alcotest.test_case "w2v pairs of source" `Quick test_w2v_pairs_of_source;
        Alcotest.test_case "w2v neighbor mode" `Quick test_w2v_neighbor_mode_hides_path;
        Alcotest.test_case "w2v token mode" `Quick test_w2v_token_mode;
      ] );
    ( "baselines",
      [
        Alcotest.test_case "rule-based Java" `Quick test_rule_based;
        Alcotest.test_case "CRF + n-grams" `Slow test_ngram_baseline_runs;
        Alcotest.test_case "conv-attention substitute" `Slow test_conv_attention;
        Alcotest.test_case "methods_of_source" `Quick test_methods_of_source;
      ] );
  ]

let () = Alcotest.run "core" suite
