test/test_serialize.ml: Alcotest Crf Filename Fun List Random String Sys Word2vec
