test/test_minicsharp.mli:
