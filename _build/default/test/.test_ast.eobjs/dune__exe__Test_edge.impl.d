test/test_edge.ml: Alcotest Array Ast Astpath Buffer Crf Lexkit List Minijs Minipython Pigeon Printf String
