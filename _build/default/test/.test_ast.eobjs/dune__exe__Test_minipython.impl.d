test/test_minipython.ml: Alcotest Ast Hashtbl Lexer Lexkit List Lower Minipython Parser Printer Printf QCheck2 QCheck_alcotest Rename String Syntax Token
