test/test_ml.ml: Alcotest Array Crf Float List Printf QCheck2 QCheck_alcotest Random String Word2vec
