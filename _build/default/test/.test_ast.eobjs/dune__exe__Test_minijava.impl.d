test/test_minijava.ml: Alcotest Ast Astpath Hashtbl Lexer Lexkit List Lower Minijava Option Parser Printer Printf QCheck2 QCheck_alcotest Rename String Syntax Token Types Typing
