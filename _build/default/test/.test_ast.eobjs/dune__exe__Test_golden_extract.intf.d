test/test_golden_extract.mli:
