test/test_minipython.mli:
