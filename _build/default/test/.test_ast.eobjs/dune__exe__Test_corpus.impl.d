test/test_corpus.ml: Alcotest Corpus Hashtbl Lexkit List Minicsharp Minijava Minijs Minipython Random
