test/test_golden_extract.ml: Alcotest Array Ast Astpath Config Context Corpus Extract Fun Lexkit List Path Pigeon Printf QCheck2 QCheck_alcotest String
