test/test_path.ml: Abstraction Alcotest Array Ast Astpath Config Context Downsample Extract Fun List Option Path QCheck2 QCheck_alcotest Random String
