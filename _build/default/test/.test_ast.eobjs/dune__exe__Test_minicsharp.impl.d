test/test_minicsharp.ml: Alcotest Ast Lexer Lexkit List Lower Minicsharp Minijava Parser Printer Printf QCheck2 QCheck_alcotest Rename
