test/test_core.ml: Alcotest Array Astpath Baselines Corpus Crf List Minijava Option Pigeon Printf QCheck2 QCheck_alcotest String Word2vec
