test/test_ast.ml: Alcotest Array Ast Dot Fun Index List QCheck2 QCheck_alcotest String Tree
