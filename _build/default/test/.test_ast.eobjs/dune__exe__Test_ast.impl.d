test/test_ast.ml: Alcotest Array Ast Dot Index List QCheck2 QCheck_alcotest String Tree
