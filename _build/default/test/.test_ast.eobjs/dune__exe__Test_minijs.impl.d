test/test_minijs.ml: Alcotest Ast Astpath Hashtbl Lexer Lexkit List Lower Minijs Parser Printer Printf QCheck2 QCheck_alcotest Rename String Syntax Token
