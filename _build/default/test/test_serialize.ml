(* Tests for CRF model serialization: byte-level escaping, structural
   round-trips, and — the property that matters — identical predictions
   from a saved-and-reloaded model. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_node id gold kind = { Crf.Graph.id; gold; kind }

(* A richer synthetic world, with awkward strings in labels and rels:
   spaces, percent signs, unicode arrows (as in real path strings). *)
let graphs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      if Random.State.bool rng then
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0 (pick [ "done"; "stop" ]) `Unknown;
              mk_node 1 "hello, world %20" `Known;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1
                ~rel:"SymbolRef\xe2\x86\x91While\xe2\x86\x93True";
              Crf.Graph.unary ~n:0 ~rel:"loop guard";
            ]
      else
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0 (pick [ "count"; "total" ]) `Unknown;
              mk_node 1 "0" `Known;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"Assign=\xe2\x86\x93Number";
              Crf.Graph.unary ~n:0 ~rel:"incr\ttab";
            ])

let train () = Crf.Train.train (graphs ~n:200 ~seed:5)

let roundtrip model =
  let path = Filename.temp_file "pigeon" ".crf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Crf.Serialize.save model path;
      Crf.Serialize.load path)

let test_roundtrip_predictions () =
  let model = train () in
  let model' = roundtrip model in
  let test_graphs = graphs ~n:80 ~seed:6 in
  List.iter
    (fun g ->
      check_bool "identical predictions" true
        (Crf.Train.predict model g = Crf.Train.predict model' g))
    test_graphs

let test_roundtrip_top_k () =
  let model = train () in
  let model' = roundtrip model in
  let g = List.hd (graphs ~n:1 ~seed:7) in
  let k1 = Crf.Train.top_k model g ~node:0 ~k:5 in
  let k2 = Crf.Train.top_k model' g ~node:0 ~k:5 in
  check_bool "same ranking" true (List.map fst k1 = List.map fst k2)

let test_roundtrip_config () =
  let config =
    {
      Crf.Train.default_config with
      Crf.Train.iterations = 3;
      averaged = false;
      trainer = Crf.Fast.Structured;
      init = Crf.Fast.No_init;
    }
  in
  let model = Crf.Train.train ~config (graphs ~n:50 ~seed:8) in
  let model' = roundtrip model in
  check_int "iterations" 3 model'.Crf.Train.config.Crf.Train.iterations;
  check_bool "averaged" false model'.Crf.Train.config.Crf.Train.averaged;
  check_bool "trainer" true
    (model'.Crf.Train.config.Crf.Train.trainer = Crf.Fast.Structured);
  check_bool "init" true (model'.Crf.Train.config.Crf.Train.init = Crf.Fast.No_init)

let test_weights_survive () =
  let model = train () in
  let model' = roundtrip model in
  check_int "same number of features"
    (Crf.Model.size model.Crf.Train.weights)
    (Crf.Model.size model'.Crf.Train.weights);
  (* spot-check every feature's weight *)
  Crf.Model.iter model.Crf.Train.weights (fun f w ->
      Alcotest.(check (float 1e-12))
        "weight preserved" w
        (Crf.Model.get model'.Crf.Train.weights f))

let test_double_roundtrip_stable () =
  let model = train () in
  let once = roundtrip model in
  let twice = roundtrip once in
  let g = List.hd (graphs ~n:1 ~seed:9) in
  check_bool "fixed point" true
    (Crf.Train.predict once g = Crf.Train.predict twice g)

let test_malformed_input () =
  let path = Filename.temp_file "pigeon" ".crf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a model\n";
      close_out oc;
      match Crf.Serialize.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

let test_unknown_record () =
  let path = Filename.temp_file "pigeon" ".crf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "pigeon-crf-model 1\nfrobnicate 42\n";
      close_out oc;
      match Crf.Serialize.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure msg ->
          check_bool "line number in error" true
            (String.length msg > 0 && msg.[0] = 'l'))

(* ---------- word2vec serialization ---------- *)

let sgns_pairs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      if Random.State.bool rng then
        (pick [ "done"; "finished" ], pick [ "loop ctx"; "assign%true" ])
      else (pick [ "count"; "total" ], pick [ "init zero"; "incr" ]))

let w2v_roundtrip model =
  let path = Filename.temp_file "pigeon" ".w2v" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Word2vec.Serialize.save model path;
      Word2vec.Serialize.load path)

let test_w2v_roundtrip_predictions () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 10 }
      (sgns_pairs ~n:800 ~seed:3)
  in
  let model' = w2v_roundtrip model in
  List.iter
    (fun ctxs ->
      check_bool "same ranking" true
        (List.map fst (Word2vec.Sgns.predict model ctxs)
        = List.map fst (Word2vec.Sgns.predict model' ctxs)))
    [ [ "loop ctx" ]; [ "incr"; "init zero" ]; [ "assign%true"; "loop ctx" ] ]

let test_w2v_roundtrip_similarity () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 10 }
      (sgns_pairs ~n:800 ~seed:4)
  in
  let model' = w2v_roundtrip model in
  check_bool "same neighbors" true
    (List.map fst (Word2vec.Sgns.most_similar model "done" ~k:3)
    = List.map fst (Word2vec.Sgns.most_similar model' "done" ~k:3))

let test_w2v_roundtrip_config () =
  let config =
    { Word2vec.Sgns.default_config with Word2vec.Sgns.dim = 16; epochs = 2 }
  in
  let model = Word2vec.Sgns.train ~config (sgns_pairs ~n:100 ~seed:5) in
  let model' = w2v_roundtrip model in
  check_int "dim" 16 model'.Word2vec.Sgns.config.Word2vec.Sgns.dim;
  check_int "epochs" 2 model'.Word2vec.Sgns.config.Word2vec.Sgns.epochs

let test_w2v_malformed () =
  let path = Filename.temp_file "pigeon" ".w2v" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "garbage\n";
      close_out oc;
      match Word2vec.Serialize.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

let suite =
  [
    ( "w2v-serialize",
      [
        Alcotest.test_case "prediction round-trip" `Quick test_w2v_roundtrip_predictions;
        Alcotest.test_case "similarity round-trip" `Quick test_w2v_roundtrip_similarity;
        Alcotest.test_case "config round-trip" `Quick test_w2v_roundtrip_config;
        Alcotest.test_case "malformed input" `Quick test_w2v_malformed;
      ] );
    ( "serialize",
      [
        Alcotest.test_case "prediction round-trip" `Quick test_roundtrip_predictions;
        Alcotest.test_case "top-k round-trip" `Quick test_roundtrip_top_k;
        Alcotest.test_case "config round-trip" `Quick test_roundtrip_config;
        Alcotest.test_case "weights survive" `Quick test_weights_survive;
        Alcotest.test_case "double round-trip stable" `Quick test_double_roundtrip_stable;
        Alcotest.test_case "malformed input" `Quick test_malformed_input;
        Alcotest.test_case "unknown record" `Quick test_unknown_record;
      ] );
  ]

let () = Alcotest.run "serialize" suite
