(* Full-type prediction demo (paper Section 5.3.3).

   Trains the full-type CRF on typed Java trees and predicts
   fully-qualified types of expressions in an unseen file, comparing
   against the naive always-String baseline.

   Run with:  dune exec examples/type_prediction.exe *)

let () =
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = 250; seed = 6 } in
  let sources = Corpus.Gen.generate_sources config Corpus.Render.Java in
  let n = List.length sources in
  let split = 4 * n / 5 in
  let train = List.filteri (fun i _ -> i < split) sources in
  let test = List.filteri (fun i _ -> i >= split) sources in
  Format.printf "training on %d files, evaluating on %d...@." (List.length train)
    (List.length test);
  let result = Pigeon.Task.run_full_types ~train ~test () in
  let baseline = Pigeon.Task.string_of_type_baseline test in
  Format.printf "AST paths + CRFs: %a@." Pigeon.Metrics.pp_summary
    result.Pigeon.Task.summary;
  Format.printf "always java.lang.String: %a@.@." Pigeon.Metrics.pp_summary baseline;

  (* Show concrete predictions on one unseen file. *)
  let demo_src =
    "import java.util.List;\n\
     class Demo {\n\
    \  public int checkSize(List<Integer> items, int limit) {\n\
    \    int size = items.size();\n\
    \    String msg = \"size: \" + size;\n\
    \    System.out.println(msg);\n\
    \    if (size > limit) {\n\
    \      throw new IllegalArgumentException(msg);\n\
    \    }\n\
    \    return size + 1;\n\
    \  }\n\
     }\n"
  in
  Format.printf "--- file ---@.%s--- predicted expression types ---@." demo_src;
  let parse = Option.get Pigeon.Lang.java.Pigeon.Lang.parse_typed_tree in
  let repr =
    Pigeon.Graphs.default_repr
      ~config:(Astpath.Config.make ~max_length:4 ~max_width:1 ())
      ()
  in
  let g = Pigeon.Graphs.full_type_graph repr (parse demo_src) in
  let pred = Crf.Train.predict result.Pigeon.Task.model g in
  let gold = Crf.Graph.gold_assignment g in
  List.iter
    (fun node ->
      Format.printf "  inferred %-28s predicted %-28s %s@." gold.(node)
        pred.(node)
        (if Pigeon.Metrics.exact_match ~gold:gold.(node) ~pred:pred.(node) then
           "ok"
         else "MISS"))
    (Crf.Graph.unknown_ids g)
