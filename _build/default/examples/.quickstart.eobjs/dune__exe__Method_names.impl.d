examples/method_names.ml: Array Corpus Crf Format List Pigeon
