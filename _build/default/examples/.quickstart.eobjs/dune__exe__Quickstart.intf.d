examples/quickstart.mli:
