examples/method_names.mli:
