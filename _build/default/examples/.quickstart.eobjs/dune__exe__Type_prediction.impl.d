examples/type_prediction.ml: Array Astpath Corpus Crf Format List Option Pigeon
