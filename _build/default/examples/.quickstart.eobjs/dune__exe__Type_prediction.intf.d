examples/type_prediction.mli:
