examples/deobfuscate.mli:
