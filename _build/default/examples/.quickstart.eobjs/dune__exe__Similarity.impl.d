examples/similarity.ml: Corpus Crf Format List Pigeon String Word2vec
