examples/deobfuscate.ml: Array Corpus Crf Format List Minijava Minijs Minipython Pigeon
