examples/similarity.mli:
