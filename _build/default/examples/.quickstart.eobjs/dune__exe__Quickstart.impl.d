examples/quickstart.ml: Ast Astpath Format Int List Minijs String
