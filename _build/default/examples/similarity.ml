(* Semantic-similarity probes (paper Section 5.4 and Table 4).

   (a) Top-k CRF candidates for the stripped flag variable of Fig. 1a.
   (b) Nearest-neighbor name clusters in the word2vec embedding space.

   Run with:  dune exec examples/similarity.exe *)

let () =
  let lang = Pigeon.Lang.javascript in
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = 400; seed = 9 } in
  let sources = Corpus.Gen.generate_sources config Corpus.Render.Js in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in

  (* (a) CRF top-k for the paper's d variable. *)
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
      sources
  in
  Format.printf "training CRF on %d graphs...@." (List.length graphs);
  let model = Crf.Train.train graphs in
  let fig1a_stripped =
    "var d = false;\nwhile (!d) { doSomething(); if (someCondition()) { d = true; } }\n"
  in
  Format.printf "@.Table 4a — top candidates for the variable [d] in:@.%s@."
    fig1a_stripped;
  List.iteri
    (fun i (name, score) ->
      Format.printf "  %d. %-12s (%.2f)@." (i + 1) name score)
    (Pigeon.Similarity.crf_top_k ~model ~repr ~lang ~source:fig1a_stripped
       ~var:"d" ~k:8);

  (* (b) word2vec name clusters. *)
  let w2v =
    Pigeon.W2v_task.run
      ~sgns_config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 20 }
      ~lang
      ~mode:(Pigeon.W2v_task.Paths repr)
      ~train:sources ~test:[] ()
  in
  Format.printf "@.Table 4b — nearest names in embedding space:@.";
  List.iter
    (fun (name, neighbors) ->
      Format.printf "  %-10s ~ %s@." name (String.concat " ~ " neighbors))
    (Pigeon.Similarity.w2v_neighbors ~model:w2v.Pigeon.W2v_task.model
       ~names:[ "done"; "items"; "item"; "count"; "result"; "request"; "i" ]
       ~k:3)
