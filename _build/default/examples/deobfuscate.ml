(* Deobfuscation demo: the paper's Figs. 7-9.

   Trains a variable-name CRF per language on a synthetic corpus, then
   strips the names from the paper's example programs and predicts them
   back, printing stripped vs. predicted side by side.

   Run with:  dune exec examples/deobfuscate.exe *)

let train_model lang render_lang ~n =
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed = 42 } in
  let sources = Corpus.Gen.generate_sources config render_lang in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
      sources
  in
  (Crf.Train.train graphs, repr)

(* Predict names for every local of a stripped source and return the
   stripped-name -> predicted-name substitution. *)
let predictions lang repr model stripped_src =
  let tree = lang.Pigeon.Lang.parse_tree stripped_src in
  let g =
    Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
      ~policy:Pigeon.Graphs.Locals tree
  in
  let pred = Crf.Train.predict model g in
  let gold = Crf.Graph.gold_assignment g in
  List.map (fun n -> (gold.(n), pred.(n))) (Crf.Graph.unknown_ids g)

let banner title = Format.printf "@.=== %s ===@." title

let show ~stripped ~predicted =
  Format.printf "--- stripped ---@.%s--- predicted ---@.%s" stripped predicted

(* ---------- JavaScript: Figs. 1a / 8 ---------- *)

let js_demo () =
  banner "JavaScript (paper Figs. 1a and 8)";
  let lang = Pigeon.Lang.javascript in
  let model, repr = train_model lang Corpus.Render.Js ~n:300 in
  let demo src =
    let stripped_p, _ = Minijs.Rename.strip (Minijs.Parser.parse src) in
    let stripped = Minijs.Printer.program_to_string stripped_p in
    let subst = predictions lang repr model stripped in
    let restored =
      Minijs.Rename.apply (fun n -> List.assoc_opt n subst) stripped_p
    in
    show ~stripped ~predicted:(Minijs.Printer.program_to_string restored)
  in
  demo
    "var done = false;\n\
     while (!done) {\n\
    \  doSomething();\n\
    \  if (someCondition()) {\n\
    \    done = true;\n\
    \  }\n\
     }\n";
  demo
    "function loadResource(url, request, callback) {\n\
    \  request.open(\"GET\", url, false);\n\
    \  request.send(callback);\n\
     }\n"

(* ---------- Python: Fig. 7 ---------- *)

let py_demo () =
  banner "Python (paper Fig. 7 style)";
  let lang = Pigeon.Lang.python in
  let model, repr = train_model lang Corpus.Render.Python ~n:300 in
  let src =
    "def sum_values(items):\n\
    \    total = 0\n\
    \    for item in items:\n\
    \        total += item\n\
    \    return total\n"
  in
  let stripped_p, _ = Minipython.Rename.strip (Minipython.Parser.parse src) in
  let stripped = Minipython.Printer.program_to_string stripped_p in
  let subst = predictions lang repr model stripped in
  let restored =
    Minipython.Rename.apply (fun n -> List.assoc_opt n subst) stripped_p
  in
  show ~stripped ~predicted:(Minipython.Printer.program_to_string restored)

(* ---------- Java: Fig. 9 ---------- *)

let java_demo () =
  banner "Java (paper Fig. 9)";
  let lang = Pigeon.Lang.java in
  let model, repr = train_model lang Corpus.Render.Java ~n:300 in
  let src =
    "class Util {\n\
    \  int countMatches(java.util.List<Integer> items, int target) {\n\
    \    int count = 0;\n\
    \    for (int item : items) {\n\
    \      if (item == target) {\n\
    \        count++;\n\
    \      }\n\
    \    }\n\
    \    return count;\n\
    \  }\n\
     }\n"
  in
  let stripped_p, _ = Minijava.Rename.strip (Minijava.Parser.parse src) in
  let stripped = Minijava.Printer.program_to_string stripped_p in
  let subst = predictions lang repr model stripped in
  let restored =
    Minijava.Rename.apply (fun n -> List.assoc_opt n subst) stripped_p
  in
  show ~stripped ~predicted:(Minijava.Printer.program_to_string restored)

let () =
  js_demo ();
  py_demo ();
  java_demo ()
