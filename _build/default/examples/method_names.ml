(* Method-name prediction demo (paper Section 5.3.2).

   Trains the method-name CRF on a Python corpus, then suggests names
   for unseen function bodies, showing the top-5 candidates.

   Run with:  dune exec examples/method_names.exe *)

let () =
  let lang = Pigeon.Lang.python in
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = 300; seed = 5 } in
  let sources = Corpus.Gen.generate_sources config Corpus.Render.Python in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned_method () in
  let policy = Pigeon.Graphs.Methods { internal_only = false } in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy sources
  in
  Format.printf "training on %d files (%d factor graphs)...@."
    (List.length sources) (List.length graphs);
  let model = Crf.Train.train graphs in

  let demo src =
    Format.printf "@.--- function ---@.%s" src;
    let tree = lang.Pigeon.Lang.parse_tree src in
    let g =
      Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels ~policy
        tree
    in
    List.iter
      (fun node ->
        let gold = (Crf.Graph.gold_assignment g).(node) in
        let top = Crf.Train.top_k model g ~node ~k:5 in
        Format.printf "true name: %s@.suggestions:@." gold;
        List.iteri
          (fun i (name, score) ->
            Format.printf "  %d. %-20s (score %.2f)@." (i + 1) name score)
          top)
      (Crf.Graph.unknown_ids g)
  in
  demo
    "def f(items, target):\n\
    \    count = 0\n\
    \    for item in items:\n\
    \        if item == target:\n\
    \            count += 1\n\
    \    return count\n";
  demo
    "def f(items):\n\
    \    total = 0\n\
    \    for item in items:\n\
    \        total += item\n\
    \    return total\n";
  demo
    "def f(name):\n\
    \    msg = \"hello, \" + name\n\
    \    print(msg)\n\
    \    return msg\n"
