(* Quickstart: the paper's Figs. 1-2 walked end to end.

   Parse the running-example JavaScript snippet, lower it to the
   generic AST, extract its path-contexts, and print the two paths the
   paper highlights (path I between the two occurrences of [d], path II
   between [d] and [true]).

   Run with:  dune exec examples/quickstart.exe *)

let fig1a = "while (!d) {\n  if (someCondition()) {\n    d = true;\n  }\n}\n"

let () =
  print_endline "=== The paper's Fig. 1a program ===";
  print_string fig1a;
  print_newline ();

  (* 1. Parse and lower to the generic AST. *)
  let tree = Minijs.Lower.program (Minijs.Parser.parse fig1a) in
  print_endline "=== Generic AST (Fig. 1b) ===";
  Format.printf "%a@.@." Ast.Tree.pp tree;

  (* 2. Extract pairwise path-contexts between AST terminals. *)
  let idx = Ast.Index.build tree in
  let config = Astpath.Config.default in
  let contexts = Astpath.Extract.leaf_pairs idx config in
  Format.printf "=== All %d path-contexts (max_length %d, max_width %d) ===@."
    (List.length contexts) config.Astpath.Config.max_length
    config.Astpath.Config.max_width;
  List.iteri
    (fun i c -> Format.printf "p%d: %a@." (i + 1) Astpath.Context.pp c)
    contexts;
  print_newline ();

  (* 3. The paper's two highlighted paths. *)
  let is_between c a b =
    String.equal (Astpath.Context.start_value c) a
    && String.equal (Astpath.Context.end_value c) b
  in
  let path1 = List.find (fun c -> is_between c "d" "d") contexts in
  (* The paper's path II is the short one, from the second occurrence. *)
  let path2 =
    List.filter (fun c -> is_between c "d" "true") contexts
    |> List.sort (fun a b ->
           Int.compare
             (Astpath.Path.length (Astpath.Context.path a))
             (Astpath.Path.length (Astpath.Context.path b)))
    |> List.hd
  in
  Format.printf "Path I  (d ... d):    %a@." Astpath.Path.pp
    (Astpath.Context.path path1);
  Format.printf "Path II (d ... true): %a@.@." Astpath.Path.pp
    (Astpath.Context.path path2);

  (* 4. Abstractions shrink the path vocabulary (Section 5.6). *)
  print_endline "=== Abstractions of path I ===";
  List.iter
    (fun a ->
      Format.printf "%-16s %s@."
        (Astpath.Abstraction.name a)
        (Astpath.Abstraction.apply a (Astpath.Context.path path1)))
    Astpath.Abstraction.all;
  print_newline ();

  (* 5. Graphviz export, with path I's tree edges highlighted. *)
  let highlight =
    let l =
      Ast.Index.lca idx path1.Astpath.Context.start_node
        path1.Astpath.Context.end_node
    in
    let chain n = Ast.Index.path_up idx n ~stop:l in
    let edges nodes =
      let rec go = function
        | a :: (b :: _ as rest) -> (b, a) :: go rest
        | _ -> []
      in
      go nodes
    in
    edges (chain path1.Astpath.Context.start_node)
    @ edges (chain path1.Astpath.Context.end_node)
  in
  print_endline "=== Graphviz (render with `dot -Tpng`) ===";
  print_string (Ast.Dot.to_dot ~highlight idx)
