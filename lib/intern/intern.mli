(** Shared interning layer: dense integer ids for strings and for
    arbitrary hash-consed values.

    The whole pipeline — extraction, factor-graph construction, CRF
    encoding, word2vec vocabularies — keys its hot tables by the ids
    these tables hand out, so the inner loops hash machine ints
    instead of re-hashing the same strings millions of times.

    Neither table is synchronized. The concurrency contract is the one
    the rest of the tree already follows: worker domains intern into
    their own per-file tables, and a single calling domain merges
    results in corpus order — so id assignment is corpus-order
    deterministic under any job count. *)

(** Growable open-addressed string table: id⇄string both ways.

    Ids are dense, assigned in first-intern order starting at 0.
    Lookups store the string hash per id, so probing compares ints and
    growth never re-hashes string contents. *)
module Strtab : sig
  type t

  val create : ?hint:int -> unit -> t
  (** [hint] is the expected number of distinct strings. *)

  val intern : t -> string -> int
  (** The id of [s], allocating the next dense id on first sight. *)

  val intern_guarded : t -> limit:int -> what:string -> string -> int
  (** {!intern}, but fails with [Failure] (a clear message naming
      [what] and [limit]) instead of returning an id [>= limit]. Used
      by the packed-key id spaces whose bit width is fixed. *)

  val find : t -> string -> int option
  (** The id of [s] if already interned; never allocates an id. *)

  val to_string : t -> int -> string
  (** The canonical string for an id. O(1). Raises [Invalid_argument]
      on an out-of-range id. *)

  val size : t -> int

  val iter : (int -> string -> unit) -> t -> unit
  (** In id order. *)

  val snapshot : t -> string array
  (** The strings in id order — the serialization view. *)

  val of_snapshot : string array -> t
  (** Restore a table whose id [i] is [a.(i)]. Raises
      [Invalid_argument] on duplicate strings (a corrupt snapshot). *)
end

(** Hash-consing with dense int ids: each distinct value is stored
    once, and {!probe} finds it without the caller having to build a
    candidate value (equality and hashing run against the caller's
    own representation of the key). *)
module Hashcons : sig
  type 'a t

  val create : ?hint:int -> unit -> 'a t
  val size : 'a t -> int

  val get : 'a t -> int -> 'a
  (** Canonical value for an id. O(1). Raises [Invalid_argument] on an
      out-of-range id. *)

  val probe : 'a t -> hash:int -> equal:(int -> bool) -> build:(unit -> 'a) -> int
  (** [probe t ~hash ~equal ~build] returns the id of the value the
      caller describes: [hash] is its precomputed hash, [equal id]
      must answer whether the stored value [id] equals it, and [build]
      materializes it — called only when no stored value matches, so
      repeated values allocate nothing. The stored hash is compared
      before [equal] is consulted. *)

  val iter : (int -> 'a -> unit) -> 'a t -> unit
  (** In id order. *)
end

(** Structural hash-consing of [int array] keys (built on {!Hashcons}).

    The subtree-identity pass ({!Ast.Ident}) interns one key per AST
    node — label/value symbols plus the children's already-assigned
    ids — bottom-up, so two structurally identical subtrees receive
    the same dense id even across trees, as long as they share the
    table. That shared-id property is what the incremental extraction
    cache keys on. *)
module Keytab : sig
  type t

  val create : ?hint:int -> unit -> t
  val size : t -> int

  val intern : t -> int array -> int
  (** Dense id of the key, allocating the next id on first sight. *)

  val intern_sub : t -> int array -> len:int -> int
  (** {!intern} over [buf.(0 .. len-1)]; the buffer is only copied when
      the key is new, so callers can reuse one scratch array. *)

  val get : t -> int -> int array
  (** The stored key for an id — treat as read-only. *)
end
