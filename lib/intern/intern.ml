(* Both tables use the same open-addressed scheme as [Crf.Itbl]:
   power-of-two capacity, linear probing, load factor <= 1/2, slots
   store id+1 so 0 means empty. Hashes are kept per id, so growth and
   probing never touch the stored values. *)

let mask62 = (1 lsl 62) - 1

(* FNV-1a, folded to 62 bits so hashes are always non-negative. The
   64-bit offset basis does not fit a literal [int]; fold it once. *)
let fnv_offset = Int64.to_int 0xcbf29ce484222325L land mask62

let hash_string s =
  let h = ref fnv_offset in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x100000001b3
  done;
  !h land mask62

let next_pow2 n =
  let c = ref 8 in
  while !c < n do
    c := !c * 2
  done;
  !c

module Strtab = struct
  type t = {
    mutable slots : int array;  (* id+1; 0 = empty *)
    mutable mask : int;
    mutable rev : string array;
    mutable hashes : int array;  (* per id *)
    mutable n : int;
  }

  let create ?(hint = 64) () =
    let cap = next_pow2 (max 8 (2 * hint)) in
    {
      slots = Array.make cap 0;
      mask = cap - 1;
      rev = Array.make (max 8 hint) "";
      hashes = Array.make (max 8 hint) 0;
      n = 0;
    }

  let size t = t.n

  let grow_slots t =
    let cap = 2 * Array.length t.slots in
    let slots = Array.make cap 0 in
    let mask = cap - 1 in
    for id = 0 to t.n - 1 do
      let i = ref (t.hashes.(id) land mask) in
      while slots.(!i) <> 0 do
        i := (!i + 1) land mask
      done;
      slots.(!i) <- id + 1
    done;
    t.slots <- slots;
    t.mask <- mask

  let grow_rev t =
    let cap = 2 * Array.length t.rev in
    let rev = Array.make cap "" and hashes = Array.make cap 0 in
    Array.blit t.rev 0 rev 0 t.n;
    Array.blit t.hashes 0 hashes 0 t.n;
    t.rev <- rev;
    t.hashes <- hashes

  (* Returns the id, or -1 when absent (leaving [i] at the free slot). *)
  let probe_pos t h s i =
    let found = ref (-1) in
    let continue = ref true in
    while !continue do
      match t.slots.(!i) with
      | 0 -> continue := false
      | id1 ->
          let id = id1 - 1 in
          if t.hashes.(id) = h && String.equal t.rev.(id) s then begin
            found := id;
            continue := false
          end
          else i := (!i + 1) land t.mask
    done;
    !found

  let intern t s =
    let h = hash_string s in
    let i = ref (h land t.mask) in
    match probe_pos t h s i with
    | -1 ->
        let id = t.n in
        if id >= Array.length t.rev then grow_rev t;
        t.rev.(id) <- s;
        t.hashes.(id) <- h;
        t.n <- id + 1;
        t.slots.(!i) <- id + 1;
        if 2 * t.n > Array.length t.slots then grow_slots t;
        id
    | id -> id

  let find t s =
    let h = hash_string s in
    let i = ref (h land t.mask) in
    match probe_pos t h s i with -1 -> None | id -> Some id

  (* Checked before allocating: a refused string must leave the table
     untouched, or the overflowing id would survive the failure. *)
  let intern_guarded t ~limit ~what s =
    match find t s with
    | Some id -> id
    | None ->
        if t.n >= limit then
          failwith
            (Printf.sprintf
               "%s vocabulary overflows its packed-key budget (%d distinct \
                entries): %S would get id %d. The fixed-width key packing \
                cannot represent it without silent collisions."
               what limit s t.n);
        intern t s

  let to_string t i =
    if i < 0 || i >= t.n then
      invalid_arg (Printf.sprintf "Strtab.to_string: id %d out of range" i);
    t.rev.(i)

  let iter f t =
    for i = 0 to t.n - 1 do
      f i t.rev.(i)
    done

  let snapshot t = Array.sub t.rev 0 t.n

  let of_snapshot a =
    let t = create ~hint:(Array.length a) () in
    Array.iter
      (fun s ->
        let before = t.n in
        if intern t s <> before then
          invalid_arg "Strtab.of_snapshot: duplicate string")
      a;
    t
end

module Hashcons = struct
  type 'a t = {
    mutable slots : int array;  (* id+1; 0 = empty *)
    mutable mask : int;
    mutable rev : 'a array;
    mutable hashes : int array;
    mutable n : int;
  }

  let create ?(hint = 64) () =
    let cap = next_pow2 (max 8 (2 * hint)) in
    {
      slots = Array.make cap 0;
      mask = cap - 1;
      rev = [||];
      hashes = Array.make (max 8 hint) 0;
      n = 0;
    }

  let size t = t.n

  let get t i =
    if i < 0 || i >= t.n then
      invalid_arg (Printf.sprintf "Hashcons.get: id %d out of range" i);
    t.rev.(i)

  let grow_slots t =
    let cap = 2 * Array.length t.slots in
    let slots = Array.make cap 0 in
    let mask = cap - 1 in
    for id = 0 to t.n - 1 do
      let i = ref (t.hashes.(id) land mask) in
      while slots.(!i) <> 0 do
        i := (!i + 1) land mask
      done;
      slots.(!i) <- id + 1
    done;
    t.slots <- slots;
    t.mask <- mask

  let probe t ~hash ~equal ~build =
    let hash = hash land mask62 in
    let i = ref (hash land t.mask) in
    let found = ref (-1) in
    let continue = ref true in
    while !continue do
      match t.slots.(!i) with
      | 0 -> continue := false
      | id1 ->
          let id = id1 - 1 in
          if t.hashes.(id) = hash && equal id then begin
            found := id;
            continue := false
          end
          else i := (!i + 1) land t.mask
    done;
    if !found >= 0 then !found
    else begin
      let v = build () in
      let id = t.n in
      if id >= Array.length t.hashes then begin
        let cap = 2 * Array.length t.hashes in
        let hashes = Array.make cap 0 in
        Array.blit t.hashes 0 hashes 0 t.n;
        t.hashes <- hashes
      end;
      (if id >= Array.length t.rev then begin
         let cap = max 8 (2 * Array.length t.rev) in
         let rev = Array.make cap v in
         Array.blit t.rev 0 rev 0 t.n;
         t.rev <- rev
       end);
      t.rev.(id) <- v;
      t.hashes.(id) <- hash;
      t.n <- id + 1;
      t.slots.(!i) <- id + 1;
      if 2 * t.n > Array.length t.slots then grow_slots t;
      id
    end

  let iter f t =
    for i = 0 to t.n - 1 do
      f i t.rev.(i)
    done
end

(* Int-array keys over [Hashcons]: the structural-identity table. A
   subtree's key is its label/value symbols plus its children's ids,
   so interning bottom-up gives every structurally identical subtree
   the same dense id — across trees, as long as they share the table.
   [intern_sub] probes against a caller-owned scratch buffer and only
   copies the key when it is new. *)
module Keytab = struct
  type t = int array Hashcons.t

  let create ?hint () : t = Hashcons.create ?hint ()
  let size = Hashcons.size

  let hash_sub buf ~len =
    let h = ref 17 in
    for i = 0 to len - 1 do
      h := ((!h * 0x9E3779B1) + Array.unsafe_get buf i + 1) land mask62
    done;
    !h

  let intern_sub (t : t) buf ~len =
    let equal id =
      let key = t.rev.(id) in
      Array.length key = len
      && begin
           let ok = ref true in
           for i = 0 to len - 1 do
             if Array.unsafe_get key i <> Array.unsafe_get buf i then ok := false
           done;
           !ok
         end
    in
    Hashcons.probe t ~hash:(hash_sub buf ~len) ~equal ~build:(fun () ->
        Array.sub buf 0 len)

  let intern t key = intern_sub t key ~len:(Array.length key)
  let get (t : t) id = Hashcons.get t id
end
