type egraph = {
  graph : Graph.t;
  unknown : int array;
  is_unknown : bool array;
  gold : int array;
  pw_a : int array;
  pw_b : int array;
  pw_rel : int array;
  pw_mult : float array;
  un_n : int array;
  un_rel : int array;
  un_mult : float array;
  touch_pw : int array array;
  touch_un : int array array;
  nbr : int array array;
      (* per unknown *slot*: the sorted slot indices of the unknown
         nodes sharing a pairwise factor with it — the exact set whose
         cached scores go stale when this slot's label flips. *)
}

let unknown_nodes eg = eg.unknown

(* Weight keys are packed into single ints: labels get 18 bits each
   and relations 24, so the inner loop allocates nothing and hashes
   machine ints. The packing is only sound if ids fit those widths —
   [Symbols] enforces exactly these limits at interning time, so by
   the time an id reaches here it is in range by construction and the
   hot path carries no checks. *)
let pw_key la rel lb = (la lsl 42) lor (rel lsl 18) lor lb
let un_key l rel = (l lsl 24) lor rel

type model = {
  syms : Symbols.t;
  pw : Itbl.t;
  un : Itbl.t;
  bias : Itbl.t;
  (* averaging accumulators *)
  pw_u : Itbl.t;
  un_u : Itbl.t;
  bias_u : Itbl.t;
  mutable steps : int;
}

let create ?symbols () =
  {
    syms = (match symbols with Some s -> s | None -> Symbols.create ());
    pw = Itbl.create 65536;
    un = Itbl.create 16384;
    bias = Itbl.create 512;
    pw_u = Itbl.create 65536;
    un_u = Itbl.create 16384;
    bias_u = Itbl.create 512;
    steps = 0;
  }

(* A per-domain write target for one parallel training slice: shares
   the (frozen) symbol table, starts with empty weight tables that
   hold only this slice's updates. *)
let delta_of m =
  {
    syms = m.syms;
    pw = Itbl.create 1024;
    un = Itbl.create 256;
    bias = Itbl.create 64;
    pw_u = Itbl.create 1024;
    un_u = Itbl.create 256;
    bias_u = Itbl.create 64;
    steps = 0;
  }

let symbols m = m.syms
let get = Itbl.get
let add = Itbl.add

(* Fold one slice's deltas back into the model. Callers merge slices
   in pass order and per-key accumulation is independent across keys,
   so the result depends only on the slice boundaries (i.e. the job
   count), never on domain scheduling or table iteration order. *)
let merge_delta m d =
  Itbl.iter (add m.pw) d.pw;
  Itbl.iter (add m.un) d.un;
  Itbl.iter (add m.bias) d.bias;
  Itbl.iter (add m.pw_u) d.pw_u;
  Itbl.iter (add m.un_u) d.un_u;
  Itbl.iter (add m.bias_u) d.bias_u

let encode m (g : Graph.t) =
  let n = Array.length g.Graph.nodes in
  let gold =
    Array.map (fun (nd : Graph.node) -> Symbols.label m.syms nd.Graph.gold)
      g.Graph.nodes
  in
  let is_unknown =
    Array.map (fun (nd : Graph.node) -> nd.Graph.kind = `Unknown) g.Graph.nodes
  in
  let unknown = Array.of_list (Graph.unknown_ids g) in
  let pw = ref [] and un = ref [] in
  List.iter
    (fun f ->
      match f with
      | Graph.Pairwise { a; b; rel; mult } ->
          pw := (a, b, Symbols.rel m.syms rel, float_of_int mult) :: !pw
      | Graph.Unary { n = i; rel; mult } ->
          un := (i, Symbols.rel m.syms rel, float_of_int mult) :: !un)
    g.Graph.factors;
  let pw = Array.of_list (List.rev !pw) and un = Array.of_list (List.rev !un) in
  let pw_a = Array.map (fun (a, _, _, _) -> a) pw in
  let pw_b = Array.map (fun (_, b, _, _) -> b) pw in
  let pw_rel = Array.map (fun (_, _, r, _) -> r) pw in
  let pw_mult = Array.map (fun (_, _, _, m) -> m) pw in
  let un_n = Array.map (fun (i, _, _) -> i) un in
  let un_rel = Array.map (fun (_, r, _) -> r) un in
  let un_mult = Array.map (fun (_, _, m) -> m) un in
  let touch_pw_l = Array.make n [] and touch_un_l = Array.make n [] in
  Array.iteri
    (fun fi a ->
      touch_pw_l.(a) <- fi :: touch_pw_l.(a);
      let b = pw_b.(fi) in
      if b <> a then touch_pw_l.(b) <- fi :: touch_pw_l.(b))
    pw_a;
  Array.iteri (fun fi i -> touch_un_l.(i) <- fi :: touch_un_l.(i)) un_n;
  let touch_pw = Array.map Array.of_list touch_pw_l in
  let slot_of = Array.make n (-1) in
  Array.iteri (fun s u -> slot_of.(u) <- s) unknown;
  let nbr =
    Array.map
      (fun u ->
        let acc = ref [] in
        Array.iter
          (fun fi ->
            let o = if pw_a.(fi) = u then pw_b.(fi) else pw_a.(fi) in
            let s = slot_of.(o) in
            if s >= 0 then acc := s :: !acc)
          touch_pw.(u);
        Array.of_list (List.sort_uniq Int.compare !acc))
      unknown
  in
  {
    graph = g;
    unknown;
    is_unknown;
    gold;
    pw_a;
    pw_b;
    pw_rel;
    pw_mult;
    un_n;
    un_rel;
    un_mult;
    touch_pw;
    touch_un = Array.map Array.of_list touch_un_l;
    nbr;
  }

let graph_of eg = eg.graph

type init_style = No_init | Log_counts | Naive_bayes
type trainer = Structured | Pseudolikelihood | Pl_gradient | Mixed
type engine = Incremental | Full_rescore

type config = {
  max_candidates : int;
  max_passes : int;
  seed : int;
  iterations : int;
  averaged : bool;
  init : init_style;
  init_scale : float;
  init_min_count : int;
  trainer : trainer;
  engine : engine;
}

let default_config =
  {
    max_candidates = 24;
    max_passes = 8;
    seed = 17;
    iterations = 6;
    averaged = true;
    init = Log_counts;
    init_scale = 0.5;
    init_min_count = 2;
    trainer = Pseudolikelihood;
    engine = Incremental;
  }

let node_score m eg n assignment l =
  let s = ref (get m.bias l) in
  Array.iter
    (fun fi ->
      let a = eg.pw_a.(fi) and b = eg.pw_b.(fi) in
      let la = if a = n then l else assignment.(a) in
      let lb = if b = n then l else assignment.(b) in
      s := !s +. (eg.pw_mult.(fi) *. get m.pw (pw_key la eg.pw_rel.(fi) lb)))
    eg.touch_pw.(n);
  Array.iter
    (fun fi -> s := !s +. (eg.un_mult.(fi) *. get m.un (un_key l eg.un_rel.(fi))))
    eg.touch_un.(n);
  !s

(* Incremental ICM scorer: caches every candidate's per-factor score
   contributions so a sweep only pays for what actually changed.

   Invariant: for a slot [i] with [dirty.(i) = false], [sc.(i).(c)] is
   bit-identical to [node_score m eg n assignment cand.(i).(c)] run
   fresh against the current assignment. This is exact, not
   approximate: each pairwise column caches the neighbor label it was
   computed against ([seen]); a refresh recomputes exactly the columns
   whose neighbor changed, with the same float expression
   [node_score] uses, then resums all columns in [node_score]'s exact
   operation order (bias, pairwise in touch order, unary in touch
   order). Unary columns and the bias depend only on the candidate
   label and are filled once — weights are frozen during inference.

   A slot's own label never enters its own candidate scores
   ([Graph.make] rejects self-loop pairwise factors), so flipping slot
   [k] stales exactly the slots in [eg.nbr.(k)] — everything else may
   be skipped by a sweep with no effect on the result. *)
module Scorer = struct
  type t = {
    m : model;
    eg : egraph;
    cand : int array array;
    assignment : int array;
    npw : int array;  (* per slot: pairwise column count *)
    ncols : int array;  (* per slot: pairwise + unary columns *)
    nb_of : int array array;  (* per slot, per pw column: neighbor node *)
    contrib : float array array;  (* per slot: ncand * ncols, cand-major *)
    bias_c : float array array;  (* per slot, per candidate: bias weight *)
    seen : int array array;  (* per slot, per pw column: label cached
                                against; -1 = never computed *)
    sc : float array array;  (* per slot, per candidate: cached score *)
    dirty : bool array;
  }

  let create m eg cand assignment =
    let k = Array.length eg.unknown in
    let npw = Array.make k 0
    and ncols = Array.make k 0
    and nb_of = Array.make k [||]
    and contrib = Array.make k [||]
    and bias_c = Array.make k [||]
    and seen = Array.make k [||]
    and sc = Array.make k [||] in
    for i = 0 to k - 1 do
      let n = eg.unknown.(i) in
      let tp = eg.touch_pw.(n) and tu = eg.touch_un.(n) in
      let np = Array.length tp and nu = Array.length tu in
      let nc = Array.length cand.(i) in
      npw.(i) <- np;
      ncols.(i) <- np + nu;
      nb_of.(i) <-
        Array.map
          (fun fi -> if eg.pw_a.(fi) = n then eg.pw_b.(fi) else eg.pw_a.(fi))
          tp;
      contrib.(i) <- Array.make (nc * (np + nu)) 0.;
      bias_c.(i) <- Array.map (fun l -> get m.bias l) cand.(i);
      seen.(i) <- Array.make np (-1);
      sc.(i) <- Array.make nc 0.;
      let row = contrib.(i) in
      for c = 0 to nc - 1 do
        let l = cand.(i).(c) in
        let base = (c * (np + nu)) + np in
        for j = 0 to nu - 1 do
          let fi = tu.(j) in
          row.(base + j) <- eg.un_mult.(fi) *. get m.un (un_key l eg.un_rel.(fi))
        done
      done
    done;
    {
      m;
      eg;
      cand;
      assignment;
      npw;
      ncols;
      nb_of;
      contrib;
      bias_c;
      seen;
      sc;
      dirty = Array.make k true;
    }

  let refresh t i =
    let eg = t.eg in
    let n = eg.unknown.(i) in
    let tp = eg.touch_pw.(n) in
    let cs = t.cand.(i) in
    let np = t.npw.(i) and nc = Array.length t.cand.(i) in
    let cols = t.ncols.(i) in
    let row = t.contrib.(i) and seen = t.seen.(i) and nbs = t.nb_of.(i) in
    for j = 0 to np - 1 do
      let cur = t.assignment.(Array.unsafe_get nbs j) in
      if Array.unsafe_get seen j <> cur then begin
        Array.unsafe_set seen j cur;
        let fi = Array.unsafe_get tp j in
        let rel = eg.pw_rel.(fi) and mult = eg.pw_mult.(fi) in
        if eg.pw_a.(fi) = n then
          for c = 0 to nc - 1 do
            Array.unsafe_set row ((c * cols) + j)
              (mult *. get t.m.pw (pw_key (Array.unsafe_get cs c) rel cur))
          done
        else
          for c = 0 to nc - 1 do
            Array.unsafe_set row ((c * cols) + j)
              (mult *. get t.m.pw (pw_key cur rel (Array.unsafe_get cs c)))
          done
      end
    done;
    let scores = t.sc.(i) and bias = t.bias_c.(i) in
    for c = 0 to nc - 1 do
      let s = ref (Array.unsafe_get bias c) in
      let base = c * cols in
      for j = 0 to cols - 1 do
        s := !s +. Array.unsafe_get row (base + j)
      done;
      Array.unsafe_set scores c !s
    done;
    t.dirty.(i) <- false

  let is_dirty t i = t.dirty.(i)

  let scores t i =
    if t.dirty.(i) then refresh t i;
    t.sc.(i)

  (* Same argmax as the full-rescore path: first strictly-greater
     candidate wins, ties keep the earlier candidate, an empty set
     keeps the current label. *)
  let best t i =
    let n = t.eg.unknown.(i) in
    let cs = t.cand.(i) in
    if Array.length cs = 0 then begin
      t.dirty.(i) <- false;
      t.assignment.(n)
    end
    else begin
      if t.dirty.(i) then refresh t i;
      let scores = t.sc.(i) in
      let best = ref t.assignment.(n) and best_score = ref neg_infinity in
      Array.iteri
        (fun c l ->
          let s = Array.unsafe_get scores c in
          if s > !best_score then begin
            best_score := s;
            best := l
          end)
        cs;
      !best
    end

  let set_label t i l =
    let n = t.eg.unknown.(i) in
    if t.assignment.(n) <> l then begin
      t.assignment.(n) <- l;
      Array.iter
        (fun j -> Array.unsafe_set t.dirty j true)
        t.eg.nbr.(i)
    end
end

let shuffle rng arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Candidate label ids for every unknown node; gold appended when
   [force_gold] (training), so the target is reachable but never wins
   score ties. [cands] shares the model's symbol table, so its ids are
   the engine's ids directly — no per-candidate re-interning. *)
let candidate_ids cfg cands _m eg ~force_gold =
  (* The encoded graph already carries resolved rel and gold-label
     ids, so evidence merging is pure int work — no string hashing,
     no [Graph.touching] materialization. *)
  let sl = Candidates.slate () in
  Array.map
    (fun n ->
      Candidates.slate_begin sl cands;
      Array.iter
        (fun fi -> Candidates.merge_unary_id sl cands eg.un_rel.(fi))
        eg.touch_un.(n);
      Array.iter
        (fun fi ->
          let a = eg.pw_a.(fi) and b = eg.pw_b.(fi) in
          if a = n then begin
            if not eg.is_unknown.(b) then
              Candidates.merge_pairwise_id sl cands ~dir:0 ~rel:eg.pw_rel.(fi)
                ~other:eg.gold.(b)
          end
          else if not eg.is_unknown.(a) then
            Candidates.merge_pairwise_id sl cands ~dir:1 ~rel:eg.pw_rel.(fi)
              ~other:eg.gold.(a))
        eg.touch_pw.(n);
      let ids =
        Candidates.slate_ranked sl cands ~max:cfg.max_candidates
      in
      let ids =
        if force_gold && not (List.mem eg.gold.(n) ids) then
          ids @ [ eg.gold.(n) ]
        else ids
      in
      Array.of_list ids)
    eg.unknown

let map_assignment ?cand cfg cands m eg ~force_gold ~seed =
  let rng = Random.State.make [| seed |] in
  let cand =
    match cand with
    | Some c -> c
    | None -> candidate_ids cfg cands m eg ~force_gold
  in
  let default =
    match Candidates.global_top_ids cands 1 with
    | [ l ] -> l
    | _ -> Symbols.label m.syms "?"
  in
  let assignment =
    Array.mapi
      (fun i g -> if eg.is_unknown.(i) then default else g)
      eg.gold
  in
  (* Start every unknown at its top count-ranked candidate (an
     evidence-based guess), not at the one global default: coordinate
     ascent from an all-identical start can stick in poor fixpoints. *)
  Array.iteri
    (fun i n ->
      if Array.length cand.(i) > 0 then assignment.(n) <- cand.(i).(0))
    eg.unknown;
  let order = Array.init (Array.length eg.unknown) Fun.id in
  let changed = ref true and passes = ref 0 in
  (match cfg.engine with
  | Full_rescore ->
      (* Reference engine: rescore every candidate of every node from
         scratch, every sweep. Kept verbatim as the golden baseline the
         incremental engine is tested byte-identical against. *)
      let best i n =
        let cs = cand.(i) in
        if Array.length cs = 0 then assignment.(n)
        else begin
          let best = ref assignment.(n) and best_score = ref neg_infinity in
          Array.iter
            (fun l ->
              let s = node_score m eg n assignment l in
              if s > !best_score then begin
                best_score := s;
                best := l
              end)
            cs;
          !best
        end
      in
      Array.iteri (fun i n -> assignment.(n) <- best i n) eg.unknown;
      while !changed && !passes < cfg.max_passes do
        changed := false;
        incr passes;
        shuffle rng order;
        Array.iter
          (fun i ->
            let n = eg.unknown.(i) in
            let l = best i n in
            if l <> assignment.(n) then begin
              assignment.(n) <- l;
              changed := true
            end)
          order
      done
  | Incremental ->
      (* Delta engine, exact by construction (see {!Scorer}): a clean
         slot's cached argmax is its current label, so sweeps evaluate
         only slots whose neighborhood changed — the flip sequence,
         pass count and rng consumption match Full_rescore move for
         move, making the result byte-identical. *)
      let sc = Scorer.create m eg cand assignment in
      Array.iteri
        (fun i n ->
          let l = Scorer.best sc i in
          if l <> assignment.(n) then Scorer.set_label sc i l)
        eg.unknown;
      while !changed && !passes < cfg.max_passes do
        changed := false;
        incr passes;
        shuffle rng order;
        Array.iter
          (fun i ->
            if Scorer.is_dirty sc i then begin
              let n = eg.unknown.(i) in
              let l = Scorer.best sc i in
              if l <> assignment.(n) then begin
                Scorer.set_label sc i l;
                changed := true
              end
            end)
          order
      done);
  assignment

(* Perceptron update: +1 on gold features, -1 on predicted features,
   per factor occurrence, restricted to factors touching an unknown.
   Writes go to [wr]: the model itself when training sequentially, a
   per-domain delta when a parallel pass accumulates updates. *)
let update wr eg ~gold ~pred =
  let t = float_of_int wr.steps in
  let upd_pw k d =
    add wr.pw k d;
    add wr.pw_u k (t *. d)
  in
  let upd_un k d =
    add wr.un k d;
    add wr.un_u k (t *. d)
  in
  let upd_bias k d =
    add wr.bias k d;
    add wr.bias_u k (t *. d)
  in
  Array.iteri
    (fun fi a ->
      let b = eg.pw_b.(fi) in
      if eg.is_unknown.(a) || eg.is_unknown.(b) then begin
        let r = eg.pw_rel.(fi) and mult = eg.pw_mult.(fi) in
        let kg = pw_key gold.(a) r gold.(b) and kp = pw_key pred.(a) r pred.(b) in
        if kg <> kp then begin
          upd_pw kg mult;
          upd_pw kp (-.mult)
        end
      end)
    eg.pw_a;
  Array.iteri
    (fun fi i ->
      if eg.is_unknown.(i) then begin
        let r = eg.un_rel.(fi) and mult = eg.un_mult.(fi) in
        if gold.(i) <> pred.(i) then begin
          upd_un (un_key gold.(i) r) mult;
          upd_un (un_key pred.(i) r) (-.mult)
        end
      end)
    eg.un_n;
  Array.iter
    (fun n ->
      if gold.(n) <> pred.(n) then begin
        upd_bias gold.(n) 1.;
        upd_bias pred.(n) (-1.)
      end)
    eg.unknown

(* Pseudolikelihood-style perceptron: each unknown node is scored with
   every *other* node clamped to gold; a wrong local argmax updates only
   the factors touching that node. Pairwise weights are thus estimated
   against correct neighborhoods — far more stable than learning from
   the joint MAP's own mistakes — while test-time inference stays joint
   (ICM). Cf. the pseudolikelihood training classically used for CRFs. *)
(* Mistake-driven pseudolikelihood perceptron: each unknown node is
   scored with every other node clamped to gold; a wrong local argmax
   updates only the factors touching that node. Scores read [rd],
   updates land in [wr]; sequential training passes the same model for
   both (updates are visible immediately, the historical behavior),
   parallel passes read the round-start model and write a delta. *)
let pseudo_perceptron_pass ~rd ~wr eg ~cand =
  let gold = eg.gold in
  Array.iteri
    (fun i n ->
      let cs = cand.(i) in
      if Array.length cs > 0 then begin
        wr.steps <- wr.steps + 1;
        let best = ref gold.(n) and best_score = ref neg_infinity in
        Array.iter
          (fun l ->
            let sc = node_score rd eg n gold l in
            if sc > !best_score then begin
              best_score := sc;
              best := l
            end)
          cs;
        let p = !best in
        if p <> gold.(n) then begin
          let t = float_of_int wr.steps in
          let upd tbl tbl_u k d =
            add tbl k d;
            add tbl_u k (t *. d)
          in
          Array.iter
            (fun fi ->
              let a = eg.pw_a.(fi) and b = eg.pw_b.(fi) in
              let r = eg.pw_rel.(fi) and mult = eg.pw_mult.(fi) in
              let kg = pw_key gold.(a) r gold.(b) in
              let kp =
                pw_key
                  (if a = n then p else gold.(a))
                  r
                  (if b = n then p else gold.(b))
              in
              if kg <> kp then begin
                upd wr.pw wr.pw_u kg mult;
                upd wr.pw wr.pw_u kp (-.mult)
              end)
            eg.touch_pw.(n);
          Array.iter
            (fun fi ->
              let r = eg.un_rel.(fi) and mult = eg.un_mult.(fi) in
              upd wr.un wr.un_u (un_key gold.(n) r) mult;
              upd wr.un wr.un_u (un_key p r) (-.mult))
            eg.touch_un.(n);
          upd wr.bias wr.bias_u gold.(n) 1.;
          upd wr.bias wr.bias_u p (-1.)
        end
      end)
    eg.unknown

let pseudo_gradient_pass ~rd ~wr eg ~cand ~lr =
  let gold = eg.gold in
  Array.iteri
    (fun i n ->
      let cs = cand.(i) in
      let k = Array.length cs in
      if k > 0 then begin
        wr.steps <- wr.steps + 1;
        (* Softmax over the candidate set with every other node clamped
           to gold: a true pseudolikelihood gradient step. Unlike a
           perceptron update, the gradient is frequency-consistent — on
           inherently ambiguous examples (name synonyms) the weights
           converge to log-odds rather than oscillating between the
           synonyms. *)
        let scores = Array.map (fun l -> node_score rd eg n gold l) cs in
        let gold_in = Array.exists (fun l -> l = gold.(n)) cs in
        let scores, cs =
          if gold_in then (scores, cs)
          else
            ( Array.append scores [| node_score rd eg n gold gold.(n) |],
              Array.append cs [| gold.(n) |] )
        in
        let mx = Array.fold_left Float.max neg_infinity scores in
        let exps = Array.map (fun s -> exp (s -. mx)) scores in
        let z = Array.fold_left ( +. ) 0. exps in
        let apply_l l coeff =
          (* coeff = lr * (1[l = gold] - P(l)) *)
          if Float.abs coeff > 1e-6 then begin
            Array.iter
              (fun fi ->
                let a = eg.pw_a.(fi) and b = eg.pw_b.(fi) in
                let r = eg.pw_rel.(fi) and mult = eg.pw_mult.(fi) in
                let key =
                  pw_key (if a = n then l else gold.(a)) r
                    (if b = n then l else gold.(b))
                in
                add wr.pw key (coeff *. mult))
              eg.touch_pw.(n);
            Array.iter
              (fun fi ->
                add wr.un (un_key l eg.un_rel.(fi)) (coeff *. eg.un_mult.(fi)))
              eg.touch_un.(n);
            add wr.bias l coeff
          end
        in
        Array.iteri
          (fun j l ->
            let p = exps.(j) /. z in
            let target = if l = gold.(n) then 1. else 0. in
            apply_l l (lr *. (target -. p)))
          cs
      end)
    eg.unknown

let finalize_average m =
  if m.steps > 0 then begin
    let t = float_of_int m.steps in
    Itbl.iter (fun k u -> add m.pw k (-.u /. t)) m.pw_u;
    Itbl.iter (fun k u -> add m.un k (-.u /. t)) m.un_u;
    Itbl.iter (fun k u -> add m.bias k (-.u /. t)) m.bias_u
  end

(* Initialize weights from log(1 + co-occurrence count) of each gold
   feature. The perceptron then refines discriminatively: features it
   never has to correct keep their generative estimate, which
   generalizes far better on sparse full-path relations than starting
   from zero. *)
let bump_count tbl k v =
  Hashtbl.replace tbl k (v +. Option.value (Hashtbl.find_opt tbl k) ~default:0.)

(* Gold-feature co-occurrence counts over egs.(lo..hi) — pure per
   range, so ranges fan out across domains and merge in range order. *)
let count_range egs lo hi =
  let pw_c = Hashtbl.create 65536 in
  let un_c = Hashtbl.create 16384 in
  let bias_c = Hashtbl.create 512 in
  for g = lo to hi do
    let eg = egs.(g) in
    Array.iteri
      (fun fi a ->
        let b = eg.pw_b.(fi) in
        if eg.is_unknown.(a) || eg.is_unknown.(b) then
          bump_count pw_c
            (pw_key eg.gold.(a) eg.pw_rel.(fi) eg.gold.(b))
            eg.pw_mult.(fi))
      eg.pw_a;
    Array.iteri
      (fun fi i ->
        if eg.is_unknown.(i) then
          bump_count un_c (un_key eg.gold.(i) eg.un_rel.(fi)) eg.un_mult.(fi))
      eg.un_n;
    Array.iter (fun n -> bump_count bias_c eg.gold.(n) 1.) eg.unknown
  done;
  (pw_c, un_c, bias_c)

(* Turn accumulated gold-feature counts into initial weights. Split
   from the counting so the out-of-core path can merge per-shard
   counts into one accumulator before applying — count tables are
   O(features), never O(corpus). Per-key application order is
   irrelevant: each key is set once. *)
let apply_init m (pw_c, un_c, bias_c) ~style ~scale ~min_count =
  (* Naive-Bayes-style conditional estimates: a relation feature's
     weight is log P(feature | label) up to a label-independent
     constant — log(1+c(label,feature)) − log(1+c(label)) — and the
     bias is log(1+c(label)), the label prior. Without the −log c(l)
     normalization, frequent labels would get inflated weights on
     *every* feature, double-counting the prior once per factor.
     Features below the count threshold never enter the model: at this
     corpus scale, once-seen full paths (typically accidental
     cross-template spans) are pure variance. *)
  let label_total l =
    match style with
    | Naive_bayes -> 1. +. Option.value (Hashtbl.find_opt bias_c l) ~default:0.
    | _ -> 1.
  in
  let mc = float_of_int min_count in
  Hashtbl.iter
    (fun k c ->
      if c >= mc then begin
        (* A pairwise feature conditions on either end depending on
           which node is being scored; normalize by both labels'
           priors, averaged. *)
        let la = k lsr 42 and lb = k land 0x3FFFF in
        let norm = 0.5 *. (log (label_total la) +. log (label_total lb)) in
        add m.pw k (scale *. (log (1. +. c) -. norm))
      end)
    pw_c;
  Hashtbl.iter
    (fun k c ->
      if c >= mc then
        let l = k lsr 24 in
        add m.un k (scale *. (log (1. +. c) -. log (label_total l))))
    un_c;
  Hashtbl.iter (fun k c -> add m.bias k (scale *. log (1. +. c))) bias_c

let init_from_counts ?pool m egs ~style ~scale ~min_count =
  let jobs = match pool with Some p -> Parallel.jobs p | None -> 1 in
  let n = Array.length egs in
  let counts =
    if jobs <= 1 || n <= 1 then count_range egs 0 (n - 1)
    else begin
      let parts =
        Parallel.map ?pool
          (fun (lo, hi) -> count_range egs lo hi)
          (Parallel.chunk_ranges ~chunks:jobs n)
      in
      let pw_c = Hashtbl.create 65536 in
      let un_c = Hashtbl.create 16384 in
      let bias_c = Hashtbl.create 512 in
      Array.iter
        (fun (pw, un, bias) ->
          Hashtbl.iter (bump_count pw_c) pw;
          Hashtbl.iter (bump_count un_c) un;
          Hashtbl.iter (bump_count bias_c) bias)
        parts;
      (pw_c, un_c, bias_c)
    end
  in
  apply_init m counts ~style ~scale ~min_count

let mode_of cfg it =
  match cfg.trainer with
  | Structured -> `Structured
  | Pseudolikelihood -> `Pl
  | Pl_gradient -> `Grad
  | Mixed -> if it >= cfg.iterations - 2 then `Structured else `Pl

(* One graph's contribution to one pass. Reads weights from [rd],
   writes updates (and step advances) into [wr]. *)
let run_graph_pass cfg cands ~rd ~wr ~mode ~it ~cand eg =
  match mode with
  | `Pl -> pseudo_perceptron_pass ~rd ~wr eg ~cand
  | `Grad -> pseudo_gradient_pass ~rd ~wr eg ~cand ~lr:0.2
  | `Structured ->
      (* Time advances once per example — the textbook averaged
         perceptron; counting only mistakes would under-weight
         the stable consensus in the average. *)
      wr.steps <- wr.steps + 1;
      let pred =
        map_assignment ~cand cfg cands rd eg ~force_gold:true
          ~seed:(cfg.seed + it)
      in
      if pred <> eg.gold then update wr eg ~gold:eg.gold ~pred

(* How many time steps a graph consumes in one pass — known up front
   (it depends only on the candidate cache), which is what lets a
   parallel pass hand every graph the exact step number the sequential
   pass order would have given it. *)
let steps_of_graph mode ~cand =
  match mode with
  | `Structured -> 1
  | `Pl | `Grad ->
      Array.fold_left
        (fun acc cs -> if Array.length cs > 0 then acc + 1 else acc)
        0 cand

(* Graphs processed per domain between two merge barriers of a
   parallel pass. Small keeps the weights nearly as fresh as online
   training (staleness is bounded by jobs * this); large amortizes the
   barrier. 4 measured well on synthetic corpora. *)
let round_graphs_per_domain = 4

(* One shuffled pass over [order] (indices into [egs]/[cand_cache]).
   Shared by the in-memory trainer (order spans the whole corpus) and
   the streaming trainer (order spans one shard), so both produce the
   same update sequence for the same order. *)
let run_pass ?pool cfg cands m ~mode ~it ~egs ~cand_cache ~order =
  let jobs = match pool with Some p -> Parallel.jobs p | None -> 1 in
  let n = Array.length order in
  if jobs <= 1 || n <= 1 then
    Array.iter
      (fun gi ->
        run_graph_pass cfg cands ~rd:m ~wr:m ~mode ~it ~cand:cand_cache.(gi)
          egs.(gi))
      order
  else begin
    (* Parallel pass: synchronized rounds over the shuffled order.
       Each domain trains a contiguous slice of the round against
       the weights as of the round barrier (a synchronous-minibatch
       view of the same objective), writing into a private delta;
       deltas merge in slice order, and each graph is assigned the
       step number the sequential pass order would have given it —
       so the run is reproducible for a fixed job count, and the
       averaged-perceptron clock is unchanged. *)
    let prefix = Array.make (n + 1) m.steps in
    for k = 0 to n - 1 do
      prefix.(k + 1) <-
        prefix.(k) + steps_of_graph mode ~cand:cand_cache.(order.(k))
    done;
    let per_round = jobs * round_graphs_per_domain in
    let start = ref 0 in
    while !start < n do
      let base = !start in
      let stop = min n (base + per_round) in
      let slices = Parallel.chunk_ranges ~chunks:jobs (stop - base) in
      let deltas =
        Parallel.map ?pool
          (fun (lo, hi) ->
            let wr = delta_of m in
            for k = base + lo to base + hi do
              let gi = order.(k) in
              wr.steps <- prefix.(k);
              run_graph_pass cfg cands ~rd:m ~wr ~mode ~it
                ~cand:cand_cache.(gi) egs.(gi)
            done;
            wr)
          slices
      in
      Array.iter (merge_delta m) deltas;
      m.steps <- prefix.(stop);
      start := stop
    done
  end

let train ?pool cfg cands graphs =
  let m = create ~symbols:(Candidates.symbols cands) () in
  let egs = Array.of_list (List.map (encode m) graphs) in
  (match cfg.init with
  | No_init -> ()
  | (Log_counts | Naive_bayes) as style ->
      init_from_counts ?pool m egs ~style ~scale:cfg.init_scale
        ~min_count:cfg.init_min_count);
  let rng = Random.State.make [| cfg.seed |] in
  (* Candidate sets depend only on the graph and the (static) counts,
     so compute them once per graph, not once per iteration. This also
     front-loads every intern the passes will need, leaving the
     interners read-only during parallel rounds. *)
  let cand_cache =
    Array.map (fun eg -> candidate_ids cfg cands m eg ~force_gold:true) egs
  in
  (* Force the lazy global-top cache before any fan-out. *)
  ignore (Candidates.global_top cands 1);
  let n = Array.length egs in
  for it = 0 to cfg.iterations - 1 do
    let order = Array.init n Fun.id in
    shuffle rng order;
    run_pass ?pool cfg cands m ~mode:(mode_of cfg it) ~it ~egs ~cand_cache
      ~order
  done;
  if cfg.averaged then finalize_average m;
  m

(* {2 Out-of-core training}

   The streaming trainer never holds more than one shard's graphs.
   Within a shard the pass is the same machinery as [train]; across
   shards the only coupling is the weight tables and the step clock,
   both of which a checkpoint captures exactly. Shuffling is per
   (iteration, shard) with an rng *derived* from those coordinates —
   no long-lived rng state survives a shard boundary, so resuming at
   a boundary replays nothing and needs no rng serialization to be
   bit-exact. The trade against [train] is the shuffle radius: graphs
   only mix within their shard, which matters as little as the shard
   size is large. *)

let train_stream ?pool cfg cands ~n_shards ~graphs_of_shard ?from ?on_shard ()
    =
  if n_shards <= 0 then invalid_arg "Fast.train_stream: n_shards must be > 0";
  let m, start_it, start_shard =
    match from with
    | Some (m, it, s) ->
        if s < 0 || s >= n_shards || it < 0 then
          invalid_arg "Fast.train_stream: cursor out of range";
        (m, it, s)
    | None ->
        let m = create ~symbols:(Candidates.symbols cands) () in
        (match cfg.init with
        | No_init -> ()
        | (Log_counts | Naive_bayes) as style ->
            (* Counting pass, one shard at a time; merged counts are
               O(features). Merge order per key is commutative float
               addition in shard order — same order every run. *)
            let pw_c = Hashtbl.create 65536 in
            let un_c = Hashtbl.create 16384 in
            let bias_c = Hashtbl.create 512 in
            for s = 0 to n_shards - 1 do
              let egs =
                Array.of_list (List.map (encode m) (graphs_of_shard s))
              in
              let pw, un, bias = count_range egs 0 (Array.length egs - 1) in
              Hashtbl.iter (bump_count pw_c) pw;
              Hashtbl.iter (bump_count un_c) un;
              Hashtbl.iter (bump_count bias_c) bias
            done;
            apply_init m (pw_c, un_c, bias_c) ~style ~scale:cfg.init_scale
              ~min_count:cfg.init_min_count);
        (m, 0, 0)
  in
  ignore (Candidates.global_top cands 1);
  if start_it < cfg.iterations then
    for it = start_it to cfg.iterations - 1 do
      let mode = mode_of cfg it in
      for s = (if it = start_it then start_shard else 0) to n_shards - 1 do
        let graphs = graphs_of_shard s in
        let egs = Array.of_list (List.map (encode m) graphs) in
        let cand_cache =
          Array.map (fun eg -> candidate_ids cfg cands m eg ~force_gold:true)
            egs
        in
        let n = Array.length egs in
        if n > 0 then begin
          let order = Array.init n Fun.id in
          shuffle (Random.State.make [| cfg.seed; 0x5eed; it; s |]) order;
          run_pass ?pool cfg cands m ~mode ~it ~egs ~cand_cache ~order
        end;
        match on_shard with None -> () | Some f -> f ~it ~shard:s m
      done
    done;
  if cfg.averaged then finalize_average m;
  m

(* Mapped weight tables checksum their file-backed payloads lazily;
   forcing the check at every inference entry point means corruption
   surfaces as a structured diagnostic before any weight is trusted,
   and the hot loops below stay check-free. *)
let verify_tables m =
  Itbl.ensure_verified m.pw;
  Itbl.ensure_verified m.un;
  Itbl.ensure_verified m.bias

let storage m =
  match (Itbl.storage m.pw, Itbl.storage m.un, Itbl.storage m.bias) with
  | `Heap, `Heap, `Heap -> `Heap
  | _ -> `Mapped

let predict cfg cands m g =
  verify_tables m;
  let eg = encode m g in
  let assignment =
    map_assignment cfg cands m eg ~force_gold:false ~seed:cfg.seed
  in
  Array.map (Symbols.label_string m.syms) assignment

(* Batch prediction: encoding and candidate lookup intern strings into
   the model's (shared, unsynchronized) symbol table, so they run up
   front on the calling domain; once every string the passes touch is
   interned, inference per graph is pure reads and fans out over the
   pool. Each graph is seeded exactly as [predict] seeds it, and
   results come back in input order — identical output for every job
   count. *)
let predict_batch ?pool cfg cands m graphs =
  verify_tables m;
  let prepped =
    Array.of_list
      (List.map
         (fun g ->
           let eg = encode m g in
           (eg, candidate_ids cfg cands m eg ~force_gold:false))
         graphs)
  in
  (match Candidates.global_top_ids cands 1 with
  | [ _ ] -> ()
  | _ -> ignore (Symbols.label m.syms "?"));
  let out =
    Parallel.map ?pool
      (fun (eg, cand) ->
        let assignment =
          map_assignment ~cand cfg cands m eg ~force_gold:false ~seed:cfg.seed
        in
        Array.map (Symbols.label_string m.syms) assignment)
      prepped
  in
  Array.to_list out

let top_k cfg cands m g ~node ~k =
  verify_tables m;
  let eg = encode m g in
  let assignment =
    map_assignment cfg cands m eg ~force_gold:false ~seed:cfg.seed
  in
  let touching = Graph.touching g in
  let cs =
    Candidates.ids_for_node cands g touching.(node) node
      ~max:(max k cfg.max_candidates)
  in
  List.map
    (fun li ->
      (Symbols.label_string m.syms li, node_score m eg node assignment li))
    cs
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < k)

let export_weights m =
  let out = Model.create () in
  let lab = Symbols.label_string m.syms and rel = Symbols.rel_string m.syms in
  Itbl.iter
    (fun key w ->
      if w <> 0. then
        let la = key lsr 42 in
        let r = (key lsr 18) land 0xFFFFFF in
        let lb = key land 0x3FFFF in
        Model.add out (Model.pairwise_feat ~la:(lab la) ~rel:(rel r) ~lb:(lab lb)) w)
    m.pw;
  Itbl.iter
    (fun key w ->
      if w <> 0. then
        let l = key lsr 24 in
        let r = key land 0xFFFFFF in
        Model.add out (Model.unary_feat ~l:(lab l) ~rel:(rel r)) w)
    m.un;
  Itbl.iter
    (fun l w -> if w <> 0. then Model.add out (Model.bias_feat ~l:(lab l)) w)
    m.bias;
  out

type dump = {
  d_labels : string list;
  d_rels : string list;
  d_pw : (int * float) list;
  d_un : (int * float) list;
  d_bias : (int * float) list;
}

(* Key-sorted: the keys sort as an unboxed int array (no generic
   compare on boxed pairs), and the v3 writer emits the list as-is,
   so the canonical on-disk order costs one int sort here. *)
let tbl_list tbl =
  let n = Itbl.length tbl in
  let keys = Array.make (max 1 n) 0 in
  let i = ref 0 in
  Itbl.iter
    (fun k _ ->
      keys.(!i) <- k;
      incr i)
    tbl;
  let keys = if n = Array.length keys then keys else Array.sub keys 0 n in
  Array.sort Int.compare keys;
  Array.fold_right (fun k acc -> (k, Itbl.get tbl k) :: acc) keys []

let dump m =
  let snap = Symbols.snapshot m.syms in
  {
    d_labels = Array.to_list snap.Symbols.s_labels;
    d_rels = Array.to_list snap.Symbols.s_rels;
    d_pw = tbl_list m.pw;
    d_un = tbl_list m.un;
    d_bias = tbl_list m.bias;
  }

let restore d =
  let m = create () in
  List.iter (fun s -> ignore (Symbols.label m.syms s)) d.d_labels;
  List.iter (fun s -> ignore (Symbols.rel m.syms s)) d.d_rels;
  (* Weight keys index the tables above; a key whose unpacked ids fall
     outside them means a mangled file, and would otherwise surface
     much later as a wrong prediction or an array bound. *)
  let nl = Symbols.num_labels m.syms and nr = Symbols.num_rels m.syms in
  let chk what ok k =
    if not ok then Printf.ksprintf failwith "%s weight key %d out of range" what k
  in
  List.iter
    (fun (k, v) ->
      chk "pairwise"
        (k >= 0 && k lsr 42 < nl
        && (k lsr 18) land 0xFFFFFF < nr
        && k land 0x3FFFF < nl)
        k;
      Itbl.set m.pw k v)
    d.d_pw;
  List.iter
    (fun (k, v) ->
      chk "unary" (k >= 0 && k lsr 24 < nl && k land 0xFFFFFF < nr) k;
      Itbl.set m.un k v)
    d.d_un;
  List.iter
    (fun (k, v) ->
      chk "bias" (k >= 0 && k < nl) k;
      Itbl.set m.bias k v)
    d.d_bias;
  m

(* Full trainer state: [dump] plus the averaging accumulators and the
   step clock — everything a mid-training checkpoint needs for the
   resumed run to make bit-identical updates. Values round-trip as
   exact IEEE-754 bits through the v4 checkpoint writer, so restoring
   and continuing equals never having stopped. *)
type full_dump = {
  f_weights : dump;
  f_pw_u : (int * float) list;
  f_un_u : (int * float) list;
  f_bias_u : (int * float) list;
  f_steps : int;
}

let dump_full m =
  {
    f_weights = dump m;
    f_pw_u = tbl_list m.pw_u;
    f_un_u = tbl_list m.un_u;
    f_bias_u = tbl_list m.bias_u;
    f_steps = m.steps;
  }

let restore_full f =
  let m = restore f.f_weights in
  let nl = Symbols.num_labels m.syms and nr = Symbols.num_rels m.syms in
  let chk what ok k =
    if not ok then Printf.ksprintf failwith "%s weight key %d out of range" what k
  in
  List.iter
    (fun (k, v) ->
      chk "pairwise-accumulator"
        (k >= 0 && k lsr 42 < nl
        && (k lsr 18) land 0xFFFFFF < nr
        && k land 0x3FFFF < nl)
        k;
      Itbl.set m.pw_u k v)
    f.f_pw_u;
  List.iter
    (fun (k, v) ->
      chk "unary-accumulator" (k >= 0 && k lsr 24 < nl && k land 0xFFFFFF < nr) k;
      Itbl.set m.un_u k v)
    f.f_un_u;
  List.iter
    (fun (k, v) ->
      chk "bias-accumulator" (k >= 0 && k < nl) k;
      Itbl.set m.bias_u k v)
    f.f_bias_u;
  if f.f_steps < 0 then failwith "negative step counter";
  m.steps <- f.f_steps;
  m

type mapped_table = {
  mt_keys : int array;
  mt_vals : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mt_verify : unit -> unit;
}

(* [restore], but the weight values stay in the mapped file: only the
   symbol tables and the probe indexes are built on the heap. Key
   validation is identical to [restore] — it runs eagerly (the key
   arrays were copied out of the file by the loader), while the float
   payloads are checked lazily by each table's [mt_verify]. *)
let restore_mapped ~labels ~rels ~pw ~un ~bias =
  (* Not [create ()]: its presized training tables (the weight tables
     this function immediately replaces, and the averaging
     accumulators a read-only model never touches) are several MB of
     zeroed arrays — real time on what should be an O(header) load. *)
  let syms = Symbols.create () in
  List.iter (fun s -> ignore (Symbols.label syms s)) labels;
  List.iter (fun s -> ignore (Symbols.rel syms s)) rels;
  let nl = Symbols.num_labels syms and nr = Symbols.num_rels syms in
  let chk what ok k =
    if not ok then Printf.ksprintf failwith "%s weight key %d out of range" what k
  in
  Array.iter
    (fun k ->
      chk "pairwise"
        (k >= 0 && k lsr 42 < nl
        && (k lsr 18) land 0xFFFFFF < nr
        && k land 0x3FFFF < nl)
        k)
    pw.mt_keys;
  Array.iter
    (fun k -> chk "unary" (k >= 0 && k lsr 24 < nl && k land 0xFFFFFF < nr) k)
    un.mt_keys;
  Array.iter (fun k -> chk "bias" (k >= 0 && k < nl) k) bias.mt_keys;
  let tbl t =
    Itbl.of_sorted_mapped ~keys:t.mt_keys ~vals:t.mt_vals ~verify:t.mt_verify
  in
  {
    syms;
    pw = tbl pw;
    un = tbl un;
    bias = tbl bias;
    pw_u = Itbl.create 0;
    un_u = Itbl.create 0;
    bias_u = Itbl.create 0;
    steps = 0;
  }
