(* Open-addressed int -> float table for the weight hot path.

   [Hashtbl]'s [find_opt] allocates a [Some] box and a boxed float on
   every probe, which is most of what [Fast.node_score] does. Here
   keys live in a flat [int array] (linear probing, [-1] = empty — all
   packed weight keys are non-negative) and values in an unboxed
   [float array], so a lookup is a multiply, a few compares and an
   unsafe load.

   Per-key arithmetic is identical to the [Hashtbl] code it replaces
   ([add] accumulates with a single [+.] in program order), so models
   trained on either table are byte-identical. Only iteration order
   differs, which nothing semantic depends on.

   A table is either heap-backed (training: mutable, growable) or
   map-backed (inference over an mmap'd model file: the probe index is
   a small heap array built from the file's sorted key list, but the
   values stay in the map as a [Bigarray.Array1] view — never copied).
   Mapped values are checksummed lazily: the first read-path entry
   point calls [ensure_verified], which runs the verify closure the
   loader installed. *)

type heap = {
  mutable keys : int array;
  mutable vals : float array;
  mutable mask : int;
  mutable count : int;
}

(* The probe index over a mapped table's sorted key run: key slots and
   the file index each occupied slot maps to. Built lazily — load time
   stays O(validation), and the build lands with the (also deferred)
   checksum pass at the first inference entry point. *)
type index = { x_keys : int array; x_idx : int array; x_mask : int }

type mapped = {
  m_sorted : int array;  (* the file's key run: strictly increasing *)
  mutable m_index : index option;
      (* Benign race (like [m_verified]): concurrent builders compute
         identical indexes from the immutable [m_sorted] and the last
         store wins. *)
  m_count : int;
  m_vals : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  m_verify : unit -> unit;
  mutable m_verified : bool;
      (* The benign race on this flag (two domains verifying at once)
         only repeats an idempotent read-only checksum. *)
}

type t = H of heap | M of mapped

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2)

let create hint =
  let cap = ceil_pow2 (max 16 hint) 16 in
  H
    {
      keys = Array.make cap (-1);
      vals = Array.make cap 0.;
      mask = cap - 1;
      count = 0;
    }

(* Fibonacci-style multiplicative hash; [lsr] keeps the high (well
   mixed) bits and guarantees a non-negative index. *)
let[@inline] start mask k = (k * 0x2545F4914F6CDD1D) lsr 16 land mask

let length = function H h -> h.count | M m -> m.m_count

let rec probe keys mask k i =
  let kk = Array.unsafe_get keys i in
  if kk = k || kk = -1 then i else probe keys mask k ((i + 1) land mask)

let build_index m =
  match m.m_index with
  | Some x -> x
  | None ->
      let n = Array.length m.m_sorted in
      let cap = ceil_pow2 (max 16 (2 * n)) 16 in
      let mask = cap - 1 in
      let keys = Array.make cap (-1) and idx = Array.make cap 0 in
      Array.iteri
        (fun j k ->
          let i = probe keys mask k (start mask k) in
          Array.unsafe_set keys i k;
          Array.unsafe_set idx i j)
        m.m_sorted;
      let x = { x_keys = keys; x_idx = idx; x_mask = mask } in
      m.m_index <- Some x;
      x

let[@inline] get t k =
  match t with
  | H h ->
      let i = probe h.keys h.mask k (start h.mask k) in
      if Array.unsafe_get h.keys i = k then Array.unsafe_get h.vals i else 0.
  | M m ->
      let x = match m.m_index with Some x -> x | None -> build_index m in
      let i = probe x.x_keys x.x_mask k (start x.x_mask k) in
      if Array.unsafe_get x.x_keys i = k then
        Bigarray.Array1.unsafe_get m.m_vals (Array.unsafe_get x.x_idx i)
      else 0.

let grow h =
  let old_keys = h.keys and old_vals = h.vals in
  let cap = 2 * Array.length old_keys in
  h.keys <- Array.make cap (-1);
  h.vals <- Array.make cap 0.;
  h.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = probe h.keys h.mask k (start h.mask k) in
        Array.unsafe_set h.keys j k;
        Array.unsafe_set h.vals j (Array.unsafe_get old_vals i)
      end)
    old_keys

let[@inline] insert h i k v =
  Array.unsafe_set h.keys i k;
  Array.unsafe_set h.vals i v;
  h.count <- h.count + 1;
  (* Load factor 1/2: probes stay short and the growth check is one
     compare per insert. *)
  if 2 * h.count >= Array.length h.keys then grow h

let heap_of = function
  | H h -> h
  | M _ -> invalid_arg "Itbl: mapped tables are read-only"

let add t k d =
  if d <> 0. then begin
    let h = heap_of t in
    let i = probe h.keys h.mask k (start h.mask k) in
    if Array.unsafe_get h.keys i = k then
      Array.unsafe_set h.vals i (Array.unsafe_get h.vals i +. d)
    else insert h i k d
  end

let set t k v =
  let h = heap_of t in
  let i = probe h.keys h.mask k (start h.mask k) in
  if Array.unsafe_get h.keys i = k then Array.unsafe_set h.vals i v
  else insert h i k v

let ensure_verified = function
  | H _ -> ()
  | M m ->
      if not m.m_verified then begin
        m.m_verify ();
        m.m_verified <- true
      end;
      (* Piggyback the index build on the same entry point, so the
         lookup hot path nearly always takes the [Some] branch. *)
      if m.m_index = None then ignore (build_index m)

let of_sorted_mapped ~keys ~vals ~verify =
  let n = Array.length keys in
  if Bigarray.Array1.dim vals <> n then
    Printf.ksprintf failwith
      "weight table key/value count mismatch: %d keys, %d values" n
      (Bigarray.Array1.dim vals);
  (* Strictly increasing is the canonical form the writer emits;
     enforcing it here rejects duplicate keys (which would make
     lookups depend on probe order) and negative keys (which would
     collide with the empty-slot sentinel). Validation is eager — a
     linear pass — while the probe index waits for first use. *)
  let prev = ref (-1) in
  Array.iteri
    (fun j k ->
      if k <= !prev then
        Printf.ksprintf failwith
          "weight table keys not strictly increasing at index %d (%d after %d)"
          j k !prev;
      prev := k)
    keys;
  M
    {
      m_sorted = keys;
      m_index = None;
      m_count = n;
      m_vals = vals;
      m_verify = verify;
      m_verified = false;
    }

let storage = function H _ -> `Heap | M _ -> `Mapped

let iter f t =
  ensure_verified t;
  match t with
  | H h ->
      let keys = h.keys and vals = h.vals in
      for i = 0 to Array.length keys - 1 do
        let k = Array.unsafe_get keys i in
        if k >= 0 then f k (Array.unsafe_get vals i)
      done
  | M m ->
      (* File order (strictly increasing keys); callers sort anyway. *)
      let vals = m.m_vals in
      Array.iteri (fun j k -> f k (Bigarray.Array1.unsafe_get vals j)) m.m_sorted

let fold f t acc =
  let acc = ref acc in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
