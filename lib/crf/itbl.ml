(* Open-addressed int -> float table for the weight hot path.

   [Hashtbl]'s [find_opt] allocates a [Some] box and a boxed float on
   every probe, which is most of what [Fast.node_score] does. Here
   keys live in a flat [int array] (linear probing, [-1] = empty — all
   packed weight keys are non-negative) and values in an unboxed
   [float array], so a lookup is a multiply, a few compares and an
   unsafe load.

   Per-key arithmetic is identical to the [Hashtbl] code it replaces
   ([add] accumulates with a single [+.] in program order), so models
   trained on either table are byte-identical. Only iteration order
   differs, which nothing semantic depends on. *)

type t = {
  mutable keys : int array;
  mutable vals : float array;
  mutable mask : int;
  mutable count : int;
}

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2)

let create hint =
  let cap = ceil_pow2 (max 16 hint) 16 in
  {
    keys = Array.make cap (-1);
    vals = Array.make cap 0.;
    mask = cap - 1;
    count = 0;
  }

(* Fibonacci-style multiplicative hash; [lsr] keeps the high (well
   mixed) bits and guarantees a non-negative index. *)
let[@inline] start t k = (k * 0x2545F4914F6CDD1D) lsr 16 land t.mask

let length t = t.count

let rec probe keys mask k i =
  let kk = Array.unsafe_get keys i in
  if kk = k || kk = -1 then i else probe keys mask k ((i + 1) land mask)

let[@inline] get t k =
  let i = probe t.keys t.mask k (start t k) in
  if Array.unsafe_get t.keys i = k then Array.unsafe_get t.vals i else 0.

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * Array.length old_keys in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0.;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = probe t.keys t.mask k (start t k) in
        Array.unsafe_set t.keys j k;
        Array.unsafe_set t.vals j (Array.unsafe_get old_vals i)
      end)
    old_keys

let[@inline] insert t i k v =
  Array.unsafe_set t.keys i k;
  Array.unsafe_set t.vals i v;
  t.count <- t.count + 1;
  (* Load factor 1/2: probes stay short and the growth check is one
     compare per insert. *)
  if 2 * t.count >= Array.length t.keys then grow t

let add t k d =
  if d <> 0. then begin
    let i = probe t.keys t.mask k (start t k) in
    if Array.unsafe_get t.keys i = k then
      Array.unsafe_set t.vals i (Array.unsafe_get t.vals i +. d)
    else insert t i k d
  end

let set t k v =
  let i = probe t.keys t.mask k (start t k) in
  if Array.unsafe_get t.keys i = k then Array.unsafe_set t.vals i v
  else insert t i k v

let iter f t =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then f k (Array.unsafe_get vals i)
  done

let fold f t acc =
  let keys = t.keys and vals = t.vals in
  let acc = ref acc in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then acc := f k (Array.unsafe_get vals i) !acc
  done;
  !acc
