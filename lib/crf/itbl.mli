(** Open-addressed int -> float table (linear probing, unboxed float
    values) for weight storage on the training/inference hot path.

    Keys must be non-negative ([-1] is the empty-slot sentinel), which
    every packed weight key in {!Fast} satisfies. Accumulation order
    per key matches the [Hashtbl] code this replaces, so weights are
    byte-identical; only iteration order differs.

    A table is heap-backed (mutable, growable — what {!create} builds
    and training uses) or map-backed (read-only values living in a
    [Bigarray.Array1] view over an mmap'd model file — what
    {!of_sorted_mapped} builds). Lookups behave identically in both;
    {!add}/{!set} on a mapped table raise [Invalid_argument]. *)

type t

val create : int -> t
(** [create hint] sizes the table for at least [hint] slots (rounded
    up to a power of two, minimum 16). *)

val of_sorted_mapped :
  keys:int array ->
  vals:(float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  verify:(unit -> unit) ->
  t
(** A read-only table whose values stay in [vals] (a view over a
    mapped file; [vals.(j)] belongs to [keys.(j)]) and whose probe
    index is built on the heap from [keys]. [keys] must be strictly
    increasing and non-negative — the canonical order the v4 writer
    emits — or [Failure] is raised. [verify] is the lazy checksum for
    the mapped payload: it runs once, at the first read-path entry
    point that calls {!ensure_verified}, and should raise
    [Lexkit.Diag.Error] on mismatch. *)

val ensure_verified : t -> unit
(** Run the pending [verify] closure of a mapped table (idempotent;
    no-op on heap tables). Called by {!Fast} at inference entry points
    so corruption in a lazily-mapped payload surfaces as a structured
    diagnostic before any value is trusted. *)

val storage : t -> [ `Heap | `Mapped ]

val get : t -> int -> float
(** [get t k] is the value bound to [k], or [0.] when unbound. *)

val add : t -> int -> float -> unit
(** [add t k d] accumulates [d] onto the binding for [k], creating it
    at [d] when absent. [d = 0.] on an absent key is a no-op, matching
    the guarded [Hashtbl] accumulator it replaces. *)

val set : t -> int -> float -> unit
(** [set t k v] binds [k] to [v], replacing any existing binding
    (inserts even [v = 0.], like [Hashtbl.replace]). *)

val iter : (int -> float -> unit) -> t -> unit
val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a
val length : t -> int
