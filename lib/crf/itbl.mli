(** Open-addressed int -> float table (linear probing, unboxed float
    values) for weight storage on the training/inference hot path.

    Keys must be non-negative ([-1] is the empty-slot sentinel), which
    every packed weight key in {!Fast} satisfies. Accumulation order
    per key matches the [Hashtbl] code this replaces, so weights are
    byte-identical; only iteration order differs. *)

type t

val create : int -> t
(** [create hint] sizes the table for at least [hint] slots (rounded
    up to a power of two, minimum 16). *)

val get : t -> int -> float
(** [get t k] is the value bound to [k], or [0.] when unbound. *)

val add : t -> int -> float -> unit
(** [add t k d] accumulates [d] onto the binding for [k], creating it
    at [d] when absent. [d = 0.] on an absent key is a no-op, matching
    the guarded [Hashtbl] accumulator it replaces. *)

val set : t -> int -> float -> unit
(** [set t k v] binds [k] to [v], replacing any existing binding
    (inserts even [v = 0.], like [Hashtbl.replace]). *)

val iter : (int -> float -> unit) -> t -> unit
val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a
val length : t -> int
