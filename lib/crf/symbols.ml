(* The label/relation vocabularies shared by [Candidates] and [Fast].

   Both weight-table key packings ([Fast.pw_key], [Fast.un_key],
   [Candidates] pairwise keys) assume label ids fit 18 bits and
   relation ids fit 24; interning is therefore guarded *here*, at id
   creation, so an overflowing vocabulary fails with a diagnostic
   instead of silently colliding keys in the hot loops. *)

let label_bits = 18
let rel_bits = 24
let max_labels = 1 lsl label_bits
let max_rels = 1 lsl rel_bits

type t = { labels : Intern.Strtab.t; rels : Intern.Strtab.t }

let create () =
  {
    labels = Intern.Strtab.create ~hint:256 ();
    rels = Intern.Strtab.create ~hint:256 ();
  }

let label t s =
  Intern.Strtab.intern_guarded t.labels ~limit:max_labels ~what:"CRF label" s

let rel t s =
  Intern.Strtab.intern_guarded t.rels ~limit:max_rels ~what:"CRF relation" s

let find_label t s = Intern.Strtab.find t.labels s
let find_rel t s = Intern.Strtab.find t.rels s
let label_string t i = Intern.Strtab.to_string t.labels i
let rel_string t i = Intern.Strtab.to_string t.rels i
let num_labels t = Intern.Strtab.size t.labels
let num_rels t = Intern.Strtab.size t.rels

type snapshot = { s_labels : string array; s_rels : string array }

let snapshot t =
  {
    s_labels = Intern.Strtab.snapshot t.labels;
    s_rels = Intern.Strtab.snapshot t.rels;
  }

let of_snapshot s =
  if Array.length s.s_labels > max_labels then
    invalid_arg "Symbols.of_snapshot: label vocabulary exceeds 2^18";
  if Array.length s.s_rels > max_rels then
    invalid_arg "Symbols.of_snapshot: relation vocabulary exceeds 2^24";
  {
    labels = Intern.Strtab.of_snapshot s.s_labels;
    rels = Intern.Strtab.of_snapshot s.s_rels;
  }
