(* Version 4 (what [save] writes) is binary and mappable: the text
   magic line "pigeon-crf-model 4\n", then length-prefixed sections
   (tag byte, int64 payload length, payload — see {!Lexkit.Binio}):

     1 config      iterations, max_candidates, max_passes, seed,
                   averaged, trainer, init
     2 labels      count, strings in interned-id order (written once;
                   every other section refers to them by id)
     3 rels        count, strings in interned-id order
   254 pad         0-7 zero bytes, emitted before each weight section
                   so that section's float run lands 8-byte aligned in
                   the file — what lets a loader map it as a float64
                   view instead of copying it
     4 pw          count n, the n packed keys (key-sorted), then the n
                   raw LE float weights: keys and values in separate
                   runs, so building the lookup index touches no value
                   pages
     5 un          like pw
     6 bias        like pw
     7 cand-global count, (label id, count)
     8 cand-unary  count, (rel id, label id, count)
     9 cand-pw     count, (packed key, label id, count)
   255 end         section count (pads included), then per section in
                   file order: tag byte, FNV checksum of its payload

   Per-section checksums are what let the mapped loader verify
   everything it copies to the heap eagerly while deferring the
   (page-faulting) float-payload checks until first use.

   All lists are sorted and pads are deterministic, so the writer is a
   canonical form: save → load → save round-trips byte-identically.

   Version 3 interleaves (key, weight) pairs in the weight sections,
   has no pads, and stores one whole-body checksum in the end section.
   Versions 1 and 2 are line-oriented text ("label <escaped>",
   "pw <int-key> <weight>", ... strings percent-escaped; version 2
   adds an "end <record-count>" trailer). All three still load, as
   heap copies. *)

let format_version = 4
let magic v = Printf.sprintf "pigeon-crf-model %d" v

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' | '\n' | '\r' | ' ' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match
       if s.[!i] = '%' && !i + 2 < n then
         int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2)
       else None
     with
    | Some c ->
        Buffer.add_char buf (Char.chr c);
        i := !i + 3
    | None ->
        Buffer.add_char buf s.[!i];
        incr i)
  done;
  Buffer.contents buf

let trainer_name = function
  | Fast.Structured -> "structured"
  | Fast.Pseudolikelihood -> "pl"
  | Fast.Pl_gradient -> "pl-gradient"
  | Fast.Mixed -> "mixed"

let trainer_of_name = function
  | "structured" -> Some Fast.Structured
  | "pl" -> Some Fast.Pseudolikelihood
  | "pl-gradient" -> Some Fast.Pl_gradient
  | "mixed" -> Some Fast.Mixed
  | _ -> None

let init_name = function
  | Fast.No_init -> "none"
  | Fast.Log_counts -> "log-counts"
  | Fast.Naive_bayes -> "naive-bayes"

let init_of_name = function
  | "none" -> Some Fast.No_init
  | "log-counts" -> Some Fast.Log_counts
  | "naive-bayes" -> Some Fast.Naive_bayes
  | _ -> None

(* Version-2 text writer, kept for compatibility fixtures (tests, and
   anyone pinning the text format). *)
let to_channel_v2 (model : Train.model) oc =
  let records = ref 0 in
  let p fmt =
    incr records;
    Printf.fprintf oc fmt
  in
  Printf.fprintf oc "%s\n" (magic 2);
  let c = model.Train.config in
  let inf = c.Train.inference in
  p "config %d %d %d %d %b %s %s\n" c.Train.iterations
    inf.Inference.max_candidates inf.Inference.max_passes c.Train.seed
    c.Train.averaged
    (trainer_name c.Train.trainer)
    (init_name c.Train.init);
  let d = Fast.dump model.Train.fast in
  List.iter (fun l -> p "label %s\n" (escape l)) d.Fast.d_labels;
  List.iter (fun r -> p "rel %s\n" (escape r)) d.Fast.d_rels;
  List.iter (fun (k, w) -> p "pw %d %.17g\n" k w) d.Fast.d_pw;
  List.iter (fun (k, w) -> p "un %d %.17g\n" k w) d.Fast.d_un;
  List.iter (fun (k, w) -> p "bias %d %.17g\n" k w) d.Fast.d_bias;
  List.iter
    (function
      | Candidates.E_global (l, n) -> p "cand-global %s %d\n" (escape l) n
      | Candidates.E_unary (r, l, n) ->
          p "cand-unary %s %s %d\n" (escape r) (escape l) n
      | Candidates.E_pairwise (k, l, n) ->
          p "cand-pw %s %s %d\n" (escape k) (escape l) n)
    (Candidates.entries (Lazy.force model.Train.candidates));
  Printf.fprintf oc "end %d\n" !records

let n_sections = 9
let pad_tag = 254

(* Version-3 binary writer, kept so the loaders' v3 compatibility path
   stays testable against freshly written files. *)
let to_string_v3 (model : Train.model) =
  let open Lexkit.Binio in
  let buf = Buffer.create (1 lsl 16) in
  let section tag fill =
    let payload = Buffer.create 1024 in
    fill payload;
    w_section buf ~tag payload
  in
  let c = model.Train.config in
  let inf = c.Train.inference in
  section 1 (fun b ->
      w_int b c.Train.iterations;
      w_int b inf.Inference.max_candidates;
      w_int b inf.Inference.max_passes;
      w_int b c.Train.seed;
      w_u8 b (if c.Train.averaged then 1 else 0);
      w_string b (trainer_name c.Train.trainer);
      w_string b (init_name c.Train.init));
  let d = Fast.dump model.Train.fast in
  let strings tag ss =
    section tag (fun b ->
        w_int b (List.length ss);
        List.iter (w_string b) ss)
  in
  strings 2 d.Fast.d_labels;
  strings 3 d.Fast.d_rels;
  let weights tag ws =
    section tag (fun b ->
        w_int b (List.length ws);
        List.iter
          (fun (k, w) ->
            w_int b k;
            w_float b w)
          ws)
  in
  weights 4 d.Fast.d_pw;
  weights 5 d.Fast.d_un;
  weights 6 d.Fast.d_bias;
  let global, unary, pairwise = Candidates.dump_ids (Lazy.force model.Train.candidates) in
  section 7 (fun b ->
      w_int b (List.length global);
      List.iter
        (fun (l, n) ->
          w_int b l;
          w_int b n)
        global);
  section 8 (fun b ->
      w_int b (List.length unary);
      List.iter
        (fun (r, l, n) ->
          w_int b r;
          w_int b l;
          w_int b n)
        unary);
  section 9 (fun b ->
      w_int b (List.length pairwise);
      List.iter
        (fun (k, l, n) ->
          w_int b k;
          w_int b l;
          w_int b n)
        pairwise);
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 64) in
  Buffer.add_string out (magic 3);
  Buffer.add_char out '\n';
  Buffer.add_string out body;
  let trailer = Buffer.create 24 in
  w_int trailer n_sections;
  w_int trailer (checksum body);
  w_section out ~tag:255 trailer;
  Buffer.contents out

let to_string (model : Train.model) =
  let open Lexkit.Binio in
  let buf = Buffer.create (1 lsl 16) in
  let magic_len = String.length (magic format_version) + 1 in
  let sums = ref [] in
  let section tag fill =
    let payload = Buffer.create 1024 in
    fill payload;
    sums := (tag, checksum (Buffer.contents payload)) :: !sums;
    w_section buf ~tag payload
  in
  (* Emit a pad section sized so the *next* section's payload starts
     8-byte aligned in the file: with [pos] the absolute offset of the
     pad's own header, the next payload starts at pos + 9 + p + 9. *)
  let align () =
    let pos = magic_len + Buffer.length buf in
    let p = (8 - ((pos + 18) mod 8)) mod 8 in
    section pad_tag (fun b ->
        for _ = 1 to p do
          w_u8 b 0
        done)
  in
  let c = model.Train.config in
  let inf = c.Train.inference in
  section 1 (fun b ->
      w_int b c.Train.iterations;
      w_int b inf.Inference.max_candidates;
      w_int b inf.Inference.max_passes;
      w_int b c.Train.seed;
      w_u8 b (if c.Train.averaged then 1 else 0);
      w_string b (trainer_name c.Train.trainer);
      w_string b (init_name c.Train.init));
  let d = Fast.dump model.Train.fast in
  let strings tag ss =
    section tag (fun b ->
        w_int b (List.length ss);
        List.iter (w_string b) ss)
  in
  strings 2 d.Fast.d_labels;
  strings 3 d.Fast.d_rels;
  let weights tag ws =
    (* [Fast.dump] emits each table in key order, so the section is
       canonical as-is; keys first, then the value run the mapped
       loader reads in place. *)
    align ();
    section tag (fun b ->
        w_int b (List.length ws);
        List.iter (fun (k, _) -> w_int b k) ws;
        List.iter (fun (_, w) -> w_float b w) ws)
  in
  weights 4 d.Fast.d_pw;
  weights 5 d.Fast.d_un;
  weights 6 d.Fast.d_bias;
  let global, unary, pairwise = Candidates.dump_ids (Lazy.force model.Train.candidates) in
  section 7 (fun b ->
      w_int b (List.length global);
      List.iter
        (fun (l, n) ->
          w_int b l;
          w_int b n)
        global);
  section 8 (fun b ->
      w_int b (List.length unary);
      List.iter
        (fun (r, l, n) ->
          w_int b r;
          w_int b l;
          w_int b n)
        unary);
  section 9 (fun b ->
      w_int b (List.length pairwise);
      List.iter
        (fun (k, l, n) ->
          w_int b k;
          w_int b l;
          w_int b n)
        pairwise);
  let out = Buffer.create (Buffer.length buf + 128) in
  Buffer.add_string out (magic format_version);
  Buffer.add_char out '\n';
  Buffer.add_buffer out buf;
  let entries = List.rev !sums in
  let trailer = Buffer.create 128 in
  w_int trailer (List.length entries);
  List.iter
    (fun (tag, sum) ->
      w_u8 trailer tag;
      w_int trailer sum)
    entries;
  w_section out ~tag:255 trailer;
  Buffer.contents out

let to_channel model oc = output_string oc (to_string model)

(* ---------- shared section-payload parsers ----------

   Each takes a [Binio.reader] positioned at the start of a section's
   payload; malformed data raises [Failure], which every caller
   converts to a [Corrupt_model] diagnostic. Shared between the v3/v4
   copy parsers and the v4 mapped loader. *)

let count_ what n =
  if n < 0 then Printf.ksprintf failwith "%s: negative count" what;
  n

let read_config r =
  let open Lexkit.Binio in
  let iterations = r_int r "iterations" in
  let max_candidates = r_int r "max_candidates" in
  let max_passes = r_int r "max_passes" in
  let seed = r_int r "seed" in
  let averaged = r_u8 r "averaged" <> 0 in
  let trainer =
    let s = r_string r "trainer" in
    match trainer_of_name s with
    | Some t -> t
    | None -> Printf.ksprintf failwith "unknown trainer %S" s
  in
  let init =
    let s = r_string r "init" in
    match init_of_name s with
    | Some i -> i
    | None -> Printf.ksprintf failwith "unknown init %S" s
  in
  {
    Train.iterations;
    inference =
      {
        Inference.max_candidates;
        max_passes;
        seed = Inference.default_config.Inference.seed;
      };
    seed;
    averaged;
    trainer;
    init;
    engine = Train.default_config.Train.engine;
  }

let read_strings r what =
  let open Lexkit.Binio in
  let n = count_ what (r_int r what) in
  List.init n (fun _ -> r_string r what)

let read_cand_global r =
  let open Lexkit.Binio in
  let n = count_ "cand-global" (r_int r "cand-global") in
  List.init n (fun _ ->
      let l = r_int r "cand-global" in
      (l, r_int r "cand-global"))

let read_cand_unary r =
  let open Lexkit.Binio in
  let n = count_ "cand-unary" (r_int r "cand-unary") in
  List.init n (fun _ ->
      let rel = r_int r "cand-unary" in
      let l = r_int r "cand-unary" in
      (rel, l, r_int r "cand-unary"))

let read_cand_pw r =
  let open Lexkit.Binio in
  let n = count_ "cand-pw" (r_int r "cand-pw") in
  List.init n (fun _ ->
      let k = r_int r "cand-pw" in
      let l = r_int r "cand-pw" in
      (k, l, r_int r "cand-pw"))

(* [ids] is deferred: the mapped loader parses (and checksums) the
   candidate sections only when inference first needs them. Structural
   damage surfacing inside the lazy body still reads as corruption,
   never a bare [Failure]. *)
let assemble ?source ~config ~fast ~ids () =
  let candidates =
    lazy
      (match
         let global, unary, pairwise = ids () in
         Candidates.of_ids ~symbols:(Fast.symbols fast) ~global ~unary
           ~pairwise
       with
      | c -> c
      | exception (Failure msg | Invalid_argument msg) ->
          raise
            (Lexkit.Diag.Error
               (Lexkit.Diag.make ?file:source Lexkit.Diag.Corrupt_model msg)))
  in
  { Train.weights = lazy (Fast.export_weights fast); candidates; config; fast }

let corrupt ?source fmt =
  Format.kasprintf
    (fun msg ->
      raise
        (Lexkit.Diag.Error
           (Lexkit.Diag.make ?file:source Lexkit.Diag.Corrupt_model msg)))
    fmt

(* [body] is everything after the magic line. Binio failures carry a
   byte offset into it; restore failures name the inconsistency. Both
   surface as [Corrupt_model] diagnostics — never exceptions. *)
let parse_v3 ?source body =
  match
    let open Lexkit.Binio in
    let r = reader body in
    let sect tag what fill =
      let stop = r_section r ~tag ~what in
      let v = fill () in
      end_section r ~stop ~what;
      v
    in
    let config = sect 1 "config" (fun () -> read_config r) in
    let labels = sect 2 "labels" (fun () -> read_strings r "labels") in
    let rels = sect 3 "rels" (fun () -> read_strings r "rels") in
    let weights tag what =
      sect tag what (fun () ->
          let n = count_ what (r_int r what) in
          List.init n (fun _ ->
              let k = r_int r what in
              let w = r_float r what in
              (k, w)))
    in
    let pw = weights 4 "pw" in
    let un = weights 5 "un" in
    let bias = weights 6 "bias" in
    let global = sect 7 "cand-global" (fun () -> read_cand_global r) in
    let unary = sect 8 "cand-unary" (fun () -> read_cand_unary r) in
    let pairwise = sect 9 "cand-pw" (fun () -> read_cand_pw r) in
    let body_len = offset r in
    sect 255 "end" (fun () ->
        let n = r_int r "section count" in
        if n <> n_sections then
          Printf.ksprintf failwith
            "section count mismatch: trailer says %d, format has %d" n
            n_sections;
        let sum = r_int r "checksum" in
        if sum <> checksum (String.sub body 0 body_len) then
          failwith "checksum mismatch: model data is corrupted");
    if not (at_end r) then failwith "trailing data after the model";
    let fast =
      Fast.restore
        { Fast.d_labels = labels; d_rels = rels; d_pw = pw; d_un = un; d_bias = bias }
    in
    assemble ?source ~config ~fast ~ids:(fun () -> (global, unary, pairwise)) ()
  with
  | model -> model
  | exception (Failure msg | Invalid_argument msg) ->
      corrupt ?source "corrupt binary model: %s" msg

(* The v4 copy parser: same result as the mapped loader, but every
   payload lands on the heap — the path taken by [load], by big-endian
   hosts, and by tools that mutate the model after loading. *)
let parse_v4 ?source body =
  match
    let open Lexkit.Binio in
    let r = reader body in
    let sums = ref [] in
    let sect tag what fill =
      let stop = r_section r ~tag ~what in
      let start = offset r in
      let v = fill stop in
      end_section r ~stop ~what;
      sums := (tag, checksum (String.sub body start (stop - start))) :: !sums;
      v
    in
    let pad what =
      sect pad_tag what (fun stop ->
          let n = stop - offset r in
          if n > 7 then
            Printf.ksprintf failwith "%s: oversized pad (%d bytes)" what n;
          r_skip r n what)
    in
    let config = sect 1 "config" (fun _ -> read_config r) in
    let labels = sect 2 "labels" (fun _ -> read_strings r "labels") in
    let rels = sect 3 "rels" (fun _ -> read_strings r "rels") in
    let weights tag what =
      pad (what ^ " pad");
      sect tag what (fun stop ->
          let n = count_ what (r_int r what) in
          let rem = stop - offset r in
          if rem / 16 <> n || rem mod 16 <> 0 then
            Printf.ksprintf failwith "%s: length mismatch for %d entries" what n;
          let keys = Array.init n (fun _ -> r_int r what) in
          List.init n (fun i -> (keys.(i), r_float r what)))
    in
    let pw = weights 4 "pw" in
    let un = weights 5 "un" in
    let bias = weights 6 "bias" in
    let global = sect 7 "cand-global" (fun _ -> read_cand_global r) in
    let unary = sect 8 "cand-unary" (fun _ -> read_cand_unary r) in
    let pairwise = sect 9 "cand-pw" (fun _ -> read_cand_pw r) in
    let stop = r_section r ~tag:255 ~what:"end" in
    let entries = List.rev !sums in
    let n = r_int r "section count" in
    if n <> List.length entries then
      Printf.ksprintf failwith
        "section count mismatch: trailer says %d, file has %d" n
        (List.length entries);
    List.iter
      (fun (tag, sum) ->
        let t = r_u8 r "trailer tag" in
        let s = r_int r "trailer checksum" in
        if t <> tag then
          Printf.ksprintf failwith
            "trailer tag mismatch: file section %d recorded as %d" tag t;
        if s <> sum then
          Printf.ksprintf failwith
            "checksum mismatch in section %d: model data is corrupted" tag)
      entries;
    end_section r ~stop ~what:"end";
    if not (at_end r) then failwith "trailing data after the model";
    let fast =
      Fast.restore
        { Fast.d_labels = labels; d_rels = rels; d_pw = pw; d_un = un; d_bias = bias }
    in
    assemble ?source ~config ~fast ~ids:(fun () -> (global, unary, pairwise)) ()
  with
  | model -> model
  | exception (Failure msg | Invalid_argument msg) ->
      corrupt ?source "corrupt binary model: %s" msg

(* Parse from a [next_line] pull function so channels and in-memory
   strings (the fuzz suite) share one code path. Every malformed input
   raises [Lexkit.Diag.Error] with kind [Corrupt_model] and the
   offending line number. *)
let parse ?source next_line =
  let line_no = ref 0 in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ?file:source
                ~pos:{ Lexkit.line = !line_no; col = 1; offset = 0 }
                Lexkit.Diag.Corrupt_model msg)))
      fmt
  in
  let read () =
    incr line_no;
    next_line ()
  in
  let int_ s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail "malformed integer %S" s
  in
  let float_ s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "malformed float %S" s
  in
  let bool_ s =
    match bool_of_string_opt s with
    | Some b -> b
    | None -> fail "malformed boolean %S" s
  in
  let version =
    match read () with
    | None -> fail "empty model file"
    | Some l when String.equal l (magic 1) -> 1
    | Some l when String.equal l (magic 2) -> 2
    | Some _ -> fail "bad magic (not a pigeon-crf-model file)"
  in
  let config = ref Train.default_config in
  let labels = ref [] and rels = ref [] in
  let pw = ref [] and un = ref [] and bias = ref [] in
  let cand = ref [] in
  let records = ref 0 in
  let finished = ref false in
  let record () =
    if !finished then fail "record after the \"end\" trailer";
    incr records
  in
  let rec go () =
    match read () with
    | None ->
        if version >= 2 && not !finished then
          fail "truncated model: missing \"end\" trailer"
    | Some line ->
        (match String.split_on_char ' ' line with
        | [] | [ "" ] -> ()
        | [ "end"; n ] when version >= 2 ->
            if !finished then fail "duplicate \"end\" trailer";
            let n = int_ n in
            if n <> !records then
              fail "record count mismatch: trailer says %d, file has %d" n
                !records;
            finished := true
        | [ "config"; it; mc; mp; seed; avg; tr; init ] ->
            record ();
            let trainer =
              match trainer_of_name tr with
              | Some t -> t
              | None -> fail "unknown trainer %S" tr
            in
            let init =
              match init_of_name init with
              | Some i -> i
              | None -> fail "unknown init %S" init
            in
            config :=
              {
                Train.iterations = int_ it;
                inference =
                  {
                    Inference.max_candidates = int_ mc;
                    max_passes = int_ mp;
                    seed = Inference.default_config.Inference.seed;
                  };
                seed = int_ seed;
                averaged = bool_ avg;
                trainer;
                init;
                (* Execution detail, not a model property: always the
                   default engine on restore. *)
                engine = Train.default_config.Train.engine;
              }
        | [ "label"; l ] ->
            record ();
            labels := unescape l :: !labels
        | [ "rel"; r ] ->
            record ();
            rels := unescape r :: !rels
        | [ "pw"; k; w ] ->
            record ();
            pw := (int_ k, float_ w) :: !pw
        | [ "un"; k; w ] ->
            record ();
            un := (int_ k, float_ w) :: !un
        | [ "bias"; k; w ] ->
            record ();
            bias := (int_ k, float_ w) :: !bias
        | [ "cand-global"; l; n ] ->
            record ();
            cand := Candidates.E_global (unescape l, int_ n) :: !cand
        | [ "cand-unary"; r; l; n ] ->
            record ();
            cand :=
              Candidates.E_unary (unescape r, unescape l, int_ n) :: !cand
        | [ "cand-pw"; k; l; n ] ->
            record ();
            cand :=
              Candidates.E_pairwise (unescape k, unescape l, int_ n) :: !cand
        | tok :: _ -> fail "unknown record %S" tok);
        go ()
  in
  go ();
  (* Weight keys index into arrays sized by the label/rel tables, so a
     mangled file can still die inside restore; surface that as a
     corrupt-model diagnostic rather than an exception. *)
  match
    let fast =
      Fast.restore
        {
          Fast.d_labels = List.rev !labels;
          d_rels = List.rev !rels;
          d_pw = !pw;
          d_un = !un;
          d_bias = !bias;
        }
    in
    {
      Train.weights = lazy (Fast.export_weights fast);
      (* Share the restored model's symbol table so candidate ids and
         weight keys agree. *)
      candidates = lazy (Candidates.of_entries ~symbols:(Fast.symbols fast) !cand);
      config = !config;
      fast;
    }
  with
  | model -> model
  | exception (Invalid_argument msg | Failure msg) ->
      fail "inconsistent model data: %s" msg

(* The magic line picks the parser: versions 3 and 4 are binary (they
   cannot be split on newlines), versions 1 and 2 are line-oriented
   text. *)
let parse_string ?source s =
  let nl = match String.index_opt s '\n' with Some i -> i | None -> String.length s in
  let head = String.sub s 0 nl in
  let body () =
    if nl >= String.length s then ""
    else String.sub s (nl + 1) (String.length s - nl - 1)
  in
  if String.equal head (magic 4) then parse_v4 ?source (body ())
  else if String.equal head (magic 3) then parse_v3 ?source (body ())
  else
    let rest = ref (String.split_on_char '\n' s) in
    let next () =
      match !rest with
      | [] -> None
      | l :: tl ->
          rest := tl;
          Some l
    in
    parse ?source next

let from_channel ?source ic = parse_string ?source (In_channel.input_all ic)

let of_string ?source s =
  Lexkit.protect ?file:source (fun () -> parse_string ?source s)

(* Temp-file + rename: a save interrupted at any point (crash, kill,
   full disk) can never leave a truncated model where the next daemon
   start would trip over it. *)
let save model path = Lexkit.write_file_atomic path (to_string model)

let load path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Lexkit.protect ~file:path (fun () -> from_channel ~source:path ic))

let load_exn path =
  match load path with
  | Ok model -> model
  | Error d -> raise (Lexkit.Diag.Error d)

(* ---------- training checkpoints ----------

   "pigeon-crf-checkpoint 1\n", then v3-style sections with one
   whole-body checksum in the end trailer (checkpoints are transient
   scratch state — nothing maps them, so the v4 alignment machinery
   would buy nothing):

     1 header    model config (as in the model's config section), then
                 the resume cursor: next_it, next_shard, n_shards,
                 jobs, and the averaged-perceptron step clock
     2 labels    3 rels     as in the model format
     4 pw  5 un  6 bias     count, (packed key, raw float) pairs
     7 pw_u  8 un_u  9 bias_u   the averaging accumulators, same shape
   255 end       section count, FNV checksum of the body

   Floats are raw IEEE-754 bits, so restore → continue is bit-exact.
   [n_shards] is stored to reject resuming against a re-sharded
   corpus; [jobs] because bit-identity only holds for a fixed job
   count — the caller decides whether a mismatch is an error. *)

let ckpt_magic = "pigeon-crf-checkpoint 1"
let ckpt_sections = 10

type checkpoint = {
  ck_config : Train.config;
  ck_next_it : int;
  ck_next_shard : int;
  ck_n_shards : int;
  ck_jobs : int;
  ck_fast : Fast.model;
}

let checkpoint_to_string ~config ~next_it ~next_shard ~n_shards ~jobs fast =
  let open Lexkit.Binio in
  let buf = Buffer.create (1 lsl 16) in
  let section tag fill =
    let payload = Buffer.create 1024 in
    fill payload;
    w_section buf ~tag payload
  in
  let f = Fast.dump_full fast in
  let c = config in
  let inf = c.Train.inference in
  section 1 (fun b ->
      w_int b c.Train.iterations;
      w_int b inf.Inference.max_candidates;
      w_int b inf.Inference.max_passes;
      w_int b c.Train.seed;
      w_u8 b (if c.Train.averaged then 1 else 0);
      w_string b (trainer_name c.Train.trainer);
      w_string b (init_name c.Train.init);
      w_int b next_it;
      w_int b next_shard;
      w_int b n_shards;
      w_int b jobs;
      w_int b f.Fast.f_steps);
  let d = f.Fast.f_weights in
  let strings tag ss =
    section tag (fun b ->
        w_int b (List.length ss);
        List.iter (w_string b) ss)
  in
  strings 2 d.Fast.d_labels;
  strings 3 d.Fast.d_rels;
  let weights tag ws =
    section tag (fun b ->
        w_int b (List.length ws);
        List.iter
          (fun (k, w) ->
            w_int b k;
            w_float b w)
          ws)
  in
  weights 4 d.Fast.d_pw;
  weights 5 d.Fast.d_un;
  weights 6 d.Fast.d_bias;
  weights 7 f.Fast.f_pw_u;
  weights 8 f.Fast.f_un_u;
  weights 9 f.Fast.f_bias_u;
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 64) in
  Buffer.add_string out ckpt_magic;
  Buffer.add_char out '\n';
  Buffer.add_string out body;
  let trailer = Buffer.create 24 in
  w_int trailer ckpt_sections;
  w_int trailer (checksum body);
  w_section out ~tag:255 trailer;
  Buffer.contents out

let checkpoint_save path ~config ~next_it ~next_shard ~n_shards ~jobs fast =
  Lexkit.write_file_atomic path
    (checkpoint_to_string ~config ~next_it ~next_shard ~n_shards ~jobs fast)

let parse_checkpoint ?source body =
  match
    let open Lexkit.Binio in
    let r = reader body in
    let sect tag what fill =
      let stop = r_section r ~tag ~what in
      let v = fill () in
      end_section r ~stop ~what;
      v
    in
    let config, next_it, next_shard, n_shards, jobs, steps =
      sect 1 "header" (fun () ->
          let config = read_config r in
          let next_it = r_int r "next_it" in
          let next_shard = r_int r "next_shard" in
          let n_shards = r_int r "n_shards" in
          let jobs = r_int r "jobs" in
          let steps = r_int r "steps" in
          if n_shards <= 0 then failwith "non-positive shard count";
          if next_shard < 0 || next_shard >= n_shards then
            Printf.ksprintf failwith "shard cursor %d outside [0, %d)"
              next_shard n_shards;
          if next_it < 0 || next_it > config.Train.iterations then
            Printf.ksprintf failwith "iteration cursor %d outside [0, %d]"
              next_it config.Train.iterations;
          if jobs <= 0 then failwith "non-positive job count";
          (config, next_it, next_shard, n_shards, jobs, steps))
    in
    let labels = sect 2 "labels" (fun () -> read_strings r "labels") in
    let rels = sect 3 "rels" (fun () -> read_strings r "rels") in
    let weights tag what =
      sect tag what (fun () ->
          let n = count_ what (r_int r what) in
          List.init n (fun _ ->
              let k = r_int r what in
              let w = r_float r what in
              (k, w)))
    in
    let pw = weights 4 "pw" in
    let un = weights 5 "un" in
    let bias = weights 6 "bias" in
    let pw_u = weights 7 "pw_u" in
    let un_u = weights 8 "un_u" in
    let bias_u = weights 9 "bias_u" in
    let body_len = offset r in
    sect 255 "end" (fun () ->
        let n = r_int r "section count" in
        if n <> ckpt_sections then
          Printf.ksprintf failwith
            "section count mismatch: trailer says %d, format has %d" n
            ckpt_sections;
        let sum = r_int r "checksum" in
        if sum <> checksum (String.sub body 0 body_len) then
          failwith "checksum mismatch: checkpoint data is corrupted");
    if not (at_end r) then failwith "trailing data after the checkpoint";
    let fast =
      Fast.restore_full
        {
          Fast.f_weights =
            { Fast.d_labels = labels; d_rels = rels; d_pw = pw; d_un = un;
              d_bias = bias };
          f_pw_u = pw_u;
          f_un_u = un_u;
          f_bias_u = bias_u;
          f_steps = steps;
        }
    in
    {
      ck_config = config;
      ck_next_it = next_it;
      ck_next_shard = next_shard;
      ck_n_shards = n_shards;
      ck_jobs = jobs;
      ck_fast = fast;
    }
  with
  | ck -> ck
  | exception (Failure msg | Invalid_argument msg) ->
      corrupt ?source "corrupt checkpoint: %s" msg

let checkpoint_of_string ?source s =
  Lexkit.protect ?file:source (fun () ->
      let nl =
        match String.index_opt s '\n' with
        | Some i -> i
        | None -> String.length s
      in
      if not (String.equal (String.sub s 0 nl) ckpt_magic) then
        corrupt ?source "bad magic (not a pigeon-crf-checkpoint file)";
      let body =
        if nl >= String.length s then ""
        else String.sub s (nl + 1) (String.length s - nl - 1)
      in
      parse_checkpoint ?source body)

let checkpoint_load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | s -> checkpoint_of_string ~source:path s

(* ---------- mapped loading ----------

   The structure walk below reads everything *except* the weight-value
   runs through the channel: headers, config, symbol tables, candidate
   ids, the weight keys (which become the heap probe index) and the
   checksum trailer. The value runs are skipped with [seek_in] — never
   read — and after the walk the file is mapped once and each table
   gets a [Bigarray] slice plus a verify closure that finishes the
   section checksum over the map on first use. So a load costs
   O(everything-but-the-floats), and the floats are the bulk of a
   trained model. *)

(* Environmental reasons not to map (wrong version, misalignment,
   big-endian host, mmap failure) downgrade to the copy loader;
   structural damage stays a hard [Corrupt_model]. *)
exception Downgrade of string

type weight_walk = {
  w_what : string;
  w_keys : int array;
  w_prefix : int Lazy.t;
      (* checksum over count+keys, to continue on the map; lazy so the
         load pays no checksum cost for the key run either — it folds
         in with the deferred value-run check on first use *)
  w_off : int;  (* absolute byte offset of the value run *)
  w_n : int;
  mutable w_expect : int;  (* full-section checksum from the trailer *)
}

(* A candidate section held as raw bytes: checksummed and parsed only
   when inference first needs candidates (they are ~half the non-float
   payload of a trained model). *)
type lazy_walk = {
  l_what : string;
  l_payload : string;
  mutable l_expect : int;
}

type section_walk =
  | Full of string * int  (* what, payload checksum *)
  | Wsec of weight_walk
  | Lsec of lazy_walk
(* the walk records (file tag, entry) in file order *)

let map_v4 path ic size =
  let open Lexkit.Binio in
  let ch_bytes n what =
    if n < 0 || n > size - pos_in ic then
      Printf.ksprintf failwith "truncated at byte %d (%s)" (pos_in ic) what;
    really_input_string ic n
  in
  let ch_u8 what = Char.code (ch_bytes 1 what).[0] in
  let ch_int what =
    let s = ch_bytes 8 what in
    let v = String.get_int64_le s 0 in
    let n = Int64.to_int v in
    if Int64.of_int n <> v then
      Printf.ksprintf failwith "integer out of range at byte %d (%s)"
        (pos_in ic - 8) what;
    n
  in
  let header what =
    let tag = ch_u8 what in
    let len = ch_int what in
    if len < 0 || len > size - pos_in ic then
      Printf.ksprintf failwith "truncated at byte %d (%s)" (pos_in ic) what;
    (tag, len)
  in
  let walk = ref [] in
  let small tag what parse =
    let t, len = header what in
    if t <> tag then
      Printf.ksprintf failwith "expected section %d (%s), found %d at byte %d"
        tag what t
        (pos_in ic - 9);
    let payload = ch_bytes len what in
    walk := (tag, Full (what, checksum payload)) :: !walk;
    let r = reader payload in
    let v = parse r in
    if not (at_end r) then
      Printf.ksprintf failwith
        "section %s length mismatch: payload ends at byte %d, header said %d"
        what (offset r) len;
    v
  in
  let pad what =
    let t, len = header what in
    if t <> pad_tag then
      Printf.ksprintf failwith "expected pad section before %s, found %d" what
        t;
    if len > 7 then
      Printf.ksprintf failwith "%s: oversized pad (%d bytes)" what len;
    let payload = ch_bytes len what in
    walk := (pad_tag, Full (what ^ " pad", checksum payload)) :: !walk
  in
  let wsect tag what =
    pad what;
    let t, len = header what in
    if t <> tag then
      Printf.ksprintf failwith "expected section %d (%s), found %d at byte %d"
        tag what t
        (pos_in ic - 9);
    let count_bytes = ch_bytes 8 what in
    let n = count_ what (Int64.to_int (String.get_int64_le count_bytes 0)) in
    if (len - 8) / 16 <> n || (len - 8) mod 16 <> 0 then
      Printf.ksprintf failwith "%s: length mismatch for %d entries" what n;
    let keys_bytes = ch_bytes (8 * n) what in
    let keys =
      Array.init n (fun i ->
          let v = String.get_int64_le keys_bytes (8 * i) in
          let k = Int64.to_int v in
          if Int64.of_int k <> v then
            Printf.ksprintf failwith "integer out of range (%s key)" what;
          k)
    in
    let prefix =
      lazy (checksum_add (checksum_add checksum_seed count_bytes) keys_bytes)
    in
    let off = pos_in ic in
    if off mod 8 <> 0 then
      raise (Downgrade (Printf.sprintf "%s float payload misaligned" what));
    seek_in ic (off + (8 * n));
    let w =
      { w_what = what; w_keys = keys; w_prefix = prefix; w_off = off; w_n = n;
        w_expect = 0 }
    in
    walk := (tag, Wsec w) :: !walk;
    w
  in
  let deferred tag what =
    let t, len = header what in
    if t <> tag then
      Printf.ksprintf failwith "expected section %d (%s), found %d at byte %d"
        tag what t
        (pos_in ic - 9);
    let l = { l_what = what; l_payload = ch_bytes len what; l_expect = 0 } in
    walk := (tag, Lsec l) :: !walk;
    l
  in
  let config = small 1 "config" read_config in
  let labels = small 2 "labels" (fun r -> read_strings r "labels") in
  let rels = small 3 "rels" (fun r -> read_strings r "rels") in
  let pw = wsect 4 "pw" in
  let un = wsect 5 "un" in
  let bias = wsect 6 "bias" in
  let global = deferred 7 "cand-global" in
  let unary = deferred 8 "cand-unary" in
  let pairwise = deferred 9 "cand-pw" in
  (* trailer: match tags and checksums against the walk, eagerly for
     copied sections, recorded for the mapped value runs *)
  let t, len = header "end" in
  if t <> 255 then
    Printf.ksprintf failwith "expected end section, found %d" t;
  let payload = ch_bytes len "end" in
  if pos_in ic <> size then failwith "trailing data after the model";
  let r = reader payload in
  let entries = List.rev !walk in
  let n = r_int r "section count" in
  if n <> List.length entries then
    Printf.ksprintf failwith "section count mismatch: trailer says %d, file has %d"
      n (List.length entries);
  List.iter
    (fun (tag, entry) ->
      let t = r_u8 r "trailer tag" in
      let sum = r_int r "trailer checksum" in
      if t <> tag then
        Printf.ksprintf failwith
          "trailer tag mismatch: file section %d recorded as %d" tag t;
      match entry with
      | Full (what, s) ->
          if s <> sum then
            Printf.ksprintf failwith
              "checksum mismatch in section %s: model data is corrupted" what
      | Wsec w -> w.w_expect <- sum
      | Lsec l -> l.l_expect <- sum)
    entries;
  if not (at_end r) then failwith "trailing data in the end section";
  let mm =
    try Lexkit.Mmap.map_floats path
    with Unix.Unix_error (e, _, _) ->
      raise (Downgrade (Printf.sprintf "mmap failed: %s" (Unix.error_message e)))
  in
  let tbl w =
    let vals = Lexkit.Mmap.sub mm ~off_bytes:w.w_off ~len:w.w_n in
    let expect = w.w_expect in
    let what = w.w_what and n = w.w_n in
    let prefix = w.w_prefix in
    let verify () =
      let sum =
        Lexkit.Mmap.checksum_floats ~h:(Lazy.force prefix) vals ~off:0 ~len:n
      in
      if sum <> expect then
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ~file:path Lexkit.Diag.Corrupt_model
                (Printf.sprintf
                   "checksum mismatch in section %s: mapped model data is corrupted"
                   what)))
    in
    { Fast.mt_keys = w.w_keys; mt_vals = vals; mt_verify = verify }
  in
  let fast =
    Fast.restore_mapped ~labels ~rels ~pw:(tbl pw) ~un:(tbl un) ~bias:(tbl bias)
  in
  (* checksummed + parsed on first inference, inside [assemble]'s
     corruption-containment wrapper *)
  let parse_cands l parse =
    if checksum l.l_payload <> l.l_expect then
      Printf.ksprintf failwith
        "checksum mismatch in section %s: model data is corrupted" l.l_what;
    let r = reader l.l_payload in
    let v = parse r in
    if not (at_end r) then
      Printf.ksprintf failwith
        "section %s length mismatch: payload ends at byte %d, header said %d"
        l.l_what (offset r)
        (String.length l.l_payload);
    v
  in
  let ids () =
    ( parse_cands global read_cand_global,
      parse_cands unary read_cand_unary,
      parse_cands pairwise read_cand_pw )
  in
  (assemble ~source:path ~config ~fast ~ids (), Lexkit.Mmap.size mm)

let load_mapped path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Lexkit.protect ~file:path (fun () ->
              let size = in_channel_length ic in
              let head =
                let want = magic format_version ^ "\n" in
                let n = String.length want in
                if size >= n && String.equal (really_input_string ic n) want
                then Some ()
                else None
              in
              let fallback note =
                seek_in ic 0;
                ( from_channel ~source:path ic,
                  Lexkit.Storage.Heap { note = Some note } )
              in
              match head with
              | Some () when not Sys.big_endian -> (
                  match map_v4 path ic size with
                  | model, bytes ->
                      (model, Lexkit.Storage.Mapped { bytes })
                  | exception Downgrade reason ->
                      fallback
                        (Printf.sprintf
                           "mapped load downgraded to a heap copy: %s" reason)
                  | exception (Failure msg | Invalid_argument msg) ->
                      corrupt ~source:path "corrupt binary model: %s" msg)
              | Some () ->
                  fallback
                    "mapped load downgraded to a heap copy: big-endian host"
              | None ->
                  fallback
                    (Printf.sprintf
                       "mapped load downgraded to a heap copy: not a v%d model"
                       format_version)))
