(* Line-oriented model format:
     pigeon-crf-model 2
     config <iterations> <max_candidates> <max_passes> <seed> <averaged> <trainer> <init>
     label <escaped>          (in interner id order)
     rel <escaped>
     pw <int-key> <weight>
     un <int-key> <weight>
     bias <int-key> <weight>
     cand-global <label> <count>
     cand-unary <rel> <label> <count>
     cand-pw <key> <label> <count>
     end <record-count>
   Strings are percent-escaped (tab, newline, CR, space, '%').

   The trailing [end] record carries the number of records written
   after the magic line, so a truncated or appended-to file is
   detected. Version 1 files (no trailer) are still accepted. *)

let format_version = 2
let magic v = Printf.sprintf "pigeon-crf-model %d" v

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' | '\n' | '\r' | ' ' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match
       if s.[!i] = '%' && !i + 2 < n then
         int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2)
       else None
     with
    | Some c ->
        Buffer.add_char buf (Char.chr c);
        i := !i + 3
    | None ->
        Buffer.add_char buf s.[!i];
        incr i)
  done;
  Buffer.contents buf

let trainer_name = function
  | Fast.Structured -> "structured"
  | Fast.Pseudolikelihood -> "pl"
  | Fast.Pl_gradient -> "pl-gradient"
  | Fast.Mixed -> "mixed"

let trainer_of_name = function
  | "structured" -> Some Fast.Structured
  | "pl" -> Some Fast.Pseudolikelihood
  | "pl-gradient" -> Some Fast.Pl_gradient
  | "mixed" -> Some Fast.Mixed
  | _ -> None

let init_name = function
  | Fast.No_init -> "none"
  | Fast.Log_counts -> "log-counts"
  | Fast.Naive_bayes -> "naive-bayes"

let init_of_name = function
  | "none" -> Some Fast.No_init
  | "log-counts" -> Some Fast.Log_counts
  | "naive-bayes" -> Some Fast.Naive_bayes
  | _ -> None

let to_channel (model : Train.model) oc =
  let records = ref 0 in
  let p fmt =
    incr records;
    Printf.fprintf oc fmt
  in
  Printf.fprintf oc "%s\n" (magic format_version);
  let c = model.Train.config in
  let inf = c.Train.inference in
  p "config %d %d %d %d %b %s %s\n" c.Train.iterations
    inf.Inference.max_candidates inf.Inference.max_passes c.Train.seed
    c.Train.averaged
    (trainer_name c.Train.trainer)
    (init_name c.Train.init);
  let d = Fast.dump model.Train.fast in
  List.iter (fun l -> p "label %s\n" (escape l)) d.Fast.d_labels;
  List.iter (fun r -> p "rel %s\n" (escape r)) d.Fast.d_rels;
  List.iter (fun (k, w) -> p "pw %d %.17g\n" k w) d.Fast.d_pw;
  List.iter (fun (k, w) -> p "un %d %.17g\n" k w) d.Fast.d_un;
  List.iter (fun (k, w) -> p "bias %d %.17g\n" k w) d.Fast.d_bias;
  List.iter
    (function
      | Candidates.E_global (l, n) -> p "cand-global %s %d\n" (escape l) n
      | Candidates.E_unary (r, l, n) ->
          p "cand-unary %s %s %d\n" (escape r) (escape l) n
      | Candidates.E_pairwise (k, l, n) ->
          p "cand-pw %s %s %d\n" (escape k) (escape l) n)
    (Candidates.entries model.Train.candidates);
  Printf.fprintf oc "end %d\n" !records

(* Parse from a [next_line] pull function so channels and in-memory
   strings (the fuzz suite) share one code path. Every malformed input
   raises [Lexkit.Diag.Error] with kind [Corrupt_model] and the
   offending line number. *)
let parse ?source next_line =
  let line_no = ref 0 in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ?file:source
                ~pos:{ Lexkit.line = !line_no; col = 1; offset = 0 }
                Lexkit.Diag.Corrupt_model msg)))
      fmt
  in
  let read () =
    incr line_no;
    next_line ()
  in
  let int_ s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail "malformed integer %S" s
  in
  let float_ s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "malformed float %S" s
  in
  let bool_ s =
    match bool_of_string_opt s with
    | Some b -> b
    | None -> fail "malformed boolean %S" s
  in
  let version =
    match read () with
    | None -> fail "empty model file"
    | Some l when String.equal l (magic 1) -> 1
    | Some l when String.equal l (magic 2) -> 2
    | Some _ -> fail "bad magic (not a pigeon-crf-model file)"
  in
  let config = ref Train.default_config in
  let labels = ref [] and rels = ref [] in
  let pw = ref [] and un = ref [] and bias = ref [] in
  let cand = ref [] in
  let records = ref 0 in
  let finished = ref false in
  let record () =
    if !finished then fail "record after the \"end\" trailer";
    incr records
  in
  let rec go () =
    match read () with
    | None ->
        if version >= 2 && not !finished then
          fail "truncated model: missing \"end\" trailer"
    | Some line ->
        (match String.split_on_char ' ' line with
        | [] | [ "" ] -> ()
        | [ "end"; n ] when version >= 2 ->
            if !finished then fail "duplicate \"end\" trailer";
            let n = int_ n in
            if n <> !records then
              fail "record count mismatch: trailer says %d, file has %d" n
                !records;
            finished := true
        | [ "config"; it; mc; mp; seed; avg; tr; init ] ->
            record ();
            let trainer =
              match trainer_of_name tr with
              | Some t -> t
              | None -> fail "unknown trainer %S" tr
            in
            let init =
              match init_of_name init with
              | Some i -> i
              | None -> fail "unknown init %S" init
            in
            config :=
              {
                Train.iterations = int_ it;
                inference =
                  {
                    Inference.max_candidates = int_ mc;
                    max_passes = int_ mp;
                    seed = Inference.default_config.Inference.seed;
                  };
                seed = int_ seed;
                averaged = bool_ avg;
                trainer;
                init;
                (* Execution detail, not a model property: always the
                   default engine on restore. *)
                engine = Train.default_config.Train.engine;
              }
        | [ "label"; l ] ->
            record ();
            labels := unescape l :: !labels
        | [ "rel"; r ] ->
            record ();
            rels := unescape r :: !rels
        | [ "pw"; k; w ] ->
            record ();
            pw := (int_ k, float_ w) :: !pw
        | [ "un"; k; w ] ->
            record ();
            un := (int_ k, float_ w) :: !un
        | [ "bias"; k; w ] ->
            record ();
            bias := (int_ k, float_ w) :: !bias
        | [ "cand-global"; l; n ] ->
            record ();
            cand := Candidates.E_global (unescape l, int_ n) :: !cand
        | [ "cand-unary"; r; l; n ] ->
            record ();
            cand :=
              Candidates.E_unary (unescape r, unescape l, int_ n) :: !cand
        | [ "cand-pw"; k; l; n ] ->
            record ();
            cand :=
              Candidates.E_pairwise (unescape k, unescape l, int_ n) :: !cand
        | tok :: _ -> fail "unknown record %S" tok);
        go ()
  in
  go ();
  (* Weight keys index into arrays sized by the label/rel tables, so a
     mangled file can still die inside restore; surface that as a
     corrupt-model diagnostic rather than an exception. *)
  match
    let fast =
      Fast.restore
        {
          Fast.d_labels = List.rev !labels;
          d_rels = List.rev !rels;
          d_pw = !pw;
          d_un = !un;
          d_bias = !bias;
        }
    in
    {
      Train.weights = Fast.export_weights fast;
      candidates = Candidates.of_entries !cand;
      config = !config;
      fast;
    }
  with
  | model -> model
  | exception (Invalid_argument msg | Failure msg) ->
      fail "inconsistent model data: %s" msg

let from_channel ?source ic =
  parse ?source (fun () ->
      match input_line ic with l -> Some l | exception End_of_file -> None)

let of_string ?source s =
  let rest = ref (String.split_on_char '\n' s) in
  let next () =
    match !rest with
    | [] -> None
    | l :: tl ->
        rest := tl;
        Some l
  in
  Lexkit.protect ?file:source (fun () -> parse ?source next)

let save model path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel model oc)

let load path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Lexkit.protect ~file:path (fun () -> from_channel ~source:path ic))

let load_exn path =
  match load path with
  | Ok model -> model
  | Error d -> raise (Lexkit.Diag.Error d)
