(* Version 3 (what [save] writes) is binary: the text magic line
   "pigeon-crf-model 3\n", then length-prefixed sections (tag byte,
   payload length, payload — see {!Lexkit.Binio}):

     1 config      iterations, max_candidates, max_passes, seed,
                   averaged, trainer, init
     2 labels      count, strings in interned-id order (written once;
                   every other section refers to them by id)
     3 rels        count, strings in interned-id order
     4 pw          count, (packed key, raw LE float weight), key-sorted
     5 un          count, (key, weight)
     6 bias        count, (key, weight)
     7 cand-global count, (label id, count)
     8 cand-unary  count, (rel id, label id, count)
     9 cand-pw     count, (packed key, label id, count)
   255 end         section count, FNV checksum of all section bytes

   All lists are sorted, so the writer is a canonical form:
   save → load → save round-trips byte-identically.

   Versions 1 and 2 are line-oriented text ("label <escaped>",
   "pw <int-key> <weight>", ... strings percent-escaped; version 2
   adds an "end <record-count>" trailer) and still load. *)

let format_version = 3
let magic v = Printf.sprintf "pigeon-crf-model %d" v

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' | '\n' | '\r' | ' ' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match
       if s.[!i] = '%' && !i + 2 < n then
         int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2)
       else None
     with
    | Some c ->
        Buffer.add_char buf (Char.chr c);
        i := !i + 3
    | None ->
        Buffer.add_char buf s.[!i];
        incr i)
  done;
  Buffer.contents buf

let trainer_name = function
  | Fast.Structured -> "structured"
  | Fast.Pseudolikelihood -> "pl"
  | Fast.Pl_gradient -> "pl-gradient"
  | Fast.Mixed -> "mixed"

let trainer_of_name = function
  | "structured" -> Some Fast.Structured
  | "pl" -> Some Fast.Pseudolikelihood
  | "pl-gradient" -> Some Fast.Pl_gradient
  | "mixed" -> Some Fast.Mixed
  | _ -> None

let init_name = function
  | Fast.No_init -> "none"
  | Fast.Log_counts -> "log-counts"
  | Fast.Naive_bayes -> "naive-bayes"

let init_of_name = function
  | "none" -> Some Fast.No_init
  | "log-counts" -> Some Fast.Log_counts
  | "naive-bayes" -> Some Fast.Naive_bayes
  | _ -> None

(* Version-2 text writer, kept for compatibility fixtures (tests, and
   anyone pinning the text format). *)
let to_channel_v2 (model : Train.model) oc =
  let records = ref 0 in
  let p fmt =
    incr records;
    Printf.fprintf oc fmt
  in
  Printf.fprintf oc "%s\n" (magic 2);
  let c = model.Train.config in
  let inf = c.Train.inference in
  p "config %d %d %d %d %b %s %s\n" c.Train.iterations
    inf.Inference.max_candidates inf.Inference.max_passes c.Train.seed
    c.Train.averaged
    (trainer_name c.Train.trainer)
    (init_name c.Train.init);
  let d = Fast.dump model.Train.fast in
  List.iter (fun l -> p "label %s\n" (escape l)) d.Fast.d_labels;
  List.iter (fun r -> p "rel %s\n" (escape r)) d.Fast.d_rels;
  List.iter (fun (k, w) -> p "pw %d %.17g\n" k w) d.Fast.d_pw;
  List.iter (fun (k, w) -> p "un %d %.17g\n" k w) d.Fast.d_un;
  List.iter (fun (k, w) -> p "bias %d %.17g\n" k w) d.Fast.d_bias;
  List.iter
    (function
      | Candidates.E_global (l, n) -> p "cand-global %s %d\n" (escape l) n
      | Candidates.E_unary (r, l, n) ->
          p "cand-unary %s %s %d\n" (escape r) (escape l) n
      | Candidates.E_pairwise (k, l, n) ->
          p "cand-pw %s %s %d\n" (escape k) (escape l) n)
    (Candidates.entries model.Train.candidates);
  Printf.fprintf oc "end %d\n" !records

let n_sections = 9

let to_string (model : Train.model) =
  let open Lexkit.Binio in
  let buf = Buffer.create (1 lsl 16) in
  let section tag fill =
    let payload = Buffer.create 1024 in
    fill payload;
    w_section buf ~tag payload
  in
  let c = model.Train.config in
  let inf = c.Train.inference in
  section 1 (fun b ->
      w_int b c.Train.iterations;
      w_int b inf.Inference.max_candidates;
      w_int b inf.Inference.max_passes;
      w_int b c.Train.seed;
      w_u8 b (if c.Train.averaged then 1 else 0);
      w_string b (trainer_name c.Train.trainer);
      w_string b (init_name c.Train.init));
  let d = Fast.dump model.Train.fast in
  let strings tag ss =
    section tag (fun b ->
        w_int b (List.length ss);
        List.iter (w_string b) ss)
  in
  strings 2 d.Fast.d_labels;
  strings 3 d.Fast.d_rels;
  let weights tag ws =
    (* [Fast.dump] emits each table in key order, so the section is
       canonical as-is. *)
    section tag (fun b ->
        w_int b (List.length ws);
        List.iter
          (fun (k, w) ->
            w_int b k;
            w_float b w)
          ws)
  in
  weights 4 d.Fast.d_pw;
  weights 5 d.Fast.d_un;
  weights 6 d.Fast.d_bias;
  let global, unary, pairwise = Candidates.dump_ids model.Train.candidates in
  section 7 (fun b ->
      w_int b (List.length global);
      List.iter
        (fun (l, n) ->
          w_int b l;
          w_int b n)
        global);
  section 8 (fun b ->
      w_int b (List.length unary);
      List.iter
        (fun (r, l, n) ->
          w_int b r;
          w_int b l;
          w_int b n)
        unary);
  section 9 (fun b ->
      w_int b (List.length pairwise);
      List.iter
        (fun (k, l, n) ->
          w_int b k;
          w_int b l;
          w_int b n)
        pairwise);
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 64) in
  Buffer.add_string out (magic format_version);
  Buffer.add_char out '\n';
  Buffer.add_string out body;
  let trailer = Buffer.create 24 in
  w_int trailer n_sections;
  w_int trailer (checksum body);
  w_section out ~tag:255 trailer;
  Buffer.contents out

let to_channel model oc = output_string oc (to_string model)

(* [body] is everything after the magic line. Binio failures carry a
   byte offset into it; restore failures name the inconsistency. Both
   surface as [Corrupt_model] diagnostics — never exceptions. *)
let parse_v3 ?source body =
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ?file:source Lexkit.Diag.Corrupt_model msg)))
      fmt
  in
  match
    let open Lexkit.Binio in
    let r = reader body in
    let sect tag what fill =
      let stop = r_section r ~tag ~what in
      let v = fill () in
      end_section r ~stop ~what;
      v
    in
    let count what n =
      if n < 0 then Printf.ksprintf failwith "%s: negative count" what;
      n
    in
    let config =
      sect 1 "config" (fun () ->
          let iterations = r_int r "iterations" in
          let max_candidates = r_int r "max_candidates" in
          let max_passes = r_int r "max_passes" in
          let seed = r_int r "seed" in
          let averaged = r_u8 r "averaged" <> 0 in
          let trainer =
            let s = r_string r "trainer" in
            match trainer_of_name s with
            | Some t -> t
            | None -> Printf.ksprintf failwith "unknown trainer %S" s
          in
          let init =
            let s = r_string r "init" in
            match init_of_name s with
            | Some i -> i
            | None -> Printf.ksprintf failwith "unknown init %S" s
          in
          {
            Train.iterations;
            inference =
              {
                Inference.max_candidates;
                max_passes;
                seed = Inference.default_config.Inference.seed;
              };
            seed;
            averaged;
            trainer;
            init;
            engine = Train.default_config.Train.engine;
          })
    in
    let strings tag what =
      sect tag what (fun () ->
          let n = count what (r_int r what) in
          List.init n (fun _ -> r_string r what))
    in
    let labels = strings 2 "labels" in
    let rels = strings 3 "rels" in
    let weights tag what =
      sect tag what (fun () ->
          let n = count what (r_int r what) in
          List.init n (fun _ ->
              let k = r_int r what in
              let w = r_float r what in
              (k, w)))
    in
    let pw = weights 4 "pw" in
    let un = weights 5 "un" in
    let bias = weights 6 "bias" in
    let global =
      sect 7 "cand-global" (fun () ->
          let n = count "cand-global" (r_int r "cand-global") in
          List.init n (fun _ ->
              let l = r_int r "cand-global" in
              (l, r_int r "cand-global")))
    in
    let unary =
      sect 8 "cand-unary" (fun () ->
          let n = count "cand-unary" (r_int r "cand-unary") in
          List.init n (fun _ ->
              let rel = r_int r "cand-unary" in
              let l = r_int r "cand-unary" in
              (rel, l, r_int r "cand-unary")))
    in
    let pairwise =
      sect 9 "cand-pw" (fun () ->
          let n = count "cand-pw" (r_int r "cand-pw") in
          List.init n (fun _ ->
              let k = r_int r "cand-pw" in
              let l = r_int r "cand-pw" in
              (k, l, r_int r "cand-pw")))
    in
    let body_len = offset r in
    sect 255 "end" (fun () ->
        let n = r_int r "section count" in
        if n <> n_sections then
          Printf.ksprintf failwith
            "section count mismatch: trailer says %d, format has %d" n
            n_sections;
        let sum = r_int r "checksum" in
        if sum <> checksum (String.sub body 0 body_len) then
          failwith "checksum mismatch: model data is corrupted");
    if not (at_end r) then failwith "trailing data after the model";
    let fast =
      Fast.restore
        { Fast.d_labels = labels; d_rels = rels; d_pw = pw; d_un = un; d_bias = bias }
    in
    {
      Train.weights = Fast.export_weights fast;
      candidates =
        Candidates.of_ids ~symbols:(Fast.symbols fast) ~global ~unary ~pairwise;
      config;
      fast;
    }
  with
  | model -> model
  | exception (Failure msg | Invalid_argument msg) ->
      fail "corrupt binary model: %s" msg

(* Parse from a [next_line] pull function so channels and in-memory
   strings (the fuzz suite) share one code path. Every malformed input
   raises [Lexkit.Diag.Error] with kind [Corrupt_model] and the
   offending line number. *)
let parse ?source next_line =
  let line_no = ref 0 in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ?file:source
                ~pos:{ Lexkit.line = !line_no; col = 1; offset = 0 }
                Lexkit.Diag.Corrupt_model msg)))
      fmt
  in
  let read () =
    incr line_no;
    next_line ()
  in
  let int_ s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail "malformed integer %S" s
  in
  let float_ s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "malformed float %S" s
  in
  let bool_ s =
    match bool_of_string_opt s with
    | Some b -> b
    | None -> fail "malformed boolean %S" s
  in
  let version =
    match read () with
    | None -> fail "empty model file"
    | Some l when String.equal l (magic 1) -> 1
    | Some l when String.equal l (magic 2) -> 2
    | Some _ -> fail "bad magic (not a pigeon-crf-model file)"
  in
  let config = ref Train.default_config in
  let labels = ref [] and rels = ref [] in
  let pw = ref [] and un = ref [] and bias = ref [] in
  let cand = ref [] in
  let records = ref 0 in
  let finished = ref false in
  let record () =
    if !finished then fail "record after the \"end\" trailer";
    incr records
  in
  let rec go () =
    match read () with
    | None ->
        if version >= 2 && not !finished then
          fail "truncated model: missing \"end\" trailer"
    | Some line ->
        (match String.split_on_char ' ' line with
        | [] | [ "" ] -> ()
        | [ "end"; n ] when version >= 2 ->
            if !finished then fail "duplicate \"end\" trailer";
            let n = int_ n in
            if n <> !records then
              fail "record count mismatch: trailer says %d, file has %d" n
                !records;
            finished := true
        | [ "config"; it; mc; mp; seed; avg; tr; init ] ->
            record ();
            let trainer =
              match trainer_of_name tr with
              | Some t -> t
              | None -> fail "unknown trainer %S" tr
            in
            let init =
              match init_of_name init with
              | Some i -> i
              | None -> fail "unknown init %S" init
            in
            config :=
              {
                Train.iterations = int_ it;
                inference =
                  {
                    Inference.max_candidates = int_ mc;
                    max_passes = int_ mp;
                    seed = Inference.default_config.Inference.seed;
                  };
                seed = int_ seed;
                averaged = bool_ avg;
                trainer;
                init;
                (* Execution detail, not a model property: always the
                   default engine on restore. *)
                engine = Train.default_config.Train.engine;
              }
        | [ "label"; l ] ->
            record ();
            labels := unescape l :: !labels
        | [ "rel"; r ] ->
            record ();
            rels := unescape r :: !rels
        | [ "pw"; k; w ] ->
            record ();
            pw := (int_ k, float_ w) :: !pw
        | [ "un"; k; w ] ->
            record ();
            un := (int_ k, float_ w) :: !un
        | [ "bias"; k; w ] ->
            record ();
            bias := (int_ k, float_ w) :: !bias
        | [ "cand-global"; l; n ] ->
            record ();
            cand := Candidates.E_global (unescape l, int_ n) :: !cand
        | [ "cand-unary"; r; l; n ] ->
            record ();
            cand :=
              Candidates.E_unary (unescape r, unescape l, int_ n) :: !cand
        | [ "cand-pw"; k; l; n ] ->
            record ();
            cand :=
              Candidates.E_pairwise (unescape k, unescape l, int_ n) :: !cand
        | tok :: _ -> fail "unknown record %S" tok);
        go ()
  in
  go ();
  (* Weight keys index into arrays sized by the label/rel tables, so a
     mangled file can still die inside restore; surface that as a
     corrupt-model diagnostic rather than an exception. *)
  match
    let fast =
      Fast.restore
        {
          Fast.d_labels = List.rev !labels;
          d_rels = List.rev !rels;
          d_pw = !pw;
          d_un = !un;
          d_bias = !bias;
        }
    in
    {
      Train.weights = Fast.export_weights fast;
      (* Share the restored model's symbol table so candidate ids and
         weight keys agree. *)
      candidates = Candidates.of_entries ~symbols:(Fast.symbols fast) !cand;
      config = !config;
      fast;
    }
  with
  | model -> model
  | exception (Invalid_argument msg | Failure msg) ->
      fail "inconsistent model data: %s" msg

(* The magic line picks the parser: version 3 is binary (it cannot be
   split on newlines), versions 1 and 2 are line-oriented text. *)
let parse_string ?source s =
  let nl = match String.index_opt s '\n' with Some i -> i | None -> String.length s in
  if String.equal (String.sub s 0 nl) (magic 3) then
    let body =
      if nl >= String.length s then ""
      else String.sub s (nl + 1) (String.length s - nl - 1)
    in
    parse_v3 ?source body
  else
    let rest = ref (String.split_on_char '\n' s) in
    let next () =
      match !rest with
      | [] -> None
      | l :: tl ->
          rest := tl;
          Some l
    in
    parse ?source next

let from_channel ?source ic = parse_string ?source (In_channel.input_all ic)

let of_string ?source s =
  Lexkit.protect ?file:source (fun () -> parse_string ?source s)

(* Temp-file + rename: a save interrupted at any point (crash, kill,
   full disk) can never leave a truncated model where the next daemon
   start would trip over it. *)
let save model path = Lexkit.write_file_atomic path (to_string model)

let load path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Lexkit.protect ~file:path (fun () -> from_channel ~source:path ic))

let load_exn path =
  match load path with
  | Ok model -> model
  | Error d -> raise (Lexkit.Diag.Error d)
