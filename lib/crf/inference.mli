(** MAP inference and top-k suggestion.

    MAP is greedy coordinate ascent (iterated conditional modes): start
    from the per-node best candidate given known neighbors, then sweep
    the unknown nodes in random order, re-assigning each to its best
    candidate given the current assignment, until a fixpoint (the total
    score is non-decreasing, which the property tests check). This is
    the same family of scored greedy search Nice2Predict uses.

    [top_k] is the paper's Nice2Predict extension (Section 5.1):
    candidate labels for one node ranked by local score under the MAP
    assignment of the rest of the graph. *)

type config = {
  max_candidates : int;  (** Candidate-set size per node. *)
  max_passes : int;  (** Sweep limit; fixpoint usually comes earlier. *)
  seed : int;
}

val default_config : config

val node_candidates :
  ?force:(int -> string list) ->
  config ->
  Candidates.t ->
  Graph.t ->
  Graph.factor list array ->
  int ->
  string list
(** Candidate labels for node [n] given [touching g]; labels forced by
    [force] are appended, deduplicated against the base set (duplicates
    within the forced list are kept). Exposed for tests. *)

val map_assignment :
  ?config:config ->
  ?engine:Fast.engine ->
  ?force_candidates:(int -> string list) ->
  Model.t ->
  Candidates.t ->
  Graph.t ->
  string array
(** [force_candidates] overrides the candidate set of selected nodes
    (used in training to make the gold label reachable); return [[]]
    to keep the default. [engine] (default [Incremental]) picks the ICM
    implementation; both produce byte-identical assignments
    (golden-tested), [Incremental] only rescores nodes whose
    neighborhood changed. *)

val top_k :
  ?config:config ->
  Model.t ->
  Candidates.t ->
  Graph.t ->
  string array ->
  node:int ->
  k:int ->
  (string * float) list
(** Candidates for [node] with their local scores, best first, under
    the given assignment for all other nodes. *)
