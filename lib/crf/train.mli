(** Training: averaged structured perceptron over factor graphs.

    Per training graph: run MAP inference with the current weights
    (with the gold labels injected into candidate sets so the target is
    reachable), then update each feature by the difference between its
    count under the gold assignment and under the prediction. Averaging
    uses the standard [w - u/C] trick, which makes the learned weights
    far more stable than the final-iterate weights.

    This replaces Nice2Predict's max-margin SGD; both are
    discriminative trainers that maximize the factor-graph score of the
    gold assignment against competing ones, which is all the paper's
    representation comparison needs. *)

type config = {
  iterations : int;
  inference : Inference.config;
  seed : int;
  averaged : bool;
  init : Fast.init_style;  (** Generative weight initialization. *)
  trainer : Fast.trainer;
  engine : Fast.engine;
      (** ICM implementation ([Incremental] by default); both engines
          produce byte-identical models and predictions. Not
          serialized — restored models use the default. *)
}

val default_config : config

type model = {
  weights : Model.t Lazy.t;
      (** Final (averaged) weights, decoded to the public feature
          table for inspection; prediction runs on the int-encoded
          {!Fast.model} below. Lazy because decoding to string
          features dominates model-load time and inference never
          reads it. *)
  candidates : Candidates.t Lazy.t;
      (** Lazy for the same reason: a mapped load defers parsing (and
          checksumming) the candidate sections to first use, and the
          trainer already has them in hand. *)
  config : config;
  fast : Fast.model;
}

val train : ?pool:Parallel.pool -> ?config:config -> Graph.t list -> model
(** Without [pool], the sequential trainer (byte-identical to previous
    releases). With one, training passes run in synchronized parallel
    rounds — see {!Fast.train} for the exact semantics. *)

val train_of_shards :
  ?pool:Parallel.pool ->
  ?config:config ->
  n_shards:int ->
  graphs_of_shard:(int -> Graph.t list) ->
  ?from:Fast.model * int * int ->
  ?on_shard:(it:int -> shard:int -> Fast.model -> unit) ->
  unit ->
  model
(** Out-of-core {!train}: graphs arrive shard by shard and at most one
    shard is in memory at a time (see {!Fast.train_stream} for the
    exact pass semantics and the bit-exact resume contract).
    [graphs_of_shard] must be stable — same graphs, same order, every
    call — which shard files on disk guarantee. [on_shard] is the
    checkpoint hook; [from] resumes from a {!Fast.restore_full}'d
    model and its (iteration, shard) cursor, rebuilding the candidate
    table from the shards against the restored symbol table. *)

val predict : model -> Graph.t -> string array
(** MAP assignment; known nodes keep their labels. *)

val predict_batch :
  ?pool:Parallel.pool -> model -> Graph.t list -> string array list
(** [List.map (predict model)], fanned out over [pool] (default: the
    shared pool). Identical output for every job count. *)

val top_k : model -> Graph.t -> node:int -> k:int -> (string * float) list
(** Top-k suggestions for one node under the MAP assignment of the
    rest of the graph. *)

val accuracy : ?pool:Parallel.pool -> model -> Graph.t list -> float
(** Fraction of unknown nodes whose predicted label equals gold, by
    exact string equality (task-level metrics apply the paper's
    case/separator-insensitive normalization on top of this).
    Prediction is batched over [pool]; the result does not depend on
    the job count. *)

val oov_rate : model -> Graph.t list -> float
(** Fraction of unknown-node gold labels never seen in training (the
    paper's out-of-vocabulary discussion, Section 5.3.1: 5–15% across
    their datasets). OoV nodes can never be predicted exactly. *)
