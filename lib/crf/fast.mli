(** Int-encoded training/inference engine — the hot path behind
    {!Train}.

    Labels and relations are interned to dense ids (a {!Symbols.t}
    shared with {!Candidates}, whose guarded interning keeps every id
    inside the packed-key bit budget); factors become parallel int
    arrays and weights live in int-keyed tables, so the inner ICM loop
    never hashes a string. {!Train} re-exports the final averaged
    weights as a string-keyed {!Model.t} for inspection, and delegates
    prediction here. *)

type egraph
(** A {!Graph.t} compiled against a model's symbol table. *)

type model

val create : ?symbols:Symbols.t -> unit -> model
(** The [Candidates.t] used with a model must share its symbol table
    ({!train} and the serializers maintain this). *)

val symbols : model -> Symbols.t

val encode : model -> Graph.t -> egraph
val graph_of : egraph -> Graph.t

val unknown_nodes : egraph -> int array
(** Node ids of the unknown nodes, in slot order (the order candidate
    arrays and {!Scorer} slots are indexed by). *)

type init_style =
  | No_init
  | Log_counts  (** w = scale * log(1 + count) for gold features. *)
  | Naive_bayes
      (** Log-counts normalized by the label prior (log P(f|l)-style). *)

type trainer =
  | Structured
      (** Classic structured perceptron: update against the joint MAP. *)
  | Pseudolikelihood
      (** Mistake-driven per-node updates with all other nodes clamped
          to gold — pairwise weights are estimated against correct
          neighborhoods (the pseudolikelihood view of CRF training);
          inference stays joint. The default: fastest and most accurate
          on the full-path representation. *)
  | Pl_gradient
      (** True pseudolikelihood gradient (softmax over candidates):
          frequency-consistent on inherently ambiguous labels, slower
          to converge. *)
  | Mixed
      (** Pseudolikelihood for all but the last two iterations, then
          structured fine-tuning against the model's own inference. *)

type engine =
  | Incremental
      (** Cached per-candidate factor contributions + dirty-worklist
          sweeps: only slots whose neighborhood changed are rescored.
          Exact — byte-identical to [Full_rescore] (golden-tested). The
          default. *)
  | Full_rescore
      (** The reference engine: every candidate of every node rescored
          from scratch each sweep. *)

type config = {
  max_candidates : int;
  max_passes : int;
  seed : int;
  iterations : int;
  averaged : bool;
  init : init_style;
      (** Generative weight initialization before perceptron refinement;
          features rarer than [init_min_count] are pruned from it. *)
  init_scale : float;
  init_min_count : int;
  trainer : trainer;
  engine : engine;  (** ICM implementation used by MAP inference. *)
}

val default_config : config

(** {2 Inference internals}

    Exposed for the kernel-equivalence tests and benchmarks; {!Train}
    callers never need these. *)

val node_score : model -> egraph -> int -> int array -> int -> float
(** [node_score m eg n assignment l]: score of labeling node [n] with
    [l] given every other node's label in [assignment] — bias, then
    pairwise factors in touch order, then unary factors. *)

val candidate_ids :
  config -> Candidates.t -> model -> egraph -> force_gold:bool ->
  int array array
(** Interned candidate label ids per unknown slot; the gold label is
    appended when [force_gold] and absent. *)

val map_assignment :
  ?cand:int array array ->
  config ->
  Candidates.t ->
  model ->
  egraph ->
  force_gold:bool ->
  seed:int ->
  int array
(** ICM MAP inference over the full node set (known nodes stay gold);
    dispatches on [config.engine]. *)

(** Incremental scoring cache behind {!engine} [Incremental]. After
    [create], for any slot [i], [scores t i] is bit-identical to
    mapping {!node_score} over that slot's candidates against the
    current assignment — [set_label] keeps that invariant by marking
    exactly the slots sharing a factor with the flipped one stale. *)
module Scorer : sig
  type t

  val create : model -> egraph -> int array array -> int array -> t
  (** [create m eg cand assignment]: [cand] in slot order (as from
      {!candidate_ids}); [assignment] is live — [set_label] writes it. *)

  val scores : t -> int -> float array
  (** Cached candidate scores for a slot, refreshed if stale. The
      returned array is the internal buffer: read, don't keep. *)

  val best : t -> int -> int
  (** Argmax label for a slot (first-wins on ties, current label when
      the candidate set is empty) — same tie-breaking as the
      full-rescore reference. *)

  val set_label : t -> int -> int -> unit
  (** [set_label t i l] assigns label [l] to slot [i] and marks its
      factor neighbors stale. No-op when [l] is already assigned. *)

  val is_dirty : t -> int -> bool
end

val train : ?pool:Parallel.pool -> config -> Candidates.t -> Graph.t list -> model
(** Averaged structured perceptron; candidate sets come from
    [Candidates] (string side) and are interned per node.

    Without [pool] (or with a 1-job pool) this is the sequential
    trainer, byte-for-byte. With a larger pool, each pass runs in
    synchronized rounds: every domain trains a contiguous slice of the
    round against the weights frozen at the round barrier, writing into
    a private delta; deltas merge in slice order and graphs keep the
    step numbers of the sequential pass, so a run is reproducible for a
    fixed job count (a synchronous-minibatch view of the same
    objective — not bitwise-equal to the sequential run). *)

val train_stream :
  ?pool:Parallel.pool ->
  config ->
  Candidates.t ->
  n_shards:int ->
  graphs_of_shard:(int -> Graph.t list) ->
  ?from:model * int * int ->
  ?on_shard:(it:int -> shard:int -> model -> unit) ->
  unit ->
  model
(** Out-of-core {!train}: the corpus arrives shard by shard through
    [graphs_of_shard] and at most one shard's graphs (plus their
    encodings and candidate caches) are live at a time — memory is
    O(model + largest shard), never O(corpus). Within a shard the pass
    is {!train}'s machinery verbatim; the shuffle is per
    (iteration, shard) with an rng derived from [(seed, it, shard)],
    so no rng state crosses a shard boundary.

    [on_shard ~it ~shard m] fires after each shard completes — the
    checkpoint hook. [from (m, it, shard)] resumes at that cursor
    ([m] from {!restore_full}; [it = iterations] with [shard = 0]
    resumes a run that finished its passes but died before
    finalization). Resume is bit-exact: a run checkpointed at any
    shard boundary and resumed from it produces the same model, byte
    for byte, as the uninterrupted run with the same job count —
    derived rngs mean nothing needs replaying, and {!dump_full}
    round-trips floats exactly. [Candidates] passed on resume must be
    rebuilt over the same shards against the restored model's symbol
    table (see {!Train.train_of_shards}).

    Averaging is finalized only on the final return, never in
    checkpoints. Raises [Invalid_argument] on an out-of-range cursor
    or [n_shards <= 0]. *)

val predict : config -> Candidates.t -> model -> Graph.t -> string array

val predict_batch :
  ?pool:Parallel.pool ->
  config ->
  Candidates.t ->
  model ->
  Graph.t list ->
  string array list
(** [predict_batch cfg cands m graphs] = [List.map (predict cfg cands m)
    graphs], with per-graph inference fanned out over [pool] (default:
    the shared {!Parallel.get_pool}). Output is identical for every job
    count. *)

val top_k :
  config ->
  Candidates.t ->
  model ->
  Graph.t ->
  node:int ->
  k:int ->
  (string * float) list

val export_weights : model -> Model.t
(** Decode the int-keyed tables into the public feature table. *)

(** {2 Serialization support} *)

type dump = {
  d_labels : string list;  (** in id order *)
  d_rels : string list;
  d_pw : (int * float) list;  (** packed key, weight; key-sorted *)
  d_un : (int * float) list;
  d_bias : (int * float) list;
}

val dump : model -> dump
val restore : dump -> model

type full_dump = {
  f_weights : dump;
  f_pw_u : (int * float) list;  (** averaging accumulators, key-sorted *)
  f_un_u : (int * float) list;
  f_bias_u : (int * float) list;
  f_steps : int;  (** averaged-perceptron step clock *)
}

val dump_full : model -> full_dump
(** {!dump} plus the averaging accumulators and step clock — the
    complete mid-training state. A model restored from this and
    trained onward makes bit-identical updates to one that never
    stopped; plain {!dump} only captures what inference needs. *)

val restore_full : full_dump -> model
(** Raises [Failure] on out-of-range keys or a negative step clock
    (the checkpoint loaders convert this to a corrupt-model
    diagnostic). *)

type mapped_table = {
  mt_keys : int array;  (** strictly increasing packed keys *)
  mt_vals : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (** view over the mapped file; [mt_vals.(j)] pairs with
          [mt_keys.(j)] *)
  mt_verify : unit -> unit;
      (** lazy checksum of the mapped payload; raises
          [Lexkit.Diag.Error] on mismatch *)
}

val restore_mapped :
  labels:string list ->
  rels:string list ->
  pw:mapped_table ->
  un:mapped_table ->
  bias:mapped_table ->
  model
(** Like {!restore}, but weight values stay in the mapped file — only
    symbol tables and probe indexes are heap-allocated. Key range
    checks run eagerly; float payloads are verified lazily at the
    first inference entry point. Raises [Failure] on out-of-range or
    non-canonical keys. *)

val storage : model -> [ `Heap | `Mapped ]

val verify_tables : model -> unit
(** Force the lazy checksums of mapped weight tables (no-op for heap
    models). Every inference entry point calls this. *)
