(* Counts are kept per interned id ([Symbols] guards the widths): inner
   tables map label id -> count ref, so a bump on a seen label is one
   lookup and an in-place increment — no find-then-replace double hash,
   and no string hashing or key concatenation anywhere on the hot path. *)

type counts = (int, int ref) Hashtbl.t

type t = {
  syms : Symbols.t;
  unary : (int, counts) Hashtbl.t;  (** rel id → label counts *)
  pairwise : (int, counts) Hashtbl.t;
      (** packed direction/rel/neighbor-label → label counts *)
  global : counts;
  mutable sorted_global : int array;
      (** lazily computed; count desc, label string asc *)
}

let symbols t = t.syms

(* dir gets one bit above the [Fast.pw_key] layout: rel in the middle
   24 bits, the neighbor label in the low 18. *)
let pack ~dir ~rel ~other = (dir lsl 42) lor (rel lsl 18) lor other
let unpack_dir key = key lsr 42
let unpack_rel key = (key lsr 18) land 0xFFFFFF
let unpack_other key = key land 0x3FFFF

let incr_count ?(by = 1) (tbl : counts) label =
  match Hashtbl.find_opt tbl label with
  | Some r -> r := !r + by
  | None -> Hashtbl.add tbl label (ref by)

let bump ?by tbl key label =
  let inner =
    match Hashtbl.find_opt tbl key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add tbl key h;
        h
  in
  incr_count ?by inner label

let create ?symbols () =
  {
    syms = (match symbols with Some s -> s | None -> Symbols.create ());
    unary = Hashtbl.create 1024;
    pairwise = Hashtbl.create 4096;
    global = Hashtbl.create 256;
    sorted_global = [||];
  }

(* One graph's counts, the unit of streaming: [build] is a fold of
   this over an in-memory corpus, and the out-of-core path calls it
   per shard-loaded graph so the whole corpus never has to coexist
   with the counts. Invalidate the ranking cache — counting after a
   query must not leave a stale global top behind. *)
let count_graph t (g : Graph.t) =
  let label = Symbols.label t.syms and rel_id = Symbols.rel t.syms in
  let gold = Graph.gold_assignment g in
  let gold_ids = Array.map label gold in
  Array.iter
    (fun (n : Graph.node) ->
      if n.Graph.kind = `Unknown then
        incr_count t.global (label n.Graph.gold))
    g.Graph.nodes;
  (* Every factor's relation is interned, used in a count or not:
     [Fast.encode] then finds every training rel already present,
     so rel ids are assigned in plain corpus factor order. *)
  List.iter
    (fun f ->
      match f with
      | Graph.Unary { n; rel; mult } ->
          let r = rel_id rel in
          if g.Graph.nodes.(n).Graph.kind = `Unknown then
            bump ~by:mult t.unary r gold_ids.(n)
      | Graph.Pairwise { a; b; rel; mult } ->
          let r = rel_id rel in
          if g.Graph.nodes.(a).Graph.kind = `Unknown then
            bump ~by:mult t.pairwise
              (pack ~dir:0 ~rel:r ~other:gold_ids.(b))
              gold_ids.(a);
          if g.Graph.nodes.(b).Graph.kind = `Unknown then
            bump ~by:mult t.pairwise
              (pack ~dir:1 ~rel:r ~other:gold_ids.(a))
              gold_ids.(b))
    g.Graph.factors;
  t.sorted_global <- [||]

let build ?symbols graphs =
  let t = create ?symbols () in
  List.iter (count_graph t) graphs;
  t

let num_labels t = Hashtbl.length t.global

(* Count desc, label string asc — an explicit total order (the id
   order is first-intern order, not alphabetical), so the ranking is
   independent of hash-table iteration. *)
let compare_ranked t (la, ca) (lb, cb) =
  let c = Int.compare cb ca in
  if c <> 0 then c
  else
    String.compare
      (Symbols.label_string t.syms la)
      (Symbols.label_string t.syms lb)

let sorted_global_ids t =
  if Array.length t.sorted_global = 0 && Hashtbl.length t.global > 0 then begin
    let n = Hashtbl.length t.global in
    let arr = Array.make n (0, 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun l c ->
        arr.(!i) <- (l, !c);
        incr i)
      t.global;
    Array.sort (compare_ranked t) arr;
    t.sorted_global <- Array.map fst arr
  end;
  t.sorted_global

let global_top_ids t k =
  let ids = sorted_global_ids t in
  let n = min k (Array.length ids) in
  Array.to_list (Array.sub ids 0 (max 0 n))

let global_top t k =
  List.map (Symbols.label_string t.syms) (global_top_ids t k)

let label_count t l =
  match Symbols.find_label t.syms l with
  | None -> 0
  | Some id -> (
      match Hashtbl.find_opt t.global id with Some r -> !r | None -> 0)

(* A reusable scoring slate for batch candidate generation: a flat
   per-label-id accumulator with an epoch stamp, so clearing between
   nodes is O(labels touched) and merging evidence is two array writes
   — no per-node hash table, no hashing at all. A slate serves one
   caller at a time; [Fast.candidate_ids] allocates one per graph, so
   parallel per-graph inference never shares one. *)
type slate = {
  mutable acc : int array;  (* evidence score per label id *)
  mutable stamp : int array;  (* epoch that last wrote [acc] *)
  mutable touched : int array;  (* label ids written this epoch *)
  mutable n_touched : int;
  mutable epoch : int;
}

let slate () =
  { acc = [||]; stamp = [||]; touched = [||]; n_touched = 0; epoch = 0 }

let slate_ready sl n =
  if Array.length sl.acc < n then begin
    let cap = max 16 n in
    sl.acc <- Array.make cap 0;
    sl.stamp <- Array.make cap 0;  (* 0 never equals a live epoch *)
    sl.touched <- Array.make cap 0
  end;
  sl.epoch <- sl.epoch + 1;
  sl.n_touched <- 0

let slate_add sl l c =
  if sl.stamp.(l) = sl.epoch then sl.acc.(l) <- sl.acc.(l) + c
  else begin
    sl.stamp.(l) <- sl.epoch;
    sl.acc.(l) <- c;
    sl.touched.(sl.n_touched) <- l;
    sl.n_touched <- sl.n_touched + 1
  end

let slate_begin sl t = slate_ready sl (Symbols.num_labels t.syms)

let merge_unary_id sl t rel =
  match Hashtbl.find_opt t.unary rel with
  | Some inner -> Hashtbl.iter (fun l c -> slate_add sl l !c) inner
  | None -> ()

let merge_pairwise_id sl t ~dir ~rel ~other =
  match Hashtbl.find_opt t.pairwise (pack ~dir ~rel ~other) with
  | Some inner -> Hashtbl.iter (fun l c -> slate_add sl l !c) inner
  | None -> ()

let slate_ranked sl t ~max =
  let ranked =
    Array.init sl.n_touched (fun i ->
        let l = sl.touched.(i) in
        (l, sl.acc.(l)))
  in
  Array.sort (compare_ranked t) ranked;
  let out = ref [] and count = ref 0 in
  let n_evid = if sl.n_touched < max then sl.n_touched else max in
  for i = 0 to n_evid - 1 do
    out := fst ranked.(i) :: !out;
    incr count
  done;
  (* Top up with globally frequent labels to give inference room to
     move. If this loop runs, every evidence label was emitted, so the
     epoch stamp doubles as the dedup set — no per-node table. *)
  let top = sorted_global_ids t in
  let i = ref 0 in
  while !count < max && !i < Array.length top do
    let l = top.(!i) in
    if sl.stamp.(l) <> sl.epoch then begin
      out := l :: !out;
      incr count
    end;
    incr i
  done;
  List.rev !out

let ids_for_node_into sl t (g : Graph.t) factors n ~max =
  slate_begin sl t;
  let known_other i =
    let nd = g.Graph.nodes.(i) in
    if nd.Graph.kind = `Known then Symbols.find_label t.syms nd.Graph.gold
    else None
  in
  List.iter
    (fun f ->
      match f with
      | Graph.Unary { n = m; rel; _ } when m = n -> (
          match Symbols.find_rel t.syms rel with
          | Some r -> merge_unary_id sl t r
          | None -> ())
      | Graph.Pairwise { a; b; rel; _ } when a = n -> (
          match (Symbols.find_rel t.syms rel, known_other b) with
          | Some r, Some other -> merge_pairwise_id sl t ~dir:0 ~rel:r ~other
          | _ -> ())
      | Graph.Pairwise { a; b; rel; _ } when b = n -> (
          match (Symbols.find_rel t.syms rel, known_other a) with
          | Some r, Some other -> merge_pairwise_id sl t ~dir:1 ~rel:r ~other
          | _ -> ())
      | _ -> ())
    factors;
  slate_ranked sl t ~max

let ids_for_node t g factors n ~max =
  ids_for_node_into (slate ()) t g factors n ~max

let for_node t g factors n ~max =
  List.map (Symbols.label_string t.syms) (ids_for_node t g factors n ~max)

type entry =
  | E_global of string * int
  | E_unary of string * string * int
  | E_pairwise of string * string * int

(* v1/v2 text files carry pairwise keys as "dir\x1frel\x1fother". *)
let pw_key_string t key =
  let dir = if unpack_dir key = 0 then "L" else "R" in
  String.concat "\x1f"
    [
      dir;
      Symbols.rel_string t.syms (unpack_rel key);
      Symbols.label_string t.syms (unpack_other key);
    ]

let pw_key_of_string t s =
  match String.split_on_char '\x1f' s with
  | [ dir; rel; other ] ->
      let dir =
        match dir with
        | "L" -> 0
        | "R" -> 1
        | _ -> failwith "candidate key: bad direction"
      in
      pack ~dir ~rel:(Symbols.rel t.syms rel) ~other:(Symbols.label t.syms other)
  | _ -> failwith "candidate key: expected dir\\x1frel\\x1flabel"

let entries t =
  let str = Symbols.label_string t.syms in
  let acc = ref [] in
  Hashtbl.iter (fun l c -> acc := E_global (str l, !c) :: !acc) t.global;
  Hashtbl.iter
    (fun rel inner ->
      let rel = Symbols.rel_string t.syms rel in
      Hashtbl.iter (fun l c -> acc := E_unary (rel, str l, !c) :: !acc) inner)
    t.unary;
  Hashtbl.iter
    (fun key inner ->
      let key = pw_key_string t key in
      Hashtbl.iter (fun l c -> acc := E_pairwise (key, str l, !c) :: !acc) inner)
    t.pairwise;
  !acc

(* v3 binary records carry raw interned ids (the file's label/rel
   tables define the id space). Sorted so the dump is a canonical form:
   save → load → save is byte-identical regardless of hash-table
   iteration order. *)
let dump_ids t =
  let flat tbl =
    let acc = ref [] in
    Hashtbl.iter
      (fun k inner -> Hashtbl.iter (fun l c -> acc := (k, l, !c) :: !acc) inner)
      tbl;
    List.sort compare !acc
  in
  let g = Hashtbl.fold (fun l c acc -> (l, !c) :: acc) t.global [] in
  (List.sort compare g, flat t.unary, flat t.pairwise)

let of_ids ~symbols ~global ~unary ~pairwise =
  let t = create ~symbols () in
  let nl = Symbols.num_labels t.syms and nr = Symbols.num_rels t.syms in
  let lab l =
    if l < 0 || l >= nl then
      Printf.ksprintf failwith "candidate label id %d out of range" l
    else l
  in
  let rel r =
    if r < 0 || r >= nr then
      Printf.ksprintf failwith "candidate relation id %d out of range" r
    else r
  in
  List.iter (fun (l, c) -> incr_count ~by:c t.global (lab l)) global;
  List.iter (fun (r, l, c) -> bump ~by:c t.unary (rel r) (lab l)) unary;
  List.iter
    (fun (key, l, c) ->
      if key < 0 || unpack_dir key > 1 then
        Printf.ksprintf failwith "candidate pairwise key %d out of range" key;
      ignore (rel (unpack_rel key));
      ignore (lab (unpack_other key));
      bump ~by:c t.pairwise key (lab l))
    pairwise;
  t

let of_entries ?symbols es =
  let t = create ?symbols () in
  let label = Symbols.label t.syms in
  List.iter
    (function
      | E_global (l, c) -> incr_count ~by:c t.global (label l)
      | E_unary (rel, l, c) -> bump ~by:c t.unary (Symbols.rel t.syms rel) (label l)
      | E_pairwise (key, l, c) -> bump ~by:c t.pairwise (pw_key_of_string t key) (label l))
    es;
  t
