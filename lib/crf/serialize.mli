(** Saving and loading trained CRF models.

    [save] writes the version-4 binary format: a text magic line, then
    length-prefixed sections — the label/rel string tables once, and
    every weight and candidate record as interned ids and raw
    little-endian floats. Weight sections store their keys and values
    in separate runs and are preceded by pad sections that 8-align the
    float run in the file, which is what lets {!load_mapped} serve the
    values straight out of an [mmap] instead of copying them. The
    writer sorts each section and pads deterministically, so it is a
    canonical form: save → load → save round-trips byte-identically.

    Version 3 (interleaved weight pairs, whole-body checksum) and
    versions 1 and 2 (the older line-oriented text format, values
    percent-escaped) still load; {!to_string_v3} and {!to_channel_v2}
    keep writers around for compatibility fixtures.

    Every format is self-checking (v2's [end <record-count>] trailer,
    v3/v4's section framing and checksum trailer), so truncation,
    trailing garbage and bit-flips are detected. Loaders never raise
    [Failure]; every malformed input is reported as a {!Lexkit.Diag.t}
    with kind [Corrupt_model] — a line number for text formats, a byte
    offset in the message for binary. *)

val save : Train.model -> string -> unit
(** [save model path] writes the model to [path]. Raises [Sys_error]
    on I/O failure. *)

val load : string -> (Train.model, Lexkit.Diag.t) result
(** Read a model back; [Error] carries an [Io_error] (unreadable file)
    or line-numbered [Corrupt_model] diagnostic. Never raises. *)

val load_exn : string -> Train.model
(** Like {!load} but raises {!Lexkit.Diag.Error} on failure. *)

val load_mapped :
  string -> (Train.model * Lexkit.Storage.t, Lexkit.Diag.t) result
(** Zero-copy load: walk the v4 structure reading only headers, symbol
    tables, candidate ids and weight *keys*, then map the file and
    wire the weight tables to [Bigarray] views over its float runs —
    O(everything-but-the-floats), and the floats are the bulk of a
    trained model. The mapped payloads are checksummed lazily, at the
    first inference entry point; a mismatch then raises
    {!Lexkit.Diag.Error} with kind [Corrupt_model].

    Environmental obstacles (v1–v3 file, misaligned payload,
    big-endian host, mmap failure) silently fall back to the copy
    loader and report [Storage.Heap] with a note saying why; only
    structural damage is an [Error]. The returned model is read-only
    in its weight tables. *)

val to_channel : Train.model -> out_channel -> unit

val to_string : Train.model -> string
(** The version-4 binary image [save]/[to_channel] write. *)

val to_string_v3 : Train.model -> string
(** Version-3 binary writer, for compatibility fixtures. *)

val to_channel_v2 : Train.model -> out_channel -> unit
(** Version-2 text writer, for compatibility fixtures. *)

val from_channel : ?source:string -> in_channel -> Train.model
(** Raises {!Lexkit.Diag.Error} (kind [Corrupt_model]) on malformed
    input; [source] names the input in diagnostics. *)

val of_string : ?source:string -> string -> (Train.model, Lexkit.Diag.t) result
(** Parse a model held in memory — the fuzz suite's entry point. *)

(** {2 Training checkpoints}

    Mid-training state for out-of-core runs ({!Train.train_of_shards}):
    the full trainer state from {!Fast.dump_full} — weights, averaging
    accumulators, step clock — plus the model config and the resume
    cursor. Floats round-trip as exact bits, so a resumed run makes
    bit-identical updates. Checkpoint files are self-checking like
    models (magic line, section framing, checksum trailer) and load
    through the same diagnostic discipline. *)

type checkpoint = {
  ck_config : Train.config;
  ck_next_it : int;  (** first iteration the resumed run executes *)
  ck_next_shard : int;  (** first shard of that iteration *)
  ck_n_shards : int;
      (** shard count at save time — resuming against a re-sharded
          corpus is rejected at load *)
  ck_jobs : int;
      (** job count of the saving run; bit-identity only holds when
          the resumed run matches it *)
  ck_fast : Fast.model;  (** via {!Fast.restore_full} *)
}

val checkpoint_save :
  string ->
  config:Train.config ->
  next_it:int ->
  next_shard:int ->
  n_shards:int ->
  jobs:int ->
  Fast.model ->
  unit
(** Atomically write a checkpoint (temp file + rename): a SIGKILL at
    any point leaves the previous checkpoint intact or the new one
    complete, never a torn file. Raises [Sys_error] on I/O failure. *)

val checkpoint_to_string :
  config:Train.config ->
  next_it:int ->
  next_shard:int ->
  n_shards:int ->
  jobs:int ->
  Fast.model ->
  string

val checkpoint_load : string -> (checkpoint, Lexkit.Diag.t) result
(** [Error] carries [Io_error] (unreadable) or [Corrupt_model]
    (truncated, mangled, bad cursor, or count/checksum mismatch). *)

val checkpoint_of_string :
  ?source:string -> string -> (checkpoint, Lexkit.Diag.t) result
