(** Saving and loading trained CRF models.

    A portable, line-oriented text format (one record per line, values
    percent-escaped), so models can be trained once and shipped — the
    way Nice2Predict serves a pre-trained model. Round-trips exactly: a
    loaded model produces byte-identical predictions (tested).

    The format is versioned and self-checking: version 2 files end with
    an [end <record-count>] trailer, so truncation and trailing garbage
    are detected. Version 1 files (no trailer) still load. Loaders
    never raise [Failure]; every malformed input is reported as a
    {!Lexkit.Diag.t} with kind [Corrupt_model] and a line number. *)

val save : Train.model -> string -> unit
(** [save model path] writes the model to [path]. Raises [Sys_error]
    on I/O failure. *)

val load : string -> (Train.model, Lexkit.Diag.t) result
(** Read a model back; [Error] carries an [Io_error] (unreadable file)
    or line-numbered [Corrupt_model] diagnostic. Never raises. *)

val load_exn : string -> Train.model
(** Like {!load} but raises {!Lexkit.Diag.Error} on failure. *)

val to_channel : Train.model -> out_channel -> unit

val from_channel : ?source:string -> in_channel -> Train.model
(** Raises {!Lexkit.Diag.Error} (kind [Corrupt_model]) on malformed
    input; [source] names the input in diagnostics. *)

val of_string : ?source:string -> string -> (Train.model, Lexkit.Diag.t) result
(** Parse a model held in memory — the fuzz suite's entry point. *)
