(** Saving and loading trained CRF models.

    [save] writes the version-3 binary format: a text magic line, then
    length-prefixed sections — the label/rel string tables once, and
    every weight and candidate record as interned ids and raw
    little-endian floats. The writer sorts each section, so it is a
    canonical form: save → load → save round-trips byte-identically.

    Versions 1 and 2 (the older line-oriented text format, values
    percent-escaped) still load; {!to_channel_v2} keeps a text writer
    around for compatibility fixtures.

    Every format is self-checking (v2's [end <record-count>] trailer,
    v3's section framing and trailer), so truncation, trailing garbage
    and bit-flips are detected. Loaders never raise [Failure]; every
    malformed input is reported as a {!Lexkit.Diag.t} with kind
    [Corrupt_model] — a line number for text formats, a byte offset in
    the message for binary. *)

val save : Train.model -> string -> unit
(** [save model path] writes the model to [path]. Raises [Sys_error]
    on I/O failure. *)

val load : string -> (Train.model, Lexkit.Diag.t) result
(** Read a model back; [Error] carries an [Io_error] (unreadable file)
    or line-numbered [Corrupt_model] diagnostic. Never raises. *)

val load_exn : string -> Train.model
(** Like {!load} but raises {!Lexkit.Diag.Error} on failure. *)

val to_channel : Train.model -> out_channel -> unit

val to_string : Train.model -> string
(** The version-3 binary image [save]/[to_channel] write. *)

val to_channel_v2 : Train.model -> out_channel -> unit
(** Version-2 text writer, for compatibility fixtures. *)

val from_channel : ?source:string -> in_channel -> Train.model
(** Raises {!Lexkit.Diag.Error} (kind [Corrupt_model]) on malformed
    input; [source] names the input in diagnostics. *)

val of_string : ?source:string -> string -> (Train.model, Lexkit.Diag.t) result
(** Parse a model held in memory — the fuzz suite's entry point. *)
