(** The label and relation vocabularies of one CRF model, shared
    between {!Candidates} and {!Fast} so both speak the same dense ids.

    Interning is guarded against the bit-packed weight-key widths: a
    label id must fit {!label_bits} bits and a relation id
    {!rel_bits}. Overflow raises [Failure] with a diagnostic naming
    the vocabulary, the offending string, and the budget — instead of
    letting packed keys silently collide. *)

type t

val label_bits : int
(** 18: labels occupy the low/high 18-bit fields of packed keys. *)

val rel_bits : int
(** 24: relations occupy the middle 24-bit field. *)

val max_labels : int
val max_rels : int
val create : unit -> t

val label : t -> string -> int
(** Intern (guarded). Ids are dense, in first-intern order. *)

val rel : t -> string -> int

val find_label : t -> string -> int option
(** Lookup without interning — what prediction-time code uses for
    strings that may never have been seen in training. *)

val find_rel : t -> string -> int option
val label_string : t -> int -> string
val rel_string : t -> int -> string
val num_labels : t -> int
val num_rels : t -> int

(** {2 Serialization} *)

type snapshot = { s_labels : string array; s_rels : string array }
(** Strings in id order; [of_snapshot] re-interns them so ids equal
    positions. *)

val snapshot : t -> snapshot

val of_snapshot : snapshot -> t
(** Raises [Invalid_argument] on duplicate strings or vocabularies
    exceeding the packed-key budgets. *)
