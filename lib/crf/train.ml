type config = {
  iterations : int;
  inference : Inference.config;
  seed : int;
  averaged : bool;
  init : Fast.init_style;
  trainer : Fast.trainer;
  engine : Fast.engine;
}

let default_config =
  {
    iterations = 6;
    inference = Inference.default_config;
    seed = 42;
    averaged = true;
    init = Fast.Log_counts;
    trainer = Fast.Pseudolikelihood;
    engine = Fast.Incremental;
  }

type model = {
  weights : Model.t Lazy.t;
      (* Decoding the int-keyed tables to string features costs more
         than the entire binary load; inference never touches it, so
         it is deferred until something actually inspects weights. *)
  candidates : Candidates.t Lazy.t;
      (* Same reason: a mapped load defers parsing (and checksumming)
         the candidate sections to first use; the trainer already has
         them in hand. *)
  config : config;
  fast : Fast.model;
}

let fast_config config =
  {
    Fast.default_config with
    Fast.max_candidates = config.inference.Inference.max_candidates;
    max_passes = config.inference.Inference.max_passes;
    seed = config.inference.Inference.seed;
    iterations = config.iterations;
    averaged = config.averaged;
    init = config.init;
    trainer = config.trainer;
    engine = config.engine;
  }

let train ?pool ?(config = default_config) graphs =
  let candidates = Candidates.build graphs in
  let fast = Fast.train ?pool (fast_config config) candidates graphs in
  {
    weights = lazy (Fast.export_weights fast);
    candidates = lazy candidates;
    config;
    fast;
  }

(* Out-of-core [train]: candidate counting and every training pass
   stream shard by shard. The candidate table is rebuilt from the
   shards on every call (fresh or resumed) rather than checkpointed:
   counting is one cheap pass, and rebuilding against the restored
   symbol table re-interns the same strings in the same order, so all
   ids — and therefore all packed weight keys — line up with the
   checkpoint by construction. *)
let train_of_shards ?pool ?(config = default_config) ~n_shards
    ~graphs_of_shard ?from ?on_shard () =
  let symbols =
    match from with Some (m, _, _) -> Some (Fast.symbols m) | None -> None
  in
  let candidates = Candidates.create ?symbols () in
  for s = 0 to n_shards - 1 do
    List.iter (Candidates.count_graph candidates) (graphs_of_shard s)
  done;
  let fast =
    Fast.train_stream ?pool (fast_config config) candidates ~n_shards
      ~graphs_of_shard ?from ?on_shard ()
  in
  {
    weights = lazy (Fast.export_weights fast);
    candidates = lazy candidates;
    config;
    fast;
  }

let predict model g =
  Fast.predict (fast_config model.config) (Lazy.force model.candidates) model.fast g

let predict_batch ?pool model graphs =
  Fast.predict_batch ?pool (fast_config model.config) (Lazy.force model.candidates)
    model.fast graphs

let top_k model g ~node ~k =
  Fast.top_k (fast_config model.config) (Lazy.force model.candidates) model.fast g ~node ~k

let accuracy ?pool model graphs =
  let preds = predict_batch ?pool model graphs in
  let correct = ref 0 and total = ref 0 in
  List.iter2
    (fun g pred ->
      let gold = Graph.gold_assignment g in
      List.iter
        (fun n ->
          incr total;
          if String.equal pred.(n) gold.(n) then incr correct)
        (Graph.unknown_ids g))
    graphs preds;
  if !total = 0 then 0. else float_of_int !correct /. float_of_int !total

let oov_rate model graphs =
  let oov = ref 0 and total = ref 0 in
  List.iter
    (fun g ->
      let gold = Graph.gold_assignment g in
      List.iter
        (fun n ->
          incr total;
          if Candidates.label_count (Lazy.force model.candidates) gold.(n) = 0 then incr oov)
        (Graph.unknown_ids g))
    graphs;
  if !total = 0 then 0. else float_of_int !oov /. float_of_int !total
