(** Candidate generation for MAP inference.

    Nice2Predict-style pruning: instead of scoring the full label
    vocabulary at every node, inference considers labels that
    co-occurred in training with the node's unary relations, or with a
    (relation, known-neighbor-label) pair, topped up with the globally
    most frequent labels.

    Counts are stored per interned label/relation id (see {!Symbols});
    {!Fast} shares the same table so candidate ids flow into the
    int-keyed engine without re-interning. The string-returning
    functions resolve through the table and exist for the string-side
    reference engine and serialization. *)

type t

val build : ?symbols:Symbols.t -> Graph.t list -> t
(** Count co-occurrences over gold-labelled training graphs, interning
    gold labels and relations into [symbols] (fresh when omitted) in
    corpus order. *)

val create : ?symbols:Symbols.t -> unit -> t
(** An empty table, for streaming construction: feed graphs through
    {!count_graph} as they come off disk. [build] = [create] + a fold
    of {!count_graph}, so a streamed build over the same graphs in the
    same order is identical. *)

val count_graph : t -> Graph.t -> unit
(** Fold one graph's gold co-occurrences into the table — the
    out-of-core counting pass's unit. Safe to interleave with queries
    (the ranking cache is invalidated), though normal use counts
    everything first. *)

val symbols : t -> Symbols.t

val num_labels : t -> int

val global_top : t -> int -> string list
(** The [k] most frequent unknown-node labels in training; ties break
    alphabetically, so the ranking is hash-order independent. *)

val global_top_ids : t -> int -> int list

val for_node :
  t -> Graph.t -> Graph.factor list -> int -> max:int -> string list
(** [for_node t g touching n ~max] — candidate labels for node [n],
    most promising first, deduplicated, at most [max]. Only [`Known]
    neighbors contribute pairwise evidence (gold labels of unknown
    neighbors are never consulted). Never empty if training data was
    nonempty. *)

val ids_for_node :
  t -> Graph.t -> Graph.factor list -> int -> max:int -> int list
(** {!for_node} as interned label ids (same labels, same order). *)

type slate
(** A reusable per-label scoring buffer for batch candidate
    generation: flat arrays indexed by interned label id, cleared in
    O(labels touched) via an epoch stamp. One slate serves one caller
    at a time — allocate one per batch (as {!Fast} does per graph),
    never share across domains. *)

val slate : unit -> slate

val ids_for_node_into :
  slate -> t -> Graph.t -> Graph.factor list -> int -> max:int -> int list
(** {!ids_for_node}, accumulating evidence in [sl] instead of a fresh
    per-call table. Same labels, same order. *)

(** Id-level slate protocol, for callers (like {!Fast}) that already
    hold resolved rel and gold-label ids: [slate_begin], then any mix
    of [merge_*_id], then [slate_ranked]. Produces exactly what
    {!ids_for_node} would for the same evidence — merge order does not
    matter, ranking is a strict total order (count desc, label asc). *)

val slate_begin : slate -> t -> unit

val merge_unary_id : slate -> t -> int -> unit
(** Merge the co-occurrence counts of a unary relation id. *)

val merge_pairwise_id : slate -> t -> dir:int -> rel:int -> other:int -> unit
(** Merge counts for a pairwise factor: [dir] 0 when the scored node
    is the [a] endpoint, 1 when it is [b]; [other] is the interned
    gold label of the known neighbor. *)

val slate_ranked : slate -> t -> max:int -> int list
(** Rank merged evidence and top up with globally frequent labels. *)

val label_count : t -> string -> int

(** {2 Serialization support} *)

type entry =
  | E_global of string * int  (** label, count *)
  | E_unary of string * string * int  (** rel, label, count *)
  | E_pairwise of string * string * int  (** packed key, label, count *)

val entries : t -> entry list

val of_entries : ?symbols:Symbols.t -> entry list -> t
(** Rebuild from entries, interning into [symbols] — pass the model's
    table so restored candidate ids match restored weight keys. Raises
    [Failure] on a malformed pairwise key. *)

val dump_ids :
  t -> (int * int) list * (int * int * int) list * (int * int * int) list
(** (global (label, count), unary (rel, label, count), pairwise
    (packed key, label, count)) as raw interned ids, each list sorted —
    a canonical form, so the v3 binary writer is byte-deterministic. *)

val of_ids :
  symbols:Symbols.t ->
  global:(int * int) list ->
  unary:(int * int * int) list ->
  pairwise:(int * int * int) list ->
  t
(** Inverse of {!dump_ids} against an already-restored symbol table.
    Raises [Failure] if any id falls outside the table — a mangled v3
    file surfaces as a corrupt-model diagnostic, not an array error. *)
