type config = { max_candidates : int; max_passes : int; seed : int }

let default_config = { max_candidates = 24; max_passes = 8; seed = 17 }

let shuffle rng arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let node_candidates ?(force = fun _ -> []) cfg cands g touching n =
  match force n with
  | [] -> Candidates.for_node cands g touching.(n) n ~max:cfg.max_candidates
  | forced ->
      (* Forced labels (the gold during training) are *appended*: they
         must be reachable, but must not win score ties — with fresh
         zero weights everything ties, and a prepended gold would make
         every training prediction trivially correct, so the perceptron
         would never update. Dedup is against [base] only (a hashed
         set, not the old O(|base|) scan per forced label); duplicates
         within [forced] itself are kept, as before. *)
      let base =
        Candidates.for_node cands g touching.(n) n ~max:cfg.max_candidates
      in
      let in_base = Hashtbl.create 64 in
      List.iter (fun l -> Hashtbl.replace in_base l ()) base;
      base @ List.filter (fun l -> not (Hashtbl.mem in_base l)) forced

(* The sweep loop shared by both engines lives inline below; the
   incremental engine mirrors {!Fast.Scorer} on the string side. Each
   unknown slot caches one score contribution per (candidate, factor)
   pair plus the label each pairwise column was computed against; a
   refresh recomputes only columns whose neighbor label changed and
   resums in [Model.node_score]'s exact operation order (bias, then
   factors in touching-list order), so cached scores are bit-identical
   to a fresh rescore. Staleness is checked by physical equality —
   content-safe, since a physically different but equal label recomputes
   to the same float. *)
let map_assignment ?(config = default_config) ?(engine = Fast.Incremental)
    ?force_candidates model cands (g : Graph.t) =
  let rng = Random.State.make [| config.seed |] in
  let touching = Graph.touching g in
  let unknowns = Array.of_list (Graph.unknown_ids g) in
  let default =
    match Candidates.global_top cands 1 with [ l ] -> l | _ -> "unknown"
  in
  let assignment = Graph.initial_assignment g ~default in
  let cand_cache =
    Array.map
      (fun n -> node_candidates ?force:force_candidates config cands g touching n)
      unknowns
  in
  let order = Array.init (Array.length unknowns) Fun.id in
  let changed = ref true and passes = ref 0 in
  (match engine with
  | Fast.Full_rescore ->
      let best_for i n =
        let cs = cand_cache.(i) in
        let best = ref assignment.(n) and best_score = ref neg_infinity in
        List.iter
          (fun l ->
            let s = Model.node_score model g touching.(n) n assignment ~label:l in
            if s > !best_score then begin
              best_score := s;
              best := l
            end)
          cs;
        !best
      in
      (* Initial greedy assignment, then sweeps to fixpoint. *)
      Array.iteri (fun i n -> assignment.(n) <- best_for i n) unknowns;
      while !changed && !passes < config.max_passes do
        changed := false;
        incr passes;
        shuffle rng order;
        Array.iter
          (fun i ->
            let n = unknowns.(i) in
            let l = best_for i n in
            if not (String.equal l assignment.(n)) then begin
              assignment.(n) <- l;
              changed := true
            end)
          order
      done
  | Fast.Incremental ->
      let k = Array.length unknowns in
      let slot_of = Array.make (Array.length g.Graph.nodes) (-1) in
      Array.iteri (fun s n -> slot_of.(n) <- s) unknowns;
      let cand = Array.map Array.of_list cand_cache in
      (* Never physically equal to any assignment label. *)
      let sentinel = Bytes.unsafe_to_string (Bytes.make 1 '\000') in
      let fac = Array.make k [||]
      and other = Array.make k [||]
      and nbr = Array.make k [||]
      and contrib = Array.make k [||]
      and seen = Array.make k [||]
      and bias_c = Array.make k [||]
      and sc = Array.make k [||]
      and ncols = Array.make k 0 in
      let dirty = Array.make k true in
      for i = 0 to k - 1 do
        let n = unknowns.(i) in
        let fs = Array.of_list touching.(n) in
        let nc = Array.length cand.(i) in
        let cols = Array.length fs in
        fac.(i) <- fs;
        ncols.(i) <- cols;
        other.(i) <-
          Array.map
            (function
              | Graph.Pairwise { a; b; _ } -> if a = n then b else a
              | Graph.Unary _ -> -1)
            fs;
        contrib.(i) <- Array.make (nc * cols) 0.;
        seen.(i) <- Array.make cols sentinel;
        bias_c.(i) <-
          Array.map (fun l -> Model.get model (Model.bias_feat ~l)) cand.(i);
        sc.(i) <- Array.make nc 0.;
        (* Unary columns depend only on the candidate label (the factor
           node *is* this node): fill once. *)
        let row = contrib.(i) in
        Array.iteri
          (fun j f ->
            match f with
            | Graph.Unary { rel; mult; _ } ->
                let multf = float_of_int mult in
                for c = 0 to nc - 1 do
                  row.((c * cols) + j) <-
                    multf
                    *. Model.get model (Model.unary_feat ~l:cand.(i).(c) ~rel)
                done
            | Graph.Pairwise _ -> ())
          fs;
        let acc = ref [] in
        Array.iter
          (fun o ->
            if o >= 0 then begin
              let s = slot_of.(o) in
              if s >= 0 then acc := s :: !acc
            end)
          other.(i);
        nbr.(i) <- Array.of_list (List.sort_uniq Int.compare !acc)
      done;
      let refresh i =
        let n = unknowns.(i) in
        let cs = cand.(i) in
        let nc = Array.length cs in
        let cols = ncols.(i) in
        let row = contrib.(i)
        and sn = seen.(i)
        and ot = other.(i)
        and fs = fac.(i) in
        for j = 0 to cols - 1 do
          let o = ot.(j) in
          if o >= 0 then begin
            let cur = assignment.(o) in
            if cur != sn.(j) then begin
              sn.(j) <- cur;
              match fs.(j) with
              | Graph.Pairwise { a; rel; mult; _ } ->
                  let multf = float_of_int mult in
                  if a = n then
                    for c = 0 to nc - 1 do
                      row.((c * cols) + j) <-
                        multf
                        *. Model.get model
                             (Model.pairwise_feat ~la:cs.(c) ~rel ~lb:cur)
                    done
                  else
                    for c = 0 to nc - 1 do
                      row.((c * cols) + j) <-
                        multf
                        *. Model.get model
                             (Model.pairwise_feat ~la:cur ~rel ~lb:cs.(c))
                    done
              | Graph.Unary _ -> ()
            end
          end
        done;
        let bias = bias_c.(i) and scores = sc.(i) in
        for c = 0 to nc - 1 do
          let s = ref bias.(c) in
          let base = c * cols in
          for j = 0 to cols - 1 do
            s := !s +. row.(base + j)
          done;
          scores.(c) <- !s
        done;
        dirty.(i) <- false
      in
      let best_for i n =
        let cs = cand.(i) in
        if Array.length cs = 0 then begin
          dirty.(i) <- false;
          assignment.(n)
        end
        else begin
          if dirty.(i) then refresh i;
          let scores = sc.(i) in
          let best = ref assignment.(n) and best_score = ref neg_infinity in
          Array.iteri
            (fun c l ->
              let s = scores.(c) in
              if s > !best_score then begin
                best_score := s;
                best := l
              end)
            cs;
          !best
        end
      in
      let set_label i n l =
        assignment.(n) <- l;
        Array.iter (fun s -> dirty.(s) <- true) nbr.(i)
      in
      Array.iteri
        (fun i n ->
          let l = best_for i n in
          if not (String.equal l assignment.(n)) then set_label i n l)
        unknowns;
      while !changed && !passes < config.max_passes do
        changed := false;
        incr passes;
        shuffle rng order;
        Array.iter
          (fun i ->
            if dirty.(i) then begin
              let n = unknowns.(i) in
              let l = best_for i n in
              if not (String.equal l assignment.(n)) then begin
                set_label i n l;
                changed := true
              end
            end)
          order
      done);
  assignment

let top_k ?(config = default_config) model cands (g : Graph.t) assignment ~node
    ~k =
  let touching = Graph.touching g in
  let cs =
    Candidates.for_node cands g touching.(node) node ~max:(max k config.max_candidates)
  in
  List.map
    (fun l ->
      (l, Model.node_score model g touching.(node) node assignment ~label:l))
    cs
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < k)
