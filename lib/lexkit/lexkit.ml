type pos = { line : int; col : int; offset : int }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col
let start_pos = { line = 1; col = 1; offset = 0 }

exception Error of string * pos

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (msg, pos))) fmt

module Diag = struct
  type kind =
    | Parse_error
    | Depth_limit_exceeded
    | Size_limit_exceeded
    | Io_error
    | Corrupt_model

  type t = { kind : kind; msg : string; file : string option; pos : pos option }

  exception Error of t

  let kind_name = function
    | Parse_error -> "parse-error"
    | Depth_limit_exceeded -> "depth-limit"
    | Size_limit_exceeded -> "size-limit"
    | Io_error -> "io-error"
    | Corrupt_model -> "corrupt-model"

  let all_kinds =
    [ Parse_error; Depth_limit_exceeded; Size_limit_exceeded; Io_error;
      Corrupt_model ]

  let make ?file ?pos kind msg = { kind; msg; file; pos }

  let error ?file ?pos kind fmt =
    Format.kasprintf (fun msg -> raise (Error (make ?file ?pos kind msg))) fmt

  let with_file file d =
    match d.file with Some _ -> d | None -> { d with file = Some file }

  let pp ppf d =
    (match d.file with Some f -> Fmt.pf ppf "%s:" f | None -> ());
    (match d.pos with Some p -> Fmt.pf ppf "%a:" pp_pos p | None -> ());
    Fmt.pf ppf " [%s] %s" (kind_name d.kind) d.msg

  let to_string d = Format.asprintf "%a" pp d
end

(* ---------- resource guards ---------- *)

type limits = { max_input_bytes : int; max_depth : int; max_parse_steps : int }

let default_limits =
  { max_input_bytes = 8 * 1024 * 1024; max_depth = 1000;
    max_parse_steps = 20_000_000 }

let limits = ref default_limits
let current_limits () = !limits
let set_limits l = limits := l

let with_limits l f =
  let saved = !limits in
  limits := l;
  Fun.protect ~finally:(fun () -> limits := saved) f

let check_input_size src =
  let n = String.length src and cap = !limits.max_input_bytes in
  if n > cap then
    Diag.error ~pos:start_pos Diag.Size_limit_exceeded
      "input is %d bytes; the limit is %d" n cap

module Guard = struct
  type t = {
    mutable depth : int;
    mutable steps : int;
    max_depth : int;
    max_steps : int;
  }

  let create () =
    let l = !limits in
    { depth = 0; steps = 0; max_depth = l.max_depth;
      max_steps = l.max_parse_steps }

  let enter g p =
    g.steps <- g.steps + 1;
    if g.steps > g.max_steps then
      Diag.error ~pos:p Diag.Size_limit_exceeded
        "parse step budget exhausted after %d steps" g.max_steps;
    g.depth <- g.depth + 1;
    if g.depth > g.max_depth then
      Diag.error ~pos:p Diag.Depth_limit_exceeded
        "nesting depth exceeds the limit of %d" g.max_depth

  let leave g = g.depth <- g.depth - 1
end

let diag_of_exn ?file = function
  | Diag.Error d -> Some (match file with Some f -> Diag.with_file f d | None -> d)
  | Error (msg, pos) -> Some (Diag.make ?file ~pos Diag.Parse_error msg)
  | Stack_overflow ->
      Some
        (Diag.make ?file Diag.Depth_limit_exceeded
           "stack overflow (input nested beyond any guard)")
  | Sys_error msg -> Some (Diag.make ?file Diag.Io_error msg)
  | _ -> None

let protect ?file f =
  match f () with
  | v -> Ok v
  | exception e -> (
      match diag_of_exn ?file e with Some d -> Result.Error d | None -> raise e)

module Cursor = struct
  type t = { src : string; mutable pos : pos }

  let make src = { src; pos = start_pos }
  let pos t = t.pos
  let eof t = t.pos.offset >= String.length t.src

  let peek t =
    if eof t then None else Some t.src.[t.pos.offset]

  let peek2 t =
    if t.pos.offset + 1 >= String.length t.src then None
    else Some t.src.[t.pos.offset + 1]

  let advance t =
    match peek t with
    | None -> ()
    | Some '\n' ->
        t.pos <- { line = t.pos.line + 1; col = 1; offset = t.pos.offset + 1 }
    | Some _ ->
        t.pos <- { t.pos with col = t.pos.col + 1; offset = t.pos.offset + 1 }

  let next t =
    match peek t with
    | None -> error t.pos "unexpected end of input"
    | Some c ->
        advance t;
        c

  let eat t c =
    match peek t with
    | Some c' when c' = c ->
        advance t;
        true
    | _ -> false

  let take_while t p =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek t with
      | Some c when p c ->
          Buffer.add_char buf c;
          advance t;
          go ()
      | _ -> ()
    in
    go ();
    Buffer.contents buf

  let skip_while t p =
    let rec go () =
      match peek t with
      | Some c when p c ->
          advance t;
          go ()
      | _ -> ()
    in
    go ()
end

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || is_digit c

let lex_string_literal cur ~quote =
  let buf = Buffer.create 16 in
  let rec go () =
    match Cursor.peek cur with
    | None -> error (Cursor.pos cur) "unterminated string literal"
    | Some c when c = quote -> Cursor.advance cur
    | Some '\\' ->
        Cursor.advance cur;
        let c = Cursor.next cur in
        Buffer.add_char buf
          (match c with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '0' -> '\000'
          | c -> c);
        go ()
    | Some c ->
        Buffer.add_char buf c;
        Cursor.advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_number cur =
  let int_part = Cursor.take_while cur is_digit in
  match (Cursor.peek cur, Cursor.peek2 cur) with
  | Some '.', Some d when is_digit d ->
      Cursor.advance cur;
      let frac = Cursor.take_while cur is_digit in
      int_part ^ "." ^ frac
  | _ -> int_part
