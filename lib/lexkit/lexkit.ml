type pos = { line : int; col : int; offset : int }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col
let start_pos = { line = 1; col = 1; offset = 0 }

exception Error of string * pos

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (msg, pos))) fmt

module Diag = struct
  type kind =
    | Parse_error
    | Depth_limit_exceeded
    | Size_limit_exceeded
    | Io_error
    | Corrupt_model

  type t = { kind : kind; msg : string; file : string option; pos : pos option }

  exception Error of t

  let kind_name = function
    | Parse_error -> "parse-error"
    | Depth_limit_exceeded -> "depth-limit"
    | Size_limit_exceeded -> "size-limit"
    | Io_error -> "io-error"
    | Corrupt_model -> "corrupt-model"

  let all_kinds =
    [ Parse_error; Depth_limit_exceeded; Size_limit_exceeded; Io_error;
      Corrupt_model ]

  let make ?file ?pos kind msg = { kind; msg; file; pos }

  let error ?file ?pos kind fmt =
    Format.kasprintf (fun msg -> raise (Error (make ?file ?pos kind msg))) fmt

  let with_file file d =
    match d.file with Some _ -> d | None -> { d with file = Some file }

  let pp ppf d =
    (match d.file with Some f -> Fmt.pf ppf "%s:" f | None -> ());
    (match d.pos with Some p -> Fmt.pf ppf "%a:" pp_pos p | None -> ());
    Fmt.pf ppf " [%s] %s" (kind_name d.kind) d.msg

  let to_string d = Format.asprintf "%a" pp d
end

(* ---------- resource guards ---------- *)

type limits = { max_input_bytes : int; max_depth : int; max_parse_steps : int }

let default_limits =
  { max_input_bytes = 8 * 1024 * 1024; max_depth = 1000;
    max_parse_steps = 20_000_000 }

let limits = ref default_limits
let current_limits () = !limits
let set_limits l = limits := l

let with_limits l f =
  let saved = !limits in
  limits := l;
  Fun.protect ~finally:(fun () -> limits := saved) f

let check_input_size src =
  let n = String.length src and cap = !limits.max_input_bytes in
  if n > cap then
    Diag.error ~pos:start_pos Diag.Size_limit_exceeded
      "input is %d bytes; the limit is %d" n cap

module Guard = struct
  type t = {
    mutable depth : int;
    mutable steps : int;
    max_depth : int;
    max_steps : int;
  }

  let create () =
    let l = !limits in
    { depth = 0; steps = 0; max_depth = l.max_depth;
      max_steps = l.max_parse_steps }

  let enter g p =
    g.steps <- g.steps + 1;
    if g.steps > g.max_steps then
      Diag.error ~pos:p Diag.Size_limit_exceeded
        "parse step budget exhausted after %d steps" g.max_steps;
    g.depth <- g.depth + 1;
    if g.depth > g.max_depth then
      Diag.error ~pos:p Diag.Depth_limit_exceeded
        "nesting depth exceeds the limit of %d" g.max_depth

  let leave g = g.depth <- g.depth - 1
end

let diag_of_exn ?file = function
  | Diag.Error d -> Some (match file with Some f -> Diag.with_file f d | None -> d)
  | Error (msg, pos) -> Some (Diag.make ?file ~pos Diag.Parse_error msg)
  | Stack_overflow ->
      Some
        (Diag.make ?file Diag.Depth_limit_exceeded
           "stack overflow (input nested beyond any guard)")
  | Sys_error msg -> Some (Diag.make ?file Diag.Io_error msg)
  | _ -> None

let protect ?file f =
  match f () with
  | v -> Ok v
  | exception e -> (
      match diag_of_exn ?file e with Some d -> Result.Error d | None -> raise e)

(* Atomic whole-file write: the contents go to a fresh temp file in the
   target's directory (same filesystem, so the rename is atomic), then
   [Sys.rename] over the target. A crash or kill at any point leaves
   either the old file or the new one, never a truncated hybrid — the
   property a long-lived daemon relies on when it loads a model some
   other process may be rewriting. *)
let write_file_atomic_gen path writer =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf "%s.tmp.%d.%d" (Filename.basename path)
         (Unix.getpid ())
         (Domain.self () :> int))
  in
  let oc = open_out_bin tmp in
  match
    writer oc;
    (* Flush to the OS before the rename publishes the file; a failure
       here (ENOSPC) must surface before the old model is replaced. *)
    flush oc;
    close_out oc
  with
  | () -> (
      match Sys.rename tmp path with
      | () -> ()
      | exception e ->
          (* A failed rename (target directory vanished, EXDEV…) must
             not leave the temp file behind either. *)
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e)
  | exception e ->
      (* Any failure — including the writer callback raising mid-save —
         unlinks the temp file: error paths never leak `.tmp` litter
         next to models and checkpoints. *)
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_file_atomic path contents =
  write_file_atomic_gen path (fun oc -> output_string oc contents)

module Cursor = struct
  type t = { src : string; mutable pos : pos }

  let make src = { src; pos = start_pos }
  let pos t = t.pos
  let eof t = t.pos.offset >= String.length t.src

  let peek t =
    if eof t then None else Some t.src.[t.pos.offset]

  let peek2 t =
    if t.pos.offset + 1 >= String.length t.src then None
    else Some t.src.[t.pos.offset + 1]

  let advance t =
    match peek t with
    | None -> ()
    | Some '\n' ->
        t.pos <- { line = t.pos.line + 1; col = 1; offset = t.pos.offset + 1 }
    | Some _ ->
        t.pos <- { t.pos with col = t.pos.col + 1; offset = t.pos.offset + 1 }

  let next t =
    match peek t with
    | None -> error t.pos "unexpected end of input"
    | Some c ->
        advance t;
        c

  let eat t c =
    match peek t with
    | Some c' when c' = c ->
        advance t;
        true
    | _ -> false

  let take_while t p =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek t with
      | Some c when p c ->
          Buffer.add_char buf c;
          advance t;
          go ()
      | _ -> ()
    in
    go ();
    Buffer.contents buf

  let skip_while t p =
    let rec go () =
      match peek t with
      | Some c when p c ->
          advance t;
          go ()
      | _ -> ()
    in
    go ()
end

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || is_digit c

let lex_string_literal cur ~quote =
  let buf = Buffer.create 16 in
  let rec go () =
    match Cursor.peek cur with
    | None -> error (Cursor.pos cur) "unterminated string literal"
    | Some c when c = quote -> Cursor.advance cur
    | Some '\\' ->
        Cursor.advance cur;
        let c = Cursor.next cur in
        Buffer.add_char buf
          (match c with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '0' -> '\000'
          | c -> c);
        go ()
    | Some c ->
        Buffer.add_char buf c;
        Cursor.advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_number cur =
  let int_part = Cursor.take_while cur is_digit in
  match (Cursor.peek cur, Cursor.peek2 cur) with
  | Some '.', Some d when is_digit d ->
      Cursor.advance cur;
      let frac = Cursor.take_while cur is_digit in
      int_part ^ "." ^ frac
  | _ -> int_part

module Binio = struct
  let w_int buf n = Buffer.add_int64_le buf (Int64.of_int n)
  let w_u8 buf n = Buffer.add_uint8 buf n
  let w_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

  let w_string buf s =
    w_int buf (String.length s);
    Buffer.add_string buf s

  let w_floats buf a =
    w_int buf (Array.length a);
    Array.iter (w_float buf) a

  let w_section buf ~tag payload =
    w_u8 buf tag;
    w_int buf (Buffer.length payload);
    Buffer.add_buffer buf payload

  (* FNV-1a folded to 62 bits, for the end-section whole-body
     checksum: any bit flip anywhere in a section is detected, not
     just flips that break the framing. *)
  let mask62 = (1 lsl 62) - 1
  let fnv_offset = Int64.to_int 0xcbf29ce484222325L land mask62
  let checksum_seed = fnv_offset

  (* Incremental form: folding a string in pieces gives the same sum
     as folding the concatenation, which is what lets a mapped loader
     checksum a section prefix from the heap and the float payload
     straight from the map. *)
  let checksum_add h s =
    let h = ref h in
    String.iter
      (fun c -> h := (!h lxor Char.code c) * 0x100000001b3 land mask62)
      s;
    !h

  let checksum s = checksum_add checksum_seed s

  type reader = { src : string; mutable pos : int }

  let reader ?(pos = 0) src = { src; pos }
  let at_end r = r.pos >= String.length r.src
  let offset r = r.pos
  let remaining r = String.length r.src - r.pos

  (* [String.length r.src - r.pos] never overflows, unlike the naive
     [r.pos + n > length] form, where a hostile length near [max_int]
     wraps negative and sails through the bounds check. *)
  let need r n what =
    if n < 0 || n > String.length r.src - r.pos then
      Printf.ksprintf failwith "truncated at byte %d (%s)" r.pos what

  let r_u8 r what =
    need r 1 what;
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let r_i64 r what =
    need r 8 what;
    let v = String.get_int64_le r.src r.pos in
    r.pos <- r.pos + 8;
    v

  let r_int r what =
    let v = r_i64 r what in
    let n = Int64.to_int v in
    if Int64.of_int n <> v then
      Printf.ksprintf failwith "integer out of range at byte %d (%s)"
        (r.pos - 8) what;
    n

  let r_float r what = Int64.float_of_bits (r_i64 r what)

  let r_skip r n what =
    need r n what;
    r.pos <- r.pos + n

  let r_string r what =
    let n = r_int r what in
    need r n what;
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let r_floats r what =
    let n = r_int r what in
    (* 8 bytes per element: bounds the whole array before allocating.
       The division form avoids overflowing [8 * n] on hostile counts. *)
    if n < 0 || n > (String.length r.src - r.pos) / 8 then
      Printf.ksprintf failwith "truncated at byte %d (%s)" r.pos what;
    Array.init n (fun _ -> r_float r what)

  let r_section r ~tag ~what =
    let t = r_u8 r what in
    if t <> tag then
      Printf.ksprintf failwith
        "expected section %d (%s), found %d at byte %d" tag what t (r.pos - 1);
    let len = r_int r what in
    need r len what;
    r.pos + len

  let end_section r ~stop ~what =
    if r.pos <> stop then
      Printf.ksprintf failwith
        "section %s length mismatch: payload ends at byte %d, header said %d"
        what r.pos stop
end

(* How a loaded model holds its float payloads: copied into the OCaml
   heap, or read through [Bigarray] views over a mapped file. A heap
   report carries an optional note explaining why a requested mapped
   load was downgraded (old format version, misalignment, big-endian
   host, map failure). *)
module Storage = struct
  type t = Heap of { note : string option } | Mapped of { bytes : int }

  let heap = Heap { note = None }
  let kind_name = function Heap _ -> "heap" | Mapped _ -> "mapped"
  let mapped_bytes = function Heap _ -> 0 | Mapped { bytes } -> bytes
  let note = function Heap { note } -> note | Mapped _ -> None

  let merge a b =
    match (a, b) with
    | Mapped { bytes = x }, Mapped { bytes = y } -> Mapped { bytes = x + y }
    | Heap { note = n }, Heap { note = m } ->
        Heap { note = (match n with Some _ -> n | None -> m) }
    (* A mixed pair (one file mapped, the other copied) reports as
       mapped with the mapped half's bytes: the interesting number for
       budget accounting is how much address space the entry pins. *)
    | (Mapped _ as m), Heap _ | Heap _, (Mapped _ as m) -> m
end

module Mmap = struct
  type t = {
    path : string;
    size : int;  (** file size in bytes at map time *)
    floats : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  }

  (* Maps the whole file read-only as a float64 view (any byte tail
     shorter than 8 is dropped; callers slice sub-views at offsets they
     have already bounds-checked against [size]). The fd is closed
     right after mapping — the mapping keeps the pages alive — and the
     pages are released when the bigarray is collected, which is what
     makes dropping a model snapshot an implicit munmap. *)
  let map_floats path =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        let ga =
          Unix.map_file fd Bigarray.float64 Bigarray.c_layout false
            [| size / 8 |]
        in
        { path; size; floats = Bigarray.array1_of_genarray ga })

  let path t = t.path
  let size t = t.size

  let sub t ~off_bytes ~len =
    if off_bytes < 0 || off_bytes mod 8 <> 0 || len < 0
       || len > (t.size - off_bytes) / 8
    then
      Printf.ksprintf failwith
        "mapped slice out of bounds: %d floats at byte %d of %d" len off_bytes
        t.size;
    Bigarray.Array1.sub t.floats (off_bytes / 8) len

  (* Continues a [Binio.checksum_add] fold over a float region of the
     map, byte-for-byte identical to checksumming the file bytes on a
     little-endian host (the only hosts the mapped path accepts). *)
  let checksum_floats ?(h = Binio.checksum_seed) a ~off ~len =
    let fnv = 0x100000001b3 and mask62 = Binio.mask62 in
    let h = ref h in
    for i = off to off + len - 1 do
      let bits = Int64.bits_of_float (Bigarray.Array1.unsafe_get a i) in
      for b = 0 to 7 do
        let byte = Int64.to_int (Int64.shift_right_logical bits (8 * b)) land 0xff in
        h := (!h lxor byte) * fnv land mask62
      done
    done;
    !h
end
