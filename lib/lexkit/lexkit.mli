(** Shared lexing utilities for the hand-written language front-ends. *)

type pos = { line : int; col : int; offset : int }

val pp_pos : Format.formatter -> pos -> unit
val start_pos : pos

exception Error of string * pos
(** Raised by front-end lexers and parsers on malformed input. *)

val error : pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error pos fmt ...] raises {!Error} with a formatted message. *)

(** Structured diagnostics for the whole ingest–train–predict path.
    Every failure a hostile or malformed input can provoke is one of
    these kinds; anything else escaping a front-end or loader is a
    bug (and the fuzz suite hunts for it). *)
module Diag : sig
  type kind =
    | Parse_error  (** malformed source: lexer or parser rejection *)
    | Depth_limit_exceeded  (** nesting beyond {!limits}, or stack overflow *)
    | Size_limit_exceeded  (** oversized input or exhausted step budget *)
    | Io_error  (** file-system failure while reading or writing *)
    | Corrupt_model  (** model file truncated, mangled, or wrong version *)

  type t = { kind : kind; msg : string; file : string option; pos : pos option }

  exception Error of t

  val kind_name : kind -> string
  val all_kinds : kind list
  val make : ?file:string -> ?pos:pos -> kind -> string -> t

  val error : ?file:string -> ?pos:pos -> kind -> ('a, Format.formatter, unit, 'b) format4 -> 'a
  (** Raise {!Error} with a formatted message. *)

  val with_file : string -> t -> t
  (** Attach a file name if the diagnostic does not carry one yet. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** {2 Resource guards}

    Hard bounds that make front-ends total: no input may overflow the
    stack, hang the parser, or exhaust memory through sheer size. *)

type limits = {
  max_input_bytes : int;  (** sources larger than this are rejected *)
  max_depth : int;  (** maximal grammar nesting depth *)
  max_parse_steps : int;  (** overall parser work budget per file *)
}

val default_limits : limits
(** 8 MiB inputs, depth 1000, 20M parse steps. *)

val current_limits : unit -> limits
val set_limits : limits -> unit

val with_limits : limits -> (unit -> 'a) -> 'a
(** Run with temporary limits; restores the previous ones. *)

val check_input_size : string -> unit
(** Raises {!Diag.Error} with [Size_limit_exceeded] when the source
    exceeds [max_input_bytes]. Called by every front-end lexer. *)

(** Recursion-depth and step-budget guard threaded through the
    recursive-descent parsers. *)
module Guard : sig
  type t

  val create : unit -> t
  (** Snapshot the current {!limits}. *)

  val enter : t -> pos -> unit
  (** Count one step and one nesting level; raises {!Diag.Error} when
      a limit is crossed. Pair with {!leave}. *)

  val leave : t -> unit
end

val diag_of_exn : ?file:string -> exn -> Diag.t option
(** Classify an exception: {!Diag.Error} and {!Error} map to their
    diagnostics, [Stack_overflow] to [Depth_limit_exceeded],
    [Sys_error] to [Io_error]; anything else is [None] (a bug, not an
    input problem). *)

val protect : ?file:string -> (unit -> 'a) -> ('a, Diag.t) result
(** Run a parse/load thunk, turning every classifiable exception into
    [Error diag]. Unclassifiable exceptions are re-raised. *)

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path contents] writes [contents] to a temp file
    in [path]'s directory and renames it over [path]. A crash (or
    SIGKILL) at any point leaves either the previous file intact or the
    complete new one — never a truncated mix. Raises [Sys_error] on I/O
    failure, after removing the temp file. *)

val write_file_atomic_gen : string -> (out_channel -> unit) -> unit
(** {!write_file_atomic} with a writer callback instead of an
    in-memory string: the callback streams the contents straight to the
    temp file's channel, so a large artifact (a shard, a training
    checkpoint) never has to exist as one heap string. Same atomicity
    contract, and the same cleanup contract on every error path: if the
    callback raises mid-save — or the flush, close, or rename fails —
    the temp file is unlinked before the exception propagates. *)

(** A character cursor over an in-memory source string, tracking line
    and column. *)
module Cursor : sig
  type t

  val make : string -> t
  val pos : t -> pos
  val eof : t -> bool

  val peek : t -> char option
  val peek2 : t -> char option
  (** Character after the next one, if any. *)

  val advance : t -> unit
  val next : t -> char
  (** Consume and return; raises {!Error} at end of input. *)

  val eat : t -> char -> bool
  (** Consume the next char iff it equals the argument. *)

  val take_while : t -> (char -> bool) -> string
  val skip_while : t -> (char -> bool) -> unit
end

val is_digit : char -> bool
val is_ident_start : char -> bool
(** Letters, underscore and [$]. *)

val is_ident_char : char -> bool

val lex_string_literal : Cursor.t -> quote:char -> string
(** Consumes a string literal whose opening [quote] has already been
    consumed; handles the usual backslash escapes. Returns the decoded
    contents. *)

val lex_number : Cursor.t -> string
(** Consumes an integer or decimal literal (first char not yet
    consumed must be a digit); returns its lexeme. *)

(** Binary record IO for the version-3 model formats: fixed-width
    little-endian integers and IEEE-754 floats, length-prefixed
    strings and sections. Purely in-memory (writers append to a
    [Buffer.t], readers walk a [string]); every malformed read raises
    [Failure] with a byte offset, which the model loaders convert to a
    [Corrupt_model] diagnostic. *)
module Binio : sig
  val w_int : Buffer.t -> int -> unit
  (** Written as a little-endian 64-bit value. *)

  val w_u8 : Buffer.t -> int -> unit
  val w_float : Buffer.t -> float -> unit
  (** Raw IEEE-754 bits, little-endian — exact round-trip. *)

  val w_string : Buffer.t -> string -> unit
  (** Length-prefixed, no escaping. *)

  val w_floats : Buffer.t -> float array -> unit
  (** Count-prefixed raw float array. *)

  val w_section : Buffer.t -> tag:int -> Buffer.t -> unit
  (** [w_section buf ~tag payload] appends tag byte, payload length,
      payload. *)

  val checksum : string -> int
  (** FNV-1a folded to 62 bits, over the full section body — the end
      section stores it so any bit flip is detected. *)

  val checksum_seed : int
  val checksum_add : int -> string -> int
  (** Incremental checksum: [checksum_add checksum_seed s = checksum s],
      and folding a string in pieces equals folding the concatenation.
      Lets a mapped loader checksum a section prefix from the heap and
      finish over the mapped float payload. *)

  type reader

  val reader : ?pos:int -> string -> reader
  val at_end : reader -> bool

  val offset : reader -> int
  (** Current read position, in bytes. *)

  val remaining : reader -> int
  (** Bytes left to read — what per-element size caps bound hostile
      counts against before allocating. *)

  val r_u8 : reader -> string -> int

  val r_int : reader -> string -> int
  (** The [string] argument names what is being read, for error
      messages. Fails on values outside OCaml's int range. *)

  val r_float : reader -> string -> float

  val r_skip : reader -> int -> string -> unit
  (** Advance past [n] bytes (bounds-checked). *)

  val r_string : reader -> string -> string
  val r_floats : reader -> string -> float array

  val r_section : reader -> tag:int -> what:string -> int
  (** Consume a section header; checks the tag, bounds the payload,
      and returns the offset where the payload must end. *)

  val end_section : reader -> stop:int -> what:string -> unit
  (** Verify the reader consumed the section exactly. *)
end

(** How a loaded model holds its float payloads: copied into the OCaml
    heap, or read through [Bigarray] views over a mapped file. *)
module Storage : sig
  type t =
    | Heap of { note : string option }
        (** [note] explains why a requested mapped load was downgraded
            to a copy (old format version, misaligned payload,
            big-endian host, map failure); [None] for a plain load. *)
    | Mapped of { bytes : int }  (** [bytes] = mapped file bytes. *)

  val heap : t
  (** [Heap { note = None }]. *)

  val kind_name : t -> string
  (** ["heap"] or ["mapped"]. *)

  val mapped_bytes : t -> int
  val note : t -> string option

  val merge : t -> t -> t
  (** Combine the reports of two files backing one model entry (CRF +
      SGNS): mapped bytes add; a mixed pair reports as mapped. *)
end

(** Read-only file mappings for zero-copy model loading. *)
module Mmap : sig
  type t

  val map_floats : string -> t
  (** Map the whole file read-only as a [float64] view (any tail
      shorter than 8 bytes is dropped). The fd is closed immediately;
      the pages live until the bigarray is collected, so dropping the
      last reference is an implicit munmap. Raises [Unix.Unix_error]
      on open/map failure. *)

  val path : t -> string

  val size : t -> int
  (** File size in bytes at map time. *)

  val sub :
    t ->
    off_bytes:int ->
    len:int ->
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** [len] floats starting at byte offset [off_bytes] (must be
      8-aligned). Raises [Failure] when the slice leaves the file. *)

  val checksum_floats :
    ?h:int ->
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
    off:int ->
    len:int ->
    int
  (** Continue a {!Binio.checksum_add} fold over [len] floats of a
      mapped view starting at element [off] — byte-identical to
      checksumming the underlying file bytes on a little-endian host
      (the only hosts the mapped path accepts). *)
end
