(* Fault-isolated corpus ingestion: run a per-file computation over a
   corpus, convert every failure into a structured diagnostic, and
   account for what was skipped. One hostile or broken file must never
   abort a whole training run — it becomes a line in the skip report. *)

type skip = { file : string; bytes : int; diag : Lexkit.Diag.t }

type report = { attempted : int; succeeded : int; skipped : skip list }

let empty = { attempted = 0; succeeded = 0; skipped = [] }

(* One List.concat over all skip lists, not a fold of [@]: folding
   binary appends re-copies the accumulated prefix at every step,
   which is quadratic exactly when it hurts — merging many per-domain
   (or per-corpus) reports. *)
let merge_all reports =
  {
    attempted = List.fold_left (fun n r -> n + r.attempted) 0 reports;
    succeeded = List.fold_left (fun n r -> n + r.succeeded) 0 reports;
    skipped = List.concat_map (fun r -> r.skipped) reports;
  }

let merge a b = merge_all [ a; b ]

let log_src = Logs.Src.create "pigeon.ingest"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Out_of_memory and assertion failures indicate a broken process or a
   broken program, not a broken input; those still propagate. *)
let diag_of_unexpected exn =
  match exn with
  | Out_of_memory | Assert_failure _ -> raise exn
  | _ ->
      Lexkit.Diag.make Lexkit.Diag.Parse_error
        (Printf.sprintf "unexpected exception: %s" (Printexc.to_string exn))

(* Per-file ingestion is pure (parsers, guards, and extraction rngs
   are all per-call), so files fan out across the pool; the fold back
   into results + report walks the per-file outcomes in source order,
   which makes the skip report — and everything downstream — identical
   for every job count. With a 1-job pool the outcomes are computed
   inline in source order: byte-identical to the sequential runner. *)
let run ?pool ~f sources =
  let sources = Array.of_list sources in
  let eval (name, src) =
    let outcome =
      match Lexkit.protect ~file:name (fun () -> f name src) with
      | r -> r
      | exception exn -> Result.Error (diag_of_unexpected exn)
    in
    match outcome with
    | Ok v -> Ok v
    | Result.Error diag ->
        let diag = Lexkit.Diag.with_file name diag in
        Result.Error { file = name; bytes = String.length src; diag }
  in
  let outcomes = Parallel.map ?pool eval sources in
  let results = ref [] and skipped = ref [] and succeeded = ref 0 in
  Array.iter
    (function
      | Ok v ->
          incr succeeded;
          results := v :: !results
      | Result.Error skip -> skipped := skip :: !skipped)
    outcomes;
  ( List.rev !results,
    {
      attempted = Array.length sources;
      succeeded = !succeeded;
      skipped = List.rev !skipped;
    } )

(* Streaming variant for out-of-core extraction: fan one batch out,
   hand its results to [emit] in source order, drop them, move on.
   Peak memory is one batch of results instead of the whole corpus —
   [emit] typically appends to shard files. Same per-file semantics
   and the same source-order determinism as [run]. *)
let stream ?pool ?(batch = 64) ~f ~emit sources =
  if batch <= 0 then invalid_arg "Ingest.stream: batch must be positive";
  let rec take n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (n - 1) (x :: acc) tl
  in
  let rec go reports rest =
    match rest with
    | [] -> merge_all (List.rev reports)
    | _ ->
        let chunk, rest = take batch [] rest in
        let results, rep = run ?pool ~f chunk in
        List.iter emit results;
        go (rep :: reports) rest
  in
  go [] sources

let counts report =
  List.filter_map
    (fun kind ->
      match
        List.length
          (List.filter (fun s -> s.diag.Lexkit.Diag.kind = kind) report.skipped)
      with
      | 0 -> None
      | n -> Some (kind, n))
    Lexkit.Diag.all_kinds

let worst ?(n = 3) report =
  let by_size =
    List.sort (fun a b -> Int.compare b.bytes a.bytes) report.skipped
  in
  List.filteri (fun i _ -> i < n) by_size

let pp ppf report =
  if report.skipped = [] then
    Fmt.pf ppf "%d/%d files ingested, no skips" report.succeeded
      report.attempted
  else begin
    Fmt.pf ppf "%d/%d files ingested, %d skipped (" report.succeeded
      report.attempted
      (List.length report.skipped);
    Fmt.pf ppf "%a)"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (kind, n) ->
           Fmt.pf ppf "%s: %d" (Lexkit.Diag.kind_name kind) n))
      (counts report);
    List.iter
      (fun s ->
        Fmt.pf ppf "@.  worst offender: %s (%d bytes): %a" s.file s.bytes
          Lexkit.Diag.pp s.diag)
      (worst ~n:1 report)
  end

let to_string report = Format.asprintf "%a" pp report

let log ~label report =
  if report.skipped = [] then
    Log.debug (fun m -> m "%s: %a" label pp report)
  else Log.warn (fun m -> m "%s: %a" label pp report)
