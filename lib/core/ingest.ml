(* Fault-isolated corpus ingestion: run a per-file computation over a
   corpus, convert every failure into a structured diagnostic, and
   account for what was skipped. One hostile or broken file must never
   abort a whole training run — it becomes a line in the skip report. *)

type skip = { file : string; bytes : int; diag : Lexkit.Diag.t }

type report = { attempted : int; succeeded : int; skipped : skip list }

let empty = { attempted = 0; succeeded = 0; skipped = [] }

let merge a b =
  {
    attempted = a.attempted + b.attempted;
    succeeded = a.succeeded + b.succeeded;
    skipped = a.skipped @ b.skipped;
  }

let log_src = Logs.Src.create "pigeon.ingest"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Out_of_memory and assertion failures indicate a broken process or a
   broken program, not a broken input; those still propagate. *)
let diag_of_unexpected exn =
  match exn with
  | Out_of_memory | Assert_failure _ -> raise exn
  | _ ->
      Lexkit.Diag.make Lexkit.Diag.Parse_error
        (Printf.sprintf "unexpected exception: %s" (Printexc.to_string exn))

let run ~f sources =
  let skipped = ref [] in
  let succeeded = ref 0 in
  let results =
    List.filter_map
      (fun (name, src) ->
        let outcome =
          match Lexkit.protect ~file:name (fun () -> f name src) with
          | r -> r
          | exception exn -> Result.Error (diag_of_unexpected exn)
        in
        match outcome with
        | Ok v ->
            incr succeeded;
            Some v
        | Result.Error diag ->
            let diag = Lexkit.Diag.with_file name diag in
            skipped := { file = name; bytes = String.length src; diag } :: !skipped;
            None)
      sources
  in
  ( results,
    {
      attempted = List.length sources;
      succeeded = !succeeded;
      skipped = List.rev !skipped;
    } )

let counts report =
  List.filter_map
    (fun kind ->
      match
        List.length
          (List.filter (fun s -> s.diag.Lexkit.Diag.kind = kind) report.skipped)
      with
      | 0 -> None
      | n -> Some (kind, n))
    Lexkit.Diag.all_kinds

let worst ?(n = 3) report =
  let by_size =
    List.sort (fun a b -> Int.compare b.bytes a.bytes) report.skipped
  in
  List.filteri (fun i _ -> i < n) by_size

let pp ppf report =
  if report.skipped = [] then
    Fmt.pf ppf "%d/%d files ingested, no skips" report.succeeded
      report.attempted
  else begin
    Fmt.pf ppf "%d/%d files ingested, %d skipped (" report.succeeded
      report.attempted
      (List.length report.skipped);
    Fmt.pf ppf "%a)"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (kind, n) ->
           Fmt.pf ppf "%s: %d" (Lexkit.Diag.kind_name kind) n))
      (counts report);
    List.iter
      (fun s ->
        Fmt.pf ppf "@.  worst offender: %s (%d bytes): %a" s.file s.bytes
          Lexkit.Diag.pp s.diag)
      (worst ~n:1 report)
  end

let to_string report = Format.asprintf "%a" pp report

let log ~label report =
  if report.skipped = [] then
    Log.debug (fun m -> m "%s: %a" label pp report)
  else Log.warn (fun m -> m "%s: %a" label pp report)
