type repr = {
  config : Astpath.Config.t;
  abstraction : Astpath.Abstraction.t;
  downsample_p : float;
  use_unary : bool;
  statement_local : bool;
  seed : int;
}

let default_repr ?(config = Astpath.Config.default) () =
  {
    config;
    abstraction = Astpath.Abstraction.Full;
    downsample_p = 1.0;
    use_unary = true;
    statement_local = false;
    seed = 1;
  }

type policy = Locals | Methods of { internal_only : bool }

let type_tag_prefix = "type:"

(* Control-flow / declaration labels across all four lowerings; a path
   whose hierarchically-highest node is one of these spans more than a
   single simple statement. *)
let control_label lbl =
  let has sub =
    let n = String.length sub and m = String.length lbl in
    let rec go i = i + n <= m && (String.sub lbl i n = sub || go (i + 1)) in
    go 0
  in
  List.exists has
    [
      "If"; "While"; "For"; "Do"; "Try"; "Else"; "Catch"; "Finally"; "Except";
      "Module"; "Toplevel"; "Defun"; "Function"; "Method"; "Class";
      "CompilationUnit"; "Namespace"; "orelse"; "finalbody";
    ]

let keep_context repr (c : Astpath.Context.t) =
  (not repr.statement_local)
  || not (control_label (Astpath.Path.top (Astpath.Context.path c)))

(* Element identity of a leaf: locals by binder, other names and
   literals by value; keyword terminals are not program elements. *)
type elem = Binder of int | Named of string | Literal of string

let elem_of idx leaf =
  match Ast.Index.sort idx leaf with
  | Some (Ast.Tree.Var i) -> Some (Binder i)
  | Some Ast.Tree.Name ->
      Option.map (fun v -> Named v) (Ast.Index.value idx leaf)
  | Some Ast.Tree.Lit ->
      Option.map (fun v -> Literal v) (Ast.Index.value idx leaf)
  | Some Ast.Tree.Kw | None -> None

(* Graph construction over a prebuilt index and an abstract context
   iterator — the one body behind [build] (from-scratch extraction)
   and [build_cached] (incremental replay). Everything downstream of
   the iterator is identical, so a cache that emits the from-scratch
   stream yields the identical graph. *)
let build_over repr ~def_labels ~policy idx ~iter =
  let leaves = Ast.Index.leaves idx in
  (* Which binders / named groups contain a definition-name leaf? *)
  let def_elems = Hashtbl.create 8 in
  Array.iter
    (fun leaf ->
      if List.mem (Ast.Index.label idx leaf) def_labels then
        match elem_of idx leaf with
        | Some e -> Hashtbl.replace def_elems e ()
        | None -> ())
    leaves;
  let is_def e = Hashtbl.mem def_elems e in
  let is_unknown e =
    match policy with
    | Locals -> ( match e with Binder _ -> not (is_def e) | _ -> false)
    | Methods _ -> is_def e
  in
  let internal_only =
    match policy with Methods { internal_only } -> internal_only | Locals -> false
  in
  (* Assign node ids; record each leaf's node. *)
  let elem_ids = Hashtbl.create 64 in
  let unknown_ids = Hashtbl.create 16 in
  let nodes_rev = ref [] in
  let next = ref 0 in
  let node_of_elem e gold =
    match Hashtbl.find_opt elem_ids e with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add elem_ids e id;
        let kind = if is_unknown e then `Unknown else `Known in
        if kind = `Unknown then Hashtbl.replace unknown_ids id ();
        nodes_rev := { Crf.Graph.id; gold; kind } :: !nodes_rev;
        id
  in
  let leaf_node = Hashtbl.create 64 in
  Array.iter
    (fun leaf ->
      match elem_of idx leaf with
      | None -> ()
      | Some e ->
          (* Internal-only method graphs drop invocation occurrences of
             the unknown method names (they would leak the label). *)
          let drop =
            internal_only && is_def e
            && not (List.mem (Ast.Index.label idx leaf) def_labels)
          in
          if not drop then begin
            let gold =
              Option.value (Ast.Index.value idx leaf) ~default:"?"
            in
            Hashtbl.replace leaf_node leaf (node_of_elem e gold)
          end)
    leaves;
  (* Path-contexts -> factors, streamed straight off the extraction
     iterator: contexts are never materialized as a list. *)
  let factors = ref [] in
  let rel_memo = Astpath.Abstraction.memo repr.abstraction in
  iter (fun (c : Astpath.Context.t) ->
      if keep_context repr c then
        let rel () = Astpath.Abstraction.apply_memo rel_memo c in
        let unknown i = Hashtbl.mem unknown_ids i in
        match
          ( Hashtbl.find_opt leaf_node c.Astpath.Context.start_node,
            Hashtbl.find_opt leaf_node c.Astpath.Context.end_node )
        with
        | Some a, Some b ->
            if a = b then begin
              if repr.use_unary && unknown a then
                factors := Crf.Graph.unary ~n:a ~rel:(rel ()) :: !factors
            end
            else if unknown a || unknown b then
              factors := Crf.Graph.pairwise ~a ~b ~rel:(rel ()) :: !factors
        | Some a, None when unknown a ->
            (* Semi-path (leaf -> ancestor nonterminal): a unary factor —
               less expressive than a leafwise path but it recurs across
               programs even when full paths do not (Section 5:
               "semi-paths provide more generalization"). *)
            if repr.use_unary then
              factors := Crf.Graph.unary ~n:a ~rel:(rel ()) :: !factors
        | _ -> ());
  Crf.Graph.make ~nodes:(List.rev !nodes_rev) ~factors:(List.rev !factors)

let build repr ~def_labels ~policy tree =
  let idx = Ast.Index.build tree in
  build_over repr ~def_labels ~policy idx ~iter:(fun f ->
      (* Leaf occurrences are downsampled before pair enumeration
         (paper §5.5) so dropped occurrences pay no extraction cost. *)
      let rng = Random.State.make [| repr.seed |] in
      Astpath.Extract.iter_all
        ~downsample:(rng, repr.downsample_p)
        idx repr.config f)

let build_cached repr ~def_labels ~policy ~cache tree =
  (* The cache contract covers the full (undownsampled) stream only;
     a downsampling repr falls back to from-scratch extraction. The
     serve path uses [default_repr] (p = 1.0), which at p = 1.0 draws
     nothing and emits the full stream — so the cached and plain
     builds construct the identical graph. *)
  if repr.downsample_p < 1.0 then build repr ~def_labels ~policy tree
  else
    let idx = Astpath.Cache.index cache tree in
    build_over repr ~def_labels ~policy idx ~iter:(fun f ->
        Astpath.Extract.iter_all_cached ~cache idx repr.config f)

let full_type_graph repr tree =
  let idx = Ast.Index.build tree in
  let leaves = Ast.Index.leaves idx in
  (* Unknown nodes: tagged expression nonterminals. *)
  let nodes_rev = ref [] in
  let next = ref 0 in
  let add_node gold kind =
    let id = !next in
    incr next;
    nodes_rev := { Crf.Graph.id; gold; kind } :: !nodes_rev;
    id
  in
  let targets = ref [] in
  for i = 0 to Ast.Index.size idx - 1 do
    match Ast.Index.tag idx i with
    | Some tag
      when String.length tag > String.length type_tag_prefix
           && String.sub tag 0 (String.length type_tag_prefix) = type_tag_prefix
      ->
        let ty =
          String.sub tag (String.length type_tag_prefix)
            (String.length tag - String.length type_tag_prefix)
        in
        targets := (i, add_node ty `Unknown) :: !targets
    | _ -> ()
  done;
  let targets = List.rev !targets in
  (* Known nodes: leaf elements (variable names are given here). *)
  let elem_ids = Hashtbl.create 64 in
  let leaf_node = Hashtbl.create 64 in
  Array.iter
    (fun leaf ->
      match elem_of idx leaf with
      | None -> ()
      | Some e ->
          let id =
            match Hashtbl.find_opt elem_ids e with
            | Some id -> id
            | None ->
                let gold = Option.value (Ast.Index.value idx leaf) ~default:"?" in
                let id = add_node gold `Known in
                Hashtbl.add elem_ids e id;
                id
          in
          Hashtbl.replace leaf_node leaf id)
    leaves;
  let rng = Random.State.make [| repr.seed |] in
  let factors = ref [] in
  let tab = Astpath.Context.Tab.create idx in
  let rel_memo = Astpath.Abstraction.memo repr.abstraction in
  List.iter
    (fun (target, tnode) ->
      let contexts = Astpath.Extract.leaf_to_node ~tab idx repr.config ~target in
      let contexts = Astpath.Downsample.keep rng ~p:repr.downsample_p contexts in
      List.iter
        (fun (c : Astpath.Context.t) ->
          if keep_context repr c then
            match Hashtbl.find_opt leaf_node c.Astpath.Context.start_node with
            | Some lnode ->
                let rel = Astpath.Abstraction.apply_memo rel_memo c in
                factors := Crf.Graph.pairwise ~a:lnode ~b:tnode ~rel :: !factors
            | None -> ())
        contexts)
    targets;
  Crf.Graph.make ~nodes:(List.rev !nodes_rev) ~factors:(List.rev !factors)
