(** Fault-isolated corpus ingestion.

    Runs a per-file computation over a [(name, source)] corpus. Every
    failure a malformed or hostile file can provoke — parse errors,
    resource-limit hits, I/O errors, even unexpected exceptions — is
    caught, attached to the file, and tallied; the run itself never
    aborts. [Out_of_memory] and assertion failures still propagate:
    they indicate a broken process, not a broken input. *)

type skip = {
  file : string;
  bytes : int;  (** size of the offending source *)
  diag : Lexkit.Diag.t;
}

type report = { attempted : int; succeeded : int; skipped : skip list }

val empty : report
val merge : report -> report -> report

val merge_all : report list -> report
(** Merge many reports (e.g. per-domain or per-corpus) in list order
    with a single concatenation — linear where a fold of {!merge}
    would be quadratic in the total skip count. *)

val run :
  ?pool:Parallel.pool ->
  f:(string -> string -> 'a) ->
  (string * string) list ->
  'a list * report
(** [run ~f sources] applies [f name source] to every file, keeping
    the successful results in source order. Files are fanned out over
    [pool] (default: the shared {!Parallel.get_pool}); results and the
    skip report are merged back in source order, so the output is
    identical for every job count, and byte-identical to a sequential
    run when the pool has one job. [f] must be pure per file. *)

val stream :
  ?pool:Parallel.pool ->
  ?batch:int ->
  f:(string -> string -> 'a) ->
  emit:('a -> unit) ->
  (string * string) list ->
  report
(** {!run}, out-of-core: sources are processed in batches of [batch]
    (default 64) files; each batch fans out over the pool, then its
    results pass to [emit] one by one — in source order, exactly the
    order {!run} would have returned them — and are dropped. Peak
    memory is one batch of results instead of the whole corpus; [emit]
    typically appends to shard files ({!Corpus.Shard}). [emit] runs on
    the calling domain. *)

val counts : report -> (Lexkit.Diag.kind * int) list
(** Skips bucketed by error kind; only non-zero buckets, in the
    declaration order of {!Lexkit.Diag.kind}. *)

val worst : ?n:int -> report -> skip list
(** The [n] (default 3) largest skipped files — the usual suspects
    when a corpus run loses data. *)

val pp : Format.formatter -> report -> unit
val to_string : report -> string

val log : label:string -> report -> unit
(** Emit the report on the [pigeon.ingest] log source: a warning when
    anything was skipped, debug chatter otherwise. *)
