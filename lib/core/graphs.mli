(** Building CRF factor graphs from generic ASTs — the bridge between
    the path representation and the learners.

    Program elements become CRF nodes exactly as in Nice2Predict:
    occurrences of the same local variable (same binder) merge into one
    node, as do occurrences of the same external name or constant.
    Path-contexts become factors: a path between occurrences of two
    distinct elements is a pairwise factor whose relation is the
    abstracted path; a path between two occurrences of the *same*
    element becomes a unary factor. *)

type repr = {
  config : Astpath.Config.t;
  abstraction : Astpath.Abstraction.t;
  downsample_p : float;  (** Keep-probability for path-context occurrences. *)
  use_unary : bool;  (** The paper's +1.5% unary-factor extension. *)
  statement_local : bool;
      (** UnuglifyJS-style restriction: only paths that stay inside a
          single simple statement (no control-flow node on the path) —
          the baseline of Raychev et al. that Fig. 3 shows is weaker. *)
  seed : int;
}

val default_repr : ?config:Astpath.Config.t -> unit -> repr

type policy =
  | Locals  (** Variable-name task: locals/params unknown, rest known. *)
  | Methods of { internal_only : bool }
      (** Method-name task: definition names unknown (merged with their
          same-file invocations unless [internal_only]), all other
          names — including locals — known. *)

val build : repr -> def_labels:string list -> policy:policy -> Ast.Tree.t -> Crf.Graph.t

val build_cached :
  repr ->
  def_labels:string list ->
  policy:policy ->
  cache:Astpath.Cache.t ->
  Ast.Tree.t ->
  Crf.Graph.t
(** [build] through a session's incremental extraction cache: the
    index is built over the cache's shared label table and contexts
    stream through {!Astpath.Extract.iter_all_cached}, so unchanged
    subtrees of a previously extracted buffer replay instead of
    re-extracting. The resulting graph is identical to {!build}'s when
    [repr.downsample_p = 1.0] (the cached stream is byte-identical to
    the from-scratch one); a downsampling repr falls back to {!build}
    — the cache contract covers the full stream only. *)

val full_type_graph : repr -> Ast.Tree.t -> Crf.Graph.t
(** Full-type task over a typed tree (tags ["type:..."]): each tagged
    expression nonterminal is an unknown node whose factors are its
    leaf→nonterminal paths. *)

val type_tag_prefix : string
