type mode =
  | Paths of Graphs.repr
  | Path_neighbors of Astpath.Config.t
  | Linear_tokens of int

let mode_name = function
  | Paths _ -> "AST paths"
  | Path_neighbors _ -> "path-neighbors, no-paths"
  | Linear_tokens w -> Printf.sprintf "linear token-stream (window %d)" w

let self_placeholder = "<SELF>"

(* Locals of a tree: binder id -> name, excluding definition names. *)
let locals_of idx ~def_labels =
  let tbl = Hashtbl.create 16 in
  let defs = Hashtbl.create 4 in
  Array.iter
    (fun leaf ->
      match Ast.Index.sort idx leaf with
      | Some (Ast.Tree.Var i) ->
          if List.mem (Ast.Index.label idx leaf) def_labels then
            Hashtbl.replace defs i ();
          if not (Hashtbl.mem tbl i) then
            Hashtbl.add tbl i
              (Option.value (Ast.Index.value idx leaf) ~default:"?")
      | _ -> ())
    (Ast.Index.leaves idx);
  Hashtbl.iter (fun i () -> Hashtbl.remove tbl i) defs;
  tbl

let path_pairs ~hide_path ~(repr : Graphs.repr) lang src =
  let idx = Ast.Index.build (lang.Lang.parse_tree src) in
  let locals = locals_of idx ~def_labels:lang.Lang.def_labels in
  let binder_of leaf =
    match Ast.Index.sort idx leaf with
    | Some (Ast.Tree.Var i) when Hashtbl.mem locals i -> Some i
    | _ -> None
  in
  (* Lexical-substitution setting (Section 3.2): every context word is
     observed except the target element itself — another occurrence of
     the *same* element inside a context is masked, everything else
     (including other variables) keeps its value. *)
  let value_of ~target leaf =
    match binder_of leaf with
    | Some b when b = target -> self_placeholder
    | _ -> Option.value (Ast.Index.value idx leaf) ~default:"?"
  in
  let rng = Random.State.make [| repr.Graphs.seed |] in
  let per_binder = Hashtbl.create 16 in
  let record binder ctx =
    let cur = Option.value (Hashtbl.find_opt per_binder binder) ~default:[] in
    Hashtbl.replace per_binder binder (ctx :: cur)
  in
  (* Streamed off the extraction iterator; leaf occurrences are
     downsampled before pair enumeration (paper §5.5). *)
  let rel_memo = Astpath.Abstraction.memo repr.Graphs.abstraction in
  Astpath.Extract.iter_all
    ~downsample:(rng, repr.Graphs.downsample_p)
    idx repr.Graphs.config
    (fun (c : Astpath.Context.t) ->
      let ctx_string ~target (c : Astpath.Context.t) other =
        if hide_path then value_of ~target other
        else
          Astpath.Abstraction.apply_memo rel_memo c
          ^ "\x1f" ^ value_of ~target other
      in
      (match binder_of c.Astpath.Context.start_node with
      | Some b -> record b (ctx_string ~target:b c c.Astpath.Context.end_node)
      | None -> ());
      match binder_of c.Astpath.Context.end_node with
      | Some b ->
          let r = Astpath.Context.reverse c in
          record b (ctx_string ~target:b r r.Astpath.Context.end_node)
      | None -> ());
  Hashtbl.fold
    (fun binder ctxs acc -> (Hashtbl.find locals binder, List.rev ctxs) :: acc)
    per_binder []

let token_pairs ~window lang src =
  let tokens = Array.of_list (lang.Lang.tokens src) in
  (* Which token strings are local names in this file? *)
  let idx = Ast.Index.build (lang.Lang.parse_tree src) in
  let locals = locals_of idx ~def_labels:lang.Lang.def_labels in
  let local_names = Hashtbl.create 16 in
  Hashtbl.iter (fun _ name -> Hashtbl.replace local_names name ()) locals;
  let masked ~target i =
    if String.equal tokens.(i) target then self_placeholder else tokens.(i)
  in
  let per_name = Hashtbl.create 16 in
  Array.iteri
    (fun i tok ->
      if Hashtbl.mem local_names tok then begin
        let ctxs = ref [] in
        for off = -window to window do
          let j = i + off in
          if off <> 0 && j >= 0 && j < Array.length tokens then
            (* Original word2vec: an unpositioned bag of window words. *)
            ctxs := masked ~target:tok j :: !ctxs
        done;
        let cur = Option.value (Hashtbl.find_opt per_name tok) ~default:[] in
        Hashtbl.replace per_name tok (List.rev !ctxs @ cur)
      end)
    tokens;
  Hashtbl.fold (fun name ctxs acc -> (name, ctxs) :: acc) per_name []

let pairs_of_source ~lang ~mode src =
  match mode with
  | Paths repr -> path_pairs ~hide_path:false ~repr lang src
  | Path_neighbors config ->
      let repr = Graphs.default_repr ~config () in
      path_pairs ~hide_path:true ~repr lang src
  | Linear_tokens window -> token_pairs ~window lang src

(* ---------- Out-of-core: training pairs on disk ---------- *)

let extract_pair_shards ?pool ?batch ?records_per_shard ~lang ~mode ~dir
    sources =
  let w =
    Corpus.Shard.create_writer ~dir ~kind:Corpus.Shard.Pairs ?records_per_shard
      ()
  in
  let report =
    Ingest.stream ?pool ?batch
      ~f:(fun _name src -> pairs_of_source ~lang ~mode src)
      ~emit:(fun elems ->
        List.iter
          (fun (name, ctxs) ->
            let wid = Corpus.Shard.intern w name in
            List.iter
              (fun c -> Corpus.Shard.add_pair w wid (Corpus.Shard.intern w c))
              ctxs)
          elems)
      sources
  in
  (Corpus.Shard.finish w, report)

type plan = {
  plan_set : Corpus.Shard.set;
  plan_words : Word2vec.Vocab.t;
  plan_contexts : Word2vec.Vocab.t;
  plan_sizes : int array;
}

(* Decode one shard and drop pairs whose word or context fell to
   min_count — the exact filter [Sgns.prepare] applies in memory, so
   the streamed pair sequence matches what the in-memory trainer would
   see. *)
let plan_pairs plan s =
  let raw = Corpus.Shard.pairs plan.plan_set s in
  let out = Array.make (max (Array.length raw) 1) (0, 0) in
  let k = ref 0 in
  Array.iter
    (fun (a, b) ->
      let va = Word2vec.Vocab.of_interned plan.plan_words a
      and vb = Word2vec.Vocab.of_interned plan.plan_contexts b in
      if va >= 0 && vb >= 0 then begin
        out.(!k) <- (va, vb);
        incr k
      end)
    raw;
  Array.sub out 0 !k

(* Counting is per interned id over the set's (already resident)
   string table — exact, one int-array slot per distinct string — then
   both vocabularies share that table, so the remap in [plan_pairs] is
   two array lookups per pair, no string hashing. Everything is
   derived deterministically from the shard set, so a resumed run
   rebuilds vocabularies and shard sizes identical to the saving
   run's. *)
let plan_of_set ?(min_count = 1) set =
  (match Corpus.Shard.kind set with
  | Corpus.Shard.Pairs -> ()
  | k ->
      invalid_arg
        ("W2v_task.plan_of_set: a " ^ Corpus.Shard.kind_name k ^ " shard set"));
  let n = Corpus.Shard.n_strings set in
  let wc = Array.make (max n 1) 0 and cc = Array.make (max n 1) 0 in
  Corpus.Shard.fold_pairs set ~init:() ~f:(fun () a b ->
      wc.(a) <- wc.(a) + 1;
      cc.(b) <- cc.(b) + 1);
  let tab = Corpus.Shard.strtab set in
  let words = Word2vec.Vocab.of_strtab ~min_count tab (Array.sub wc 0 n) in
  let contexts = Word2vec.Vocab.of_strtab ~min_count tab (Array.sub cc 0 n) in
  let plan =
    { plan_set = set; plan_words = words; plan_contexts = contexts;
      plan_sizes = [||] }
  in
  let plan_sizes =
    Array.init (Corpus.Shard.n_shards set) (fun s ->
        Array.length (plan_pairs plan s))
  in
  { plan with plan_sizes }

type result = {
  summary : Metrics.summary;
  model : Word2vec.Sgns.t;
  train_skips : Ingest.report;
  test_skips : Ingest.report;
}

let run ?pool ?parallel_mode ?(sgns_config = Word2vec.Sgns.default_config)
    ~lang ~mode ~train ~test () =
  let collect label sources =
    let per_file, report =
      Ingest.run ~f:(fun _name src -> pairs_of_source ~lang ~mode src) sources
    in
    Ingest.log ~label:(lang.Lang.name ^ " w2v " ^ label) report;
    (List.concat per_file, report)
  in
  let train_elems, train_skips = collect "train" train in
  let train_pairs =
    List.concat_map
      (fun (name, ctxs) -> List.map (fun c -> (name, c)) ctxs)
      train_elems
  in
  let model =
    Word2vec.Sgns.train ?pool ?mode:parallel_mode ~config:sgns_config
      train_pairs
  in
  let test_elems, test_skips = collect "test" test in
  let eval =
    List.filter_map
      (fun (gold, ctxs) ->
        match Word2vec.Sgns.predict model ctxs with
        | (pred, _) :: _ -> Some (gold, pred)
        | [] -> None)
      test_elems
  in
  { summary = Metrics.summarize eval; model; train_skips; test_skips }
