type result = {
  summary : Metrics.summary;
  train_seconds : float;
  model : Crf.Train.model;
  train_skips : Ingest.report;
  test_skips : Ingest.report;
}

let graphs_of_sources_report ?pool ~repr ~lang ~policy sources =
  Ingest.run ?pool
    ~f:(fun _name src ->
      Graphs.build repr ~def_labels:lang.Lang.def_labels ~policy
        (lang.Lang.parse_tree src))
    sources

let graphs_of_sources ~repr ~lang ~policy sources =
  let graphs, report = graphs_of_sources_report ~repr ~lang ~policy sources in
  Ingest.log ~label:lang.Lang.name report;
  graphs

let eval_pairs ?pool model graphs =
  let preds = Crf.Train.predict_batch ?pool model graphs in
  List.concat
    (List.map2
       (fun g pred ->
         let gold = Crf.Graph.gold_assignment g in
         List.map (fun n -> (gold.(n), pred.(n))) (Crf.Graph.unknown_ids g))
       graphs preds)

let run_crf ?pool ?repr ?(crf_config = Crf.Train.default_config) ~lang ~policy
    ~train ~test () =
  let repr =
    match repr with
    | Some r -> r
    | None ->
        let config =
          match policy with
          | Graphs.Locals -> lang.Lang.tuned
          | Graphs.Methods _ -> lang.Lang.tuned_method
        in
        Graphs.default_repr ~config ()
  in
  (* Method names draw from a larger label vocabulary than variable
     names; give candidate pruning a bigger budget there. *)
  let crf_config =
    match policy with
    | Graphs.Methods _ ->
        {
          crf_config with
          Crf.Train.inference =
            {
              crf_config.Crf.Train.inference with
              Crf.Inference.max_candidates = 64;
            };
        }
    | Graphs.Locals -> crf_config
  in
  let train_graphs, train_skips =
    graphs_of_sources_report ~repr ~lang ~policy train
  in
  let test_graphs, test_skips =
    graphs_of_sources_report ~repr ~lang ~policy test
  in
  Ingest.log ~label:(lang.Lang.name ^ " train") train_skips;
  Ingest.log ~label:(lang.Lang.name ^ " test") test_skips;
  let t0 = Unix.gettimeofday () in
  let model = Crf.Train.train ?pool ~config:crf_config train_graphs in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let summary = Metrics.summarize (eval_pairs model test_graphs) in
  { summary; train_seconds; model; train_skips; test_skips }

let typed_graphs_report ~repr sources =
  match Lang.java.Lang.parse_typed_tree with
  | None ->
      invalid_arg "Task.typed_graphs: the Java front-end has no typed parser"
  | Some parse ->
      Ingest.run
        ~f:(fun _name src -> Graphs.full_type_graph repr (parse src))
        sources

let typed_graphs ~repr sources =
  let graphs, report = typed_graphs_report ~repr sources in
  Ingest.log ~label:"java-typed" report;
  graphs

let run_full_types ?pool ?repr ?(crf_config = Crf.Train.default_config) ~train
    ~test () =
  let repr =
    match repr with
    | Some r -> r
    | None ->
        Graphs.default_repr
          ~config:(Astpath.Config.make ~max_length:4 ~max_width:1 ())
          ()
  in
  let train_graphs, train_skips = typed_graphs_report ~repr train in
  let test_graphs, test_skips = typed_graphs_report ~repr test in
  Ingest.log ~label:"java-typed train" train_skips;
  Ingest.log ~label:"java-typed test" test_skips;
  let t0 = Unix.gettimeofday () in
  let model = Crf.Train.train ?pool ~config:crf_config train_graphs in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let summary = Metrics.summarize (eval_pairs model test_graphs) in
  { summary; train_seconds; model; train_skips; test_skips }

let string_of_type_baseline test =
  let repr =
    Graphs.default_repr
      ~config:(Astpath.Config.make ~max_length:4 ~max_width:1 ())
      ()
  in
  let graphs = typed_graphs ~repr test in
  let pairs =
    List.concat_map
      (fun g ->
        let gold = Crf.Graph.gold_assignment g in
        List.map
          (fun n -> (gold.(n), "java.lang.String"))
          (Crf.Graph.unknown_ids g))
      graphs
  in
  Metrics.summarize pairs
