type result = {
  summary : Metrics.summary;
  train_seconds : float;
  model : Crf.Train.model;
  train_skips : Ingest.report;
  test_skips : Ingest.report;
}

let graphs_of_sources_report ?pool ~repr ~lang ~policy sources =
  Ingest.run ?pool
    ~f:(fun _name src ->
      Graphs.build repr ~def_labels:lang.Lang.def_labels ~policy
        (lang.Lang.parse_tree src))
    sources

let graphs_of_sources ~repr ~lang ~policy sources =
  let graphs, report = graphs_of_sources_report ~repr ~lang ~policy sources in
  Ingest.log ~label:lang.Lang.name report;
  graphs

let eval_pairs ?pool model graphs =
  let preds = Crf.Train.predict_batch ?pool model graphs in
  List.concat
    (List.map2
       (fun g pred ->
         let gold = Crf.Graph.gold_assignment g in
         List.map (fun n -> (gold.(n), pred.(n))) (Crf.Graph.unknown_ids g))
       graphs preds)

let run_crf ?pool ?repr ?(crf_config = Crf.Train.default_config) ~lang ~policy
    ~train ~test () =
  let repr =
    match repr with
    | Some r -> r
    | None ->
        let config =
          match policy with
          | Graphs.Locals -> lang.Lang.tuned
          | Graphs.Methods _ -> lang.Lang.tuned_method
        in
        Graphs.default_repr ~config ()
  in
  (* Method names draw from a larger label vocabulary than variable
     names; give candidate pruning a bigger budget there. *)
  let crf_config =
    match policy with
    | Graphs.Methods _ ->
        {
          crf_config with
          Crf.Train.inference =
            {
              crf_config.Crf.Train.inference with
              Crf.Inference.max_candidates = 64;
            };
        }
    | Graphs.Locals -> crf_config
  in
  let train_graphs, train_skips =
    graphs_of_sources_report ~repr ~lang ~policy train
  in
  let test_graphs, test_skips =
    graphs_of_sources_report ~repr ~lang ~policy test
  in
  Ingest.log ~label:(lang.Lang.name ^ " train") train_skips;
  Ingest.log ~label:(lang.Lang.name ^ " test") test_skips;
  let t0 = Unix.gettimeofday () in
  let model = Crf.Train.train ?pool ~config:crf_config train_graphs in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let summary = Metrics.summarize (eval_pairs model test_graphs) in
  { summary; train_seconds; model; train_skips; test_skips }

(* ---------- Out-of-core: factor graphs on disk ---------- *)

(* The shard layer stores graphs as interned ids only (it sits below
   Crf in the library graph); these two converters are the bridge.
   [Graph.make] is idempotent on an already-merged factor list and
   keeps first-occurrence order, so write → read round-trips to a
   structurally identical graph. *)
let rec_of_graph ~intern (g : Crf.Graph.t) =
  let pw = ref [] and un = ref [] in
  List.iter
    (function
      | Crf.Graph.Pairwise { a; b; rel; mult } ->
          pw := (a, b, intern rel, mult) :: !pw
      | Crf.Graph.Unary { n; rel; mult } -> un := (n, intern rel, mult) :: !un)
    g.Crf.Graph.factors;
  {
    Corpus.Shard.g_gold =
      Array.map (fun (n : Crf.Graph.node) -> intern n.Crf.Graph.gold) g.nodes;
    g_unknown =
      Array.map (fun (n : Crf.Graph.node) -> n.kind = `Unknown) g.nodes;
    g_pw = Array.of_list (List.rev !pw);
    g_un = Array.of_list (List.rev !un);
  }

let graph_of_rec ~resolve (r : Corpus.Shard.graph_rec) =
  let nodes =
    List.init
      (Array.length r.Corpus.Shard.g_gold)
      (fun i ->
        {
          Crf.Graph.id = i;
          gold = resolve r.Corpus.Shard.g_gold.(i);
          kind = (if r.Corpus.Shard.g_unknown.(i) then `Unknown else `Known);
        })
  in
  let factors =
    Array.to_list
      (Array.map
         (fun (a, b, rel, mult) ->
           Crf.Graph.Pairwise { a; b; rel = resolve rel; mult })
         r.Corpus.Shard.g_pw)
    @ Array.to_list
        (Array.map
           (fun (n, rel, mult) ->
             Crf.Graph.Unary { n; rel = resolve rel; mult })
           r.Corpus.Shard.g_un)
  in
  Crf.Graph.make ~nodes ~factors

let extract_graph_shards ?pool ?batch ?records_per_shard ~repr ~lang ~policy
    ~dir sources =
  let w =
    Corpus.Shard.create_writer ~dir ~kind:Corpus.Shard.Graphs
      ?records_per_shard ()
  in
  let intern = Corpus.Shard.intern w in
  let report =
    Ingest.stream ?pool ?batch
      ~f:(fun _name src ->
        Graphs.build repr ~def_labels:lang.Lang.def_labels ~policy
          (lang.Lang.parse_tree src))
      ~emit:(fun g -> Corpus.Shard.add_graph w (rec_of_graph ~intern g))
      sources
  in
  (Corpus.Shard.finish w, report)

let graphs_of_shard set s =
  let resolve = Corpus.Shard.string_of_id set in
  Array.to_list (Array.map (graph_of_rec ~resolve) (Corpus.Shard.graphs set s))

let typed_graphs_report ~repr sources =
  match Lang.java.Lang.parse_typed_tree with
  | None ->
      invalid_arg "Task.typed_graphs: the Java front-end has no typed parser"
  | Some parse ->
      Ingest.run
        ~f:(fun _name src -> Graphs.full_type_graph repr (parse src))
        sources

let typed_graphs ~repr sources =
  let graphs, report = typed_graphs_report ~repr sources in
  Ingest.log ~label:"java-typed" report;
  graphs

let run_full_types ?pool ?repr ?(crf_config = Crf.Train.default_config) ~train
    ~test () =
  let repr =
    match repr with
    | Some r -> r
    | None ->
        Graphs.default_repr
          ~config:(Astpath.Config.make ~max_length:4 ~max_width:1 ())
          ()
  in
  let train_graphs, train_skips = typed_graphs_report ~repr train in
  let test_graphs, test_skips = typed_graphs_report ~repr test in
  Ingest.log ~label:"java-typed train" train_skips;
  Ingest.log ~label:"java-typed test" test_skips;
  let t0 = Unix.gettimeofday () in
  let model = Crf.Train.train ?pool ~config:crf_config train_graphs in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let summary = Metrics.summarize (eval_pairs model test_graphs) in
  { summary; train_seconds; model; train_skips; test_skips }

let string_of_type_baseline test =
  let repr =
    Graphs.default_repr
      ~config:(Astpath.Config.make ~max_length:4 ~max_width:1 ())
      ()
  in
  let graphs = typed_graphs ~repr test in
  let pairs =
    List.concat_map
      (fun g ->
        let gold = Crf.Graph.gold_assignment g in
        List.map
          (fun n -> (gold.(n), "java.lang.String"))
          (Crf.Graph.unknown_ids g))
      graphs
  in
  Metrics.summarize pairs
