let crf_top_k ~model ~repr ~lang ~source ~var ~k =
  match Lexkit.protect (fun () -> lang.Lang.parse_tree source) with
  | Error _ -> []
  | Ok tree -> (
      let g =
        Graphs.build repr ~def_labels:lang.Lang.def_labels ~policy:Graphs.Locals
          tree
      in
      let gold = Crf.Graph.gold_assignment g in
      let target =
        List.find_opt
          (fun n -> String.equal gold.(n) var)
          (Crf.Graph.unknown_ids g)
      in
      match target with
      | None -> []
      | Some node -> Crf.Train.top_k model g ~node ~k)

let w2v_neighbors ~model ~names ~k =
  List.map
    (fun name ->
      ( name,
        List.map fst (Word2vec.Sgns.most_similar model name ~k) ))
    names
