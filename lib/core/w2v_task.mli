(** Variable-name prediction with word2vec (paper Section 5.3.1,
    Table 3), with the two context baselines of the paper.

    A program element (a local variable) is represented by the set of
    contexts of all its occurrences; its name is predicted by the
    paper's equation (4): the vocabulary word maximizing the summed
    dot-product with the context vectors. Other unknown locals
    appearing inside a context are masked with a placeholder (at both
    training and test time), since their names are stripped too. *)

type mode =
  | Paths of Graphs.repr
      (** AST-path contexts: (abstracted path, other-end value). *)
  | Path_neighbors of Astpath.Config.t
      (** Same surrounding nodes, path hidden: other-end value only —
          the paper's "path-neighbors, no-paths" baseline. *)
  | Linear_tokens of int
      (** Surrounding tokens within the given window, annotated with
          their offset — the classic word2vec context. *)

val mode_name : mode -> string

val pairs_of_source : lang:Lang.t -> mode:mode -> string -> (string * string list) list
(** [(variable name, contexts of all its occurrences)] for each local
    element of one source file. *)

type result = {
  summary : Metrics.summary;
  model : Word2vec.Sgns.t;
  train_skips : Ingest.report;  (** what the training corpus lost *)
  test_skips : Ingest.report;  (** what the test corpus lost *)
}

val run :
  ?pool:Parallel.pool ->
  ?parallel_mode:Word2vec.Sgns.parallel_mode ->
  ?sgns_config:Word2vec.Sgns.config ->
  lang:Lang.t ->
  mode:mode ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  result
(** [pool] opts SGNS *training* into sharded parallel epochs under
    [parallel_mode] (see {!Word2vec.Sgns.train}); pair collection
    always fans out over the ambient shared pool, which never changes
    its results. *)
