(** Variable-name prediction with word2vec (paper Section 5.3.1,
    Table 3), with the two context baselines of the paper.

    A program element (a local variable) is represented by the set of
    contexts of all its occurrences; its name is predicted by the
    paper's equation (4): the vocabulary word maximizing the summed
    dot-product with the context vectors. Other unknown locals
    appearing inside a context are masked with a placeholder (at both
    training and test time), since their names are stripped too. *)

type mode =
  | Paths of Graphs.repr
      (** AST-path contexts: (abstracted path, other-end value). *)
  | Path_neighbors of Astpath.Config.t
      (** Same surrounding nodes, path hidden: other-end value only —
          the paper's "path-neighbors, no-paths" baseline. *)
  | Linear_tokens of int
      (** Surrounding tokens within the given window, annotated with
          their offset — the classic word2vec context. *)

val mode_name : mode -> string

val pairs_of_source : lang:Lang.t -> mode:mode -> string -> (string * string list) list
(** [(variable name, contexts of all its occurrences)] for each local
    element of one source file. *)

(** {2 Out-of-core training}

    Pairs stream through {!Ingest.stream} into a [Pairs]
    {!Corpus.Shard} set; a {!plan} then derives everything
    {!Word2vec.Sgns.train_stream} needs from the finished set —
    vocabularies, post-filter shard sizes, and the per-shard pair
    loader. Every piece is a deterministic function of the set, so a
    resumed run rebuilds the exact state of the run that checkpointed. *)

val extract_pair_shards :
  ?pool:Parallel.pool ->
  ?batch:int ->
  ?records_per_shard:int ->
  lang:Lang.t ->
  mode:mode ->
  dir:string ->
  (string * string) list ->
  Corpus.Shard.set * Ingest.report
(** Extract (word, context) pairs file by file into a shard set under
    [dir]; peak memory is one ingestion batch plus one shard buffer.
    Same fault isolation as {!run}'s collection phase. *)

type plan = {
  plan_set : Corpus.Shard.set;
  plan_words : Word2vec.Vocab.t;  (** over words at [min_count] *)
  plan_contexts : Word2vec.Vocab.t;
  plan_sizes : int array;
      (** pairs per shard surviving the [min_count] filter — the
          [shard_sizes] {!Word2vec.Sgns.train_stream} wants *)
}

val plan_of_set : ?min_count:int -> Corpus.Shard.set -> plan
(** Count both sides of every pair (one streaming pass), build both
    vocabularies over the set's string table, and measure the
    post-filter shard sizes (a second pass). Raises [Invalid_argument]
    on a non-[Pairs] set. *)

val plan_pairs : plan -> int -> (int * int) array
(** Load shard [s] as vocab-id pairs, dropping pairs with a filtered
    side — exactly {!Word2vec.Sgns.prepare}'s in-memory filter.
    Returns [plan_sizes.(s)] pairs, identical on every call. *)

type result = {
  summary : Metrics.summary;
  model : Word2vec.Sgns.t;
  train_skips : Ingest.report;  (** what the training corpus lost *)
  test_skips : Ingest.report;  (** what the test corpus lost *)
}

val run :
  ?pool:Parallel.pool ->
  ?parallel_mode:Word2vec.Sgns.parallel_mode ->
  ?sgns_config:Word2vec.Sgns.config ->
  lang:Lang.t ->
  mode:mode ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  result
(** [pool] opts SGNS *training* into sharded parallel epochs under
    [parallel_mode] (see {!Word2vec.Sgns.train}); pair collection
    always fans out over the ambient shared pool, which never changes
    its results. *)
