(** End-to-end prediction tasks: sources → trees → graphs → CRF
    train/evaluate. The three tasks of the paper's Section 5. *)

type result = {
  summary : Metrics.summary;
  train_seconds : float;
  model : Crf.Train.model;
  train_skips : Ingest.report;  (** what the training corpus lost *)
  test_skips : Ingest.report;  (** what the test corpus lost *)
}

val graphs_of_sources_report :
  ?pool:Parallel.pool ->
  repr:Graphs.repr ->
  lang:Lang.t ->
  policy:Graphs.policy ->
  (string * string) list ->
  Crf.Graph.t list * Ingest.report
(** Parse every (filename, source), lower, and build one factor graph
    per file. Every per-file failure — parse error, resource limit,
    anything a hostile input can provoke — is isolated and tallied in
    the report; the run never aborts. Files fan out over [pool]
    (default: the ambient shared pool); graphs and report are
    identical for every job count. *)

val graphs_of_sources :
  repr:Graphs.repr ->
  lang:Lang.t ->
  policy:Graphs.policy ->
  (string * string) list ->
  Crf.Graph.t list
(** {!graphs_of_sources_report} with the report sent to the log, as a
    real corpus pipeline would. *)

(** {2 Out-of-core extraction}

    The disk-backed side of streaming CRF training: build graphs file
    by file, convert them to interned-id records and append them to a
    {!Corpus.Shard} set, so training ({!Crf.Train.train_of_shards})
    can later stream them back one bounded shard at a time. *)

val rec_of_graph :
  intern:(string -> int) -> Crf.Graph.t -> Corpus.Shard.graph_rec
(** Encode a factor graph for the shard layer; [intern] maps every
    label and relation string to its id (typically
    [Corpus.Shard.intern writer]). *)

val graph_of_rec :
  resolve:(int -> string) -> Corpus.Shard.graph_rec -> Crf.Graph.t
(** Inverse of {!rec_of_graph}; round-trips to a structurally
    identical graph (tested). Raises [Invalid_argument] on a record
    whose shape {!Crf.Graph.make} rejects. *)

val extract_graph_shards :
  ?pool:Parallel.pool ->
  ?batch:int ->
  ?records_per_shard:int ->
  repr:Graphs.repr ->
  lang:Lang.t ->
  policy:Graphs.policy ->
  dir:string ->
  (string * string) list ->
  Corpus.Shard.set * Ingest.report
(** {!graphs_of_sources_report}, out-of-core: graphs stream through
    {!Ingest.stream} straight into a [Graphs] shard set under [dir]
    and are dropped — peak memory is one ingestion batch plus one
    shard buffer, never the corpus. Same fault isolation and the same
    source-order determinism as the in-memory path. *)

val graphs_of_shard : Corpus.Shard.set -> int -> Crf.Graph.t list
(** Decode one shard back to factor graphs — the
    [graphs_of_shard] closure {!Crf.Train.train_of_shards} wants.
    Raises [Lexkit.Diag.Error] (kind [Corrupt_model]) on damage. *)

val run_crf :
  ?pool:Parallel.pool ->
  ?repr:Graphs.repr ->
  ?crf_config:Crf.Train.config ->
  lang:Lang.t ->
  policy:Graphs.policy ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  result
(** Variable-name or method-name prediction with CRFs. [repr] defaults
    to the language's tuned config for the chosen task. Accuracy is
    the paper's exact-match metric; [train_seconds] is measured
    wall-clock training time (used by Figs. 11–12).

    [pool] opts *training* into parallel rounds (see {!Crf.Train.train}
    for the exact semantics); ingestion and evaluation always batch
    over the ambient shared pool, which never changes their results. *)

val run_full_types :
  ?pool:Parallel.pool ->
  ?repr:Graphs.repr ->
  ?crf_config:Crf.Train.config ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  result
(** Java full-type prediction (paper Section 5.3.3); uses the typed
    lowering and the tuned length-4/width-1 configuration. *)

val string_of_type_baseline : (string * string) list -> Metrics.summary
(** The naive baseline that predicts [java.lang.String] for every
    evaluated expression. *)
