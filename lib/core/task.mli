(** End-to-end prediction tasks: sources → trees → graphs → CRF
    train/evaluate. The three tasks of the paper's Section 5. *)

type result = {
  summary : Metrics.summary;
  train_seconds : float;
  model : Crf.Train.model;
  train_skips : Ingest.report;  (** what the training corpus lost *)
  test_skips : Ingest.report;  (** what the test corpus lost *)
}

val graphs_of_sources_report :
  ?pool:Parallel.pool ->
  repr:Graphs.repr ->
  lang:Lang.t ->
  policy:Graphs.policy ->
  (string * string) list ->
  Crf.Graph.t list * Ingest.report
(** Parse every (filename, source), lower, and build one factor graph
    per file. Every per-file failure — parse error, resource limit,
    anything a hostile input can provoke — is isolated and tallied in
    the report; the run never aborts. Files fan out over [pool]
    (default: the ambient shared pool); graphs and report are
    identical for every job count. *)

val graphs_of_sources :
  repr:Graphs.repr ->
  lang:Lang.t ->
  policy:Graphs.policy ->
  (string * string) list ->
  Crf.Graph.t list
(** {!graphs_of_sources_report} with the report sent to the log, as a
    real corpus pipeline would. *)

val run_crf :
  ?pool:Parallel.pool ->
  ?repr:Graphs.repr ->
  ?crf_config:Crf.Train.config ->
  lang:Lang.t ->
  policy:Graphs.policy ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  result
(** Variable-name or method-name prediction with CRFs. [repr] defaults
    to the language's tuned config for the chosen task. Accuracy is
    the paper's exact-match metric; [train_seconds] is measured
    wall-clock training time (used by Figs. 11–12).

    [pool] opts *training* into parallel rounds (see {!Crf.Train.train}
    for the exact semantics); ingestion and evaluation always batch
    over the ambient shared pool, which never changes their results. *)

val run_full_types :
  ?pool:Parallel.pool ->
  ?repr:Graphs.repr ->
  ?crf_config:Crf.Train.config ->
  train:(string * string) list ->
  test:(string * string) list ->
  unit ->
  result
(** Java full-type prediction (paper Section 5.3.3); uses the typed
    lowering and the tuned length-4/width-1 configuration. *)

val string_of_type_baseline : (string * string) list -> Metrics.summary
(** The naive baseline that predicts [java.lang.String] for every
    evaluated expression. *)
