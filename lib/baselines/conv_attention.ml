type model = {
  (* (position, sub-token) -> (body token -> count); the model composes
     a name sub-token by sub-token, like the original network (which
     generates names as sub-token sequences and can produce neologisms —
     hence its characteristic low-exact-match / decent-F1 profile). *)
  profiles : (int * string, (string, int) Hashtbl.t) Hashtbl.t;
  sub_counts : (int * string, int) Hashtbl.t;
  vocab : (string, unit) Hashtbl.t;
  mutable max_positions : int;
  mutable total_methods : int;
}

(* A method-definition subtree is a nonterminal with a direct terminal
   child whose label is one of the language's definition labels. *)
let methods_of_tree ~def_labels tree =
  let out = ref [] in
  let rec walk node =
    let children = Ast.Tree.children node in
    let name =
      List.find_map
        (fun c ->
          match c with
          | Ast.Tree.Terminal { label; value; _ } when List.mem label def_labels ->
              Some value
          | _ -> None)
        children
    in
    (match name with
    | Some name ->
        let tokens =
          List.filter_map Ast.Tree.value (Ast.Tree.leaves node)
          |> List.filter (fun v -> not (String.equal v name))
        in
        out := (name, tokens) :: !out
    | None -> ());
    List.iter walk children
  in
  walk tree;
  List.rev !out

let methods_of_source ~lang src =
  match
    Lexkit.protect (fun () ->
        methods_of_tree ~def_labels:lang.Pigeon.Lang.def_labels
          (lang.Pigeon.Lang.parse_tree src))
  with
  | Ok methods -> methods
  | Error _ -> []

let train ~lang sources =
  let model =
    {
      profiles = Hashtbl.create 256;
      sub_counts = Hashtbl.create 256;
      vocab = Hashtbl.create 512;
      max_positions = 0;
      total_methods = 0;
    }
  in
  List.iter
    (fun (_, src) ->
      List.iter
        (fun (name, tokens) ->
          model.total_methods <- model.total_methods + 1;
          (* an explicit end marker lets decoding learn name lengths *)
          let subs = Pigeon.Metrics.subtokens name @ [ "<end>" ] in
          if List.length subs > model.max_positions then
            model.max_positions <- List.length subs;
          List.iteri
            (fun pos sub ->
              let key = (pos, sub) in
              Hashtbl.replace model.sub_counts key
                (1 + Option.value (Hashtbl.find_opt model.sub_counts key) ~default:0);
              let profile =
                match Hashtbl.find_opt model.profiles key with
                | Some p -> p
                | None ->
                    let p = Hashtbl.create 32 in
                    Hashtbl.add model.profiles key p;
                    p
              in
              List.iter
                (fun tok ->
                  Hashtbl.replace model.vocab tok ();
                  Hashtbl.replace profile tok
                    (1 + Option.value (Hashtbl.find_opt profile tok) ~default:0))
                tokens)
            subs)
        (methods_of_source ~lang src))
    sources;
  model

let predict model ~body_tokens =
  if model.total_methods = 0 then None
  else begin
    let vocab_size = float_of_int (Hashtbl.length model.vocab + 1) in
    (* Greedy sub-token decoding: at each position, pick the naive-Bayes
       best sub-token (or stop). The composed name may be a neologism
       never seen in training — faithful to the original network. *)
    let pick pos =
      let best = ref None in
      Hashtbl.iter
        (fun (p, sub) count ->
          if p = pos then begin
            let profile = Hashtbl.find model.profiles (p, sub) in
            let profile_total =
              float_of_int (Hashtbl.fold (fun _ c acc -> acc + c) profile 0)
            in
            let score =
              ref (log (float_of_int count /. float_of_int model.total_methods))
            in
            List.iter
              (fun tok ->
                let c =
                  float_of_int
                    (Option.value (Hashtbl.find_opt profile tok) ~default:0)
                in
                score := !score +. log ((c +. 1.) /. (profile_total +. vocab_size)))
              body_tokens;
            match !best with
            | Some (_, s) when s >= !score -> ()
            | _ -> best := Some (sub, !score)
          end)
        model.sub_counts;
      Option.map fst !best
    in
    let rec go pos acc =
      if pos >= model.max_positions then List.rev acc
      else
        match pick pos with
        | Some "<end>" | None -> List.rev acc
        | Some sub -> go (pos + 1) (sub :: acc)
    in
    match go 0 [] with
    | [] -> None
    | subs -> Some (String.concat "_" subs)
  end

let run ~lang ~train:train_sources ~test () : Pigeon.Metrics.summary =
  let model = train ~lang train_sources in
  let pairs =
    List.concat_map
      (fun (_, src) ->
        List.filter_map
          (fun (gold, tokens) ->
            Option.map (fun pred -> (gold, pred)) (predict model ~body_tokens:tokens))
          (methods_of_source ~lang src))
      test
  in
  Pigeon.Metrics.summarize pairs
