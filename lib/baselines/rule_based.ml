open Minijava.Syntax
module Types = Minijava.Types

(* Default prediction: lower-cased last segment of the declared type. *)
let type_based_name (ty : Types.t) =
  let rec go = function
    | Types.Prim "int" -> "value"
    | Types.Prim "boolean" -> "flag"
    | Types.Prim "double" -> "value"
    | Types.Prim _ -> "value"
    | Types.Named (q, _) -> (
        match List.rev q with
        | last :: _ -> String.uncapitalize_ascii last
        | [] -> "value")
    | Types.Arr t -> go t ^ "s"
  in
  go ty

(* Does the body contain [this.<field> = <name>;]? *)
let rec setter_field_for name stmts =
  List.find_map
    (fun s ->
      match s with
      | ExprStmt (Assign ("=", FieldAccess (This, field), Ident n))
        when String.equal n name ->
          Some field
      | If (_, t, e) -> (
          match setter_field_for name t with
          | Some f -> Some f
          | None -> Option.bind e (setter_field_for name))
      | Block b | While (_, b) -> setter_field_for name b
      | _ -> None)
    stmts

let rec collect_stmts m_name m_body acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | LocalDecl (ty, ds) ->
          List.fold_left
            (fun acc (n, _) -> (n, type_based_name ty) :: acc)
            acc ds
      | For (init, _, _, body) ->
          let acc =
            match init with
            | Some (LocalDecl (Types.Prim "int", ds)) ->
                (* for (int i = ...) -> "i" *)
                List.fold_left (fun acc (n, _) -> (n, "i") :: acc) acc ds
            | Some (LocalDecl (ty, ds)) ->
                List.fold_left
                  (fun acc (n, _) -> (n, type_based_name ty) :: acc)
                  acc ds
            | _ -> acc
          in
          collect_stmts m_name m_body acc body
      | ForEach (ty, n, _, body) ->
          collect_stmts m_name m_body ((n, type_based_name ty) :: acc) body
      | Try (b, catch, fin) ->
          let acc = collect_stmts m_name m_body acc b in
          let acc =
            match catch with
            | Some (_, v, cb) ->
                collect_stmts m_name m_body ((v, "e") :: acc) cb
            | None -> acc
          in
          Option.fold ~none:acc ~some:(collect_stmts m_name m_body acc) fin
      | If (_, t, e) ->
          let acc = collect_stmts m_name m_body acc t in
          Option.fold ~none:acc ~some:(collect_stmts m_name m_body acc) e
      | While (_, b) | DoWhile (b, _) | Block b ->
          collect_stmts m_name m_body acc b
      | _ -> acc)
    acc stmts

let predict_method m =
  let param_preds =
    List.map
      (fun (ty, n) ->
        (* this.<field> = <param>; or set<Field>(param) *)
        match setter_field_for n m.m_body with
        | Some field -> (n, field)
        | None ->
            let lower = String.lowercase_ascii m.m_name in
            if
              String.length m.m_name > 3
              && String.sub lower 0 3 = "set"
              && List.length m.m_params = 1
            then
              (n, String.uncapitalize_ascii (String.sub m.m_name 3 (String.length m.m_name - 3)))
            else (n, type_based_name ty))
      m.m_params
  in
  collect_stmts m.m_name m.m_body param_preds m.m_body

let predict_program p =
  List.concat_map
    (fun c -> List.concat_map predict_method c.c_methods)
    p.classes

let evaluate sources =
  let per_file, report =
    Pigeon.Ingest.run
      ~f:(fun _name src -> predict_program (Minijava.Parser.parse src))
      sources
  in
  Pigeon.Ingest.log ~label:"rule-based" report;
  Pigeon.Metrics.summarize (List.concat per_file)
