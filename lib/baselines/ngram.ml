(* A token is an element occurrence iff it names a local (unknown, by
   name) or is any other identifier/literal (known). Token streams have
   no binder information, so locals sharing a name within a file merge
   — the honest behavior for a purely token-level model. *)

let graph_of_tree_and_tokens ~n idx ~def_labels tokens =
  (* local names from the tree *)
  let locals = Hashtbl.create 16 in
  let defs = Hashtbl.create 4 in
  Array.iter
    (fun leaf ->
      match Ast.Index.sort idx leaf with
      | Some (Ast.Tree.Var _) ->
          let name = Option.value (Ast.Index.value idx leaf) ~default:"?" in
          if List.mem (Ast.Index.label idx leaf) def_labels then
            Hashtbl.replace defs name ()
          else Hashtbl.replace locals name ()
      | _ -> ())
    (Ast.Index.leaves idx);
  Hashtbl.iter (fun name () -> Hashtbl.remove locals name) defs;
  let is_ident tok =
    String.length tok > 0 && (Lexkit.is_ident_start tok.[0] || Lexkit.is_digit tok.[0])
  in
  let tokens = Array.of_list tokens in
  (* node per distinct element token *)
  let ids = Hashtbl.create 32 in
  let unknown_ids = Hashtbl.create 8 in
  let nodes_rev = ref [] in
  let next = ref 0 in
  let node_of tok =
    if not (is_ident tok) then None
    else
      Some
        (match Hashtbl.find_opt ids tok with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Hashtbl.add ids tok id;
            let kind = if Hashtbl.mem locals tok then `Unknown else `Known in
            if kind = `Unknown then Hashtbl.replace unknown_ids id ();
            nodes_rev := { Crf.Graph.id; gold = tok; kind } :: !nodes_rev;
            id)
  in
  let factors = ref [] in
  let len = Array.length tokens in
  for i = 0 to len - 1 do
    match node_of tokens.(i) with
    | None -> ()
    | Some a ->
        for j = i + 1 to min (len - 1) (i + n - 1) do
          match node_of tokens.(j) with
          | None -> ()
          | Some b when b <> a ->
              let between =
                Array.to_list (Array.sub tokens (i + 1) (j - i - 1))
              in
              let rel =
                Printf.sprintf "%d\x1f%s" (j - i) (String.concat "\x1f" between)
              in
              if Hashtbl.mem unknown_ids a || Hashtbl.mem unknown_ids b then
                factors := Crf.Graph.pairwise ~a ~b ~rel :: !factors
          | Some _ -> ()
        done
  done;
  Crf.Graph.make ~nodes:(List.rev !nodes_rev) ~factors:(List.rev !factors)

let graphs_of_sources ~n ~lang sources =
  let graphs, report =
    Pigeon.Ingest.run
      ~f:(fun _name src ->
        let tree = lang.Pigeon.Lang.parse_tree src in
        let tokens = lang.Pigeon.Lang.tokens src in
        graph_of_tree_and_tokens ~n (Ast.Index.build tree)
          ~def_labels:lang.Pigeon.Lang.def_labels tokens)
      sources
  in
  Pigeon.Ingest.log ~label:("ngram " ^ lang.Pigeon.Lang.name) report;
  graphs

let run ?(n = 4) ?(crf_config = Crf.Train.default_config) ~lang ~train ~test ()
    =
  let train_graphs = graphs_of_sources ~n ~lang train in
  let test_graphs = graphs_of_sources ~n ~lang test in
  let model = Crf.Train.train ~config:crf_config train_graphs in
  let pairs =
    List.concat_map
      (fun g ->
        let pred = Crf.Train.predict model g in
        let gold = Crf.Graph.gold_assignment g in
        List.map (fun i -> (gold.(i), pred.(i))) (Crf.Graph.unknown_ids g))
      test_graphs
  in
  Pigeon.Metrics.summarize pairs
