open Minijava.Syntax
module Types = Minijava.Types

type state = { mutable toks : Token.spanned list; guard : Lexkit.Guard.t }

let peek st = match st.toks with [] -> Token.Eof | { tok; _ } :: _ -> tok

let peek2 st =
  match st.toks with _ :: { tok; _ } :: _ -> tok | _ -> Token.Eof

let pos st =
  match st.toks with [] -> Lexkit.start_pos | { pos; _ } :: _ -> pos

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

(* Depth/step guard around the recursion points of the grammar.
   Exception-safe so [Backtrack] unwinding doesn't leak depth. *)
let guarded st f =
  Lexkit.Guard.enter st.guard (pos st);
  match f () with
  | v ->
      Lexkit.Guard.leave st.guard;
      v
  | exception e ->
      Lexkit.Guard.leave st.guard;
      raise e

exception Backtrack

let try_parse st f =
  let snapshot = st.toks in
  match f st with
  | v -> Some v
  | exception Backtrack ->
      st.toks <- snapshot;
      None
  | exception Lexkit.Error _ ->
      st.toks <- snapshot;
      None

let expect_punct st p =
  match peek st with
  | Token.Punct q when String.equal p q -> advance st
  | t -> Lexkit.error (pos st) "expected %S but found %s" p (Token.to_string t)

let expect_kw st k =
  match peek st with
  | Token.Kw q when String.equal k q -> advance st
  | t -> Lexkit.error (pos st) "expected %S but found %s" k (Token.to_string t)

let eat_punct st p =
  match peek st with
  | Token.Punct q when String.equal p q ->
      advance st;
      true
  | _ -> false

let eat_kw st k =
  match peek st with
  | Token.Kw q when String.equal k q ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match peek st with
  | Token.Ident id ->
      advance st;
      id
  | t -> Lexkit.error (pos st) "expected identifier, found %s" (Token.to_string t)

let prim_types =
  [
    "int"; "bool"; "double"; "long"; "char"; "byte"; "short"; "float";
    "string"; "void"; "var";
  ]

let modifiers =
  [ "public"; "private"; "protected"; "internal"; "static"; "readonly"; "const" ]

let parse_modifiers st =
  let rec go acc =
    match peek st with
    | Token.Kw k when List.mem k modifiers ->
        advance st;
        go (k :: acc)
    | _ -> List.rev acc
  in
  go []

let rec parse_ty st =
  guarded st @@ fun () ->
  let base =
    match peek st with
    | Token.Kw k when List.mem k prim_types ->
        advance st;
        Types.Prim k
    | Token.Ident _ ->
        let rec qual acc =
          let id = expect_ident st in
          if
            Token.equal (peek st) (Token.Punct ".")
            && match peek2 st with Token.Ident _ -> true | _ -> false
          then begin
            advance st;
            qual (id :: acc)
          end
          else List.rev (id :: acc)
        in
        let q = qual [] in
        let args =
          if eat_punct st "<" then begin
            let rec go acc =
              let t = parse_ty st in
              if eat_punct st "," then go (t :: acc)
              else begin
                expect_punct st ">";
                List.rev (t :: acc)
              end
            in
            go []
          end
          else []
        in
        Types.Named (q, args)
    | _ -> raise Backtrack
  in
  let rec arr t =
    if
      Token.equal (peek st) (Token.Punct "[")
      && Token.equal (peek2 st) (Token.Punct "]")
    then begin
      advance st;
      advance st;
      arr (Types.Arr t)
    end
    else t
  in
  arr base

let binop_levels =
  [
    [ "||" ]; [ "&&" ]; [ "|" ]; [ "^" ]; [ "&" ]; [ "=="; "!=" ];
    [ "<"; ">"; "<="; ">=" ]; [ "+"; "-" ]; [ "*"; "/"; "%" ];
  ]

let assign_ops = [ "="; "+="; "-="; "*="; "/="; "%=" ]

let expr_starts st =
  match peek st with
  | Token.Ident _ | Token.IntLit _ | Token.DoubleLit _ | Token.StrLit _
  | Token.CharLit _ ->
      true
  | Token.Kw ("true" | "false" | "null" | "this" | "new") -> true
  | Token.Punct ("(" | "!" | "-" | "~" | "++" | "--") -> true
  | _ -> false

let rec parse_expression st = parse_assign st

and parse_assign st =
  guarded st @@ fun () ->
  let lhs = parse_cond st in
  match peek st with
  | Token.Punct op when List.mem op assign_ops ->
      advance st;
      Assign (op, lhs, parse_assign st)
  | _ -> lhs

and parse_cond st =
  let c = parse_binary st 0 in
  if eat_punct st "?" then begin
    let t = parse_assign st in
    expect_punct st ":";
    let e = parse_assign st in
    Cond (c, t, e)
  end
  else c

and parse_binary st level =
  if level >= List.length binop_levels then parse_is st
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek st with
      | Token.Punct op when List.mem op ops ->
          advance st;
          lhs := Binary (op, !lhs, parse_binary st (level + 1))
      | _ -> continue := false
    done;
    !lhs
  end

and parse_is st =
  let e = parse_unary st in
  if eat_kw st "is" then InstanceOf (e, parse_ty st)
  else if eat_kw st "as" then Cast (parse_ty st, e)
  else e

and parse_unary st =
  guarded st @@ fun () ->
  match peek st with
  | Token.Punct (("!" | "-" | "~") as op) ->
      advance st;
      Unary (op, parse_unary st)
  | Token.Punct (("++" | "--") as op) ->
      advance st;
      Update (op, true, parse_unary st)
  | Token.Punct "(" -> (
      let cast =
        try_parse st (fun st ->
            advance st;
            let t = parse_ty st in
            if not (eat_punct st ")") then raise Backtrack;
            let plausible =
              match t with
              | Types.Prim _ | Types.Arr _ -> true
              | Types.Named (q, args) ->
                  args <> [] || List.length q > 1 || expr_starts st
            in
            if not (plausible && expr_starts st) then raise Backtrack;
            Cast (t, parse_unary st))
      in
      match cast with Some c -> c | None -> parse_postfix st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_call_member st in
  match peek st with
  | Token.Punct (("++" | "--") as op) ->
      advance st;
      Update (op, false, e)
  | _ -> e

and parse_call_member st =
  let e = parse_primary st in
  let rec go e =
    if eat_punct st "." then begin
      let name = expect_ident st in
      if eat_punct st "(" then go (Call (Some e, name, parse_args st))
      else go (FieldAccess (e, name))
    end
    else if eat_punct st "[" then begin
      let i = parse_expression st in
      expect_punct st "]";
      go (Index (e, i))
    end
    else e
  in
  go e

and parse_args st =
  if eat_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_assign st in
      if eat_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  match peek st with
  | Token.IntLit n ->
      advance st;
      IntLit n
  | Token.DoubleLit n ->
      advance st;
      DoubleLit n
  | Token.StrLit s ->
      advance st;
      StrLit s
  | Token.CharLit c ->
      advance st;
      CharLit c
  | Token.Kw "true" ->
      advance st;
      BoolLit true
  | Token.Kw "false" ->
      advance st;
      BoolLit false
  | Token.Kw "null" ->
      advance st;
      NullLit
  | Token.Kw "this" ->
      advance st;
      This
  | Token.Kw "new" -> (
      advance st;
      let t = parse_ty st in
      match peek st with
      | Token.Punct "[" ->
          advance st;
          let n = parse_expression st in
          expect_punct st "]";
          NewArray (t, n)
      | _ ->
          expect_punct st "(";
          New (t, parse_args st))
  | Token.Ident id ->
      advance st;
      if eat_punct st "(" then Call (None, id, parse_args st) else Ident id
  | Token.Punct "(" ->
      advance st;
      let e = parse_expression st in
      expect_punct st ")";
      e
  | t -> Lexkit.error (pos st) "unexpected token %s" (Token.to_string t)

let rec parse_block st =
  expect_punct st "{";
  let rec go acc =
    if eat_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt_list_or_single st =
  if Token.equal (peek st) (Token.Punct "{") then parse_block st
  else [ parse_stmt st ]

and try_local_decl st =
  try_parse st (fun st ->
      let ty = parse_ty st in
      (match peek st with Token.Ident _ -> () | _ -> raise Backtrack);
      let rec go acc =
        let name = expect_ident st in
        let init = if eat_punct st "=" then Some (parse_assign st) else None in
        if eat_punct st "," then go ((name, init) :: acc)
        else List.rev ((name, init) :: acc)
      in
      let ds = go [] in
      if not (eat_punct st ";") then raise Backtrack;
      LocalDecl (ty, ds))

and parse_stmt st =
  guarded st @@ fun () ->
  match peek st with
  | Token.Punct "{" -> Block (parse_block st)
  | Token.Punct ";" ->
      advance st;
      Block []
  | Token.Kw "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expression st in
      expect_punct st ")";
      let t = parse_stmt_list_or_single st in
      let e =
        if eat_kw st "else" then Some (parse_stmt_list_or_single st) else None
      in
      If (c, t, e)
  | Token.Kw "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expression st in
      expect_punct st ")";
      While (c, parse_stmt_list_or_single st)
  | Token.Kw "do" ->
      advance st;
      let body = parse_stmt_list_or_single st in
      expect_kw st "while";
      expect_punct st "(";
      let c = parse_expression st in
      expect_punct st ")";
      ignore (eat_punct st ";");
      DoWhile (body, c)
  | Token.Kw "foreach" ->
      advance st;
      expect_punct st "(";
      let ty = parse_ty st in
      let name = expect_ident st in
      expect_kw st "in";
      let it = parse_expression st in
      expect_punct st ")";
      ForEach (ty, name, it, parse_stmt_list_or_single st)
  | Token.Kw "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if Token.equal (peek st) (Token.Punct ";") then begin
          advance st;
          None
        end
        else
          match try_local_decl st with
          | Some d -> Some d
          | None ->
              let e = parse_expression st in
              expect_punct st ";";
              Some (ExprStmt e)
      in
      let cond =
        if Token.equal (peek st) (Token.Punct ";") then None
        else Some (parse_expression st)
      in
      expect_punct st ";";
      let update =
        if Token.equal (peek st) (Token.Punct ")") then []
        else begin
          let rec go acc =
            let e = parse_expression st in
            if eat_punct st "," then go (e :: acc) else List.rev (e :: acc)
          in
          go []
        end
      in
      expect_punct st ")";
      For (init, cond, update, parse_stmt_list_or_single st)
  | Token.Kw "return" ->
      advance st;
      if eat_punct st ";" then Return None
      else begin
        let e = parse_expression st in
        expect_punct st ";";
        Return (Some e)
      end
  | Token.Kw "break" ->
      advance st;
      expect_punct st ";";
      Break
  | Token.Kw "continue" ->
      advance st;
      expect_punct st ";";
      Continue
  | Token.Kw "try" ->
      advance st;
      let body = parse_block st in
      let catch =
        if eat_kw st "catch" then begin
          expect_punct st "(";
          let ty = parse_ty st in
          let v = expect_ident st in
          expect_punct st ")";
          Some (ty, v, parse_block st)
        end
        else None
      in
      let finally = if eat_kw st "finally" then Some (parse_block st) else None in
      if catch = None && finally = None then
        Lexkit.error (pos st) "try without catch or finally";
      Try (body, catch, finally)
  | Token.Kw "throw" ->
      advance st;
      let e = parse_expression st in
      expect_punct st ";";
      Throw e
  | _ -> (
      match try_local_decl st with
      | Some d -> d
      | None ->
          let e = parse_expression st in
          expect_punct st ";";
          ExprStmt e)

let parse_method st ~mods ~ret ~name =
  expect_punct st "(";
  let params =
    if eat_punct st ")" then []
    else begin
      let rec go acc =
        let ty = parse_ty st in
        let n = expect_ident st in
        if eat_punct st "," then go ((ty, n) :: acc)
        else begin
          expect_punct st ")";
          List.rev ((ty, n) :: acc)
        end
      in
      go []
    end
  in
  let body = parse_block st in
  {
    m_modifiers = mods;
    m_ret = ret;
    m_name = name;
    m_params = params;
    m_throws = [];
    m_body = body;
  }

let parse_member st ~class_name =
  let mods = parse_modifiers st in
  match (peek st, peek2 st) with
  | Token.Ident id, Token.Punct "(" when String.equal id class_name ->
      advance st;
      `Method
        (parse_method st ~mods:("constructor" :: mods) ~ret:(Types.Prim "void")
           ~name:id)
  | _ -> (
      let ty = parse_ty st in
      let name = expect_ident st in
      match peek st with
      | Token.Punct "(" -> `Method (parse_method st ~mods ~ret:ty ~name)
      | _ ->
          let init = if eat_punct st "=" then Some (parse_assign st) else None in
          expect_punct st ";";
          `Field { f_modifiers = mods; f_ty = ty; f_name = name; f_init = init })

let parse_class st =
  let mods = parse_modifiers st in
  let is_interface = eat_kw st "interface" in
  if not is_interface then expect_kw st "class";
  let mods = if is_interface then "interface" :: mods else mods in
  let name = expect_ident st in
  let extends, implements =
    if eat_punct st ":" then begin
      let rec go acc =
        let t = parse_ty st in
        if eat_punct st "," then go (t :: acc) else List.rev (t :: acc)
      in
      match go [] with [] -> (None, []) | base :: rest -> (Some base, rest)
    end
    else (None, [])
  in
  expect_punct st "{";
  let fields = ref [] and methods = ref [] in
  let rec go () =
    if eat_punct st "}" then ()
    else begin
      (match parse_member st ~class_name:name with
      | `Field f -> fields := f :: !fields
      | `Method m -> methods := m :: !methods);
      go ()
    end
  in
  go ();
  {
    c_modifiers = mods;
    c_name = name;
    c_extends = extends;
    c_implements = implements;
    c_fields = List.rev !fields;
    c_methods = List.rev !methods;
  }

let parse_program st =
  let rec usings acc =
    if eat_kw st "using" then begin
      let rec go parts =
        let id = expect_ident st in
        if eat_punct st "." then go (id :: parts)
        else begin
          expect_punct st ";";
          String.concat "." (List.rev (id :: parts))
        end
      in
      usings (go [] :: acc)
    end
    else List.rev acc
  in
  let imports = usings [] in
  let package, classes =
    if eat_kw st "namespace" then begin
      let rec dotted acc =
        let id = expect_ident st in
        if eat_punct st "." then dotted (id :: acc)
        else String.concat "." (List.rev (id :: acc))
      in
      let ns = dotted [] in
      expect_punct st "{";
      let rec go acc =
        if eat_punct st "}" then List.rev acc else go (parse_class st :: acc)
      in
      (Some ns, go [])
    end
    else begin
      let rec go acc =
        match peek st with
        | Token.Eof -> List.rev acc
        | _ -> go (parse_class st :: acc)
      in
      (None, go [])
    end
  in
  { package; imports; classes }

let with_state src f =
  let st = { toks = Lexer.tokenize src; guard = Lexkit.Guard.create () } in
  match f st with
  | v ->
      (match peek st with
      | Token.Eof -> ()
      | t -> Lexkit.error (pos st) "trailing input: %s" (Token.to_string t));
      v
  | exception Backtrack ->
      (* A backtrack point escaped every [try_parse]: no alternative
         matched, which is a plain syntax error, not a crash. *)
      Lexkit.error (pos st) "syntax error at %s" (Token.to_string (peek st))

let parse src = with_state src parse_program
let parse_expr src = with_state src parse_expression
let parse_type src = with_state src parse_ty

let parse_stmts src =
  with_state src (fun st ->
      let rec go acc =
        match peek st with
        | Token.Eof -> List.rev acc
        | _ -> go (parse_stmt st :: acc)
      in
      go [])
