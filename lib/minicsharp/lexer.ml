open Lexkit

let puncts =
  [
    "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "+="; "-="; "*="; "/=";
    "%="; "=>"; "<"; ">"; "+"; "-"; "*"; "/"; "%"; "!"; "="; "("; ")"; "{";
    "}"; "["; "]"; ","; ";"; "."; "?"; ":"; "&"; "|"; "^"; "~";
  ]

let skip_trivia cur =
  let rec go () =
    Cursor.skip_while cur (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r');
    match (Cursor.peek cur, Cursor.peek2 cur) with
    | Some '/', Some '/' ->
        Cursor.skip_while cur (fun c -> c <> '\n');
        go ()
    | Some '/', Some '*' ->
        Cursor.advance cur;
        Cursor.advance cur;
        let rec close () =
          match (Cursor.peek cur, Cursor.peek2 cur) with
          | Some '*', Some '/' ->
              Cursor.advance cur;
              Cursor.advance cur
          | None, _ -> error (Cursor.pos cur) "unterminated block comment"
          | _ ->
              Cursor.advance cur;
              close ()
        in
        close ();
        go ()
    | _ -> ()
  in
  go ()

let tokenize src =
  check_input_size src;
  let cur = Cursor.make src in
  let toks = ref [] in
  let emit tok pos = toks := { Token.tok; pos } :: !toks in
  let starts_with_at off p =
    let n = String.length p in
    off + n <= String.length src && String.sub src off n = p
  in
  (* Progress guarantee: every loop iteration must consume input. *)
  let last_off = ref (-1) in
  let rec go () =
    skip_trivia cur;
    let pos = Cursor.pos cur in
    if pos.offset = !last_off then
      error pos "lexer made no progress (internal invariant)";
    last_off := pos.offset;
    match Cursor.peek cur with
    | None -> emit Token.Eof pos
    | Some c when is_ident_start c ->
        let id = Cursor.take_while cur is_ident_char in
        emit (if Token.is_keyword id then Token.Kw id else Token.Ident id) pos;
        go ()
    | Some c when is_digit c ->
        let lexeme = lex_number cur in
        let suffixed =
          match Cursor.peek cur with
          | Some (('f' | 'F' | 'd' | 'D' | 'm' | 'M' | 'L' | 'l') as s) ->
              Cursor.advance cur;
              lexeme ^ String.make 1 s
          | _ -> lexeme
        in
        emit
          (if
             String.contains suffixed '.'
             || String.exists (fun c -> c = 'f' || c = 'F' || c = 'd' || c = 'D')
                  suffixed
           then Token.DoubleLit suffixed
           else Token.IntLit suffixed)
          pos;
        go ()
    | Some '"' ->
        Cursor.advance cur;
        emit (Token.StrLit (lex_string_literal cur ~quote:'"')) pos;
        go ()
    | Some '\'' ->
        Cursor.advance cur;
        emit (Token.CharLit (lex_string_literal cur ~quote:'\'')) pos;
        go ()
    | Some c -> (
        match List.find_opt (starts_with_at pos.offset) puncts with
        | Some p ->
            String.iter (fun _ -> Cursor.advance cur) p;
            emit (Token.Punct p) pos;
            go ()
        | None -> error pos "unexpected character %C" c)
  in
  go ();
  List.rev !toks

let token_values src =
  List.filter_map
    (fun { Token.tok; _ } ->
      match tok with Token.Eof -> None | t -> Some (Token.to_string t))
    (tokenize src)
