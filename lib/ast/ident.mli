(** Structural subtree identity: the hash-consing pass behind the
    incremental extraction cache.

    [assign ~syms ~tab idx] returns one identity id per node, assigned
    bottom-up through {!Intern.Keytab}: two nodes — in this tree or in
    any tree whose pass shared the same [syms]/[tab] — receive the
    same id exactly when their subtrees are extraction-equivalent:
    same labels, terminal values, and child order. Terminal sorts and
    nonterminal tags are deliberately excluded — extraction never
    observes them, and {!Tree.Var} binder ids are program-global, so
    keying on them would break sharing across unrelated edits. An
    edited file re-indexed against the same session tables therefore
    keeps the ids of every subtree the edit did not touch. *)

val assign :
  syms:Intern.Strtab.t -> tab:Intern.Keytab.t -> Index.t -> int array
(** O(n) probes; [syms] interns the label/value/tag symbols the keys
    are built from, [tab] stores the keys. Both must be the session's
    own — mixing tables across sessions mixes id spaces. *)
