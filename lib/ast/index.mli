(** Array-indexed view of a {!Tree.t}.

    Path extraction needs parents, depths, lowest common ancestors, leaf
    order and sibling ranks for many node pairs; this module computes
    them once per tree. Node ids are preorder positions in [0, size).

    [build] additionally precomputes an Euler tour with a sparse-table
    RMQ (so {!lca} — and with it path length — is O(1) per query), a
    binary-lifting ancestor table (so {!width_between} is O(log depth)),
    interned labels, and hash-table label/value lookups. Everything is
    O(n log n) space and build time. *)

type t

val build : ?labels:Intern.Strtab.t -> Tree.t -> t
(** [labels] interns label ids through the caller's shared table
    instead of a private per-tree one: ids (and canonical strings) are
    then stable across every index built over the same table — the
    property that lets a session-persistent path hash-cons (see
    {!Astpath.Context.Tab}) outlive a single tree in the incremental
    extraction engine. Without it ids are dense per tree as before. *)

val size : t -> int
val root : t -> int

val label : t -> int -> string
(** Label strings are interned per tree: all nodes sharing a label
    return the same physical string. *)

val label_id : t -> int -> int
(** Dense interned id of a node's label, in [0, num_label_ids). *)

val num_label_ids : t -> int
(** Number of distinct labels in the tree — or in the shared table,
    when the index was built over one. *)

val label_of_id : t -> int -> string
(** Canonical string for an interned label id. *)

val shared_labels : t -> Intern.Strtab.t option
(** The shared label table passed to {!build}, if any. *)

val subtree_size : t -> int -> int
(** Nodes in [v]'s subtree (including [v]); node ids are preorder, so
    the subtree is exactly the contiguous id range
    [v, v + subtree_size v). *)

val subtree_leaf_count : t -> int -> int
(** Leaves in [v]'s subtree — also contiguous, in leaf-rank order,
    starting at {!subtree_first_leaf}. *)

val subtree_first_leaf : t -> int -> int
(** Leaf rank of [v]'s leftmost leaf; [-1] for a leafless subtree. *)

val value : t -> int -> string option
val sort : t -> int -> Tree.sort option

val tag : t -> int -> string option
(** Ground-truth tag of a nonterminal (see {!Tree.nt_tag}). *)

val is_leaf : t -> int -> bool

val parent : t -> int -> int
(** [-1] for the root. *)

val children : t -> int -> int array

val child_rank : t -> int -> int
(** Position of a node in its parent's child list; [0] for the root. *)

val depth : t -> int -> int
(** Root has depth [0]. *)

val leaves : t -> int array
(** Ids of terminals in left-to-right source order. *)

val leaf_rank : t -> int -> int
(** Inverse of {!leaves}; [-1] for nonterminals. *)

val lca : t -> int -> int -> int
(** Lowest common ancestor, O(1) (Euler tour + sparse-table RMQ). *)

val ancestor_at_depth : t -> int -> int -> int
(** [ancestor_at_depth t n d] is the ancestor of [n] at depth [d];
    requires [d <= depth t n]. O(log depth) via binary lifting. *)

val path_up : t -> int -> stop:int -> int list
(** [path_up t n ~stop] is the chain [n; parent n; ...; stop], inclusive.
    Raises [Invalid_argument] if [stop] is not an ancestor of [n]. *)

val ancestors : t -> int -> int list
(** Strict ancestors, nearest first, ending with the root. *)

val width_between : t -> lca:int -> int -> int -> int
(** Paper Fig. 5 width: the absolute difference of the child ranks, at
    the LCA, of the two children through which a path between the given
    nodes passes. [0] when either node equals the LCA. *)

(** {2 Zero-copy internal views}

    The extraction iterator visits every leaf pair of every tree; going
    through the per-node accessors there costs a call plus bounds checks
    per field read. These return the index's own arrays (indexed by node
    id) — treat them as read-only. *)

val depth_array : t -> int array
val parent_array : t -> int array
val label_array : t -> string array

val label_id_array : t -> int array
(** Interned label id per node (see {!label_id}); the path hash-cons
    hashes these instead of label strings. *)

val nodes_with_label : t -> string -> int list
(** All node ids carrying the given label, in preorder (ascending id).
    O(1) lookup: the table is precomputed by {!build}. *)

val terminals_with_value : t -> string -> int list
(** All terminal ids carrying the given value, in preorder (ascending
    id). O(1) lookup: the table is precomputed by {!build}. *)
