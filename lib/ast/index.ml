type t = {
  n : int;
  labels : string array;
      (* interned: nodes sharing a label share one string *)
  label_ids : int array;
  label_pool : string array;  (* private interning only; [||] when shared *)
  shared_labels : Intern.Strtab.t option;
      (* the session table label ids were interned through, when the
         caller passed one to [build] — label ids are then stable
         across every index built over the same table, which is what
         lets a session-persistent path hash-cons outlive one tree *)
  subtree_size : int array;  (* subtree of v = preorder ids [v, v+size) *)
  subtree_leaves : int array;  (* leaves under v *)
  subtree_first_leaf : int array;  (* leaf rank of v's leftmost leaf; -1 *)
  values : string option array;
  sorts : Tree.sort option array;
  tags : string option array;
  parent : int array;
  children : int array array;
  child_rank : int array;
  depth : int array;
  leaves : int array;
  leaf_rank : int array;
  (* Euler tour + sparse-table RMQ: O(1) lca (hence O(1) path length
     and, with the lifting table, O(log depth) width) per node pair. *)
  euler : int array;  (* 2n-1 node ids, tour order *)
  first_occ : int array;  (* node -> first position in [euler] *)
  log2 : int array;  (* floor(log2 i) for i in [1, 2n-1] *)
  sparse : int array array;
      (* sparse.(k).(i) = position of the min-depth node in
         euler[i, i + 2^k) *)
  up : int array array;  (* up.(k).(v) = 2^k-th ancestor of v, or -1 *)
  by_label : (string, int list) Hashtbl.t;  (* ascending node ids *)
  by_value : (string, int list) Hashtbl.t;  (* ascending node ids *)
}

let build ?labels:shared_labels tree =
  let n = Tree.size tree in
  let labels = Array.make n "" in
  let label_ids = Array.make n 0 in
  let values = Array.make n None in
  let sorts = Array.make n None in
  let tags = Array.make n None in
  let parent = Array.make n (-1) in
  let children = Array.make n [||] in
  let child_rank = Array.make n 0 in
  let depth = Array.make n 0 in
  let leaves_rev = ref [] in
  let intern = Hashtbl.create 64 in
  let pool_rev = ref [] in
  let n_pool = ref 0 in
  let intern_label =
    (* Private per-tree interning by default (dense ids in pool order);
       through the caller's shared table when one is given, so the ids
       — and the canonical strings — are stable across builds. *)
    match shared_labels with
    | None ->
        fun lbl ->
          (match Hashtbl.find_opt intern lbl with
          | Some (lid, canonical) -> (lid, canonical)
          | None ->
              let lid = !n_pool in
              incr n_pool;
              Hashtbl.add intern lbl (lid, lbl);
              pool_rev := lbl :: !pool_rev;
              (lid, lbl))
    | Some tab ->
        fun lbl ->
          let lid = Intern.Strtab.intern tab lbl in
          (lid, Intern.Strtab.to_string tab lid)
  in
  let next = ref 0 in
  let rec go node ~parent_id ~rank ~d =
    let id = !next in
    incr next;
    let lid, canonical = intern_label (Tree.label node) in
    labels.(id) <- canonical;
    label_ids.(id) <- lid;
    values.(id) <- Tree.value node;
    sorts.(id) <- Tree.sort node;
    tags.(id) <- Tree.tag node;
    parent.(id) <- parent_id;
    child_rank.(id) <- rank;
    depth.(id) <- d;
    (match node with
    | Tree.Terminal _ -> leaves_rev := id :: !leaves_rev
    | Tree.Nonterminal { children = cs; _ } ->
        let ids =
          List.mapi (fun i c -> go c ~parent_id:id ~rank:i ~d:(d + 1)) cs
        in
        children.(id) <- Array.of_list ids);
    id
  in
  let (_ : int) = go tree ~parent_id:(-1) ~rank:0 ~d:0 in
  let label_pool = Array.of_list (List.rev !pool_rev) in
  let leaves = Array.of_list (List.rev !leaves_rev) in
  let leaf_rank = Array.make n (-1) in
  Array.iteri (fun r id -> leaf_rank.(id) <- r) leaves;
  (* Subtree spans: preorder ids make every subtree a contiguous id
     range and its leaves a contiguous leaf-rank range — the basis of
     the incremental extraction cache's unit partition. One upward
     O(n) pass (children have larger ids than their parent). *)
  let subtree_size = Array.make n 1 in
  let subtree_leaves = Array.make n 0 in
  let subtree_first_leaf = Array.make n max_int in
  Array.iteri
    (fun r id ->
      subtree_first_leaf.(id) <- r;
      subtree_leaves.(id) <- 1)
    leaves;
  for i = n - 1 downto 1 do
    let p = parent.(i) in
    subtree_size.(p) <- subtree_size.(p) + subtree_size.(i);
    subtree_leaves.(p) <- subtree_leaves.(p) + subtree_leaves.(i);
    if subtree_first_leaf.(i) < subtree_first_leaf.(p) then
      subtree_first_leaf.(p) <- subtree_first_leaf.(i)
  done;
  for i = 0 to n - 1 do
    if subtree_first_leaf.(i) = max_int then subtree_first_leaf.(i) <- -1
  done;
  (* Euler tour: visit a node, then re-visit it after each child. *)
  let m = (2 * n) - 1 in
  let euler = Array.make m 0 in
  let first_occ = Array.make n (-1) in
  let pos = ref 0 in
  let rec tour v =
    euler.(!pos) <- v;
    if first_occ.(v) < 0 then first_occ.(v) <- !pos;
    incr pos;
    Array.iter
      (fun c ->
        tour c;
        euler.(!pos) <- v;
        incr pos)
      children.(v)
  in
  tour 0;
  let log2 = Array.make (m + 1) 0 in
  for i = 2 to m do
    log2.(i) <- log2.(i / 2) + 1
  done;
  let levels = log2.(m) + 1 in
  let sparse = Array.make levels [||] in
  sparse.(0) <- Array.init m Fun.id;
  for k = 1 to levels - 1 do
    let span = 1 lsl k in
    let row = Array.make (m - span + 1) 0 in
    let prev = sparse.(k - 1) in
    for i = 0 to m - span do
      let a = prev.(i) and b = prev.(i + (span / 2)) in
      row.(i) <- (if depth.(euler.(a)) <= depth.(euler.(b)) then a else b)
    done;
    sparse.(k) <- row
  done;
  (* Binary lifting for level-ancestor queries (width computation). *)
  let max_depth = Array.fold_left max 0 depth in
  let lift_levels = max 1 (log2.(max 1 max_depth) + 1) in
  let up = Array.make lift_levels parent in
  for k = 1 to lift_levels - 1 do
    let prev = up.(k - 1) in
    up.(k) <-
      Array.init n (fun v ->
          let w = prev.(v) in
          if w < 0 then -1 else prev.(w))
  done;
  let by_label = Hashtbl.create 64 in
  let by_value = Hashtbl.create 64 in
  let prepend tbl key id =
    Hashtbl.replace tbl key
      (id :: Option.value (Hashtbl.find_opt tbl key) ~default:[])
  in
  for i = n - 1 downto 0 do
    prepend by_label labels.(i) i;
    match values.(i) with Some v -> prepend by_value v i | None -> ()
  done;
  {
    n;
    labels;
    label_ids;
    label_pool;
    shared_labels;
    subtree_size;
    subtree_leaves;
    subtree_first_leaf;
    values;
    sorts;
    tags;
    parent;
    children;
    child_rank;
    depth;
    leaves;
    leaf_rank;
    euler;
    first_occ;
    log2;
    sparse;
    up;
    by_label;
    by_value;
  }

let size t = t.n
let root _ = 0
let label t i = t.labels.(i)
let label_id t i = t.label_ids.(i)

let num_label_ids t =
  match t.shared_labels with
  | None -> Array.length t.label_pool
  | Some tab -> Intern.Strtab.size tab

let label_of_id t i =
  match t.shared_labels with
  | None -> t.label_pool.(i)
  | Some tab -> Intern.Strtab.to_string tab i

let shared_labels t = t.shared_labels
let subtree_size t i = t.subtree_size.(i)
let subtree_leaf_count t i = t.subtree_leaves.(i)
let subtree_first_leaf t i = t.subtree_first_leaf.(i)
let value t i = t.values.(i)
let sort t i = t.sorts.(i)
let tag t i = t.tags.(i)
let is_leaf t i = t.values.(i) <> None
let parent t i = t.parent.(i)
let children t i = t.children.(i)
let child_rank t i = t.child_rank.(i)
let depth t i = t.depth.(i)
let leaves t = t.leaves
let leaf_rank t i = t.leaf_rank.(i)

let lca t a b =
  if a = b then a
  else begin
    let fa = t.first_occ.(a) and fb = t.first_occ.(b) in
    let lo = min fa fb and hi = max fa fb in
    let k = t.log2.(hi - lo + 1) in
    let pa = t.sparse.(k).(lo)
    and pb = t.sparse.(k).(hi - (1 lsl k) + 1) in
    let p =
      if t.depth.(t.euler.(pa)) <= t.depth.(t.euler.(pb)) then pa else pb
    in
    t.euler.(p)
  end

let ancestor_at_depth t v d =
  (* Ancestor of [v] at depth [d] <= depth v, via the lifting table. *)
  let v = ref v in
  let diff = ref (t.depth.(!v) - d) in
  let k = ref 0 in
  while !diff > 0 do
    if !diff land 1 = 1 then v := t.up.(!k).(!v);
    diff := !diff asr 1;
    incr k
  done;
  !v

let path_up t n ~stop =
  let rec go acc n =
    if n = stop then List.rev (n :: acc)
    else if n = -1 then invalid_arg "Index.path_up: stop is not an ancestor"
    else go (n :: acc) t.parent.(n)
  in
  go [] n

let ancestors t n =
  let rec go acc n =
    let p = t.parent.(n) in
    if p = -1 then List.rev acc else go (p :: acc) p
  in
  go [] n

(* Child of [lca] on the parent chain from [n], assuming [n] is a strict
   descendant of [lca]. *)
let child_toward t ~lca n = ancestor_at_depth t n (t.depth.(lca) + 1)

let width_between t ~lca a b =
  if a = lca || b = lca then 0
  else
    let ca = child_toward t ~lca a and cb = child_toward t ~lca b in
    abs (t.child_rank.(ca) - t.child_rank.(cb))

let depth_array t = t.depth
let parent_array t = t.parent
let label_array t = t.labels
let label_id_array t = t.label_ids

let nodes_with_label t lbl =
  Option.value (Hashtbl.find_opt t.by_label lbl) ~default:[]

let terminals_with_value t v =
  Option.value (Hashtbl.find_opt t.by_value v) ~default:[]
