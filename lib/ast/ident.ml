(* Structural subtree identity over an [Index.t].

   One bottom-up pass interns, per node, a key made of its label, its
   terminal value, and its children's already-assigned identity ids.
   That key is total over everything path extraction can observe
   inside the subtree — path node labels (including the nonterminal
   value fallback), terminal end values, child order (and with it
   length and width, which are relative quantities) — so two nodes
   share an identity id exactly when their subtrees extract identical
   path-context sets.

   Deliberately NOT in the key: terminal sorts and nonterminal tags.
   Extraction never reads them, and sorts carry program-global binder
   ids ([Tree.Var]) that renumber when an unrelated earlier function
   is edited — keying on them would destroy exactly the cross-edit
   sharing this pass exists to provide. Consumers that do need sorts
   or tags read them from the current build's index by node id, which
   cache replay preserves.

   Interning goes through session-owned tables ([syms], [tab]), so the
   sharing holds across builds: re-index an edited file and every
   subtree the edit did not touch keeps the id it had before, which is
   what the incremental extraction cache keys on.

   Preorder node ids put children after their parent, so iterating
   ids downward visits children first; the pass is O(n) probes. *)

let assign ~syms ~tab idx =
  let n = Index.size idx in
  let ids = Array.make n (-1) in
  let buf = ref (Array.make 16 0) in
  let ensure k =
    if Array.length !buf < k then
      buf := Array.make (max k (2 * Array.length !buf)) 0
  in
  for v = n - 1 downto 0 do
    let lbl = Intern.Strtab.intern syms (Index.label idx v) in
    match Index.value idx v with
    | Some value ->
        let vid = Intern.Strtab.intern syms value in
        ensure 3;
        let b = !buf in
        b.(0) <- 0;
        b.(1) <- lbl;
        b.(2) <- vid;
        ids.(v) <- Intern.Keytab.intern_sub tab b ~len:3
    | None ->
        let cs = Index.children idx v in
        let k = Array.length cs in
        ensure (2 + k);
        let b = !buf in
        b.(0) <- 1;
        b.(1) <- lbl;
        Array.iteri (fun i c -> b.(2 + i) <- ids.(c)) cs;
        ids.(v) <- Intern.Keytab.intern_sub tab b ~len:(2 + k)
  done;
  ids
