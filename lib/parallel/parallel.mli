(** Fixed-size domain pool with deterministic fan-out.

    One pool is spawned per process (or per explicit {!create}) and
    reused across calls: worker domains are started once and park on a
    condition variable between batches, so the per-call overhead is a
    few mutex operations, not a domain spawn.

    The contract every caller relies on:

    - {b jobs = 1 is the sequential code.} A 1-job pool (or a 1-element
      input) runs the function inline on the calling domain, in input
      order, with no queue, no extra allocation pattern, and no domain
      in sight. Output is byte-identical to [Array.map].
    - {b Results are ordered.} Whatever the scheduling, [map f a] puts
      [f a.(i)] at index [i]. Callers that fold the result in index
      order are therefore deterministic for any job count, provided [f]
      itself is pure per element.
    - {b Exceptions propagate.} If one or more elements raise, the
      batch still runs to completion, then the exception of the
      lowest-indexed failing chunk is re-raised (with its backtrace) on
      the calling domain — the same exception a sequential run would
      have hit first. The pool stays usable afterwards.

    Work is distributed in contiguous index chunks whose boundaries
    depend only on the input length and the pool size, never on timing
    — the basis for the "deterministic for a fixed job count" promises
    made by the training layers. *)

type pool

exception Missing_result of { chunk : int; index : int }
(** A finished batch left a result slot empty — a pool invariant
    violation (every chunk ran without raising, yet some element has no
    result). Carries the chunk and element index so a long-lived caller
    can log exactly what was lost instead of crashing on an assertion.
    Worker exceptions are {e not} reported this way: they re-raise with
    their original backtrace (see {!map}). *)

val default_jobs : unit -> int
(** Effective job count for new default pools: the [PIGEON_JOBS]
    environment variable if set to a positive integer, any
    {!set_default_jobs} override (which wins over the environment),
    else [Domain.recommended_domain_count ()]. Always >= 1. *)

val set_default_jobs : int -> unit
(** Override the default job count (the CLI [--jobs] flag). If the
    shared pool already exists with a different size it is shut down
    and will be respawned lazily; call this at startup, not while
    parallel work is in flight. *)

val create : ?jobs:int -> unit -> pool
(** A fresh pool with [jobs] workers (default {!default_jobs}),
    clamped to [1, 128]. A pool of [n] jobs spawns [n - 1] domains:
    the calling domain is the n-th worker while a batch runs. *)

val jobs : pool -> int

val shutdown : pool -> unit
(** Drain queued work, stop and join the worker domains. The pool must
    not be used afterwards. Idle pools leaked at process exit are
    harmless (exit terminates all domains), so calling this is only
    required when cycling pool sizes within one process. *)

val get_pool : unit -> pool
(** The shared process-wide pool, created lazily at {!default_jobs}
    size. This is what every [?pool] argument downstream defaults to. *)

val map : ?pool:pool -> ('a -> 'b) -> 'a array -> 'b array
(** [map f a] is [Array.map f a], fanned out over the pool. *)

val map_list : ?pool:pool -> ('a -> 'b) -> 'a list -> 'b list

val map_reduce :
  ?pool:pool -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> 'c -> 'a array -> 'c
(** [map_reduce ~map ~reduce init a] folds the mapped results in index
    order: [reduce (... (reduce init (map a.(0))) ...) (map a.(n-1))].
    The fold itself runs on the calling domain, so the result is
    deterministic for any job count (only the [map]s run in parallel). *)

val chunk_ranges : chunks:int -> int -> (int * int) array
(** [chunk_ranges ~chunks n] splits [0 .. n-1] into at most [chunks]
    contiguous, balanced [(lo, hi)] ranges (inclusive), preserving
    order. Exposed so training layers can build per-chunk accumulators
    with the exact same deterministic boundaries the pool uses. *)
