exception Missing_result of { chunk : int; index : int }

let () =
  Printexc.register_printer (function
    | Missing_result { chunk; index } ->
        Some
          (Printf.sprintf
             "Parallel.Missing_result: worker finished chunk %d without \
              storing a result for element %d (pool invariant violation)"
             chunk index)
    | _ -> None)

type pool = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work : Condition.t;  (** signalled when a task is queued or the pool closes *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let clamp_jobs n = if n < 1 then 1 else if n > 128 then 128 else n

let env_jobs () =
  match Sys.getenv_opt "PIGEON_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (clamp_jobs n)
      | _ -> None)

(* set_default_jobs wins over the environment so a CLI flag can
   override an inherited PIGEON_JOBS. *)
let override = ref None

let default_jobs () =
  match !override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> clamp_jobs (Domain.recommended_domain_count ()))

(* Workers drain the queue before honoring [closed], so shutdown never
   drops queued tasks. *)
let rec worker pool =
  Mutex.lock pool.mutex;
  let rec take () =
    match Queue.take_opt pool.queue with
    | Some t ->
        Mutex.unlock pool.mutex;
        Some t
    | None ->
        if pool.closed then begin
          Mutex.unlock pool.mutex;
          None
        end
        else begin
          Condition.wait pool.work pool.mutex;
          take ()
        end
  in
  match take () with
  | None -> ()
  | Some t ->
      t ();
      worker pool

let create ?jobs () =
  let size =
    clamp_jobs (match jobs with Some n -> n | None -> default_jobs ())
  in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if size > 1 then
    pool.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let jobs p = p.size

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let global = ref None
let global_mutex = Mutex.create ()

let get_pool () =
  Mutex.lock global_mutex;
  let p =
    match !global with
    | Some p -> p
    | None ->
        let p = create () in
        global := Some p;
        p
  in
  Mutex.unlock global_mutex;
  p

let set_default_jobs n =
  let n = clamp_jobs n in
  Mutex.lock global_mutex;
  override := Some n;
  (match !global with
  | Some p when p.size <> n ->
      shutdown p;
      global := None
  | _ -> ());
  Mutex.unlock global_mutex

let chunk_ranges ~chunks n =
  let chunks = max 1 (min chunks n) in
  Array.init chunks (fun k -> (k * n / chunks, (((k + 1) * n) / chunks) - 1))

let resolve = function Some p -> p | None -> get_pool ()

let map ?pool f arr =
  let pool = resolve pool in
  let n = Array.length arr in
  if pool.size <= 1 || n <= 1 then Array.map f arr
  else begin
    let res = Array.make n None in
    let ranges = chunk_ranges ~chunks:(pool.size * 4) n in
    (* Batch state lives behind its own mutex so completion of one
       batch never contends with task dispatch of another. *)
    let bm = Mutex.create () in
    let finished = Condition.create () in
    let remaining = ref (Array.length ranges) in
    let failed = ref None in
    let run_chunk k =
      (try
         let lo, hi = ranges.(k) in
         for i = lo to hi do
           res.(i) <- Some (f arr.(i))
         done
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock bm;
         (* Keep the lowest-chunk failure: the one a sequential run
            would have raised first. *)
         (match !failed with
         | Some (k0, _, _) when k0 <= k -> ()
         | _ -> failed := Some (k, e, bt));
         Mutex.unlock bm);
      Mutex.lock bm;
      decr remaining;
      if !remaining = 0 then Condition.broadcast finished;
      Mutex.unlock bm
    in
    Mutex.lock pool.mutex;
    Array.iteri (fun k _ -> Queue.add (fun () -> run_chunk k) pool.queue) ranges;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    (* The calling domain is a worker too: it helps drain the queue
       (possibly executing tasks of unrelated nested batches — still
       useful work), then blocks until its own batch completes. Every
       waiter drains the queue before blocking, so a task can only be
       pending while some domain is committed to running it — no
       deadlock even for nested [map]s. *)
    let rec help () =
      Mutex.lock pool.mutex;
      let t = Queue.take_opt pool.queue in
      Mutex.unlock pool.mutex;
      match t with
      | Some t ->
          t ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock bm;
    while !remaining > 0 do
      Condition.wait finished bm
    done;
    Mutex.unlock bm;
    (match !failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    (* Every chunk ran without raising, so every slot must be filled.
       If one is not, name the slot and its chunk instead of dying on
       an [assert false]: a long-lived caller (the serve daemon) needs
       an exception it can log and survive. *)
    Array.mapi
      (fun i -> function
        | Some v -> v
        | None ->
            let chunk = ref 0 in
            Array.iteri (fun k (lo, hi) -> if i >= lo && i <= hi then chunk := k) ranges;
            raise (Missing_result { chunk = !chunk; index = i }))
      res
  end

let map_list ?pool f l = Array.to_list (map ?pool f (Array.of_list l))

let map_reduce ?pool ~map:f ~reduce init arr =
  Array.fold_left reduce init (map ?pool f arr)
