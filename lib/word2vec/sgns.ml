type config = {
  dim : int;
  epochs : int;
  negatives : int;
  learning_rate : float;
  min_count : int;
  seed : int;
}

let default_config =
  {
    dim = 64;
    epochs = 8;
    negatives = 5;
    learning_rate = 0.05;
    min_count = 1;
    seed = 9;
  }

type t = {
  config : config;
  words : Vocab.t;
  contexts : Vocab.t;
  word_vecs : float array array;
  context_vecs : float array array;
}

let sigmoid x =
  if x > 30. then 1. else if x < -30. then 0. else 1. /. (1. +. exp (-.x))

let dot a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(* Negative-sampling table over contexts, unigram^0.75. *)
let build_neg_table contexts size =
  let n = Vocab.size contexts in
  if n = 0 then [||]
  else begin
    let pow = Array.init n (fun i -> Float.pow (float_of_int (Vocab.count contexts i)) 0.75) in
    let total = Array.fold_left ( +. ) 0. pow in
    let table = Array.make size 0 in
    let i = ref 0 in
    let cum = ref (pow.(0) /. total) in
    for k = 0 to size - 1 do
      table.(k) <- !i;
      if float_of_int k /. float_of_int size > !cum && !i < n - 1 then begin
        incr i;
        cum := !cum +. (pow.(!i) /. total)
      end
    done;
    table
  end

type parallel_mode = Deterministic | Hogwild

let learning_rate_at config ~step ~total =
  let progress = float_of_int step /. float_of_int total in
  Float.max
    (config.learning_rate *. (1. -. progress))
    (config.learning_rate *. 1e-4)

let fisher_yates rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* One in-place SGD step — the exact update (same operation order, so
   same rounding) the trainer has always applied; the sequential and
   hogwild paths both run it directly on the shared matrices. *)
let sgd_step config ~neg_table ~word_vecs ~context_vecs ~grad_w ~rng ~lr
    (wi, ci) =
  let wv = word_vecs.(wi) in
  Array.fill grad_w 0 config.dim 0.;
  let update_pair cv label =
    let g = (sigmoid (dot wv cv) -. label) *. lr in
    for d = 0 to config.dim - 1 do
      grad_w.(d) <- grad_w.(d) +. (g *. cv.(d));
      cv.(d) <- cv.(d) -. (g *. wv.(d))
    done
  in
  update_pair context_vecs.(ci) 1.;
  for _k = 1 to config.negatives do
    let neg = neg_table.(Random.State.int rng (Array.length neg_table)) in
    if neg <> ci then update_pair context_vecs.(neg) 0.
  done;
  for d = 0 to config.dim - 1 do
    wv.(d) <- wv.(d) -. grad_w.(d)
  done

(* Delta-accumulating variant for deterministic sharding: gradients
   are computed against the matrices as they stood at the last barrier
   (nobody writes between barriers, so the live arrays *are* the
   frozen snapshot — no copy) and land in per-shard sparse tables. *)
let delta_vec tbl dim i =
  match Hashtbl.find_opt tbl i with
  | Some d -> d
  | None ->
      let d = Array.make dim 0. in
      Hashtbl.add tbl i d;
      d

let sgd_step_delta config ~neg_table ~word_vecs ~context_vecs ~grad_w ~rng ~lr
    ~dw ~dc (wi, ci) =
  let wv = word_vecs.(wi) in
  Array.fill grad_w 0 config.dim 0.;
  let update_pair cidx label =
    let cv = context_vecs.(cidx) in
    let g = (sigmoid (dot wv cv) -. label) *. lr in
    let d = delta_vec dc config.dim cidx in
    for k = 0 to config.dim - 1 do
      grad_w.(k) <- grad_w.(k) +. (g *. cv.(k));
      d.(k) <- d.(k) -. (g *. wv.(k))
    done
  in
  update_pair ci 1.;
  for _k = 1 to config.negatives do
    let neg = neg_table.(Random.State.int rng (Array.length neg_table)) in
    if neg <> ci then update_pair neg 0.
  done;
  let d = delta_vec dw config.dim wi in
  for k = 0 to config.dim - 1 do
    d.(k) <- d.(k) -. grad_w.(k)
  done

let apply_delta vecs tbl =
  Hashtbl.iter
    (fun i d ->
      let v = vecs.(i) in
      for k = 0 to Array.length d - 1 do
        v.(k) <- v.(k) +. d.(k)
      done)
    tbl

let train_sequential config ~neg_table ~word_vecs ~context_vecs ~rng pairs =
  let n_pairs = Array.length pairs in
  let total_steps = config.epochs * n_pairs in
  let step = ref 0 in
  let grad_w = Array.make config.dim 0. in
  for _epoch = 0 to config.epochs - 1 do
    (* Shuffle pair order each epoch. *)
    fisher_yates rng pairs;
    Array.iter
      (fun pair ->
        incr step;
        let lr = learning_rate_at config ~step:!step ~total:total_steps in
        sgd_step config ~neg_table ~word_vecs ~context_vecs ~grad_w ~rng ~lr
          pair)
      pairs
  done

(* Pairs a shard trains on between two barriers of a deterministic
   round. Small bounds gradient staleness (a delta is at most this
   many pairs behind per shard); large amortizes the barrier. *)
let round_pairs_per_shard = 256

(* Sharded training. Pairs split into [jobs] contiguous shards; shard
   [s] draws from its own [Random.State.make [| seed; s |]] (epoch
   shuffles and negative samples alike) and follows its own linear lr
   schedule, so a run is reproducible for a fixed job count.

   [Deterministic]: shards advance through each epoch in synchronized
   rounds — gradients computed against the matrices as of the round
   barrier, deltas applied in shard order at the barrier. Bitwise
   reproducible for a fixed job count.

   [Hogwild]: every shard trains all its epochs in place on the shared
   matrices, no synchronization. Racy reads/writes of disjoint float
   cells are memory-safe in OCaml (word-sized, no tearing); the result
   varies run to run, as in the original Hogwild! scheme. *)
let train_sharded ~pool ~mode config ~neg_table ~word_vecs ~context_vecs pairs
    =
  let shards =
    Parallel.chunk_ranges ~chunks:(Parallel.jobs pool) (Array.length pairs)
  in
  let k = Array.length shards in
  let slices =
    Array.map (fun (lo, hi) -> Array.sub pairs lo (hi - lo + 1)) shards
  in
  let rngs = Array.init k (fun s -> Random.State.make [| config.seed; s |]) in
  let shard_ids = Array.init k Fun.id in
  match mode with
  | Hogwild ->
      ignore
        (Parallel.map ~pool
           (fun s ->
             let slice = slices.(s) and rng = rngs.(s) in
             let total = config.epochs * Array.length slice in
             let step = ref 0 in
             let grad_w = Array.make config.dim 0. in
             for _epoch = 0 to config.epochs - 1 do
               fisher_yates rng slice;
               Array.iter
                 (fun pair ->
                   incr step;
                   let lr = learning_rate_at config ~step:!step ~total in
                   sgd_step config ~neg_table ~word_vecs ~context_vecs ~grad_w
                     ~rng ~lr pair)
                 slice
             done)
           shard_ids)
  | Deterministic ->
      let max_len =
        Array.fold_left (fun acc sl -> max acc (Array.length sl)) 0 slices
      in
      for epoch = 0 to config.epochs - 1 do
        (* Epoch shuffles run on the calling domain, one shard rng
           each, keeping every shard's draw sequence well-defined. *)
        Array.iteri (fun s slice -> fisher_yates rngs.(s) slice) slices;
        let off = ref 0 in
        while !off < max_len do
          let lo = !off in
          let deltas =
            Parallel.map ~pool
              (fun s ->
                let slice = slices.(s) and rng = rngs.(s) in
                let len = Array.length slice in
                let hi = min len (lo + round_pairs_per_shard) in
                if lo >= hi then None
                else begin
                  let dw = Hashtbl.create 64 and dc = Hashtbl.create 256 in
                  let grad_w = Array.make config.dim 0. in
                  let total = config.epochs * len in
                  for i = lo to hi - 1 do
                    let step = (epoch * len) + i + 1 in
                    let lr = learning_rate_at config ~step ~total in
                    sgd_step_delta config ~neg_table ~word_vecs ~context_vecs
                      ~grad_w ~rng ~lr ~dw ~dc slice.(i)
                  done;
                  Some (dw, dc)
                end)
              shard_ids
          in
          Array.iter
            (function
              | None -> ()
              | Some (dw, dc) ->
                  apply_delta word_vecs dw;
                  apply_delta context_vecs dc)
            deltas;
          off := lo + round_pairs_per_shard
        done
      done

let train ?pool ?(mode = Deterministic) ?(config = default_config) pairs =
  (* One pass over the input counts both sides at once; the vocab sort
     is a total order, so the ids match what the old two-pass
     [Vocab.build] calls produced. *)
  let wfreq = Hashtbl.create 1024 and cfreq = Hashtbl.create 1024 in
  let n_input = ref 0 in
  let bump tbl tok =
    Hashtbl.replace tbl tok
      (1 + Option.value (Hashtbl.find_opt tbl tok) ~default:0)
  in
  List.iter
    (fun (w, c) ->
      incr n_input;
      bump wfreq w;
      bump cfreq c)
    pairs;
  let items tbl = Hashtbl.fold (fun w c acc -> (w, c) :: acc) tbl [] in
  let words = Vocab.of_counts ~min_count:config.min_count (items wfreq) in
  let contexts = Vocab.of_counts ~min_count:config.min_count (items cfreq) in
  (* Id pairs land straight in a preallocated array — no intermediate
     list of the whole corpus. *)
  let id_pairs = Array.make (max !n_input 1) (0, 0) in
  let n_pairs = ref 0 in
  List.iter
    (fun (w, c) ->
      match (Vocab.id words w, Vocab.id contexts c) with
      | Some wi, Some ci ->
          id_pairs.(!n_pairs) <- (wi, ci);
          incr n_pairs
      | _ -> ())
    pairs;
  let pairs = Array.sub id_pairs 0 !n_pairs in
  let n_pairs = !n_pairs in
  let rng = Random.State.make [| config.seed |] in
  (* Single hoisted initializer; consumes the seed rng in the same
     order as ever, and every training path starts from it. *)
  let init_vec () =
    Array.init config.dim (fun _ ->
        (Random.State.float rng 1.0 -. 0.5) /. float_of_int config.dim)
  in
  let word_vecs = Array.init (Vocab.size words) (fun _ -> init_vec ()) in
  let context_vecs = Array.init (Vocab.size contexts) (fun _ -> init_vec ()) in
  let neg_table = build_neg_table contexts 100_000 in
  let jobs = match pool with Some p -> Parallel.jobs p | None -> 1 in
  if n_pairs > 0 && Array.length neg_table > 0 then begin
    match pool with
    | Some pool when jobs > 1 && n_pairs >= jobs ->
        train_sharded ~pool ~mode config ~neg_table ~word_vecs ~context_vecs
          pairs
    | _ ->
        train_sequential config ~neg_table ~word_vecs ~context_vecs ~rng pairs
  end;
  { config; words; contexts; word_vecs; context_vecs }

let word_vec t w = Option.map (fun i -> t.word_vecs.(i)) (Vocab.id t.words w)

let context_vec t c =
  Option.map (fun i -> t.context_vecs.(i)) (Vocab.id t.contexts c)

let predict t context_strings =
  let cvs = List.filter_map (context_vec t) context_strings in
  let scores =
    Array.mapi
      (fun wi wv ->
        let s = List.fold_left (fun acc cv -> acc +. dot wv cv) 0. cvs in
        (Vocab.word t.words wi, s))
      t.word_vecs
  in
  Array.to_list scores
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let norm v = sqrt (dot v v)

let most_similar t w ~k =
  match Vocab.id t.words w with
  | None -> []
  | Some wi ->
      let wv = t.word_vecs.(wi) in
      let nw = norm wv in
      Array.to_list
        (Array.mapi
           (fun i v ->
             let d = norm v *. nw in
             ( Vocab.word t.words i,
               if d = 0. then 0. else dot wv v /. d ))
           t.word_vecs)
      |> List.filter (fun (x, _) -> not (String.equal x w))
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
      |> List.filteri (fun i _ -> i < k)
