type config = {
  dim : int;
  epochs : int;
  negatives : int;
  learning_rate : float;
  min_count : int;
  seed : int;
}

let default_config =
  {
    dim = 64;
    epochs = 8;
    negatives = 5;
    learning_rate = 0.05;
    min_count = 1;
    seed = 9;
  }

type t = {
  config : config;
  words : Vocab.t;
  contexts : Vocab.t;
  word_vecs : float array array;
  context_vecs : float array array;
}

let sigmoid x =
  if x > 30. then 1. else if x < -30. then 0. else 1. /. (1. +. exp (-.x))

let sigmoid_exact = sigmoid

let dot a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(* Precomputed sigmoid, word2vec.c EXP_TABLE style: 4096 bins over
   [-8, 8), value at the bin center, inputs outside clamped to 0/1.
   Max error = half a bin width times max |sigmoid'| = (1/256)/2 * 1/4
   ~ 4.9e-4 inside the range, 1 - sigmoid(8) ~ 3.4e-4 at the clamp:
   absolute error < 1e-3 everywhere (bounded by test_kernels, budget
   documented in DESIGN.md §10). *)
let lut_size = 4096
let lut_range = 8.
let lut_scale = float_of_int lut_size /. (2. *. lut_range)

let sigmoid_table =
  Float.Array.init lut_size (fun i ->
      let x = ((float_of_int i +. 0.5) /. lut_scale) -. lut_range in
      1. /. (1. +. exp (-.x)))

let sigmoid_lut x =
  if x >= lut_range then 1.
  else if x < -.lut_range then 0.
  else
    Float.Array.unsafe_get sigmoid_table
      (int_of_float ((x +. lut_range) *. lut_scale))

(* Negative-sampling table over contexts, unigram^0.75. *)
let build_neg_table contexts size =
  let n = Vocab.size contexts in
  if n = 0 then [||]
  else begin
    let pow = Array.init n (fun i -> Float.pow (float_of_int (Vocab.count contexts i)) 0.75) in
    let total = Array.fold_left ( +. ) 0. pow in
    let table = Array.make size 0 in
    let i = ref 0 in
    let cum = ref (pow.(0) /. total) in
    for k = 0 to size - 1 do
      table.(k) <- !i;
      if float_of_int k /. float_of_int size > !cum && !i < n - 1 then begin
        incr i;
        cum := !cum +. (pow.(!i) /. total)
      end
    done;
    table
  end

type parallel_mode = Deterministic | Hogwild

let learning_rate_at config ~step ~total =
  let progress = float_of_int step /. float_of_int total in
  Float.max
    (config.learning_rate *. (1. -. progress))
    (config.learning_rate *. 1e-4)

let fisher_yates rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Pairs a shard trains on between two barriers of a deterministic
   round. Small bounds gradient staleness (a delta is at most this
   many pairs behind per shard); large amortizes the barrier. *)
let round_pairs_per_shard = 256

(* Vocabulary + id-pair construction, shared by the flat trainer and
   {!Reference}. One pass over the input counts both sides at once;
   the vocab sort is a total order, so the ids match what the old
   two-pass [Vocab.build] calls produced. Returns the seeded rng
   *before* any matrix draw so each trainer consumes it in the
   historical order: all matrix init values first, then the sequential
   path's shuffles and negatives. *)
let prepare config pairs =
  let wtab = Intern.Strtab.create ~hint:1024 ()
  and ctab = Intern.Strtab.create ~hint:1024 () in
  let wcounts = ref (Array.make 1024 0) and ccounts = ref (Array.make 1024 0) in
  let bump counts sid =
    let a =
      let a = !counts in
      if sid < Array.length a then a
      else begin
        let b = Array.make (max (2 * Array.length a) (sid + 1)) 0 in
        Array.blit a 0 b 0 (Array.length a);
        counts := b;
        b
      end
    in
    a.(sid) <- a.(sid) + 1
  in
  let n_input = List.length pairs in
  (* Each token is hashed exactly once, here; everything downstream is
     int-array reads. *)
  let sid_pairs = Array.make (max n_input 1) (0, 0) in
  let n = ref 0 in
  List.iter
    (fun (w, c) ->
      let wi = Intern.Strtab.intern wtab w in
      let ci = Intern.Strtab.intern ctab c in
      bump wcounts wi;
      bump ccounts ci;
      sid_pairs.(!n) <- (wi, ci);
      incr n)
    pairs;
  let words =
    Vocab.of_strtab ~min_count:config.min_count wtab
      (Array.sub !wcounts 0 (Intern.Strtab.size wtab))
  in
  let contexts =
    Vocab.of_strtab ~min_count:config.min_count ctab
      (Array.sub !ccounts 0 (Intern.Strtab.size ctab))
  in
  (* Id pairs land straight in a preallocated array — no intermediate
     list of the whole corpus, and the remap is two array lookups. *)
  let id_pairs = Array.make (max n_input 1) (0, 0) in
  let n_pairs = ref 0 in
  for k = 0 to n_input - 1 do
    let wi, ci = sid_pairs.(k) in
    let wv = Vocab.of_interned words wi and cv = Vocab.of_interned contexts ci in
    if wv >= 0 && cv >= 0 then begin
      id_pairs.(!n_pairs) <- (wv, cv);
      incr n_pairs
    end
  done;
  let pairs = Array.sub id_pairs 0 !n_pairs in
  let rng = Random.State.make [| config.seed |] in
  (words, contexts, pairs, !n_pairs, rng)

(* ---------------------------------------------------------------- *)
(* Flat kernel: both embedding matrices are single unboxed
   [floatarray]s, row [i] at offset [i * dim] — one allocation, no
   per-row indirection, every hot access an [unsafe_get]. With
   [lut = false] ([`Exact]) the float operations (and their order) are
   identical to {!Reference}'s nested-array kernel, so the results are
   bitwise equal — the golden test's lever. The default [`Lut] path
   trades the documented <1e-3 sigmoid error for speed and takes the
   further loop liberties noted at {!update_pair_fast}. *)

(* Row-major init, explicit loop: draws the seed rng in exactly the
   order the nested [Array.init] matrices always consumed it. *)
let init_flat rng ~rows ~dim =
  let fa = Float.Array.make (rows * dim) 0. in
  for i = 0 to (rows * dim) - 1 do
    Float.Array.unsafe_set fa i
      ((Random.State.float rng 1.0 -. 0.5) /. float_of_int dim)
  done;
  fa

let ug = Float.Array.unsafe_get
let us = Float.Array.unsafe_set

(* Strictly-ordered pair update: one accumulator, ascending [d] — the
   float operations (and their order) are exactly {!Reference}'s, which
   is what makes [`Exact] runs bitwise-comparable to the old kernel. *)
let update_pair_exact ~w ~c ~grad_w ~wo ~co ~dim ~lr label =
  let acc = ref 0. in
  for d = 0 to dim - 1 do
    acc := !acc +. (ug w (wo + d) *. ug c (co + d))
  done;
  let g = (sigmoid_exact !acc -. label) *. lr in
  for d = 0 to dim - 1 do
    let cvd = ug c (co + d) in
    us grad_w d (ug grad_w d +. (g *. cvd));
    us c (co + d) (cvd -. (g *. ug w (wo + d)))
  done

(* Production [`Lut] pair update. Two liberties the exact path may not
   take, both inside the documented LUT error budget (ranking-level
   tolerance, not bitwise): the dot product runs on four accumulators
   so the sum no longer serializes on one add's latency, and a pair
   whose clamped sigmoid makes the gradient exactly zero (saturated —
   the common case late in training) skips its update loop outright. *)
let update_pair_fast ~w ~c ~grad_w ~wo ~co ~dim ~lr label =
  let s0 = ref 0. and s1 = ref 0. and s2 = ref 0. and s3 = ref 0. in
  let d = ref 0 in
  while !d + 4 <= dim do
    let i = !d in
    s0 := !s0 +. (ug w (wo + i) *. ug c (co + i));
    s1 := !s1 +. (ug w (wo + i + 1) *. ug c (co + i + 1));
    s2 := !s2 +. (ug w (wo + i + 2) *. ug c (co + i + 2));
    s3 := !s3 +. (ug w (wo + i + 3) *. ug c (co + i + 3));
    d := i + 4
  done;
  let acc = ref (!s0 +. !s1 +. (!s2 +. !s3)) in
  while !d < dim do
    acc := !acc +. (ug w (wo + !d) *. ug c (co + !d));
    incr d
  done;
  let g = (sigmoid_lut !acc -. label) *. lr in
  if g <> 0. then
    for d = 0 to dim - 1 do
      let cvd = ug c (co + d) in
      us grad_w d (ug grad_w d +. (g *. cvd));
      us c (co + d) (cvd -. (g *. ug w (wo + d)))
    done

let sgd_step_flat config ~neg_table ~w ~c ~grad_w ~rng ~lr ~lut (wi, ci) =
  let dim = config.dim in
  let wo = wi * dim in
  Float.Array.fill grad_w 0 dim 0.;
  let update_pair co label =
    if lut then update_pair_fast ~w ~c ~grad_w ~wo ~co ~dim ~lr label
    else update_pair_exact ~w ~c ~grad_w ~wo ~co ~dim ~lr label
  in
  update_pair (ci * dim) 1.;
  for _k = 1 to config.negatives do
    let neg = neg_table.(Random.State.int rng (Array.length neg_table)) in
    if neg <> ci then update_pair (neg * dim) 0.
  done;
  for d = 0 to dim - 1 do
    us w (wo + d) (ug w (wo + d) -. ug grad_w d)
  done

(* C epoch-slice kernel for the sequential [`Lut] path (sgns_stubs.c).
   The stub touches no OCaml heap state beyond its arguments and never
   allocates; slices are bounded below so a long epoch can't hold up
   other domains' stop-the-world collections. *)
external train_slice_c :
  Float.Array.t ->
  Float.Array.t ->
  Float.Array.t ->
  (int * int) array ->
  int array ->
  int array ->
  Float.Array.t ->
  unit = "caml_sgns_train_slice_bytes" "caml_sgns_train_slice"
[@@noalloc]

(* Pairs per C call: big enough that the call cost vanishes, small
   enough (~a few ms of work) that other domains' STW pauses are never
   held up behind the non-cooperating stub. *)
let slice_pairs = 8192

(* Sequential [`Lut] trainer: per-epoch shuffle in OCaml (consuming
   [rng] like every trainer before it), arithmetic in the C kernel.
   Covered by the LUT ranking-tolerance contract, not the bitwise one:
   the kernel draws its negative samples from word2vec.c's LCG, seeded
   per epoch from [rng], instead of replaying [Random.State] draws —
   see DESIGN.md §10. The [`Exact] OCaml path below remains the
   bit-for-bit replica of {!Reference}. *)
let train_sequential_fast config ~neg_table ~w ~c ~rng pairs =
  let dim = config.dim in
  let n_pairs = Array.length pairs in
  let iparams = Array.make 8 0 in
  iparams.(0) <- dim;
  iparams.(1) <- config.negatives;
  iparams.(5) <- config.epochs * n_pairs;
  let fparams =
    Float.Array.of_list [ config.learning_rate; lut_range; lut_scale ]
  in
  for epoch = 0 to config.epochs - 1 do
    fisher_yates rng pairs;
    iparams.(4) <- epoch * n_pairs;
    let lo = ref 0 in
    while !lo < n_pairs do
      let hi = min n_pairs (!lo + slice_pairs) in
      let seed = Random.State.bits64 rng in
      iparams.(2) <- !lo;
      iparams.(3) <- hi;
      iparams.(6) <- Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
      iparams.(7) <- Int64.to_int (Int64.shift_right_logical seed 32);
      train_slice_c w c sigmoid_table pairs neg_table iparams fparams;
      lo := hi
    done
  done

let train_sequential_flat config ~neg_table ~w ~c ~rng ~lut pairs =
  if lut then train_sequential_fast config ~neg_table ~w ~c ~rng pairs
  else begin
    let n_pairs = Array.length pairs in
    let total_steps = config.epochs * n_pairs in
    let step = ref 0 in
    let grad_w = Float.Array.make config.dim 0. in
    for _epoch = 0 to config.epochs - 1 do
      fisher_yates rng pairs;
      Array.iter
        (fun pair ->
          incr step;
          let lr = learning_rate_at config ~step:!step ~total:total_steps in
          sgd_step_flat config ~neg_table ~w ~c ~grad_w ~rng ~lr ~lut pair)
        pairs
    done
  end

(* Per-shard delta slab for deterministic rounds: touched rows map to
   consecutive [dim]-sized slices of one flat buffer — merging a slab
   back is a contiguous axpy per row instead of a walk over boxed
   per-row arrays. *)
type slab = {
  s_dim : int;
  s_idx : (int, int) Hashtbl.t;  (* matrix row -> slab slot *)
  mutable s_buf : Float.Array.t;
  mutable s_n : int;
}

let slab_create dim hint =
  {
    s_dim = dim;
    s_idx = Hashtbl.create hint;
    s_buf = Float.Array.make (max 1 (hint * dim)) 0.;
    s_n = 0;
  }

(* Offset of [row]'s slice, allocating (zeroed) on first touch. *)
let slab_slot sl row =
  match Hashtbl.find_opt sl.s_idx row with
  | Some s -> s * sl.s_dim
  | None ->
      let s = sl.s_n in
      sl.s_n <- s + 1;
      if (s + 1) * sl.s_dim > Float.Array.length sl.s_buf then begin
        let nb = Float.Array.make (2 * Float.Array.length sl.s_buf) 0. in
        Float.Array.blit sl.s_buf 0 nb 0 (Float.Array.length sl.s_buf);
        sl.s_buf <- nb
      end;
      Hashtbl.add sl.s_idx row s;
      s * sl.s_dim

let apply_slab vecs sl =
  Hashtbl.iter
    (fun row s ->
      let off = row * sl.s_dim and so = s * sl.s_dim in
      for d = 0 to sl.s_dim - 1 do
        Float.Array.unsafe_set vecs (off + d)
          (Float.Array.unsafe_get vecs (off + d)
          +. Float.Array.unsafe_get sl.s_buf (so + d))
      done)
    sl.s_idx

(* Delta-accumulating step for deterministic sharding: gradients are
   computed against the matrices as they stood at the last barrier
   (nobody writes between barriers, so the live arrays *are* the
   frozen snapshot — no copy) and land in per-shard slabs. *)
let sgd_step_delta_flat config ~neg_table ~w ~c ~grad_w ~rng ~lr ~lut ~dw ~dc
    (wi, ci) =
  let dim = config.dim in
  let wo = wi * dim in
  Float.Array.fill grad_w 0 dim 0.;
  let apply row g =
    let co = row * dim in
    let so = slab_slot dc row in
    let buf = dc.s_buf in
    for d = 0 to dim - 1 do
      us grad_w d (ug grad_w d +. (g *. ug c (co + d)));
      us buf (so + d) (ug buf (so + d) -. (g *. ug w (wo + d)))
    done
  in
  let update_pair row label =
    let co = row * dim in
    if lut then begin
      (* Same liberties as {!update_pair_fast}: reassociated dot,
         saturated pairs never touch the slab. *)
      let s0 = ref 0. and s1 = ref 0. and s2 = ref 0. and s3 = ref 0. in
      let d = ref 0 in
      while !d + 4 <= dim do
        let i = !d in
        s0 := !s0 +. (ug w (wo + i) *. ug c (co + i));
        s1 := !s1 +. (ug w (wo + i + 1) *. ug c (co + i + 1));
        s2 := !s2 +. (ug w (wo + i + 2) *. ug c (co + i + 2));
        s3 := !s3 +. (ug w (wo + i + 3) *. ug c (co + i + 3));
        d := i + 4
      done;
      let acc = ref (!s0 +. !s1 +. (!s2 +. !s3)) in
      while !d < dim do
        acc := !acc +. (ug w (wo + !d) *. ug c (co + !d));
        incr d
      done;
      let g = (sigmoid_lut !acc -. label) *. lr in
      if g <> 0. then apply row g
    end
    else begin
      let acc = ref 0. in
      for d = 0 to dim - 1 do
        acc := !acc +. (ug w (wo + d) *. ug c (co + d))
      done;
      apply row ((sigmoid_exact !acc -. label) *. lr)
    end
  in
  update_pair ci 1.;
  for _k = 1 to config.negatives do
    let neg = neg_table.(Random.State.int rng (Array.length neg_table)) in
    if neg <> ci then update_pair neg 0.
  done;
  let so = slab_slot dw wi in
  let buf = dw.s_buf in
  for d = 0 to dim - 1 do
    us buf (so + d) (ug buf (so + d) -. ug grad_w d)
  done

(* Sharded training. Pairs split into [jobs] contiguous shards; shard
   [s] draws from its own [Random.State.make [| seed; s |]] (epoch
   shuffles and negative samples alike) and follows its own linear lr
   schedule, so a run is reproducible for a fixed job count.

   [Deterministic]: shards advance through each epoch in synchronized
   rounds — gradients computed against the matrices as of the round
   barrier, delta slabs applied in shard order at the barrier. Bitwise
   reproducible for a fixed job count.

   [Hogwild]: every shard trains all its epochs in place on the shared
   flat matrices, no synchronization. Racy reads/writes of disjoint
   word-sized cells are memory-safe in OCaml (no tearing); the result
   varies run to run, as in the original Hogwild! scheme. *)
let train_sharded_flat ~pool ~mode config ~neg_table ~w ~c ~lut pairs =
  let shards =
    Parallel.chunk_ranges ~chunks:(Parallel.jobs pool) (Array.length pairs)
  in
  let k = Array.length shards in
  let slices =
    Array.map (fun (lo, hi) -> Array.sub pairs lo (hi - lo + 1)) shards
  in
  let rngs = Array.init k (fun s -> Random.State.make [| config.seed; s |]) in
  let shard_ids = Array.init k Fun.id in
  match mode with
  | Hogwild ->
      ignore
        (Parallel.map ~pool
           (fun s ->
             let slice = slices.(s) and rng = rngs.(s) in
             let total = config.epochs * Array.length slice in
             let step = ref 0 in
             let grad_w = Float.Array.make config.dim 0. in
             for _epoch = 0 to config.epochs - 1 do
               fisher_yates rng slice;
               Array.iter
                 (fun pair ->
                   incr step;
                   let lr = learning_rate_at config ~step:!step ~total in
                   sgd_step_flat config ~neg_table ~w ~c ~grad_w ~rng ~lr ~lut
                     pair)
                 slice
             done)
           shard_ids)
  | Deterministic ->
      let max_len =
        Array.fold_left (fun acc sl -> max acc (Array.length sl)) 0 slices
      in
      for epoch = 0 to config.epochs - 1 do
        (* Epoch shuffles run on the calling domain, one shard rng
           each, keeping every shard's draw sequence well-defined. *)
        Array.iteri (fun s slice -> fisher_yates rngs.(s) slice) slices;
        let off = ref 0 in
        while !off < max_len do
          let lo = !off in
          let deltas =
            Parallel.map ~pool
              (fun s ->
                let slice = slices.(s) and rng = rngs.(s) in
                let len = Array.length slice in
                let hi = min len (lo + round_pairs_per_shard) in
                if lo >= hi then None
                else begin
                  let dw = slab_create config.dim 64
                  and dc = slab_create config.dim 256 in
                  let grad_w = Float.Array.make config.dim 0. in
                  let total = config.epochs * len in
                  for i = lo to hi - 1 do
                    let step = (epoch * len) + i + 1 in
                    let lr = learning_rate_at config ~step ~total in
                    sgd_step_delta_flat config ~neg_table ~w ~c ~grad_w ~rng
                      ~lr ~lut ~dw ~dc slice.(i)
                  done;
                  Some (dw, dc)
                end)
              shard_ids
          in
          Array.iter
            (function
              | None -> ()
              | Some (dw, dc) ->
                  apply_slab w dw;
                  apply_slab c dc)
            deltas;
          off := lo + round_pairs_per_shard
        done
      done

(* The public row-matrix view: one boxed row per id, extracted once
   after training so [Serialize], [predict] and [most_similar] keep
   their shapes. *)
let rows_of fa ~rows ~dim =
  Array.init rows (fun i ->
      Array.init dim (fun d -> Float.Array.get fa ((i * dim) + d)))

let train ?pool ?(mode = Deterministic) ?(config = default_config)
    ?(sigmoid = `Lut) pairs =
  let words, contexts, pairs, n_pairs, rng = prepare config pairs in
  let dim = config.dim in
  let nw = Vocab.size words and nc = Vocab.size contexts in
  let w = init_flat rng ~rows:nw ~dim in
  let c = init_flat rng ~rows:nc ~dim in
  let neg_table = build_neg_table contexts 100_000 in
  let lut = match sigmoid with `Lut -> true | `Exact -> false in
  let jobs = match pool with Some p -> Parallel.jobs p | None -> 1 in
  if n_pairs > 0 && Array.length neg_table > 0 then begin
    match pool with
    | Some pool when jobs > 1 && n_pairs >= jobs ->
        train_sharded_flat ~pool ~mode config ~neg_table ~w ~c ~lut pairs
    | _ -> train_sequential_flat config ~neg_table ~w ~c ~rng ~lut pairs
  end;
  {
    config;
    words;
    contexts;
    word_vecs = rows_of w ~rows:nw ~dim;
    context_vecs = rows_of c ~rows:nc ~dim;
  }

(* ---------------------------------------------------------------- *)
(* Out-of-core training: pairs arrive shard by shard (already as
   vocab ids) and at most one shard's pair array is live at a time.
   All randomness is *derived* per (epoch, shard) — the shuffle rng
   and the C kernel's per-slice LCG seeds come from
   [Random.State.make [| seed; tag; epoch; shard |]], fully consumed
   within the shard — so no rng state crosses a shard boundary and a
   checkpoint at any boundary resumes bit-exactly: matrices round-trip
   as raw float bits, cursors are ints, and everything else is
   recomputed from them. The learning-rate schedule stays the global
   one (the kernel's step base is offset by the shard's position in
   the epoch), so shard granularity does not perturb the sequential
   annealing. The trade against [train] is shuffle radius — pairs mix
   only within their shard — and the negative-sample stream, which is
   per-shard rather than per-epoch. *)

type ckpt = {
  ck_config : config;
  ck_words : Vocab.t;
  ck_contexts : Vocab.t;
  ck_w : Float.Array.t;  (* flat row-major, Vocab.size words x dim *)
  ck_c : Float.Array.t;
  ck_next_epoch : int;
  ck_next_shard : int;
  ck_shard_sizes : int array;
  ck_jobs : int;
}

let train_stream ?pool ?(config = default_config) ~words ~contexts
    ~shard_sizes ~pairs_of_shard ?from ?on_shard () =
  let n_shards = Array.length shard_sizes in
  if n_shards = 0 then invalid_arg "Sgns.train_stream: no shards";
  let n_pairs = Array.fold_left ( + ) 0 shard_sizes in
  let offsets = Array.make n_shards 0 in
  for s = 1 to n_shards - 1 do
    offsets.(s) <- offsets.(s - 1) + shard_sizes.(s - 1)
  done;
  let dim = config.dim in
  let nw = Vocab.size words and nc = Vocab.size contexts in
  let jobs = match pool with Some p -> Parallel.jobs p | None -> 1 in
  let w, c, start_epoch, start_shard =
    match from with
    | Some ck ->
        if
          Float.Array.length ck.ck_w <> nw * dim
          || Float.Array.length ck.ck_c <> nc * dim
        then invalid_arg "Sgns.train_stream: checkpoint shape mismatch";
        if ck.ck_shard_sizes <> shard_sizes then
          invalid_arg "Sgns.train_stream: checkpoint shard layout mismatch";
        if ck.ck_next_shard < 0 || ck.ck_next_shard >= n_shards
           || ck.ck_next_epoch < 0
        then invalid_arg "Sgns.train_stream: cursor out of range";
        (ck.ck_w, ck.ck_c, ck.ck_next_epoch, ck.ck_next_shard)
    | None ->
        (* Same draw order as [train]: all of w, then all of c, from
           the config-seeded rng. *)
        let rng = Random.State.make [| config.seed |] in
        let w = init_flat rng ~rows:nw ~dim in
        let c = init_flat rng ~rows:nc ~dim in
        (w, c, 0, 0)
  in
  let neg_table = build_neg_table contexts 100_000 in
  let iparams = Array.make 8 0 in
  iparams.(0) <- dim;
  iparams.(1) <- config.negatives;
  iparams.(5) <- config.epochs * n_pairs;
  let fparams =
    Float.Array.of_list [ config.learning_rate; lut_range; lut_scale ]
  in
  let run_shard_sequential ~epoch ~shard pairs =
    let len = Array.length pairs in
    let rng = Random.State.make [| config.seed; 0x0c0a; epoch; shard |] in
    fisher_yates rng pairs;
    (* Step base = this shard's global position in the epoch, so the
       kernel's lr schedule matches a whole-epoch walk exactly. *)
    iparams.(4) <- (epoch * n_pairs) + offsets.(shard);
    let lo = ref 0 in
    while !lo < len do
      let hi = min len (!lo + slice_pairs) in
      let seed = Random.State.bits64 rng in
      iparams.(2) <- !lo;
      iparams.(3) <- hi;
      iparams.(6) <- Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
      iparams.(7) <- Int64.to_int (Int64.shift_right_logical seed 32);
      train_slice_c w c sigmoid_table pairs neg_table iparams fparams;
      lo := hi
    done
  in
  (* Pooled path: [train_sharded_flat]'s deterministic rounds, scoped
     to one disk shard — sub-slices with derived rngs, delta slabs
     applied in sub order at each barrier. Reproducible for a fixed
     job count; matrices only change at barriers, so a shard-boundary
     checkpoint still captures the whole state. *)
  let run_shard_pooled pool ~epoch ~shard pairs =
    let subs =
      Parallel.chunk_ranges ~chunks:(Parallel.jobs pool) (Array.length pairs)
    in
    let k = Array.length subs in
    let slices =
      Array.map (fun (lo, hi) -> Array.sub pairs lo (hi - lo + 1)) subs
    in
    let rngs =
      Array.init k (fun sub ->
          Random.State.make [| config.seed; 0x0c0a; epoch; shard; sub |])
    in
    let sub_ids = Array.init k Fun.id in
    Array.iteri (fun sub slice -> fisher_yates rngs.(sub) slice) slices;
    let max_len =
      Array.fold_left (fun acc sl -> max acc (Array.length sl)) 0 slices
    in
    let off = ref 0 in
    while !off < max_len do
      let lo = !off in
      let deltas =
        Parallel.map ~pool
          (fun sub ->
            let slice = slices.(sub) and rng = rngs.(sub) in
            let len = Array.length slice in
            let hi = min len (lo + round_pairs_per_shard) in
            if lo >= hi then None
            else begin
              let dw = slab_create config.dim 64
              and dc = slab_create config.dim 256 in
              let grad_w = Float.Array.make config.dim 0. in
              let total = config.epochs * len in
              for i = lo to hi - 1 do
                let step = (epoch * len) + i + 1 in
                let lr = learning_rate_at config ~step ~total in
                sgd_step_delta_flat config ~neg_table ~w ~c ~grad_w ~rng ~lr
                  ~lut:true ~dw ~dc slice.(i)
              done;
              Some (dw, dc)
            end)
          sub_ids
      in
      Array.iter
        (function
          | None -> ()
          | Some (dw, dc) ->
              apply_slab w dw;
              apply_slab c dc)
        deltas;
      off := lo + round_pairs_per_shard
    done
  in
  if n_pairs > 0 && Array.length neg_table > 0 && start_epoch < config.epochs
  then
    for epoch = start_epoch to config.epochs - 1 do
      for shard = (if epoch = start_epoch then start_shard else 0)
                  to n_shards - 1 do
        let pairs = pairs_of_shard shard in
        if Array.length pairs <> shard_sizes.(shard) then
          invalid_arg "Sgns.train_stream: shard size changed under the trainer";
        (match pool with
        | Some pool when jobs > 1 && Array.length pairs >= jobs ->
            run_shard_pooled pool ~epoch ~shard pairs
        | _ -> run_shard_sequential ~epoch ~shard pairs);
        match on_shard with
        | None -> ()
        | Some f ->
            let next_epoch, next_shard =
              if shard + 1 = n_shards then (epoch + 1, 0) else (epoch, shard + 1)
            in
            f ~epoch ~shard
              {
                ck_config = config;
                ck_words = words;
                ck_contexts = contexts;
                ck_w = w;
                ck_c = c;
                ck_next_epoch = next_epoch;
                ck_next_shard = next_shard;
                ck_shard_sizes = Array.copy shard_sizes;
                ck_jobs = jobs;
              }
      done
    done;
  {
    config;
    words;
    contexts;
    word_vecs = rows_of w ~rows:nw ~dim;
    context_vecs = rows_of c ~rows:nc ~dim;
  }

(* ---------------------------------------------------------------- *)
(* The pre-flat-kernel trainer, kept verbatim (nested [float array
   array] matrices, exact sigmoid, boxed per-row deltas) as the golden
   baseline: [train ~sigmoid:`Exact] must reproduce it bitwise, and
   [bench train] measures the flat kernel's speedup against it. *)
module Reference = struct
  let sgd_step config ~neg_table ~word_vecs ~context_vecs ~grad_w ~rng ~lr
      (wi, ci) =
    let wv = word_vecs.(wi) in
    Array.fill grad_w 0 config.dim 0.;
    let update_pair cv label =
      let g = (sigmoid (dot wv cv) -. label) *. lr in
      for d = 0 to config.dim - 1 do
        grad_w.(d) <- grad_w.(d) +. (g *. cv.(d));
        cv.(d) <- cv.(d) -. (g *. wv.(d))
      done
    in
    update_pair context_vecs.(ci) 1.;
    for _k = 1 to config.negatives do
      let neg = neg_table.(Random.State.int rng (Array.length neg_table)) in
      if neg <> ci then update_pair context_vecs.(neg) 0.
    done;
    for d = 0 to config.dim - 1 do
      wv.(d) <- wv.(d) -. grad_w.(d)
    done

  let delta_vec tbl dim i =
    match Hashtbl.find_opt tbl i with
    | Some d -> d
    | None ->
        let d = Array.make dim 0. in
        Hashtbl.add tbl i d;
        d

  let sgd_step_delta config ~neg_table ~word_vecs ~context_vecs ~grad_w ~rng
      ~lr ~dw ~dc (wi, ci) =
    let wv = word_vecs.(wi) in
    Array.fill grad_w 0 config.dim 0.;
    let update_pair cidx label =
      let cv = context_vecs.(cidx) in
      let g = (sigmoid (dot wv cv) -. label) *. lr in
      let d = delta_vec dc config.dim cidx in
      for k = 0 to config.dim - 1 do
        grad_w.(k) <- grad_w.(k) +. (g *. cv.(k));
        d.(k) <- d.(k) -. (g *. wv.(k))
      done
    in
    update_pair ci 1.;
    for _k = 1 to config.negatives do
      let neg = neg_table.(Random.State.int rng (Array.length neg_table)) in
      if neg <> ci then update_pair neg 0.
    done;
    let d = delta_vec dw config.dim wi in
    for k = 0 to config.dim - 1 do
      d.(k) <- d.(k) -. grad_w.(k)
    done

  let apply_delta vecs tbl =
    Hashtbl.iter
      (fun i d ->
        let v = vecs.(i) in
        for k = 0 to Array.length d - 1 do
          v.(k) <- v.(k) +. d.(k)
        done)
      tbl

  let train_sequential config ~neg_table ~word_vecs ~context_vecs ~rng pairs =
    let n_pairs = Array.length pairs in
    let total_steps = config.epochs * n_pairs in
    let step = ref 0 in
    let grad_w = Array.make config.dim 0. in
    for _epoch = 0 to config.epochs - 1 do
      fisher_yates rng pairs;
      Array.iter
        (fun pair ->
          incr step;
          let lr = learning_rate_at config ~step:!step ~total:total_steps in
          sgd_step config ~neg_table ~word_vecs ~context_vecs ~grad_w ~rng ~lr
            pair)
        pairs
    done

  let train_sharded ~pool ~mode config ~neg_table ~word_vecs ~context_vecs
      pairs =
    let shards =
      Parallel.chunk_ranges ~chunks:(Parallel.jobs pool) (Array.length pairs)
    in
    let k = Array.length shards in
    let slices =
      Array.map (fun (lo, hi) -> Array.sub pairs lo (hi - lo + 1)) shards
    in
    let rngs = Array.init k (fun s -> Random.State.make [| config.seed; s |]) in
    let shard_ids = Array.init k Fun.id in
    match mode with
    | Hogwild ->
        ignore
          (Parallel.map ~pool
             (fun s ->
               let slice = slices.(s) and rng = rngs.(s) in
               let total = config.epochs * Array.length slice in
               let step = ref 0 in
               let grad_w = Array.make config.dim 0. in
               for _epoch = 0 to config.epochs - 1 do
                 fisher_yates rng slice;
                 Array.iter
                   (fun pair ->
                     incr step;
                     let lr = learning_rate_at config ~step:!step ~total in
                     sgd_step config ~neg_table ~word_vecs ~context_vecs
                       ~grad_w ~rng ~lr pair)
                   slice
               done)
             shard_ids)
    | Deterministic ->
        let max_len =
          Array.fold_left (fun acc sl -> max acc (Array.length sl)) 0 slices
        in
        for epoch = 0 to config.epochs - 1 do
          Array.iteri (fun s slice -> fisher_yates rngs.(s) slice) slices;
          let off = ref 0 in
          while !off < max_len do
            let lo = !off in
            let deltas =
              Parallel.map ~pool
                (fun s ->
                  let slice = slices.(s) and rng = rngs.(s) in
                  let len = Array.length slice in
                  let hi = min len (lo + round_pairs_per_shard) in
                  if lo >= hi then None
                  else begin
                    let dw = Hashtbl.create 64 and dc = Hashtbl.create 256 in
                    let grad_w = Array.make config.dim 0. in
                    let total = config.epochs * len in
                    for i = lo to hi - 1 do
                      let step = (epoch * len) + i + 1 in
                      let lr = learning_rate_at config ~step ~total in
                      sgd_step_delta config ~neg_table ~word_vecs
                        ~context_vecs ~grad_w ~rng ~lr ~dw ~dc slice.(i)
                    done;
                    Some (dw, dc)
                  end)
                shard_ids
            in
            Array.iter
              (function
                | None -> ()
                | Some (dw, dc) ->
                    apply_delta word_vecs dw;
                    apply_delta context_vecs dc)
              deltas;
            off := lo + round_pairs_per_shard
          done
        done

  let train ?pool ?(mode = Deterministic) ?(config = default_config) pairs =
    let words, contexts, pairs, n_pairs, rng = prepare config pairs in
    let init_vec () =
      Array.init config.dim (fun _ ->
          (Random.State.float rng 1.0 -. 0.5) /. float_of_int config.dim)
    in
    let word_vecs = Array.init (Vocab.size words) (fun _ -> init_vec ()) in
    let context_vecs =
      Array.init (Vocab.size contexts) (fun _ -> init_vec ())
    in
    let neg_table = build_neg_table contexts 100_000 in
    let jobs = match pool with Some p -> Parallel.jobs p | None -> 1 in
    if n_pairs > 0 && Array.length neg_table > 0 then begin
      match pool with
      | Some pool when jobs > 1 && n_pairs >= jobs ->
          train_sharded ~pool ~mode config ~neg_table ~word_vecs ~context_vecs
            pairs
      | _ ->
          train_sequential config ~neg_table ~word_vecs ~context_vecs ~rng
            pairs
    end;
    { config; words; contexts; word_vecs; context_vecs }
end

let word_vec t w = Option.map (fun i -> t.word_vecs.(i)) (Vocab.id t.words w)

let context_vec t c =
  Option.map (fun i -> t.context_vecs.(i)) (Vocab.id t.contexts c)

let norm v = sqrt (dot v v)

(* An embedding matrix behind a storage abstraction: boxed heap rows
   (what training produces) or one flat float64 view over an mmap'd
   model file (row i at elements [i*dim, (i+1)*dim)). Every operation
   runs the same float operations in the same order on both, so
   predictions are byte-identical across storages. Mapped values are
   checksummed lazily by the verify closure the loader installs. *)
module Mat = struct
  type flat = {
    f_vals : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
    f_rows : int;
    f_dim : int;
    f_verify : unit -> unit;
    mutable f_verified : bool;
        (* benign race: concurrent first uses just repeat an
           idempotent read-only checksum *)
  }

  type t = Rows of float array array | Flat of flat

  let of_rows rows = Rows rows

  let of_mapped ~vals ~rows ~dim ~verify =
    if rows < 0 || dim < 0 || Bigarray.Array1.dim vals <> rows * dim then
      Printf.ksprintf failwith
        "matrix view size mismatch: %d rows x %d dim over %d floats" rows dim
        (Bigarray.Array1.dim vals);
    Flat { f_vals = vals; f_rows = rows; f_dim = dim; f_verify = verify;
           f_verified = false }

  let rows = function Rows r -> Array.length r | Flat f -> f.f_rows

  let ensure_verified = function
    | Rows _ -> ()
    | Flat f ->
        if not f.f_verified then begin
          f.f_verify ();
          f.f_verified <- true
        end

  let row m i =
    match m with
    | Rows r -> r.(i)
    | Flat f ->
        let base = i * f.f_dim in
        Array.init f.f_dim (fun d ->
            Bigarray.Array1.unsafe_get f.f_vals (base + d))

  (* Same element order as [dot] on two heap rows (and IEEE multiply
     commutes), so scores are byte-identical across storages. *)
  let dot_row m i b =
    match m with
    | Rows r -> dot r.(i) b
    | Flat f ->
        let base = i * f.f_dim in
        let acc = ref 0. in
        for d = 0 to f.f_dim - 1 do
          acc :=
            !acc
            +. Bigarray.Array1.unsafe_get f.f_vals (base + d)
               *. Array.unsafe_get b d
        done;
        !acc

  let norm_row m i =
    match m with
    | Rows r -> norm r.(i)
    | Flat f ->
        let base = i * f.f_dim in
        let acc = ref 0. in
        for d = 0 to f.f_dim - 1 do
          let x = Bigarray.Array1.unsafe_get f.f_vals (base + d) in
          acc := !acc +. (x *. x)
        done;
        sqrt !acc

  let to_rows m =
    match m with
    | Rows r -> r
    | Flat f ->
        ensure_verified m;
        Array.init f.f_rows (fun i -> row m i)

  let storage = function Rows _ -> `Heap | Flat _ -> `Mapped
end

(* A model whose matrices sit behind {!Mat}: what inference paths
   (the serve engine, [predict_view]) consume, so one code path serves
   heap-trained and mapped models alike. *)
type view = {
  v_config : config;
  v_words : Vocab.t;
  v_contexts : Vocab.t;
  v_word_vecs : Mat.t;
  v_context_vecs : Mat.t;
}

let view_of t =
  {
    v_config = t.config;
    v_words = t.words;
    v_contexts = t.contexts;
    v_word_vecs = Mat.of_rows t.word_vecs;
    v_context_vecs = Mat.of_rows t.context_vecs;
  }

let heap_of_view v =
  {
    config = v.v_config;
    words = v.v_words;
    contexts = v.v_contexts;
    word_vecs = Mat.to_rows v.v_word_vecs;
    context_vecs = Mat.to_rows v.v_context_vecs;
  }

let view_storage v =
  match (Mat.storage v.v_word_vecs, Mat.storage v.v_context_vecs) with
  | `Heap, `Heap -> `Heap
  | _ -> `Mapped

let verify_view v =
  Mat.ensure_verified v.v_word_vecs;
  Mat.ensure_verified v.v_context_vecs

let predict_view v context_strings =
  verify_view v;
  let cvs =
    List.filter_map
      (fun c -> Option.map (Mat.row v.v_context_vecs) (Vocab.id v.v_contexts c))
      context_strings
  in
  let scores =
    Array.init (Mat.rows v.v_word_vecs) (fun wi ->
        let s =
          List.fold_left
            (fun acc cv -> acc +. Mat.dot_row v.v_word_vecs wi cv)
            0. cvs
        in
        (Vocab.word v.v_words wi, s))
  in
  Array.to_list scores
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let most_similar_view v w ~k =
  verify_view v;
  match Vocab.id v.v_words w with
  | None -> []
  | Some wi ->
      let wv = Mat.row v.v_word_vecs wi in
      let nw = norm wv in
      (* All row norms once per call, not once per candidate
         comparison; same floats as computing them inline. *)
      let n = Mat.rows v.v_word_vecs in
      let norms = Array.init n (fun i -> Mat.norm_row v.v_word_vecs i) in
      Array.to_list
        (Array.init n (fun i ->
             let d = norms.(i) *. nw in
             ( Vocab.word v.v_words i,
               if d = 0. then 0. else Mat.dot_row v.v_word_vecs i wv /. d )))
      |> List.filter (fun (x, _) -> not (String.equal x w))
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
      |> List.filteri (fun i _ -> i < k)

(* The heap entry points delegate through an O(1) view wrap: one
   implementation, so heap/mapped byte-identity holds by construction. *)
let predict t context_strings = predict_view (view_of t) context_strings
let most_similar t w ~k = most_similar_view (view_of t) w ~k
