(* Version 4 (what [save] writes) is binary and mappable: the text
   magic line "pigeon-w2v-model 4\n", then length-prefixed sections
   (tag byte, payload length, payload — see {!Lexkit.Binio}):

     1 config        dim, epochs, negatives, raw LE float lr,
                     min_count, seed
     2 words         count, (string, count) in vocab-id order
   254 pad           0-7 zero bytes, emitted before each matrix
                     section so its float run (payload offset 16)
                     lands 8-byte aligned in the file
     3 word-vecs     rows, dim, raw LE floats row-major
     4 contexts      count, (string, count)
   254 pad
     5 context-vecs  rows, dim, raw floats
   255 end           section count (pads included), then per section
                     in file order: tag byte, FNV checksum of its
                     payload

   Per-section checksums let the mapped loader verify everything it
   copies eagerly and defer the (page-faulting) matrix checks until
   first use. Everything is emitted in vocab-id order and pads are
   deterministic, so the writer is a canonical form: save → load →
   save round-trips byte-identically.

   Version 3 is the same minus pads, with a single whole-body checksum
   in the end section. Versions 1 and 2 are line-oriented text in the
   word2vec conventions ("w <escaped-token> <count> <floats...>";
   version 2 adds an "end <record-count>" trailer). All still load,
   as heap copies. *)

let format_version = 4
let magic v = Printf.sprintf "pigeon-w2v-model %d" v

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match
       if s.[!i] = '%' && !i + 2 < n then
         int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2)
       else None
     with
    | Some c ->
        Buffer.add_char buf (Char.chr c);
        i := !i + 3
    | None ->
        Buffer.add_char buf s.[!i];
        incr i)
  done;
  Buffer.contents buf

(* Version-2 text writer, kept for compatibility fixtures. *)
let to_channel_v2 (m : Sgns.t) oc =
  let records = ref 0 in
  let p fmt =
    incr records;
    Printf.fprintf oc fmt
  in
  let write_matrix tag vocab vecs =
    Array.iteri
      (fun i v ->
        incr records;
        Printf.fprintf oc "%s %s %d" tag
          (escape (Vocab.word vocab i))
          (Vocab.count vocab i);
        Array.iter (fun x -> Printf.fprintf oc " %.9g" x) v;
        output_char oc '\n')
      vecs
  in
  Printf.fprintf oc "%s\n" (magic 2);
  let c = m.Sgns.config in
  p "config %d %d %d %.17g %d %d\n" c.Sgns.dim c.Sgns.epochs c.Sgns.negatives
    c.Sgns.learning_rate c.Sgns.min_count c.Sgns.seed;
  p "words %d\n" (Vocab.size m.Sgns.words);
  write_matrix "w" m.Sgns.words m.Sgns.word_vecs;
  p "contexts %d\n" (Vocab.size m.Sgns.contexts);
  write_matrix "c" m.Sgns.contexts m.Sgns.context_vecs;
  Printf.fprintf oc "end %d\n" !records

let n_sections = 5
let pad_tag = 254

(* Version-3 binary writer, kept so the loaders' v3 compatibility path
   stays testable against freshly written files. *)
let to_string_v3 (m : Sgns.t) =
  let open Lexkit.Binio in
  let buf = Buffer.create (1 lsl 16) in
  let section tag fill =
    let payload = Buffer.create 1024 in
    fill payload;
    w_section buf ~tag payload
  in
  let c = m.Sgns.config in
  section 1 (fun b ->
      w_int b c.Sgns.dim;
      w_int b c.Sgns.epochs;
      w_int b c.Sgns.negatives;
      w_float b c.Sgns.learning_rate;
      w_int b c.Sgns.min_count;
      w_int b c.Sgns.seed);
  let vocab_section tag vocab =
    section tag (fun b ->
        let n = Vocab.size vocab in
        w_int b n;
        for i = 0 to n - 1 do
          w_string b (Vocab.word vocab i);
          w_int b (Vocab.count vocab i)
        done)
  in
  let matrix_section tag vecs =
    section tag (fun b ->
        let rows = Array.length vecs in
        w_int b rows;
        w_int b (if rows = 0 then c.Sgns.dim else Array.length vecs.(0));
        Array.iter (fun row -> Array.iter (w_float b) row) vecs)
  in
  vocab_section 2 m.Sgns.words;
  matrix_section 3 m.Sgns.word_vecs;
  vocab_section 4 m.Sgns.contexts;
  matrix_section 5 m.Sgns.context_vecs;
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 64) in
  Buffer.add_string out (magic 3);
  Buffer.add_char out '\n';
  Buffer.add_string out body;
  let trailer = Buffer.create 24 in
  w_int trailer n_sections;
  w_int trailer (checksum body);
  w_section out ~tag:255 trailer;
  Buffer.contents out

let to_string (m : Sgns.t) =
  let open Lexkit.Binio in
  let buf = Buffer.create (1 lsl 16) in
  let magic_len = String.length (magic format_version) + 1 in
  let sums = ref [] in
  let section tag fill =
    let payload = Buffer.create 1024 in
    fill payload;
    sums := (tag, checksum (Buffer.contents payload)) :: !sums;
    w_section buf ~tag payload
  in
  (* Pad so the next section's payload starts 8-byte aligned in the
     file (see the CRF writer): with [pos] the pad header's absolute
     offset, the next payload starts at pos + 9 + p + 9. The matrix
     float run sits at payload offset 16, which preserves 8-alignment. *)
  let align () =
    let pos = magic_len + Buffer.length buf in
    let p = (8 - ((pos + 18) mod 8)) mod 8 in
    section pad_tag (fun b ->
        for _ = 1 to p do
          w_u8 b 0
        done)
  in
  let c = m.Sgns.config in
  section 1 (fun b ->
      w_int b c.Sgns.dim;
      w_int b c.Sgns.epochs;
      w_int b c.Sgns.negatives;
      w_float b c.Sgns.learning_rate;
      w_int b c.Sgns.min_count;
      w_int b c.Sgns.seed);
  let vocab_section tag vocab =
    section tag (fun b ->
        let n = Vocab.size vocab in
        w_int b n;
        for i = 0 to n - 1 do
          w_string b (Vocab.word vocab i);
          w_int b (Vocab.count vocab i)
        done)
  in
  let matrix_section tag vecs =
    align ();
    section tag (fun b ->
        let rows = Array.length vecs in
        w_int b rows;
        w_int b (if rows = 0 then c.Sgns.dim else Array.length vecs.(0));
        Array.iter (fun row -> Array.iter (w_float b) row) vecs)
  in
  vocab_section 2 m.Sgns.words;
  matrix_section 3 m.Sgns.word_vecs;
  vocab_section 4 m.Sgns.contexts;
  matrix_section 5 m.Sgns.context_vecs;
  let out = Buffer.create (Buffer.length buf + 128) in
  Buffer.add_string out (magic format_version);
  Buffer.add_char out '\n';
  Buffer.add_buffer out buf;
  let entries = List.rev !sums in
  let trailer = Buffer.create 128 in
  w_int trailer (List.length entries);
  List.iter
    (fun (tag, sum) ->
      w_u8 trailer tag;
      w_int trailer sum)
    entries;
  w_section out ~tag:255 trailer;
  Buffer.contents out

let to_channel m oc = output_string oc (to_string m)

let corrupt ?source fmt =
  Format.kasprintf
    (fun msg ->
      raise
        (Lexkit.Diag.Error
           (Lexkit.Diag.make ?file:source Lexkit.Diag.Corrupt_model msg)))
    fmt

let count_ what n =
  if n < 0 then Printf.ksprintf failwith "%s: negative count" what;
  n

(* ---------- shared section-payload parsers ---------- *)

let read_config r =
  let open Lexkit.Binio in
  let dim = r_int r "dim" in
  let epochs = r_int r "epochs" in
  let negatives = r_int r "negatives" in
  let learning_rate = r_float r "learning_rate" in
  let min_count = r_int r "min_count" in
  let seed = r_int r "seed" in
  if dim < 0 then failwith "negative vector dimension";
  { Sgns.dim; epochs; negatives; learning_rate; min_count; seed }

let read_vocab r what =
  let open Lexkit.Binio in
  let n = count_ what (r_int r what) in
  let items =
    List.init n (fun _ ->
        let w = r_string r what in
        (w, r_int r what))
  in
  Vocab.of_items items

(* Shared sanity checks for a matrix header: [avail] is the byte count
   actually present after the rows/dim words, so a hostile dim fails
   as a size mismatch, not as an uncatchable Out_of_memory. *)
let check_matrix_header ~what ~config ~vocab ~rows ~dim ~avail =
  if rows <> Vocab.size vocab then
    Printf.ksprintf failwith "%s: %d rows for a vocabulary of %d" what rows
      (Vocab.size vocab);
  if dim <> config.Sgns.dim then
    Printf.ksprintf failwith "%s: bad vector size (%d, expected %d)" what dim
      config.Sgns.dim;
  if
    (if rows = 0 then avail <> 0
     else dim > avail / 8 / rows || avail <> 8 * rows * dim)
  then
    Printf.ksprintf failwith "%s: %dx%d matrix does not match the file" what
      rows dim

(* [body] is everything after the magic line; failures carry a byte
   offset and surface as [Corrupt_model] diagnostics. *)
let parse_v3 ?source body =
  match
    let open Lexkit.Binio in
    let r = reader body in
    let sect tag what fill =
      let stop = r_section r ~tag ~what in
      let v = fill stop in
      end_section r ~stop ~what;
      v
    in
    let config = sect 1 "config" (fun _ -> read_config r) in
    let matrix tag what vocab =
      sect tag what (fun stop ->
          let rows = count_ what (r_int r what) in
          let dim = r_int r what in
          check_matrix_header ~what ~config ~vocab ~rows ~dim
            ~avail:(stop - offset r);
          Array.init rows (fun _ ->
              Array.init dim (fun _ -> r_float r what)))
    in
    let words = sect 2 "words" (fun _ -> read_vocab r "words") in
    let word_vecs = matrix 3 "word-vecs" words in
    let contexts = sect 4 "contexts" (fun _ -> read_vocab r "contexts") in
    let context_vecs = matrix 5 "context-vecs" contexts in
    let body_len = offset r in
    sect 255 "end" (fun _ ->
        let n = r_int r "section count" in
        if n <> n_sections then
          Printf.ksprintf failwith
            "section count mismatch: trailer says %d, format has %d" n
            n_sections;
        let sum = r_int r "checksum" in
        if sum <> checksum (String.sub body 0 body_len) then
          failwith "checksum mismatch: model data is corrupted");
    if not (at_end r) then failwith "trailing data after the model";
    { Sgns.config; words; contexts; word_vecs; context_vecs }
  with
  | m -> m
  | exception (Failure msg | Invalid_argument msg) ->
      corrupt ?source "corrupt binary model: %s" msg

(* The v4 copy parser — same result as the mapped loader, every
   payload on the heap. *)
let parse_v4 ?source body =
  match
    let open Lexkit.Binio in
    let r = reader body in
    let sums = ref [] in
    let sect tag what fill =
      let stop = r_section r ~tag ~what in
      let start = offset r in
      let v = fill stop in
      end_section r ~stop ~what;
      sums := (tag, checksum (String.sub body start (stop - start))) :: !sums;
      v
    in
    let pad what =
      sect pad_tag what (fun stop ->
          let n = stop - offset r in
          if n > 7 then
            Printf.ksprintf failwith "%s: oversized pad (%d bytes)" what n;
          r_skip r n what)
    in
    let config = sect 1 "config" (fun _ -> read_config r) in
    let matrix tag what vocab =
      pad (what ^ " pad");
      sect tag what (fun stop ->
          let rows = count_ what (r_int r what) in
          let dim = r_int r what in
          check_matrix_header ~what ~config ~vocab ~rows ~dim
            ~avail:(stop - offset r);
          Array.init rows (fun _ ->
              Array.init dim (fun _ -> r_float r what)))
    in
    let words = sect 2 "words" (fun _ -> read_vocab r "words") in
    let word_vecs = matrix 3 "word-vecs" words in
    let contexts = sect 4 "contexts" (fun _ -> read_vocab r "contexts") in
    let context_vecs = matrix 5 "context-vecs" contexts in
    let stop = r_section r ~tag:255 ~what:"end" in
    let entries = List.rev !sums in
    let n = r_int r "section count" in
    if n <> List.length entries then
      Printf.ksprintf failwith
        "section count mismatch: trailer says %d, file has %d" n
        (List.length entries);
    List.iter
      (fun (tag, sum) ->
        let t = r_u8 r "trailer tag" in
        let s = r_int r "trailer checksum" in
        if t <> tag then
          Printf.ksprintf failwith
            "trailer tag mismatch: file section %d recorded as %d" tag t;
        if s <> sum then
          Printf.ksprintf failwith
            "checksum mismatch in section %d: model data is corrupted" tag)
      entries;
    end_section r ~stop ~what:"end";
    if not (at_end r) then failwith "trailing data after the model";
    { Sgns.config; words; contexts; word_vecs; context_vecs }
  with
  | m -> m
  | exception (Failure msg | Invalid_argument msg) ->
      corrupt ?source "corrupt binary model: %s" msg

(* Parse from a [next_line] pull function so channels and in-memory
   strings (the fuzz suite) share one code path. Every malformed input
   raises [Lexkit.Diag.Error] with kind [Corrupt_model] and the
   offending line number. *)
let parse ?source next_line =
  let line_no = ref 0 in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ?file:source
                ~pos:{ Lexkit.line = !line_no; col = 1; offset = 0 }
                Lexkit.Diag.Corrupt_model msg)))
      fmt
  in
  let records = ref 0 in
  let read () =
    incr line_no;
    match next_line () with
    | Some l -> l
    | None -> fail "unexpected end of file"
  in
  let record () =
    incr records;
    read ()
  in
  let int_ s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail "malformed integer %S" s
  in
  let float_ s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "malformed float %S" s
  in
  let version =
    match read () with
    | l when String.equal l (magic 1) -> 1
    | l when String.equal l (magic 2) -> 2
    | _ -> fail "bad magic (not a pigeon-w2v-model file)"
  in
  let config =
    match String.split_on_char ' ' (record ()) with
    | [ "config"; dim; ep; neg; lr; mc; seed ] ->
        {
          Sgns.dim = int_ dim;
          epochs = int_ ep;
          negatives = int_ neg;
          learning_rate = float_ lr;
          min_count = int_ mc;
          seed = int_ seed;
        }
    | _ -> fail "bad config record"
  in
  if config.Sgns.dim < 0 then fail "negative vector dimension";
  let read_matrix tag header =
    let n =
      match String.split_on_char ' ' (record ()) with
      | [ h; n ] when String.equal h header -> int_ n
      | _ -> fail "expected %S record" header
    in
    if n < 0 then fail "negative %s count" header;
    let entries =
      List.init n (fun _ ->
          match String.split_on_char ' ' (record ()) with
          | t :: tok :: count :: rest when String.equal t tag ->
              let vec = Array.of_list (List.map float_ rest) in
              if Array.length vec <> config.Sgns.dim then
                fail "bad vector size (%d, expected %d)" (Array.length vec)
                  config.Sgns.dim;
              (unescape tok, int_ count, vec)
          | _ -> fail "bad %S record" tag)
    in
    let vocab =
      match Vocab.of_items (List.map (fun (tok, c, _) -> (tok, c)) entries) with
      | v -> v
      | exception Invalid_argument msg -> fail "%s" msg
    in
    (vocab, Array.of_list (List.map (fun (_, _, v) -> v) entries))
  in
  let words, word_vecs = read_matrix "w" "words" in
  let contexts, context_vecs = read_matrix "c" "contexts" in
  (if version >= 2 then
     match String.split_on_char ' ' (read ()) with
     | [ "end"; n ] ->
         let n = int_ n in
         if n <> !records then
           fail "record count mismatch: trailer says %d, file has %d" n !records
     | _ -> fail "truncated model: missing \"end\" trailer");
  (* Nothing but blank lines may follow. *)
  let rec drain () =
    match next_line () with
    | None -> ()
    | Some l ->
        incr line_no;
        if not (String.equal (String.trim l) "") then
          fail "trailing data after the model";
        drain ()
  in
  drain ();
  { Sgns.config; words; contexts; word_vecs; context_vecs }

(* The magic line picks the parser: versions 3 and 4 are binary (they
   cannot be split on newlines), versions 1 and 2 are line-oriented
   text. *)
let parse_string ?source s =
  let nl = match String.index_opt s '\n' with Some i -> i | None -> String.length s in
  let head = String.sub s 0 nl in
  let body () =
    if nl >= String.length s then ""
    else String.sub s (nl + 1) (String.length s - nl - 1)
  in
  if String.equal head (magic 4) then parse_v4 ?source (body ())
  else if String.equal head (magic 3) then parse_v3 ?source (body ())
  else
    let rest = ref (String.split_on_char '\n' s) in
    let next () =
      match !rest with
      | [] -> None
      | l :: tl ->
          rest := tl;
          Some l
    in
    parse ?source next

let from_channel ?source ic = parse_string ?source (In_channel.input_all ic)

let of_string ?source s =
  Lexkit.protect ?file:source (fun () -> parse_string ?source s)

(* Temp-file + rename: a save interrupted at any point (crash, kill,
   full disk) can never leave a truncated model where the next daemon
   start would trip over it. *)
let save m path = Lexkit.write_file_atomic path (to_string m)

let load path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Lexkit.protect ~file:path (fun () -> from_channel ~source:path ic))

let load_exn path =
  match load path with
  | Ok m -> m
  | Error d -> raise (Lexkit.Diag.Error d)

(* ---------- training checkpoints ----------

   "pigeon-w2v-checkpoint 1\n", then v3-style sections with one
   whole-body checksum (checkpoints are transient — nothing maps
   them):

     1 header   config as in the model format, then the resume cursor:
                next_epoch, next_shard, jobs, and the shard layout
                (count, pairs-per-shard ints)
     2 words    count, (string, count) in vocab-id order
     3 w        rows, dim, raw LE floats (the flat training matrix)
     4 contexts 5 c    same pair for the context side
   255 end      section count, FNV checksum of the body

   Floats are raw bits, so restore → continue is bit-exact. *)

let ckpt_magic = "pigeon-w2v-checkpoint 1"
let ckpt_sections = 6

let checkpoint_to_string (ck : Sgns.ckpt) =
  let open Lexkit.Binio in
  let buf = Buffer.create (1 lsl 16) in
  let section tag fill =
    let payload = Buffer.create 1024 in
    fill payload;
    w_section buf ~tag payload
  in
  let c = ck.Sgns.ck_config in
  section 1 (fun b ->
      w_int b c.Sgns.dim;
      w_int b c.Sgns.epochs;
      w_int b c.Sgns.negatives;
      w_float b c.Sgns.learning_rate;
      w_int b c.Sgns.min_count;
      w_int b c.Sgns.seed;
      w_int b ck.Sgns.ck_next_epoch;
      w_int b ck.Sgns.ck_next_shard;
      w_int b ck.Sgns.ck_jobs;
      w_int b (Array.length ck.Sgns.ck_shard_sizes);
      Array.iter (w_int b) ck.Sgns.ck_shard_sizes);
  let vocab_section tag vocab =
    section tag (fun b ->
        let n = Vocab.size vocab in
        w_int b n;
        for i = 0 to n - 1 do
          w_string b (Vocab.word vocab i);
          w_int b (Vocab.count vocab i)
        done)
  in
  let matrix_section tag fa rows =
    section tag (fun b ->
        w_int b rows;
        w_int b c.Sgns.dim;
        Float.Array.iter (w_float b) fa)
  in
  vocab_section 2 ck.Sgns.ck_words;
  matrix_section 3 ck.Sgns.ck_w (Vocab.size ck.Sgns.ck_words);
  vocab_section 4 ck.Sgns.ck_contexts;
  matrix_section 5 ck.Sgns.ck_c (Vocab.size ck.Sgns.ck_contexts);
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 64) in
  Buffer.add_string out ckpt_magic;
  Buffer.add_char out '\n';
  Buffer.add_string out body;
  let trailer = Buffer.create 24 in
  w_int trailer ckpt_sections;
  w_int trailer (checksum body);
  w_section out ~tag:255 trailer;
  Buffer.contents out

let checkpoint_save path ck =
  Lexkit.write_file_atomic path (checkpoint_to_string ck)

let parse_checkpoint ?source body =
  match
    let open Lexkit.Binio in
    let r = reader body in
    let sect tag what fill =
      let stop = r_section r ~tag ~what in
      let v = fill stop in
      end_section r ~stop ~what;
      v
    in
    let config, next_epoch, next_shard, jobs, shard_sizes =
      sect 1 "header" (fun stop ->
          let config = read_config r in
          let next_epoch = r_int r "next_epoch" in
          let next_shard = r_int r "next_shard" in
          let jobs = r_int r "jobs" in
          let n_shards = count_ "shard count" (r_int r "shard count") in
          if n_shards > (stop - offset r) / 8 then
            failwith "shard layout does not fit the header";
          let shard_sizes =
            Array.init n_shards (fun _ -> r_int r "shard size")
          in
          Array.iter
            (fun s -> if s < 0 then failwith "negative shard size")
            shard_sizes;
          if n_shards = 0 then failwith "empty shard layout";
          if next_shard < 0 || next_shard >= n_shards then
            Printf.ksprintf failwith "shard cursor %d outside [0, %d)"
              next_shard n_shards;
          if next_epoch < 0 || next_epoch > config.Sgns.epochs then
            Printf.ksprintf failwith "epoch cursor %d outside [0, %d]"
              next_epoch config.Sgns.epochs;
          if jobs <= 0 then failwith "non-positive job count";
          (config, next_epoch, next_shard, jobs, shard_sizes))
    in
    let matrix tag what vocab =
      sect tag what (fun stop ->
          let rows = count_ what (r_int r what) in
          let dim = r_int r what in
          check_matrix_header ~what ~config ~vocab ~rows ~dim
            ~avail:(stop - offset r);
          Float.Array.init (rows * dim) (fun _ -> r_float r what))
    in
    let words = sect 2 "words" (fun _ -> read_vocab r "words") in
    let w = matrix 3 "w" words in
    let contexts = sect 4 "contexts" (fun _ -> read_vocab r "contexts") in
    let c = matrix 5 "c" contexts in
    let body_len = offset r in
    sect 255 "end" (fun _ ->
        let n = r_int r "section count" in
        if n <> ckpt_sections then
          Printf.ksprintf failwith
            "section count mismatch: trailer says %d, format has %d" n
            ckpt_sections;
        let sum = r_int r "checksum" in
        if sum <> checksum (String.sub body 0 body_len) then
          failwith "checksum mismatch: checkpoint data is corrupted");
    if not (at_end r) then failwith "trailing data after the checkpoint";
    {
      Sgns.ck_config = config;
      ck_words = words;
      ck_contexts = contexts;
      ck_w = w;
      ck_c = c;
      ck_next_epoch = next_epoch;
      ck_next_shard = next_shard;
      ck_shard_sizes = shard_sizes;
      ck_jobs = jobs;
    }
  with
  | ck -> ck
  | exception (Failure msg | Invalid_argument msg) ->
      corrupt ?source "corrupt checkpoint: %s" msg

let checkpoint_of_string ?source s =
  Lexkit.protect ?file:source (fun () ->
      let nl =
        match String.index_opt s '\n' with
        | Some i -> i
        | None -> String.length s
      in
      if not (String.equal (String.sub s 0 nl) ckpt_magic) then
        corrupt ?source "bad magic (not a pigeon-w2v-checkpoint file)";
      let body =
        if nl >= String.length s then ""
        else String.sub s (nl + 1) (String.length s - nl - 1)
      in
      parse_checkpoint ?source body)

let checkpoint_load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | s -> checkpoint_of_string ~source:path s

(* ---------- mapped loading ----------

   Mirrors {!Crf.Serialize.load_mapped}: the structure walk reads
   config, vocabularies and the checksum trailer through the channel,
   skips the matrix float runs with [seek_in], then maps the file once
   and wires each matrix to a [Sgns.Mat] view with a lazy verify
   closure. The matrices are the bulk of a trained model, so a load is
   O(vocabulary). *)

exception Downgrade of string

type matrix_walk = {
  x_what : string;
  x_rows : int;
  x_dim : int;
  x_prefix : int;  (* checksum over the rows/dim words *)
  x_off : int;  (* absolute byte offset of the float run *)
  mutable x_expect : int;
}

type w2v_walk = Full of string * int | Msec of matrix_walk

let map_v4 path ic size =
  let open Lexkit.Binio in
  let ch_bytes n what =
    if n < 0 || n > size - pos_in ic then
      Printf.ksprintf failwith "truncated at byte %d (%s)" (pos_in ic) what;
    really_input_string ic n
  in
  let ch_u8 what = Char.code (ch_bytes 1 what).[0] in
  let ch_int what =
    let s = ch_bytes 8 what in
    let v = String.get_int64_le s 0 in
    let n = Int64.to_int v in
    if Int64.of_int n <> v then
      Printf.ksprintf failwith "integer out of range at byte %d (%s)"
        (pos_in ic - 8) what;
    n
  in
  let header what =
    let tag = ch_u8 what in
    let len = ch_int what in
    if len < 0 || len > size - pos_in ic then
      Printf.ksprintf failwith "truncated at byte %d (%s)" (pos_in ic) what;
    (tag, len)
  in
  let walk = ref [] in
  let small tag what parse =
    let t, len = header what in
    if t <> tag then
      Printf.ksprintf failwith "expected section %d (%s), found %d at byte %d"
        tag what t
        (pos_in ic - 9);
    let payload = ch_bytes len what in
    walk := (tag, Full (what, checksum payload)) :: !walk;
    let r = reader payload in
    let v = parse r in
    if not (at_end r) then
      Printf.ksprintf failwith
        "section %s length mismatch: payload ends at byte %d, header said %d"
        what (offset r) len;
    v
  in
  let pad what =
    let t, len = header what in
    if t <> pad_tag then
      Printf.ksprintf failwith "expected pad section before %s, found %d" what
        t;
    if len > 7 then
      Printf.ksprintf failwith "%s: oversized pad (%d bytes)" what len;
    let payload = ch_bytes len what in
    walk := (pad_tag, Full (what ^ " pad", checksum payload)) :: !walk
  in
  let msect tag what ~config ~vocab =
    pad what;
    let t, len = header what in
    if t <> tag then
      Printf.ksprintf failwith "expected section %d (%s), found %d at byte %d"
        tag what t
        (pos_in ic - 9);
    let head_bytes = ch_bytes 16 what in
    let word i = Int64.to_int (String.get_int64_le head_bytes (8 * i)) in
    let rows = count_ what (word 0) in
    let dim = word 1 in
    check_matrix_header ~what ~config ~vocab ~rows ~dim ~avail:(len - 16);
    let prefix = checksum_add checksum_seed head_bytes in
    let off = pos_in ic in
    if off mod 8 <> 0 then
      raise (Downgrade (Printf.sprintf "%s float payload misaligned" what));
    seek_in ic (off + (8 * rows * dim));
    let x =
      { x_what = what; x_rows = rows; x_dim = dim; x_prefix = prefix;
        x_off = off; x_expect = 0 }
    in
    walk := (tag, Msec x) :: !walk;
    x
  in
  let config = small 1 "config" read_config in
  let words = small 2 "words" (fun r -> read_vocab r "words") in
  let wm = msect 3 "word-vecs" ~config ~vocab:words in
  let contexts = small 4 "contexts" (fun r -> read_vocab r "contexts") in
  let cm = msect 5 "context-vecs" ~config ~vocab:contexts in
  let t, len = header "end" in
  if t <> 255 then
    Printf.ksprintf failwith "expected end section, found %d" t;
  let payload = ch_bytes len "end" in
  if pos_in ic <> size then failwith "trailing data after the model";
  let r = reader payload in
  let entries = List.rev !walk in
  let n = r_int r "section count" in
  if n <> List.length entries then
    Printf.ksprintf failwith
      "section count mismatch: trailer says %d, file has %d" n
      (List.length entries);
  List.iter
    (fun (tag, entry) ->
      let t = r_u8 r "trailer tag" in
      let sum = r_int r "trailer checksum" in
      if t <> tag then
        Printf.ksprintf failwith
          "trailer tag mismatch: file section %d recorded as %d" tag t;
      match entry with
      | Full (what, s) ->
          if s <> sum then
            Printf.ksprintf failwith
              "checksum mismatch in section %s: model data is corrupted" what
      | Msec x -> x.x_expect <- sum)
    entries;
  if not (at_end r) then failwith "trailing data in the end section";
  let mm =
    try Lexkit.Mmap.map_floats path
    with Unix.Unix_error (e, _, _) ->
      raise (Downgrade (Printf.sprintf "mmap failed: %s" (Unix.error_message e)))
  in
  let mat x =
    let n = x.x_rows * x.x_dim in
    let vals = Lexkit.Mmap.sub mm ~off_bytes:x.x_off ~len:n in
    let expect = x.x_expect and what = x.x_what and prefix = x.x_prefix in
    let verify () =
      let sum = Lexkit.Mmap.checksum_floats ~h:prefix vals ~off:0 ~len:n in
      if sum <> expect then
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ~file:path Lexkit.Diag.Corrupt_model
                (Printf.sprintf
                   "checksum mismatch in section %s: mapped model data is corrupted"
                   what)))
    in
    Sgns.Mat.of_mapped ~vals ~rows:x.x_rows ~dim:x.x_dim ~verify
  in
  let view =
    {
      Sgns.v_config = config;
      v_words = words;
      v_contexts = contexts;
      v_word_vecs = mat wm;
      v_context_vecs = mat cm;
    }
  in
  (view, Lexkit.Mmap.size mm)

let load_mapped path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Lexkit.protect ~file:path (fun () ->
              let size = in_channel_length ic in
              let head =
                let want = magic format_version ^ "\n" in
                let n = String.length want in
                if size >= n && String.equal (really_input_string ic n) want
                then Some ()
                else None
              in
              let fallback note =
                seek_in ic 0;
                ( Sgns.view_of (from_channel ~source:path ic),
                  Lexkit.Storage.Heap { note = Some note } )
              in
              match head with
              | Some () when not Sys.big_endian -> (
                  match map_v4 path ic size with
                  | view, bytes -> (view, Lexkit.Storage.Mapped { bytes })
                  | exception Downgrade reason ->
                      fallback
                        (Printf.sprintf
                           "mapped load downgraded to a heap copy: %s" reason)
                  | exception (Failure msg | Invalid_argument msg) ->
                      corrupt ~source:path "corrupt binary model: %s" msg)
              | Some () ->
                  fallback
                    "mapped load downgraded to a heap copy: big-endian host"
              | None ->
                  fallback
                    (Printf.sprintf
                       "mapped load downgraded to a heap copy: not a v%d model"
                       format_version)))
