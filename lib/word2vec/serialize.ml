(* Version 3 (what [save] writes) is binary: the text magic line
   "pigeon-w2v-model 3\n", then length-prefixed sections (tag byte,
   payload length, payload — see {!Lexkit.Binio}):

     1 config        dim, epochs, negatives, raw LE float lr,
                     min_count, seed
     2 words         count, (string, count) in vocab-id order
     3 word-vecs     rows, dim, raw LE floats row-major
     4 contexts      count, (string, count)
     5 context-vecs  rows, dim, raw floats
   255 end           section count, FNV checksum of all section bytes

   Everything is emitted in vocab-id order, so the writer is a
   canonical form: save → load → save round-trips byte-identically.

   Versions 1 and 2 are line-oriented text in the word2vec
   conventions ("w <escaped-token> <count> <floats...>"; version 2
   adds an "end <record-count>" trailer) and still load. *)

let format_version = 3
let magic v = Printf.sprintf "pigeon-w2v-model %d" v

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match
       if s.[!i] = '%' && !i + 2 < n then
         int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2)
       else None
     with
    | Some c ->
        Buffer.add_char buf (Char.chr c);
        i := !i + 3
    | None ->
        Buffer.add_char buf s.[!i];
        incr i)
  done;
  Buffer.contents buf

(* Version-2 text writer, kept for compatibility fixtures. *)
let to_channel_v2 (m : Sgns.t) oc =
  let records = ref 0 in
  let p fmt =
    incr records;
    Printf.fprintf oc fmt
  in
  let write_matrix tag vocab vecs =
    Array.iteri
      (fun i v ->
        incr records;
        Printf.fprintf oc "%s %s %d" tag
          (escape (Vocab.word vocab i))
          (Vocab.count vocab i);
        Array.iter (fun x -> Printf.fprintf oc " %.9g" x) v;
        output_char oc '\n')
      vecs
  in
  Printf.fprintf oc "%s\n" (magic 2);
  let c = m.Sgns.config in
  p "config %d %d %d %.17g %d %d\n" c.Sgns.dim c.Sgns.epochs c.Sgns.negatives
    c.Sgns.learning_rate c.Sgns.min_count c.Sgns.seed;
  p "words %d\n" (Vocab.size m.Sgns.words);
  write_matrix "w" m.Sgns.words m.Sgns.word_vecs;
  p "contexts %d\n" (Vocab.size m.Sgns.contexts);
  write_matrix "c" m.Sgns.contexts m.Sgns.context_vecs;
  Printf.fprintf oc "end %d\n" !records

let n_sections = 5

let to_string (m : Sgns.t) =
  let open Lexkit.Binio in
  let buf = Buffer.create (1 lsl 16) in
  let section tag fill =
    let payload = Buffer.create 1024 in
    fill payload;
    w_section buf ~tag payload
  in
  let c = m.Sgns.config in
  section 1 (fun b ->
      w_int b c.Sgns.dim;
      w_int b c.Sgns.epochs;
      w_int b c.Sgns.negatives;
      w_float b c.Sgns.learning_rate;
      w_int b c.Sgns.min_count;
      w_int b c.Sgns.seed);
  let vocab_section tag vocab =
    section tag (fun b ->
        let n = Vocab.size vocab in
        w_int b n;
        for i = 0 to n - 1 do
          w_string b (Vocab.word vocab i);
          w_int b (Vocab.count vocab i)
        done)
  in
  let matrix_section tag vecs =
    section tag (fun b ->
        let rows = Array.length vecs in
        w_int b rows;
        w_int b (if rows = 0 then c.Sgns.dim else Array.length vecs.(0));
        Array.iter (fun row -> Array.iter (w_float b) row) vecs)
  in
  vocab_section 2 m.Sgns.words;
  matrix_section 3 m.Sgns.word_vecs;
  vocab_section 4 m.Sgns.contexts;
  matrix_section 5 m.Sgns.context_vecs;
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 64) in
  Buffer.add_string out (magic format_version);
  Buffer.add_char out '\n';
  Buffer.add_string out body;
  let trailer = Buffer.create 24 in
  w_int trailer n_sections;
  w_int trailer (checksum body);
  w_section out ~tag:255 trailer;
  Buffer.contents out

let to_channel m oc = output_string oc (to_string m)

(* [body] is everything after the magic line; failures carry a byte
   offset and surface as [Corrupt_model] diagnostics. *)
let parse_v3 ?source body =
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ?file:source Lexkit.Diag.Corrupt_model msg)))
      fmt
  in
  match
    let open Lexkit.Binio in
    let r = reader body in
    let sect tag what fill =
      let stop = r_section r ~tag ~what in
      let v = fill () in
      end_section r ~stop ~what;
      v
    in
    let count what n =
      if n < 0 then Printf.ksprintf failwith "%s: negative count" what;
      n
    in
    let config =
      sect 1 "config" (fun () ->
          let dim = r_int r "dim" in
          let epochs = r_int r "epochs" in
          let negatives = r_int r "negatives" in
          let learning_rate = r_float r "learning_rate" in
          let min_count = r_int r "min_count" in
          let seed = r_int r "seed" in
          { Sgns.dim; epochs; negatives; learning_rate; min_count; seed })
    in
    if config.Sgns.dim < 0 then failwith "negative vector dimension";
    let vocab tag what =
      sect tag what (fun () ->
          let n = count what (r_int r what) in
          let items =
            List.init n (fun _ ->
                let w = r_string r what in
                (w, r_int r what))
          in
          Vocab.of_items items)
    in
    let matrix tag what vocab =
      sect tag what (fun () ->
          let rows = count what (r_int r what) in
          let dim = r_int r what in
          if rows <> Vocab.size vocab then
            Printf.ksprintf failwith
              "%s: %d rows for a vocabulary of %d" what rows (Vocab.size vocab);
          if dim <> config.Sgns.dim then
            Printf.ksprintf failwith "%s: bad vector size (%d, expected %d)"
              what dim config.Sgns.dim;
          (* Bound the whole matrix against the bytes actually present
             before allocating: a hostile dim (the config section is
             unchecked integers) must fail as truncation, not as an
             uncatchable Out_of_memory mid-[Array.init]. *)
          if rows > 0 && dim > (String.length body - offset r) / 8 / rows
          then
            Printf.ksprintf failwith
              "%s: %dx%d matrix larger than the file" what rows dim;
          Array.init rows (fun _ ->
              Array.init dim (fun _ -> r_float r what)))
    in
    let words = vocab 2 "words" in
    let word_vecs = matrix 3 "word-vecs" words in
    let contexts = vocab 4 "contexts" in
    let context_vecs = matrix 5 "context-vecs" contexts in
    let body_len = offset r in
    sect 255 "end" (fun () ->
        let n = r_int r "section count" in
        if n <> n_sections then
          Printf.ksprintf failwith
            "section count mismatch: trailer says %d, format has %d" n
            n_sections;
        let sum = r_int r "checksum" in
        if sum <> checksum (String.sub body 0 body_len) then
          failwith "checksum mismatch: model data is corrupted");
    if not (at_end r) then failwith "trailing data after the model";
    { Sgns.config; words; contexts; word_vecs; context_vecs }
  with
  | m -> m
  | exception (Failure msg | Invalid_argument msg) ->
      fail "corrupt binary model: %s" msg

(* Parse from a [next_line] pull function so channels and in-memory
   strings (the fuzz suite) share one code path. Every malformed input
   raises [Lexkit.Diag.Error] with kind [Corrupt_model] and the
   offending line number. *)
let parse ?source next_line =
  let line_no = ref 0 in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ?file:source
                ~pos:{ Lexkit.line = !line_no; col = 1; offset = 0 }
                Lexkit.Diag.Corrupt_model msg)))
      fmt
  in
  let records = ref 0 in
  let read () =
    incr line_no;
    match next_line () with
    | Some l -> l
    | None -> fail "unexpected end of file"
  in
  let record () =
    incr records;
    read ()
  in
  let int_ s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail "malformed integer %S" s
  in
  let float_ s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "malformed float %S" s
  in
  let version =
    match read () with
    | l when String.equal l (magic 1) -> 1
    | l when String.equal l (magic 2) -> 2
    | _ -> fail "bad magic (not a pigeon-w2v-model file)"
  in
  let config =
    match String.split_on_char ' ' (record ()) with
    | [ "config"; dim; ep; neg; lr; mc; seed ] ->
        {
          Sgns.dim = int_ dim;
          epochs = int_ ep;
          negatives = int_ neg;
          learning_rate = float_ lr;
          min_count = int_ mc;
          seed = int_ seed;
        }
    | _ -> fail "bad config record"
  in
  if config.Sgns.dim < 0 then fail "negative vector dimension";
  let read_matrix tag header =
    let n =
      match String.split_on_char ' ' (record ()) with
      | [ h; n ] when String.equal h header -> int_ n
      | _ -> fail "expected %S record" header
    in
    if n < 0 then fail "negative %s count" header;
    let entries =
      List.init n (fun _ ->
          match String.split_on_char ' ' (record ()) with
          | t :: tok :: count :: rest when String.equal t tag ->
              let vec = Array.of_list (List.map float_ rest) in
              if Array.length vec <> config.Sgns.dim then
                fail "bad vector size (%d, expected %d)" (Array.length vec)
                  config.Sgns.dim;
              (unescape tok, int_ count, vec)
          | _ -> fail "bad %S record" tag)
    in
    let vocab =
      match Vocab.of_items (List.map (fun (tok, c, _) -> (tok, c)) entries) with
      | v -> v
      | exception Invalid_argument msg -> fail "%s" msg
    in
    (vocab, Array.of_list (List.map (fun (_, _, v) -> v) entries))
  in
  let words, word_vecs = read_matrix "w" "words" in
  let contexts, context_vecs = read_matrix "c" "contexts" in
  (if version >= 2 then
     match String.split_on_char ' ' (read ()) with
     | [ "end"; n ] ->
         let n = int_ n in
         if n <> !records then
           fail "record count mismatch: trailer says %d, file has %d" n !records
     | _ -> fail "truncated model: missing \"end\" trailer");
  (* Nothing but blank lines may follow. *)
  let rec drain () =
    match next_line () with
    | None -> ()
    | Some l ->
        incr line_no;
        if not (String.equal (String.trim l) "") then
          fail "trailing data after the model";
        drain ()
  in
  drain ();
  { Sgns.config; words; contexts; word_vecs; context_vecs }

(* The magic line picks the parser: version 3 is binary (it cannot be
   split on newlines), versions 1 and 2 are line-oriented text. *)
let parse_string ?source s =
  let nl = match String.index_opt s '\n' with Some i -> i | None -> String.length s in
  if String.equal (String.sub s 0 nl) (magic 3) then
    let body =
      if nl >= String.length s then ""
      else String.sub s (nl + 1) (String.length s - nl - 1)
    in
    parse_v3 ?source body
  else
    let rest = ref (String.split_on_char '\n' s) in
    let next () =
      match !rest with
      | [] -> None
      | l :: tl ->
          rest := tl;
          Some l
    in
    parse ?source next

let from_channel ?source ic = parse_string ?source (In_channel.input_all ic)

let of_string ?source s =
  Lexkit.protect ?file:source (fun () -> parse_string ?source s)

(* Temp-file + rename: a save interrupted at any point (crash, kill,
   full disk) can never leave a truncated model where the next daemon
   start would trip over it. *)
let save m path = Lexkit.write_file_atomic path (to_string m)

let load path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Lexkit.protect ~file:path (fun () -> from_channel ~source:path ic))

let load_exn path =
  match load path with
  | Ok m -> m
  | Error d -> raise (Lexkit.Diag.Error d)
