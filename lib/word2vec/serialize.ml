(* Format:
     pigeon-w2v-model 2
     config <dim> <epochs> <negatives> <lr> <min_count> <seed>
     words <n>
     w <escaped-token> <count> <v0> ... <v_dim-1>
     contexts <n>
     c <escaped-token> <count> <v0> ...
     end <record-count>
   Tokens are percent-escaped (space, tab, newline, CR, '%').

   The trailing [end] record counts the lines written after the magic,
   so truncated or appended-to files are rejected. Version 1 files
   (no trailer) are still accepted. *)

let format_version = 2
let magic v = Printf.sprintf "pigeon-w2v-model %d" v

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match
       if s.[!i] = '%' && !i + 2 < n then
         int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2)
       else None
     with
    | Some c ->
        Buffer.add_char buf (Char.chr c);
        i := !i + 3
    | None ->
        Buffer.add_char buf s.[!i];
        incr i)
  done;
  Buffer.contents buf

let to_channel (m : Sgns.t) oc =
  let records = ref 0 in
  let p fmt =
    incr records;
    Printf.fprintf oc fmt
  in
  let write_matrix tag vocab vecs =
    Array.iteri
      (fun i v ->
        incr records;
        Printf.fprintf oc "%s %s %d" tag
          (escape (Vocab.word vocab i))
          (Vocab.count vocab i);
        Array.iter (fun x -> Printf.fprintf oc " %.9g" x) v;
        output_char oc '\n')
      vecs
  in
  Printf.fprintf oc "%s\n" (magic format_version);
  let c = m.Sgns.config in
  p "config %d %d %d %.17g %d %d\n" c.Sgns.dim c.Sgns.epochs c.Sgns.negatives
    c.Sgns.learning_rate c.Sgns.min_count c.Sgns.seed;
  p "words %d\n" (Vocab.size m.Sgns.words);
  write_matrix "w" m.Sgns.words m.Sgns.word_vecs;
  p "contexts %d\n" (Vocab.size m.Sgns.contexts);
  write_matrix "c" m.Sgns.contexts m.Sgns.context_vecs;
  Printf.fprintf oc "end %d\n" !records

(* Parse from a [next_line] pull function so channels and in-memory
   strings (the fuzz suite) share one code path. Every malformed input
   raises [Lexkit.Diag.Error] with kind [Corrupt_model] and the
   offending line number. *)
let parse ?source next_line =
  let line_no = ref 0 in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Lexkit.Diag.Error
             (Lexkit.Diag.make ?file:source
                ~pos:{ Lexkit.line = !line_no; col = 1; offset = 0 }
                Lexkit.Diag.Corrupt_model msg)))
      fmt
  in
  let records = ref 0 in
  let read () =
    incr line_no;
    match next_line () with
    | Some l -> l
    | None -> fail "unexpected end of file"
  in
  let record () =
    incr records;
    read ()
  in
  let int_ s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail "malformed integer %S" s
  in
  let float_ s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "malformed float %S" s
  in
  let version =
    match read () with
    | l when String.equal l (magic 1) -> 1
    | l when String.equal l (magic 2) -> 2
    | _ -> fail "bad magic (not a pigeon-w2v-model file)"
  in
  let config =
    match String.split_on_char ' ' (record ()) with
    | [ "config"; dim; ep; neg; lr; mc; seed ] ->
        {
          Sgns.dim = int_ dim;
          epochs = int_ ep;
          negatives = int_ neg;
          learning_rate = float_ lr;
          min_count = int_ mc;
          seed = int_ seed;
        }
    | _ -> fail "bad config record"
  in
  if config.Sgns.dim < 0 then fail "negative vector dimension";
  let read_matrix tag header =
    let n =
      match String.split_on_char ' ' (record ()) with
      | [ h; n ] when String.equal h header -> int_ n
      | _ -> fail "expected %S record" header
    in
    if n < 0 then fail "negative %s count" header;
    let entries =
      List.init n (fun _ ->
          match String.split_on_char ' ' (record ()) with
          | t :: tok :: count :: rest when String.equal t tag ->
              let vec = Array.of_list (List.map float_ rest) in
              if Array.length vec <> config.Sgns.dim then
                fail "bad vector size (%d, expected %d)" (Array.length vec)
                  config.Sgns.dim;
              (unescape tok, int_ count, vec)
          | _ -> fail "bad %S record" tag)
    in
    let vocab =
      match Vocab.of_items (List.map (fun (tok, c, _) -> (tok, c)) entries) with
      | v -> v
      | exception Invalid_argument msg -> fail "%s" msg
    in
    (vocab, Array.of_list (List.map (fun (_, _, v) -> v) entries))
  in
  let words, word_vecs = read_matrix "w" "words" in
  let contexts, context_vecs = read_matrix "c" "contexts" in
  (if version >= 2 then
     match String.split_on_char ' ' (read ()) with
     | [ "end"; n ] ->
         let n = int_ n in
         if n <> !records then
           fail "record count mismatch: trailer says %d, file has %d" n !records
     | _ -> fail "truncated model: missing \"end\" trailer");
  (* Nothing but blank lines may follow. *)
  let rec drain () =
    match next_line () with
    | None -> ()
    | Some l ->
        incr line_no;
        if not (String.equal (String.trim l) "") then
          fail "trailing data after the model";
        drain ()
  in
  drain ();
  { Sgns.config; words; contexts; word_vecs; context_vecs }

let from_channel ?source ic =
  parse ?source (fun () ->
      match input_line ic with l -> Some l | exception End_of_file -> None)

let of_string ?source s =
  let rest = ref (String.split_on_char '\n' s) in
  let next () =
    match !rest with
    | [] -> None
    | l :: tl ->
        rest := tl;
        Some l
  in
  Lexkit.protect ?file:source (fun () -> parse ?source next)

let save m path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel m oc)

let load path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Result.Error (Lexkit.Diag.make ~file:path Lexkit.Diag.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Lexkit.protect ~file:path (fun () -> from_channel ~source:path ic))

let load_exn path =
  match load path with
  | Ok m -> m
  | Error d -> raise (Lexkit.Diag.Error d)
