(** Word/context vocabularies with frequency counts.

    Backed by an interned string table: each distinct word is stored
    once, and callers that counted through a shared {!Intern.Strtab.t}
    can translate interned ids to vocab ids with {!of_interned} —
    no string hashing on the remap path. *)

type t

val build : ?min_count:int -> string list -> t
(** Index the given tokens; tokens rarer than [min_count] (default 1)
    are dropped. *)

val of_counts : ?min_count:int -> ?cap:int -> (string * int) list -> t
(** [build] for callers that already hold the frequency table. Ids are
    assigned by (count desc, name asc) — a total order, so the result
    is independent of the list order and identical to what [build]
    would produce from the underlying tokens.

    With [cap], counting runs through a {!Counter}: the intermediate
    table is pruned mid-count whenever it outgrows [cap] entries
    (word2vec.c's ReduceVocab discipline), so memory stays O(cap)
    regardless of how many distinct words stream past. See {!Counter}
    for the approximation this buys that bound with. *)

(** Bounded streaming counting for out-of-core corpora (word2vec.c
    style). Words are counted into an interned table; whenever the
    table exceeds its cap, every word whose count is at or below the
    current floor is dropped and the floor rises by one. The
    approximation is the C implementation's: a pruned word that
    reappears restarts from zero. Exact (identical to unbounded
    counting) whenever the final distinct-word count stays within the
    cap and no prune ever fires. *)
module Counter : sig
  type counter

  val create : ?cap:int -> unit -> counter
  (** Default cap: unbounded. Raises [Invalid_argument] when [cap < 1]. *)

  val add : ?count:int -> counter -> string -> unit
  (** Count [count] (default 1) occurrences of a word. Raises
      [Invalid_argument] on a negative count; zero counts are ignored
      (they must not resurrect a pruned word). *)

  val size : counter -> int
  (** Distinct words currently tracked (always <= cap after [add]). *)

  val floor : counter -> int
  (** The pruning floor the *next* reduction will apply; 1 until the
      first prune fires. *)

  val dropped : counter -> int
  (** Total occurrences forgotten by pruning so far — 0 means the
      counts are exact. *)

  val to_vocab : ?min_count:int -> counter -> t
  (** Finish counting: vocabulary over the surviving words, same
      (count desc, name asc) id order as {!of_counts}. Transfers
      ownership of the underlying table — the counter must not be
      used afterwards. *)
end

val of_strtab : ?min_count:int -> Intern.Strtab.t -> int array -> t
(** [of_strtab tab counts]: the caller interned the corpus into [tab]
    and counted per interned id; the vocabulary takes ownership of
    [tab] and assigns ids by the same (count desc, name asc) order as
    {!of_counts}. *)

val of_items : (string * int) list -> t
(** Rebuild a vocabulary with exactly the given (word, count) entries,
    ids assigned in list order. Raises [Invalid_argument] on duplicate
    words or negative counts. Used by the model loader, which must
    reproduce the saved id order rather than re-sort. *)

val size : t -> int
val id : t -> string -> int option

val of_interned : t -> int -> int
(** Vocab id for an id interned in the table this vocabulary was built
    over ([of_strtab]'s [tab]); [-1] if filtered by [min_count] or out
    of range. *)

val word : t -> int -> string
val count : t -> int -> int
val total : t -> int
(** Total token occurrences (of kept words). *)

val items : t -> (string * int) list
(** (word, count), most frequent first. *)
