(** Word/context vocabularies with frequency counts.

    Backed by an interned string table: each distinct word is stored
    once, and callers that counted through a shared {!Intern.Strtab.t}
    can translate interned ids to vocab ids with {!of_interned} —
    no string hashing on the remap path. *)

type t

val build : ?min_count:int -> string list -> t
(** Index the given tokens; tokens rarer than [min_count] (default 1)
    are dropped. *)

val of_counts : ?min_count:int -> (string * int) list -> t
(** [build] for callers that already hold the frequency table. Ids are
    assigned by (count desc, name asc) — a total order, so the result
    is independent of the list order and identical to what [build]
    would produce from the underlying tokens. *)

val of_strtab : ?min_count:int -> Intern.Strtab.t -> int array -> t
(** [of_strtab tab counts]: the caller interned the corpus into [tab]
    and counted per interned id; the vocabulary takes ownership of
    [tab] and assigns ids by the same (count desc, name asc) order as
    {!of_counts}. *)

val of_items : (string * int) list -> t
(** Rebuild a vocabulary with exactly the given (word, count) entries,
    ids assigned in list order. Raises [Invalid_argument] on duplicate
    words or negative counts. Used by the model loader, which must
    reproduce the saved id order rather than re-sort. *)

val size : t -> int
val id : t -> string -> int option

val of_interned : t -> int -> int
(** Vocab id for an id interned in the table this vocabulary was built
    over ([of_strtab]'s [tab]); [-1] if filtered by [min_count] or out
    of range. *)

val word : t -> int -> string
val count : t -> int -> int
val total : t -> int
(** Total token occurrences (of kept words). *)

val items : t -> (string * int) list
(** (word, count), most frequent first. *)
