(* Strtab-backed: words are interned once, vocab ids are a permutation
   of the interned ids (count desc, name asc — a total order, so the
   resulting ids depend only on the (word, count) multiset, never on
   the order the counts were gathered in). Callers that already hold
   interned ids ([Sgns.prepare]'s pair remap) translate through
   [of_interned] without touching a string. *)

type t = {
  tab : Intern.Strtab.t;
  vid_of_sid : int array;  (* interned id -> vocab id; -1 = filtered *)
  sid_of_vid : int array;
  counts : int array;  (* per vocab id *)
  total : int;
}

let of_strtab ?(min_count = 1) tab counts =
  let n = Intern.Strtab.size tab in
  let kept = ref [] in
  for sid = n - 1 downto 0 do
    if counts.(sid) >= min_count then kept := sid :: !kept
  done;
  let sid_of_vid = Array.of_list !kept in
  Array.sort
    (fun a b ->
      let c = Int.compare counts.(b) counts.(a) in
      if c <> 0 then c
      else
        String.compare
          (Intern.Strtab.to_string tab a)
          (Intern.Strtab.to_string tab b))
    sid_of_vid;
  let vid_of_sid = Array.make (max n 1) (-1) in
  Array.iteri (fun vid sid -> vid_of_sid.(sid) <- vid) sid_of_vid;
  let vcounts = Array.map (fun sid -> counts.(sid)) sid_of_vid in
  {
    tab;
    vid_of_sid;
    sid_of_vid;
    counts = vcounts;
    total = Array.fold_left ( + ) 0 vcounts;
  }

let count_into tab counts word =
  let sid = Intern.Strtab.intern tab word in
  let a =
    let a = !counts in
    if sid < Array.length a then a
    else begin
      let b = Array.make (max (2 * Array.length a) (sid + 1)) 0 in
      Array.blit a 0 b 0 (Array.length a);
      counts := b;
      b
    end
  in
  a.(sid) <- a.(sid) + 1;
  sid

(* Bounded counting, word2vec.c style: count through an interned
   table, and whenever the table outgrows [cap], drop every word at or
   below the current floor and raise the floor by one (the C
   implementation's ReduceVocab/min_reduce discipline). Memory stays
   O(cap) however large the streamed corpus is. The documented
   approximation is word2vec.c's too: a pruned word that reappears
   restarts from zero — its pre-prune occurrences are forgotten. *)
module Counter = struct
  type counter = {
    mutable tab : Intern.Strtab.t;
    mutable counts : int array;  (* per interned id *)
    cap : int;
    mutable floor : int;  (* next prune drops counts <= floor *)
    mutable dropped : int;  (* occurrences lost to pruning *)
  }

  let create ?(cap = max_int) () =
    if cap < 1 then invalid_arg "Vocab.Counter.create: cap < 1";
    (* not [min 1024 (cap + 1)]: the default cap is max_int and the
       increment must not wrap negative *)
    let hint = if cap >= 1024 then 1024 else cap + 1 in
    {
      tab = Intern.Strtab.create ~hint ();
      counts = Array.make hint 0;
      cap;
      floor = 1;
      dropped = 0;
    }

  (* The rebuild compacts counts in place — a survivor's new id is
     never larger than its old one, so one ascending walk re-interns
     survivors and slides their counts down without allocating a
     second counts array per prune. Only the string table is rebuilt
     (interned ids are append-only). *)
  let reduce t =
    let n = Intern.Strtab.size t.tab in
    let tab = Intern.Strtab.create ~hint:n () in
    let counts = t.counts in
    let kept = ref 0 in
    for sid = 0 to n - 1 do
      let c = counts.(sid) in
      if c > t.floor then begin
        ignore (Intern.Strtab.intern tab (Intern.Strtab.to_string t.tab sid));
        counts.(!kept) <- c;
        incr kept
      end
      else t.dropped <- t.dropped + c
    done;
    Array.fill counts !kept (n - !kept) 0;
    t.tab <- tab;
    t.floor <- t.floor + 1

  let add ?(count = 1) t w =
    if count < 0 then invalid_arg "Vocab.Counter.add: negative count";
    if count > 0 then begin
      let sid = Intern.Strtab.intern t.tab w in
      if sid >= Array.length t.counts then begin
        let b = Array.make (max (2 * Array.length t.counts) (sid + 1)) 0 in
        Array.blit t.counts 0 b 0 (Array.length t.counts);
        t.counts <- b
      end;
      t.counts.(sid) <- t.counts.(sid) + count;
      if Intern.Strtab.size t.tab > t.cap then reduce t
    end

  let size t = Intern.Strtab.size t.tab
  let floor t = t.floor
  let dropped t = t.dropped

  let to_vocab ?min_count t =
    of_strtab ?min_count t.tab
      (Array.sub t.counts 0 (Intern.Strtab.size t.tab))
end

let of_counts ?min_count ?cap items =
  match cap with
  | Some cap ->
      (* Bounded fast path: counting prunes mid-stream, so the table
         never exceeds [cap] entries no matter how many items flow
         through. *)
      let c = Counter.create ~cap () in
      List.iter (fun (w, n) -> Counter.add ~count:n c w) items;
      Counter.to_vocab ?min_count c
  | None ->
      let tab = Intern.Strtab.create ~hint:(max 8 (List.length items)) () in
      let counts = ref (Array.make (max 8 (List.length items)) 0) in
      List.iter
        (fun (w, c) ->
          let sid = count_into tab counts w in
          (* [count_into] added 1; duplicates accumulate. *)
          !counts.(sid) <- !counts.(sid) + c - 1)
        items;
      of_strtab ?min_count tab (Array.sub !counts 0 (Intern.Strtab.size tab))

let build ?min_count tokens =
  let tab = Intern.Strtab.create ~hint:1024 () in
  let counts = ref (Array.make 1024 0) in
  List.iter (fun tok -> ignore (count_into tab counts tok)) tokens;
  of_strtab ?min_count tab (Array.sub !counts 0 (Intern.Strtab.size tab))

let of_items items =
  let n = List.length items in
  let tab = Intern.Strtab.create ~hint:(max 8 n) () in
  let counts = Array.make (max 1 n) 0 in
  List.iteri
    (fun i (w, c) ->
      if c < 0 then invalid_arg "Vocab.of_items: negative count";
      if Intern.Strtab.intern tab w <> i then
        invalid_arg "Vocab.of_items: duplicate word";
      counts.(i) <- c)
    items;
  (* Both permutations are the identity and neither is ever mutated,
     so one shared array serves both fields — the old second
     allocation (an [Array.sub] copy of the first) is hoisted away.
     [of_interned] tolerates the [max 1] padding: the padded slot maps
     id [n] (never interned) to itself, which [vid_of_sid] bounds
     already exclude for real lookups when [n = 0]. *)
  let ident = Array.init (max 1 n) Fun.id in
  {
    tab;
    vid_of_sid = (if n = 0 then [||] else ident);
    sid_of_vid = (if n = Array.length ident then ident else Array.sub ident 0 n);
    counts;
    total = Array.fold_left ( + ) 0 counts;
  }

let size t = Array.length t.sid_of_vid

let id t w =
  match Intern.Strtab.find t.tab w with
  | None -> None
  | Some sid ->
      let v = t.vid_of_sid.(sid) in
      if v >= 0 then Some v else None

let of_interned t sid =
  if sid >= 0 && sid < Array.length t.vid_of_sid then t.vid_of_sid.(sid)
  else -1

let word t i = Intern.Strtab.to_string t.tab t.sid_of_vid.(i)
let count t i = t.counts.(i)
let total t = t.total

let items t =
  Array.to_list (Array.mapi (fun i sid ->
      (Intern.Strtab.to_string t.tab sid, t.counts.(i))) t.sid_of_vid)
