(* Strtab-backed: words are interned once, vocab ids are a permutation
   of the interned ids (count desc, name asc — a total order, so the
   resulting ids depend only on the (word, count) multiset, never on
   the order the counts were gathered in). Callers that already hold
   interned ids ([Sgns.prepare]'s pair remap) translate through
   [of_interned] without touching a string. *)

type t = {
  tab : Intern.Strtab.t;
  vid_of_sid : int array;  (* interned id -> vocab id; -1 = filtered *)
  sid_of_vid : int array;
  counts : int array;  (* per vocab id *)
  total : int;
}

let of_strtab ?(min_count = 1) tab counts =
  let n = Intern.Strtab.size tab in
  let kept = ref [] in
  for sid = n - 1 downto 0 do
    if counts.(sid) >= min_count then kept := sid :: !kept
  done;
  let sid_of_vid = Array.of_list !kept in
  Array.sort
    (fun a b ->
      let c = Int.compare counts.(b) counts.(a) in
      if c <> 0 then c
      else
        String.compare
          (Intern.Strtab.to_string tab a)
          (Intern.Strtab.to_string tab b))
    sid_of_vid;
  let vid_of_sid = Array.make (max n 1) (-1) in
  Array.iteri (fun vid sid -> vid_of_sid.(sid) <- vid) sid_of_vid;
  let vcounts = Array.map (fun sid -> counts.(sid)) sid_of_vid in
  {
    tab;
    vid_of_sid;
    sid_of_vid;
    counts = vcounts;
    total = Array.fold_left ( + ) 0 vcounts;
  }

let count_into tab counts word =
  let sid = Intern.Strtab.intern tab word in
  let a =
    let a = !counts in
    if sid < Array.length a then a
    else begin
      let b = Array.make (max (2 * Array.length a) (sid + 1)) 0 in
      Array.blit a 0 b 0 (Array.length a);
      counts := b;
      b
    end
  in
  a.(sid) <- a.(sid) + 1;
  sid

let of_counts ?min_count items =
  let tab = Intern.Strtab.create ~hint:(max 8 (List.length items)) () in
  let counts = ref (Array.make (max 8 (List.length items)) 0) in
  List.iter
    (fun (w, c) ->
      let sid = count_into tab counts w in
      (* [count_into] added 1; duplicates accumulate. *)
      !counts.(sid) <- !counts.(sid) + c - 1)
    items;
  of_strtab ?min_count tab (Array.sub !counts 0 (Intern.Strtab.size tab))

let build ?min_count tokens =
  let tab = Intern.Strtab.create ~hint:1024 () in
  let counts = ref (Array.make 1024 0) in
  List.iter (fun tok -> ignore (count_into tab counts tok)) tokens;
  of_strtab ?min_count tab (Array.sub !counts 0 (Intern.Strtab.size tab))

let of_items items =
  let n = List.length items in
  let tab = Intern.Strtab.create ~hint:(max 8 n) () in
  let counts = Array.make (max 1 n) 0 in
  List.iteri
    (fun i (w, c) ->
      if c < 0 then invalid_arg "Vocab.of_items: negative count";
      if Intern.Strtab.intern tab w <> i then
        invalid_arg "Vocab.of_items: duplicate word";
      counts.(i) <- c)
    items;
  let ident = Array.init (max 1 n) Fun.id in
  {
    tab;
    vid_of_sid = ident;
    sid_of_vid = Array.sub ident 0 n;
    counts;
    total = Array.fold_left ( + ) 0 counts;
  }

let size t = Array.length t.sid_of_vid

let id t w =
  match Intern.Strtab.find t.tab w with
  | None -> None
  | Some sid ->
      let v = t.vid_of_sid.(sid) in
      if v >= 0 then Some v else None

let of_interned t sid =
  if sid >= 0 && sid < Array.length t.vid_of_sid then t.vid_of_sid.(sid)
  else -1

let word t i = Intern.Strtab.to_string t.tab t.sid_of_vid.(i)
let count t i = t.counts.(i)
let total t = t.total

let items t =
  Array.to_list (Array.mapi (fun i sid ->
      (Intern.Strtab.to_string t.tab sid, t.counts.(i))) t.sid_of_vid)
