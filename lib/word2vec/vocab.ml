type t = {
  ids : (string, int) Hashtbl.t;
  words : string array;
  counts : int array;
  total : int;
}

(* The (count desc, name asc) sort is a total order, so the resulting
   ids depend only on the (word, count) multiset — never on the order
   the counts were gathered in. [build] and single-pass callers that
   count words themselves therefore produce identical vocabularies. *)
let of_counts ?(min_count = 1) counts =
  let kept =
    List.filter (fun (_, c) -> c >= min_count) counts
    |> List.sort (fun (wa, a) (wb, b) ->
           let c = Int.compare b a in
           if c <> 0 then c else String.compare wa wb)
  in
  let words = Array.of_list (List.map fst kept) in
  let counts = Array.of_list (List.map snd kept) in
  let ids = Hashtbl.create (Array.length words) in
  Array.iteri (fun i w -> Hashtbl.add ids w i) words;
  { ids; words; counts; total = Array.fold_left ( + ) 0 counts }

let build ?(min_count = 1) tokens =
  let freq = Hashtbl.create 1024 in
  List.iter
    (fun tok ->
      Hashtbl.replace freq tok
        (1 + Option.value (Hashtbl.find_opt freq tok) ~default:0))
    tokens;
  of_counts ~min_count (Hashtbl.fold (fun w c acc -> (w, c) :: acc) freq [])

let of_items items =
  let n = List.length items in
  let words = Array.make n "" in
  let counts = Array.make n 0 in
  let ids = Hashtbl.create (max n 1) in
  List.iteri
    (fun i (w, c) ->
      if c < 0 then invalid_arg "Vocab.of_items: negative count";
      if Hashtbl.mem ids w then invalid_arg "Vocab.of_items: duplicate word";
      Hashtbl.add ids w i;
      words.(i) <- w;
      counts.(i) <- c)
    items;
  { ids; words; counts; total = Array.fold_left ( + ) 0 counts }

let size t = Array.length t.words
let id t w = Hashtbl.find_opt t.ids w
let word t i = t.words.(i)
let count t i = t.counts.(i)
let total t = t.total

let items t =
  Array.to_list (Array.mapi (fun i w -> (w, t.counts.(i))) t.words)
