/* Sequential SGNS epoch kernel for the `Lut training path.
 *
 * The OCaml loop in Sgns.train_sequential_fast tops out well short of
 * the word2vec.c kernel it mirrors: without flambda every float
 * crossing a function boundary is boxed, and the scalar code the
 * OCaml backend emits for the dot/update loops leaves about half the
 * core's FP throughput on the table.  This stub runs one contiguous
 * slice of steps of one epoch entirely in C over the flat matrices,
 * and software-pipelines the sampling: while step p computes, step
 * p+1's word/context rows are already being prefetched — the random
 * negative rows are the kernel's dominant cache-miss source and one
 * step (~a few hundred cycles) is enough to cover an L3 round trip.
 *
 * Contracts (see DESIGN.md §10):
 *  - `Lut only.  The `Exact path stays in OCaml and remains bitwise
 *    equal to Sgns.Reference; this kernel is covered by the LUT
 *    ranking-tolerance contract instead, so it may pick its own
 *    negative-sample stream (word2vec.c's LCG, seeded per slice from
 *    the trainer's Random.State) and its own float op order.
 *  - No OCaml allocation, no callbacks, no GC interaction: every
 *    argument is read/written in place ([@@noalloc]).  The caller
 *    slices epochs into bounded chunks so other domains are never
 *    stalled behind a long non-cooperative stretch.
 *
 * Layout notes: `w`/`c`/`lut` are floatarrays (flat double payload);
 * `pairs` is an array of (int * int) tuples; `neg_table` is an int
 * array (tagged immediates).
 */

#include <caml/mlvalues.h>
#include <stdint.h>

/* iparams layout (OCaml int array) */
#define IP_DIM 0
#define IP_NEGATIVES 1
#define IP_LO 2        /* first pair index of this slice */
#define IP_HI 3        /* one past the last pair index */
#define IP_STEP_BASE 4 /* epoch * n_pairs */
#define IP_TOTAL 5     /* epochs * n_pairs */
#define IP_SEED_LO 6   /* low 32 bits of this slice's LCG seed */
#define IP_SEED_HI 7   /* high 32 bits */

/* fparams layout (floatarray) */
#define FP_BASE_LR 0
#define FP_LUT_RANGE 1
#define FP_LUT_SCALE 2

CAMLprim value caml_sgns_train_slice(value vw, value vc, value vlut,
                                     value vpairs, value vneg, value vip,
                                     value vfp) {
  double *w = (double *)vw;
  double *c = (double *)vc;
  const double *lut = (const double *)vlut;
  const double *fp = (const double *)vfp;

  const long dim = Long_val(Field(vip, IP_DIM));
  const long negatives = Long_val(Field(vip, IP_NEGATIVES));
  const long lo = Long_val(Field(vip, IP_LO));
  const long hi = Long_val(Field(vip, IP_HI));
  const long step_base = Long_val(Field(vip, IP_STEP_BASE));
  const double total = (double)Long_val(Field(vip, IP_TOTAL));
  const long tbl_len = (long)Wosize_val(vneg);

  const double base_lr = fp[FP_BASE_LR];
  const double lr_floor = base_lr * 1e-4;
  const double lut_range = fp[FP_LUT_RANGE];
  const double lut_scale = fp[FP_LUT_SCALE];

  uint64_t next = ((uint64_t)Long_val(Field(vip, IP_SEED_HI)) << 32) |
                  (uint64_t)Long_val(Field(vip, IP_SEED_LO));
  if (next == 0) next = UINT64_C(0x9E3779B97F4A7C15);

  if (lo >= hi) return Val_unit;

  double grad_w[dim]; /* C99 VLAs; dim and negatives are small */
  long tbuf_a[negatives + 1], tbuf_b[negatives + 1];
  long *tcur = tbuf_a, *tnext = tbuf_b;
  for (long d = 0; d < dim; d++) grad_w[d] = 0.0;

/* Draw pair p's targets into buf (slot 0 = positive context,
 * -1 = dropped negative) and start fetching every row it will touch. */
#define DRAW_AND_PREFETCH(p, buf)                                          \
  do {                                                                     \
    value pr_ = Field(vpairs, (p));                                        \
    long wi_ = Long_val(Field(pr_, 0));                                    \
    long ci_ = Long_val(Field(pr_, 1));                                    \
    const double *row_ = w + wi_ * dim;                                    \
    for (long b_ = 0; b_ < dim; b_ += 8)                                   \
      __builtin_prefetch(row_ + b_, 1, 3);                                 \
    (buf)[0] = ci_;                                                        \
    row_ = c + ci_ * dim;                                                  \
    for (long b_ = 0; b_ < dim; b_ += 8)                                   \
      __builtin_prefetch(row_ + b_, 1, 3);                                 \
    for (long k_ = 1; k_ <= negatives; k_++) {                             \
      next = next * UINT64_C(25214903917) + 11; /* word2vec.c's LCG */     \
      long tg_ =                                                           \
          Long_val(Field(vneg, (long)((next >> 16) % (uint64_t)tbl_len))); \
      if (tg_ == ci_)                                                      \
        (buf)[k_] = -1;                                                    \
      else {                                                               \
        (buf)[k_] = tg_;                                                   \
        row_ = c + tg_ * dim;                                              \
        for (long b_ = 0; b_ < dim; b_ += 8)                               \
          __builtin_prefetch(row_ + b_, 1, 3);                             \
      }                                                                    \
    }                                                                      \
  } while (0)

  DRAW_AND_PREFETCH(lo, tcur);
  for (long p = lo; p < hi; p++) {
    if (p + 1 < hi) DRAW_AND_PREFETCH(p + 1, tnext);
    const long wi = Long_val(Field(Field(vpairs, p), 0));
    const double step = (double)(step_base + p + 1);
    double lr = base_lr * (1.0 - step / total);
    if (lr < lr_floor) lr = lr_floor;
    double *restrict wv = w + wi * dim;

    for (long k = 0; k <= negatives; k++) {
      const long tgt = tcur[k];
      if (tgt < 0) continue;
      double *restrict cv = c + tgt * dim;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      long d = 0;
      for (; d + 4 <= dim; d += 4) {
        s0 += wv[d] * cv[d];
        s1 += wv[d + 1] * cv[d + 1];
        s2 += wv[d + 2] * cv[d + 2];
        s3 += wv[d + 3] * cv[d + 3];
      }
      double x = s0 + s1 + (s2 + s3);
      for (; d < dim; d++) x += wv[d] * cv[d];
      double sg;
      if (x >= lut_range)
        sg = 1.0;
      else if (x < -lut_range)
        sg = 0.0;
      else
        sg = lut[(long)((x + lut_range) * lut_scale)];
      const double label = (k == 0) ? 1.0 : 0.0;
      const double g = (sg - label) * lr;
      if (g != 0.0) {
        for (long d2 = 0; d2 < dim; d2++) {
          const double cvd = cv[d2];
          grad_w[d2] += g * cvd;
          cv[d2] = cvd - g * wv[d2];
        }
      }
    }
    /* write-back doubles as re-zeroing for the next step */
    for (long d2 = 0; d2 < dim; d2++) {
      wv[d2] -= grad_w[d2];
      grad_w[d2] = 0.0;
    }
    long *tmp = tcur;
    tcur = tnext;
    tnext = tmp;
  }
  return Val_unit;
}

CAMLprim value caml_sgns_train_slice_bytes(value *argv, int argn) {
  (void)argn;
  return caml_sgns_train_slice(argv[0], argv[1], argv[2], argv[3], argv[4],
                               argv[5], argv[6]);
}
