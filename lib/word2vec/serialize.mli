(** Saving and loading trained SGNS models. Both word and context
    matrices are stored (prediction by the paper's equation (4) needs
    the context vectors too). Round-trips to identical predictions
    (tested).

    [save] writes the version-3 binary format: a text magic line, then
    length-prefixed sections — each vocabulary once, and the embedding
    matrices as raw little-endian floats (exact round-trip, no decimal
    printing). Emission is in vocab-id order, so save → load → save is
    byte-identical. Versions 1 and 2 (the older word2vec-style text
    format) still load; {!to_channel_v2} keeps a text writer around
    for compatibility fixtures.

    Every format is self-checking (v2's [end <record-count>] trailer,
    v3's section framing and trailer), so truncation, trailing garbage
    and bit-flips are detected. Loaders never raise [Failure]; every
    malformed input is reported as a {!Lexkit.Diag.t} with kind
    [Corrupt_model] — a line number for text formats, a byte offset in
    the message for binary. *)

val save : Sgns.t -> string -> unit
(** Raises [Sys_error] on I/O failure. *)

val load : string -> (Sgns.t, Lexkit.Diag.t) result
(** Read a model back; [Error] carries an [Io_error] (unreadable file)
    or line-numbered [Corrupt_model] diagnostic. Never raises. *)

val load_exn : string -> Sgns.t
(** Like {!load} but raises {!Lexkit.Diag.Error} on failure. *)

val to_channel : Sgns.t -> out_channel -> unit

val to_string : Sgns.t -> string
(** The version-3 binary image [save]/[to_channel] write. *)

val to_channel_v2 : Sgns.t -> out_channel -> unit
(** Version-2 text writer, for compatibility fixtures. *)

val from_channel : ?source:string -> in_channel -> Sgns.t
(** Raises {!Lexkit.Diag.Error} (kind [Corrupt_model]) on malformed
    input; [source] names the input in diagnostics. *)

val of_string : ?source:string -> string -> (Sgns.t, Lexkit.Diag.t) result
(** Parse a model held in memory — the fuzz suite's entry point. *)
