(** Saving and loading trained SGNS models, in the word2vec text
    conventions: a header with dimensions, then one vector per line.
    Both word and context matrices are stored (prediction by the
    paper's equation (4) needs the context vectors too). Round-trips to
    identical predictions (tested).

    The format is versioned and self-checking: version 2 files end with
    an [end <record-count>] trailer, so truncation and trailing garbage
    are detected. Version 1 files (no trailer) still load. Loaders
    never raise [Failure]; every malformed input is reported as a
    {!Lexkit.Diag.t} with kind [Corrupt_model] and a line number. *)

val save : Sgns.t -> string -> unit
(** Raises [Sys_error] on I/O failure. *)

val load : string -> (Sgns.t, Lexkit.Diag.t) result
(** Read a model back; [Error] carries an [Io_error] (unreadable file)
    or line-numbered [Corrupt_model] diagnostic. Never raises. *)

val load_exn : string -> Sgns.t
(** Like {!load} but raises {!Lexkit.Diag.Error} on failure. *)

val to_channel : Sgns.t -> out_channel -> unit

val from_channel : ?source:string -> in_channel -> Sgns.t
(** Raises {!Lexkit.Diag.Error} (kind [Corrupt_model]) on malformed
    input; [source] names the input in diagnostics. *)

val of_string : ?source:string -> string -> (Sgns.t, Lexkit.Diag.t) result
(** Parse a model held in memory — the fuzz suite's entry point. *)
