(** Saving and loading trained SGNS models. Both word and context
    matrices are stored (prediction by the paper's equation (4) needs
    the context vectors too). Round-trips to identical predictions
    (tested).

    [save] writes the version-4 binary format: a text magic line, then
    length-prefixed sections — each vocabulary once, and the embedding
    matrices as raw little-endian floats (exact round-trip, no decimal
    printing). Matrix sections are preceded by pad sections that
    8-align their float runs in the file, which is what lets
    {!load_mapped} serve the vectors straight out of an [mmap] instead
    of copying them. Emission is in vocab-id order and pads are
    deterministic, so save → load → save is byte-identical.

    Version 3 (no pads, whole-body checksum) and versions 1 and 2 (the
    older word2vec-style text format) still load; {!to_string_v3} and
    {!to_channel_v2} keep writers around for compatibility fixtures.

    Every format is self-checking (v2's [end <record-count>] trailer,
    v3/v4's section framing and checksum trailer), so truncation,
    trailing garbage and bit-flips are detected. Loaders never raise
    [Failure]; every malformed input is reported as a {!Lexkit.Diag.t}
    with kind [Corrupt_model] — a line number for text formats, a byte
    offset in the message for binary. *)

val save : Sgns.t -> string -> unit
(** Raises [Sys_error] on I/O failure. *)

val load : string -> (Sgns.t, Lexkit.Diag.t) result
(** Read a model back; [Error] carries an [Io_error] (unreadable file)
    or line-numbered [Corrupt_model] diagnostic. Never raises. *)

val load_exn : string -> Sgns.t
(** Like {!load} but raises {!Lexkit.Diag.Error} on failure. *)

val load_mapped :
  string -> (Sgns.view * Lexkit.Storage.t, Lexkit.Diag.t) result
(** Zero-copy load: walk the v4 structure reading only headers, the
    vocabularies and the checksum trailer, then map the file and wire
    both embedding matrices to [Bigarray] views over its float runs —
    O(vocabulary), and the matrices are the bulk of a trained model.
    The mapped payloads are checksummed lazily, at the first inference
    entry point; a mismatch then raises {!Lexkit.Diag.Error} with kind
    [Corrupt_model].

    Environmental obstacles (v1–v3 file, misaligned payload,
    big-endian host, mmap failure) silently fall back to the copy
    loader and report [Storage.Heap] with a note saying why; only
    structural damage is an [Error]. *)

val to_channel : Sgns.t -> out_channel -> unit

val to_string : Sgns.t -> string
(** The version-4 binary image [save]/[to_channel] write. *)

val to_string_v3 : Sgns.t -> string
(** Version-3 binary writer, for compatibility fixtures. *)

val to_channel_v2 : Sgns.t -> out_channel -> unit
(** Version-2 text writer, for compatibility fixtures. *)

val from_channel : ?source:string -> in_channel -> Sgns.t
(** Raises {!Lexkit.Diag.Error} (kind [Corrupt_model]) on malformed
    input; [source] names the input in diagnostics. *)

val of_string : ?source:string -> string -> (Sgns.t, Lexkit.Diag.t) result
(** Parse a model held in memory — the fuzz suite's entry point. *)

(** {2 Training checkpoints}

    Mid-training state for out-of-core runs ({!Sgns.train_stream}):
    both flat matrices as raw float bits, the vocabularies, the
    config, the resume cursor and the shard layout. Self-checking like
    models (magic line, section framing, checksum trailer); a restored
    checkpoint resumes bit-exactly. *)

val checkpoint_save : string -> Sgns.ckpt -> unit
(** Atomic (temp file + rename): a SIGKILL mid-save leaves the
    previous checkpoint intact or the new one complete, never a torn
    file. Raises [Sys_error] on I/O failure. *)

val checkpoint_to_string : Sgns.ckpt -> string

val checkpoint_load : string -> (Sgns.ckpt, Lexkit.Diag.t) result
(** [Error] carries [Io_error] (unreadable) or [Corrupt_model]
    (truncated, mangled, bad cursor or shard layout, checksum
    mismatch). *)

val checkpoint_of_string :
  ?source:string -> string -> (Sgns.ckpt, Lexkit.Diag.t) result
