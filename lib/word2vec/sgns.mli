(** Skip-gram with negative sampling (Mikolov et al.), generalized to
    arbitrary contexts (Levy & Goldberg) — paper Section 3.2.

    Training pairs are (word, context) where a context is any string —
    here a path-context [(abstracted path, other-end value)], a
    neighboring token for the linear baseline, or a bare neighbor value
    for the path-neighbors baseline. Negatives are drawn from the
    context unigram distribution raised to the 3/4 power. *)

type config = {
  dim : int;
  epochs : int;
  negatives : int;
  learning_rate : float;  (** Initial; decays linearly to 1e-4 of it. *)
  min_count : int;
  seed : int;
}

val default_config : config

type t = {
  config : config;
  words : Vocab.t;
  contexts : Vocab.t;
  word_vecs : float array array;
  context_vecs : float array array;
}

type parallel_mode =
  | Deterministic
      (** Shards advance in synchronized rounds: gradients are computed
          against the matrices as of the last barrier and applied in
          shard order — bitwise reproducible for a fixed job count. *)
  | Hogwild
      (** Shards update the shared matrices in place with no
          synchronization (Recht et al.) — fastest, memory-safe (no
          float tearing on 64-bit OCaml), not reproducible. *)

val train :
  ?pool:Parallel.pool ->
  ?mode:parallel_mode ->
  ?config:config ->
  ?sigmoid:[ `Lut | `Exact ] ->
  (string * string) list ->
  t
(** Flat-matrix trainer: both embedding matrices live in single
    unboxed [floatarray]s (row [i] at offset [i * dim]) with fused
    unsafe-access update loops; the public [float array array] views
    are extracted once at the end.

    [sigmoid] (default [`Lut]) picks the precomputed sigmoid table
    (4096 bins over [-8, 8), absolute error < 1e-3 — see DESIGN.md
    §10); [`Exact] uses the exact sigmoid and is then bitwise
    identical to {!Reference.train} (golden-tested).

    Without [pool] (or with a 1-job pool) this is the sequential
    trainer. With a larger pool, pairs split into one contiguous shard
    per job; shard [s] draws epoch shuffles and negatives from its own
    [Random.State.make [| seed; s |]] and follows its own linear lr
    schedule. [mode] (default [Deterministic]) picks the update
    discipline. *)

(** The pre-flat-kernel trainer (nested [float array array] matrices,
    exact sigmoid), kept verbatim as the golden/benchmark baseline. *)
module Reference : sig
  val train :
    ?pool:Parallel.pool ->
    ?mode:parallel_mode ->
    ?config:config ->
    (string * string) list ->
    t
end

val word_vec : t -> string -> float array option
val context_vec : t -> string -> float array option

val predict : t -> string list -> (string * float) list
(** Paper equation (4): rank every vocabulary word [w] by
    [Σ_{c ∈ contexts} w·c], best first. Unknown contexts are ignored. *)

val most_similar : t -> string -> k:int -> (string * float) list
(** Cosine-nearest words to the given word (for the Table 4b
    semantic-similarity probe). *)

val sigmoid : float -> float

val sigmoid_lut : float -> float
(** Table-lookup sigmoid used by the default training kernel:
    [|sigmoid_lut x - sigmoid x| < 1e-3] for all [x] (bounded by the
    kernel test suite). *)

val dot : float array -> float array -> float
