(** Skip-gram with negative sampling (Mikolov et al.), generalized to
    arbitrary contexts (Levy & Goldberg) — paper Section 3.2.

    Training pairs are (word, context) where a context is any string —
    here a path-context [(abstracted path, other-end value)], a
    neighboring token for the linear baseline, or a bare neighbor value
    for the path-neighbors baseline. Negatives are drawn from the
    context unigram distribution raised to the 3/4 power. *)

type config = {
  dim : int;
  epochs : int;
  negatives : int;
  learning_rate : float;  (** Initial; decays linearly to 1e-4 of it. *)
  min_count : int;
  seed : int;
}

val default_config : config

type t = {
  config : config;
  words : Vocab.t;
  contexts : Vocab.t;
  word_vecs : float array array;
  context_vecs : float array array;
}

type parallel_mode =
  | Deterministic
      (** Shards advance in synchronized rounds: gradients are computed
          against the matrices as of the last barrier and applied in
          shard order — bitwise reproducible for a fixed job count. *)
  | Hogwild
      (** Shards update the shared matrices in place with no
          synchronization (Recht et al.) — fastest, memory-safe (no
          float tearing on 64-bit OCaml), not reproducible. *)

val train :
  ?pool:Parallel.pool ->
  ?mode:parallel_mode ->
  ?config:config ->
  ?sigmoid:[ `Lut | `Exact ] ->
  (string * string) list ->
  t
(** Flat-matrix trainer: both embedding matrices live in single
    unboxed [floatarray]s (row [i] at offset [i * dim]) with fused
    unsafe-access update loops; the public [float array array] views
    are extracted once at the end.

    [sigmoid] (default [`Lut]) picks the precomputed sigmoid table
    (4096 bins over [-8, 8), absolute error < 1e-3 — see DESIGN.md
    §10); [`Exact] uses the exact sigmoid and is then bitwise
    identical to {!Reference.train} (golden-tested).

    Without [pool] (or with a 1-job pool) this is the sequential
    trainer. With a larger pool, pairs split into one contiguous shard
    per job; shard [s] draws epoch shuffles and negatives from its own
    [Random.State.make [| seed; s |]] and follows its own linear lr
    schedule. [mode] (default [Deterministic]) picks the update
    discipline. *)

(** {2 Out-of-core training} *)

type ckpt = {
  ck_config : config;
  ck_words : Vocab.t;
  ck_contexts : Vocab.t;
  ck_w : Float.Array.t;
      (** word matrix, flat row-major ([Vocab.size words * dim]).
          Inside [on_shard] this aliases the live training matrix:
          serialize it before the callback returns, don't hold it. *)
  ck_c : Float.Array.t;  (** context matrix, same layout *)
  ck_next_epoch : int;  (** first epoch the resumed run executes *)
  ck_next_shard : int;  (** first shard of that epoch *)
  ck_shard_sizes : int array;
      (** pairs per shard at save time — resuming against a re-sharded
          corpus is rejected *)
  ck_jobs : int;
      (** job count of the saving run; bit-identity on resume only
          holds for the same job count *)
}

val train_stream :
  ?pool:Parallel.pool ->
  ?config:config ->
  words:Vocab.t ->
  contexts:Vocab.t ->
  shard_sizes:int array ->
  pairs_of_shard:(int -> (int * int) array) ->
  ?from:ckpt ->
  ?on_shard:(epoch:int -> shard:int -> ckpt -> unit) ->
  unit ->
  t
(** Out-of-core {!train}: pairs arrive shard by shard as vocab id
    pairs ([pairs_of_shard s] must return [shard_sizes.(s)] pairs,
    same pairs in the same order on every call — shard files on disk
    guarantee this) and at most one shard's array is live at a time.
    Vocabularies are built by the caller (stream the corpus through
    {!Vocab.Counter} for bounded memory) and fixed for the whole run.

    Always the [`Lut] sigmoid. Sequential runs use the C epoch kernel
    with the global learning-rate schedule (step numbers match a
    whole-epoch walk); with a pool, each shard runs {!train}'s
    deterministic synchronized rounds scoped to that shard. Every rng
    is derived from [(seed, epoch, shard)] and fully consumed within
    the shard, so a checkpoint taken at any shard boundary ([on_shard],
    which fires after each shard) resumes — via [from] — to a final
    model bit-identical to the uninterrupted run with the same job
    count. Averaging-free, so checkpoints need only matrices + cursor.

    Raises [Invalid_argument] on an empty shard list, a cursor or
    matrix shape that does not match, or a shard whose size changed. *)

(** The pre-flat-kernel trainer (nested [float array array] matrices,
    exact sigmoid), kept verbatim as the golden/benchmark baseline. *)
module Reference : sig
  val train :
    ?pool:Parallel.pool ->
    ?mode:parallel_mode ->
    ?config:config ->
    (string * string) list ->
    t
end

val word_vec : t -> string -> float array option
val context_vec : t -> string -> float array option

val predict : t -> string list -> (string * float) list
(** Paper equation (4): rank every vocabulary word [w] by
    [Σ_{c ∈ contexts} w·c], best first. Unknown contexts are ignored. *)

val most_similar : t -> string -> k:int -> (string * float) list
(** Cosine-nearest words to the given word (for the Table 4b
    semantic-similarity probe). *)

(** An embedding matrix behind a storage abstraction: boxed heap rows
    (what training produces) or a flat float64 [Bigarray] view over an
    mmap'd model file. Operations run the same float operations in the
    same order on both, so predictions are byte-identical across
    storages. *)
module Mat : sig
  type t

  val of_rows : float array array -> t

  val of_mapped :
    vals:(float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
    rows:int ->
    dim:int ->
    verify:(unit -> unit) ->
    t
  (** A mapped matrix: row [i] lives at elements [i*dim .. (i+1)*dim-1]
      of [vals]. [verify] is the lazy payload checksum (run once, at
      the first read; should raise [Lexkit.Diag.Error] on mismatch).
      Raises [Failure] when [vals] does not hold exactly [rows*dim]
      floats. *)

  val rows : t -> int
  val row : t -> int -> float array
  (** Heap matrices return the row itself; mapped ones materialize a
      copy. *)

  val to_rows : t -> float array array
  val storage : t -> [ `Heap | `Mapped ]
  val ensure_verified : t -> unit
end

(** A model whose matrices sit behind {!Mat} — what inference paths
    (the serve engine) consume, so one code path serves heap-trained
    and mapped models alike. *)
type view = {
  v_config : config;
  v_words : Vocab.t;
  v_contexts : Vocab.t;
  v_word_vecs : Mat.t;
  v_context_vecs : Mat.t;
}

val view_of : t -> view
(** O(1) wrap of a heap model. *)

val heap_of_view : view -> t
(** Materialize every row on the heap (verifies mapped payloads
    first). *)

val view_storage : view -> [ `Heap | `Mapped ]

val verify_view : view -> unit
(** Force the lazy checksums of mapped matrices; no-op on heap
    views. *)

val predict_view : view -> string list -> (string * float) list
(** {!predict} over a view — byte-identical to the heap path. *)

val most_similar_view : view -> string -> k:int -> (string * float) list
(** {!most_similar} over a view — byte-identical to the heap path. *)

val sigmoid : float -> float

val sigmoid_lut : float -> float
(** Table-lookup sigmoid used by the default training kernel:
    [|sigmoid_lut x - sigmoid x| < 1e-3] for all [x] (bounded by the
    kernel test suite). *)

val dot : float array -> float array -> float
