(** Seeded synthetic program generator.

    Composes {!Templates} instances into functions and files. Each
    function takes its name from its primary template's (verb, noun)
    pair, so method names correlate with body structure; an optional
    driver function invokes the file's other functions, providing the
    same-file external paths the method-name task uses. A configurable
    fraction of files is duplicated verbatim, so the dedup stage of
    {!Dataset} has real work to do (mirroring the paper's GitHub
    pipeline). *)

type config = {
  n_files : int;
  min_funcs : int;
  max_funcs : int;
  min_templates : int;
  max_templates : int;
  driver_prob : float;  (** Probability a file gets a driver function. *)
  dup_fraction : float;
  seed : int;
}

val default : config
val generate : config -> Ir.file list

val generate_sources : config -> Render.lang -> (string * string) list
(** [(filename, source)] pairs for one language. *)

val edit_trace : ?steps:int -> config -> Render.lang -> string list
(** An editor-session trace: the rendered buffer before any edit, then
    after each of [steps] (default 20) function-level edits (replace,
    insert, or delete one function; the initial function count is
    drawn from [min_funcs]/[max_funcs]). Deterministic in
    [config.seed]. Unedited functions render byte-identically across
    consecutive snapshots — the subtree sharing the incremental
    extraction cache exploits. *)
