(** Disk-backed extraction shards: the out-of-core training corpus.

    A *shard set* is a directory holding the extraction output of a
    corpus in a form training can stream with bounded memory:

    - [shard-NNNN.psh] — fixed-size runs of records, interned ids
      only, each file independently checksummed (FNV-1a trailer, the
      {!Lexkit.Binio} checksum);
    - [strings.pst] — the string table, written once per set: every
      id in every shard resolves here;
    - [meta.psm] — kind, shard count and per-shard record counts,
      written last and atomically, so its presence marks a complete
      set (a killed writer leaves no [meta.psm] and the set reads as
      absent, never as truncated).

    Three record kinds cover both trainers: {!Pairs} ((word, context)
    — SGNS training pairs), {!Contexts} ((start, rel, end) path
    contexts), and {!Graphs} (encoded CRF factor graphs). Readers
    verify magic, kind, record counts and the per-shard checksum
    before yielding a single record; any damage — truncation, bit
    flips, hostile lengths — surfaces as a structured
    [Lexkit.Diag.Error] with kind [Corrupt_model]. *)

type kind = Pairs | Contexts | Graphs

val kind_name : kind -> string

(** {2 Writing} *)

type writer

val create_writer :
  dir:string -> kind:kind -> ?records_per_shard:int -> unit -> writer
(** Start a shard set in [dir] (created if needed; an existing
    [meta.psm] there is an error — sets are immutable once finished).
    [records_per_shard] (default 65536) bounds the writer's in-memory
    buffer: one shard's payload plus the string table. *)

val intern : writer -> string -> int
(** Intern a string into the set's table, returning its id. *)

val add_pair : writer -> int -> int -> unit
(** [Pairs] sets only: append a (word, context) record of interned
    ids. Raises [Invalid_argument] on a kind mismatch or an id not
    from {!intern}. *)

val add_context : writer -> start:int -> rel:int -> end_:int -> unit
(** [Contexts] sets only: append a (start, rel, end) path context. *)

(** An encoded factor graph: node gold labels and factor relations as
    interned ids. The neutral form lets the corpus layer stay below
    [Crf] in the library graph; [Pigeon.Task] converts to and from
    [Crf.Graph.t]. *)
type graph_rec = {
  g_gold : int array;  (** per node, in node-id order *)
  g_unknown : bool array;  (** per node *)
  g_pw : (int * int * int * int) array;  (** (a, b, rel, mult) *)
  g_un : (int * int * int) array;  (** (n, rel, mult) *)
}

val add_graph : writer -> graph_rec -> unit
(** [Graphs] sets only. Raises [Invalid_argument] on malformed shape
    (mismatched node arrays, out-of-range ids, mult < 1). *)

type set

val finish : writer -> set
(** Flush the final partial shard, write the string table, then
    publish [meta.psm] atomically. The writer is dead afterwards. *)

(** {2 Reading} *)

val open_set : string -> set
(** Open a finished set: loads and verifies [meta.psm] and
    [strings.pst]. Raises [Lexkit.Diag.Error] — [Io_error] when the
    set is absent or unreadable, [Corrupt_model] on any structural or
    checksum damage. *)

val exists : string -> bool
(** Whether [dir] holds a finished set (a [meta.psm]). *)

val dir : set -> string
val kind : set -> kind
val n_shards : set -> int
val total : set -> int
(** Total records across all shards. *)

val shard_records : set -> int -> int
(** Record count of one shard (from the metadata — no shard read). *)

val n_strings : set -> int
val string_of_id : set -> int -> string
val strtab : set -> Intern.Strtab.t
(** The set's string table. Shared, read-only: resolve ids through
    it, do not intern into it. *)

val pairs : set -> int -> (int * int) array
(** Load, verify and decode one shard of a [Pairs] set — the bounded
    unit of streaming (at most [records_per_shard] records). Raises
    [Lexkit.Diag.Error] with kind [Corrupt_model] on damage. *)

val contexts : set -> int -> (int * int * int) array
val graphs : set -> int -> graph_rec array

val fold_pairs :
  ?from_shard:int -> set -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** Stream every pair in shard order, one verified shard in memory at
    a time. [from_shard] starts the walk at a later shard — the resume
    cursor's entry point. *)

val fold_contexts :
  ?from_shard:int ->
  set ->
  init:'a ->
  f:('a -> int -> int -> int -> 'a) ->
  'a

val fold_graphs :
  ?from_shard:int -> set -> init:'a -> f:('a -> graph_rec -> 'a) -> 'a
