(* Shard sets: extraction output on disk, interned ids only. The
   format follows the v4 model-file idiom — a text magic line, then
   Binio length-prefixed fields, then an FNV-1a checksum trailer — so
   the same overflow-safe reader discipline (subtraction-form bounds,
   per-element size caps before allocation) contains hostile lengths
   here too. Every file is written through [Lexkit.write_file_atomic],
   and [meta.psm] is written last: a killed writer leaves either a
   complete, readable set or no set at all. *)

module B = Lexkit.Binio

type kind = Pairs | Contexts | Graphs

let kind_name = function
  | Pairs -> "pairs"
  | Contexts -> "contexts"
  | Graphs -> "graphs"

let kind_tag = function Pairs -> 1 | Contexts -> 2 | Graphs -> 3

let kind_of_tag = function
  | 1 -> Pairs
  | 2 -> Contexts
  | 3 -> Graphs
  | t -> Printf.ksprintf failwith "unknown shard kind tag %d" t

let shard_magic = "pigeon shard 1\n"
let strings_magic = "pigeon shard strings 1\n"
let meta_magic = "pigeon shard meta 1\n"

let shard_file dir i = Filename.concat dir (Printf.sprintf "shard-%04d.psh" i)
let strings_file dir = Filename.concat dir "strings.pst"
let meta_file dir = Filename.concat dir "meta.psm"

let corrupt ?file fmt =
  Format.kasprintf
    (fun msg ->
      raise (Lexkit.Diag.Error (Lexkit.Diag.make ?file Lexkit.Diag.Corrupt_model msg)))
    fmt

let io_error ?file fmt =
  Format.kasprintf
    (fun msg ->
      raise (Lexkit.Diag.Error (Lexkit.Diag.make ?file Lexkit.Diag.Io_error msg)))
    fmt

type graph_rec = {
  g_gold : int array;
  g_unknown : bool array;
  g_pw : (int * int * int * int) array;
  g_un : (int * int * int) array;
}

(* ---------------------------------------------------------------- *)
(* Writing *)

type writer = {
  w_dir : string;
  w_kind : kind;
  w_per_shard : int;
  w_tab : Intern.Strtab.t;
  w_buf : Buffer.t;  (* current shard payload; bounded *)
  mutable w_in_shard : int;
  mutable w_counts_rev : int list;
  mutable w_total : int;
  mutable w_done : bool;
}

let create_writer ~dir ~kind ?(records_per_shard = 65536) () =
  if records_per_shard < 1 then
    invalid_arg "Shard.create_writer: records_per_shard < 1";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if Sys.file_exists (meta_file dir) then
    invalid_arg
      (Printf.sprintf "Shard.create_writer: %s already holds a finished set"
         dir);
  {
    w_dir = dir;
    w_kind = kind;
    w_per_shard = records_per_shard;
    w_tab = Intern.Strtab.create ~hint:1024 ();
    w_buf = Buffer.create (records_per_shard * 16);
    w_in_shard = 0;
    w_counts_rev = [];
    w_total = 0;
    w_done = false;
  }

let intern w s = Intern.Strtab.intern w.w_tab s

(* Shard files stream out through the writer callback: magic, header,
   the buffered payload, then the checksum of everything between magic
   and trailer — the incremental [checksum_add] makes the fold over
   header + payload equal to checksumming their concatenation. *)
let write_shard_file w i =
  let head = Buffer.create 16 in
  B.w_u8 head (kind_tag w.w_kind);
  B.w_int head w.w_in_shard;
  let payload = Buffer.contents w.w_buf in
  let sum = B.checksum_add (B.checksum (Buffer.contents head)) payload in
  Lexkit.write_file_atomic_gen (shard_file w.w_dir i) (fun oc ->
      output_string oc shard_magic;
      Buffer.output_buffer oc head;
      output_string oc payload;
      let tr = Buffer.create 8 in
      B.w_int tr sum;
      Buffer.output_buffer oc tr)

let flush_shard w =
  if w.w_in_shard > 0 then begin
    write_shard_file w (List.length w.w_counts_rev);
    w.w_counts_rev <- w.w_in_shard :: w.w_counts_rev;
    w.w_in_shard <- 0;
    Buffer.clear w.w_buf
  end

let check_open w =
  if w.w_done then invalid_arg "Shard: writer already finished"

let check_id w what id =
  if id < 0 || id >= Intern.Strtab.size w.w_tab then
    invalid_arg (Printf.sprintf "Shard: %s id %d not interned" what id)

let begin_record w =
  check_open w;
  if w.w_in_shard >= w.w_per_shard then flush_shard w;
  w.w_in_shard <- w.w_in_shard + 1;
  w.w_total <- w.w_total + 1

let add_pair w a b =
  if w.w_kind <> Pairs then
    invalid_arg "Shard.add_pair: not a pairs set";
  check_id w "word" a;
  check_id w "context" b;
  begin_record w;
  B.w_int w.w_buf a;
  B.w_int w.w_buf b

let add_context w ~start ~rel ~end_ =
  if w.w_kind <> Contexts then
    invalid_arg "Shard.add_context: not a contexts set";
  check_id w "start" start;
  check_id w "rel" rel;
  check_id w "end" end_;
  begin_record w;
  B.w_int w.w_buf start;
  B.w_int w.w_buf rel;
  B.w_int w.w_buf end_

let add_graph w (g : graph_rec) =
  if w.w_kind <> Graphs then
    invalid_arg "Shard.add_graph: not a graphs set";
  let n = Array.length g.g_gold in
  if Array.length g.g_unknown <> n then
    invalid_arg "Shard.add_graph: gold/unknown length mismatch";
  Array.iter (check_id w "gold label") g.g_gold;
  let chk_node what i =
    if i < 0 || i >= n then
      invalid_arg (Printf.sprintf "Shard.add_graph: %s node %d of %d" what i n)
  in
  Array.iter
    (fun (a, b, rel, mult) ->
      chk_node "pairwise" a;
      chk_node "pairwise" b;
      check_id w "rel" rel;
      if mult < 1 then invalid_arg "Shard.add_graph: mult < 1")
    g.g_pw;
  Array.iter
    (fun (i, rel, mult) ->
      chk_node "unary" i;
      check_id w "rel" rel;
      if mult < 1 then invalid_arg "Shard.add_graph: mult < 1")
    g.g_un;
  begin_record w;
  let buf = w.w_buf in
  B.w_int buf n;
  for i = 0 to n - 1 do
    B.w_int buf g.g_gold.(i);
    B.w_u8 buf (if g.g_unknown.(i) then 1 else 0)
  done;
  B.w_int buf (Array.length g.g_pw);
  Array.iter
    (fun (a, b, rel, mult) ->
      B.w_int buf a;
      B.w_int buf b;
      B.w_int buf rel;
      B.w_int buf mult)
    g.g_pw;
  B.w_int buf (Array.length g.g_un);
  Array.iter
    (fun (i, rel, mult) ->
      B.w_int buf i;
      B.w_int buf rel;
      B.w_int buf mult)
    g.g_un

type set = {
  s_dir : string;
  s_kind : kind;
  s_counts : int array;
  s_total : int;
  s_tab : Intern.Strtab.t;
}

let write_strings w =
  let buf = Buffer.create (16 * Intern.Strtab.size w.w_tab) in
  B.w_int buf (Intern.Strtab.size w.w_tab);
  Intern.Strtab.iter (fun _ s -> B.w_string buf s) w.w_tab;
  let body = Buffer.contents buf in
  let tr = Buffer.create 8 in
  B.w_int tr (B.checksum body);
  Lexkit.write_file_atomic (strings_file w.w_dir)
    (strings_magic ^ body ^ Buffer.contents tr)

let write_meta w counts =
  let buf = Buffer.create 64 in
  B.w_u8 buf (kind_tag w.w_kind);
  B.w_int buf (Intern.Strtab.size w.w_tab);
  B.w_int buf (Array.length counts);
  B.w_int buf w.w_total;
  Array.iter (B.w_int buf) counts;
  let body = Buffer.contents buf in
  let tr = Buffer.create 8 in
  B.w_int tr (B.checksum body);
  Lexkit.write_file_atomic (meta_file w.w_dir)
    (meta_magic ^ body ^ Buffer.contents tr)

let finish w =
  check_open w;
  flush_shard w;
  let counts = Array.of_list (List.rev w.w_counts_rev) in
  write_strings w;
  (* Last: the set exists only once its metadata does. *)
  write_meta w counts;
  w.w_done <- true;
  {
    s_dir = w.w_dir;
    s_kind = w.w_kind;
    s_counts = counts;
    s_total = w.w_total;
    s_tab = w.w_tab;
  }

(* ---------------------------------------------------------------- *)
(* Reading *)

let read_file_str path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error msg -> io_error ~file:path "%s" msg
  | exception End_of_file -> corrupt ~file:path "file shrank while reading"

(* Magic + trailer framing shared by all three file types: returns a
   reader over the checksummed body after verifying the trailer. *)
let open_body ~file ~magic s =
  let mlen = String.length magic in
  if String.length s < mlen || not (String.equal (String.sub s 0 mlen) magic)
  then corrupt ~file "bad magic (not a %s file)" (Filename.basename file);
  if String.length s < mlen + 8 then corrupt ~file "truncated (no trailer)";
  let body = String.sub s mlen (String.length s - mlen - 8) in
  let r = B.reader ~pos:(String.length s - 8) s in
  let stored = B.r_int r "checksum trailer" in
  let sum = B.checksum body in
  if stored <> sum then
    corrupt ~file "checksum mismatch: stored %d, computed %d" stored sum;
  B.reader body

(* Binio reader failures ([Failure] from hostile lengths, truncation,
   bad tags) become [Corrupt_model] diagnostics carrying the file. *)
let guarded ~file f =
  match f () with
  | v -> v
  | exception Failure msg -> corrupt ~file "%s" msg

let load_meta dir =
  let file = meta_file dir in
  if not (Sys.file_exists file) then
    io_error ~file "no shard set at %s (missing meta.psm)" dir;
  let r = open_body ~file ~magic:meta_magic (read_file_str file) in
  guarded ~file (fun () ->
      let kind = kind_of_tag (B.r_u8 r "kind") in
      let n_strings = B.r_int r "string count" in
      let n_shards = B.r_int r "shard count" in
      let total = B.r_int r "record count" in
      if n_strings < 0 then failwith "negative string count";
      if n_shards < 0 || n_shards > B.remaining r / 8 then
        failwith "shard count out of range";
      let counts = Array.init n_shards (fun _ -> B.r_int r "shard records") in
      let sum = Array.fold_left ( + ) 0 counts in
      if total < 0 || sum <> total then
        Printf.ksprintf failwith
          "record counts disagree: shards sum to %d, metadata says %d" sum
          total;
      Array.iter (fun c -> if c < 0 then failwith "negative shard count") counts;
      if not (B.at_end r) then failwith "trailing bytes after metadata";
      (kind, n_strings, counts, total))

let load_strings dir ~n_strings =
  let file = strings_file dir in
  if not (Sys.file_exists file) then
    io_error ~file "shard set missing its string table";
  let r = open_body ~file ~magic:strings_magic (read_file_str file) in
  guarded ~file (fun () ->
      let n = B.r_int r "string count" in
      if n <> n_strings then
        Printf.ksprintf failwith
          "string table holds %d strings, metadata says %d" n n_strings;
      let tab = Intern.Strtab.create ~hint:(max 8 n) () in
      for i = 0 to n - 1 do
        let s = B.r_string r "string" in
        if Intern.Strtab.intern tab s <> i then
          Printf.ksprintf failwith "duplicate string %S in table" s
      done;
      if not (B.at_end r) then failwith "trailing bytes after string table";
      tab)

let open_set dirname =
  let kind, n_strings, counts, total = load_meta dirname in
  let tab = load_strings dirname ~n_strings in
  { s_dir = dirname; s_kind = kind; s_counts = counts; s_total = total;
    s_tab = tab }

let exists dirname = Sys.file_exists (meta_file dirname)

let dir s = s.s_dir
let kind s = s.s_kind
let n_shards s = Array.length s.s_counts
let total s = s.s_total

let shard_records s i =
  if i < 0 || i >= Array.length s.s_counts then
    invalid_arg (Printf.sprintf "Shard.shard_records: shard %d of %d" i
                   (Array.length s.s_counts));
  s.s_counts.(i)

let n_strings s = Intern.Strtab.size s.s_tab
let string_of_id s i = Intern.Strtab.to_string s.s_tab i
let strtab s = s.s_tab

(* One shard, verified: checksum first, then kind/count cross-checked
   against the metadata (a shard file copied in from another set fails
   here even if internally consistent). Returns a reader positioned at
   the payload plus the record count. *)
let open_shard s i =
  if i < 0 || i >= Array.length s.s_counts then
    invalid_arg (Printf.sprintf "Shard: shard %d of %d" i
                   (Array.length s.s_counts));
  let file = shard_file s.s_dir i in
  if not (Sys.file_exists file) then
    io_error ~file "shard set missing shard %d" i;
  let r = open_body ~file ~magic:shard_magic (read_file_str file) in
  let count =
    guarded ~file (fun () ->
        let k = kind_of_tag (B.r_u8 r "kind") in
        if k <> s.s_kind then
          Printf.ksprintf failwith "shard kind %s, set kind %s" (kind_name k)
            (kind_name s.s_kind);
        let n = B.r_int r "record count" in
        if n <> s.s_counts.(i) then
          Printf.ksprintf failwith
            "shard holds %d records, metadata says %d" n s.s_counts.(i);
        n)
  in
  (file, r, count)

let check_sid s ~file id what =
  if id < 0 || id >= Intern.Strtab.size s.s_tab then
    corrupt ~file "%s id %d outside the string table (%d strings)" what id
      (Intern.Strtab.size s.s_tab)

let pairs s i =
  if s.s_kind <> Pairs then invalid_arg "Shard.pairs: not a pairs set";
  let file, r, n = open_shard s i in
  guarded ~file (fun () ->
      (* 16 bytes per record: bound the claimed count before
         allocating (division form — no overflow on hostile counts). *)
      if n > B.remaining r / 16 then
        failwith "record count exceeds shard payload";
      let out =
        Array.init n (fun _ ->
            let a = B.r_int r "pair word" in
            let b = B.r_int r "pair context" in
            (a, b))
      in
      if not (B.at_end r) then failwith "trailing bytes after records";
      Array.iter
        (fun (a, b) ->
          check_sid s ~file a "word";
          check_sid s ~file b "context")
        out;
      out)

let contexts s i =
  if s.s_kind <> Contexts then invalid_arg "Shard.contexts: not a contexts set";
  let file, r, n = open_shard s i in
  guarded ~file (fun () ->
      if n > B.remaining r / 24 then
        failwith "record count exceeds shard payload";
      let out =
        Array.init n (fun _ ->
            let a = B.r_int r "context start" in
            let b = B.r_int r "context rel" in
            let c = B.r_int r "context end" in
            (a, b, c))
      in
      if not (B.at_end r) then failwith "trailing bytes after records";
      Array.iter
        (fun (a, b, c) ->
          check_sid s ~file a "start";
          check_sid s ~file b "rel";
          check_sid s ~file c "end")
        out;
      out)

let graphs s i =
  if s.s_kind <> Graphs then invalid_arg "Shard.graphs: not a graphs set";
  let file, r, n = open_shard s i in
  guarded ~file (fun () ->
      (* Graphs are variable-length; a record costs at least 24 bytes
         (three counts), which still bounds hostile record counts. *)
      if n > B.remaining r / 24 then
        failwith "record count exceeds shard payload";
            let read_graph () =
        let nn = B.r_int r "node count" in
        if nn < 0 || nn > B.remaining r / 9 then
          failwith "node count exceeds shard payload";
        let g_gold = Array.make (max 1 nn) 0
        and g_unknown = Array.make (max 1 nn) false in
        for k = 0 to nn - 1 do
          let sid = B.r_int r "gold label" in
          check_sid s ~file sid "gold label";
          g_gold.(k) <- sid;
          g_unknown.(k) <- B.r_u8 r "node kind" <> 0
        done;
        let g_gold = Array.sub g_gold 0 nn
        and g_unknown = Array.sub g_unknown 0 nn in
        let chk_node what v =
          if v < 0 || v >= nn then
            Printf.ksprintf failwith "%s node %d outside %d nodes" what v nn
        in
        let npw = B.r_int r "pairwise count" in
        if npw < 0 || npw > B.remaining r / 32 then
          failwith "pairwise count exceeds shard payload";
        let g_pw =
          Array.init npw (fun _ ->
              let a = B.r_int r "pairwise a" in
              let b = B.r_int r "pairwise b" in
              let rel = B.r_int r "pairwise rel" in
              let mult = B.r_int r "pairwise mult" in
              chk_node "pairwise" a;
              chk_node "pairwise" b;
              check_sid s ~file rel "rel";
              if mult < 1 then failwith "pairwise mult < 1";
              (a, b, rel, mult))
        in
        let nun = B.r_int r "unary count" in
        if nun < 0 || nun > B.remaining r / 24 then
          failwith "unary count exceeds shard payload";
        let g_un =
          Array.init nun (fun _ ->
              let v = B.r_int r "unary node" in
              let rel = B.r_int r "unary rel" in
              let mult = B.r_int r "unary mult" in
              chk_node "unary" v;
              check_sid s ~file rel "rel";
              if mult < 1 then failwith "unary mult < 1";
              (v, rel, mult))
        in
        { g_gold; g_unknown; g_pw; g_un }
      in
      let out = Array.init n (fun _ -> read_graph ()) in
      if not (B.at_end r) then failwith "trailing bytes after records";
      out)

let fold_over load ?(from_shard = 0) s ~init ~f =
  let acc = ref init in
  for i = max 0 from_shard to Array.length s.s_counts - 1 do
    acc := Array.fold_left f !acc (load s i)
  done;
  !acc

let fold_pairs ?from_shard s ~init ~f =
  fold_over pairs ?from_shard s ~init ~f:(fun acc (a, b) -> f acc a b)

let fold_contexts ?from_shard s ~init ~f =
  fold_over contexts ?from_shard s ~init ~f:(fun acc (a, b, c) -> f acc a b c)

let fold_graphs ?from_shard s ~init ~f = fold_over graphs ?from_shard s ~init ~f
