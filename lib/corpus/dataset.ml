type entry = { path : string; source : string }
type t = entry list

type split = { train : t; valid : t; test : t }

let md5 s = Digest.to_hex (Digest.string s)

let dedup entries =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun e ->
      let h = md5 e.source in
      if Hashtbl.mem seen h then false
      else begin
        Hashtbl.add seen h ();
        true
      end)
    entries

let split_corpus ?(valid_frac = 0.1) ?(test_frac = 0.2) ~seed entries =
  if
    Float.is_nan valid_frac || Float.is_nan test_frac || valid_frac < 0.
    || test_frac < 0.
  then invalid_arg "Dataset.split_corpus: fractions must be non-negative";
  let rng = Random.State.make [| seed |] in
  let arr = Array.of_list entries in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  (* Clamp so the three parts always partition the corpus exactly, even
     for tiny corpora or fractions summing past 1. *)
  let n_valid = min n (int_of_float (valid_frac *. float_of_int n)) in
  let n_test = min (n - n_valid) (int_of_float (test_frac *. float_of_int n)) in
  let valid = Array.to_list (Array.sub arr 0 n_valid) in
  let test = Array.to_list (Array.sub arr n_valid n_test) in
  let train =
    Array.to_list (Array.sub arr (n_valid + n_test) (n - n_valid - n_test))
  in
  { train; valid; test }

type stats = { files : int; bytes : int }

let stats entries =
  {
    files = List.length entries;
    bytes = List.fold_left (fun acc e -> acc + String.length e.source) 0 entries;
  }

let pp_stats ppf s = Fmt.pf ppf "%d files, %d bytes" s.files s.bytes
