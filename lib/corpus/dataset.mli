(** Corpus pipeline: dedup, split, statistics (paper Section 5.2 and
    Table 1). *)

type entry = { path : string; source : string }
type t = entry list

type split = { train : t; valid : t; test : t }

val md5 : string -> string
(** Hex digest of file contents — the paper's dedup key. *)

val dedup : t -> t
(** Keep the first file for each distinct content digest, preserving
    order (the paper: "to filter duplicates, we used ... md5 of
    files"). *)

val split_corpus : ?valid_frac:float -> ?test_frac:float -> seed:int -> t -> split
(** Random, disjoint, seed-deterministic split. Default fractions:
    10% validation, 20% test. The parts always partition the input
    exactly: requested counts are clamped (validation first) when the
    fractions over-commit or the corpus is tiny. Negative or NaN
    fractions raise [Invalid_argument]. *)

type stats = { files : int; bytes : int }

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
