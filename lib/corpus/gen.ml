type config = {
  n_files : int;
  min_funcs : int;
  max_funcs : int;
  min_templates : int;
  max_templates : int;
  driver_prob : float;
  dup_fraction : float;
  seed : int;
}

let default =
  {
    n_files = 200;
    min_funcs = 2;
    max_funcs = 4;
    min_templates = 1;
    max_templates = 2;
    driver_prob = 0.5;
    dup_fraction = 0.05;
    seed = 2018;
  }

(* Variable allocator with per-function name uniqueness and role-aware
   reuse: when a later template in the same function asks for a role an
   earlier one already introduced, it usually receives the same
   variable (real functions thread one list through several loops
   rather than introducing [items] and [values] side by side). Reuse
   also creates cross-statement paths between templates — long-range
   evidence. Within one template instantiation a variable is never
   handed out twice (a swap needs two distinct values; parameters must
   be distinct). *)
type alloc_state = {
  rng : Random.State.t;
  used : (string, unit) Hashtbl.t;
  pool : (Role.t, Ir.var list) Hashtbl.t;
  mutable handed : Ir.var list;  (** handed out in the current template *)
}

let make_alloc rng =
  { rng; used = Hashtbl.create 16; pool = Hashtbl.create 8; handed = [] }

let begin_template st = st.handed <- []

let alloc_var ?(reuse_prob = 0.6) st role =
  let reusable =
    Option.value (Hashtbl.find_opt st.pool role) ~default:[]
    |> List.filter (fun v ->
           not (List.exists (fun u -> u.Ir.v_name = v.Ir.v_name) st.handed))
  in
  match reusable with
  | v :: _ when Random.State.float st.rng 1.0 < reuse_prob ->
      st.handed <- v :: st.handed;
      v
  | _ ->
      let rec try_pick k =
        let name = Role.pick_name st.rng role in
        if not (Hashtbl.mem st.used name) then name
        else if k <= 0 then
          let rec bump i =
            let candidate = Printf.sprintf "%s%d" name i in
            if Hashtbl.mem st.used candidate then bump (i + 1) else candidate
          in
          bump 2
        else try_pick (k - 1)
      in
      let name = try_pick 8 in
      Hashtbl.add st.used name ();
      let v = { Ir.v_name = name; v_role = role; v_ty = Role.ty role } in
      Hashtbl.replace st.pool role
        (v :: Option.value (Hashtbl.find_opt st.pool role) ~default:[]);
      st.handed <- v :: st.handed;
      v

let literal_for (v : Ir.var) =
  match v.Ir.v_ty with
  | Role.TInt -> Ir.Int 1
  | Role.TBool -> Ir.Bool true
  | Role.TStr -> Ir.Str "input"
  | Role.TDouble -> Ir.Int 0
  | Role.TListInt | Role.TListStr | Role.TMapStrInt -> Ir.NewList v.Ir.v_ty
  | Role.TObj c -> Ir.NewObj (c, [])

let gen_driver rng funcs =
  let st = make_alloc rng in
  (* The driver declares fresh arguments per call; no reuse. *)
  let alloc role =
    begin_template st;
    alloc_var ~reuse_prob:0.0 st role
  in
  let body =
    List.concat_map
      (fun (f : Ir.func) ->
        let arg_decls =
          List.map
            (fun p ->
              let v = alloc p.Ir.v_role in
              (v, Ir.Let (v, literal_for p)))
            f.Ir.f_params
        in
        List.map snd arg_decls
        @ [
            Ir.CallStmt
              (Ir.CallFree (f.Ir.f_name, List.map (fun (v, _) -> Ir.V v) arg_decls));
          ])
      funcs
  in
  { Ir.f_name = "run_all"; f_params = []; f_ret = None; f_body = body }

let gen_func rng config ~used_names =
  let range lo hi = lo + Random.State.int rng (max 1 (hi - lo + 1)) in
  let st = make_alloc rng in
  let n_templates = range config.min_templates config.max_templates in
    let primary = Templates.pick rng in
    let rest = List.init (n_templates - 1) (fun _ -> Templates.pick rng) in
    let instances =
      List.map
        (fun (t : Templates.t) ->
          begin_template st;
          t.Templates.instantiate (alloc_var st) rng)
        (primary :: rest)
    in
    (* Riffle the templates' statements together (each template's own
       order preserved) about half the time: real functions mix
       concerns, which blurs the token windows the linear baselines
       depend on while leaving AST paths intact. *)
    let riffle lists =
      let lists = ref (List.filter (fun l -> l <> []) lists) in
      let out = ref [] in
      while !lists <> [] do
        let k = Random.State.int rng (List.length !lists) in
        let picked = List.nth !lists k in
        (match picked with
        | s :: restl ->
            out := s :: !out;
            lists :=
              List.mapi (fun i l -> if i = k then restl else l) !lists
              |> List.filter (fun l -> l <> [])
        | [] -> ())
      done;
      List.rev !out
    in
    let stmt_lists = List.map (fun i -> i.Templates.stmts) instances in
    let stmts =
      if List.length stmt_lists > 1 && Random.State.bool rng then
        riffle stmt_lists
      else List.concat stmt_lists
    in
    (* Occasional distractor statements add token-stream noise. *)
    let stmts =
      List.concat_map
        (fun s ->
          if Random.State.int rng 100 < 15 then
            [ s; Ir.CallStmt (Ir.CallFree ("log", [ Ir.Str "step" ])) ]
          else [ s ])
        stmts
    in
    let params =
      List.concat_map (fun i -> i.Templates.params) instances
      |> List.fold_left
           (fun acc v ->
             if List.exists (fun u -> String.equal u.Ir.v_name v.Ir.v_name) acc
             then acc
             else v :: acc)
           []
      |> List.rev
    in
    let ret_info = List.find_map (fun i -> i.Templates.ret) instances in
    let body =
      match ret_info with
      | Some (_, ret_stmt) -> stmts @ [ ret_stmt ]
      | None -> stmts
    in
    let head = List.hd instances in
    let base = Printf.sprintf "%s_%s" head.Templates.verb head.Templates.noun in
    (* Disambiguate only on an actual collision within the file. *)
    let name =
      if not (Hashtbl.mem used_names base) then base
      else
        let rec bump i =
          let candidate = Printf.sprintf "%s%d" base i in
          if Hashtbl.mem used_names candidate then bump (i + 1) else candidate
        in
        bump 2
    in
    Hashtbl.replace used_names name ();
    {
      Ir.f_name = name;
      f_params = params;
      f_ret = Option.map fst ret_info;
      f_body = body;
    }

let generate config =
  let rng = Random.State.make [| config.seed |] in
  let range lo hi = lo + Random.State.int rng (max 1 (hi - lo + 1)) in
  let files =
    List.init config.n_files (fun id ->
        let n_funcs = range config.min_funcs config.max_funcs in
        let used_names = Hashtbl.create 8 in
        let funcs =
          List.init n_funcs (fun _ -> gen_func rng config ~used_names)
        in
        let funcs =
          if Random.State.float rng 1.0 < config.driver_prob then
            funcs @ [ gen_driver rng funcs ]
          else funcs
        in
        { Ir.file_name = Printf.sprintf "sample_%04d" id; funcs })
  in
  (* Verbatim duplicates, to exercise dedup. The IR (and hence the
     rendered content, including any class name derived from
     [file_name]) is identical; only the output path differs — see
     {!generate_sources}. *)
  let n_dups =
    int_of_float (config.dup_fraction *. float_of_int config.n_files)
  in
  let files_arr = Array.of_list files in
  let dups =
    List.init n_dups (fun _ ->
        files_arr.(Random.State.int rng (Array.length files_arr)))
  in
  files @ dups

(* Editor-session traces: one buffer, function-level edits. Each step
   replaces, inserts, or deletes one function and re-renders the whole
   buffer; untouched functions render byte-identically, so their
   subtrees are exactly what the incremental extraction cache shares
   across steps. *)
let edit_trace ?(steps = 20) config lang =
  let rng = Random.State.make [| config.seed; 0x9E3779B1 |] in
  let range lo hi = lo + Random.State.int rng (max 1 (hi - lo + 1)) in
  let used_names = Hashtbl.create 16 in
  let funcs =
    ref
      (Array.init (range config.min_funcs config.max_funcs) (fun _ ->
           gen_func rng config ~used_names))
  in
  let render () =
    Render.render lang
      { Ir.file_name = "session_buffer"; funcs = Array.to_list !funcs }
  in
  let snapshots = ref [ render () ] in
  for _ = 1 to steps do
    let n = Array.length !funcs in
    let op = if n <= 1 then 1 else Random.State.int rng 3 in
    (match op with
    | 0 ->
        (* replace one function *)
        !funcs.(Random.State.int rng n) <- gen_func rng config ~used_names
    | 1 ->
        (* insert a new function *)
        let k = Random.State.int rng (n + 1) in
        let f = gen_func rng config ~used_names in
        funcs :=
          Array.concat
            [ Array.sub !funcs 0 k; [| f |]; Array.sub !funcs k (n - k) ]
    | _ ->
        (* delete one function *)
        let k = Random.State.int rng n in
        funcs :=
          Array.concat
            [ Array.sub !funcs 0 k; Array.sub !funcs (k + 1) (n - k - 1) ]);
    snapshots := render () :: !snapshots
  done;
  List.rev !snapshots

let generate_sources config lang =
  let seen = Hashtbl.create 64 in
  List.map
    (fun (f : Ir.file) ->
      let base = f.Ir.file_name in
      let count = Option.value (Hashtbl.find_opt seen base) ~default:0 in
      Hashtbl.replace seen base (count + 1);
      let path =
        if count = 0 then base
        else Printf.sprintf "vendored/copy%d/%s" count base
      in
      (path ^ Render.file_extension lang, Render.render lang f))
    (generate config)
