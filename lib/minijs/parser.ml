open Syntax

type state = { mutable toks : Token.spanned list; guard : Lexkit.Guard.t }

let peek st =
  match st.toks with [] -> Token.Eof | { tok; _ } :: _ -> tok

let pos st =
  match st.toks with [] -> Lexkit.start_pos | { pos; _ } :: _ -> pos

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

(* Depth/step guard around the recursion points of the grammar.
   Exception-safe so a thrown parse doesn't leak depth. *)
let guarded st f =
  Lexkit.Guard.enter st.guard (pos st);
  match f () with
  | v ->
      Lexkit.Guard.leave st.guard;
      v
  | exception e ->
      Lexkit.Guard.leave st.guard;
      raise e

let make_state src =
  { toks = Lexer.tokenize src; guard = Lexkit.Guard.create () }

let expect_punct st p =
  match peek st with
  | Token.Punct q when String.equal p q -> advance st
  | t -> Lexkit.error (pos st) "expected %S but found %s" p (Token.to_string t)

let expect_kw st k =
  match peek st with
  | Token.Kw q when String.equal k q -> advance st
  | t -> Lexkit.error (pos st) "expected %S but found %s" k (Token.to_string t)

let eat_punct st p =
  match peek st with
  | Token.Punct q when String.equal p q ->
      advance st;
      true
  | _ -> false

let eat_kw st k =
  match peek st with
  | Token.Kw q when String.equal k q ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match peek st with
  | Token.Ident id ->
      advance st;
      id
  | t -> Lexkit.error (pos st) "expected identifier, found %s" (Token.to_string t)

(* Binary operator precedence, loosest first; all left-associative. *)
let binop_levels =
  [
    [ "||" ];
    [ "&&" ];
    [ "|" ];
    [ "^" ];
    [ "&" ];
    [ "=="; "!="; "==="; "!==" ];
    [ "<"; ">"; "<="; ">="; "instanceof"; "in" ];
    [ "+"; "-" ];
    [ "*"; "/"; "%" ];
  ]

let assign_ops = [ "="; "+="; "-="; "*="; "/="; "%=" ]

let rec parse_expression st = parse_assign st

and parse_assign st =
  guarded st @@ fun () ->
  let lhs = parse_cond st in
  match peek st with
  | Token.Punct op when List.mem op assign_ops ->
      advance st;
      let rhs = parse_assign st in
      Assign (op, lhs, rhs)
  | _ -> lhs

and parse_cond st =
  let c = parse_binary st 0 in
  if eat_punct st "?" then begin
    let t = parse_assign st in
    expect_punct st ":";
    let e = parse_assign st in
    Cond (c, t, e)
  end
  else c

and parse_binary st level =
  if level >= List.length binop_levels then parse_unary st
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek st with
      | Token.Punct op when List.mem op ops ->
          advance st;
          let rhs = parse_binary st (level + 1) in
          lhs := Binary (op, !lhs, rhs)
      | Token.Kw op when List.mem op ops ->
          advance st;
          let rhs = parse_binary st (level + 1) in
          lhs := Binary (op, !lhs, rhs)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  guarded st @@ fun () ->
  match peek st with
  | Token.Punct (("!" | "-" | "+" | "~") as op) ->
      advance st;
      Unary (op, parse_unary st)
  | Token.Punct (("++" | "--") as op) ->
      advance st;
      Update (op, true, parse_unary st)
  | Token.Kw (("typeof" | "delete") as op) ->
      advance st;
      Unary (op, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_call_member st in
  match peek st with
  | Token.Punct (("++" | "--") as op) ->
      advance st;
      Update (op, false, e)
  | _ -> e

and parse_call_member st =
  let e =
    if eat_kw st "new" then begin
      let callee = parse_member_chain st (parse_primary st) ~calls:false in
      let args = if eat_punct st "(" then parse_args st else [] in
      New (callee, args)
    end
    else parse_primary st
  in
  parse_member_chain st e ~calls:true

and parse_member_chain st e ~calls =
  let rec go e =
    if eat_punct st "." then go (Member (e, expect_ident st))
    else if eat_punct st "[" then begin
      let i = parse_expression st in
      expect_punct st "]";
      go (Index (e, i))
    end
    else if calls && eat_punct st "(" then go (Call (e, parse_args st))
    else e
  in
  go e

and parse_args st =
  if eat_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_assign st in
      if eat_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  match peek st with
  | Token.Num n ->
      advance st;
      Num n
  | Token.Str s ->
      advance st;
      Str s
  | Token.Ident id ->
      advance st;
      Ident id
  | Token.Kw "true" ->
      advance st;
      Bool true
  | Token.Kw "false" ->
      advance st;
      Bool false
  | Token.Kw "null" ->
      advance st;
      Null
  | Token.Kw "this" ->
      advance st;
      This
  | Token.Kw "function" ->
      advance st;
      let name =
        match peek st with
        | Token.Ident id ->
            advance st;
            Some id
        | _ -> None
      in
      let params = parse_params st in
      let body = parse_block st in
      Func (name, params, body)
  | Token.Punct "(" ->
      advance st;
      let e = parse_expression st in
      expect_punct st ")";
      e
  | Token.Punct "[" ->
      advance st;
      if eat_punct st "]" then Array []
      else begin
        let rec go acc =
          let e = parse_assign st in
          if eat_punct st "," then go (e :: acc)
          else begin
            expect_punct st "]";
            List.rev (e :: acc)
          end
        in
        Array (go [])
      end
  | Token.Punct "{" ->
      advance st;
      if eat_punct st "}" then Object []
      else begin
        let rec go acc =
          let key =
            match peek st with
            | Token.Ident id | Token.Str id | Token.Num id | Token.Kw id ->
                advance st;
                id
            | t ->
                Lexkit.error (pos st) "expected property name, found %s"
                  (Token.to_string t)
          in
          expect_punct st ":";
          let v = parse_assign st in
          if eat_punct st "," then go ((key, v) :: acc)
          else begin
            expect_punct st "}";
            List.rev ((key, v) :: acc)
          end
        in
        Object (go [])
      end
  | t -> Lexkit.error (pos st) "unexpected token %s" (Token.to_string t)

and parse_params st =
  expect_punct st "(";
  if eat_punct st ")" then []
  else begin
    let rec go acc =
      let p = expect_ident st in
      if eat_punct st "," then go (p :: acc)
      else begin
        expect_punct st ")";
        List.rev (p :: acc)
      end
    in
    go []
  end

and parse_block st =
  expect_punct st "{";
  let rec go acc =
    if eat_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_var_decl st =
  (* The [var]/[let]/[const] keyword has been consumed. *)
  let rec go acc =
    let name = expect_ident st in
    let init = if eat_punct st "=" then Some (parse_assign st) else None in
    if eat_punct st "," then go ((name, init) :: acc)
    else List.rev ((name, init) :: acc)
  in
  VarDecl (go [])

and parse_stmt_list_or_single st =
  if Token.equal (peek st) (Token.Punct "{") then parse_block st
  else [ parse_stmt st ]

and parse_stmt st =
  guarded st @@ fun () ->
  match peek st with
  | Token.Punct "{" -> Block (parse_block st)
  | Token.Punct ";" ->
      advance st;
      Block []
  | Token.Kw ("var" | "let" | "const") ->
      advance st;
      let d = parse_var_decl st in
      ignore (eat_punct st ";");
      d
  | Token.Kw "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expression st in
      expect_punct st ")";
      let then_ = parse_stmt_list_or_single st in
      let else_ =
        if eat_kw st "else" then Some (parse_stmt_list_or_single st) else None
      in
      If (c, then_, else_)
  | Token.Kw "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expression st in
      expect_punct st ")";
      While (c, parse_stmt_list_or_single st)
  | Token.Kw "do" ->
      advance st;
      let body = parse_stmt_list_or_single st in
      expect_kw st "while";
      expect_punct st "(";
      let c = parse_expression st in
      expect_punct st ")";
      ignore (eat_punct st ";");
      DoWhile (body, c)
  | Token.Kw "for" ->
      advance st;
      expect_punct st "(";
      parse_for st
  | Token.Kw "return" ->
      advance st;
      if eat_punct st ";" then Return None
      else begin
        let e = parse_expression st in
        ignore (eat_punct st ";");
        Return (Some e)
      end
  | Token.Kw "break" ->
      advance st;
      ignore (eat_punct st ";");
      Break
  | Token.Kw "continue" ->
      advance st;
      ignore (eat_punct st ";");
      Continue
  | Token.Kw "function" ->
      advance st;
      let name = expect_ident st in
      let params = parse_params st in
      let body = parse_block st in
      FuncDecl (name, params, body)
  | Token.Kw "try" ->
      advance st;
      let body = parse_block st in
      let catch =
        if eat_kw st "catch" then begin
          expect_punct st "(";
          let v = expect_ident st in
          expect_punct st ")";
          Some (v, parse_block st)
        end
        else None
      in
      let finally = if eat_kw st "finally" then Some (parse_block st) else None in
      if catch = None && finally = None then
        Lexkit.error (pos st) "try without catch or finally";
      Try (body, catch, finally)
  | Token.Kw "throw" ->
      advance st;
      let e = parse_expression st in
      ignore (eat_punct st ";");
      Throw e
  | _ ->
      let e = parse_expression st in
      ignore (eat_punct st ";");
      Expr e

and parse_for st =
  (* "for (" has been consumed. *)
  let var_kw =
    match peek st with
    | Token.Kw ("var" | "let" | "const") ->
        advance st;
        true
    | _ -> false
  in
  (* Distinguish for-in / for-of from classic for. *)
  match (peek st, st.toks) with
  | Token.Ident name, _ :: { Token.tok = Token.Kw ("in" | "of"); _ } :: _ ->
      advance st;
      advance st;
      let obj = parse_expression st in
      expect_punct st ")";
      ForIn (var_kw, name, obj, parse_stmt_list_or_single st)
  | _ ->
      let init =
        if Token.equal (peek st) (Token.Punct ";") then None
        else if var_kw then Some (parse_var_decl st)
        else Some (Expr (parse_expression st))
      in
      expect_punct st ";";
      let cond =
        if Token.equal (peek st) (Token.Punct ";") then None
        else Some (parse_expression st)
      in
      expect_punct st ";";
      let step =
        if Token.equal (peek st) (Token.Punct ")") then None
        else Some (parse_expression st)
      in
      expect_punct st ")";
      For (init, cond, step, parse_stmt_list_or_single st)

let parse src =
  let st = make_state src in
  let rec go acc =
    match peek st with
    | Token.Eof -> List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

let parse_expr src =
  let st = make_state src in
  let e = parse_expression st in
  (match peek st with
  | Token.Eof -> ()
  | t -> Lexkit.error (pos st) "trailing input: %s" (Token.to_string t));
  e
