open Syntax

type state = { mutable toks : Token.spanned list; guard : Lexkit.Guard.t }

let peek st = match st.toks with [] -> Token.Eof | { tok; _ } :: _ -> tok

let peek2 st =
  match st.toks with _ :: { tok; _ } :: _ -> tok | _ -> Token.Eof

let pos st =
  match st.toks with [] -> Lexkit.start_pos | { pos; _ } :: _ -> pos

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t =
  if Token.equal (peek st) t then advance st
  else
    Lexkit.error (pos st) "expected %s but found %s" (Token.to_string t)
      (Token.to_string (peek st))

let eat st t =
  if Token.equal (peek st) t then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match peek st with
  | Token.Ident id ->
      advance st;
      id
  | t -> Lexkit.error (pos st) "expected identifier, found %s" (Token.to_string t)

let aug_ops = [ "+="; "-="; "*="; "/="; "%=" ]

(* Depth/step guard around the recursion points of the grammar.
   Exception-safe so a thrown parse doesn't leak depth. *)
let guarded st f =
  Lexkit.Guard.enter st.guard (pos st);
  match f () with
  | v ->
      Lexkit.Guard.leave st.guard;
      v
  | exception e ->
      Lexkit.Guard.leave st.guard;
      raise e

let make_state src =
  { toks = Lexer.tokenize src; guard = Lexkit.Guard.create () }

(* ---------- expressions ---------- *)

let rec parse_expression st = parse_or st

and parse_or st =
  guarded st @@ fun () ->
  let lhs = ref (parse_and st) in
  while eat st (Token.Kw "or") do
    lhs := BoolOp ("or", !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while eat st (Token.Kw "and") do
    lhs := BoolOp ("and", !lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  guarded st @@ fun () ->
  if eat st (Token.Kw "not") then Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let lhs = parse_arith st in
  let op =
    match peek st with
    | Token.Punct (("==" | "!=" | "<" | ">" | "<=" | ">=") as op) ->
        advance st;
        Some op
    | Token.Kw "in" ->
        advance st;
        Some "in"
    | Token.Kw "not" when Token.equal (peek2 st) (Token.Kw "in") ->
        advance st;
        advance st;
        Some "not in"
    | Token.Kw "is" ->
        advance st;
        if eat st (Token.Kw "not") then Some "is not" else Some "is"
    | _ -> None
  in
  match op with
  | Some op -> Compare (op, lhs, parse_arith st)
  | None -> lhs

and parse_arith st =
  let lhs = ref (parse_term st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Punct (("+" | "-") as op) ->
        advance st;
        lhs := BinOp (op, !lhs, parse_term st)
    | _ -> continue := false
  done;
  !lhs

and parse_term st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Punct (("*" | "/" | "%" | "//" | "**") as op) ->
        advance st;
        lhs := BinOp (op, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  guarded st @@ fun () ->
  if eat st (Token.Punct "-") then Neg (parse_unary st) else parse_postfix st

and parse_postfix st =
  let e = ref (parse_atom st) in
  let continue = ref true in
  while !continue do
    if eat st (Token.Punct ".") then e := Attribute (!e, expect_ident st)
    else if eat st (Token.Punct "(") then begin
      let args, kwargs = parse_call_args st in
      e := Call (!e, args, kwargs)
    end
    else if eat st (Token.Punct "[") then begin
      let i = parse_expression st in
      expect st (Token.Punct "]");
      e := Subscript (!e, i)
    end
    else continue := false
  done;
  !e

and parse_call_args st =
  if eat st (Token.Punct ")") then ([], [])
  else begin
    let args = ref [] and kwargs = ref [] in
    let rec go () =
      (match (peek st, peek2 st) with
      | Token.Ident k, Token.Punct "=" ->
          advance st;
          advance st;
          kwargs := (k, parse_expression st) :: !kwargs
      | _ -> args := parse_expression st :: !args);
      if eat st (Token.Punct ",") then go () else expect st (Token.Punct ")")
    in
    go ();
    (List.rev !args, List.rev !kwargs)
  end

and parse_atom st =
  match peek st with
  | Token.Num n ->
      advance st;
      Num n
  | Token.Str s ->
      advance st;
      Str s
  | Token.Ident id ->
      advance st;
      Ident id
  | Token.Kw "True" ->
      advance st;
      Bool true
  | Token.Kw "False" ->
      advance st;
      Bool false
  | Token.Kw "None" ->
      advance st;
      NoneLit
  | Token.Punct "(" ->
      advance st;
      if eat st (Token.Punct ")") then TupleLit []
      else begin
        let e = parse_expression st in
        if Token.equal (peek st) (Token.Punct ",") then begin
          let es = ref [ e ] in
          while eat st (Token.Punct ",") do
            if not (Token.equal (peek st) (Token.Punct ")")) then
              es := parse_expression st :: !es
          done;
          expect st (Token.Punct ")");
          TupleLit (List.rev !es)
        end
        else begin
          expect st (Token.Punct ")");
          e
        end
      end
  | Token.Punct "[" ->
      advance st;
      if eat st (Token.Punct "]") then ListLit []
      else begin
        let rec go acc =
          let e = parse_expression st in
          if eat st (Token.Punct ",") then go (e :: acc)
          else begin
            expect st (Token.Punct "]");
            List.rev (e :: acc)
          end
        in
        ListLit (go [])
      end
  | Token.Punct "{" ->
      advance st;
      if eat st (Token.Punct "}") then DictLit []
      else begin
        let rec go acc =
          let k = parse_expression st in
          expect st (Token.Punct ":");
          let v = parse_expression st in
          if eat st (Token.Punct ",") then go ((k, v) :: acc)
          else begin
            expect st (Token.Punct "}");
            List.rev ((k, v) :: acc)
          end
        in
        DictLit (go [])
      end
  | t -> Lexkit.error (pos st) "unexpected token %s" (Token.to_string t)

(* Assignment/for targets: postfix-level expressions (no [in] operator),
   possibly a bare comma tuple. *)
and parse_target_list st =
  let e = parse_postfix st in
  if Token.equal (peek st) (Token.Punct ",") then begin
    let es = ref [ e ] in
    while eat st (Token.Punct ",") do
      es := parse_postfix st :: !es
    done;
    TupleLit (List.rev !es)
  end
  else e

(* Expression possibly followed by a bare tuple: [a, b, c]. *)
and parse_expr_list st =
  let e = parse_expression st in
  if Token.equal (peek st) (Token.Punct ",") then begin
    let es = ref [ e ] in
    while eat st (Token.Punct ",") do
      es := parse_expression st :: !es
    done;
    TupleLit (List.rev !es)
  end
  else e

(* ---------- statements ---------- *)

let rec parse_suite st =
  expect st Token.Newline;
  expect st Token.Indent;
  let rec go acc =
    if eat st Token.Dedent then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  guarded st @@ fun () ->
  match peek st with
  | Token.Kw "def" ->
      advance st;
      let name = expect_ident st in
      expect st (Token.Punct "(");
      let params =
        if eat st (Token.Punct ")") then []
        else begin
          let rec go acc =
            let p = expect_ident st in
            if eat st (Token.Punct ",") then go (p :: acc)
            else begin
              expect st (Token.Punct ")");
              List.rev (p :: acc)
            end
          in
          go []
        end
      in
      expect st (Token.Punct ":");
      FuncDef (name, params, parse_suite st)
  | Token.Kw "if" ->
      advance st;
      let c = parse_expression st in
      expect st (Token.Punct ":");
      let body = parse_suite st in
      let rec elifs acc =
        if eat st (Token.Kw "elif") then begin
          let c' = parse_expression st in
          expect st (Token.Punct ":");
          let b' = parse_suite st in
          elifs ((c', b') :: acc)
        end
        else List.rev acc
      in
      let chain = (c, body) :: elifs [] in
      let orelse =
        if eat st (Token.Kw "else") then begin
          expect st (Token.Punct ":");
          Some (parse_suite st)
        end
        else None
      in
      If (chain, orelse)
  | Token.Kw "while" ->
      advance st;
      let c = parse_expression st in
      expect st (Token.Punct ":");
      While (c, parse_suite st)
  | Token.Kw "for" ->
      advance st;
      let target = parse_target_list st in
      expect st (Token.Kw "in");
      let it = parse_expr_list st in
      expect st (Token.Punct ":");
      For (target, it, parse_suite st)
  | Token.Kw "try" ->
      advance st;
      expect st (Token.Punct ":");
      let body = parse_suite st in
      let rec handlers acc =
        if eat st (Token.Kw "except") then begin
          let ty =
            if Token.equal (peek st) (Token.Punct ":") then None
            else Some (parse_expression st)
          in
          let name =
            if eat st (Token.Kw "as") then Some (expect_ident st) else None
          in
          expect st (Token.Punct ":");
          handlers ({ h_type = ty; h_name = name; h_body = parse_suite st } :: acc)
        end
        else List.rev acc
      in
      let hs = handlers [] in
      let fin =
        if eat st (Token.Kw "finally") then begin
          expect st (Token.Punct ":");
          Some (parse_suite st)
        end
        else None
      in
      if hs = [] && fin = None then
        Lexkit.error (pos st) "try without except or finally";
      Try (body, hs, fin)
  | Token.Kw "return" ->
      advance st;
      let e =
        if Token.equal (peek st) Token.Newline then None
        else Some (parse_expr_list st)
      in
      expect st Token.Newline;
      Return e
  | Token.Kw "raise" ->
      advance st;
      let e =
        if Token.equal (peek st) Token.Newline then None
        else Some (parse_expression st)
      in
      expect st Token.Newline;
      Raise e
  | Token.Kw "pass" ->
      advance st;
      expect st Token.Newline;
      Pass
  | Token.Kw "break" ->
      advance st;
      expect st Token.Newline;
      Break
  | Token.Kw "continue" ->
      advance st;
      expect st Token.Newline;
      Continue
  | Token.Kw "import" ->
      advance st;
      let rec dotted acc =
        let id = expect_ident st in
        if eat st (Token.Punct ".") then dotted (id :: acc)
        else List.rev (id :: acc)
      in
      let path = dotted [] in
      expect st Token.Newline;
      Import path
  | Token.Kw "from" ->
      advance st;
      let rec dotted acc =
        let id = expect_ident st in
        if eat st (Token.Punct ".") then dotted (id :: acc)
        else List.rev (id :: acc)
      in
      let path = dotted [] in
      expect st (Token.Kw "import");
      let rec names acc =
        let n = expect_ident st in
        if eat st (Token.Punct ",") then names (n :: acc)
        else List.rev (n :: acc)
      in
      let ns = names [] in
      expect st Token.Newline;
      Import (path @ ns)
  | _ ->
      let target = parse_expr_list st in
      let s =
        match peek st with
        | Token.Punct "=" ->
            advance st;
            Assign (target, parse_expr_list st)
        | Token.Punct op when List.mem op aug_ops ->
            advance st;
            AugAssign (op, target, parse_expr_list st)
        | _ -> ExprStmt target
      in
      expect st Token.Newline;
      s

let parse src =
  let st = make_state src in
  let rec go acc =
    match peek st with
    | Token.Eof -> List.rev acc
    | Token.Newline ->
        advance st;
        go acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

let parse_expr src =
  let st = make_state src in
  let e = parse_expr_list st in
  (match peek st with
  | Token.Eof | Token.Newline -> ()
  | t -> Lexkit.error (pos st) "trailing input: %s" (Token.to_string t));
  e
