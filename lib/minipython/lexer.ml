open Lexkit

let puncts =
  [
    "**"; "//"; "=="; "!="; "<="; ">="; "+="; "-="; "*="; "/="; "%="; "->";
    "<"; ">"; "+"; "-"; "*"; "/"; "%"; "="; "("; ")"; "["; "]"; "{"; "}";
    ","; ":"; "."; ";"; "@"; "&"; "|"; "^"; "~";
  ]

let tokenize src =
  check_input_size src;
  let cur = Cursor.make src in
  let toks = ref [] in
  let emit tok pos = toks := { Token.tok; pos } :: !toks in
  let indents = ref [ 0 ] in
  let bracket_depth = ref 0 in
  let at_line_start = ref true in
  let starts_with_at off p =
    let n = String.length p in
    off + n <= String.length src && String.sub src off n = p
  in
  let rec handle_line_start () =
    (* Measure indentation; skip blank / comment-only lines. *)
    let pos0 = Cursor.pos cur in
    let spaces = Cursor.take_while cur (fun c -> c = ' ') in
    match Cursor.peek cur with
    | None -> ()
    | Some '\n' | Some '\r' ->
        Cursor.advance cur;
        handle_line_start ()
    | Some '#' ->
        Cursor.skip_while cur (fun c -> c <> '\n');
        handle_line_start ()
    | Some '\t' -> error (Cursor.pos cur) "tabs are not supported; use spaces"
    | Some _ ->
        let width = String.length spaces in
        let top () = List.hd !indents in
        if width > top () then begin
          indents := width :: !indents;
          emit Token.Indent pos0
        end
        else
          while width < top () do
            indents := List.tl !indents;
            if width > top () then
              error pos0 "inconsistent dedent to column %d" width;
            emit Token.Dedent pos0
          done
  in
  (* Progress guarantee: every loop iteration must consume input. *)
  let last_off = ref (-1) in
  let rec go () =
    if !at_line_start && !bracket_depth = 0 then begin
      at_line_start := false;
      handle_line_start ()
    end;
    Cursor.skip_while cur (fun c -> c = ' ' || c = '\t');
    let pos = Cursor.pos cur in
    if pos.offset = !last_off then
      error pos "lexer made no progress (internal invariant)";
    last_off := pos.offset;
    match Cursor.peek cur with
    | None ->
        (* final newline for an unterminated last line *)
        (match !toks with
        | { Token.tok = Token.Newline; _ } :: _ | [] -> ()
        | _ -> emit Token.Newline pos);
        List.iter
          (fun _ -> emit Token.Dedent pos)
          (List.tl !indents);
        indents := [ 0 ];
        emit Token.Eof pos
    | Some '#' ->
        Cursor.skip_while cur (fun c -> c <> '\n');
        go ()
    | Some ('\n' | '\r') ->
        Cursor.advance cur;
        if !bracket_depth = 0 then begin
          (match !toks with
          | { Token.tok = Token.Newline; _ } :: _ | [] -> ()
          | { Token.tok = Token.Indent; _ } :: _ -> ()
          | _ -> emit Token.Newline pos);
          at_line_start := true
        end;
        go ()
    | Some '\\' when Cursor.peek2 cur = Some '\n' ->
        Cursor.advance cur;
        Cursor.advance cur;
        go ()
    | Some c when is_ident_start c ->
        let id = Cursor.take_while cur is_ident_char in
        emit (if Token.is_keyword id then Token.Kw id else Token.Ident id) pos;
        go ()
    | Some c when is_digit c ->
        emit (Token.Num (lex_number cur)) pos;
        go ()
    | Some (('"' | '\'') as q) ->
        Cursor.advance cur;
        emit (Token.Str (lex_string_literal cur ~quote:q)) pos;
        go ()
    | Some c -> (
        match List.find_opt (starts_with_at pos.offset) puncts with
        | Some p ->
            String.iter (fun _ -> Cursor.advance cur) p;
            (match p with
            | "(" | "[" | "{" -> incr bracket_depth
            | ")" | "]" | "}" -> decr bracket_depth
            | _ -> ());
            emit (Token.Punct p) pos;
            go ()
        | None -> error pos "unexpected character %C" c)
  in
  go ();
  List.rev !toks

let token_values src =
  List.filter_map
    (fun { Token.tok; _ } ->
      match tok with
      | Token.Eof | Token.Newline | Token.Indent | Token.Dedent -> None
      | t -> Some (Token.to_string t))
    (tokenize src)
