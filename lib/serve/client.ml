(* A tiny synchronous client for the serve protocol: one connection,
   send a request line, read one reply line. Used by the CLI `client`
   subcommand, the bench driver, and the isolation tests. *)

type t = { fd : Unix.file_descr; lr : Netio.line_reader }

let connect_fd fd = { fd; lr = Netio.line_reader fd }

let connect_unix path =
  Netio.ignore_sigpipe ();
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> connect_fd fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let connect_tcp host port =
  Netio.ignore_sigpipe ();
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
  | () -> connect_fd fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let send_line t line = Netio.write_line t.fd line

let recv_line t =
  match Netio.read_line t.lr with
  | Netio.Line l -> Some l
  | Netio.Eof | Netio.Overflow -> None

(* One round-trip. [None] when the server closed the connection
   without replying. *)
let request t line =
  send_line t line;
  recv_line t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
