(* A tiny synchronous client for the serve protocol: one connection,
   send a request line, read one reply line. Used by the CLI `client`
   subcommand, the bench driver, the chaos harness, and the isolation
   tests.

   Robustness: connects can be bounded ([connect_timeout], a
   non-blocking connect + select) and retried with exponential backoff
   plus jitter ([retry]); reads can be bounded ([read_timeout]).
   Retrying a *connect* is always safe — no request bytes have been
   sent. Retrying a full round-trip is NOT done here: the server may
   have executed a request whose reply was lost, so replaying is only
   sound for idempotent ops (predict/similar/ping/stats are; shutdown
   and reload are too in effect, but a caller that replays anything
   else owns the consequences). [with_retries] is exposed so callers
   can make that call explicitly. *)

type t = { fd : Unix.file_descr; lr : Netio.line_reader }

type retry = {
  attempts : int;  (** total tries, including the first *)
  base_delay : float;  (** seconds before the second try *)
  max_delay : float;  (** backoff ceiling *)
  jitter : float;  (** 0..1: delay is scaled by 1 ± jitter/2 *)
}

let default_retry =
  { attempts = 4; base_delay = 0.05; max_delay = 1.0; jitter = 0.5 }

let no_retry = { default_retry with attempts = 1 }

(* Transient transport failures: the peer may be about to exist
   (daemon starting: ENOENT/ECONNREFUSED), briefly gone (restart:
   ECONNRESET), or slow (ETIMEDOUT). Anything else — bad address,
   permission, a protocol bug — retries would only repeat. *)
let transient = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED
        | Unix.ENETUNREACH | Unix.EHOSTUNREACH | Unix.ETIMEDOUT | Unix.EAGAIN
        | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.ENOENT | Unix.EINTR ),
        _,
        _ ) ->
      true
  | _ -> false

let jitter_state = lazy (Random.State.make_self_init ())

let with_retries ?(retry = default_retry) f =
  let attempts = max 1 retry.attempts in
  let rec go i =
    match f () with
    | v -> v
    | exception e when i < attempts && transient e ->
        let exp_delay =
          retry.base_delay *. (2. ** float_of_int (i - 1))
        in
        let capped = Float.min retry.max_delay exp_delay in
        let scale =
          (* 1 ± jitter/2: desynchronizes a thundering herd of
             retrying clients without changing the order of
             magnitude. *)
          let j = Float.max 0. (Float.min 1. retry.jitter) in
          1. -. (j /. 2.)
          +. (j *. Random.State.float (Lazy.force jitter_state) 1.0)
        in
        Thread.delay (capped *. scale);
        go (i + 1)
  in
  go 1

let connect_fd ?read_timeout fd =
  { fd; lr = Netio.line_reader ?idle_timeout:read_timeout fd }

(* Bounded connect: non-blocking connect, select for writability, then
   read the socket error back. Restores blocking mode. *)
let connect_bounded fd addr timeout =
  match timeout with
  | None -> Unix.connect fd addr
  | Some tmo -> (
      Unix.set_nonblock fd;
      let finish () =
        match Unix.select [] [ fd ] [] tmo with
        | _, _ :: _, _ -> (
            match Unix.getsockopt_error fd with
            | None -> ()
            | Some err -> raise (Unix.Unix_error (err, "connect", "")))
        | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
      in
      (match Unix.connect fd addr with
      | () -> ()
      | exception
          Unix.Unix_error
            ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          finish ());
      Unix.clear_nonblock fd)

type endpoint = Unix_sock of string | Tcp of string * int

let resolve = function
  | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      (Unix.PF_INET, Unix.ADDR_INET (addr, port))

let connect ?connect_timeout ?read_timeout ?(retry = no_retry) endpoint =
  Netio.ignore_sigpipe ();
  let domain, addr = resolve endpoint in
  with_retries ~retry (fun () ->
      let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
      match connect_bounded fd addr connect_timeout with
      | () -> connect_fd ?read_timeout fd
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e)

let connect_unix ?connect_timeout ?read_timeout ?retry path =
  connect ?connect_timeout ?read_timeout ?retry (Unix_sock path)

let connect_tcp ?connect_timeout ?read_timeout ?retry host port =
  connect ?connect_timeout ?read_timeout ?retry (Tcp (host, port))

let send_line t line = Netio.write_line t.fd line

let recv_line t =
  match Netio.read_line t.lr with
  | Netio.Line l -> Some l
  | Netio.Eof | Netio.Overflow -> None
  | Netio.Timeout ->
      raise (Unix.Unix_error (Unix.ETIMEDOUT, "recv_line", ""))

(* One round-trip. [None] when the server closed the connection
   without replying; raises ETIMEDOUT past the read timeout.

   EPIPE mid-send means the server gave up on this connection while we
   were still writing (e.g. it rejected an oversized line and closed)
   — its parting structured error is usually already buffered on our
   side, so read it rather than losing it to the exception. *)
let request t line =
  (match send_line t line with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  recv_line t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
