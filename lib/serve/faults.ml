(* Deterministic fault injection (see the .mli). Counter-based rather
   than random so a chaos run with a fixed request schedule injects
   the same faults every time. *)

type t = {
  pre_batch_delay_ms : int;
  engine_error_every : int;
  torn_reply_every : int;
  accept_drop_every : int;
}

let disabled =
  {
    pre_batch_delay_ms = 0;
    engine_error_every = 0;
    torn_reply_every = 0;
    accept_drop_every = 0;
  }

let enabled f = f <> disabled

let of_string s =
  let parse_pair acc pair =
    match acc with
    | Error _ -> acc
    | Ok cfg -> (
        match String.index_opt pair '=' with
        | None -> Error (Printf.sprintf "fault knob %S is not key=int" pair)
        | Some i -> (
            let key = String.sub pair 0 i in
            let value = String.sub pair (i + 1) (String.length pair - i - 1) in
            match int_of_string_opt value with
            | None -> Error (Printf.sprintf "fault knob %S: %S is not an int" key value)
            | Some n when n < 0 ->
                Error (Printf.sprintf "fault knob %S: %d is negative" key n)
            | Some n -> (
                match key with
                | "delay_ms" -> Ok { cfg with pre_batch_delay_ms = n }
                | "engine_every" -> Ok { cfg with engine_error_every = n }
                | "torn_every" -> Ok { cfg with torn_reply_every = n }
                | "drop_every" -> Ok { cfg with accept_drop_every = n }
                | _ -> Error (Printf.sprintf "unknown fault knob %S" key))))
  in
  String.split_on_char ',' s
  |> List.filter (fun p -> String.trim p <> "")
  |> List.map String.trim
  |> List.fold_left parse_pair (Ok disabled)

let of_env () =
  match Sys.getenv_opt "PIGEON_FAULTS" with
  | None | Some "" -> Ok disabled
  | Some s -> of_string s

type state = {
  cfg : t;
  m : Mutex.t;
  mutable n_engine : int;
  mutable n_torn : int;
  mutable n_accept : int;
}

let state cfg = { cfg; m = Mutex.create (); n_engine = 0; n_torn = 0; n_accept = 0 }

type kind = Engine_error | Torn_reply | Accept_drop

let fire st kind =
  Mutex.lock st.m;
  let hit =
    let count every get set =
      if every <= 0 then false
      else begin
        let n = get () + 1 in
        set n;
        n mod every = 0
      end
    in
    match kind with
    | Engine_error ->
        count st.cfg.engine_error_every
          (fun () -> st.n_engine)
          (fun n -> st.n_engine <- n)
    | Torn_reply ->
        count st.cfg.torn_reply_every
          (fun () -> st.n_torn)
          (fun n -> st.n_torn <- n)
    | Accept_drop ->
        count st.cfg.accept_drop_every
          (fun () -> st.n_accept)
          (fun n -> st.n_accept <- n)
  in
  Mutex.unlock st.m;
  hit

let pre_batch_delay st =
  if st.cfg.pre_batch_delay_ms > 0 then
    Thread.delay (float_of_int st.cfg.pre_batch_delay_ms /. 1000.)
