(* Socket plumbing shared by the server and client: EINTR-safe reads
   and writes, a bounded line reader, and SIGPIPE suppression.

   A disconnecting client must never kill the daemon: SIGPIPE is
   ignored process-wide (writes then fail with EPIPE, which the server
   turns into "drop this connection"), and every syscall retries on
   EINTR so signal delivery (SIGCHLD in the CI harness, profiling
   timers) cannot surface as a spurious I/O error mid-request. *)

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) ->
      (* No SIGPIPE on this platform: nothing to suppress. *)
      ()

let rec write_all fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len

(* One request or reply: the payload plus the terminating newline in a
   single buffer, so a line is one write call on the fast path. *)
let write_line fd s =
  let len = String.length s in
  let b = Bytes.create (len + 1) in
  Bytes.blit_string s 0 b 0 len;
  Bytes.set b len '\n';
  write_all fd b 0 (len + 1)

let rec read_once fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once fd buf
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      (* A vanished peer reads as end-of-stream, not as an error. *)
      0

type line = Line of string | Eof | Overflow

type line_reader = {
  fd : Unix.file_descr;
  max_line : int;
  chunk : Bytes.t;
  mutable pending : Buffer.t;  (** bytes read but not yet consumed *)
  mutable scanned : int;  (** prefix of [pending] known to be '\n'-free *)
}

let line_reader ?(max_line = 16 * 1024 * 1024) fd =
  { fd; max_line; chunk = Bytes.create 65536; pending = Buffer.create 4096;
    scanned = 0 }

(* Pull the next newline-terminated line (without its '\n'; a final
   unterminated line before EOF counts as a line). [Overflow] when a
   single line exceeds [max_line] — the stream is no longer in sync
   with line framing at that point, so callers should answer once and
   close. *)
let read_line r =
  let take_line nl =
    let all = Buffer.contents r.pending in
    let line = String.sub all 0 nl in
    let rest = Buffer.create 4096 in
    (* nl = length means an unterminated final line: nothing left over. *)
    if nl + 1 < String.length all then
      Buffer.add_substring rest all (nl + 1) (String.length all - nl - 1);
    r.pending <- rest;
    r.scanned <- 0;
    Line line
  in
  let rec scan () =
    let all = Buffer.contents r.pending in
    match String.index_from_opt all r.scanned '\n' with
    | Some nl -> take_line nl
    | None ->
        r.scanned <- String.length all;
        if r.scanned > r.max_line then Overflow
        else begin
          match read_once r.fd r.chunk with
          | 0 ->
              if Buffer.length r.pending = 0 then Eof
              else take_line (Buffer.length r.pending)
          | n ->
              Buffer.add_subbytes r.pending r.chunk 0 n;
              scan ()
        end
  in
  scan ()
