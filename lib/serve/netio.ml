(* Socket plumbing shared by the server and client: EINTR-safe reads
   and writes, a bounded line reader with an optional idle timeout,
   and SIGPIPE suppression.

   A disconnecting client must never kill the daemon: SIGPIPE is
   ignored process-wide (writes then fail with EPIPE, which the server
   turns into "drop this connection"), and every syscall retries on
   EINTR so signal delivery (SIGCHLD in the CI harness, profiling
   timers) cannot surface as a spurious I/O error mid-request.

   Timeouts are select-based, so they work on blocking and
   non-blocking fds alike: before each potentially-blocking syscall we
   wait for readiness with a bounded select, and EAGAIN/EWOULDBLOCK
   from a non-blocking fd just loops back into the wait. A timeout on
   the read side surfaces as the [Timeout] line result (the connection
   is idle beyond its budget); on the write side it raises
   [Unix.Unix_error (ETIMEDOUT, …)] (the peer is not draining, which
   callers treat like a dead peer). *)

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) ->
      (* No SIGPIPE on this platform: nothing to suppress. *)
      ()

(* [true] once [fd] is ready, [false] when [timeout] (seconds) elapsed
   first. [None] waits forever. The deadline is absolute, so EINTR
   wake-ups do not extend it. *)
let wait_ready ~write fd timeout =
  let fds = [ fd ] in
  let sel t =
    let r, w =
      if write then ([], fds) else (fds, [])
    in
    match Unix.select r w [] t with
    | [], [], _ -> false
    | _ -> true
  in
  match timeout with
  | None ->
      let rec forever () =
        match sel (-1.) with
        | ready -> ready || forever ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> forever ()
      in
      forever ()
  | Some tmo ->
      let deadline = Unix.gettimeofday () +. tmo in
      let rec until () =
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0. then false
        else
          match sel left with
          | ready -> ready
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> until ()
      in
      until ()

let write_all ?timeout fd buf off len =
  let rec go off len =
    if len > 0 then begin
      (match timeout with
      | Some _ when not (wait_ready ~write:true fd timeout) ->
          raise (Unix.Unix_error (Unix.ETIMEDOUT, "write", ""))
      | _ -> ());
      match Unix.write fd buf off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* Non-blocking fd raced past the readiness check (or no
             timeout was given and the fd is non-blocking): wait. *)
          if wait_ready ~write:true fd timeout then go off len
          else raise (Unix.Unix_error (Unix.ETIMEDOUT, "write", ""))
    end
  in
  go off len

(* One request or reply: the payload plus the terminating newline in a
   single buffer, so a line is one write call on the fast path. *)
let write_line ?timeout fd s =
  let len = String.length s in
  let b = Bytes.create (len + 1) in
  Bytes.blit_string s 0 b 0 len;
  Bytes.set b len '\n';
  write_all ?timeout fd b 0 (len + 1)

type line = Line of string | Eof | Overflow | Timeout

type line_reader = {
  fd : Unix.file_descr;
  max_line : int;
  idle_timeout : float option;
  chunk : Bytes.t;
  mutable pending : Buffer.t;  (** bytes read but not yet consumed *)
  mutable scanned : int;  (** prefix of [pending] known to be '\n'-free *)
}

let line_reader ?(max_line = 16 * 1024 * 1024) ?idle_timeout fd =
  let idle_timeout =
    match idle_timeout with Some t when t <= 0. -> None | t -> t
  in
  { fd; max_line; idle_timeout; chunk = Bytes.create 65536;
    pending = Buffer.create 4096; scanned = 0 }

type read_result = Read of int | Closed | Timed_out

(* One chunk of input, waiting at most the reader's idle budget for
   the first byte. The budget is per blocking wait: any arriving byte
   resets it, which is what "idle" means. *)
let read_some r =
  let rec go () =
    if not (wait_ready ~write:false r.fd r.idle_timeout) then Timed_out
    else
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 -> Closed
      | n -> Read n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          go ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          (* A vanished peer reads as end-of-stream, not as an error. *)
          Closed
  in
  go ()

(* Pull the next newline-terminated line (without its '\n'; a final
   unterminated line before EOF counts as a line). [Overflow] when a
   single line exceeds [max_line] — the stream is no longer in sync
   with line framing at that point, so callers must answer once (at
   most) and close; further calls keep returning [Overflow]. [Timeout]
   when the connection stayed silent beyond the idle budget (possibly
   mid-line: a slow-writer peer does not get to park a reader forever
   by trickling bytes — each wait is bounded). *)
let read_line r =
  let take_line nl =
    let all = Buffer.contents r.pending in
    let line = String.sub all 0 nl in
    let rest = Buffer.create 4096 in
    (* nl = length means an unterminated final line: nothing left over. *)
    if nl + 1 < String.length all then
      Buffer.add_substring rest all (nl + 1) (String.length all - nl - 1);
    r.pending <- rest;
    r.scanned <- 0;
    Line line
  in
  let rec scan () =
    let all = Buffer.contents r.pending in
    match String.index_from_opt all r.scanned '\n' with
    | Some nl -> take_line nl
    | None ->
        r.scanned <- String.length all;
        if r.scanned > r.max_line then Overflow
        else begin
          match read_some r with
          | Timed_out -> Timeout
          | Closed ->
              if Buffer.length r.pending = 0 then Eof
              else take_line (Buffer.length r.pending)
          | Read n ->
              Buffer.add_subbytes r.pending r.chunk 0 n;
              scan ()
        end
  in
  scan ()
