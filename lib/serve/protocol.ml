(* The serve wire protocol: newline-delimited JSON, one request object
   in, one reply object out, in order, per connection. Documented in
   DESIGN.md §12.

   Requests ("op" defaults to "predict" when a "code" field is
   present):

     {"op":"predict","id":1,"lang":"JavaScript","code":"..."}
     {"op":"similar","id":2,"word":"count","k":5}
     {"op":"ping","id":3}
     {"op":"stats","id":4}
     {"op":"shutdown","id":5}

   Edit sessions (the editor workload): "session" names a buffer,
   default "default", scoped to the requesting connection. "open"
   parses the buffer, predicts, and seeds the session's incremental
   extraction cache; each "edit" carries the FULL new buffer and
   predicts through the cache (unchanged subtrees replay instead of
   re-extracting); "close" drops the session. Session predict replies
   are the one-shot predict reply plus a trailing "session" field.

     {"op":"open","id":6,"session":"a.js","lang":"JavaScript","code":"..."}
     {"op":"edit","id":7,"session":"a.js","code":"..."}
     {"op":"close","id":8,"session":"a.js"}

   "predict" and "similar" take an optional "model" field naming a
   registry entry; absent means the default model. The "reload" admin
   op has four forms, told apart by their fields:

     {"op":"reload"}                          re-read the default
     {"op":"reload","model":P,"w2v":P}        default from new paths
     {"op":"reload","name":N,...}             load/replace entry N
     {"op":"reload","unload":N}               drop entry N
     {"op":"reload","set_default":N}          make entry N the default

   Replies echo the request's "id" (null when absent) and carry
   "ok":true with the result, or "ok":false with a structured error:

     {"id":1,"ok":true,"lang":"JavaScript","count":2,
      "predictions":[{"var":"a","name":"count"},...]}
     {"id":1,"ok":false,"error":{"kind":"size-limit","msg":"...",
      "line":1,"col":1}}

   Error kinds are the Lexkit.Diag kinds (parse-error, depth-limit,
   size-limit, io-error, corrupt-model) plus "bad-request" (malformed
   JSON, missing field, unknown language or op), "internal" (an
   unclassified exception — the daemon answers and stays up),
   "overloaded" (the request was shed: queue bound or connection cap
   reached — retry later, the daemon is healthy), "timeout" (the
   connection sat idle beyond its budget and is being closed), and
   "no-session" (an edit/close named a session this connection never
   opened, or one already closed or evicted). *)

type error = { kind : string; msg : string; pos : Lexkit.pos option }

let bad_request fmt =
  Printf.ksprintf (fun msg -> { kind = "bad-request"; msg; pos = None }) fmt

let overloaded fmt =
  Printf.ksprintf (fun msg -> { kind = "overloaded"; msg; pos = None }) fmt

let timeout fmt =
  Printf.ksprintf (fun msg -> { kind = "timeout"; msg; pos = None }) fmt

let no_session fmt =
  Printf.ksprintf (fun msg -> { kind = "no-session"; msg; pos = None }) fmt

let internal_error msg = { kind = "internal"; msg; pos = None }

let error_of_diag (d : Lexkit.Diag.t) =
  { kind = Lexkit.Diag.kind_name d.Lexkit.Diag.kind;
    msg = d.Lexkit.Diag.msg;
    pos = d.Lexkit.Diag.pos }

type reload_form =
  | Load of { name : string option; model : string option; w2v : string option }
  | Unload of string
  | Set_default of string

type request =
  | Predict of { id : Json.t; lang : string; code : string; model : string option }
  | Similar of { id : Json.t; word : string; k : int; model : string option }
  | Ping of { id : Json.t }
  | Stats of { id : Json.t }
  | Reload of { id : Json.t; form : reload_form }
  | Shutdown of { id : Json.t }
  | Open of {
      id : Json.t;
      name : string;
      lang : string;
      code : string;
      model : string option;
    }
  | Edit of { id : Json.t; name : string; code : string }
  | Close of { id : Json.t; name : string }

let request_id = function
  | Predict { id; _ } | Similar { id; _ } | Ping { id } | Stats { id }
  | Reload { id; _ }
  | Shutdown { id }
  | Open { id; _ }
  | Edit { id; _ }
  | Close { id; _ } ->
      id

(* [Error (id, err)] echoes the request's id when the line parsed far
   enough to have one. *)
let request_of_line line =
  match Json.parse line with
  | Error msg -> Error (Json.Null, bad_request "malformed JSON: %s" msg)
  | Ok json -> (
      let id = Option.value ~default:Json.Null (Json.member "id" json) in
      let str_field name =
        match Json.string_field name json with
        | Some s -> Ok s
        | None -> Error (id, bad_request "missing string field %S" name)
      in
      let op =
        match Json.string_field "op" json with
        | Some op -> op
        | None -> (
            (* Implicit op: a bare {"lang":..,"code":..} is a predict. *)
            match Json.member "code" json with
            | Some _ -> "predict"
            | None -> "")
      in
      match op with
      | "predict" -> (
          match (str_field "lang", str_field "code") with
          | Ok lang, Ok code ->
              Ok
                (Predict
                   { id; lang; code; model = Json.string_field "model" json })
          | Error e, _ | _, Error e -> Error e)
      | "similar" -> (
          match str_field "word" with
          | Error e -> Error e
          | Ok word ->
              let k =
                match Json.int_field "k" json with Some k -> k | None -> 5
              in
              if k < 1 || k > 1000 then
                Error (id, bad_request "k must be in [1, 1000]")
              else
                Ok
                  (Similar
                     { id; word; k; model = Json.string_field "model" json }))
      | "open" -> (
          (* Edit sessions: "session" names the buffer (default
             "default"), scoped to this connection. [open] parses the
             initial buffer, predicts, and seeds the session's
             incremental-extraction cache; each [edit] carries the full
             new buffer and predicts through the cache; [close] drops
             the session. *)
          let name =
            Option.value ~default:"default" (Json.string_field "session" json)
          in
          match (str_field "lang", str_field "code") with
          | Ok lang, Ok code ->
              Ok
                (Open
                   { id; name; lang; code; model = Json.string_field "model" json })
          | Error e, _ | _, Error e -> Error e)
      | "edit" -> (
          let name =
            Option.value ~default:"default" (Json.string_field "session" json)
          in
          match str_field "code" with
          | Ok code -> Ok (Edit { id; name; code })
          | Error e -> Error e)
      | "close" ->
          Ok
            (Close
               {
                 id;
                 name =
                   Option.value ~default:"default"
                     (Json.string_field "session" json);
               })
      | "ping" -> Ok (Ping { id })
      | "stats" -> Ok (Stats { id })
      | "reload" -> (
          (* Four forms (see the header comment). Everything optional —
             a bare {"op":"reload"} re-reads the files the default
             model was loaded from (the SIGHUP semantics) — but the
             unload and set_default forms exclude every other field. *)
          let name = Json.string_field "name" json in
          let model = Json.string_field "model" json in
          let w2v = Json.string_field "w2v" json in
          let unload = Json.string_field "unload" json in
          let set_default = Json.string_field "set_default" json in
          let loady = name <> None || model <> None || w2v <> None in
          match (unload, set_default) with
          | Some _, Some _ ->
              Error
                (id, bad_request "reload: \"unload\" and \"set_default\" are exclusive")
          | Some _, None when loady ->
              Error
                ( id,
                  bad_request
                    "reload: \"unload\" excludes \"name\"/\"model\"/\"w2v\"" )
          | None, Some _ when loady ->
              Error
                ( id,
                  bad_request
                    "reload: \"set_default\" excludes \"name\"/\"model\"/\"w2v\""
                )
          | Some n, None -> Ok (Reload { id; form = Unload n })
          | None, Some n -> Ok (Reload { id; form = Set_default n })
          | None, None -> Ok (Reload { id; form = Load { name; model; w2v } }))
      | "shutdown" -> Ok (Shutdown { id })
      | "" -> Error (id, bad_request "missing \"op\" (or \"code\") field")
      | op -> Error (id, bad_request "unknown op %S" op))

(* ---------- replies ---------- *)

(* All replies are rendered through these constructors and nothing
   else, so the daemon and a direct in-process call produce the same
   bytes for the same result. *)

let render json = Json.to_string json

let render_error ~id (e : error) =
  let err =
    [ ("kind", Json.Str e.kind); ("msg", Json.Str e.msg) ]
    @
    match e.pos with
    | None -> []
    | Some p ->
        [ ("line", Json.Num (float_of_int p.Lexkit.line));
          ("col", Json.Num (float_of_int p.Lexkit.col)) ]
  in
  render
    (Json.Obj [ ("id", id); ("ok", Json.Bool false); ("error", Json.Obj err) ])

(* Shared by the one-shot and session predict replies, so a session
   reply is the one-shot reply plus a trailing "session" field — the
   byte-identity smoke tests compare the common prefix directly. *)
let prediction_fields ~id ~lang pairs =
  [ ("id", id);
    ("ok", Json.Bool true);
    ("lang", Json.Str lang);
    ("count", Json.Num (float_of_int (List.length pairs)));
    ( "predictions",
      Json.Arr
        (List.map
           (fun (var, name) ->
             Json.Obj [ ("var", Json.Str var); ("name", Json.Str name) ])
           pairs) ) ]

let render_predictions ~id ~lang pairs =
  render (Json.Obj (prediction_fields ~id ~lang pairs))

let render_session_predictions ~id ~lang ~session pairs =
  render
    (Json.Obj (prediction_fields ~id ~lang pairs @ [ ("session", Json.Str session) ]))

let render_closed ~id ~session ~edits =
  render
    (Json.Obj
       [ ("id", id);
         ("ok", Json.Bool true);
         ("closed", Json.Str session);
         ("edits", Json.Num (float_of_int edits)) ])

let render_similar ~id ~word neighbors =
  render
    (Json.Obj
       [ ("id", id);
         ("ok", Json.Bool true);
         ("word", Json.Str word);
         ( "similar",
           Json.Arr
             (List.map
                (fun (w, score) ->
                  Json.Obj [ ("word", Json.Str w); ("score", Json.Num score) ])
                neighbors) ) ])

let render_pong ~id =
  render (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("pong", Json.Bool true) ])

let render_stopping ~id =
  render
    (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("stopping", Json.Bool true) ])

let render_reloaded ~id =
  render
    (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("reloaded", Json.Bool true) ])

let render_unloaded ~id name =
  render
    (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("unloaded", Json.Str name) ])

let render_default_set ~id name =
  render
    (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("default", Json.Str name) ])

type model_stat = {
  ms_name : string;
  ms_default : bool;
  ms_loaded : bool;  (** false = evicted (revives on demand) *)
  ms_storage : string;  (** "heap" | "mapped" | "unloaded" *)
  ms_note : string option;  (** the mapped-load downgrade reason, if any *)
  ms_mapped_bytes : int;
  ms_model_path : string option;
  ms_w2v_path : string option;
  ms_last_used_ms : int;  (** ms since last request; [-1] = never used *)
  ms_evictions : int;  (** times this entry was evicted over its lifetime *)
}

type cache_stat = {
  cache_hits : int;
  cache_misses : int;
  cached_paths : int;
  cache_bytes : int;
  cache_evictions : int;
}

type session_stat = {
  ss_name : string;
  ss_conn : int;  (** owning connection id *)
  ss_lang : string;
  ss_edits : int;  (** successful edits since open *)
  ss_last_used_ms : int;  (** ms since last open/edit; [-1] = never *)
  ss_cache : cache_stat;
}

type stats = {
  uptime_ms : int;
  served : int;  (** replies sent, including error replies *)
  errors : int;  (** error replies among them *)
  shed : int;  (** requests rejected as "overloaded" (queue/conn caps) *)
  batches : int;  (** batch rounds the consumer ran *)
  max_batch : int;  (** largest batch in one round *)
  queue_depth : int;  (** predict/similar requests queued right now *)
  queue_hw : int;  (** high-water mark of the queue depth *)
  conns : int;  (** connections open right now *)
  reloads : int;  (** successful hot model reloads *)
  jobs : int;  (** domain-pool width predictions fan out over *)
  models : model_stat list;  (** per-registry-entry metadata *)
  sessions : session_stat list;  (** live edit sessions *)
  session_cache : cache_stat;
      (** aggregate over live sessions; evictions also counts whole
          sessions dropped to the session-bytes budget *)
}

let render_stats ~id s =
  let num n = Json.Num (float_of_int n) in
  let cache c =
    Json.Obj
      [ ("hits", num c.cache_hits);
        ("misses", num c.cache_misses);
        ("paths", num c.cached_paths);
        ("bytes", num c.cache_bytes);
        ("evictions", num c.cache_evictions) ]
  in
  let session ss =
    Json.Obj
      [ ("name", Json.Str ss.ss_name);
        ("conn", num ss.ss_conn);
        ("lang", Json.Str ss.ss_lang);
        ("edits", num ss.ss_edits);
        ("last_used_ms", num ss.ss_last_used_ms);
        ("cache", cache ss.ss_cache) ]
  in
  let model m =
    Json.Obj
      ([ ("name", Json.Str m.ms_name);
         ("default", Json.Bool m.ms_default);
         ("loaded", Json.Bool m.ms_loaded);
         ("storage", Json.Str m.ms_storage) ]
      @ (match m.ms_note with
        | Some n -> [ ("note", Json.Str n) ]
        | None -> [])
      @ [ ("mapped_bytes", num m.ms_mapped_bytes) ]
      @ (match m.ms_model_path with
        | Some p -> [ ("model_path", Json.Str p) ]
        | None -> [])
      @ (match m.ms_w2v_path with
        | Some p -> [ ("w2v_path", Json.Str p) ]
        | None -> [])
      @ [ ("last_used_ms", num m.ms_last_used_ms);
          ("evictions", num m.ms_evictions) ])
  in
  render
    (Json.Obj
       [ ("id", id);
         ("ok", Json.Bool true);
         ( "stats",
           Json.Obj
             [ ("uptime_ms", num s.uptime_ms);
               ("served", num s.served);
               ("errors", num s.errors);
               ("shed", num s.shed);
               ("batches", num s.batches);
               ("max_batch", num s.max_batch);
               ("queue_depth", num s.queue_depth);
               ("queue_hw", num s.queue_hw);
               ("conns", num s.conns);
               ("reloads", num s.reloads);
               ("jobs", num s.jobs);
               ("models", Json.Arr (List.map model s.models));
               ("sessions", Json.Arr (List.map session s.sessions));
               ("session_cache", cache s.session_cache) ] ) ])

(* Reply introspection for clients (the CLI and tests). *)

let reply_ok line =
  match Json.parse line with
  | Ok j -> Json.bool_field "ok" j = Some true
  | Error _ -> false

let reply_error line =
  match Json.parse line with
  | Ok j -> (
      match (Json.bool_field "ok" j, Json.member "error" j) with
      | Some false, Some err -> (
          match (Json.string_field "kind" err, Json.string_field "msg" err) with
          | Some kind, Some msg ->
              Some
                { kind;
                  msg;
                  pos =
                    (match
                       (Json.int_field "line" err, Json.int_field "col" err)
                     with
                    | Some line, Some col ->
                        Some { Lexkit.line; col; offset = 0 }
                    | _ -> None) }
          | _ -> None)
      | _ -> None)
  | Error _ -> None
