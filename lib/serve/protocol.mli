(** The serve wire protocol: newline-delimited JSON requests and
    replies (DESIGN.md §12). One request object per line in, one reply
    object per line out, in request order per connection. *)

type error = { kind : string; msg : string; pos : Lexkit.pos option }
(** Structured error reply payload. [kind] is a {!Lexkit.Diag.kind}
    name, ["bad-request"], ["internal"], ["overloaded"] (the request
    was shed — queue bound or connection cap; retry later), or
    ["timeout"] (idle connection closed). *)

val bad_request : ('a, unit, string, error) format4 -> 'a
val overloaded : ('a, unit, string, error) format4 -> 'a
val timeout : ('a, unit, string, error) format4 -> 'a
val internal_error : string -> error
val error_of_diag : Lexkit.Diag.t -> error

type request =
  | Predict of { id : Json.t; lang : string; code : string }
  | Similar of { id : Json.t; word : string; k : int }
  | Ping of { id : Json.t }
  | Stats of { id : Json.t }
  | Reload of { id : Json.t; model : string option; w2v : string option }
      (** Hot model reload (admin op). Absent paths re-read the files
          the daemon was started from. *)
  | Shutdown of { id : Json.t }

val request_id : request -> Json.t

val request_of_line : string -> (request, Json.t * error) result
(** Total on arbitrary bytes. The error side carries the request id
    when the line parsed far enough to have one (else [Json.Null]), so
    even a rejected request gets a correlatable reply. *)

(** {2 Reply rendering}

    Every reply the daemon sends goes through exactly one of these, so
    equal results render as equal bytes anywhere. No trailing
    newline — the transport adds it. *)

val render_error : id:Json.t -> error -> string
val render_predictions : id:Json.t -> lang:string -> (string * string) list -> string
val render_similar : id:Json.t -> word:string -> (string * float) list -> string
val render_pong : id:Json.t -> string
val render_stopping : id:Json.t -> string
val render_reloaded : id:Json.t -> string

type stats = {
  uptime_ms : int;
  served : int;  (** replies sent, including error replies *)
  errors : int;  (** error replies among them *)
  shed : int;  (** requests rejected as "overloaded" (queue/conn caps) *)
  batches : int;  (** batch rounds the consumer ran *)
  max_batch : int;  (** largest batch in one round *)
  queue_depth : int;  (** predict/similar requests queued right now *)
  queue_hw : int;  (** high-water mark of the queue depth *)
  conns : int;  (** connections open right now *)
  reloads : int;  (** successful hot model reloads *)
  jobs : int;  (** domain-pool width predictions fan out over *)
}

val render_stats : id:Json.t -> stats -> string

val reply_ok : string -> bool
(** Whether a reply line parses and says ["ok": true]. *)

val reply_error : string -> error option
(** The structured error of an ["ok": false] reply, if it is one. *)
