(** The serve wire protocol: newline-delimited JSON requests and
    replies (DESIGN.md §12). One request object per line in, one reply
    object per line out, in request order per connection. *)

type error = { kind : string; msg : string; pos : Lexkit.pos option }
(** Structured error reply payload. [kind] is a {!Lexkit.Diag.kind}
    name, ["bad-request"], ["internal"], ["overloaded"] (the request
    was shed — queue bound or connection cap; retry later),
    ["timeout"] (idle connection closed), or ["no-session"] (an
    edit/close named a session this connection never opened, or one
    already closed or evicted). *)

val bad_request : ('a, unit, string, error) format4 -> 'a
val overloaded : ('a, unit, string, error) format4 -> 'a
val timeout : ('a, unit, string, error) format4 -> 'a
val no_session : ('a, unit, string, error) format4 -> 'a
val internal_error : string -> error
val error_of_diag : Lexkit.Diag.t -> error

(** The four shapes of the ["reload"] admin op, told apart by their
    fields. [Load] with everything absent re-reads the default model's
    files (the SIGHUP semantics); with [name] it loads or replaces a
    registry entry (reviving an evicted one when the paths are
    absent). *)
type reload_form =
  | Load of { name : string option; model : string option; w2v : string option }
  | Unload of string
  | Set_default of string

(** Edit sessions ([Open]/[Edit]/[Close]): [name] is the buffer name
    from the request's ["session"] field (default ["default"]), scoped
    to the requesting connection. [Open] parses the initial buffer,
    predicts, and seeds the session's incremental extraction cache;
    each [Edit] carries the {e full} new buffer and predicts through
    the cache; [Close] drops the session. *)
type request =
  | Predict of { id : Json.t; lang : string; code : string; model : string option }
      (** [model] names a registry entry; [None] = the default model. *)
  | Similar of { id : Json.t; word : string; k : int; model : string option }
  | Ping of { id : Json.t }
  | Stats of { id : Json.t }
  | Reload of { id : Json.t; form : reload_form }
  | Shutdown of { id : Json.t }
  | Open of {
      id : Json.t;
      name : string;
      lang : string;
      code : string;
      model : string option;
    }
  | Edit of { id : Json.t; name : string; code : string }
  | Close of { id : Json.t; name : string }

val request_id : request -> Json.t

val request_of_line : string -> (request, Json.t * error) result
(** Total on arbitrary bytes. The error side carries the request id
    when the line parsed far enough to have one (else [Json.Null]), so
    even a rejected request gets a correlatable reply. *)

(** {2 Reply rendering}

    Every reply the daemon sends goes through exactly one of these, so
    equal results render as equal bytes anywhere. No trailing
    newline — the transport adds it. *)

val render_error : id:Json.t -> error -> string
val render_predictions : id:Json.t -> lang:string -> (string * string) list -> string

val render_session_predictions :
  id:Json.t -> lang:string -> session:string -> (string * string) list -> string
(** The one-shot predictions reply with a trailing ["session"] field —
    every byte before it matches {!render_predictions} for the same
    pairs, which is what the live smoke test compares. *)

val render_closed : id:Json.t -> session:string -> edits:int -> string
val render_similar : id:Json.t -> word:string -> (string * float) list -> string
val render_pong : id:Json.t -> string
val render_stopping : id:Json.t -> string
val render_reloaded : id:Json.t -> string
val render_unloaded : id:Json.t -> string -> string
val render_default_set : id:Json.t -> string -> string

type model_stat = {
  ms_name : string;
  ms_default : bool;
  ms_loaded : bool;  (** false = evicted (revives on demand) *)
  ms_storage : string;  (** "heap" | "mapped" | "unloaded" *)
  ms_note : string option;  (** the mapped-load downgrade reason, if any *)
  ms_mapped_bytes : int;
  ms_model_path : string option;
  ms_w2v_path : string option;
  ms_last_used_ms : int;  (** ms since last request; [-1] = never used *)
  ms_evictions : int;  (** times this entry was evicted over its lifetime *)
}
(** Per-registry-entry metadata in a [stats] reply. *)

type cache_stat = {
  cache_hits : int;  (** cache units (and unit pairs) replayed *)
  cache_misses : int;  (** units extracted live and recorded *)
  cached_paths : int;  (** path-context triples currently stored *)
  cache_bytes : int;  (** estimated heap bytes of stored entries *)
  cache_evictions : int;  (** entries (or whole sessions) evicted *)
}
(** Incremental-extraction cache counters ({!Astpath.Cache.stats}). *)

type session_stat = {
  ss_name : string;
  ss_conn : int;  (** owning connection id *)
  ss_lang : string;
  ss_edits : int;  (** successful edits since open *)
  ss_last_used_ms : int;  (** ms since last open/edit; [-1] = never *)
  ss_cache : cache_stat;
}
(** Per-edit-session metadata in a [stats] reply. *)

type stats = {
  uptime_ms : int;
  served : int;  (** replies sent, including error replies *)
  errors : int;  (** error replies among them *)
  shed : int;  (** requests rejected as "overloaded" (queue/conn caps) *)
  batches : int;  (** batch rounds the consumer ran *)
  max_batch : int;  (** largest batch in one round *)
  queue_depth : int;  (** predict/similar requests queued right now *)
  queue_hw : int;  (** high-water mark of the queue depth *)
  conns : int;  (** connections open right now *)
  reloads : int;  (** successful hot model reloads *)
  jobs : int;  (** domain-pool width predictions fan out over *)
  models : model_stat list;  (** per-registry-entry metadata *)
  sessions : session_stat list;  (** live edit sessions *)
  session_cache : cache_stat;
      (** aggregate over live sessions; evictions also counts whole
          sessions dropped to the session-bytes budget *)
}

val render_stats : id:Json.t -> stats -> string

val reply_ok : string -> bool
(** Whether a reply line parses and says ["ok": true]. *)

val reply_error : string -> error option
(** The structured error of an ["ok": false] reply, if it is one. *)
