(** The [pigeon serve] daemon: Unix/TCP listeners, one reader thread
    per connection, and a producer/consumer queue feeding batched MAP
    inference over the domain pool.

    Isolation: a hostile request gets a structured error reply (see
    {!Engine}); a disconnecting client costs its own connection
    (SIGPIPE ignored, EPIPE/EINTR handled); a contract violation below
    the batcher answers the whole batch with "internal" errors and the
    daemon stays up.

    Overload: the job queue is bounded ([max_queue]) — excess
    predict/similar requests answer immediately with an "overloaded"
    error (shed, not queued; the shed reply may overtake earlier
    queued replies on the same connection, so pipelining clients
    correlate by id). Connections are bounded ([max_conns]); excess
    accepts get one "overloaded" line and a close. Each connection has
    an I/O budget ([idle_timeout]) covering reads (slowloris defense:
    silent or byte-trickling clients are closed with a "timeout" line)
    and reply writes (a client that stops draining cannot wedge the
    batcher).

    Lifecycle: {!reload} (and the wire ["reload"] op) hot-swaps the
    model via {!Engine.reload} — loads run off the batcher's path,
    in-flight batches finish on the old model, nothing is dropped.
    {!request_stop} (wired to SIGTERM/SIGINT in the CLI) drains then
    stops. *)

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind host, port *)
  max_batch : int;  (** most requests fused into one predict_batch round *)
  max_line : int;  (** request-line byte cap (framing guard) *)
  backlog : int;
  max_queue : int;  (** queued predict/similar bound; 0 = unbounded *)
  max_conns : int;  (** concurrent connection cap; 0 = unbounded *)
  idle_timeout : float;  (** seconds; per-connection I/O budget; 0 = none *)
  faults : Faults.t;  (** fault injection; {!Faults.disabled} by default *)
}

val default_config : config
(** No listeners (callers must set at least one), [max_batch = 16],
    20 MiB line cap, backlog 64, [max_queue = 256], [max_conns = 256],
    [idle_timeout = 300.], faults disabled. *)

type t

val start : ?pool:Parallel.pool -> Engine.t -> config -> t
(** Bind the listeners and spawn the I/O threads. Raises on bind
    failure (bad path, port in use, existing non-socket file at the
    Unix path). [pool] is the domain pool batches fan out over;
    default is sequential prediction. *)

val request_stop : t -> unit
(** Begin shutdown (idempotent, thread-safe, callable from a signal
    context via a flag): listeners close, queued requests drain and
    answer, then connections close. *)

val stopped : t -> bool

val reload :
  ?name:string ->
  ?model_path:string ->
  ?w2v_path:string ->
  t ->
  (unit, Protocol.error) result
(** Hot model reload ({!Engine.reload} + the reload counter + a log
    line, including the mapped-load downgrade note when the loader
    fell back to a heap copy). [name] targets a registry entry
    (default: the default model); absent paths re-read the files the
    entry last loaded — the SIGHUP semantics. On [Error] the old
    registry keeps serving. *)

val wait : t -> unit
(** Block until the daemon has fully stopped (every accepted request
    answered, threads joined, Unix socket unlinked). A client
    [shutdown] request or {!request_stop} triggers that. *)

val run : ?pool:Parallel.pool -> Engine.t -> config -> unit
(** [start] then [wait]. *)

val stats : t -> Protocol.stats
