(** The [pigeon serve] daemon: Unix/TCP listeners, one reader thread
    per connection, and a producer/consumer queue feeding batched MAP
    inference over the domain pool.

    Isolation: a hostile request gets a structured error reply (see
    {!Engine}); a disconnecting client costs its own connection
    (SIGPIPE ignored, EPIPE/EINTR handled); a contract violation below
    the batcher answers the whole batch with "internal" errors and the
    daemon stays up. *)

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind host, port *)
  max_batch : int;  (** most requests fused into one predict_batch round *)
  max_line : int;  (** request-line byte cap (framing guard) *)
  backlog : int;
}

val default_config : config
(** No listeners (callers must set at least one), [max_batch = 16],
    20 MiB line cap, backlog 64. *)

type t

val start : ?pool:Parallel.pool -> Engine.t -> config -> t
(** Bind the listeners and spawn the I/O threads. Raises on bind
    failure (bad path, port in use, existing non-socket file at the
    Unix path). [pool] is the domain pool batches fan out over;
    default is sequential prediction. *)

val request_stop : t -> unit
(** Begin shutdown (idempotent, thread-safe, callable from a signal
    context via a flag): listeners close, queued requests drain and
    answer, then connections close. *)

val stopped : t -> bool

val wait : t -> unit
(** Block until the daemon has fully stopped (every accepted request
    answered, threads joined, Unix socket unlinked). A client
    [shutdown] request or {!request_stop} triggers that. *)

val run : ?pool:Parallel.pool -> Engine.t -> config -> unit
(** [start] then [wait]. *)

val stats : t -> Protocol.stats
