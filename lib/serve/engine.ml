(* The request-processing core, shared verbatim by the daemon, the CLI
   one-shot path, and the tests — which is what makes "a jobs=1 daemon
   replies byte-identical to a CLI prediction" true by construction:
   both are this module.

   Isolation contract: [handle_batch] is total. A hostile request
   (oversized input, pathological nesting, step-budget exhaustion,
   anything that makes a front-end or the predictor raise) costs its
   own request a structured error reply and nothing else — concurrent
   requests in the same batch still answer, and no exception crosses
   the module boundary.

   Registry: the engine holds a name → model map in one immutable
   snapshot behind an [Atomic.t]. Every batch reads the snapshot
   exactly once and uses it throughout, so an in-flight batch finishes
   on the models it started with while [reload]/[unload]/[set_default]
   build a new snapshot off the request path and publish it with a
   single atomic store — readers never wait on a lock, and no request
   observes a half-swapped registry. A reload that fails validation
   (unreadable file, corrupt model) leaves the old snapshot serving.

   Eviction: when the mapped-bytes budget is set, loading a model may
   push the total over it; the least-recently-used mapped entry that
   is neither the default nor the one just loaded is then dropped from
   the snapshot (its paths and eviction count stay). This is safe
   precisely because snapshots are immutable: an in-flight batch keeps
   the evicted model alive through its own snapshot reference, and the
   mapping is unmapped when the last reference dies. An evicted entry
   revives transparently — the next request naming it triggers a
   reload from its recorded paths (O(header) for mapped models). *)

type loaded = {
  crf : Crf.Train.model;
  w2v : Word2vec.Sgns.view option;
  storage : Lexkit.Storage.t;  (** CRF and w2v storages merged *)
}

type entry = {
  e_name : string;
  e_model_path : string option;
  e_w2v_path : string option;
  e_loaded : loaded option;  (** [None] = evicted *)
  e_evictions : int;
  e_last_used : float Atomic.t;
      (** epoch seconds of the last request served through this entry;
          [0.] = never. Shared across snapshot generations of the same
          name, so eviction ranks on real use. *)
}

type snapshot = {
  default_name : string;
  entries : entry list;  (** load order; registries are small *)
}

(* An edit session: one editor buffer, scoped to one connection. The
   session owns an incremental extraction cache (label/symbol/path
   intern tables plus memoized per-subtree path-context sets); each
   edit re-parses the full new buffer but replays extraction for every
   subtree the edit did not touch. Sessions are touched only from the
   single batcher thread (opens, edits, closes all queue), so the
   mutex below guards the *table* against concurrent stats reads and
   disconnect cleanup, not the caches themselves. *)
type session = {
  s_name : string;
  s_conn : int;
  s_lang : Pigeon.Lang.t;
  s_model : string option;  (** registry entry predictions run against *)
  s_cache : Astpath.Cache.t;
  mutable s_edits : int;  (** successful edits since open *)
  mutable s_last_used : float;  (** epoch seconds of the last open/edit *)
}

type t = {
  snap : snapshot Atomic.t;
  limits : Lexkit.limits;  (** per-request resource budgets *)
  reload_m : Mutex.t;  (** serializes registry writers, not readers *)
  mmap : bool;  (** load through [load_mapped] (with its fallbacks)? *)
  max_mapped_bytes : int;  (** eviction budget; 0 = unbounded *)
  sessions : (int * string, session) Hashtbl.t;  (** (conn, name) *)
  sessions_m : Mutex.t;
  max_session_bytes : int;  (** session-cache budget; 0 = unbounded *)
  mutable sessions_evicted : int;  (** whole sessions dropped to it *)
}

let default_name = "default"
let find name entries = List.find_opt (fun e -> e.e_name = name) entries

let create ?w2v ?w2v_view ?storage ?limits ?model_path ?w2v_path ?(mmap = true)
    ?(max_mapped_bytes = 0) ?(max_session_bytes = 0) ?(name = default_name)
    ~model () =
  let w2v =
    match (w2v_view, w2v) with
    | Some v, _ -> Some v
    | None, Some m -> Some (Word2vec.Sgns.view_of m)
    | None, None -> None
  in
  let entry =
    {
      e_name = name;
      e_model_path = model_path;
      e_w2v_path = w2v_path;
      e_loaded =
        Some
          {
            crf = model;
            w2v;
            storage = Option.value ~default:Lexkit.Storage.heap storage;
          };
      e_evictions = 0;
      e_last_used = Atomic.make 0.;
    }
  in
  {
    snap = Atomic.make { default_name = name; entries = [ entry ] };
    limits = Option.value ~default:(Lexkit.current_limits ()) limits;
    reload_m = Mutex.create ();
    mmap;
    max_mapped_bytes;
    sessions = Hashtbl.create 16;
    sessions_m = Mutex.create ();
    max_session_bytes;
    sessions_evicted = 0;
  }

let limits t = t.limits

let reloadable t =
  let snap = Atomic.get t.snap in
  match find snap.default_name snap.entries with
  | Some e -> e.e_model_path <> None
  | None -> false

let loaded_names snap =
  String.concat ", "
    (List.map (fun e -> Printf.sprintf "%S" e.e_name) snap.entries)

(* ---------- registry writers (all under [reload_m]) ---------- *)

let load_files t ~model_path ~w2v_path =
  let crf_r =
    if t.mmap then Crf.Serialize.load_mapped model_path
    else
      Result.map (fun m -> (m, Lexkit.Storage.heap))
        (Crf.Serialize.load model_path)
  in
  match crf_r with
  | Error d -> Error (Protocol.error_of_diag d)
  | Ok (crf, cs) -> (
      match w2v_path with
      | None -> Ok { crf; w2v = None; storage = cs }
      | Some wp -> (
          let w_r =
            if t.mmap then Word2vec.Serialize.load_mapped wp
            else
              Result.map
                (fun m -> (Word2vec.Sgns.view_of m, Lexkit.Storage.heap))
                (Word2vec.Serialize.load wp)
          in
          match w_r with
          | Error d -> Error (Protocol.error_of_diag d)
          | Ok (v, ws) ->
              Ok { crf; w2v = Some v; storage = Lexkit.Storage.merge cs ws }))

let entry_mapped e =
  match e.e_loaded with
  | Some l -> Lexkit.Storage.mapped_bytes l.storage
  | None -> 0

let mapped_total entries =
  List.fold_left (fun acc e -> acc + entry_mapped e) 0 entries

(* Drop LRU mapped entries until the budget holds. Never the default,
   never [keep] (the entry that just loaded), never heap entries
   (dropping them frees no mapped bytes) — so each round strictly
   shrinks the total and the loop terminates. Called under
   [reload_m]. *)
let evict_lru t snap ~keep =
  if t.max_mapped_bytes <= 0 then snap
  else
    let rec go snap =
      if mapped_total snap.entries <= t.max_mapped_bytes then snap
      else
        match
          List.filter
            (fun e ->
              entry_mapped e > 0
              && e.e_name <> snap.default_name
              && e.e_name <> keep)
            snap.entries
        with
        | [] -> snap (* the budget cannot be met; serve anyway *)
        | v :: vs ->
            let victim =
              List.fold_left
                (fun a b ->
                  if Atomic.get b.e_last_used < Atomic.get a.e_last_used then b
                  else a)
                v vs
            in
            go
              {
                snap with
                entries =
                  List.map
                    (fun e ->
                      if e.e_name = victim.e_name then
                        { e with e_loaded = None;
                                 e_evictions = e.e_evictions + 1 }
                      else e)
                    snap.entries;
              }
    in
    go snap

let with_registry t f =
  Mutex.lock t.reload_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reload_m) f

let first_some a b = match a with Some _ -> a | None -> b

(* Load (or re-load, or revive) entry [name] — absent means the
   default — from the given paths, defaulting to its recorded ones.
   On success returns the storage's downgrade note (for the caller's
   log); the new snapshot is already published. *)
let reload t ?name ?model_path ?w2v_path () =
  with_registry t @@ fun () ->
  let snap = Atomic.get t.snap in
  let nm = Option.value ~default:snap.default_name name in
  let existing = find nm snap.entries in
  match
    first_some model_path (Option.bind existing (fun e -> e.e_model_path))
  with
  | None ->
      Error
        (if existing = None then
           Protocol.bad_request
             "reload: unknown model %S and no \"model\" path to load it from \
              (loaded: %s)"
             nm (loaded_names snap)
         else
           Protocol.bad_request
             "reload: no model path (the daemon was started from an in-memory \
              model and the request named none)")
  | Some mpath -> (
      let wpath =
        first_some w2v_path (Option.bind existing (fun e -> e.e_w2v_path))
      in
      match load_files t ~model_path:mpath ~w2v_path:wpath with
      | Error e -> Error e
      | Ok loaded ->
          let entry =
            {
              e_name = nm;
              e_model_path = Some mpath;
              e_w2v_path = wpath;
              e_loaded = Some loaded;
              e_evictions =
                (match existing with Some e -> e.e_evictions | None -> 0);
              e_last_used =
                (match existing with
                | Some e -> e.e_last_used
                | None -> Atomic.make 0.);
            }
          in
          let entries =
            match existing with
            | Some _ ->
                List.map
                  (fun e -> if e.e_name = nm then entry else e)
                  snap.entries
            | None -> snap.entries @ [ entry ]
          in
          let snap' = evict_lru t { snap with entries } ~keep:nm in
          Atomic.set t.snap snap';
          Ok (Lexkit.Storage.note loaded.storage))

let unload t name =
  with_registry t @@ fun () ->
  let snap = Atomic.get t.snap in
  if name = snap.default_name then
    Error
      (Protocol.bad_request
         "cannot unload the default model %S (set another default first)" name)
  else if find name snap.entries = None then
    Error
      (Protocol.bad_request "unload: unknown model %S (loaded: %s)" name
         (loaded_names snap))
  else begin
    Atomic.set t.snap
      {
        snap with
        entries = List.filter (fun e -> e.e_name <> name) snap.entries;
      };
    Ok ()
  end

let set_default t name =
  with_registry t @@ fun () ->
  let snap = Atomic.get t.snap in
  if find name snap.entries = None then
    Error
      (Protocol.bad_request "set_default: unknown model %S (loaded: %s)" name
         (loaded_names snap))
  else begin
    Atomic.set t.snap { snap with default_name = name };
    Ok ()
  end

(* Revive an evicted entry from its recorded paths. Re-checks under
   the lock: a concurrent request may have revived it already. *)
let revive t name =
  with_registry t @@ fun () ->
  let snap = Atomic.get t.snap in
  match find name snap.entries with
  | None ->
      Error
        (Protocol.bad_request "unknown model %S (loaded: %s)" name
           (loaded_names snap))
  | Some ({ e_loaded = Some _; _ } as e) -> Ok e
  | Some ({ e_model_path = None; _ }) ->
      Error
        (Protocol.bad_request
           "model %S was evicted and has no recorded path to revive it from"
           name)
  | Some ({ e_model_path = Some mpath; _ } as e) -> (
      match load_files t ~model_path:mpath ~w2v_path:e.e_w2v_path with
      | Error e -> Error e
      | Ok loaded ->
          let entry = { e with e_loaded = Some loaded } in
          let entries =
            List.map
              (fun e -> if e.e_name = name then entry else e)
              snap.entries
          in
          let snap' = evict_lru t { snap with entries } ~keep:name in
          Atomic.set t.snap snap';
          Ok entry)

(* ---------- request-side resolution ---------- *)

(* The entry a request runs against: the batch snapshot's, reviving
   evicted ones on demand. Touches the LRU clock. *)
let resolve t snap model =
  let nm = Option.value ~default:snap.default_name model in
  let r =
    match find nm snap.entries with
    | Some ({ e_loaded = Some _; _ } as e) -> Ok e
    | Some _ -> revive t nm
    | None ->
        Error
          (Protocol.bad_request "unknown model %S (loaded: %s)" nm
             (loaded_names snap))
  in
  (match r with
  | Ok e -> Atomic.set e.e_last_used (Unix.gettimeofday ())
  | Error _ -> ());
  r

let entry_loaded e =
  match e.e_loaded with
  | Some l -> l
  | None -> assert false (* resolve only returns loaded entries *)

(* ---------- per-model stats ---------- *)

let models t =
  let snap = Atomic.get t.snap in
  let now = Unix.gettimeofday () in
  List.map
    (fun e ->
      let storage, note, bytes =
        match e.e_loaded with
        | Some l ->
            ( Lexkit.Storage.kind_name l.storage,
              Lexkit.Storage.note l.storage,
              Lexkit.Storage.mapped_bytes l.storage )
        | None -> ("unloaded", None, 0)
      in
      let lu = Atomic.get e.e_last_used in
      {
        Protocol.ms_name = e.e_name;
        ms_default = e.e_name = snap.default_name;
        ms_loaded = e.e_loaded <> None;
        ms_storage = storage;
        ms_note = note;
        ms_mapped_bytes = bytes;
        ms_model_path = e.e_model_path;
        ms_w2v_path = e.e_w2v_path;
        ms_last_used_ms =
          (if lu = 0. then -1 else int_of_float (1000. *. (now -. lu)));
        ms_evictions = e.e_evictions;
      })
    snap.entries

(* ---------- request handling ---------- *)

(* Classify every failure: Diag-shaped ones keep their kind, anything
   else (a bug, not an input problem) becomes an "internal" error —
   answered, logged by the caller, survived. *)
let classify e =
  match Lexkit.diag_of_exn e with
  | Some d -> Protocol.error_of_diag d
  | None -> Protocol.internal_error (Printexc.to_string e)

let guarded t f =
  match Lexkit.with_limits t.limits (fun () -> Lexkit.protect f) with
  | Ok v -> Ok v
  | Error d -> Error (Protocol.error_of_diag d)
  | exception e -> Error (classify e)

(* parse → build factor graph, under this engine's per-request
   budgets. The front-end guards (input size, nesting depth, step
   budget) all fire inside [lang.parse_tree]. *)
let graph_of_code t (lang : Pigeon.Lang.t) code =
  guarded t (fun () ->
      let tree = lang.Pigeon.Lang.parse_tree code in
      let repr =
        Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ()
      in
      Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
        ~policy:Pigeon.Graphs.Locals tree)

let pairs_of_prediction g pred =
  let gold = Crf.Graph.gold_assignment g in
  List.map (fun n -> (gold.(n), pred.(n))) (Crf.Graph.unknown_ids g)

(* ---------- edit sessions ---------- *)

let with_sessions t f =
  Mutex.lock t.sessions_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sessions_m) f

(* Whole-session LRU eviction to the byte budget. Evicting a whole
   session (rather than trimming its cache) keeps the budget simple
   and honest: a session's intern tables are part of its footprint and
   cannot be trimmed entry-wise. Never evicts [keep] — the session
   that just extracted — so one oversized buffer degrades to
   from-scratch speed instead of thrashing. *)
let evict_sessions t ~keep =
  if t.max_session_bytes > 0 then
    with_sessions t (fun () ->
        let total () =
          Hashtbl.fold
            (fun _ s acc -> acc + Astpath.Cache.bytes s.s_cache)
            t.sessions 0
        in
        let rec go () =
          if total () > t.max_session_bytes then begin
            let victim =
              Hashtbl.fold
                (fun key s acc ->
                  if key = keep then acc
                  else
                    match acc with
                    | Some (_, best) when best.s_last_used <= s.s_last_used ->
                        acc
                    | _ -> Some (key, s))
                t.sessions None
            in
            match victim with
            | None -> ()
            | Some (key, _) ->
                Hashtbl.remove t.sessions key;
                t.sessions_evicted <- t.sessions_evicted + 1;
                go ()
          end
        in
        go ())

let drop_conn t ~conn =
  with_sessions t (fun () ->
      let keys =
        Hashtbl.fold
          (fun ((c, _) as k) _ acc -> if c = conn then k :: acc else acc)
          t.sessions []
      in
      List.iter (Hashtbl.remove t.sessions) keys)

let cache_stat_of (c : Astpath.Cache.stats) =
  {
    Protocol.cache_hits = c.Astpath.Cache.hits;
    cache_misses = c.Astpath.Cache.misses;
    cached_paths = c.Astpath.Cache.cached_paths;
    cache_bytes = c.Astpath.Cache.bytes;
    cache_evictions = c.Astpath.Cache.evictions;
  }

let session_stats t =
  with_sessions t (fun () ->
      let now = Unix.gettimeofday () in
      let stat s =
        {
          Protocol.ss_name = s.s_name;
          ss_conn = s.s_conn;
          ss_lang = s.s_lang.Pigeon.Lang.name;
          ss_edits = s.s_edits;
          ss_last_used_ms =
            (if s.s_last_used = 0. then -1
             else int_of_float (1000. *. (now -. s.s_last_used)));
          ss_cache = cache_stat_of (Astpath.Cache.stats s.s_cache);
        }
      in
      let sessions =
        Hashtbl.fold (fun _ s acc -> stat s :: acc) t.sessions []
        |> List.sort (fun a b ->
               compare
                 (a.Protocol.ss_conn, a.Protocol.ss_name)
                 (b.Protocol.ss_conn, b.Protocol.ss_name))
      in
      let agg =
        List.fold_left
          (fun a ss ->
            let c = ss.Protocol.ss_cache in
            {
              Protocol.cache_hits = a.Protocol.cache_hits + c.Protocol.cache_hits;
              cache_misses = a.Protocol.cache_misses + c.Protocol.cache_misses;
              cached_paths = a.Protocol.cached_paths + c.Protocol.cached_paths;
              cache_bytes = a.Protocol.cache_bytes + c.Protocol.cache_bytes;
              cache_evictions =
                a.Protocol.cache_evictions + c.Protocol.cache_evictions;
            })
          {
            Protocol.cache_hits = 0;
            cache_misses = 0;
            cached_paths = 0;
            cache_bytes = 0;
            cache_evictions = t.sessions_evicted;
          }
          sessions
      in
      (sessions, agg))

(* parse → build factor graph through the session's incremental
   cache. Same guards as [graph_of_code]; a failed parse costs the
   request its reply and leaves the session untouched. *)
let graph_of_session t (sess : session) code =
  guarded t (fun () ->
      let tree = sess.s_lang.Pigeon.Lang.parse_tree code in
      let repr =
        Pigeon.Graphs.default_repr ~config:sess.s_lang.Pigeon.Lang.tuned ()
      in
      Pigeon.Graphs.build_cached repr ~cache:sess.s_cache
        ~def_labels:sess.s_lang.Pigeon.Lang.def_labels
        ~policy:Pigeon.Graphs.Locals tree)

let predict_one t ~lang ~code =
  let snap = Atomic.get t.snap in
  match resolve t snap None with
  | Error e -> Error e
  | Ok entry -> (
      let l = entry_loaded entry in
      match graph_of_code t lang code with
      | Error e -> Error e
      | Ok g -> (
          match guarded t (fun () -> Crf.Train.predict l.crf g) with
          | Ok pred -> Ok (pairs_of_prediction g pred)
          | Error e -> Error e))

let similar_entry entry ~word ~k =
  let l = entry_loaded entry in
  match l.w2v with
  | None ->
      Error
        (Protocol.bad_request
           "no word2vec model loaded for %S (start the server with --w2v or \
            reload with a \"w2v\" path)"
           entry.e_name)
  | Some v -> (
      match
        Lexkit.protect (fun () -> Word2vec.Sgns.most_similar_view v word ~k)
      with
      | Ok xs -> Ok xs
      | Error d -> Error (Protocol.error_of_diag d)
      | exception e -> Error (classify e))

let similar ?model t ~word ~k =
  let snap = Atomic.get t.snap in
  match resolve t snap model with
  | Error e -> Error e
  | Ok entry -> similar_entry entry ~word ~k

(* ---------- batched handling ---------- *)

(* Per-request state across the two stages: requests whose reply is
   already decided (control ops, failed parses), and parsed graphs
   waiting for the prediction stage, pinned to their registry entry. *)
type slot =
  | Done of string
  | Pending of {
      id : Json.t;
      lang_name : string;
      graph : Crf.Graph.t;
      model_name : string;
      model : Crf.Train.model;
      session : string option;  (** echoed in the reply when set *)
    }

let unknown_lang ~id lang =
  Protocol.render_error ~id
    (Protocol.bad_request "unknown language %S (use %s)" lang
       (String.concat ", "
          (List.map (fun (l : Pigeon.Lang.t) -> l.Pigeon.Lang.name)
             Pigeon.Lang.all)))

(* Session ops run here, on the single batcher thread, in queue order
   per connection — an open, its edits, and its close cannot race each
   other. Re-opening a name replaces the session (a fresh cache): the
   editor reloaded the buffer. *)
let open_session t snap ~conn ~id ~name ~lang ~code ~model =
  match resolve t snap model with
  | Error e -> Done (Protocol.render_error ~id e)
  | Ok entry -> (
      match Pigeon.Lang.by_name lang with
      | None -> Done (unknown_lang ~id lang)
      | Some l -> (
          let sess =
            {
              s_name = name;
              s_conn = conn;
              s_lang = l;
              s_model = model;
              s_cache = Astpath.Cache.create ();
              s_edits = 0;
              s_last_used = Unix.gettimeofday ();
            }
          in
          match graph_of_session t sess code with
          | Error e -> Done (Protocol.render_error ~id e)
          | Ok graph ->
              with_sessions t (fun () ->
                  Hashtbl.replace t.sessions (conn, name) sess);
              evict_sessions t ~keep:(conn, name);
              Pending
                {
                  id;
                  lang_name = l.Pigeon.Lang.name;
                  graph;
                  model_name = entry.e_name;
                  model = (entry_loaded entry).crf;
                  session = Some name;
                }))

let edit_session t snap ~conn ~id ~name ~code =
  match with_sessions t (fun () -> Hashtbl.find_opt t.sessions (conn, name)) with
  | None ->
      Done
        (Protocol.render_error ~id
           (Protocol.no_session
              "no open session %S on this connection (open it first; closed \
               and evicted sessions must be re-opened)"
              name))
  | Some sess -> (
      match resolve t snap sess.s_model with
      | Error e -> Done (Protocol.render_error ~id e)
      | Ok entry -> (
          match graph_of_session t sess code with
          | Error e ->
              (* The edit failed (parse error, oversized buffer, …):
                 its request answers and the session survives on its
                 previous state. *)
              Done (Protocol.render_error ~id e)
          | Ok graph ->
              sess.s_edits <- sess.s_edits + 1;
              sess.s_last_used <- Unix.gettimeofday ();
              evict_sessions t ~keep:(conn, name);
              Pending
                {
                  id;
                  lang_name = sess.s_lang.Pigeon.Lang.name;
                  graph;
                  model_name = entry.e_name;
                  model = (entry_loaded entry).crf;
                  session = Some name;
                }))

let close_session t ~conn ~id ~name =
  match
    with_sessions t (fun () ->
        match Hashtbl.find_opt t.sessions (conn, name) with
        | None -> None
        | Some s ->
            Hashtbl.remove t.sessions (conn, name);
            Some s)
  with
  | None ->
      Done
        (Protocol.render_error ~id
           (Protocol.no_session "no open session %S on this connection" name))
  | Some s -> Done (Protocol.render_closed ~id ~session:name ~edits:s.s_edits)

let prepare t snap ~conn req =
  let id = Protocol.request_id req in
  match req with
  | Protocol.Ping _ -> Done (Protocol.render_pong ~id)
  | Protocol.Shutdown _ -> Done (Protocol.render_stopping ~id)
  | Protocol.Stats _ ->
      Done
        (Protocol.render_error ~id
           (Protocol.bad_request "stats is only served by a running daemon"))
  | Protocol.Reload _ ->
      Done
        (Protocol.render_error ~id
           (Protocol.bad_request "reload is only served by a running daemon"))
  | Protocol.Similar { word; k; model; _ } -> (
      match resolve t snap model with
      | Error e -> Done (Protocol.render_error ~id e)
      | Ok entry -> (
          match similar_entry entry ~word ~k with
          | Ok xs -> Done (Protocol.render_similar ~id ~word xs)
          | Error e -> Done (Protocol.render_error ~id e)))
  | Protocol.Predict { lang; code; model; _ } -> (
      match resolve t snap model with
      | Error e -> Done (Protocol.render_error ~id e)
      | Ok entry -> (
          match Pigeon.Lang.by_name lang with
          | None -> Done (unknown_lang ~id lang)
          | Some l -> (
              match graph_of_code t l code with
              | Error e -> Done (Protocol.render_error ~id e)
              | Ok graph ->
                  Pending
                    {
                      id;
                      lang_name = l.Pigeon.Lang.name;
                      graph;
                      model_name = entry.e_name;
                      model = (entry_loaded entry).crf;
                      session = None;
                    })))
  | Protocol.Open { name; lang; code; model; _ } ->
      open_session t snap ~conn ~id ~name ~lang ~code ~model
  | Protocol.Edit { name; code; _ } -> edit_session t snap ~conn ~id ~name ~code
  | Protocol.Close { name; _ } -> close_session t ~conn ~id ~name

let handle_batch_conn ?pool t reqs =
  (* One snapshot for the whole batch: a concurrent reload affects the
     next batch, never a half-processed one. *)
  let snap = Atomic.get t.snap in
  let slots =
    Array.of_list (List.map (fun (conn, req) -> prepare t snap ~conn req) reqs)
  in
  (* Group pending graphs per model — one predict_batch round per
     model keeps the single-model case exactly as before while a mixed
     batch still fans each group over the pool. *)
  let groups = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Done _ -> ()
      | Pending { graph; model_name; model; _ } -> (
          match List.assoc_opt model_name !groups with
          | Some (_, items) -> items := (i, graph) :: !items
          | None ->
              groups := !groups @ [ (model_name, (model, ref [ (i, graph) ])) ]))
    slots;
  let results = Array.make (Array.length slots) None in
  List.iter
    (fun (_, (model, items)) ->
      let items = List.rev !items in
      let graphs = List.map snd items in
      let preds =
        (* Fast path: the whole group through the domain pool at once.
           If one graph poisons the batch (a predictor bug — guarded
           inputs cannot reach here), fall back to per-graph prediction
           so only the offending request pays. *)
        match Crf.Train.predict_batch ?pool model graphs with
        | preds -> List.map (fun p -> Ok p) preds
        | exception _ ->
            List.map
              (fun g ->
                match guarded t (fun () -> Crf.Train.predict model g) with
                | Ok p -> Ok p
                | Error e -> Error e)
              graphs
      in
      List.iter2 (fun (i, _) p -> results.(i) <- Some p) items preds)
    !groups;
  Array.to_list
    (Array.mapi
       (fun i slot ->
         match slot with
         | Done line -> line
         | Pending { id; lang_name; graph; session; _ } -> (
             match results.(i) with
             | Some (Ok p) -> (
                 let pairs = pairs_of_prediction graph p in
                 match session with
                 | Some s ->
                     Protocol.render_session_predictions ~id ~lang:lang_name
                       ~session:s pairs
                 | None -> Protocol.render_predictions ~id ~lang:lang_name pairs)
             | Some (Error e) -> Protocol.render_error ~id e
             | None ->
                 (* Unreachable: every pending slot joined a group.
                    Answer rather than crash if the invariant ever
                    breaks. *)
                 Protocol.render_error ~id
                   (Protocol.internal_error
                      "prediction result missing for request")))
       slots)

let handle_batch ?pool t reqs =
  handle_batch_conn ?pool t (List.map (fun r -> (0, r)) reqs)

let handle ?pool t req =
  match handle_batch ?pool t [ req ] with
  | [ line ] -> line
  | _ ->
      Protocol.render_error ~id:(Protocol.request_id req)
        (Protocol.internal_error "single request produced no reply")

let jobs_of_pool = function
  | Some p -> Parallel.jobs p
  | None -> 1
