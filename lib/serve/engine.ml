(* The request-processing core, shared verbatim by the daemon, the CLI
   one-shot path, and the tests — which is what makes "a jobs=1 daemon
   replies byte-identical to a CLI prediction" true by construction:
   both are this module.

   Isolation contract: [handle_batch] is total. A hostile request
   (oversized input, pathological nesting, step-budget exhaustion,
   anything that makes a front-end or the predictor raise) costs its
   own request a structured error reply and nothing else — concurrent
   requests in the same batch still answer, and no exception crosses
   the module boundary.

   Hot reload: the models live in one immutable snapshot behind an
   [Atomic.t]. Every batch reads the snapshot exactly once and uses it
   throughout, so an in-flight batch finishes on the model it started
   with while [reload] validates the new files off the request path
   and publishes them with a single atomic store — readers never wait
   on a lock, and no request observes a half-swapped model pair. A
   reload that fails validation (unreadable file, corrupt model)
   leaves the old snapshot serving. *)

type snapshot = {
  model : Crf.Train.model;
  w2v : Word2vec.Sgns.t option;
}

type t = {
  snap : snapshot Atomic.t;
  limits : Lexkit.limits;  (** per-request resource budgets *)
  reload_m : Mutex.t;  (** serializes concurrent reloads, not readers *)
  mutable model_path : string option;
  mutable w2v_path : string option;
}

let create ?w2v ?limits ?model_path ?w2v_path ~model () =
  {
    snap = Atomic.make { model; w2v };
    limits = Option.value ~default:(Lexkit.current_limits ()) limits;
    reload_m = Mutex.create ();
    model_path;
    w2v_path;
  }

let limits t = t.limits
let reloadable t = t.model_path <> None

let reload t ?model_path ?w2v_path () =
  Mutex.lock t.reload_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reload_m) @@ fun () ->
  let first_some a b = match a with Some _ -> a | None -> b in
  match first_some model_path t.model_path with
  | None ->
      Error
        (Protocol.bad_request
           "reload: no model path (the daemon was started from an in-memory \
            model and the request named none)")
  | Some mpath -> (
      match Crf.Serialize.load mpath with
      | Error d -> Error (Protocol.error_of_diag d)
      | Ok model -> (
          let wpath = first_some w2v_path t.w2v_path in
          let w2v_r =
            match wpath with
            | None -> Ok None
            | Some wp -> (
                match Word2vec.Serialize.load wp with
                | Ok m -> Ok (Some m)
                | Error d -> Error (Protocol.error_of_diag d))
          in
          match w2v_r with
          | Error e -> Error e
          | Ok w2v ->
              t.model_path <- Some mpath;
              if wpath <> None then t.w2v_path <- wpath;
              Atomic.set t.snap { model; w2v };
              Ok ()))

(* Classify every failure: Diag-shaped ones keep their kind, anything
   else (a bug, not an input problem) becomes an "internal" error —
   answered, logged by the caller, survived. *)
let classify e =
  match Lexkit.diag_of_exn e with
  | Some d -> Protocol.error_of_diag d
  | None -> Protocol.internal_error (Printexc.to_string e)

let guarded t f =
  match Lexkit.with_limits t.limits (fun () -> Lexkit.protect f) with
  | Ok v -> Ok v
  | Error d -> Error (Protocol.error_of_diag d)
  | exception e -> Error (classify e)

(* parse → build factor graph, under this engine's per-request
   budgets. The front-end guards (input size, nesting depth, step
   budget) all fire inside [lang.parse_tree]. *)
let graph_of_code t (lang : Pigeon.Lang.t) code =
  guarded t (fun () ->
      let tree = lang.Pigeon.Lang.parse_tree code in
      let repr =
        Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ()
      in
      Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
        ~policy:Pigeon.Graphs.Locals tree)

let pairs_of_prediction g pred =
  let gold = Crf.Graph.gold_assignment g in
  List.map (fun n -> (gold.(n), pred.(n))) (Crf.Graph.unknown_ids g)

let predict_one t ~lang ~code =
  let snap = Atomic.get t.snap in
  match graph_of_code t lang code with
  | Error e -> Error e
  | Ok g -> (
      match guarded t (fun () -> Crf.Train.predict snap.model g) with
      | Ok pred -> Ok (pairs_of_prediction g pred)
      | Error e -> Error e)

let similar_snap snap ~word ~k =
  match snap.w2v with
  | None ->
      Error
        (Protocol.bad_request
           "no word2vec model loaded (start the server with --w2v)")
  | Some m -> (
      match Lexkit.protect (fun () -> Word2vec.Sgns.most_similar m word ~k) with
      | Ok xs -> Ok xs
      | Error d -> Error (Protocol.error_of_diag d)
      | exception e -> Error (classify e))

let similar t ~word ~k = similar_snap (Atomic.get t.snap) ~word ~k

(* ---------- batched handling ---------- *)

(* Per-request state across the two stages: requests whose reply is
   already decided (control ops, failed parses), and parsed graphs
   waiting for the prediction stage. *)
type slot =
  | Done of string
  | Pending of { id : Json.t; lang_name : string; graph : Crf.Graph.t }

let prepare t snap req =
  let id = Protocol.request_id req in
  match req with
  | Protocol.Ping _ -> Done (Protocol.render_pong ~id)
  | Protocol.Shutdown _ -> Done (Protocol.render_stopping ~id)
  | Protocol.Stats _ ->
      Done
        (Protocol.render_error ~id
           (Protocol.bad_request "stats is only served by a running daemon"))
  | Protocol.Reload _ ->
      Done
        (Protocol.render_error ~id
           (Protocol.bad_request "reload is only served by a running daemon"))
  | Protocol.Similar { word; k; _ } -> (
      match similar_snap snap ~word ~k with
      | Ok xs -> Done (Protocol.render_similar ~id ~word xs)
      | Error e -> Done (Protocol.render_error ~id e))
  | Protocol.Predict { lang; code; _ } -> (
      match Pigeon.Lang.by_name lang with
      | None ->
          Done
            (Protocol.render_error ~id
               (Protocol.bad_request "unknown language %S (use %s)" lang
                  (String.concat ", "
                     (List.map
                        (fun (l : Pigeon.Lang.t) -> l.Pigeon.Lang.name)
                        Pigeon.Lang.all))))
      | Some l -> (
          match graph_of_code t l code with
          | Error e -> Done (Protocol.render_error ~id e)
          | Ok graph ->
              Pending { id; lang_name = l.Pigeon.Lang.name; graph }))

let handle_batch ?pool t reqs =
  (* One snapshot for the whole batch: a concurrent reload affects the
     next batch, never a half-processed one. *)
  let snap = Atomic.get t.snap in
  let slots = List.map (prepare t snap) reqs in
  let graphs =
    List.filter_map
      (function Pending { graph; _ } -> Some graph | Done _ -> None)
      slots
  in
  let predictions =
    if graphs = [] then []
    else
      (* Fast path: the whole batch through the domain pool at once.
         If one graph poisons the batch (a predictor bug — guarded
         inputs cannot reach here), fall back to per-graph prediction
         so only the offending request pays. *)
      match Crf.Train.predict_batch ?pool snap.model graphs with
      | preds -> List.map (fun p -> Ok p) preds
      | exception _ ->
          List.map
            (fun g ->
              match guarded t (fun () -> Crf.Train.predict snap.model g) with
              | Ok p -> Ok p
              | Error e -> Error e)
            graphs
  in
  let rec fill slots preds =
    match (slots, preds) with
    | [], _ -> []
    | Done line :: rest, preds -> line :: fill rest preds
    | Pending { id; lang_name; graph } :: rest, pred :: preds ->
        let line =
          match pred with
          | Ok p ->
              Protocol.render_predictions ~id ~lang:lang_name
                (pairs_of_prediction graph p)
          | Error e -> Protocol.render_error ~id e
        in
        line :: fill rest preds
    | Pending { id; _ } :: rest, [] ->
        (* Unreachable: one prediction per pending slot. Answer rather
           than crash if the invariant ever breaks. *)
        Protocol.render_error ~id
          (Protocol.internal_error "prediction result missing for request")
        :: fill rest []
  in
  fill slots predictions

let handle ?pool t req =
  match handle_batch ?pool t [ req ] with
  | [ line ] -> line
  | _ ->
      Protocol.render_error ~id:(Protocol.request_id req)
        (Protocol.internal_error "single request produced no reply")

let jobs_of_pool = function
  | Some p -> Parallel.jobs p
  | None -> 1
