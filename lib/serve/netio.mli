(** EINTR/EPIPE-safe socket plumbing shared by the server and client. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (no-op where it does not exist), so a
    write to a disconnected peer fails with [EPIPE] instead of killing
    the process. *)

val write_line : Unix.file_descr -> string -> unit
(** Write the string plus a terminating newline, retrying short writes
    and [EINTR]. Raises [Unix.Unix_error] ([EPIPE], …) when the peer is
    gone — callers drop the connection, nothing else. *)

type line = Line of string | Eof | Overflow

type line_reader

val line_reader : ?max_line:int -> Unix.file_descr -> line_reader
(** Buffered newline framing over a blocking fd. [max_line] (default
    16 MiB) bounds a single line; beyond it {!read_line} returns
    [Overflow] and the stream can no longer be trusted to be in sync. *)

val read_line : line_reader -> line
(** Next line without its ['\n'] (a final unterminated line before EOF
    counts). Retries [EINTR]; a peer reset reads as [Eof]. *)
