(** EINTR/EPIPE-safe socket plumbing shared by the server and client,
    with select-based timeouts that work on blocking and non-blocking
    fds alike. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (no-op where it does not exist), so a
    write to a disconnected peer fails with [EPIPE] instead of killing
    the process. *)

val write_line : ?timeout:float -> Unix.file_descr -> string -> unit
(** Write the string plus a terminating newline, retrying short writes,
    [EINTR], and [EAGAIN] (non-blocking fds wait for writability).
    [timeout] bounds each wait for the fd to accept more bytes; a peer
    that stops draining raises [Unix.Unix_error (ETIMEDOUT, _, _)].
    Raises [Unix.Unix_error] ([EPIPE], …) when the peer is gone —
    callers drop the connection, nothing else. *)

type line = Line of string | Eof | Overflow | Timeout

type line_reader

val line_reader :
  ?max_line:int -> ?idle_timeout:float -> Unix.file_descr -> line_reader
(** Buffered newline framing over an fd. [max_line] (default 16 MiB)
    bounds a single line; beyond it {!read_line} returns [Overflow]
    and the stream can no longer be trusted to be in sync (repeated
    calls keep returning [Overflow]). [idle_timeout] (seconds; absent
    or [<= 0.] = wait forever) bounds each wait for input: a
    connection that stays silent that long — including mid-line —
    reads as [Timeout]. *)

val read_line : line_reader -> line
(** Next line without its ['\n'] (a final unterminated line before EOF
    counts). Retries [EINTR]; a peer reset reads as [Eof]. *)
