(** Synchronous client for the serve protocol (one reply line per
    request line). Used by the CLI, the bench driver, the chaos
    harness and the tests. *)

type t

type retry = {
  attempts : int;  (** total tries, including the first *)
  base_delay : float;  (** seconds before the second try *)
  max_delay : float;  (** backoff ceiling *)
  jitter : float;  (** 0..1: each delay is scaled by 1 ± jitter/2 *)
}

val default_retry : retry
(** 4 attempts, 50 ms base, 1 s ceiling, 0.5 jitter. *)

val no_retry : retry

val transient : exn -> bool
(** Whether an exception is a transient transport failure (connection
    refused/reset, socket file not there yet, timeout, …) that a
    retry could fix. *)

val with_retries : ?retry:retry -> (unit -> 'a) -> 'a
(** Run [f], retrying {!transient} failures with exponential backoff
    plus jitter until the attempt budget runs out (the last failure
    re-raises). Only wrap operations that are safe to repeat: connects
    always are; full request round-trips only when the op is
    idempotent — a lost reply does not prove the request was not
    executed. *)

type endpoint = Unix_sock of string | Tcp of string * int

val connect :
  ?connect_timeout:float -> ?read_timeout:float -> ?retry:retry ->
  endpoint -> t
(** Connect, optionally bounding the connect ([connect_timeout],
    non-blocking connect + select; raises [ETIMEDOUT]) and every
    subsequent reply wait ([read_timeout]). [retry] backs off and
    reconnects on transient failures (default: {!no_retry} — a single
    attempt). *)

val connect_unix :
  ?connect_timeout:float -> ?read_timeout:float -> ?retry:retry ->
  string -> t

val connect_tcp :
  ?connect_timeout:float -> ?read_timeout:float -> ?retry:retry ->
  string -> int -> t

val request : t -> string -> string option
(** Send one request line, read one reply line. [None] when the
    server closed the connection without replying. Raises
    [Unix.Unix_error (ETIMEDOUT, _, _)] when [read_timeout] elapses —
    distinguishable from a clean close, so callers can tell "daemon
    gone" from "daemon wedged". Not retried here; see
    {!with_retries}. *)

val send_line : t -> string -> unit
val recv_line : t -> string option
val close : t -> unit
