(** Synchronous client for the serve protocol (one reply line per
    request line). Used by the CLI, the bench driver and the tests. *)

type t

val connect_unix : string -> t
val connect_tcp : string -> int -> t

val request : t -> string -> string option
(** Send one request line, read one reply line. [None] when the
    server closed the connection without replying. *)

val send_line : t -> string -> unit
val recv_line : t -> string option
val close : t -> unit
