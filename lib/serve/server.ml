(* The long-lived daemon: listeners accept connections, one reader
   thread per connection parses newline-delimited JSON requests, and a
   producer/consumer queue feeds a single batcher thread that groups
   up to [max_batch] pending requests and pushes them through the
   domain pool in one [Crf.Train.predict_batch] round (via
   [Engine.handle_batch]).

   Threading model: sys-threads for I/O (they park in [read]/[accept]
   and release the runtime lock), the domain pool for compute. Control
   ops (ping, stats, reload, shutdown) answer inline from the reader
   thread; predict/similar requests are queued, so their replies stay
   in request order per connection while a slow prediction never
   blocks a ping. (Shed replies are the one exception: a rejected
   request answers immediately, possibly before earlier queued ones —
   pipelining clients correlate by id.)

   Overload and lifecycle, in layers:
   - the job queue is bounded ([max_queue]): excess predict/similar
     requests answer immediately with a structured "overloaded" error
     instead of growing latency without bound;
   - connections are bounded ([max_conns]): excess accepts get one
     "overloaded" line and a close, so the daemon's thread count and
     fd table stay bounded under a connection flood;
   - each connection has an idle budget ([idle_timeout], enforced with
     bounded selects in Netio): a client that goes silent — including
     mid-line, the slowloris pattern — gets a "timeout" error line,
     best effort, and its connection closed; the same budget bounds
     reply writes, so a client that stops draining its socket cannot
     wedge the batcher;
   - hot reload swaps the engine's model snapshot atomically
     (Engine.reload): in-flight batches finish on the old model, no
     request is dropped;
   - shutdown drains: listeners close first, queued requests answer,
     then connections close.

   Failure containment, in layers:
   - a request that fails answers with a structured error (Engine);
   - a connection that disconnects mid-reply costs that connection
     (SIGPIPE is ignored; EPIPE marks the connection dead);
   - a batcher-level surprise answers every request of the batch with
     an "internal" error and keeps the daemon up.

   Fault injection (Serve.Faults, off by default) hooks into accept
   (drop), the batcher (delay, injected raise), and the reply path
   (torn write) — the chaos suite drives the containment layers
   through exactly the code real faults would take. *)

let log_src = Logs.Src.create "pigeon.serve" ~doc:"pigeon serve daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind host, port *)
  max_batch : int;
  max_line : int;  (** request-line byte cap (framing guard) *)
  backlog : int;
  max_queue : int;  (** queued predict/similar bound; 0 = unbounded *)
  max_conns : int;  (** concurrent connection cap; 0 = unbounded *)
  idle_timeout : float;  (** seconds; per-connection I/O budget; 0 = none *)
  faults : Faults.t;  (** fault injection; disabled by default *)
}

let default_config =
  {
    unix_socket = None;
    tcp = None;
    max_batch = 16;
    (* Requests wrap source files in JSON: allow the 8 MiB default
       input cap escaped (×2) plus envelope slack. *)
    max_line = 20 * 1024 * 1024;
    backlog = 64;
    max_queue = 256;
    max_conns = 256;
    idle_timeout = 300.;
    faults = Faults.disabled;
  }

type conn = {
  id : int;  (** scopes edit sessions; unique for the daemon's life *)
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  mutable alive : bool;
}

type job = { conn : conn; req : Protocol.request }

type t = {
  engine : Engine.t;
  pool : Parallel.pool option;
  cfg : config;
  faults : Faults.state option;  (** [None] = injection disabled: no cost *)
  m : Mutex.t;
  work : Condition.t;
  q : job Queue.t;
  mutable stopping : bool;
  mutable listeners : Unix.file_descr list;
  mutable conns : conn list;
  mutable n_conns : int;
  mutable io_threads : Thread.t list;  (** accept loops + batcher *)
  mutable conn_threads : (int * Thread.t) list;  (** keyed by thread id *)
  t0 : float;
  mutable served : int;
  mutable errors : int;
  mutable shed : int;
  mutable batches : int;
  mutable max_batch_seen : int;
  mutable queue_hw : int;
  mutable reloads : int;
  mutable conn_seq : int;  (** next connection id *)
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let stats t =
  locked t (fun () ->
      {
        Protocol.uptime_ms =
          int_of_float (1000. *. (Unix.gettimeofday () -. t.t0));
        served = t.served;
        errors = t.errors;
        shed = t.shed;
        batches = t.batches;
        max_batch = t.max_batch_seen;
        queue_depth = Queue.length t.q;
        queue_hw = t.queue_hw;
        conns = t.n_conns;
        reloads = t.reloads;
        jobs = Engine.jobs_of_pool t.pool;
        models = Engine.models t.engine;
        sessions = [];
        session_cache =
          {
            Protocol.cache_hits = 0;
            cache_misses = 0;
            cached_paths = 0;
            cache_bytes = 0;
            cache_evictions = 0;
          };
      })

(* Session stats read the engine's session table under its own lock —
   outside [t.m], so a stats request never holds the job-queue lock
   while folding over caches. *)
let stats t =
  let sessions, session_cache = Engine.session_stats t.engine in
  { (stats t) with Protocol.sessions; session_cache }

let io_timeout t =
  if t.cfg.idle_timeout > 0. then Some t.cfg.idle_timeout else None

(* Serialized, failure-absorbing reply write. A dead peer (EPIPE and
   friends) or one that stops draining its socket (write timeout)
   marks the connection; the request that triggered the write is the
   only thing lost. *)
let send t conn line =
  let kill_conn () =
    conn.alive <- false;
    (* Unblock the connection's reader so it can clean up. *)
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  in
  let sent =
    Mutex.lock conn.wmutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock conn.wmutex)
      (fun () ->
        if not conn.alive then false
        else
          match t.faults with
          | Some st when Faults.fire st Faults.Torn_reply ->
              (* Injected crash-mid-write: a reply prefix with no
                 newline, then the connection dies. The peer must see
                 a torn line ending in EOF, never a garbled frame. *)
              (try
                 ignore
                   (Unix.write_substring conn.fd line 0
                      (String.length line / 2))
               with Unix.Unix_error _ -> ());
              kill_conn ();
              false
          | _ -> (
              match Netio.write_line ?timeout:(io_timeout t) conn.fd line with
              | () -> true
              | exception Unix.Unix_error _ ->
                  kill_conn ();
                  false))
  in
  if sent then
    locked t (fun () ->
        t.served <- t.served + 1;
        if not (Protocol.reply_ok line) then t.errors <- t.errors + 1)

(* Backpressure: a full queue sheds the request with an immediate
   structured "overloaded" reply instead of queueing unbounded
   latency. The shed reply races ahead of this connection's queued
   requests by design — correlate by id. *)
let enqueue t job =
  let decision =
    locked t (fun () ->
        if t.stopping then `Drop
        else if t.cfg.max_queue > 0 && Queue.length t.q >= t.cfg.max_queue
        then begin
          t.shed <- t.shed + 1;
          `Shed
        end
        else begin
          Queue.add job t.q;
          let depth = Queue.length t.q in
          if depth > t.queue_hw then t.queue_hw <- depth;
          Condition.signal t.work;
          `Queued
        end)
  in
  match decision with
  | `Queued | `Drop -> ()
  | `Shed ->
      send t job.conn
        (Protocol.render_error
           ~id:(Protocol.request_id job.req)
           (Protocol.overloaded
              "server overloaded: %d requests queued (max-queue); retry later"
              t.cfg.max_queue))

(* ---------- shutdown plumbing ---------- *)

let request_stop t =
  let listeners =
    locked t (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          Condition.broadcast t.work;
          let ls = t.listeners in
          t.listeners <- [];
          ls
        end)
  in
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners

let stopped t = locked t (fun () -> t.stopping)

let reload ?name ?model_path ?w2v_path t =
  match Engine.reload t.engine ?name ?model_path ?w2v_path () with
  | Ok note ->
      locked t (fun () -> t.reloads <- t.reloads + 1);
      Log.info (fun m ->
          m "model %S reloaded" (Option.value ~default:"default" name));
      Option.iter (fun n -> Log.info (fun m -> m "%s" n)) note;
      Ok ()
  | Error e ->
      Log.err (fun m ->
          m "model reload failed: [%s] %s" e.Protocol.kind e.Protocol.msg);
      Error e

(* ---------- batcher ---------- *)

let batcher t () =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.stopping do
      Condition.wait t.work t.m
    done;
    if Queue.is_empty t.q then begin
      (* stopping && drained: every queued request has been answered. *)
      Mutex.unlock t.m;
      ()
    end
    else begin
      (* Explicit count: [List.length] inside the take loop would make
         batch assembly O(max_batch²). *)
      let jobs = ref [] and count = ref 0 in
      while (not (Queue.is_empty t.q)) && !count < t.cfg.max_batch do
        jobs := Queue.take t.q :: !jobs;
        incr count
      done;
      let jobs = List.rev !jobs in
      t.batches <- t.batches + 1;
      if !count > t.max_batch_seen then t.max_batch_seen <- !count;
      Mutex.unlock t.m;
      let replies =
        (* Engine.handle_batch is total by contract; this second net
           exists so a violation of that contract answers the batch
           and keeps the daemon alive instead of killing the consumer
           thread. The backtrace goes to the log, not the client.
           Fault injection raises right here for the same reason: the
           chaos suite drives this exact containment path. *)
        match
          (match t.faults with
          | Some st ->
              Faults.pre_batch_delay st;
              if Faults.fire st Faults.Engine_error then
                failwith "injected engine fault (PIGEON_FAULTS)"
          | None -> ());
          Engine.handle_batch_conn ?pool:t.pool t.engine
            (List.map (fun j -> (j.conn.id, j.req)) jobs)
        with
        | replies -> replies
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Log.err (fun m ->
                m "batch failed: %s@.%s" (Printexc.to_string e)
                  (Printexc.raw_backtrace_to_string bt));
            List.map
              (fun j ->
                Protocol.render_error ~id:(Protocol.request_id j.req)
                  (Protocol.internal_error (Printexc.to_string e)))
              jobs
      in
      List.iter2 (fun j line -> send t j.conn line) jobs replies;
      loop ()
    end
  in
  loop ()

(* ---------- per-connection reader ---------- *)

let forget_conn t conn =
  locked t (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns;
      t.n_conns <- t.n_conns - 1)

let reader t conn () =
  let lr =
    Netio.line_reader ~max_line:t.cfg.max_line ?idle_timeout:(io_timeout t)
      conn.fd
  in
  let rec loop () =
    match Netio.read_line lr with
    | Netio.Eof -> ()
    | Netio.Timeout ->
        (* Idle (or trickling) beyond the budget: one best-effort
           structured line, then the connection closes. A slow writer
           cannot park this thread forever. *)
        send t conn
          (Protocol.render_error ~id:Json.Null
             (Protocol.timeout
                "connection idle for %.0fs (idle-timeout); connection closed"
                t.cfg.idle_timeout))
    | Netio.Overflow ->
        (* Line framing is lost beyond the cap: answer once, close. *)
        send t conn
          (Protocol.render_error ~id:Json.Null
             (Protocol.bad_request
                "request line exceeds %d bytes; connection closed"
                t.cfg.max_line))
    | Netio.Line line ->
        if String.trim line = "" then loop ()
        else begin
          (match Protocol.request_of_line line with
          | Error (id, err) -> send t conn (Protocol.render_error ~id err)
          | Ok (Protocol.Ping { id }) -> send t conn (Protocol.render_pong ~id)
          | Ok (Protocol.Stats { id }) ->
              send t conn (Protocol.render_stats ~id (stats t))
          | Ok (Protocol.Reload { id; form }) -> (
              (* Registry writes run here, in this connection's reader
                 thread — off the batcher's request path, so prediction
                 latency is untouched while a new model loads and
                 validates. *)
              match form with
              | Protocol.Load { name; model; w2v } -> (
                  match reload ?name ?model_path:model ?w2v_path:w2v t with
                  | Ok () -> send t conn (Protocol.render_reloaded ~id)
                  | Error e -> send t conn (Protocol.render_error ~id e))
              | Protocol.Unload n -> (
                  match Engine.unload t.engine n with
                  | Ok () ->
                      Log.info (fun m -> m "model %S unloaded" n);
                      send t conn (Protocol.render_unloaded ~id n)
                  | Error e -> send t conn (Protocol.render_error ~id e))
              | Protocol.Set_default n -> (
                  match Engine.set_default t.engine n with
                  | Ok () ->
                      Log.info (fun m -> m "default model set to %S" n);
                      send t conn (Protocol.render_default_set ~id n)
                  | Error e -> send t conn (Protocol.render_error ~id e)))
          | Ok (Protocol.Shutdown { id }) ->
              send t conn (Protocol.render_stopping ~id);
              request_stop t
          | Ok
              (( Protocol.Predict _ | Protocol.Similar _ | Protocol.Open _
               | Protocol.Edit _ | Protocol.Close _ ) as req) ->
              (* Session ops queue like predicts — running close inline
                 here would race this connection's still-queued edits. *)
              enqueue t { conn; req });
          loop ()
        end
    | exception Unix.Unix_error _ -> ()
  in
  (match loop () with () -> () | exception _ -> ());
  Mutex.lock conn.wmutex;
  conn.alive <- false;
  Mutex.unlock conn.wmutex;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  (* A disconnect closes the connection's edit sessions; their queued
     requests (if any) answer "no-session" into a dead socket. *)
  Engine.drop_conn t.engine ~conn:conn.id;
  forget_conn t conn;
  (* Drop our own join handle: a daemon serving many short-lived
     connections must not accumulate dead threads. *)
  let me = Thread.id (Thread.self ()) in
  locked t (fun () ->
      t.conn_threads <- List.filter (fun (id, _) -> id <> me) t.conn_threads)

let spawn_reader t fd =
  (* Non-blocking + select-based waits in Netio: reads and writes both
     honor the idle budget, on the same fd. *)
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let id = locked t (fun () ->
      let id = t.conn_seq in
      t.conn_seq <- id + 1;
      id)
  in
  let conn = { id; fd; wmutex = Mutex.create (); alive = true } in
  let decision =
    locked t (fun () ->
        if t.stopping then `Close
        else if t.cfg.max_conns > 0 && t.n_conns >= t.cfg.max_conns then begin
          t.shed <- t.shed + 1;
          `Reject
        end
        else begin
          t.conns <- conn :: t.conns;
          t.n_conns <- t.n_conns + 1;
          `Accept
        end)
  in
  match decision with
  | `Close -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | `Reject ->
      (* One structured line, best effort, then close — from a helper
         thread so a non-reading flooder cannot stall the accept loop. *)
      let line =
        Protocol.render_error ~id:Json.Null
          (Protocol.overloaded
             "server overloaded: %d connections open (max-conns); retry later"
             t.cfg.max_conns)
      in
      ignore
        (Thread.create
           (fun () ->
             (try Netio.write_line ~timeout:1.0 fd line
              with Unix.Unix_error _ -> ());
             try Unix.close fd with Unix.Unix_error _ -> ())
           ())
  | `Accept ->
      let th = Thread.create (reader t conn) () in
      locked t (fun () ->
          t.conn_threads <- (Thread.id th, th) :: t.conn_threads)

(* ---------- accept loops ---------- *)

(* select-with-timeout rather than a blocking accept, so stopping
   never races a close against a thread parked in accept. *)
let acceptor t lfd () =
  let rec loop () =
    if stopped t then ()
    else
      match Unix.select [ lfd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true lfd with
          | cfd, _ ->
              (match t.faults with
              | Some st when Faults.fire st Faults.Accept_drop -> (
                  (* Injected accept-time drop: the peer sees an
                     immediate EOF, the daemon moves on. *)
                  try Unix.close cfd with Unix.Unix_error _ -> ())
              | _ -> spawn_reader t cfd);
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              loop ()
          | exception Unix.Unix_error _ -> if stopped t then () else loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
  in
  loop ()

(* ---------- lifecycle ---------- *)

let listen_unix path backlog =
  (* A stale socket file from a crashed daemon would make bind fail;
     replace it. Refuse to unlink anything that is not a socket. *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd backlog;
  fd

let listen_tcp host port backlog =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve bind host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd backlog;
  fd

let start ?pool engine cfg =
  if cfg.unix_socket = None && cfg.tcp = None then
    invalid_arg "Serve.Server.start: no unix socket and no TCP address";
  Netio.ignore_sigpipe ();
  let listeners =
    (match cfg.unix_socket with
    | Some path -> [ listen_unix path cfg.backlog ]
    | None -> [])
    @
    match cfg.tcp with
    | Some (host, port) -> [ listen_tcp host port cfg.backlog ]
    | None -> []
  in
  let t =
    {
      engine;
      pool;
      cfg;
      faults =
        (if Faults.enabled cfg.faults then Some (Faults.state cfg.faults)
         else None);
      m = Mutex.create ();
      work = Condition.create ();
      q = Queue.create ();
      stopping = false;
      listeners;
      conns = [];
      n_conns = 0;
      io_threads = [];
      conn_threads = [];
      t0 = Unix.gettimeofday ();
      served = 0;
      errors = 0;
      shed = 0;
      batches = 0;
      max_batch_seen = 0;
      queue_hw = 0;
      reloads = 0;
      conn_seq = 1;
    }
  in
  let threads =
    Thread.create (batcher t) ()
    :: List.map (fun lfd -> Thread.create (acceptor t lfd) ()) listeners
  in
  t.io_threads <- threads;
  t

let wait t =
  (* Acceptors exit once stopping is set; the batcher exits once
     stopping is set and the queue is drained — every request read
     before shutdown gets its reply. *)
  List.iter Thread.join t.io_threads;
  (* No replies can be produced anymore: release the readers. *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  let readers = locked t (fun () -> List.map snd t.conn_threads) in
  List.iter Thread.join readers;
  match t.cfg.unix_socket with
  | Some path -> (
      match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ | (exception Unix.Unix_error _) -> ())
  | None -> ()

let run ?pool engine cfg =
  let t = start ?pool engine cfg in
  wait t
